# Tier-1 verification plus the bench workflow. `make ci` is what every
# PR must keep green.

GO ?= go

.PHONY: ci verify vet build test bench-short bench fingerprint clean

ci: verify bench-short

verify: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode benches: one iteration each, so CI catches benchmark rot
# without paying for full measurements.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full E1-E5 measurement written to BENCH_$(LABEL).json. Set BASELINE to
# a prior BENCH_*.json to embed per-bench speedups:
#   make bench LABEL=pr2 BASELINE=BENCH_pr1.json
LABEL ?= local
BASELINE ?=
bench:
	$(GO) run ./cmd/bench -label $(LABEL) $(if $(BASELINE),-baseline $(BASELINE))

# Content-level determinism fingerprint; diff two runs (or two builds)
# to prove refactors did not change experiment outcomes.
fingerprint:
	$(GO) run ./cmd/fingerprint

clean:
	rm -f repro.test *.prof
