# Tier-1 verification plus the bench workflow. `make ci` is what every
# PR must keep green — locally and in .github/workflows/ci.yml.

GO ?= go

.PHONY: ci verify vet build test fmt-check lint cover race fuzz-smoke serve-smoke fingerprint-check bench-short bench bench-check fingerprint clean

ci: fmt-check lint verify race fuzz-smoke serve-smoke fingerprint-check bench-short

verify: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Every tracked Go file must be gofmt-clean.
fmt-check:
	@files=$$(git ls-files '*.go' | xargs gofmt -l); \
	if [ -n "$$files" ]; then \
		echo "gofmt -w needed on:"; echo "$$files"; exit 1; \
	fi

# Project lint suite (internal/lint via cmd/lint): maprange +
# nondetsource police the determinism contract of the fingerprinted
# packages, guardedfield polices the `// guards` mutex convention, and
# allowdirective polices the //repro:allow suppression inventory.
# Nonzero exit on any finding — a hard CI gate, diagnostics go to the
# job log.
lint:
	$(GO) run ./cmd/lint ./...

# Per-package coverage summary over the whole module, plus a hard floor
# for internal/lint: the analyzers' edge cases (embedded structs, method
# values, deferred unlocks, shadowed receivers) must stay covered.
COVER_FLOOR ?= 85
cover:
	$(GO) test -coverprofile=cover.out ./...
	@echo "--- total ---"
	@$(GO) tool cover -func=cover.out | tail -n 1
	@pct=$$($(GO) test -coverprofile=cover.lint.out ./internal/lint | \
		sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/lint coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit (p+0 < f) ? 1 : 0 }' || \
		{ echo "FAIL: internal/lint coverage $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Race-enabled runs of the packages with real concurrency (the simulator
# worker pool), the invariant harness that gates the packers, the
# spanning-tree packers (stpdist drives the worker pool through the MWU
# loop's per-iteration MSTs), cast (long-lived Scheduler handles plus
# concurrent clones over one shared core), serve (the concurrent
# decomposition service: singleflight packing cache, pooled clones,
# bounded-concurrency demand execution), and the remaining packages that
# drive the sim worker pool (cdsdist and dist run their protocols over
# the persistent engine), plus obs (histograms, trace rings, and the
# metrics registry are all written concurrently on the serve path).
race:
	$(GO) test -race ./internal/sim ./internal/check ./internal/stp ./internal/stpdist ./internal/cast ./internal/serve ./internal/cdsdist ./internal/dist ./internal/obs

# Serving smoke: cmd/serve -selftest drives the full loop in-process
# over a real HTTP listener — register, concurrent decompositions
# (singleflight asserted), concurrent broadcasts replayed byte-identical,
# a closed-loop load run, and a stats audit.
serve-smoke:
	$(GO) run ./cmd/serve -selftest

# 10-second fuzz smoke of the CSR builder: random edge streams with
# duplicates and self-loops must finalize to sorted, deduped, symmetric
# adjacency with consistent edge ids.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzBuilder$$' -fuzztime 10s ./internal/graph

# Determinism gate: the current build's content-level fingerprint must
# match the committed golden byte for byte (TestFingerprintGolden is the
# same gate inside go test). Regenerate after an intentional behavior
# change with: go test -run TestFingerprintGolden -update .
fingerprint-check:
	$(GO) run ./cmd/fingerprint | diff FINGERPRINT.txt -

# Short-mode benches: one iteration each, so CI catches benchmark rot
# without paying for full measurements.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full E1-E8 measurement written to BENCH_$(LABEL).json. Set BASELINE to
# a prior BENCH_*.json to embed per-bench speedups:
#   make bench LABEL=pr2 BASELINE=BENCH_pr1.json
LABEL ?= local
BASELINE ?=
bench:
	$(GO) run ./cmd/bench -label $(LABEL) $(if $(BASELINE),-baseline $(BASELINE))

# Pre-merge regression gate: rerun the full E1-E8 measurement and fail
# if any benchmark is more than TOLERANCE (fractional) slower than the
# committed baseline:
#   make bench-check [CHECK_BASELINE=BENCH_pr10.json] [TOLERANCE=0.20]
CHECK_BASELINE ?= BENCH_pr10.json
TOLERANCE ?= 0.20
bench-check:
	$(GO) run ./cmd/bench -check -baseline $(CHECK_BASELINE) -tolerance $(TOLERANCE)

# Content-level determinism fingerprint; diff two runs (or two builds)
# to prove refactors did not change experiment outcomes.
fingerprint:
	$(GO) run ./cmd/fingerprint

clean:
	rm -f repro.test *.test *.prof *.out cover.out cover.lint.out BENCH_local.json
	rm -rf selftest.store
