package check_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/check"
	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/stp"
	"repro/internal/stpdist"
)

// The property sweep runs every packer over 5 graph families x 3 sizes
// x 4 seeds and asserts the paper's theorems as executable invariants:
// Theorem 1.1/1.2's packing-size floor and per-vertex capacity for the
// dominating-tree packers, Theorem 1.3's ⌊(λ-1)/2⌋·(1-6ε) floor and
// per-edge capacity for the spanning-tree packer. Families follow the
// canonical k-edge-connected decompositions the experiments use: exact
// ground-truth constructions (Harary, hypercube, torus, complete) plus
// the random 2c-connected Hamiltonian-cycle unions.
type sweepCase struct {
	name string
	g    *graph.Graph
	k    int // known vertex connectivity (= λ on these families)
}

func sweepCases(t testing.TB) []sweepCase {
	sizes := []int{0, 1, 2}
	if testing.Short() {
		sizes = sizes[:1]
	}
	var out []sweepCase
	add := func(name string, g *graph.Graph, k int) {
		out = append(out, sweepCase{name, g, k})
	}
	for _, i := range sizes {
		add(fmt.Sprintf("Hypercube/Q%d", i+4), graph.Hypercube(i+4), i+4)

		hn := 24 + 16*i
		h, err := graph.Harary(6, hn)
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("Harary/H6_%d", hn), h, 6)

		cn := 32 + 16*i
		add(fmt.Sprintf("HamCycles/c3_%d", cn), graph.RandomHamCycles(cn, 3, ds.NewRand(uint64(cn))), 6)

		side := 4 + i
		add(fmt.Sprintf("Torus/%dx%d", side, side+1), graph.Torus(side, side+1), 4)

		kn := 12 + 4*i
		add(fmt.Sprintf("Complete/K%d", kn), graph.Complete(kn), kn-1)
	}
	return out
}

func sweepSeeds() []uint64 {
	if testing.Short() {
		return []uint64{0, 1}
	}
	return []uint64{0, 1, 2, 3}
}

func domToWeighted(p *cds.Packing) []check.Weighted {
	out := make([]check.Weighted, len(p.Trees))
	for i, tr := range p.Trees {
		out[i] = check.Weighted{Tree: tr.Tree, Weight: tr.Weight}
	}
	return out
}

// assertDominating runs the full Theorem 1.1/1.2 oracle on one packing:
// tree validity, domination, per-vertex capacity, the Ω(k/log n) size
// floor, the Lemma E.1 partition predicate, and — since a fractional
// dominating-tree packing with unit vertex capacities can load an edge
// through both endpoints — the paper's per-edge congestion ceiling of 2.
func assertDominating(t *testing.T, g *graph.Graph, p *cds.Packing, k int) {
	t.Helper()
	w := domToWeighted(p)
	if err := check.DominatingPacking(g, w, k); err != nil {
		t.Fatal(err)
	}
	if dom, conn := check.Partition(g, check.ClassesOf(g.N(), w), len(w)); dom != 0 || conn != 0 {
		t.Fatalf("partition failures: dom=%d conn=%d", dom, conn)
	}
	if load, e := check.EdgeCongestion(g, w); load > 2+1e-9 {
		u, v := g.Endpoints(e)
		t.Fatalf("edge (%d,%d) congestion %v exceeds 2", u, v, load)
	}
}

func TestSweepCentralizedDominating(t *testing.T) {
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				p, err := cds.PackWithGuess(tc.g, tc.k, cds.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertDominating(t, tc.g, p, tc.k)
			}
		})
	}
}

func TestSweepDistributedDominating(t *testing.T) {
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				res, err := cdsdist.PackWithGuess(tc.g, tc.k, cds.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertDominating(t, tc.g, res.Packing, tc.k)
				if res.Meter.TotalRounds() <= 0 {
					t.Fatalf("seed %d: distributed run metered no rounds", seed)
				}
			}
		})
	}
}

// The FullPack sweeps close the Remark 3.1 ROADMAP item: where the
// sweeps above pin PackWithGuess outcomes (connectivity known), these
// run the complete try-and-error loops — the guess search for the
// dominating packers, λ estimation for the spanning packers — over the
// same grid, asserting the theorem oracles on whatever guess the search
// settles on. The guess grid n/2^j lands within a factor 2 of the true
// k, so the dominating size floor is asserted at half the exact-guess
// strength; the Corollary 1.7 ceiling (no valid fractional packing
// exceeds k) is exact.
func assertDominatingFullPack(t *testing.T, g *graph.Graph, p *cds.Packing, k int) {
	t.Helper()
	w := domToWeighted(p)
	if err := check.DominatingPacking(g, w, 0); err != nil { // floor asserted below at half strength
		t.Fatal(err)
	}
	if size := p.Size(); size+1e-9 < check.DominatingFloor(k, g.N())/2 {
		t.Fatalf("full-Pack size %.4f below half the Theorem 1.1 floor %.4f (k=%d)", size, check.DominatingFloor(k, g.N()), k)
	} else if size > float64(k)+1e-9 {
		t.Fatalf("full-Pack size %.4f exceeds the Corollary 1.7 ceiling k=%d", size, k)
	}
	if dom, conn := check.Partition(g, check.ClassesOf(g.N(), w), len(w)); dom != 0 || conn != 0 {
		t.Fatalf("partition failures: dom=%d conn=%d", dom, conn)
	}
}

func TestSweepCentralizedDominatingFullPack(t *testing.T) {
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				p, err := cds.Pack(tc.g, cds.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertDominatingFullPack(t, tc.g, p, tc.k)
			}
		})
	}
}

func TestSweepDistributedDominatingFullPack(t *testing.T) {
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				res, err := cdsdist.Pack(tc.g, cds.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertDominatingFullPack(t, tc.g, res.Packing, tc.k)
				// The meter must include the Appendix E testing rounds of
				// every guess: strictly more than one PackWithGuess run.
				guess, err := cdsdist.PackWithGuess(tc.g, tc.k, cds.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Meter.TotalRounds() <= guess.Meter.TotalRounds() {
					t.Fatalf("seed %d: full-Pack rounds %d do not cover guess-search + testing (single guess: %d)",
						seed, res.Meter.TotalRounds(), guess.Meter.TotalRounds())
				}
			}
		})
	}
}

// TestSweepSpanningFullPack runs stp.Pack without KnownLambda, so the
// Stoer–Wagner estimation path and (where λ clears the threshold) the
// Section 5.2 sampling split are both exercised under the Theorem 1.3
// oracle. ε=0.2 keeps the floor meaningful while the estimation stays
// the dominant cost.
func TestSweepSpanningFullPack(t *testing.T) {
	const epsilon = 0.2
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// tc.k is exact on the constructed families but only a w.h.p.
			// claim on the random Hamiltonian-cycle unions; the estimation
			// path must match the true λ, so pin against that.
			lambda := flow.StoerWagner(tc.g)
			for _, seed := range sweepSeeds() {
				p, err := stp.Pack(tc.g, stp.Options{Seed: seed, Epsilon: epsilon})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if p.Stats.Lambda != lambda {
					t.Fatalf("seed %d: estimated λ=%d, want %d", seed, p.Stats.Lambda, lambda)
				}
				if p.Stats.SubgraphsPacked < 1 || p.Stats.SubgraphsPacked > p.Stats.Subgraphs {
					t.Fatalf("seed %d: SubgraphsPacked=%d outside [1, η=%d]", seed, p.Stats.SubgraphsPacked, p.Stats.Subgraphs)
				}
				w := make([]check.Weighted, len(p.Trees))
				for i, tr := range p.Trees {
					w[i] = check.Weighted{Tree: tr.Tree, Weight: tr.Weight}
				}
				// The size floor scales with the packed fraction of the
				// sampled subgraphs (skipped samples pack nothing).
				floor := check.SpanningFloor(tc.k, epsilon) * float64(p.Stats.SubgraphsPacked) / float64(p.Stats.Subgraphs)
				if err := check.SpanningPacking(tc.g, w, 1, floor); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestSweepSpanningDistributed sweeps stpdist.Pack over the grid and
// additionally holds every run to the Theorem 1.3 round budget
// O~(D + sqrt(nλ)) — the distributed loop's cost contract.
func TestSweepSpanningDistributed(t *testing.T) {
	const epsilon = 0.3
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				res, err := stpdist.Pack(tc.g, stp.Options{Seed: seed, KnownLambda: tc.k, Epsilon: epsilon})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				p := res.Packing
				w := make([]check.Weighted, len(p.Trees))
				for i, tr := range p.Trees {
					w[i] = check.Weighted{Tree: tr.Tree, Weight: tr.Weight}
				}
				if err := check.SpanningPacking(tc.g, w, 1, check.SpanningFloor(tc.k, epsilon)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				n := float64(tc.g.N())
				logn := math.Log2(n + 2)
				envelope := (float64(graph.Diameter(tc.g)) + math.Sqrt(n*float64(tc.k))) * logn * logn * logn * logn * 20
				if rounds := float64(res.Meter.TotalRounds()); rounds <= 0 || rounds > envelope {
					t.Fatalf("seed %d: %v metered rounds outside (0, %.0f]", seed, rounds, envelope)
				}
			}
		})
	}
}

func TestSweepSpanning(t *testing.T) {
	const epsilon = 0.2
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				p, err := stp.Pack(tc.g, stp.Options{Seed: seed, KnownLambda: tc.k, Epsilon: epsilon})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				w := make([]check.Weighted, len(p.Trees))
				for i, tr := range p.Trees {
					w[i] = check.Weighted{Tree: tr.Tree, Weight: tr.Weight}
				}
				// Unit edge capacities are the implementation's contract,
				// strictly stronger than the theorem's congestion-2 ceiling.
				if err := check.SpanningPacking(tc.g, w, 1, check.SpanningFloor(tc.k, epsilon)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
