package check_test

import (
	"fmt"
	"testing"

	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/check"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/stp"
)

// The property sweep runs every packer over 5 graph families x 3 sizes
// x 4 seeds and asserts the paper's theorems as executable invariants:
// Theorem 1.1/1.2's packing-size floor and per-vertex capacity for the
// dominating-tree packers, Theorem 1.3's ⌊(λ-1)/2⌋·(1-6ε) floor and
// per-edge capacity for the spanning-tree packer. Families follow the
// canonical k-edge-connected decompositions the experiments use: exact
// ground-truth constructions (Harary, hypercube, torus, complete) plus
// the random 2c-connected Hamiltonian-cycle unions.
type sweepCase struct {
	name string
	g    *graph.Graph
	k    int // known vertex connectivity (= λ on these families)
}

func sweepCases(t testing.TB) []sweepCase {
	sizes := []int{0, 1, 2}
	if testing.Short() {
		sizes = sizes[:1]
	}
	var out []sweepCase
	add := func(name string, g *graph.Graph, k int) {
		out = append(out, sweepCase{name, g, k})
	}
	for _, i := range sizes {
		add(fmt.Sprintf("Hypercube/Q%d", i+4), graph.Hypercube(i+4), i+4)

		hn := 24 + 16*i
		h, err := graph.Harary(6, hn)
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("Harary/H6_%d", hn), h, 6)

		cn := 32 + 16*i
		add(fmt.Sprintf("HamCycles/c3_%d", cn), graph.RandomHamCycles(cn, 3, ds.NewRand(uint64(cn))), 6)

		side := 4 + i
		add(fmt.Sprintf("Torus/%dx%d", side, side+1), graph.Torus(side, side+1), 4)

		kn := 12 + 4*i
		add(fmt.Sprintf("Complete/K%d", kn), graph.Complete(kn), kn-1)
	}
	return out
}

func sweepSeeds() []uint64 {
	if testing.Short() {
		return []uint64{0, 1}
	}
	return []uint64{0, 1, 2, 3}
}

func domToWeighted(p *cds.Packing) []check.Weighted {
	out := make([]check.Weighted, len(p.Trees))
	for i, tr := range p.Trees {
		out[i] = check.Weighted{Tree: tr.Tree, Weight: tr.Weight}
	}
	return out
}

// assertDominating runs the full Theorem 1.1/1.2 oracle on one packing:
// tree validity, domination, per-vertex capacity, the Ω(k/log n) size
// floor, the Lemma E.1 partition predicate, and — since a fractional
// dominating-tree packing with unit vertex capacities can load an edge
// through both endpoints — the paper's per-edge congestion ceiling of 2.
func assertDominating(t *testing.T, g *graph.Graph, p *cds.Packing, k int) {
	t.Helper()
	w := domToWeighted(p)
	if err := check.DominatingPacking(g, w, k); err != nil {
		t.Fatal(err)
	}
	if dom, conn := check.Partition(g, check.ClassesOf(g.N(), w), len(w)); dom != 0 || conn != 0 {
		t.Fatalf("partition failures: dom=%d conn=%d", dom, conn)
	}
	if load, e := check.EdgeCongestion(g, w); load > 2+1e-9 {
		u, v := g.Endpoints(e)
		t.Fatalf("edge (%d,%d) congestion %v exceeds 2", u, v, load)
	}
}

func TestSweepCentralizedDominating(t *testing.T) {
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				p, err := cds.PackWithGuess(tc.g, tc.k, cds.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertDominating(t, tc.g, p, tc.k)
			}
		})
	}
}

func TestSweepDistributedDominating(t *testing.T) {
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				res, err := cdsdist.PackWithGuess(tc.g, tc.k, cds.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertDominating(t, tc.g, res.Packing, tc.k)
				if res.Meter.TotalRounds() <= 0 {
					t.Fatalf("seed %d: distributed run metered no rounds", seed)
				}
			}
		})
	}
}

func TestSweepSpanning(t *testing.T) {
	const epsilon = 0.2
	for _, tc := range sweepCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range sweepSeeds() {
				p, err := stp.Pack(tc.g, stp.Options{Seed: seed, KnownLambda: tc.k, Epsilon: epsilon})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				w := make([]check.Weighted, len(p.Trees))
				for i, tr := range p.Trees {
					w[i] = check.Weighted{Tree: tr.Tree, Weight: tr.Weight}
				}
				// Unit edge capacities are the implementation's contract,
				// strictly stronger than the theorem's congestion-2 ceiling.
				if err := check.SpanningPacking(tc.g, w, 1, check.SpanningFloor(tc.k, epsilon)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
