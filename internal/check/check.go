// Package check turns the paper's theorems into executable oracles:
// reusable invariant checkers for fractional dominating-tree packings
// (Theorems 1.1/1.2), fractional spanning-tree packings (Theorem 1.3),
// and class partitions (the Lemma E.1 predicate). Packer tests, the
// property-sweep harness, and internal/tester all assert through this
// package, so a refactor of a packer is gated by the paper's guarantees
// and not only by byte-identity of outputs.
//
// The package depends only on internal/graph: packings are passed as
// []Weighted so that cds, stp, and their tests can all import it without
// cycles.
//
// # Caller invariants
//
// Checkers read, never write: graphs and trees pass through untouched,
// so they are safe on live data structures (internal/serve runs them
// on snapshots loaded from disk before serving). Every tree must have
// been built for the graph being checked — vertex ids are interpreted
// against g — and a size floor of 0 (kappa/lambda unknown) skips the
// packing-size check while still enforcing domination/spanning and the
// per-vertex or per-edge capacity.
package check

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Weighted is one tree of a fractional packing with its weight. Both
// dominating-tree and spanning-tree packings convert to this shape.
type Weighted struct {
	Tree   *graph.Tree
	Weight float64
}

// eps absorbs float accumulation error in load and size comparisons.
const eps = 1e-9

// DominatingFloor is the Theorem 1.1/1.2 packing-size lower bound
// κ/(8·log2(n+2)): the paper guarantees Ω(κ/log n) w.h.p., and the
// constant 8 is the lenient factor the repository's tests calibrate
// against (a correct packer clears it on every tested family).
func DominatingFloor(kappa, n int) float64 {
	return float64(kappa) / (8 * log2(n))
}

// SpanningFloor is the Theorem 1.3 packing-size lower bound
// ⌊(λ-1)/2⌋·(1-6ε): the MWU packer stops once Lemma F.1 bounds the
// pre-rescaling load by 1+6ε, so the rescaled size keeps that fraction
// of the ⌈(λ-1)/2⌉ optimum (the floor form is the conservative bound).
func SpanningFloor(lambda int, epsilon float64) float64 {
	f := float64((lambda-1)/2) * (1 - 6*epsilon)
	if f < 0 {
		return 0
	}
	return f
}

// DominatingPacking verifies the Theorem 1.1/1.2 invariants: every tree
// is a connected dominating tree of g (edges present, domination holds)
// with weight in (0,1], the fractional load through every vertex is at
// most 1, and the packing size reaches DominatingFloor(kappa, n). Pass
// kappa = 0 to skip the size bound (unknown connectivity).
func DominatingPacking(g *graph.Graph, trees []Weighted, kappa int) error {
	if len(trees) == 0 {
		return fmt.Errorf("check: empty packing")
	}
	n := g.N()
	load := make([]float64, n)
	size := 0.0
	for i, t := range trees {
		if t.Weight <= 0 || t.Weight > 1+eps {
			return fmt.Errorf("check: tree %d weight %g outside (0,1]", i, t.Weight)
		}
		if err := t.Tree.ValidateIn(g); err != nil {
			return fmt.Errorf("check: tree %d: %w", i, err)
		}
		if !t.Tree.IsDominatingIn(g) {
			return fmt.Errorf("check: tree %d does not dominate g", i)
		}
		for _, v := range t.Tree.Vertices() {
			load[v] += t.Weight
		}
		size += t.Weight
	}
	for v, l := range load {
		if l > 1+eps {
			return fmt.Errorf("check: vertex %d carries fractional load %g > 1", v, l)
		}
	}
	if floor := DominatingFloor(kappa, n); kappa > 0 && size+eps < floor {
		return fmt.Errorf("check: packing size %.4f below Theorem 1.1 floor %.4f (kappa=%d, n=%d)", size, floor, kappa, n)
	}
	return nil
}

// SpanningPacking verifies the Theorem 1.3 invariants: every tree spans
// g with all edges present and positive weight, the fractional load
// through every edge is at most capacity (the paper packs against unit
// capacities; its ⌊(λ-1)/2⌋-size decompositions never need more than 2),
// and the packing size reaches minSize (use SpanningFloor, or 0 to skip).
func SpanningPacking(g *graph.Graph, trees []Weighted, capacity, minSize float64) error {
	if len(trees) == 0 {
		return fmt.Errorf("check: empty packing")
	}
	size := 0.0
	for i, t := range trees {
		if t.Weight <= 0 {
			return fmt.Errorf("check: tree %d weight %g not positive", i, t.Weight)
		}
		if !t.Tree.IsSpanning(g) {
			return fmt.Errorf("check: tree %d spans %d of %d vertices", i, t.Tree.Size(), g.N())
		}
		if err := t.Tree.ValidateIn(g); err != nil {
			return fmt.Errorf("check: tree %d: %w", i, err)
		}
		size += t.Weight
	}
	if load, e := EdgeCongestion(g, trees); load > capacity+eps {
		u, v := g.Endpoints(e)
		return fmt.Errorf("check: edge (%d,%d) carries fractional load %g > capacity %g", u, v, load, capacity)
	}
	if size+eps < minSize {
		return fmt.Errorf("check: packing size %.4f below floor %.4f", size, minSize)
	}
	return nil
}

// EdgeCongestion returns the maximum fractional load over edges of g,
// max_e Σ_{τ∋e} w_τ, and the edge id attaining it.
func EdgeCongestion(g *graph.Graph, trees []Weighted) (float64, int) {
	load := make([]float64, g.M())
	for _, t := range trees {
		t.Tree.ForEachEdge(func(child, parent int) {
			if id, ok := g.EdgeID(child, parent); ok {
				load[id] += t.Weight
			}
		})
	}
	maxLoad, maxEdge := 0.0, 0
	for id, l := range load {
		if l > maxLoad {
			maxLoad, maxEdge = l, id
		}
	}
	return maxLoad, maxEdge
}

// VertexLoad returns the maximum fractional load over vertices,
// max_v Σ_{τ∋v} w_τ.
func VertexLoad(n int, trees []Weighted) float64 {
	load := make([]float64, n)
	for _, t := range trees {
		for _, v := range t.Tree.Vertices() {
			load[v] += t.Weight
		}
	}
	maxLoad := 0.0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// Partition is the Lemma E.1 predicate on a class partition: every class
// must dominate g and induce a connected subgraph. classOf[v] lists the
// classes vertex v belongs to (a vertex may be in several). It returns
// the number of (vertex, class) domination violations and the number of
// classes that are empty or disconnected; (0, 0) means the partition is
// a valid CDS partition. internal/tester's centralized test and the
// packer property sweeps share this implementation.
func Partition(g *graph.Graph, classOf [][]int32, classes int) (domFailures, connFailures int) {
	n := g.N()

	// Domination: every vertex must see every class in its closed
	// neighborhood.
	covered := make([]bool, classes)
	for v := 0; v < n; v++ {
		for i := range covered {
			covered[i] = false
		}
		seen := 0
		mark := func(cs []int32) {
			for _, c := range cs {
				if c >= 0 && int(c) < classes && !covered[c] {
					covered[c] = true
					seen++
				}
			}
		}
		mark(classOf[v])
		for _, w := range g.Neighbors(v) {
			mark(classOf[w])
		}
		if seen < classes {
			domFailures += classes - seen
		}
	}

	// Connectivity: per class, BFS over members only.
	members := make([][]int, classes)
	for v := 0; v < n; v++ {
		for _, c := range classOf[v] {
			if c >= 0 && int(c) < classes {
				members[c] = append(members[c], v)
			}
		}
	}
	inClass := make([]bool, n)
	for c := 0; c < classes; c++ {
		if len(members[c]) == 0 {
			connFailures++
			continue
		}
		for _, v := range members[c] {
			inClass[v] = true
		}
		dist := graph.BFSRestricted(g, members[c][0], func(v int) bool { return inClass[v] })
		for _, v := range members[c] {
			if dist[v] < 0 {
				connFailures++
				break
			}
		}
		for _, v := range members[c] {
			inClass[v] = false
		}
	}
	return domFailures, connFailures
}

// ClassesOf projects a packing's trees to the per-vertex class lists
// Partition consumes: classOf[v] lists the indices of the trees whose
// vertex sets contain v, in tree order.
func ClassesOf(n int, trees []Weighted) [][]int32 {
	classOf := make([][]int32, n)
	for i, t := range trees {
		for _, v := range t.Tree.Vertices() {
			classOf[v] = append(classOf[v], int32(i))
		}
	}
	return classOf
}

func log2(n int) float64 {
	// The +2 keeps the bound finite on degenerate sizes, matching
	// layersFor and the existing test constants.
	return math.Log2(float64(n) + 2)
}
