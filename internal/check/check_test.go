package check_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/graph"
)

// buildGraph constructs a graph through the CSR builder, the same path
// every generator uses.
func buildGraph(n int, edges [][2]int) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}

func mustTree(t *testing.T, n, root int, parentOf map[int]int) *graph.Tree {
	t.Helper()
	tr, err := graph.NewTree(n, root, parentOf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDominatingPackingAcceptsValid(t *testing.T) {
	g := graph.Complete(6)
	spanning := graph.TreeFromBFS(g, 0)
	trees := []check.Weighted{{Tree: spanning, Weight: 1}}
	if err := check.DominatingPacking(g, trees, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDominatingPackingViolations(t *testing.T) {
	g := graph.Complete(6)
	span := graph.TreeFromBFS(g, 0)
	// A 2-vertex subtree of K6 still dominates (everything neighbors 0).
	sub := mustTree(t, 6, 0, map[int]int{1: 0})
	// A path graph where a single-leaf tree cannot dominate.
	pathG := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	leaf := mustTree(t, 5, 0, nil)
	// A tree edge absent from the host graph.
	cycle := graph.Cycle(6)
	chord := mustTree(t, 6, 0, map[int]int{3: 0})

	cases := []struct {
		name  string
		g     *graph.Graph
		trees []check.Weighted
		kappa int
		want  string
	}{
		{"empty", g, nil, 0, "empty packing"},
		{"weight-zero", g, []check.Weighted{{Tree: span, Weight: 0}}, 0, "outside (0,1]"},
		{"weight-high", g, []check.Weighted{{Tree: span, Weight: 1.5}}, 0, "outside (0,1]"},
		{"overload", g, []check.Weighted{{Tree: span, Weight: 0.8}, {Tree: sub, Weight: 0.8}}, 0, "fractional load"},
		{"non-dominating", pathG, []check.Weighted{{Tree: leaf, Weight: 1}}, 0, "does not dominate"},
		{"edge-missing", cycle, []check.Weighted{{Tree: chord, Weight: 1}}, 0, "not in host graph"},
		{"below-floor", g, []check.Weighted{{Tree: span, Weight: 0.01}}, 5, "below Theorem 1.1 floor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := check.DominatingPacking(tc.g, tc.trees, tc.kappa)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestSpanningPackingAcceptsValid(t *testing.T) {
	g := graph.Complete(5)
	t1 := graph.TreeFromBFS(g, 0)
	t2 := graph.TreeFromBFS(g, 1)
	trees := []check.Weighted{{Tree: t1, Weight: 0.5}, {Tree: t2, Weight: 0.5}}
	if err := check.SpanningPacking(g, trees, 1, check.SpanningFloor(2, 0.1)); err != nil {
		t.Fatal(err)
	}
}

func TestSpanningPackingViolations(t *testing.T) {
	g := graph.Complete(5)
	span := graph.TreeFromBFS(g, 0)
	partial := mustTree(t, 5, 0, map[int]int{1: 0})

	cases := []struct {
		name     string
		trees    []check.Weighted
		capacity float64
		minSize  float64
		want     string
	}{
		{"empty", nil, 1, 0, "empty packing"},
		{"not-spanning", []check.Weighted{{Tree: partial, Weight: 1}}, 1, 0, "spans 2 of 5"},
		{"edge-overload", []check.Weighted{{Tree: span, Weight: 0.8}, {Tree: span, Weight: 0.8}}, 1, 0, "> capacity"},
		{"below-floor", []check.Weighted{{Tree: span, Weight: 0.1}}, 1, 1.0, "below floor"},
		{"weight-nonpositive", []check.Weighted{{Tree: span, Weight: -0.2}}, 1, 0, "not positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := check.SpanningPacking(g, tc.trees, tc.capacity, tc.minSize)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestEdgeCongestionDoubledTree(t *testing.T) {
	g := graph.Complete(4)
	span := graph.TreeFromBFS(g, 0)
	load, _ := check.EdgeCongestion(g, []check.Weighted{
		{Tree: span, Weight: 0.75}, {Tree: span, Weight: 0.75},
	})
	if math.Abs(load-1.5) > 1e-12 {
		t.Fatalf("edge congestion %v, want 1.5", load)
	}
	if vl := check.VertexLoad(4, []check.Weighted{{Tree: span, Weight: 0.75}}); math.Abs(vl-0.75) > 1e-12 {
		t.Fatalf("vertex load %v, want 0.75", vl)
	}
}

func TestPartition(t *testing.T) {
	// C6 with two classes: evens and odds — each dominates and each is
	// NOT connected (alternating vertices of a cycle are independent),
	// so connectivity must flag both.
	g := graph.Cycle(6)
	classOf := make([][]int32, 6)
	for v := 0; v < 6; v++ {
		classOf[v] = []int32{int32(v % 2)}
	}
	dom, conn := check.Partition(g, classOf, 2)
	if dom != 0 {
		t.Fatalf("domination failures %d, want 0", dom)
	}
	if conn != 2 {
		t.Fatalf("connectivity failures %d, want 2", conn)
	}

	// One class holding every vertex: valid.
	for v := range classOf {
		classOf[v] = []int32{0}
	}
	if dom, conn := check.Partition(g, classOf, 1); dom != 0 || conn != 0 {
		t.Fatalf("whole-graph class flagged: dom=%d conn=%d", dom, conn)
	}

	// A class with no members fails domination everywhere and counts as
	// disconnected.
	if dom, conn := check.Partition(g, classOf, 2); dom != 6 || conn != 1 {
		t.Fatalf("empty class: dom=%d conn=%d, want 6, 1", dom, conn)
	}
}

func TestClassesOf(t *testing.T) {
	g := graph.Complete(4)
	span := graph.TreeFromBFS(g, 0)
	sub := mustTree(t, 4, 1, map[int]int{2: 1})
	classOf := check.ClassesOf(4, []check.Weighted{{Tree: span, Weight: 1}, {Tree: sub, Weight: 1}})
	want := [][]int32{{0}, {0, 1}, {0, 1}, {0}}
	for v := range want {
		if len(classOf[v]) != len(want[v]) {
			t.Fatalf("vertex %d classes %v, want %v", v, classOf[v], want[v])
		}
		for i := range want[v] {
			if classOf[v][i] != want[v][i] {
				t.Fatalf("vertex %d classes %v, want %v", v, classOf[v], want[v])
			}
		}
	}
}

func TestFloors(t *testing.T) {
	if f := check.DominatingFloor(8, 64); f <= 0 || f > 8 {
		t.Fatalf("DominatingFloor(8, 64) = %v out of (0, 8]", f)
	}
	if f := check.SpanningFloor(15, 0.1); math.Abs(f-7*0.4) > 1e-12 {
		t.Fatalf("SpanningFloor(15, 0.1) = %v, want 2.8", f)
	}
	if f := check.SpanningFloor(2, 0.3); f != 0 {
		t.Fatalf("SpanningFloor(2, 0.3) = %v, want 0", f)
	}
	if f := check.SpanningFloor(3, 0.5); f != 0 {
		t.Fatalf("negative floor not clamped: %v", f)
	}
}
