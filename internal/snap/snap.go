// Package snap is the durable on-disk form of a packed decomposition:
// a versioned, deterministic, checksummed snapshot of the trees a
// packer produced for one (graph, kind, options) triple, plus the Store
// that reads and writes them atomically.
//
// The paper's decompositions are pure functions of the graph (for a
// fixed seed), so the packed trees — not the packing run — are the
// durable artifact: a snapshot written once can be reloaded by any
// later process, shipped between machines, or handed from
// cmd/decompose to cmd/serve as an interchange file. A snapshot embeds
// the full canonical edge list of its graph, so a file is
// self-contained: the graph content hash, the kind, the packing
// options digest, and every tree's edge list can all be re-derived and
// cross-checked from the bytes alone.
//
// # File format (version 1)
//
// All integers are little-endian, all floats are IEEE-754 bits:
//
//	magic    [8]byte  "REPROSNP"
//	version  uint32   1
//	n        uint32   vertex count
//	m        uint32   edge count
//	edges    m × (uint32 u, uint32 v)   canonical sorted edge list
//	graphKey uint64   FNV-64a content hash of (n, edges)
//	kind     uint8    1 = dominating, 2 = spanning
//	digest   uint64   packing-options digest (OptionsDigest)
//	size     float64  packing size Σ w_τ (pack stat)
//	trees    uint32   tree count
//	per tree:
//	  weight float64
//	  root   uint32
//	  vcount uint32   vertices in the tree
//	  (vcount-1) × (uint32 vertex, uint32 parent)  non-root vertices,
//	                                               ascending by vertex
//	checksum uint64   FNV-64a over every preceding byte
//
// Encoding is deterministic: the same packing always serializes to the
// same bytes (tree vertex lists are stored sorted, no maps or
// timestamps are involved), so snapshot files can be compared or
// content-addressed byte-for-byte.
//
// # Caller invariants
//
// A Snapshot must never be served without verification: Load checks
// the whole-file checksum, the magic/version, the embedded graph hash,
// and the structural validity of every tree (each parent list must
// form a single tree rooted at its root), and any failure is reported
// as ErrCorrupt — the caller must treat that as a cache miss and
// recompute, never as a request error. Verify additionally replays the
// internal/check packing oracles against the graph the caller intends
// to serve, so a tampered or stale file that still checksums cannot
// poison results. Snapshots share the caller's tree and edge slices;
// treat a captured Snapshot as immutable.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/check"
	"repro/internal/graph"
)

// Version is the snapshot format version this package reads and
// writes. Files carrying any other version fail to decode with
// ErrCorrupt (a future reader that understands several versions would
// dispatch here).
const Version = 1

// magic identifies a snapshot file; anything else is ErrCorrupt.
const magic = "REPROSNP"

// The decomposition kinds a snapshot can carry. They mirror
// serve.Dominating / serve.Spanning as plain strings so this package
// does not depend on the serving layer.
const (
	// KindDominating is a Theorem 1.2 dominating-tree packing.
	KindDominating = "dominating"
	// KindSpanning is a Theorem 1.3 spanning-tree packing.
	KindSpanning = "spanning"
)

// ErrCorrupt reports a snapshot that failed any structural check: bad
// magic, unsupported version, truncation, checksum mismatch, or
// internally inconsistent content. Callers must treat it as a cache
// miss (recompute), never as a client-visible error.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// ErrNotFound reports a store lookup for a snapshot that was never
// written.
var ErrNotFound = errors.New("snap: snapshot not found")

// Snapshot is one packed decomposition in durable form: the canonical
// graph it was packed from, the kind, the packing-options digest, the
// packing size, and the weighted trees themselves.
type Snapshot struct {
	// N is the graph's vertex count.
	N int
	// Edges is the graph's canonical (sorted, deduplicated) edge list,
	// exactly as graph.Graph.Edges returns it.
	Edges []graph.Edge
	// Kind is KindDominating or KindSpanning.
	Kind string
	// OptionsDigest fingerprints the packing options (seed, ε) the
	// trees were computed with; see OptionsDigest.
	OptionsDigest uint64
	// Size is the packing size Σ w_τ.
	Size float64
	// Trees are the packed trees with their fractional weights, in
	// packing order.
	Trees []check.Weighted
}

// Capture builds a Snapshot of a packed decomposition over g. The
// graph's edge slice and the trees are shared, not copied; the
// resulting Snapshot must be treated as immutable.
func Capture(g *graph.Graph, kind string, digest uint64, trees []check.Weighted, size float64) (*Snapshot, error) {
	if kind != KindDominating && kind != KindSpanning {
		return nil, fmt.Errorf("snap: unknown decomposition kind %q", kind)
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("snap: refusing to capture an empty packing")
	}
	return &Snapshot{
		N:             g.N(),
		Edges:         g.Edges(),
		Kind:          kind,
		OptionsDigest: digest,
		Size:          size,
		Trees:         trees,
	}, nil
}

// Graph rebuilds the snapshot's graph from its embedded edge list.
func (s *Snapshot) Graph() *graph.Graph {
	edges := make([][2]int, len(s.Edges))
	for i, e := range s.Edges {
		edges[i] = [2]int{int(e.U), int(e.V)}
	}
	return graph.FromEdgeList(s.N, edges)
}

// keyHash is the FNV-64a content hash over (n, canonical edge list) —
// the registry key of the serving layer (serve.GraphID formats it).
func keyHash(n int, edges []graph.Edge) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	for _, e := range edges {
		binary.LittleEndian.PutUint32(buf[:4], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// GraphKey returns the content-hash registry key of a graph ("g" plus
// 16 hex digits), the same key serve.GraphID assigns: a pure function
// of the vertex count and the canonical edge list.
func GraphKey(g *graph.Graph) string {
	return fmt.Sprintf("g%016x", keyHash(g.N(), g.Edges()))
}

// GraphKey returns the content-hash key of the snapshot's embedded
// graph.
func (s *Snapshot) GraphKey() string {
	return fmt.Sprintf("g%016x", keyHash(s.N, s.Edges))
}

// OptionsDigest fingerprints the packing options that, together with
// the graph, determine a decomposition: the packing seed and the
// spanning packer's ε (0 selects the packer default and is part of the
// digest as-is). Two services with equal digests compute byte-identical
// decompositions for the same graph, so a snapshot is only reusable
// under a matching digest.
func OptionsDigest(seed uint64, epsilon float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(epsilon))
	h.Write(buf[:])
	return h.Sum64()
}

// Verify checks the snapshot against the graph it is about to be
// served for: the graph must match the embedded one (vertex count and
// canonical edge list), and the trees must pass the internal/check
// packing oracles for the snapshot's kind — every dominating tree must
// dominate with per-vertex load at most 1, every spanning tree must
// span with per-edge load at most 1. Size floors are skipped (the
// graph's connectivity is not stored), but structural validity and the
// capacity invariants are enough to keep a tampered or stale file from
// ever being served.
func (s *Snapshot) Verify(g *graph.Graph) error {
	if g.N() != s.N || g.M() != len(s.Edges) {
		return fmt.Errorf("snap: snapshot graph (n=%d, m=%d) does not match served graph (n=%d, m=%d)",
			s.N, len(s.Edges), g.N(), g.M())
	}
	for i, e := range g.Edges() {
		if e != s.Edges[i] {
			return fmt.Errorf("snap: snapshot edge %d is (%d,%d), served graph has (%d,%d)",
				i, s.Edges[i].U, s.Edges[i].V, e.U, e.V)
		}
	}
	switch s.Kind {
	case KindDominating:
		if err := check.DominatingPacking(g, s.Trees, 0); err != nil {
			return fmt.Errorf("snap: dominating oracle rejected snapshot: %w", err)
		}
	case KindSpanning:
		if err := check.SpanningPacking(g, s.Trees, 1, 0); err != nil {
			return fmt.Errorf("snap: spanning oracle rejected snapshot: %w", err)
		}
	default:
		return fmt.Errorf("snap: unknown decomposition kind %q", s.Kind)
	}
	return nil
}

// kindByte maps the kind strings to their wire bytes.
func kindByte(kind string) (byte, error) {
	switch kind {
	case KindDominating:
		return 1, nil
	case KindSpanning:
		return 2, nil
	}
	return 0, fmt.Errorf("snap: unknown decomposition kind %q", kind)
}

// Encode serializes the snapshot to its deterministic byte form,
// checksum trailer included.
func (s *Snapshot) Encode() ([]byte, error) {
	kb, err := kindByte(s.Kind)
	if err != nil {
		return nil, err
	}
	var w wireWriter
	w.bytes([]byte(magic))
	w.u32(Version)
	w.u32(uint32(s.N))
	w.u32(uint32(len(s.Edges)))
	for _, e := range s.Edges {
		w.u32(uint32(e.U))
		w.u32(uint32(e.V))
	}
	w.u64(keyHash(s.N, s.Edges))
	w.bytes([]byte{kb})
	w.u64(s.OptionsDigest)
	w.f64(s.Size)
	w.u32(uint32(len(s.Trees)))
	for i, t := range s.Trees {
		w.f64(t.Weight)
		w.u32(uint32(t.Tree.Root()))
		w.u32(uint32(t.Tree.Size()))
		for _, v := range t.Tree.Vertices() {
			if int(v) == t.Tree.Root() {
				continue
			}
			p, ok := t.Tree.Parent(int(v))
			if !ok {
				return nil, fmt.Errorf("snap: tree %d vertex %d has no parent and is not the root", i, v)
			}
			w.u32(uint32(v))
			w.u32(uint32(p))
		}
	}
	w.u64(w.sum())
	return w.buf, nil
}

// Decode parses and validates one snapshot file image: magic, version,
// whole-file checksum, and the structural validity of every tree (the
// parent lists must form single rooted trees over the embedded vertex
// count). Every failure wraps ErrCorrupt so callers can treat any bad
// file uniformly as a miss.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+4+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any valid snapshot", ErrCorrupt, len(data))
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if got, want := binary.LittleEndian.Uint64(trailer), fnvSum(body); got != want {
		return nil, fmt.Errorf("%w: checksum %016x does not match content %016x", ErrCorrupt, got, want)
	}
	r := wireReader{buf: body}
	if string(r.take(len(magic))) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.u32(); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, Version)
	}
	n := int(r.u32())
	m := int(r.u32())
	if r.err != nil || n <= 0 || m < 0 || m > len(r.buf)/8 {
		return nil, fmt.Errorf("%w: implausible header (n=%d, m=%d)", ErrCorrupt, n, m)
	}
	edges := make([]graph.Edge, m)
	for i := range edges {
		u, v := r.u32(), r.u32()
		if int(u) >= n || int(v) >= n {
			return nil, fmt.Errorf("%w: edge %d (%d,%d) out of range [0,%d)", ErrCorrupt, i, u, v, n)
		}
		edges[i] = graph.Edge{U: int32(u), V: int32(v)}
	}
	if got, want := r.u64(), keyHash(n, edges); got != want {
		return nil, fmt.Errorf("%w: embedded graph hash %016x does not match edge list %016x", ErrCorrupt, got, want)
	}
	var kind string
	switch kb := r.take(1); {
	case r.err != nil:
	case kb[0] == 1:
		kind = KindDominating
	case kb[0] == 2:
		kind = KindSpanning
	default:
		return nil, fmt.Errorf("%w: unknown kind byte %d", ErrCorrupt, kb[0])
	}
	digest := r.u64()
	size := r.f64()
	treeCount := int(r.u32())
	if r.err != nil || treeCount <= 0 || treeCount > len(r.buf) {
		return nil, fmt.Errorf("%w: implausible tree count %d", ErrCorrupt, treeCount)
	}
	trees := make([]check.Weighted, 0, treeCount)
	for i := 0; i < treeCount; i++ {
		weight := r.f64()
		root := int(r.u32())
		vcount := int(r.u32())
		if r.err != nil || vcount <= 0 || vcount > n {
			return nil, fmt.Errorf("%w: tree %d has implausible vertex count %d", ErrCorrupt, i, vcount)
		}
		parentOf := make(map[int]int, vcount)
		parentOf[root] = -1
		for j := 0; j < vcount-1; j++ {
			v, p := int(r.u32()), int(r.u32())
			if _, dup := parentOf[v]; dup {
				return nil, fmt.Errorf("%w: tree %d lists vertex %d twice", ErrCorrupt, i, v)
			}
			parentOf[v] = p
		}
		if r.err != nil {
			break
		}
		t, err := graph.NewTree(n, root, parentOf)
		if err != nil {
			return nil, fmt.Errorf("%w: tree %d is not a rooted tree: %v", ErrCorrupt, i, err)
		}
		trees = append(trees, check.Weighted{Tree: t, Weight: weight})
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated content", ErrCorrupt)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last tree", ErrCorrupt, len(r.buf))
	}
	return &Snapshot{N: n, Edges: edges, Kind: kind, OptionsDigest: digest, Size: size, Trees: trees}, nil
}

// fnvSum is the FNV-64a checksum the trailer carries.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// wireWriter accumulates the little-endian byte image.
type wireWriter struct{ buf []byte }

func (w *wireWriter) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *wireWriter) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *wireWriter) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *wireWriter) sum() uint64    { return fnvSum(w.buf) }

// wireReader consumes the byte image with sticky bounds checking:
// after the first short read every further read returns zero and err
// stays set, so decode loops need only one final error check.
type wireReader struct {
	buf []byte
	err error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = fmt.Errorf("short read")
		return make([]byte, n)
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *wireReader) u32() uint32  { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *wireReader) u64() uint64  { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }
