package snap

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Store is a flat directory of snapshot files keyed by
// (graph content hash, kind, options digest). Writes are crash-atomic:
// the image is written to a temp file in the same directory, synced,
// and renamed into place, so a reader can never observe a torn file —
// at worst it observes the old version or none. All methods are safe
// for concurrent use (atomic rename is the only coordination needed).
type Store struct {
	dir string
}

// NewStore opens a store rooted at dir. The directory is created
// lazily on first Save, so opening a store never fails and a read-only
// consumer of a missing directory just sees ErrNotFound.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// FileName is the snapshot file name for a cache key — the graph
// content key, the kind, and the options digest, dash-joined with a
// .snap suffix.
func FileName(graphKey, kind string, digest uint64) string {
	return fmt.Sprintf("%s-%s-%016x.snap", graphKey, kind, digest)
}

// Path returns the absolute (store-relative) path a key's snapshot is
// stored at.
func (st *Store) Path(graphKey, kind string, digest uint64) string {
	return filepath.Join(st.dir, FileName(graphKey, kind, digest))
}

// Load reads and fully validates the snapshot stored under the key.
// A missing file is ErrNotFound; a torn, truncated, tampered, or
// wrong-version file — or a valid file whose content does not actually
// match the requested key — is ErrCorrupt. Both must be treated as
// cache misses by serving callers.
func (st *Store) Load(graphKey, kind string, digest uint64) (*Snapshot, error) {
	data, err := os.ReadFile(st.Path(graphKey, kind, digest))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, FileName(graphKey, kind, digest))
	}
	if err != nil {
		return nil, fmt.Errorf("snap: reading %s: %w", FileName(graphKey, kind, digest), err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if s.GraphKey() != graphKey || s.Kind != kind || s.OptionsDigest != digest {
		return nil, fmt.Errorf("%w: file content is keyed (%s, %s, %016x), requested (%s, %s, %016x)",
			ErrCorrupt, s.GraphKey(), s.Kind, s.OptionsDigest, graphKey, kind, digest)
	}
	return s, nil
}

// Save writes the snapshot under its canonical key via temp-file +
// rename, creating the store directory if needed. An existing snapshot
// under the same key is replaced atomically.
func (st *Store) Save(s *Snapshot) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return fmt.Errorf("snap: creating store dir: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, ".tmp-snap-*")
	if err != nil {
		return fmt.Errorf("snap: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	_, err = tmp.Write(data)
	if err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snap: writing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snap: closing %s: %w", tmpName, err)
	}
	final := st.Path(s.GraphKey(), s.Kind, s.OptionsDigest)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snap: committing %s: %w", final, err)
	}
	return nil
}
