package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cds"
	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/stp"
)

// packSpanning packs the test graph's spanning trees and converts to
// the neutral check.Weighted shape.
func packSpanning(t *testing.T, g *graph.Graph, seed uint64) ([]check.Weighted, float64) {
	t.Helper()
	p, err := stp.Pack(g, stp.Options{Seed: seed})
	if err != nil {
		t.Fatalf("stp.Pack: %v", err)
	}
	trees := make([]check.Weighted, len(p.Trees))
	for i, tr := range p.Trees {
		trees[i] = check.Weighted{Tree: tr.Tree, Weight: tr.Weight}
	}
	return trees, p.Size()
}

// packDominating packs dominating trees of the test graph.
func packDominating(t *testing.T, g *graph.Graph, seed uint64) ([]check.Weighted, float64) {
	t.Helper()
	p, err := cds.Pack(g, cds.Options{Seed: seed})
	if err != nil {
		t.Fatalf("cds.Pack: %v", err)
	}
	trees := make([]check.Weighted, len(p.Trees))
	for i, tr := range p.Trees {
		trees[i] = check.Weighted{Tree: tr.Tree, Weight: tr.Weight}
	}
	return trees, p.Size()
}

func testGraph() *graph.Graph { return graph.Hypercube(4) }

// sameTrees requires byte-level equality of two tree collections:
// same order, weights, roots, vertex sets, and parent pointers.
func sameTrees(t *testing.T, a, b []check.Weighted) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("tree count %d != %d", len(a), len(b))
	}
	for i := range a {
		ta, tb := a[i].Tree, b[i].Tree
		if a[i].Weight != b[i].Weight {
			t.Fatalf("tree %d weight %v != %v", i, a[i].Weight, b[i].Weight)
		}
		if ta.Root() != tb.Root() || ta.Size() != tb.Size() {
			t.Fatalf("tree %d shape (root=%d,size=%d) != (root=%d,size=%d)",
				i, ta.Root(), ta.Size(), tb.Root(), tb.Size())
		}
		va, vb := ta.Vertices(), tb.Vertices()
		for j := range va {
			if va[j] != vb[j] {
				t.Fatalf("tree %d vertex %d: %d != %d", i, j, va[j], vb[j])
			}
			pa, oka := ta.Parent(int(va[j]))
			pb, okb := tb.Parent(int(vb[j]))
			if pa != pb || oka != okb {
				t.Fatalf("tree %d parent of %d: (%d,%v) != (%d,%v)", i, va[j], pa, oka, pb, okb)
			}
		}
	}
}

func TestRoundTripSpanning(t *testing.T) {
	g := testGraph()
	trees, size := packSpanning(t, g, 7)
	digest := OptionsDigest(7, 0)
	s, err := Capture(g, KindSpanning, digest, trees, size)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.N != g.N() || len(got.Edges) != g.M() || got.Kind != KindSpanning ||
		got.OptionsDigest != digest || got.Size != size {
		t.Fatalf("header round-trip: %+v", got)
	}
	if got.GraphKey() != GraphKey(g) {
		t.Fatalf("graph key %s != %s", got.GraphKey(), GraphKey(g))
	}
	sameTrees(t, trees, got.Trees)
	if err := got.Verify(g); err != nil {
		t.Fatalf("Verify after round-trip: %v", err)
	}
	// Determinism: re-encoding the decoded snapshot reproduces the bytes.
	data2, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("encode(decode(x)) differs from x: encoding is not canonical")
	}
}

func TestRoundTripDominating(t *testing.T) {
	g := testGraph()
	trees, size := packDominating(t, g, 3)
	s, err := Capture(g, KindDominating, OptionsDigest(3, 0), trees, size)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	sameTrees(t, trees, got.Trees)
	if err := got.Verify(g); err != nil {
		t.Fatalf("Verify after round-trip: %v", err)
	}
}

// encodeSpanning is the shared fixture for the corruption tests.
func encodeSpanning(t *testing.T) ([]byte, *graph.Graph) {
	t.Helper()
	g := testGraph()
	trees, size := packSpanning(t, g, 7)
	s, err := Capture(g, KindSpanning, OptionsDigest(7, 0), trees, size)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return data, g
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, _ := encodeSpanning(t)
	cases := map[string]func([]byte) []byte{
		"empty":     func(b []byte) []byte { return nil },
		"tiny":      func(b []byte) []byte { return b[:8] },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"no-trailer": func(b []byte) []byte {
			return b[:len(b)-8]
		},
		"bad-magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		},
		"wrong-version": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[8:], Version+1)
			// Re-checksum so only the version check can reject it.
			binary.LittleEndian.PutUint64(c[len(c)-8:], fnvSum(c[:len(c)-8]))
			return c
		},
		"bit-flip-header": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[13] ^= 0x01
			return c
		},
		"bit-flip-middle": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		},
		"bit-flip-trailer": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x80
			return c
		},
		"trailing-garbage": func(b []byte) []byte {
			return append(append([]byte(nil), b...), 0xde, 0xad)
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Decode(corrupt(data))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode of %s file: err=%v, want ErrCorrupt", name, err)
			}
		})
	}
}

// TestDecodeRejectsTamperedTree crafts a checksum-valid file whose tree
// structure is broken (a vertex parented to itself far from the root),
// and requires the structural validation to catch it.
func TestDecodeRejectsTamperedTree(t *testing.T) {
	data, g := encodeSpanning(t)
	s, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Rebuild with a cycle: point the first tree's last vertex at itself.
	headerLen := len(magic) + 4 + 4 + 4 + 8*g.M() + 8 + 1 + 8 + 8 + 4
	treeStart := headerLen + 8 + 4 + 4 // weight + root + vcount
	lastPair := treeStart + 8*(s.Trees[0].Tree.Size()-2)
	c := append([]byte(nil), data...)
	v := binary.LittleEndian.Uint32(c[lastPair:])
	binary.LittleEndian.PutUint32(c[lastPair+4:], v) // parent := self
	binary.LittleEndian.PutUint64(c[len(c)-8:], fnvSum(c[:len(c)-8]))
	if _, err := Decode(c); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("self-parented tree decoded: err=%v, want ErrCorrupt", err)
	}
}

// TestVerifyRejectsWrongGraph serves a valid snapshot against a
// different graph and expects the oracle layer to reject it.
func TestVerifyRejectsWrongGraph(t *testing.T) {
	data, _ := encodeSpanning(t)
	s, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	other := graph.Torus(4, 4) // same n, different edges
	if err := s.Verify(other); err == nil {
		t.Fatal("snapshot verified against a different graph")
	}
}

// TestVerifyRejectsOverloadedPacking doubles every weight so the
// per-edge capacity oracle must fire even though the file would
// checksum fine.
func TestVerifyRejectsOverloadedPacking(t *testing.T) {
	g := testGraph()
	trees, size := packSpanning(t, g, 7)
	heavy := make([]check.Weighted, len(trees))
	for i, w := range trees {
		heavy[i] = check.Weighted{Tree: w.Tree, Weight: w.Weight * 4}
	}
	s, err := Capture(g, KindSpanning, 1, heavy, size*4)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if err := s.Verify(g); err == nil {
		t.Fatal("overloaded packing passed the spanning oracle")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(filepath.Join(dir, "nested", "store"))
	g := testGraph()
	trees, size := packSpanning(t, g, 7)
	digest := OptionsDigest(7, 0)
	s, err := Capture(g, KindSpanning, digest, trees, size)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}

	// Missing file (and even a missing directory) is ErrNotFound.
	if _, err := st.Load(GraphKey(g), KindSpanning, digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load before save: err=%v, want ErrNotFound", err)
	}
	if err := st.Save(s); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := st.Load(GraphKey(g), KindSpanning, digest)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sameTrees(t, trees, got.Trees)

	// A different digest is a different key: not found, not corrupt.
	if _, err := st.Load(GraphKey(g), KindSpanning, digest+1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load with wrong digest: err=%v, want ErrNotFound", err)
	}

	// No temp litter after a successful save.
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("store holds %d files after one save, want 1", len(entries))
	}
}

// TestStoreLoadRejectsMisfiledSnapshot renames a valid snapshot onto
// another key's path; the content/key cross-check must refuse it.
func TestStoreLoadRejectsMisfiledSnapshot(t *testing.T) {
	st := NewStore(t.TempDir())
	g := testGraph()
	trees, size := packSpanning(t, g, 7)
	digest := OptionsDigest(7, 0)
	s, err := Capture(g, KindSpanning, digest, trees, size)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if err := st.Save(s); err != nil {
		t.Fatalf("Save: %v", err)
	}
	other := graph.Torus(4, 4)
	if err := os.Rename(
		st.Path(GraphKey(g), KindSpanning, digest),
		st.Path(GraphKey(other), KindSpanning, digest),
	); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := st.Load(GraphKey(other), KindSpanning, digest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("misfiled snapshot loaded: err=%v, want ErrCorrupt", err)
	}
}

// TestStoreLoadRejectsTruncatedFile truncates the on-disk file in
// place (a torn write simulation) and expects ErrCorrupt.
func TestStoreLoadRejectsTruncatedFile(t *testing.T) {
	st := NewStore(t.TempDir())
	g := testGraph()
	trees, size := packDominating(t, g, 3)
	digest := OptionsDigest(3, 0)
	s, err := Capture(g, KindDominating, digest, trees, size)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if err := st.Save(s); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := st.Path(GraphKey(g), KindDominating, digest)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(path, info.Size()/3); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := st.Load(GraphKey(g), KindDominating, digest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated snapshot loaded: err=%v, want ErrCorrupt", err)
	}
}

func TestCaptureRejectsBadInput(t *testing.T) {
	g := testGraph()
	trees, size := packSpanning(t, g, 7)
	if _, err := Capture(g, "mystery", 1, trees, size); err == nil {
		t.Fatal("Capture accepted an unknown kind")
	}
	if _, err := Capture(g, KindSpanning, 1, nil, 0); err == nil {
		t.Fatal("Capture accepted an empty packing")
	}
}

func TestSnapshotGraphRebuild(t *testing.T) {
	g := testGraph()
	trees, size := packSpanning(t, g, 7)
	s, err := Capture(g, KindSpanning, 1, trees, size)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	rebuilt := s.Graph()
	if rebuilt.N() != g.N() || rebuilt.M() != g.M() {
		t.Fatalf("rebuilt graph n=%d m=%d, want n=%d m=%d", rebuilt.N(), rebuilt.M(), g.N(), g.M())
	}
	if GraphKey(rebuilt) != GraphKey(g) {
		t.Fatalf("rebuilt graph key %s != %s", GraphKey(rebuilt), GraphKey(g))
	}
}
