package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one recorded phase of a trace: a name, the offset from the
// trace's start, and the phase duration, both in nanoseconds.
type Span struct {
	Name       string `json:"name"`
	StartNs    int64  `json:"start_ns"`
	DurationNs int64  `json:"duration_ns"`
}

// Trace collects the phase spans of one request. It travels through
// context.Context (WithTrace / FromContext), and every method is
// nil-receiver-safe so instrumented code paths record unconditionally —
// a request without a trace attached simply records nothing. All
// methods are safe for concurrent use (a batch request runs demands in
// parallel over one trace).
type Trace struct {
	id    string
	begin time.Time

	mu     sync.Mutex // guards spans, attach
	spans  []Span
	attach map[string]any
}

// NewTrace starts a trace now under the given id (NewID() makes one).
func NewTrace(id string) *Trace {
	return &Trace{id: id, begin: time.Now()}
}

// ID returns the trace id ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Record appends a span that started at start and ends now.
func (t *Trace) Record(name string, start time.Time) {
	if t == nil {
		return
	}
	sp := Span{
		Name:       name,
		StartNs:    start.Sub(t.begin).Nanoseconds(),
		DurationNs: time.Since(start).Nanoseconds(),
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Attach stores a structured payload (e.g. a pack profile) under key,
// carried verbatim into the trace's Data snapshot.
func (t *Trace) Attach(key string, v any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attach == nil {
		t.attach = make(map[string]any)
	}
	t.attach[key] = v
	t.mu.Unlock()
}

// HasSpans reports whether any span has been recorded (false on nil).
func (t *Trace) HasSpans() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans) > 0
}

// TraceData is a trace's serializable snapshot: the id, the wall-clock
// start, the span list in recording order, the overall duration (first
// span start to last span end), and any attachments.
type TraceData struct {
	ID         string         `json:"id"`
	Start      time.Time      `json:"start"`
	DurationNs int64          `json:"duration_ns"`
	Spans      []Span         `json:"spans"`
	Attached   map[string]any `json:"attached,omitempty"`
}

// Data snapshots the trace. The copy is deep for the span list and
// shallow for attachment values (attachments are treated as immutable
// once attached).
func (t *Trace) Data() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceData{ID: t.id, Start: t.begin, Spans: append([]Span(nil), t.spans...)}
	for _, sp := range d.Spans {
		if end := sp.StartNs + sp.DurationNs; end > d.DurationNs {
			d.DurationNs = end
		}
	}
	if len(t.attach) > 0 {
		d.Attached = make(map[string]any, len(t.attach))
		for k, v := range t.attach {
			d.Attached[k] = v
		}
	}
	return d
}

// traceKey is the context key Trace travels under.
type traceKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil — safe to use
// directly as a receiver, since Trace methods accept nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Ring is a fixed-capacity ring of recent traces backing a
// recent-traces endpoint. Add is O(1); Snapshot copies out the resident
// traces newest-first. Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex // guards buf, next, total
	buf   []*Trace
	next  int
	total uint64
}

// NewRing returns a ring holding the last n traces (n < 1 is treated
// as 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*Trace, n)}
}

// Add inserts a trace, evicting the oldest when full.
func (r *Ring) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns the number of traces ever added (a counter metric).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the resident traces' data, newest first, at most
// limit entries (limit <= 0 means all resident).
func (r *Ring) Snapshot(limit int) []TraceData {
	r.mu.Lock()
	var traces []*Trace
	n := len(r.buf)
	for i := 1; i <= n; i++ {
		t := r.buf[(r.next-i+n)%n]
		if t == nil {
			break
		}
		traces = append(traces, t)
		if limit > 0 && len(traces) == limit {
			break
		}
	}
	r.mu.Unlock()
	out := make([]TraceData, len(traces))
	for i, t := range traces {
		out[i] = t.Data()
	}
	return out
}
