package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// metricKind discriminates the three exposition shapes.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered name: exactly one of counter, gauge, and
// hist is set, matching kind.
type metric struct {
	name    string
	help    string
	kind    metricKind
	counter func() uint64
	gauge   func() float64
	hist    *Histogram
}

// Registry names counters, gauges, and histograms and writes them in
// the Prometheus text exposition format. Counters and gauges are
// closures over the owner's own state (an atomic load, a locked
// snapshot), so packages expose metrics without importing the serving
// layer — the registry pulls values at scrape time instead of being
// pushed into on hot paths. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex // guards metrics
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register installs a metric, panicking on duplicate or invalid names —
// both are programming errors a test catches on first scrape.
func (r *Registry) register(m *metric) {
	if !validMetricName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[m.name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.name))
	}
	r.metrics[m.name] = m
}

// Counter registers a monotonically nondecreasing metric read through
// fn at scrape time.
func (r *Registry) Counter(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: fn})
}

// Gauge registers a point-in-time metric read through fn at scrape
// time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: fn})
}

// Histogram creates, registers, and returns a histogram exposed as the
// standard _bucket/_sum/_count triple.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// validMetricName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WritePrometheus writes every registered metric in the text exposition
// format, sorted by name so scrapes are diffable. Histograms emit only
// their non-empty buckets (cumulative counts at explicit le boundaries
// are valid at any subset of thresholds) plus the +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.counter())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
				m.name, m.name, strconv.FormatFloat(m.gauge(), 'g', -1, 64))
		case kindHistogram:
			err = writeHistogram(w, m.name, m.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits one histogram's bucket/sum/count triple.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		c := h.BucketCount(b)
		if c == 0 {
			continue
		}
		cum += c
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpper(b), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, cum, name, h.Sum(), name, h.Count())
	return err
}

// Handler returns an http.Handler serving the exposition text (the
// GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
