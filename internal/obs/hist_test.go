package obs

import (
	"sort"
	"testing"
)

// TestBucketMapping pins the bucket math: the mapping is monotone,
// continuous at the exact/log boundary, and BucketUpper is the true
// inclusive upper bound of every bucket.
func TestBucketMapping(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	// Exact low range: one bucket per value.
	for v := uint64(0); v < 2*histSub; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, v)
		}
		if up := BucketUpper(int(v)); up != v {
			t.Fatalf("BucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
	// Monotone, and v always lands within [prev upper+1, upper].
	var values []uint64
	for shift := 0; shift < 64; shift++ {
		values = append(values, uint64(1)<<shift)
		if shift < 63 {
			values = append(values, uint64(1)<<shift+1, uint64(1)<<(shift+1)-1)
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	prev := -1
	for _, v := range values {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		if up := BucketUpper(b); v > up {
			t.Fatalf("value %d above its bucket %d upper %d", v, b, up)
		}
		if b > 0 {
			if lo := BucketUpper(b - 1); v <= lo {
				t.Fatalf("value %d at or below bucket %d lower bound %d", v, b, lo)
			}
		}
	}
	// The top bucket's upper bound covers the whole range.
	if up := BucketUpper(NumBuckets - 1); up != ^uint64(0) {
		t.Fatalf("top bucket upper = %d, want MaxUint64", up)
	}
	if b := bucketOf(^uint64(0)); b != NumBuckets-1 {
		t.Fatalf("bucketOf(MaxUint64) = %d, want %d", b, NumBuckets-1)
	}
	// Relative resolution: bucket width / lower bound <= 2^-histSubBits.
	for b := 2 * histSub; b < NumBuckets; b += 7 {
		lo, hi := BucketUpper(b-1)+1, BucketUpper(b)
		if width := hi - lo + 1; width<<histSubBits > lo+lo {
			// width <= lo/2^histSubBits·2 would be a miss; the exact bound
			// is width == lo >> (histSubBits) rounded — assert 12.5% here.
			if float64(width)/float64(lo) > 1.0/float64(histSub)+1e-9 {
				t.Fatalf("bucket %d [%d,%d] width %d exceeds %v relative resolution",
					b, lo, hi, width, 1.0/float64(histSub))
			}
		}
	}
}

// TestHistogramQuantiles checks the quantile estimates against an exact
// distribution and the max clamp.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d", got)
	}
	// 100 observations 1..100: p50 must land within a bucket of 50.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 || h.Max() != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 50 || p50 > 55 {
		t.Fatalf("p50 = %d, want ~50 within bucket resolution", p50)
	}
	if p99 < 99 || p99 > 100 {
		t.Fatalf("p99 = %d, want 99..100", p99)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("p100 = %d, want exactly the max", got)
	}
	// Negative observations clamp to zero rather than corrupting buckets.
	h.Observe(-5)
	if h.BucketCount(0) != 1 {
		t.Fatalf("negative observation not clamped into bucket 0")
	}
}

// TestHistogramDeterministic pins replay determinism: two histograms
// fed the same sequence summarize identically (the bucket math has no
// hidden wall-clock or random state).
func TestHistogramDeterministic(t *testing.T) {
	var a, b Histogram
	seq := []int64{0, 1, 17, 17, 1023, 4096, 1 << 40, 3}
	for _, v := range seq {
		a.Observe(v)
	}
	for _, v := range seq {
		b.Observe(v)
	}
	if a.Summarize() != b.Summarize() {
		t.Fatalf("same sequence, different summaries:\n%+v\n%+v", a.Summarize(), b.Summarize())
	}
	for i := 0; i < NumBuckets; i++ {
		if a.BucketCount(i) != b.BucketCount(i) {
			t.Fatalf("bucket %d diverged: %d vs %d", i, a.BucketCount(i), b.BucketCount(i))
		}
	}
}

// TestHistogramMerge checks Merge equals observing the union.
func TestHistogramMerge(t *testing.T) {
	var a, b, union Histogram
	for v := int64(1); v < 200; v += 3 {
		a.Observe(v)
		union.Observe(v)
	}
	for v := int64(1000); v < 5000; v += 97 {
		b.Observe(v)
		union.Observe(v)
	}
	a.Merge(&b)
	if a.Summarize() != union.Summarize() {
		t.Fatalf("merge diverges from union:\n%+v\n%+v", a.Summarize(), union.Summarize())
	}
}

// TestObserveZeroAlloc is the hot-path guarantee: recording into a
// histogram must not allocate (the serving path records several
// observations per demand).
func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	h.Observe(1 << 20) // warm the max so the CAS loop settles
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123456)
	})
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %v per call, want 0", allocs)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// (meaningful under -race) and checks nothing is lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Max() != workers*per-1 {
		t.Fatalf("max = %d, want %d", h.Max(), workers*per-1)
	}
}
