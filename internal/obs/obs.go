// Package obs is the stdlib-only observability layer: deterministic
// log-scale histograms, a Prometheus-text-format metric registry, and
// lightweight per-request trace spans carried through context.Context.
// It is the one place in the module where wall-clock reads are legal —
// measuring real durations is its entire job — and it is therefore
// explicitly carved out of the fingerprinted package set policed by
// internal/lint's nondetsource analyzer (see lint.DefaultFingerprinted).
//
// The three pieces compose but do not depend on each other:
//
//   - Histogram is a fixed-bucket log-scale distribution with
//     allocation-free recording (atomic bucket counters), mergeable
//     across instances, and with p50/p95/p99/max derivable from the
//     buckets. The bucket boundaries are a pure function of the value —
//     no wall clock, no randomness — so a replayed workload fills
//     byte-identical buckets.
//   - Registry names counters, gauges, and histograms and writes them
//     in the Prometheus text exposition format. Packages register
//     closures over their own counters, so nothing needs to import the
//     serving layer to be scraped.
//   - Trace records named phase spans (start offset + duration) for one
//     request, travels via context.Context, and lands in a fixed-size
//     Ring whose snapshot backs a recent-traces endpoint.
//
// internal/serve wires all three through the request path (see its
// obs.go), cmd/serve exposes GET /metrics and GET /v1/traces over them,
// and serve.GenerateLoad folds per-demand trace spans into the
// per-phase latency summaries of its reports.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// idSeq makes NewID unique within a process.
var idSeq atomic.Uint64

// NewID returns a short request/trace id: a wall-clock prefix (so ids
// from different process runs rarely collide in logs) and a process-wide
// sequence suffix (so ids within a run never collide).
func NewID() string {
	return fmt.Sprintf("%08x-%05x", uint32(time.Now().UnixNano()>>12), idSeq.Add(1)&0xfffff)
}
