package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Bucket layout: values below 1<<histSubBits get one bucket each, and
// every octave above that is split into histSub sub-buckets, giving a
// worst-case relative resolution of 2^-histSubBits (12.5%) across the
// full uint64 range. The mapping is a pure function of the value —
// no wall clock, no randomness, no state — so identical observation
// sequences always produce identical bucket contents, and replay tests
// over histogram snapshots stay byte-identical.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	// NumBuckets is the fixed bucket count: histSub exact low buckets
	// plus histSub sub-buckets for each of the 64-histSubBits octaves.
	NumBuckets = (64-histSubBits)*histSub + histSub
)

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	return (exp-histSubBits+1)*histSub + int((v>>(uint(exp)-histSubBits))&(histSub-1))
}

// BucketUpper returns the largest value the bucket holds (the
// Prometheus "le" boundary of the bucket).
func BucketUpper(b int) uint64 {
	if b < histSub {
		return uint64(b)
	}
	exp := uint(b/histSub) - 1 + histSubBits
	sub := uint64(b % histSub)
	lower := uint64(1)<<exp + sub<<(exp-histSubBits)
	return lower + 1<<(exp-histSubBits) - 1
}

// Histogram is a fixed-bucket log-scale distribution safe for
// concurrent use. Observe is allocation-free (atomic adds into a fixed
// array), so it can sit on serving hot paths; Merge folds another
// histogram in, so per-worker histograms can aggregate without
// contending on one instance.
//
// The zero value is ready to use, but a Histogram must not be copied
// after first use (it embeds atomics).
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// Observe records one value. Negative values clamp to zero (durations
// from a monotonic clock cannot go backwards, but callers should not
// crash if arithmetic produces a stray negative).
func (h *Histogram) Observe(v int64) {
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.counts[bucketOf(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// BucketCount returns the observation count of one bucket.
func (h *Histogram) BucketCount(b int) uint64 { return h.counts[b].Load() }

// Merge adds o's observations into h. Counts and sums add exactly; the
// merged max is the larger of the two.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the nearest-rank observation, clamped to the
// observed max so a wide top bucket never reports beyond reality. The
// result is a deterministic function of the observation multiset.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			u := BucketUpper(i)
			if m := h.max.Load(); m < u {
				return m
			}
			return u
		}
	}
	return h.max.Load()
}

// Summary is a Histogram condensed to the fields reports care about.
type Summary struct {
	// Count is the number of observations; Sum their total.
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// Max is the exact largest observation; P50/P95/P99 are bucket
	// upper-bound quantile estimates (<= 12.5% relative error).
	Max uint64 `json:"max"`
	P50 uint64 `json:"p50"`
	P95 uint64 `json:"p95"`
	P99 uint64 `json:"p99"`
}

// Summarize snapshots the histogram into a Summary. Concurrent
// observations may land between field reads; callers wanting an exact
// snapshot should quiesce writers first (tests do, scrapes don't care).
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
