package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRegistryExposition checks the text format: sorted names, HELP/TYPE
// lines, counter/gauge/histogram shapes, and cumulative bucket counts.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.", func() uint64 { return 42 })
	r.Gauge("test_fraction", "A ratio.", func() float64 { return 0.25 })
	h := r.Histogram("test_latency_ns", "Latency.")
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()

	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n# TYPE test_requests_total counter\ntest_requests_total 42\n",
		"# TYPE test_fraction gauge\ntest_fraction 0.25\n",
		"# TYPE test_latency_ns histogram\n",
		"test_latency_ns_bucket{le=\"3\"} 2\n",
		"test_latency_ns_bucket{le=\"+Inf\"} 3\n",
		"test_latency_ns_sum 106\n",
		"test_latency_ns_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
	// Sorted: test_fraction before test_latency_ns before test_requests_total.
	if f, l, c := strings.Index(got, "test_fraction"), strings.Index(got, "test_latency_ns"),
		strings.Index(got, "test_requests_total"); !(f < l && l < c) {
		t.Fatalf("metrics not sorted by name:\n%s", got)
	}
	// The bucket for 100 must be cumulative (count 3, not 1).
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "test_latency_ns_bucket") && !strings.Contains(line, "+Inf") &&
			!strings.Contains(line, "le=\"3\"") {
			if !strings.HasSuffix(line, " 3") {
				t.Fatalf("histogram buckets not cumulative: %q", line)
			}
		}
	}
}

// TestRegistryHandler checks the HTTP wrapper's content type.
func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "", func() uint64 { return 1 })
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1") {
		t.Fatalf("body missing metric:\n%s", rec.Body.String())
	}
}

// TestRegistryRejectsBadNames pins the fail-fast behavior for duplicate
// and malformed registrations.
func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "", func() uint64 { return 0 })
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { r.Gauge("ok_total", "", func() float64 { return 0 }) })
	mustPanic("leading digit", func() { r.Counter("9bad", "", func() uint64 { return 0 }) })
	mustPanic("bad rune", func() { r.Counter("bad-name", "", func() uint64 { return 0 }) })
	mustPanic("empty", func() { r.Counter("", "", func() uint64 { return 0 }) })
}
