package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTraceSpans checks span recording, attachments, and the Data
// snapshot's duration computation.
func TestTraceSpans(t *testing.T) {
	tr := NewTrace("req-1")
	if tr.ID() != "req-1" {
		t.Fatalf("ID = %q", tr.ID())
	}
	if tr.HasSpans() {
		t.Fatal("fresh trace reports spans")
	}
	start := time.Now()
	tr.Record("pack", start)
	tr.Record("run", start)
	tr.Attach("kind", "spanning")
	if !tr.HasSpans() {
		t.Fatal("HasSpans false after Record")
	}
	d := tr.Data()
	if d.ID != "req-1" || len(d.Spans) != 2 {
		t.Fatalf("data = %+v", d)
	}
	if d.Spans[0].Name != "pack" || d.Spans[1].Name != "run" {
		t.Fatalf("span order = %q, %q", d.Spans[0].Name, d.Spans[1].Name)
	}
	if d.Spans[0].DurationNs < 0 {
		t.Fatalf("negative duration %d", d.Spans[0].DurationNs)
	}
	for _, sp := range d.Spans {
		if end := sp.StartNs + sp.DurationNs; end > d.DurationNs {
			t.Fatalf("trace duration %d below span end %d", d.DurationNs, end)
		}
	}
	if d.Attached["kind"] != "spanning" {
		t.Fatalf("attachment lost: %+v", d.Attached)
	}
	// Snapshot is deep for spans: mutating the trace must not change d.
	tr.Record("persist", start)
	if len(d.Spans) != 2 {
		t.Fatal("snapshot aliases live span slice")
	}
}

// TestTraceNilSafe pins that every method is a no-op on a nil receiver,
// so instrumented code never branches on trace presence.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Record("x", time.Now())
	tr.Attach("k", 1)
	if tr.ID() != "" || tr.HasSpans() {
		t.Fatal("nil trace not inert")
	}
	if d := tr.Data(); d.ID != "" || len(d.Spans) != 0 {
		t.Fatalf("nil trace data = %+v", d)
	}
}

// TestTraceContext round-trips a trace through context.Context.
func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yields a trace")
	}
	tr := NewTrace("ctx-1")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}

// TestRingEviction checks capacity, newest-first order, eviction, and
// the total counter.
func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace(string(rune('a' + i)))
		tr.Record("phase", time.Now())
		r.Add(tr)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	snap := r.Snapshot(0)
	if len(snap) != 3 {
		t.Fatalf("resident = %d, want 3", len(snap))
	}
	// Newest first: e, d, c survive; a, b evicted.
	for i, want := range []string{"e", "d", "c"} {
		if snap[i].ID != want {
			t.Fatalf("snap[%d] = %q, want %q", i, snap[i].ID, want)
		}
	}
	if lim := r.Snapshot(2); len(lim) != 2 || lim[0].ID != "e" {
		t.Fatalf("limited snapshot = %+v", lim)
	}
	r.Add(nil)
	if r.Total() != 5 {
		t.Fatal("nil add counted")
	}
}

// TestRingConcurrent exercises concurrent Add/Snapshot under -race.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace(NewID())
				tr.Record("p", time.Now())
				r.Add(tr)
				_ = r.Snapshot(4)
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d", r.Total())
	}
}

// TestNewIDUnique checks process-local uniqueness of generated ids.
func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
