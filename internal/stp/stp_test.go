package stp

import (
	"math"
	"testing"

	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
)

func TestPackValidation(t *testing.T) {
	if _, err := Pack(graph.NewBuilder(1).Graph(), Options{}); err == nil {
		t.Fatal("single vertex accepted")
	}
	if _, err := Pack(graph.FromEdgeList(4, [][2]int{{0, 1}}), Options{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestPackTreeIsTrivialForLambda1(t *testing.T) {
	g := graph.Path(6) // λ=1, ⌈(λ-1)/2⌉ -> floor 1 tree by our ceilHalf(0)=0->1 clamp
	p, err := Pack(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s := p.Size(); s < 0.8 || s > 1+1e-9 {
		t.Fatalf("size = %f, want about 1", s)
	}
}

func TestPackSizeReachesTutteBound(t *testing.T) {
	tests := []struct {
		name   string
		g      *graph.Graph
		lambda int
	}{
		{"K8", graph.Complete(8), 7},
		{"Q4", graph.Hypercube(4), 4},
		{"Torus5x5", graph.Torus(5, 5), 4},
		{"C12", graph.Cycle(12), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Pack(tc.g, Options{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(tc.g); err != nil {
				t.Fatal(err)
			}
			want := float64((tc.lambda-1+1)/2) * (1 - 0.35) // ⌈(λ-1)/2⌉(1-ε'), lenient
			bound := math.Ceil(float64(tc.lambda-1) / 2)
			if bound < 1 {
				bound = 1
			}
			if got := p.Size(); got < want || got > bound+1e-6 {
				t.Fatalf("size %.3f outside [%.3f, %.3f] for λ=%d", got, want, bound, tc.lambda)
			}
			if p.Stats.Lambda != tc.lambda {
				t.Fatalf("Stats.Lambda = %d, want %d", p.Stats.Lambda, tc.lambda)
			}
		})
	}
}

func TestPackMaxLoadBoundedByLemmaF1(t *testing.T) {
	g := graph.Hypercube(5)
	p, err := Pack(g, Options{Seed: 5, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.MaxLoad > 1+6*0.1+0.05 {
		t.Fatalf("pre-rescale max load %.3f exceeds 1+6ε", p.Stats.MaxLoad)
	}
	if l := p.MaxEdgeLoad(g); l > 1+1e-9 {
		t.Fatalf("post-rescale edge load %.6f > 1", l)
	}
}

func TestPackKnownLambdaSkipsEstimation(t *testing.T) {
	g := graph.Hypercube(4)
	p, err := Pack(g, Options{Seed: 7, KnownLambda: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Lambda != 4 {
		t.Fatalf("Stats.Lambda = %d, want 4", p.Stats.Lambda)
	}
	if p.Stats.Subgraphs != 1 || p.Stats.SubgraphsPacked != 1 {
		t.Fatalf("unsampled run reports Subgraphs=%d SubgraphsPacked=%d, want 1/1",
			p.Stats.Subgraphs, p.Stats.SubgraphsPacked)
	}
}

func TestPackSamplingPathForLargeLambda(t *testing.T) {
	// K48 has λ=47; with a low sampling threshold the η-subgraph path
	// must engage and still produce a valid packing of size Ω(λ).
	g := graph.Complete(48)
	p, err := Pack(g, Options{Seed: 9, Epsilon: 0.3, SampleThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Subgraphs < 2 {
		t.Fatalf("sampling did not engage: η=%d", p.Stats.Subgraphs)
	}
	if p.Stats.SubgraphsPacked < 1 || p.Stats.SubgraphsPacked > p.Stats.Subgraphs {
		t.Fatalf("SubgraphsPacked=%d outside [1, η=%d]", p.Stats.SubgraphsPacked, p.Stats.Subgraphs)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got < 47.0/8 {
		t.Fatalf("sampled packing size %.2f below λ/8", got)
	}
}

func TestMaxEdgeTreeCountPolylog(t *testing.T) {
	g := graph.Hypercube(5)
	p, err := Pack(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(float64(g.N()) + 2)
	c := p.MaxEdgeTreeCount(g)
	// Theorem 1.3's O(log^3 n) bound, with a laptop-scale constant; the
	// count is also trivially bounded by the iteration count.
	if float64(c) > 8*logn*logn*logn {
		t.Fatalf("edge tree count %d above 8 log^3 n", c)
	}
	if c > p.Stats.Iterations+1 {
		t.Fatalf("edge tree count %d exceeds distinct-tree budget %d", c, p.Stats.Iterations+1)
	}
}

func TestIntegralPack(t *testing.T) {
	g := graph.Complete(64) // λ=63
	trees, err := IntegralPack(g, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) < 2 {
		t.Fatalf("only %d integral trees from K64", len(trees))
	}
	// Edge-disjointness.
	used := map[[2]int]bool{}
	for ti, tree := range trees {
		if !tree.IsSpanning(g) {
			t.Fatalf("tree %d not spanning", ti)
		}
		if err := tree.ValidateIn(g); err != nil {
			t.Fatal(err)
		}
		tree.ForEachEdge(func(child, parent int) {
			key := [2]int{min(child, parent), max(child, parent)}
			if used[key] {
				t.Fatalf("edge %v reused across integral trees", key)
			}
			used[key] = true
		})
	}
}

func TestIntegralPackLowLambda(t *testing.T) {
	g := graph.Cycle(10) // λ=2: η=1, one tree
	trees, err := IntegralPack(g, Options{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
}

// TestPackAgainstExactLambdaOnRandomGraphs cross-checks the packing size
// against the exact λ computed by two independent algorithms.
func TestPackAgainstExactLambdaOnRandomGraphs(t *testing.T) {
	rng := ds.NewRand(17)
	for trial := 0; trial < 4; trial++ {
		g := graph.RandomHamCycles(24, 3, rng) // λ≈6
		lambda := flow.EdgeConnectivity(g)
		if lambda != flow.StoerWagner(g) {
			t.Fatal("flow and Stoer-Wagner disagree")
		}
		p, err := Pack(g, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatal(err)
		}
		bound := float64((lambda + 1) / 2)
		if got := p.Size(); got > bound+1e-6 {
			t.Fatalf("trial %d: size %.3f exceeds ⌈(λ-1)/2⌉=%v", trial, got, bound)
		}
		if got := p.Size(); got < bound*0.6 {
			t.Fatalf("trial %d: size %.3f below 0.6×bound %.3f", trial, got, bound)
		}
	}
}
