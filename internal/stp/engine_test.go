package stp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mst"
)

// TestKruskalOracleMatchesFullSortPerIteration gates the incremental
// hot path against the specification it replaced: at every MWU
// iteration, the union-find scan over the maintained (load, id) order
// must choose exactly the edges a from-scratch mst.Kruskal sort picks
// under the same loads and tie-break.
func TestKruskalOracleMatchesFullSortPerIteration(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		lambda int
	}{
		{"K10", graph.Complete(10), 9},
		{"Q4", graph.Hypercube(4), 4},
		{"Torus4x4", graph.Torus(4, 4), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Epsilon: 0.15}.normalize(tc.g.N())
			checked := 0
			oracle := func(e *Engine, seed uint64) ([]int, int, error) {
				chosen, rounds, err := KruskalOracle(e, seed)
				if err != nil {
					return chosen, rounds, err
				}
				x := e.Loads()
				want := mst.Kruskal(e.Graph(), func(id int) float64 { return x[id] })
				if len(chosen) != len(want) {
					t.Fatalf("iteration %d: %d chosen vs %d reference", e.Iterations(), len(chosen), len(want))
				}
				for i := range want {
					if chosen[i] != want[i] {
						t.Fatalf("iteration %d: chosen[%d] = %d, reference %d", e.Iterations(), i, chosen[i], want[i])
					}
				}
				checked++
				return chosen, rounds, nil
			}
			eng := NewEngine(tc.g, tc.lambda, opts, oracle)
			for iter := 0; iter < 400 && !eng.Done(); iter++ {
				if _, err := eng.Step(0); err != nil {
					t.Fatal(err)
				}
			}
			if checked < 10 {
				t.Fatalf("only %d iterations exercised", checked)
			}
			p := eng.Finish()
			if err := p.Validate(tc.g); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEngineMaxLoadMatchesScan pins the O(1) order-tail MaxLoad against
// the O(m) rescan it replaced.
func TestEngineMaxLoadMatchesScan(t *testing.T) {
	g := graph.Complete(12)
	opts := Options{Epsilon: 0.2}.normalize(g.N())
	eng := NewEngine(g, 11, opts, KruskalOracle)
	for iter := 0; iter < 150 && !eng.Done(); iter++ {
		if _, err := eng.Step(0); err != nil {
			t.Fatal(err)
		}
		maxZ := 0.0
		for _, x := range eng.Loads() {
			if z := x * float64(eng.HalfLambda()); z > maxZ {
				maxZ = z
			}
		}
		if got := eng.MaxLoad(); got != maxZ {
			t.Fatalf("iteration %d: MaxLoad() = %v, scan says %v", eng.Iterations(), got, maxZ)
		}
	}
}

// TestEngineDeduplicatesTrees checks the hashed signature path: packing
// a cycle (whose MWU loop revisits the same trees constantly) must
// produce distinct entries only, with weights aggregated.
func TestEngineDeduplicatesTrees(t *testing.T) {
	g := graph.Cycle(8)
	opts := Options{Epsilon: 0.1}.normalize(g.N())
	eng := NewEngine(g, 2, opts, KruskalOracle)
	for iter := 0; iter < 200 && !eng.Done(); iter++ {
		if _, err := eng.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Iterations() <= len(eng.entries) && eng.Iterations() > 8 {
		t.Fatalf("no deduplication: %d iterations, %d entries", eng.Iterations(), len(eng.entries))
	}
	seen := make(map[string]bool)
	for _, ent := range eng.entries {
		key := ""
		for _, id := range ent.ids {
			key += string(rune(id)) + ","
		}
		if seen[key] {
			t.Fatalf("duplicate tree entry %v", ent.ids)
		}
		seen[key] = true
	}
}
