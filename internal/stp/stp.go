// Package stp implements the fractional spanning-tree packing of
// Theorem 1.3: size ⌈(λ-1)/2⌉(1-ε) for graphs with edge connectivity λ.
//
// The core is the Lagrangian-relaxation loop of Section 5.1: maintain a
// weighted tree collection of total weight 1, penalize loaded edges with
// exponential costs c_e = exp(α·z_e), and repeatedly add the MST under
// those costs until Cost(MST) > (1-ε)·Σ c_e·x_e, at which point Lemma
// F.1 guarantees max_e z_e <= 1+6ε. Costs are handled in the log domain
// (mst.LogSumExp), so large exponents never overflow.
//
// For general λ, Section 5.2's random edge-sampling splits the graph
// into η spanning subgraphs of edge connectivity Θ(log n/ε²) each and
// packs them independently; edge-disjointness makes the union valid.
package stp

import (
	"fmt"
	"math"

	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
)

// Tree is one weighted spanning tree of a packing.
type Tree struct {
	Tree   *graph.Tree
	Weight float64
}

// Packing is a fractional spanning tree packing: Σ_{τ∋e} w_τ <= 1 for
// every edge e.
type Packing struct {
	Trees []Tree
	Stats Stats
}

// Stats records the run diagnostics.
type Stats struct {
	// Lambda is the edge connectivity (or estimate) the run scaled by.
	Lambda int
	// Iterations counts MWU iterations across all subgraphs.
	Iterations int
	// MaxLoad is max_e z_e before rescaling (Lemma F.1 bounds it 1+6ε).
	MaxLoad float64
	// Subgraphs is η, the number of sampled subgraphs the run attempted
	// (1 = no sampling).
	Subgraphs int
	// SubgraphsPacked counts the sampled subgraphs that actually packed;
	// disconnected samples (a low-probability event) are skipped, so the
	// Theorem 1.3 size accounting must divide by this, not by Subgraphs.
	SubgraphsPacked int
	// DistinctTrees counts distinct trees in the collection.
	DistinctTrees int
	// StopChecksExact counts stop tests that ran the exact O(m) rescan;
	// StopChecksSkipped counts those the conservative O(1) bound skipped.
	// Their ratio is the skip bound's effectiveness (observability only —
	// neither feeds the fingerprint).
	StopChecksExact   int
	StopChecksSkipped int
	// DedupHits counts oracle trees folded into an existing entry by the
	// FNV signature index instead of allocating a new one.
	DedupHits int
}

// Size returns Σ w_τ.
func (p *Packing) Size() float64 {
	s := 0.0
	for _, t := range p.Trees {
		s += t.Weight
	}
	return s
}

// MaxEdgeLoad returns max_e Σ_{τ∋e} w_τ.
func (p *Packing) MaxEdgeLoad(g *graph.Graph) float64 {
	load := make([]float64, g.M())
	for _, t := range p.Trees {
		t.Tree.ForEachEdge(func(child, parent int) {
			if id, ok := g.EdgeID(child, parent); ok {
				load[id] += t.Weight
			}
		})
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// MaxEdgeTreeCount returns the maximum number of distinct trees using a
// single edge (Theorem 1.3's O(log^3 n) bound).
func (p *Packing) MaxEdgeTreeCount(g *graph.Graph) int {
	count := make([]int, g.M())
	for _, t := range p.Trees {
		t.Tree.ForEachEdge(func(child, parent int) {
			if id, ok := g.EdgeID(child, parent); ok {
				count[id]++
			}
		})
	}
	max := 0
	for _, c := range count {
		if c > max {
			max = c
		}
	}
	return max
}

// Validate checks that every tree is a spanning tree of g with positive
// weight and that no edge carries load above 1 (+eps).
func (p *Packing) Validate(g *graph.Graph) error {
	for i, t := range p.Trees {
		if t.Weight <= 0 {
			return fmt.Errorf("stp: tree %d has non-positive weight %f", i, t.Weight)
		}
		if !t.Tree.IsSpanning(g) {
			return fmt.Errorf("stp: tree %d is not spanning", i)
		}
		if err := t.Tree.ValidateIn(g); err != nil {
			return fmt.Errorf("stp: tree %d: %w", i, err)
		}
	}
	if load := p.MaxEdgeLoad(g); load > 1+1e-9 {
		return fmt.Errorf("stp: max edge load %f exceeds 1", load)
	}
	return nil
}

// Options configures the packing. The zero value is usable.
type Options struct {
	// Seed drives the randomness (edge sampling).
	Seed uint64
	// Epsilon is the paper's ε (default 0.1).
	Epsilon float64
	// MaxIters caps the MWU iterations per subgraph (default Θ(log^3 n),
	// at least 256).
	MaxIters int
	// KnownLambda skips connectivity estimation when > 0. Otherwise λ is
	// computed exactly with Stoer–Wagner (standing in for the paper's
	// distributed 3-approximation of [21]; see DESIGN.md).
	KnownLambda int
	// SampleThreshold: subgraph sampling kicks in when λ exceeds this
	// multiple of log n/ε² (paper: constant ~20; default 6, scaled for
	// laptop-size graphs).
	SampleThreshold float64
}

func (o Options) normalize(n int) Options {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.1
	}
	if o.MaxIters <= 0 {
		// Θ(log^3 n)-flavored cap with the constants the analysis hides;
		// the loop normally stops far earlier via the Lemma F.1 test.
		l := math.Log2(float64(n) + 2)
		o.MaxIters = int(80 * l * l * l / o.Epsilon)
		if o.MaxIters < 2000 {
			o.MaxIters = 2000
		}
		if o.MaxIters > 60000 {
			o.MaxIters = 60000
		}
	}
	if o.SampleThreshold <= 0 {
		o.SampleThreshold = 6
	}
	return o
}

// Pack computes a fractional spanning tree packing of g of size
// ⌈(λ-1)/2⌉(1-O(ε)).
func Pack(g *graph.Graph, opts Options) (*Packing, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("stp: graph too small (n=%d)", n)
	}
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("stp: graph disconnected")
	}
	opts = opts.normalize(n)
	lambda := opts.KnownLambda
	if lambda <= 0 {
		lambda = flow.StoerWagner(g)
	}
	if lambda < 1 {
		return nil, fmt.Errorf("stp: edge connectivity %d < 1", lambda)
	}

	logn := math.Log2(float64(n) + 2)
	cutoff := opts.SampleThreshold * logn / (opts.Epsilon * opts.Epsilon)
	if float64(lambda) <= cutoff {
		p, err := packLowLambda(g, lambda, opts)
		if err != nil {
			return nil, err
		}
		p.Stats.Subgraphs = 1
		p.Stats.SubgraphsPacked = 1
		return p, nil
	}

	// Section 5.2: split edges into η random subgraphs so each keeps
	// edge connectivity Θ(log n/ε²) w.h.p., pack each, and take the
	// union (valid because the subgraphs are edge-disjoint).
	eta := int(float64(lambda) / cutoff)
	if eta < 2 {
		eta = 2
	}
	rng := ds.NewRand(opts.Seed ^ 0x5eed)
	assign := make([]int, g.M())
	for e := range assign {
		assign[e] = rng.IntN(eta)
	}
	var out Packing
	out.Stats.Lambda = lambda
	out.Stats.Subgraphs = eta
	for i := 0; i < eta; i++ {
		sub := g.SubgraphByEdges(func(id int) bool { return assign[id] == i })
		if !graph.IsConnected(sub) {
			// Sampling failed for this subgraph (low-probability event);
			// skip it — the remaining subgraphs still pack Ω(λ).
			continue
		}
		subLambda := flow.StoerWagner(sub)
		if subLambda < 1 {
			continue
		}
		subOpts := opts
		subOpts.KnownLambda = subLambda
		sp, err := packLowLambda(sub, subLambda, subOpts)
		if err != nil {
			return nil, fmt.Errorf("stp: subgraph %d: %w", i, err)
		}
		// Trees of a spanning subgraph are spanning trees of g; re-host
		// them (edges exist in g by construction).
		out.Trees = append(out.Trees, sp.Trees...)
		out.Stats.SubgraphsPacked++
		out.Stats.Iterations += sp.Stats.Iterations
		if sp.Stats.MaxLoad > out.Stats.MaxLoad {
			out.Stats.MaxLoad = sp.Stats.MaxLoad
		}
		out.Stats.DistinctTrees += sp.Stats.DistinctTrees
		out.Stats.StopChecksExact += sp.Stats.StopChecksExact
		out.Stats.StopChecksSkipped += sp.Stats.StopChecksSkipped
		out.Stats.DedupHits += sp.Stats.DedupHits
	}
	if len(out.Trees) == 0 {
		return nil, fmt.Errorf("stp: all %d sampled subgraphs were disconnected", eta)
	}
	return &out, nil
}

// packLowLambda is the Section 5.1 loop for λ = O(log n), run on the
// shared incremental Engine with the centralized Kruskal-order oracle.
// The first Step seeds the collection with a weight-1 spanning tree
// (Kruskal under all-zero loads = unit weights); every further Step is
// one MWU iteration, so Stats.Iterations keeps its historical meaning of
// MWU iterations after the initial tree.
func packLowLambda(g *graph.Graph, lambda int, opts Options) (*Packing, error) {
	eng := NewEngine(g, lambda, opts, KruskalOracle)
	if _, err := eng.Step(0); err != nil {
		return nil, err
	}
	for iter := 0; iter < opts.MaxIters && !eng.Done(); iter++ {
		if _, err := eng.Step(0); err != nil {
			return nil, err
		}
	}
	p := eng.Finish()
	p.Stats.Iterations = eng.Iterations() - 1
	return p, nil
}

func ceilHalf(x int) int {
	if x <= 0 {
		return 0
	}
	return (x + 1) / 2
}

// IntegralPack produces edge-disjoint spanning trees of count
// Ω(λ/log n): partition the edges into η = max(1, λ/(c·log n)) random
// groups and keep one spanning tree from each connected group (the
// "considerably simpler variant" noted under Theorem 1.3).
func IntegralPack(g *graph.Graph, opts Options) ([]*graph.Tree, error) {
	n := g.N()
	if n < 2 || !graph.IsConnected(g) {
		return nil, fmt.Errorf("stp: need a connected graph with n >= 2")
	}
	opts = opts.normalize(n)
	lambda := opts.KnownLambda
	if lambda <= 0 {
		lambda = flow.StoerWagner(g)
	}
	logn := math.Log2(float64(n) + 2)
	eta := int(float64(lambda) / (3 * logn))
	if eta < 1 {
		eta = 1
	}
	rng := ds.NewRand(opts.Seed ^ 0x1f7e)
	assign := make([]int, g.M())
	for e := range assign {
		assign[e] = rng.IntN(eta)
	}
	var out []*graph.Tree
	for i := 0; i < eta; i++ {
		sub := g.SubgraphByEdges(func(id int) bool { return assign[id] == i })
		if !graph.IsConnected(sub) {
			continue
		}
		tree := graph.TreeFromBFS(sub, 0)
		// Rebuild over g's vertex ids (identical since sub is spanning).
		out = append(out, tree)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stp: no connected sampled subgraph (λ=%d too small for η=%d)", lambda, eta)
	}
	return out, nil
}
