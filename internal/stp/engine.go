package stp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/mst"
)

// MSTOracle computes one MWU iteration's minimum spanning tree under the
// engine's current per-edge loads and returns the chosen edge ids plus
// the distributed rounds the computation cost (0 for centralized
// oracles). Centralized oracles should return the edges in the engine's
// maintained (load, id) order; distributed oracles may return them in
// any order (internal/dist returns them id-sorted).
type MSTOracle func(e *Engine, seed uint64) (chosen []int, rounds int, err error)

// Engine is the Section 5.1 Lagrangian-relaxation loop shared by the
// centralized (internal/stp) and distributed (internal/stpdist)
// spanning-tree packers, parameterized by the MST oracle. Its hot path
// is incremental:
//
//   - The per-iteration (1-β) rescale preserves relative edge order, so
//     instead of re-sorting all m edges per iteration the engine keeps a
//     ds.OrderedLoads permutation and folds the n-1 bumped tree edges
//     back in with one O(m) merge (same weight-then-edge-id tie-break,
//     so the centralized oracle's union-find scan picks bit-identical
//     trees).
//   - max_e z_e reads off the order's tail in O(1).
//   - The Lemma F.1 stop test (Cost(MST) > (1-ε)·Σ c_e·x_e with
//     c_e = exp(α·z_e)) is gated by an O(1) conservative bound: when
//     log(n-1) + α·max_{e∈MST} z_e is far below the largest term of the
//     full log-sum-exp, the test provably cannot fire and the O(m)
//     exponential rescan is skipped. When the bound is inconclusive the
//     test is evaluated exactly as before, so the stop iteration — and
//     with it the packing — is unchanged.
//   - Distinct trees are deduplicated by FNV-1a hashing of sorted edge
//     ids over a reused scratch buffer (with stored-id verification on
//     hash hits) instead of per-iteration string signatures, and new
//     trees are materialized through a pooled graph.TreePool builder.
//
// The engine does not stop on its own after the Lemma F.1 test is
// guarded: the first Step seeds the collection with the oracle's tree at
// weight 1 and skips the stop test entirely (all loads are still zero,
// which would trivially satisfy it — the iters > 1 guard both loops now
// share). Callers bound the loop with Options.MaxIters.
type Engine struct {
	g       *graph.Graph
	lambda  int
	halfLam int
	eps     float64
	alpha   float64
	beta    float64

	x     []float64        // per-edge load x_e (z_e = x_e·halfLam)
	order *ds.OrderedLoads // edge ids sorted by (x_e, id)

	entries  []*packEntry
	sigIndex map[uint64][]int32 // FNV-1a of sorted edge ids -> entry indices

	// Scratch reused across iterations.
	uf      *ds.UnionFind
	chosen  []int   // centralized oracle output
	byLoad  []int32 // chosen sorted by (load, id), merge input
	byID    []int   // chosen sorted by id, signature input
	pool    *graph.TreePool
	costMST *mst.LogSumExp
	costAll *mst.LogSumExp

	// Constants of the skip bound.
	logTreeEdges float64 // log(n-1)
	logOneMinusE float64 // log(1-ε)

	oracle MSTOracle
	iters  int
	done   bool

	// Profiling counters copied into Stats by Finish (observability only;
	// none of these feed the fingerprint).
	stopExact   int // stop tests that ran the exact O(m) rescan
	stopSkipped int // stop tests the conservative O(1) bound skipped
	dedupHits   int // trees folded into an existing entry by signature
}

// packEntry is one distinct tree of the collection with its accumulated
// weight; ids holds the sorted edge ids for hash-collision verification.
type packEntry struct {
	tree   *graph.Tree
	ids    []int32
	weight float64
}

// skipMargin is the log-domain safety margin of the conservative stop
// bound. The bound compares exact-arithmetic envelopes of two LogSumExp
// accumulations whose float error is bounded by ~m·ulp of the result
// (≪ 1e-9 in the log domain); a margin of 1.0 dwarfs that by nine
// orders of magnitude, so a skipped test can never have fired.
const skipMargin = 1.0

// NewEngine returns an engine over g for edge connectivity lambda. opts
// must already be normalized (Pack and stpdist.Pack both normalize
// before constructing engines); only Epsilon is read.
func NewEngine(g *graph.Graph, lambda int, opts Options, oracle MSTOracle) *Engine {
	n, m := g.N(), g.M()
	halfLam := ceilHalf(lambda - 1) // ⌈(λ-1)/2⌉, the Tutte/Nash-Williams bound
	if halfLam < 1 {
		halfLam = 1
	}
	eps := opts.Epsilon
	alpha := math.Log(2*float64(m)/eps) / eps
	return &Engine{
		g:            g,
		lambda:       lambda,
		halfLam:      halfLam,
		eps:          eps,
		alpha:        alpha,
		beta:         1 / (alpha * float64(halfLam)),
		x:            make([]float64, m),
		order:        ds.NewOrderedLoads(m),
		sigIndex:     make(map[uint64][]int32),
		uf:           ds.NewUnionFind(n),
		chosen:       make([]int, 0, n-1),
		byLoad:       make([]int32, 0, n-1),
		byID:         make([]int, 0, n-1),
		pool:         graph.NewTreePool(n),
		costMST:      mst.NewLogSumExp(),
		costAll:      mst.NewLogSumExp(),
		logTreeEdges: math.Log(float64(n - 1)),
		logOneMinusE: math.Log(1 - eps),
		oracle:       oracle,
	}
}

// Graph returns the host graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// HalfLambda returns ⌈(λ-1)/2⌉ clamped to at least 1, the packing-size
// target the loads are scaled by.
func (e *Engine) HalfLambda() int { return e.halfLam }

// Loads returns the per-edge load vector x_e (z_e = x_e·HalfLambda()).
// The slice is owned by the engine; oracles read it, nobody writes it.
func (e *Engine) Loads() []float64 { return e.x }

// Done reports whether the Lemma F.1 stop test (or the direct load
// check) has fired.
func (e *Engine) Done() bool { return e.done }

// Iterations returns the number of Steps taken, including the initial
// weight-1 tree and the step on which the stop test fired.
func (e *Engine) Iterations() int { return e.iters }

// Step runs one MWU iteration: MST under the current loads, the stop
// test (skipped on the first step — see the type comment), and the
// (1-β)-rescale-plus-β-bump collection update. It returns the oracle's
// distributed rounds.
func (e *Engine) Step(seed uint64) (int, error) {
	if e.done {
		return 0, fmt.Errorf("stp: Step after engine stopped")
	}
	e.iters++
	chosen, rounds, err := e.oracle(e, seed)
	if err != nil {
		return rounds, err
	}
	if e.iters > 1 && e.shouldStop(chosen) {
		e.done = true
		return rounds, nil
	}
	beta := e.beta
	if e.iters == 1 {
		beta = 1 // first tree takes all the weight
	}
	if err := e.addTree(chosen, beta); err != nil {
		return rounds, err
	}
	return rounds, nil
}

// MaxLoad returns max_e z_e in O(1) from the maintained order's tail.
func (e *Engine) MaxLoad() float64 {
	return e.x[e.order.MaxID()] * float64(e.halfLam)
}

// shouldStop evaluates the two stop conditions of the Section 5.1 loop:
// the direct load check maxZ <= 1+2ε and the Lemma F.1 certificate
// Cost(MST) > (1-ε)·Σ c_e·x_e. Both break identically, so the cheap
// O(1) check runs first and the exponential rescan runs only when the
// conservative bound cannot rule the certificate out.
func (e *Engine) shouldStop(chosen []int) bool {
	halfLamF := float64(e.halfLam)
	maxZ := e.MaxLoad()
	if maxZ <= 1+2*e.eps {
		return true
	}

	// Conservative bound: Cost(MST) <= (n-1)·exp(max_{e∈MST} α·z_e) and
	// Σ c_e·x_e >= x_max·exp(α·maxZ), so when the left envelope sits
	// skipMargin below the right one the certificate cannot fire and the
	// O(m) rescan is skipped. Far from convergence the MST avoids loaded
	// edges and the envelopes differ by hundreds in the log domain.
	maxExpMST := math.Inf(-1)
	for _, c := range chosen {
		if exp := e.alpha * e.x[c] * halfLamF; exp > maxExpMST {
			maxExpMST = exp
		}
	}
	xMax := e.x[e.order.MaxID()]
	if e.logTreeEdges+maxExpMST+skipMargin < e.logOneMinusE+e.alpha*maxZ+math.Log(xMax) {
		e.stopSkipped++
		return false
	}
	e.stopExact++

	e.costMST.Reset()
	for _, c := range chosen {
		e.costMST.Add(e.alpha*e.x[c]*halfLamF, 1)
	}
	e.costAll.Reset()
	for i := range e.x {
		z := e.x[i] * halfLamF
		e.costAll.Add(e.alpha*z, e.x[i])
	}
	return e.costMST.GreaterThan(e.costAll, 1-e.eps)
}

// addTree folds the chosen tree into the collection at weight beta:
// scale everything old by (1-beta), bump the tree edges, restore the
// maintained order, and deduplicate against the existing trees.
func (e *Engine) addTree(chosen []int, beta float64) error {
	for _, ent := range e.entries {
		ent.weight *= 1 - beta
	}
	for i := range e.x {
		e.x[i] *= 1 - beta
	}
	for _, c := range chosen {
		e.x[c] += beta
	}

	// The merge wants the bumped ids sorted by (load, id) under the new
	// loads. The centralized oracle already emits that order (the bump
	// is load-monotone), so the insertion sort is a linear verification
	// pass; the distributed oracle's id-sorted output reorders cheaply.
	byLoad := e.byLoad[:0]
	for _, c := range chosen {
		byLoad = append(byLoad, int32(c))
	}
	for i := 1; i < len(byLoad); i++ {
		for j := i; j > 0; j-- {
			a, b := byLoad[j-1], byLoad[j]
			if e.x[a] < e.x[b] || (e.x[a] == e.x[b] && a < b) {
				break
			}
			byLoad[j-1], byLoad[j] = b, a
		}
	}
	e.byLoad = byLoad
	e.order.Reorder(e.x, byLoad)

	byID := append(e.byID[:0], chosen...)
	sort.Ints(byID)
	e.byID = byID
	sig := fnvEdgeIDs(byID)
	for _, idx := range e.sigIndex[sig] {
		if ent := e.entries[idx]; edgeIDsEqual(ent.ids, byID) {
			ent.weight += beta
			e.dedupHits++
			return nil
		}
	}
	tree, err := e.pool.SpanningFromEdgeIDs(e.g, byID, 0)
	if err != nil {
		return fmt.Errorf("stp: oracle tree invalid: %w", err)
	}
	ids := make([]int32, len(byID))
	for i, id := range byID {
		ids[i] = int32(id)
	}
	e.entries = append(e.entries, &packEntry{tree: tree, ids: ids, weight: beta})
	e.sigIndex[sig] = append(e.sigIndex[sig], int32(len(e.entries)-1))
	return nil
}

// Finish rescales the collection into a valid packing: weights
// w_τ·halfLam/maxZ give per-edge load z_e/maxZ <= 1 and total size
// halfLam/maxZ >= halfLam(1-O(ε)).
func (e *Engine) Finish() *Packing {
	maxZ := e.MaxLoad()
	if maxZ <= 0 {
		maxZ = 1
	}
	scale := float64(e.halfLam) / maxZ
	p := &Packing{Stats: Stats{
		Lambda:            e.lambda,
		Iterations:        e.iters,
		MaxLoad:           maxZ,
		StopChecksExact:   e.stopExact,
		StopChecksSkipped: e.stopSkipped,
		DedupHits:         e.dedupHits,
	}}
	for _, ent := range e.entries {
		if w := ent.weight * scale; w > 1e-12 {
			p.Trees = append(p.Trees, Tree{Tree: ent.tree, Weight: w})
		}
	}
	p.Stats.DistinctTrees = len(p.Trees)
	return p
}

// KruskalOracle is the centralized MST oracle: because the engine keeps
// the edges sorted by (load, id), Kruskal reduces to one union-find scan
// — no per-iteration sort. The returned slice is engine scratch, valid
// until the next Step.
func KruskalOracle(e *Engine, _ uint64) ([]int, int, error) {
	e.uf.Reset()
	chosen := e.chosen[:0]
	want := e.g.N() - 1
	for _, id := range e.order.Order() {
		u, v := e.g.Endpoints(int(id))
		if e.uf.Union(u, v) {
			chosen = append(chosen, int(id))
			if len(chosen) == want {
				break
			}
		}
	}
	e.chosen = chosen
	return chosen, 0, nil
}

// fnvEdgeIDs hashes sorted edge ids with FNV-1a over their 4-byte
// little-endian encodings — the byte stream the old string signature
// built, without materializing it.
func fnvEdgeIDs(ids []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, e := range ids {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(e >> shift))
			h *= prime64
		}
	}
	return h
}

func edgeIDsEqual(a []int32, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if int(a[i]) != b[i] {
			return false
		}
	}
	return true
}
