// Package dist implements the distributed primitives the packing
// protocols compose: Theorem B.2's restricted-flooding component
// identification (ComponentMin) and a Borůvka-phase minimum spanning
// tree over the simulator (MST), the stand-in for Kutten–Peleg that
// DESIGN.md substitution 2 documents.
//
// Both primitives run real sim.Engine phases so their cost lands on the
// caller's meter in the paper's units; the driver-side glue (collecting
// per-component winners, termination detection) is charged explicitly as
// convergecast rounds, matching the accounting style of the rest of the
// repo. Callers that run many MSTs over one topology (the MWU loop of
// the spanning-tree packing) hold an MSTRunner, which reuses one engine
// and all per-node protocol state across calls.
package dist

import (
	"fmt"
	"sort"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Pair is a lexicographically ordered value flooded by ComponentMin:
// the component minimum of (A, B) with A compared first.
type Pair struct {
	A, B int64
}

// Less reports whether p precedes q in lexicographic order.
func (p Pair) Less(q Pair) bool {
	if p.A != q.A {
		return p.A < q.A
	}
	return p.B < q.B
}

const (
	kindMin  = 40
	kindComp = 41
)

// session reuses one engine and the per-node protocol state across the
// phases a primitive composes over a fixed (graph, model) pair.
type session struct {
	g     *graph.Graph
	model sim.Model
	eng   *sim.Engine

	minNodes []*minFloodNode
	minProcs []sim.Process
	annNodes []*announceNode
	annProcs []sim.Process
}

// run executes one phase over the given processes, reusing the session
// engine. Options are re-applied on each run.
func (s *session) run(procs []sim.Process, seed uint64, maxRounds int, opts ...sim.Option) (sim.Meter, error) {
	var meter sim.Meter
	if s.eng == nil {
		eng, err := sim.NewEngine(s.g, s.model, procs, seed, opts...)
		if err != nil {
			return meter, err
		}
		s.eng = eng
	} else if err := s.eng.Reset(procs, seed, opts...); err != nil {
		return meter, err
	}
	if err := s.eng.RunPhase(maxRounds); err != nil {
		return meter, err
	}
	return *s.eng.Meter(), nil
}

// ComponentMin computes, for every node, the minimum Pair held by any
// node in its component of the subgraph formed by the edges with
// edgeOK[id] true (Theorem B.2 restricted flooding: messages only merge
// across allowed edges). Nodes in no allowed edge keep their own value.
// The returned meter covers the flooding phase.
func ComponentMin(g *graph.Graph, model sim.Model, edgeOK []bool, values []Pair, seed uint64) ([]Pair, sim.Meter, error) {
	s := &session{g: g, model: model}
	out := make([]Pair, g.N())
	m, err := s.componentMin(edgeOK, values, out, seed, 2*g.N()+16)
	return out, m, err
}

// componentMin floods into out (length n), reusing session state.
func (s *session) componentMin(edgeOK []bool, values []Pair, out []Pair, seed uint64, maxRounds int) (sim.Meter, error) {
	g := s.g
	n := g.N()
	var meter sim.Meter
	if len(values) != n {
		return meter, fmt.Errorf("dist: %d values for %d nodes", len(values), n)
	}
	if len(edgeOK) != g.M() {
		return meter, fmt.Errorf("dist: %d edge flags for %d edges", len(edgeOK), g.M())
	}
	if s.minNodes == nil {
		s.minNodes = make([]*minFloodNode, n)
		s.minProcs = make([]sim.Process, n)
		allowedBacking := make([]bool, 2*g.M())
		pos := 0
		for v := 0; v < n; v++ {
			k := g.Degree(v)
			s.minNodes[v] = &minFloodNode{allowed: allowedBacking[pos : pos+k : pos+k]}
			s.minProcs[v] = s.minNodes[v]
			pos += k
		}
	}
	for v := 0; v < n; v++ {
		nd := s.minNodes[v]
		nd.val = values[v]
		nd.started = false
		nd.active = false
		for i, e := range g.IncidentEdges(v) {
			nd.allowed[i] = edgeOK[e]
			nd.active = nd.active || nd.allowed[i]
		}
	}
	meter, err := s.run(s.minProcs, seed, maxRounds, sim.WithMaxFieldBits(pairFieldBits(g, values)))
	if err != nil {
		return meter, fmt.Errorf("dist: component flooding: %w", err)
	}
	for v := 0; v < n; v++ {
		out[v] = s.minNodes[v].val
	}
	return meter, nil
}

// minFloodNode floods the minimum Pair over allowed incident edges.
type minFloodNode struct {
	val     Pair
	allowed []bool // parallel to Neighbors()
	active  bool   // has at least one allowed edge
	started bool
}

func (p *minFloodNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	dirty := false
	if !p.started {
		p.started = true
		dirty = p.active
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindMin {
			continue
		}
		if !p.allowedFrom(ctx, d.From) {
			continue
		}
		q := Pair{A: d.Msg.F[0], B: d.Msg.F[1]}
		if q.Less(p.val) {
			p.val = q
			dirty = true
		}
	}
	if dirty {
		ctx.Broadcast(sim.Msg(kindMin, p.val.A, p.val.B))
		return sim.Active
	}
	return sim.Done
}

// allowedFrom reports whether the edge to sender `from` is allowed, by
// binary search over the sorted neighbor list.
func (p *minFloodNode) allowedFrom(ctx *sim.Context, from int32) bool {
	nbrs := ctx.Neighbors()
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= from })
	return i < len(nbrs) && nbrs[i] == from && p.allowed[i]
}

// pairFieldBits sizes the message field budget so every initial Pair
// fits; flooding only ever forwards initial values, so that bound holds
// for the whole phase. The budget never drops below the engine default.
func pairFieldBits(g *graph.Graph, values []Pair) int {
	need := sim.DefaultMaxFieldBits(g.N())
	for _, p := range values {
		if b := sim.FieldBits(p.A); b > need {
			need = b
		}
		if b := sim.FieldBits(p.B); b > need {
			need = b
		}
	}
	return need
}

// MSTRunner computes minimum spanning forests over a fixed (graph,
// model) pair, reusing one engine and all per-node protocol state
// between calls. The MWU loop of the spanning-tree packing calls MST
// once per iteration, so this reuse is what keeps the hot path free of
// per-iteration allocation.
type MSTRunner struct {
	s        *session
	inForest []bool
	idVals   []Pair
	cids     []Pair
	cands    []Pair
	best     []Pair
}

// NewMSTRunner returns a runner for g under the given model.
func NewMSTRunner(g *graph.Graph, model sim.Model) *MSTRunner {
	n := g.N()
	return &MSTRunner{
		s:        &session{g: g, model: model},
		inForest: make([]bool, g.M()),
		idVals:   make([]Pair, n),
		cids:     make([]Pair, n),
		cands:    make([]Pair, n),
		best:     make([]Pair, n),
	}
}

// MST computes the minimum spanning forest of g under the given integer
// edge weights by Borůvka phases over the simulator: each phase
// identifies components (restricted flooding over the forest so far),
// announces component ids to neighbors, floods each component's minimum
// outgoing edge, and merges. Ties break by edge id, so the result is the
// unique forest that mst.Kruskal picks under the same order. maxRounds
// bounds the rounds of each flooding phase; <= 0 selects the default
// budget. The meter accumulates all phases plus one termination-
// detection convergecast charge (diameter) per Borůvka phase.
func MST(g *graph.Graph, model sim.Model, weights []int64, seed uint64, maxRounds int) ([]int, sim.Meter, error) {
	return NewMSTRunner(g, model).MST(weights, seed, maxRounds)
}

// MST runs one minimum-spanning-forest computation; see the package
// function of the same name.
func (r *MSTRunner) MST(weights []int64, seed uint64, maxRounds int) ([]int, sim.Meter, error) {
	g := r.s.g
	n, m := g.N(), g.M()
	var meter sim.Meter
	if len(weights) != m {
		return nil, meter, fmt.Errorf("dist: %d weights for %d edges", len(weights), m)
	}
	if maxRounds <= 0 {
		maxRounds = 2*n + 16
	}
	maxW := int64(0)
	for _, w := range weights {
		if w < 0 {
			return nil, meter, fmt.Errorf("dist: negative edge weight %d", w)
		}
		if w > maxW {
			maxW = w
		}
	}
	sentinel := Pair{A: maxW + 1, B: int64(m)}

	inForest := r.inForest
	for i := range inForest {
		inForest[i] = false
	}
	chosen := make([]int, 0, n-1)
	uf := ds.NewUnionFind(n)
	comps := n
	diam := approxD(g)

	// Each phase at least halves the component count.
	for phase := 0; comps > 1; phase++ {
		if phase > ceilLog2(n)+1 {
			return nil, meter, fmt.Errorf("dist: Borůvka did not converge in %d phases", phase)
		}
		phaseSeed := seed + uint64(phase)*0x9e3779b97f4a7c15 + 1

		// Component identification over the forest edges (Theorem B.2).
		for v := range r.idVals {
			r.idVals[v] = Pair{A: int64(v)}
		}
		fm, err := r.s.componentMin(inForest, r.idVals, r.cids, phaseSeed, maxRounds)
		if err != nil {
			return nil, meter, err
		}
		meter.Add(&fm)

		// Neighbor announcements: every node learns each neighbor's
		// component id and picks its lightest outgoing incident edge.
		am, err := r.s.outgoingCandidates(weights, r.cids, r.cands, sentinel, phaseSeed^0xa11ce)
		if err != nil {
			return nil, meter, err
		}
		meter.Add(&am)

		// Component-wide minimum of the candidates.
		bm, err := r.s.componentMin(inForest, r.cands, r.best, phaseSeed^0xb0b, maxRounds)
		if err != nil {
			return nil, meter, err
		}
		meter.Add(&bm)

		// Driver glue: merge the winners (each component's members learn
		// the winner via the flood; adding the edge is local). Charged as
		// one convergecast for termination detection.
		meter.Charge(diam)
		progress := false
		for v := 0; v < n; v++ {
			b := r.best[v]
			if b.B >= int64(m) || b.A > maxW { // sentinel: no outgoing edge
				continue
			}
			e := int(b.B)
			if inForest[e] {
				continue
			}
			u, w := g.Endpoints(e)
			if !uf.Union(u, w) {
				continue
			}
			inForest[e] = true
			chosen = append(chosen, e)
			comps--
			progress = true
		}
		if !progress {
			break // disconnected graph: spanning forest is complete
		}
	}
	sort.Ints(chosen)
	return chosen, meter, nil
}

// outgoingCandidates runs the two-round announcement protocol: every
// node broadcasts its component id, then selects its minimum-weight
// incident edge leaving the component (ties by edge id).
func (s *session) outgoingCandidates(weights []int64, cids, out []Pair, sentinel Pair, seed uint64) (sim.Meter, error) {
	g := s.g
	n := g.N()
	var meter sim.Meter
	if s.annNodes == nil {
		s.annNodes = make([]*announceNode, n)
		s.annProcs = make([]sim.Process, n)
		for v := 0; v < n; v++ {
			s.annNodes[v] = &announceNode{eids: g.IncidentEdges(v)}
			s.annProcs[v] = s.annNodes[v]
		}
	}
	for v := 0; v < n; v++ {
		nd := s.annNodes[v]
		nd.cid = cids[v].A
		nd.weights = weights
		nd.best = sentinel
		nd.round = 0
	}
	bits := sim.DefaultMaxFieldBits(n)
	if b := sim.FieldBits(sentinel.A); b > bits {
		bits = b
	}
	meter, err := s.run(s.annProcs, seed, 4, sim.WithMaxFieldBits(bits))
	if err != nil {
		return meter, fmt.Errorf("dist: announcement phase: %w", err)
	}
	for v := 0; v < n; v++ {
		out[v] = s.annNodes[v].best
	}
	return meter, nil
}

// announceNode broadcasts its component id, then selects the lightest
// incident edge whose other endpoint announced a different component
// (ties by edge id) — all node-local knowledge.
type announceNode struct {
	cid     int64
	eids    []int32 // incident edge ids, parallel to Neighbors()
	weights []int64 // global weight table indexed by edge id (node reads only incident entries)
	best    Pair
	round   int
}

func (p *announceNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		ctx.Broadcast(sim.Msg(kindComp, p.cid))
		return sim.Active
	case 1:
		p.round++
		nbrs := ctx.Neighbors()
		for _, d := range inbox {
			if d.Msg.Kind != kindComp || d.Msg.F[0] == p.cid {
				continue
			}
			i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= d.From })
			if i >= len(nbrs) || nbrs[i] != d.From {
				continue
			}
			e := p.eids[i]
			cand := Pair{A: p.weights[e], B: int64(e)}
			if cand.Less(p.best) {
				p.best = cand
			}
		}
	}
	return sim.Done
}

func approxD(g *graph.Graph) int {
	d := graph.ApproxDiameter(g)
	if d < 1 {
		d = g.N()
	}
	return d
}

func ceilLog2(x int) int {
	b := 0
	for v := 1; v < x; v <<= 1 {
		b++
	}
	return b
}
