package dist

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/sim"
)

// kruskalOrder is the centralized reference: Kruskal under weights with
// ties broken by edge id, the exact order dist.MST must realize.
func kruskalOrder(g *graph.Graph, weights []int64) []int {
	return mst.Kruskal(g, func(e int) float64 { return float64(weights[e]) })
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMSTMatchesKruskal(t *testing.T) {
	chain, err := graph.CliqueChain(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Q4", graph.Hypercube(4)},
		{"K8", graph.Complete(8)},
		{"cycle12", graph.Cycle(12)},
		{"chain", chain},
		{"ham32", graph.RandomHamCycles(32, 3, ds.NewRand(7))},
	}
	for _, tc := range cases {
		for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
			rng := ds.NewRand(uint64(tc.g.M()))
			for trial := 0; trial < 3; trial++ {
				weights := make([]int64, tc.g.M())
				for e := range weights {
					weights[e] = rng.Int64N(5) // few distinct weights force tie-breaking
				}
				got, meter, err := MST(tc.g, model, weights, uint64(trial), 0)
				if err != nil {
					t.Fatalf("%s/%v: %v", tc.name, model, err)
				}
				want := kruskalOrder(tc.g, weights)
				// Kruskal returns edges in weight order; compare as sets
				// via sorted ids (dist.MST sorts its output).
				wantSorted := append([]int(nil), want...)
				for i := 1; i < len(wantSorted); i++ {
					for j := i; j > 0 && wantSorted[j] < wantSorted[j-1]; j-- {
						wantSorted[j], wantSorted[j-1] = wantSorted[j-1], wantSorted[j]
					}
				}
				if !equalInts(got, wantSorted) {
					t.Fatalf("%s/%v trial %d: MST %v != Kruskal %v (weights %v)", tc.name, model, trial, got, wantSorted, weights)
				}
				if meter.TotalRounds() <= 0 || meter.Messages <= 0 {
					t.Fatalf("%s/%v: empty meter %+v", tc.name, model, meter)
				}
			}
		}
	}
}

func TestMSTRunnerReuseIsDeterministic(t *testing.T) {
	g := graph.Hypercube(4)
	rng := ds.NewRand(3)
	weightSets := make([][]int64, 4)
	for i := range weightSets {
		weightSets[i] = make([]int64, g.M())
		for e := range weightSets[i] {
			weightSets[i][e] = rng.Int64N(9)
		}
	}
	r := NewMSTRunner(g, sim.ECongest)
	for i, w := range weightSets {
		reused, rm, err := r.MST(w, uint64(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		fresh, fm, err := MST(g, sim.ECongest, w, uint64(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(reused, fresh) {
			t.Fatalf("set %d: reused runner %v != fresh runner %v", i, reused, fresh)
		}
		if rm != fm {
			t.Fatalf("set %d: meters differ: reused %+v fresh %+v", i, rm, fm)
		}
	}
}

func TestComponentMinRestrictedFlooding(t *testing.T) {
	// Path 0-1-2-3-4-5 with the middle edge disallowed: two components.
	g := graph.Path(6)
	edgeOK := make([]bool, g.M())
	for id := range edgeOK {
		u, v := g.Endpoints(id)
		edgeOK[id] = !(u == 2 && v == 3)
	}
	values := make([]Pair, g.N())
	for v := range values {
		values[v] = Pair{A: int64(10 - v), B: int64(v)}
	}
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		out, meter, err := ComponentMin(g, model, edgeOK, values, 42)
		if err != nil {
			t.Fatal(err)
		}
		// Left component {0,1,2} minimizes at v=2 (A=8); right {3,4,5}
		// at v=5 (A=5).
		for v := 0; v <= 2; v++ {
			if out[v] != (Pair{A: 8, B: 2}) {
				t.Fatalf("%v: node %d got %+v, want {8 2}", model, v, out[v])
			}
		}
		for v := 3; v <= 5; v++ {
			if out[v] != (Pair{A: 5, B: 5}) {
				t.Fatalf("%v: node %d got %+v, want {5 5}", model, v, out[v])
			}
		}
		if meter.RawRounds == 0 {
			t.Fatalf("%v: no rounds metered", model)
		}
	}
}

func TestComponentMinInertNodes(t *testing.T) {
	// No allowed edges at all: everyone keeps their own value.
	g := graph.Complete(5)
	edgeOK := make([]bool, g.M())
	values := []Pair{{9, 0}, {3, 1}, {7, 2}, {1, 3}, {5, 4}}
	out, _, err := ComponentMin(g, sim.VCongest, edgeOK, values, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range values {
		if out[v] != values[v] {
			t.Fatalf("node %d: got %+v, want own value %+v", v, out[v], values[v])
		}
	}
}

func TestMSTDisconnectedForest(t *testing.T) {
	// Two disjoint triangles: the MSF has 4 edges, never bridging.
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Graph()
	weights := make([]int64, g.M())
	chosen, _, err := MST(g, sim.VCongest, weights, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 4 {
		t.Fatalf("spanning forest has %d edges, want 4 (chosen %v)", len(chosen), chosen)
	}
}
