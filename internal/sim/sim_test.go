package sim

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// minFlood is the canonical test protocol: every node learns the
// minimum id in its connected component by flooding.
type minFlood struct {
	min     int64
	started bool
	dirty   bool
}

func (p *minFlood) Round(ctx *Context, inbox []Delivery) Status {
	if !p.started {
		p.started = true
		p.min = int64(ctx.ID())
		p.dirty = true
	}
	for _, d := range inbox {
		if d.Msg.F[0] < p.min {
			p.min = d.Msg.F[0]
			p.dirty = true
		}
	}
	if p.dirty {
		p.dirty = false
		ctx.Broadcast(Msg(1, p.min))
		return Active
	}
	return Done
}

func newMinFloodProcs(n int) ([]Process, []*minFlood) {
	procs := make([]Process, n)
	states := make([]*minFlood, n)
	for i := range procs {
		s := &minFlood{}
		states[i] = s
		procs[i] = s
	}
	return procs, states
}

func TestMinFloodPath(t *testing.T) {
	g := graph.Path(8)
	procs, states := newMinFloodProcs(g.N())
	e, err := NewEngine(g, VCongest, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunPhase(100); err != nil {
		t.Fatal(err)
	}
	for i, s := range states {
		if s.min != 0 {
			t.Fatalf("node %d learned min %d, want 0", i, s.min)
		}
	}
	// Information travels one hop per round: at least 7 rounds on P8.
	if e.Meter().RawRounds < 7 {
		t.Fatalf("RawRounds = %d, want >= 7 on P8", e.Meter().RawRounds)
	}
	if e.Meter().MeteredRounds < e.Meter().RawRounds {
		t.Fatal("metered rounds below raw rounds")
	}
}

func TestMinFloodDisconnected(t *testing.T) {
	g := graph.FromEdgeList(5, [][2]int{{0, 1}, {2, 3}}) // 4 isolated
	procs, states := newMinFloodProcs(g.N())
	e, err := NewEngine(g, VCongest, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunPhase(50); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 2, 2, 4}
	for i, s := range states {
		if s.min != want[i] {
			t.Fatalf("node %d min = %d, want %d", i, s.min, want[i])
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := graph.Hypercube(4)
	run := func() ([]int64, Meter) {
		procs := make([]Process, g.N())
		states := make([]*randomGossip, g.N())
		for i := range procs {
			s := &randomGossip{}
			states[i] = s
			procs[i] = s
		}
		e, err := NewEngine(g, VCongest, procs, 99)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunPhase(100); err != nil {
			t.Fatal(err)
		}
		out := make([]int64, g.N())
		for i, s := range states {
			out[i] = s.sum
		}
		return out, *e.Meter()
	}
	out1, m1 := run()
	out2, m2 := run()
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("node %d state differs across identical runs: %d vs %d", i, out1[i], out2[i])
		}
	}
	if m1 != m2 {
		t.Fatalf("meters differ across identical runs: %+v vs %+v", m1, m2)
	}
}

// randomGossip broadcasts a random value for 5 rounds and sums what it
// hears — exercises per-node RNG determinism under parallel execution.
type randomGossip struct {
	round int
	sum   int64
}

func (p *randomGossip) Round(ctx *Context, inbox []Delivery) Status {
	for _, d := range inbox {
		p.sum += d.Msg.F[0]
	}
	if p.round < 5 {
		p.round++
		ctx.Broadcast(Msg(1, int64(ctx.Rand().IntN(1000))))
		return Active
	}
	return Done
}

// slotHog broadcasts `slots` messages in round 0 from node 0 only.
type slotHog struct {
	slots int
	sent  bool
}

func (p *slotHog) Round(ctx *Context, inbox []Delivery) Status {
	if ctx.ID() == 0 && !p.sent {
		p.sent = true
		for i := 0; i < p.slots; i++ {
			ctx.Broadcast(Msg(1, int64(i)))
		}
		return Active
	}
	return Done
}

func TestSlotSerializationCharge(t *testing.T) {
	g := graph.Complete(4)
	procs := make([]Process, g.N())
	for i := range procs {
		procs[i] = &slotHog{slots: 3}
	}
	e, err := NewEngine(g, VCongest, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunPhase(10); err != nil {
		t.Fatal(err)
	}
	// Round 0: node 0 uses 3 slots -> charged 3; remaining rounds 1 each.
	if got := e.Meter().MeteredRounds - e.Meter().RawRounds; got != 2 {
		t.Fatalf("slot surcharge = %d, want 2 (3 slots in one round)", got)
	}
}

type bigFieldSender struct{}

func (bigFieldSender) Round(ctx *Context, inbox []Delivery) Status {
	ctx.Broadcast(Msg(1, 1<<62))
	return Active
}

func TestFieldBitBudgetEnforced(t *testing.T) {
	g := graph.Path(4)
	procs := make([]Process, g.N())
	for i := range procs {
		procs[i] = bigFieldSender{}
	}
	e, err := NewEngine(g, VCongest, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = e.RunPhase(5)
	if err == nil || !strings.Contains(err.Error(), "bits") {
		t.Fatalf("oversized field not rejected: %v", err)
	}
}

type illegalSender struct{}

func (illegalSender) Round(ctx *Context, inbox []Delivery) Status {
	ctx.Send(0, Msg(1, 7))
	return Active
}

func TestSendIllegalInVCongest(t *testing.T) {
	g := graph.Path(3)
	procs := []Process{illegalSender{}, illegalSender{}, illegalSender{}}
	e, err := NewEngine(g, VCongest, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = e.RunPhase(5)
	if err == nil || !strings.Contains(err.Error(), "illegal") {
		t.Fatalf("Send in V-CONGEST not rejected: %v", err)
	}
}

// edgePing: node 0 sends distinct values to each neighbor (E-CONGEST),
// neighbors record them.
type edgePing struct {
	sent bool
	got  int64
}

func (p *edgePing) Round(ctx *Context, inbox []Delivery) Status {
	for _, d := range inbox {
		p.got = d.Msg.F[0]
	}
	if ctx.ID() == 0 && !p.sent {
		p.sent = true
		for i := range ctx.Neighbors() {
			ctx.Send(i, Msg(1, int64(100+i)))
		}
		return Active
	}
	return Done
}

func TestECongestDistinctPerEdgeMessages(t *testing.T) {
	g := graph.FromEdgeList(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	procs := make([]Process, 4)
	states := make([]*edgePing, 4)
	for i := range procs {
		s := &edgePing{}
		states[i] = s
		procs[i] = s
	}
	e, err := NewEngine(g, ECongest, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunPhase(10); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if states[i].got != int64(100+i-1) {
			t.Fatalf("node %d got %d, want %d", i, states[i].got, 100+i-1)
		}
	}
	// Distinct edges: one slot each, no serialization surcharge.
	if e.Meter().MeteredRounds != e.Meter().RawRounds {
		t.Fatalf("unexpected surcharge: metered=%d raw=%d", e.Meter().MeteredRounds, e.Meter().RawRounds)
	}
}

// doubleSend sends two messages over the same edge in one round.
type doubleSend struct{ sent bool }

func (p *doubleSend) Round(ctx *Context, inbox []Delivery) Status {
	if ctx.ID() == 0 && !p.sent {
		p.sent = true
		ctx.Send(0, Msg(1, 1))
		ctx.Send(0, Msg(1, 2))
		return Active
	}
	return Done
}

func TestECongestPerEdgeSlotSurcharge(t *testing.T) {
	g := graph.Path(2)
	e, err := NewEngine(g, ECongest, []Process{&doubleSend{}, &doubleSend{}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunPhase(10); err != nil {
		t.Fatal(err)
	}
	if got := e.Meter().MeteredRounds - e.Meter().RawRounds; got != 1 {
		t.Fatalf("per-edge surcharge = %d, want 1", got)
	}
}

type neverDone struct{}

func (neverDone) Round(ctx *Context, inbox []Delivery) Status { return Active }

func TestRunPhaseTimeout(t *testing.T) {
	g := graph.Path(2)
	e, err := NewEngine(g, VCongest, []Process{neverDone{}, neverDone{}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunPhase(7); err == nil {
		t.Fatal("non-converging phase did not error")
	}
	if e.Meter().RawRounds != 7 {
		t.Fatalf("RawRounds = %d, want 7", e.Meter().RawRounds)
	}
}

func TestNewEngineValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewEngine(g, VCongest, make([]Process, 2), 1); err == nil {
		t.Fatal("process count mismatch accepted")
	}
	if _, err := NewEngine(g, Model(9), make([]Process, 3), 1); err == nil {
		t.Fatal("bogus model accepted")
	}
}

func TestMessageBitSize(t *testing.T) {
	if got := Msg(1).BitSize(); got != 8 {
		t.Fatalf("empty message BitSize = %d, want 8", got)
	}
	if got := Msg(1, 1).BitSize(); got != 10 { // 8 + (1 bit + sign)
		t.Fatalf("BitSize = %d, want 10", got)
	}
	if a, b := Msg(1, -5).BitSize(), Msg(1, 5).BitSize(); a != b {
		t.Fatalf("sign asymmetry: %d vs %d", a, b)
	}
}

func TestMeterCharge(t *testing.T) {
	var m Meter
	m.MeteredRounds = 10
	m.Charge(5)
	if m.TotalRounds() != 15 {
		t.Fatalf("TotalRounds = %d, want 15", m.TotalRounds())
	}
}

func TestModelString(t *testing.T) {
	if VCongest.String() != "V-CONGEST" || ECongest.String() != "E-CONGEST" {
		t.Fatal("model names wrong")
	}
	if !strings.Contains(Model(42).String(), "42") {
		t.Fatal("unknown model string should include the value")
	}
}

func TestMultiPhaseCarryover(t *testing.T) {
	// Phase 1: node 0 broadcasts then everyone Done; phase 2: neighbors
	// must see the message (carryover across the phase boundary).
	g := graph.Path(2)
	s0 := &phaseProbe{id: 0}
	s1 := &phaseProbe{id: 1}
	e, err := NewEngine(g, VCongest, []Process{s0, s1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunPhase(5); err != nil {
		t.Fatal(err)
	}
	s0.phase, s1.phase = 1, 1
	if err := e.RunPhase(5); err != nil {
		t.Fatal(err)
	}
	if !s1.sawCarryover {
		t.Fatal("message sent in final round of phase 1 was not delivered in phase 2")
	}
}

type phaseProbe struct {
	id           int
	phase        int
	sent         bool
	sawCarryover bool
}

func (p *phaseProbe) Round(ctx *Context, inbox []Delivery) Status {
	if p.phase == 0 {
		if p.id == 0 && !p.sent {
			p.sent = true
			ctx.Broadcast(Msg(7, 42))
			// Deliberately ends the phase while a message is in flight
			// (send+Done), to pin down the engine's carryover behavior.
		}
		return Done
	}
	for _, d := range inbox {
		if d.Msg.Kind == 7 && d.Msg.F[0] == 42 {
			p.sawCarryover = true
		}
	}
	return Done
}
