package sim

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ds"
	"repro/internal/graph"
)

// Meter accumulates the cost of a run in the paper's units.
type Meter struct {
	// RawRounds counts engine rounds across all phases.
	RawRounds int
	// MeteredRounds counts rounds after slot serialization: a raw round
	// where the busiest node (V-CONGEST) or edge direction (E-CONGEST)
	// used s slots contributes s.
	MeteredRounds int
	// ChargedRounds are driver-added costs (BFS preprocessing,
	// termination-detection barriers, meta-round simulation overhead).
	ChargedRounds int
	// Messages and Bits count everything sent (a broadcast to d
	// neighbors counts as one message of its size; the V-CONGEST model
	// charges a node once per local broadcast).
	Messages int64
	Bits     int64
	// Phases counts completed RunPhase calls.
	Phases int
}

// TotalRounds is the headline round complexity: slot-serialized rounds
// plus explicit driver charges.
func (m *Meter) TotalRounds() int { return m.MeteredRounds + m.ChargedRounds }

// Charge adds driver-side rounds (e.g., a convergecast barrier) to the
// meter, with a reason recorded only by the caller.
func (m *Meter) Charge(rounds int) { m.ChargedRounds += rounds }

// Add folds src into m, field by field. Drivers that compose several
// engine phases use it to accumulate one run-level meter.
func (m *Meter) Add(src *Meter) {
	m.RawRounds += src.RawRounds
	m.MeteredRounds += src.MeteredRounds
	m.ChargedRounds += src.ChargedRounds
	m.Messages += src.Messages
	m.Bits += src.Bits
	m.Phases += src.Phases
}

// Engine executes Processes over a graph in synchronous rounds.
//
// The engine is built for zero steady-state churn: node rounds run on a
// process-wide persistent worker pool (no per-round goroutine spawns),
// message routing is sharded by receiver so each worker writes only its
// own inboxes, and all inbox/outbox buffers are reused across rounds —
// and, via Reset, across protocol phases on the same graph.
type Engine struct {
	g            *graph.Graph
	model        Model
	procs        []Process
	contexts     []Context
	inbox        [][]Delivery
	nextInbox    [][]Delivery
	meter        Meter
	maxFieldBits int
	workers      int
	phaseRound   int
	statuses     []Status
	observer     func(from, to int32, bits int)
	// workersPinned marks an explicit worker count (WithWorkers or
	// SetDefaultWorkers), which bypasses the small-graph chunk clamp.
	workersPinned bool

	// rev maps each CSR adjacency position p (receiver v listing sender
	// u) to the position of v inside u's neighbor list, so receiver-side
	// routing can recognize directed sends addressed to v. Built only
	// for E-CONGEST engines.
	rev []int32

	// parts are per-worker routing partials (message/bit sums, slot
	// maxima), combined deterministically after each round.
	parts []stepPartial

	// edgeSlots + dirtyDirs serve only the legacy observer routing path:
	// per-directed-edge send counts with a dirty list so clearing is
	// proportional to the directions actually used, not O(m) per round.
	edgeSlots []int32
	dirtyDirs []int32
}

// stepPartial is one worker's routing contribution for a single round.
type stepPartial struct {
	maxSlots int32
	messages int64
	bits     int64
}

// Option customizes engine construction.
type Option func(*Engine)

// WithWorkers sets the number of pool workers that execute node rounds
// and routing for this engine. Results are identical for every worker
// count; only wall-clock changes. An explicit count is honored even on
// small graphs (the automatic chunk-size clamp applies only to the
// NumCPU default), so tests can force the parallel path.
func WithWorkers(w int) Option {
	return func(e *Engine) {
		if w > 0 {
			e.workers = w
			e.workersPinned = true
		}
	}
}

// WithMaxFieldBits overrides the per-field bit budget (default
// 2*ceil(log2(n+2))+8, i.e. O(log n)).
func WithMaxFieldBits(b int) Option {
	return func(e *Engine) {
		if b > 0 {
			e.maxFieldBits = b
		}
	}
}

// WithDeliveryObserver registers a callback invoked once per delivered
// message copy (from, to, payload bits). The lower-bound experiments of
// Appendix G use it to count the bits crossing a vertex separator, the
// quantity Lemma G.6 bounds. Observed engines route serially in sender
// order so the callback sequence matches the paper's deterministic
// schedule (and needs no synchronization).
func WithDeliveryObserver(fn func(from, to int32, bits int)) Option {
	return func(e *Engine) { e.observer = fn }
}

// defaultWorkers is the worker count used when WithWorkers is absent;
// 0 means runtime.NumCPU(). Tests override it to pin both sides of the
// determinism contract.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the worker count engines use when WithWorkers
// is not given; w <= 0 restores the runtime.NumCPU() default. It exists
// so determinism tests can run identical workloads single- and
// multi-worker without threading options through every driver.
func SetDefaultWorkers(w int) {
	if w < 0 {
		w = 0
	}
	defaultWorkers.Store(int32(w))
}

func currentDefaultWorkers() (count int, pinned bool) {
	if w := int(defaultWorkers.Load()); w > 0 {
		return w, true
	}
	return runtime.NumCPU(), false
}

// NewEngine builds an engine over g. Each node i runs procs[i]; the
// seed drives every node's private random stream.
func NewEngine(g *graph.Graph, model Model, procs []Process, seed uint64, opts ...Option) (*Engine, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("sim: %d processes for %d nodes", len(procs), g.N())
	}
	if model != VCongest && model != ECongest {
		return nil, fmt.Errorf("sim: unknown model %v", model)
	}
	e := &Engine{
		g:            g,
		model:        model,
		procs:        procs,
		contexts:     make([]Context, g.N()),
		inbox:        make([][]Delivery, g.N()),
		nextInbox:    make([][]Delivery, g.N()),
		maxFieldBits: DefaultMaxFieldBits(g.N()),
		statuses:     make([]Status, g.N()),
	}
	e.workers, e.workersPinned = currentDefaultWorkers()
	if model == ECongest {
		e.rev = buildReverseIndex(g)
	}
	for i := range e.contexts {
		s1, s2 := ds.SplitSeed(seed, uint64(i))
		pcg := rand.NewPCG(s1, s2)
		e.contexts[i] = Context{
			engine: e,
			node:   int32(i),
			pcg:    pcg,
			rng:    rand.New(pcg),
		}
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Reset rebinds the engine to a new protocol run over the same graph
// and model: fresh processes, reseeded per-node random streams, zeroed
// meter and statuses — while keeping every internal buffer (inboxes,
// outboxes, routing partials, reverse index). Drivers that execute many
// phases over one topology reset one engine instead of allocating one
// per phase. Options are re-applied from the defaults, so pass the same
// options each time (or none).
func (e *Engine) Reset(procs []Process, seed uint64, opts ...Option) error {
	if len(procs) != e.g.N() {
		return fmt.Errorf("sim: %d processes for %d nodes", len(procs), e.g.N())
	}
	e.procs = procs
	e.meter = Meter{}
	e.phaseRound = 0
	e.maxFieldBits = DefaultMaxFieldBits(e.g.N())
	e.workers, e.workersPinned = currentDefaultWorkers()
	e.observer = nil
	for i := range e.contexts {
		c := &e.contexts[i]
		c.out = c.out[:0]
		c.slotsUsed = 0
		c.violation = nil
		s1, s2 := ds.SplitSeed(seed, uint64(i))
		c.pcg.Seed(s1, s2)
	}
	for i := range e.inbox {
		e.inbox[i] = e.inbox[i][:0]
		e.nextInbox[i] = e.nextInbox[i][:0]
	}
	clear(e.statuses)
	for _, opt := range opts {
		opt(e)
	}
	return nil
}

// buildReverseIndex computes, for every CSR position p where vertex v
// lists neighbor u, the position of v inside u's neighbor list.
func buildReverseIndex(g *graph.Graph) []int32 {
	off := g.AdjOffsets()
	nbr := g.AdjTargets()
	rev := make([]int32, len(nbr))
	for v := 0; v < g.N(); v++ {
		for p := off[v]; p < off[v+1]; p++ {
			rev[p] = int32(g.NeighborIndex(int(nbr[p]), v))
		}
	}
	return rev
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// Meter returns the accumulated cost meter.
func (e *Engine) Meter() *Meter { return &e.meter }

// Graph returns the underlying topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Model returns the congestion model in force.
func (e *Engine) Model() Model { return e.model }

func (e *Engine) checkMessage(m Message) error {
	for _, f := range m.F {
		if fb := fieldBits(f); fb > e.maxFieldBits {
			return fmt.Errorf("sim: field %d needs %d bits, budget %d", f, fb, e.maxFieldBits)
		}
	}
	return nil
}

// RunPhase executes rounds until every process returns Done in the same
// round, or maxRounds elapse (an error). Message buffers carry over
// between phases: messages sent in the final round of a phase are
// delivered in the first round of the next.
func (e *Engine) RunPhase(maxRounds int) error {
	e.phaseRound = 0
	for r := 0; r < maxRounds; r++ {
		allDone, err := e.step()
		if err != nil {
			return err
		}
		e.phaseRound++
		if allDone {
			e.meter.Phases++
			return nil
		}
	}
	return fmt.Errorf("sim: phase did not converge within %d rounds", maxRounds)
}

// minChunkNodes keeps parallel chunks large enough that pool dispatch
// overhead never dominates tiny graphs.
const minChunkNodes = 32

// effWorkers returns the worker count actually used for n nodes: an
// explicit count is clamped only to n, the NumCPU default also by chunk
// size so pool dispatch never dominates tiny graphs.
func (e *Engine) effWorkers(n int) int {
	w := e.workers
	if e.workersPinned {
		if w > n {
			w = n
		}
	} else if cap := n / minChunkNodes; w > cap {
		w = cap
	}
	if w < 1 {
		w = 1
	}
	return w
}

// step runs one synchronous round: node Round calls, then message
// routing and metering. Both halves run serially for one worker and on
// the shared pool otherwise; results are bit-identical either way.
func (e *Engine) step() (allDone bool, err error) {
	n := e.g.N()
	w := e.effWorkers(n)

	if w == 1 {
		e.roundRange(0, n)
	} else {
		runParallel(w, n, func(_, lo, hi int) { e.roundRange(lo, hi) })
	}

	for v := range e.contexts {
		if e.contexts[v].violation != nil {
			return false, e.contexts[v].violation
		}
	}

	var maxSlots int32
	switch {
	case e.observer != nil:
		maxSlots = e.routeObserved()
	case w == 1:
		p := &stepPartial{}
		e.routeRange(0, n, p)
		e.meter.Messages += p.messages
		e.meter.Bits += p.bits
		maxSlots = p.maxSlots
	default:
		if len(e.parts) < w {
			e.parts = make([]stepPartial, w)
		}
		// Zero before dispatch: runParallel skips empty chunks, and a
		// skipped slot must not contribute a stale partial to the sums.
		for i := 0; i < w; i++ {
			e.parts[i] = stepPartial{}
		}
		runParallel(w, n, func(i, lo, hi int) {
			e.routeRange(lo, hi, &e.parts[i])
		})
		for i := 0; i < w; i++ {
			e.meter.Messages += e.parts[i].messages
			e.meter.Bits += e.parts[i].bits
			if e.parts[i].maxSlots > maxSlots {
				maxSlots = e.parts[i].maxSlots
			}
		}
	}

	if maxSlots < 1 {
		maxSlots = 1
	}
	e.meter.RawRounds++
	e.meter.MeteredRounds += int(maxSlots)
	e.inbox, e.nextInbox = e.nextInbox, e.inbox

	allDone = true
	for v := 0; v < n; v++ {
		if e.statuses[v] != Done {
			allDone = false
			break
		}
	}
	return allDone, nil
}

// roundRange executes Round for nodes [lo, hi), reusing each context's
// outbox buffer.
func (e *Engine) roundRange(lo, hi int) {
	for v := lo; v < hi; v++ {
		ctx := &e.contexts[v]
		ctx.out = ctx.out[:0]
		ctx.slotsUsed = 0
		e.statuses[v] = e.procs[v].Round(ctx, e.inbox[v])
	}
}

// routeRange meters the sends of nodes [lo, hi) and assembles their
// next-round inboxes. Each node acts in two roles: as a sender its
// outbox is metered locally (every directed-edge slot counter has a
// unique tail, so no cross-node state is ever shared), and as a
// receiver it scans its neighbors' outboxes in ascending sender order —
// exactly the delivery order the sender-major loop produced, so inbox
// contents are byte-identical to the sequential schedule.
func (e *Engine) routeRange(lo, hi int, p *stepPartial) {
	off := e.g.AdjOffsets()
	nbrFlat := e.g.AdjTargets()
	for v := lo; v < hi; v++ {
		ctx := &e.contexts[v]
		deg := int64(off[v+1] - off[v])
		if e.model == VCongest {
			if ctx.slotsUsed > p.maxSlots {
				p.maxSlots = ctx.slotsUsed
			}
			for i := range ctx.out {
				p.messages++
				p.bits += int64(ctx.out[i].msg.BitSize())
			}
		} else {
			for i := range ctx.out {
				size := int64(ctx.out[i].msg.BitSize())
				if ctx.out[i].target < 0 {
					// A broadcast in E-CONGEST sends one copy per
					// incident edge (net zero for isolated nodes).
					p.messages += deg
					p.bits += size * deg
				} else {
					p.messages++
					p.bits += size
				}
			}
		}

		buf := e.nextInbox[v][:0]
		for pos := off[v]; pos < off[v+1]; pos++ {
			u := nbrFlat[pos]
			out := e.contexts[u].out
			if len(out) == 0 {
				continue
			}
			if e.model == VCongest {
				for i := range out {
					buf = append(buf, Delivery{From: u, Slot: out[i].slot, Msg: out[i].msg})
				}
			} else {
				revIdx := e.rev[pos]
				var dirCount int32
				for i := range out {
					if out[i].target < 0 {
						buf = append(buf, Delivery{From: u, Slot: out[i].slot, Msg: out[i].msg})
						dirCount++
					} else if out[i].target == revIdx {
						buf = append(buf, Delivery{From: u, Slot: dirCount, Msg: out[i].msg})
						dirCount++
					}
				}
				if dirCount > p.maxSlots {
					p.maxSlots = dirCount
				}
			}
		}
		e.nextInbox[v] = buf
	}
}

// routeObserved is the sender-major routing path used when a delivery
// observer is registered: the callback sees deliveries in the canonical
// sender order and runs on one goroutine. Slot counters live in the
// edgeSlots array, cleared through a dirty list so the per-round cost is
// proportional to the directions actually used.
func (e *Engine) routeObserved() int32 {
	n := e.g.N()
	for v := range e.nextInbox {
		e.nextInbox[v] = e.nextInbox[v][:0]
	}
	if e.model == ECongest && e.edgeSlots == nil {
		e.edgeSlots = make([]int32, 2*e.g.M())
	}
	maxSlots := int32(0)
	for v := 0; v < n; v++ {
		ctx := &e.contexts[v]
		if e.model == VCongest && ctx.slotsUsed > maxSlots {
			maxSlots = ctx.slotsUsed
		}
		for _, om := range ctx.out {
			if om.target < 0 { // broadcast
				e.meter.Messages++
				e.meter.Bits += int64(om.msg.BitSize())
				for _, w := range e.g.Neighbors(v) {
					e.nextInbox[w] = append(e.nextInbox[w], Delivery{From: int32(v), Slot: om.slot, Msg: om.msg})
					e.observer(int32(v), w, om.msg.BitSize())
				}
				if e.model == ECongest {
					// A broadcast in E-CONGEST occupies one slot on
					// each incident edge direction.
					for _, eid := range e.g.IncidentEdges(v) {
						dir := e.dirIndex(v, int(eid))
						if e.edgeSlots[dir] == 0 {
							e.dirtyDirs = append(e.dirtyDirs, int32(dir))
						}
						e.edgeSlots[dir]++
						if e.edgeSlots[dir] > maxSlots {
							maxSlots = e.edgeSlots[dir]
						}
					}
					e.meter.Messages += int64(e.g.Degree(v) - 1) // one message per edge
					e.meter.Bits += int64(om.msg.BitSize()) * int64(e.g.Degree(v)-1)
				}
			} else {
				nbr := e.g.Neighbors(v)[om.target]
				eid := e.g.IncidentEdges(v)[om.target]
				dir := e.dirIndex(v, int(eid))
				slot := e.edgeSlots[dir]
				if slot == 0 {
					e.dirtyDirs = append(e.dirtyDirs, int32(dir))
				}
				e.edgeSlots[dir]++
				if e.edgeSlots[dir] > maxSlots {
					maxSlots = e.edgeSlots[dir]
				}
				e.meter.Messages++
				e.meter.Bits += int64(om.msg.BitSize())
				e.nextInbox[nbr] = append(e.nextInbox[nbr], Delivery{From: int32(v), Slot: slot, Msg: om.msg})
				e.observer(int32(v), nbr, om.msg.BitSize())
			}
		}
	}
	for _, dir := range e.dirtyDirs {
		e.edgeSlots[dir] = 0
	}
	e.dirtyDirs = e.dirtyDirs[:0]
	return maxSlots
}

// dirIndex maps (tail vertex, edge id) to a directed-edge index in
// [0, 2m): edge id e has directions 2e (from U) and 2e+1 (from V).
func (e *Engine) dirIndex(tail, edgeID int) int {
	u, _ := e.g.Endpoints(edgeID)
	if tail == u {
		return 2 * edgeID
	}
	return 2*edgeID + 1
}

// --- persistent worker pool ----------------------------------------------

// The pool is process-wide and lives for the lifetime of the program:
// engines dispatch chunk closures to parked workers instead of spawning
// goroutines every round (the parlaylib idiom of persistent workers).
var pool struct {
	once sync.Once
	jobs chan func()
}

func startPool() {
	pool.jobs = make(chan func(), 4*runtime.GOMAXPROCS(0))
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		go func() {
			for f := range pool.jobs {
				f()
			}
		}()
	}
}

// runParallel splits [0, n) into w contiguous chunks and runs fn on the
// shared pool, blocking until all chunks finish. Chunk boundaries depend
// only on (w, n), never on scheduling, so any fn that combines partial
// results associatively is deterministic.
func runParallel(w, n int, fn func(chunk, lo, hi int)) {
	pool.once.Do(startPool)
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		i, lo, hi := i, lo, hi
		pool.jobs <- func() {
			defer wg.Done()
			fn(i, lo, hi)
		}
	}
	wg.Wait()
}
