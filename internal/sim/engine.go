package sim

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/ds"
	"repro/internal/graph"
)

// Meter accumulates the cost of a run in the paper's units.
type Meter struct {
	// RawRounds counts engine rounds across all phases.
	RawRounds int
	// MeteredRounds counts rounds after slot serialization: a raw round
	// where the busiest node (V-CONGEST) or edge direction (E-CONGEST)
	// used s slots contributes s.
	MeteredRounds int
	// ChargedRounds are driver-added costs (BFS preprocessing,
	// termination-detection barriers, meta-round simulation overhead).
	ChargedRounds int
	// Messages and Bits count everything sent (a broadcast to d
	// neighbors counts as one message of its size; the V-CONGEST model
	// charges a node once per local broadcast).
	Messages int64
	Bits     int64
	// Phases counts completed RunPhase calls.
	Phases int
}

// TotalRounds is the headline round complexity: slot-serialized rounds
// plus explicit driver charges.
func (m *Meter) TotalRounds() int { return m.MeteredRounds + m.ChargedRounds }

// Charge adds driver-side rounds (e.g., a convergecast barrier) to the
// meter, with a reason recorded only by the caller.
func (m *Meter) Charge(rounds int) { m.ChargedRounds += rounds }

// Engine executes Processes over a graph in synchronous rounds.
type Engine struct {
	g            *graph.Graph
	model        Model
	procs        []Process
	contexts     []Context
	inbox        [][]Delivery
	nextInbox    [][]Delivery
	meter        Meter
	maxFieldBits int
	workers      int
	phaseRound   int
	statuses     []Status
	edgeSlots    []int32 // E-CONGEST per-directed-edge send counts, reused each round
	observer     func(from, to int32, bits int)
}

// Option customizes engine construction.
type Option func(*Engine)

// WithWorkers sets the number of goroutines that execute node rounds.
func WithWorkers(w int) Option {
	return func(e *Engine) {
		if w > 0 {
			e.workers = w
		}
	}
}

// WithMaxFieldBits overrides the per-field bit budget (default
// 2*ceil(log2(n+2))+8, i.e. O(log n)).
func WithMaxFieldBits(b int) Option {
	return func(e *Engine) {
		if b > 0 {
			e.maxFieldBits = b
		}
	}
}

// WithDeliveryObserver registers a callback invoked once per delivered
// message copy (from, to, payload bits). The lower-bound experiments of
// Appendix G use it to count the bits crossing a vertex separator, the
// quantity Lemma G.6 bounds.
func WithDeliveryObserver(fn func(from, to int32, bits int)) Option {
	return func(e *Engine) { e.observer = fn }
}

// NewEngine builds an engine over g. Each node i runs procs[i]; the
// seed drives every node's private random stream.
func NewEngine(g *graph.Graph, model Model, procs []Process, seed uint64, opts ...Option) (*Engine, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("sim: %d processes for %d nodes", len(procs), g.N())
	}
	if model != VCongest && model != ECongest {
		return nil, fmt.Errorf("sim: unknown model %v", model)
	}
	e := &Engine{
		g:            g,
		model:        model,
		procs:        procs,
		contexts:     make([]Context, g.N()),
		inbox:        make([][]Delivery, g.N()),
		nextInbox:    make([][]Delivery, g.N()),
		maxFieldBits: 2*ceilLog2(g.N()+2) + 8,
		workers:      runtime.NumCPU(),
		statuses:     make([]Status, g.N()),
	}
	if model == ECongest {
		e.edgeSlots = make([]int32, 2*g.M())
	}
	for i := range e.contexts {
		e.contexts[i] = Context{
			engine: e,
			node:   int32(i),
			rng:    ds.SplitRand(seed, uint64(i)),
		}
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// Meter returns the accumulated cost meter.
func (e *Engine) Meter() *Meter { return &e.meter }

// Graph returns the underlying topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Model returns the congestion model in force.
func (e *Engine) Model() Model { return e.model }

func (e *Engine) checkMessage(m Message) error {
	for _, f := range m.F {
		if fb := fieldBits(f); fb > e.maxFieldBits {
			return fmt.Errorf("sim: field %d needs %d bits, budget %d", f, fb, e.maxFieldBits)
		}
	}
	return nil
}

// RunPhase executes rounds until every process returns Done in the same
// round, or maxRounds elapse (an error). Message buffers carry over
// between phases: messages sent in the final round of a phase are
// delivered in the first round of the next.
func (e *Engine) RunPhase(maxRounds int) error {
	e.phaseRound = 0
	for r := 0; r < maxRounds; r++ {
		allDone, err := e.step()
		if err != nil {
			return err
		}
		e.phaseRound++
		if allDone {
			e.meter.Phases++
			return nil
		}
	}
	return fmt.Errorf("sim: phase did not converge within %d rounds", maxRounds)
}

// step runs one synchronous round: parallel Round calls, then message
// routing and metering.
func (e *Engine) step() (allDone bool, err error) {
	n := e.g.N()
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				ctx := &e.contexts[v]
				ctx.out = ctx.out[:0]
				ctx.slotsUsed = 0
				e.statuses[v] = e.procs[v].Round(ctx, e.inbox[v])
			}
		}(lo, hi)
	}
	wg.Wait()

	for v := range e.contexts {
		if e.contexts[v].violation != nil {
			return false, e.contexts[v].violation
		}
	}

	// Route outboxes into next-round inboxes, deterministically by
	// sender id. Meter slots for serialization charges.
	for v := range e.nextInbox {
		e.nextInbox[v] = e.nextInbox[v][:0]
	}
	maxSlots := int32(0)
	if e.model == ECongest {
		for i := range e.edgeSlots {
			e.edgeSlots[i] = 0
		}
	}
	for v := 0; v < n; v++ {
		ctx := &e.contexts[v]
		if e.model == VCongest && ctx.slotsUsed > maxSlots {
			maxSlots = ctx.slotsUsed
		}
		for _, om := range ctx.out {
			if om.target < 0 { // broadcast
				e.meter.Messages++
				e.meter.Bits += int64(om.msg.BitSize())
				for _, w := range e.g.Neighbors(v) {
					e.nextInbox[w] = append(e.nextInbox[w], Delivery{From: int32(v), Slot: om.slot, Msg: om.msg})
					if e.observer != nil {
						e.observer(int32(v), w, om.msg.BitSize())
					}
				}
				if e.model == ECongest {
					// A broadcast in E-CONGEST occupies one slot on
					// each incident edge direction.
					for _, eid := range e.g.IncidentEdges(v) {
						dir := e.dirIndex(v, int(eid))
						e.edgeSlots[dir]++
						if e.edgeSlots[dir] > maxSlots {
							maxSlots = e.edgeSlots[dir]
						}
					}
					e.meter.Messages += int64(e.g.Degree(v) - 1) // one message per edge
					e.meter.Bits += int64(om.msg.BitSize()) * int64(e.g.Degree(v)-1)
				}
			} else {
				nbr := e.g.Neighbors(v)[om.target]
				eid := e.g.IncidentEdges(v)[om.target]
				dir := e.dirIndex(v, int(eid))
				slot := e.edgeSlots[dir]
				e.edgeSlots[dir]++
				if e.edgeSlots[dir] > maxSlots {
					maxSlots = e.edgeSlots[dir]
				}
				e.meter.Messages++
				e.meter.Bits += int64(om.msg.BitSize())
				e.nextInbox[nbr] = append(e.nextInbox[nbr], Delivery{From: int32(v), Slot: slot, Msg: om.msg})
				if e.observer != nil {
					e.observer(int32(v), nbr, om.msg.BitSize())
				}
			}
		}
	}
	if maxSlots < 1 {
		maxSlots = 1
	}
	e.meter.RawRounds++
	e.meter.MeteredRounds += int(maxSlots)
	e.inbox, e.nextInbox = e.nextInbox, e.inbox

	allDone = true
	for v := 0; v < n; v++ {
		if e.statuses[v] != Done {
			allDone = false
			break
		}
	}
	return allDone, nil
}

// dirIndex maps (tail vertex, edge id) to a directed-edge index in
// [0, 2m): edge id e has directions 2e (from U) and 2e+1 (from V).
func (e *Engine) dirIndex(tail, edgeID int) int {
	u, _ := e.g.Endpoints(edgeID)
	if tail == u {
		return 2 * edgeID
	}
	return 2*edgeID + 1
}
