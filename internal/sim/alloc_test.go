package sim

import (
	"testing"

	"repro/internal/graph"
)

// chatterProc broadcasts for `limit` rounds, then stops — a steady
// message load that exercises the engine's outbox, routing, and inbox
// paths every round.
type chatterProc struct {
	limit  int
	rounds int
}

func (p *chatterProc) Round(ctx *Context, inbox []Delivery) Status {
	if p.rounds >= p.limit {
		return Done
	}
	p.rounds++
	ctx.Broadcast(Msg(1, int64(p.rounds), int64(len(inbox))))
	return Active
}

func chatterEngine(t testing.TB, g *graph.Graph, model Model, limit int) (*Engine, []Process, []*chatterProc) {
	nodes := make([]*chatterProc, g.N())
	procs := make([]Process, g.N())
	for i := range procs {
		nodes[i] = &chatterProc{limit: limit}
		procs[i] = nodes[i]
	}
	eng, err := NewEngine(g, model, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return eng, procs, nodes
}

// TestSteadyStateStepAllocations pins the zero-churn contract: after a
// warm-up phase has grown every buffer, a full Reset+RunPhase cycle on
// the same engine performs no per-round allocation at all.
func TestSteadyStateStepAllocations(t *testing.T) {
	for _, model := range []Model{VCongest, ECongest} {
		g := graph.Hypercube(6)
		const limit = 16
		eng, procs, nodes := chatterEngine(t, g, model, limit)
		if err := eng.RunPhase(limit + 4); err != nil { // warm-up growth
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			for _, nd := range nodes {
				nd.rounds = 0
			}
			if err := eng.Reset(procs, 1); err != nil {
				t.Fatal(err)
			}
			if err := eng.RunPhase(limit + 4); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Fatalf("%v: warm Reset+RunPhase (%d rounds) allocated %.0f times, want 0", model, limit, allocs)
		}
	}
}

// BenchmarkEngineStepFlood measures the Engine.step-heavy path (the
// cost under every distributed experiment) with allocation reporting:
// one op is a full 16-round broadcast phase over Q6 on a reused engine.
func BenchmarkEngineStepFlood(b *testing.B) {
	for _, tc := range []struct {
		name  string
		model Model
	}{
		{"VCongest", VCongest},
		{"ECongest", ECongest},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g := graph.Hypercube(6)
			const limit = 16
			eng, procs, nodes := chatterEngine(b, g, tc.model, limit)
			if err := eng.RunPhase(limit + 4); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, nd := range nodes {
					nd.rounds = 0
				}
				if err := eng.Reset(procs, uint64(i)); err != nil {
					b.Fatal(err)
				}
				if err := eng.RunPhase(limit + 4); err != nil {
					b.Fatal(err)
				}
			}
			rounds := float64(eng.Meter().RawRounds)
			b.ReportMetric(rounds, "rounds/op")
		})
	}
}

// BenchmarkEngineStepFreshEngines is the contrast case: the same
// workload allocating a new engine per phase, the pattern the drivers
// moved away from.
func BenchmarkEngineStepFreshEngines(b *testing.B) {
	g := graph.Hypercube(6)
	const limit = 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nodes := make([]*chatterProc, g.N())
		procs := make([]Process, g.N())
		for j := range procs {
			nodes[j] = &chatterProc{limit: limit}
			procs[j] = nodes[j]
		}
		eng, err := NewEngine(g, VCongest, procs, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.RunPhase(limit + 4); err != nil {
			b.Fatal(err)
		}
	}
}
