// Package sim implements the synchronous message-passing models of the
// paper (Section 1.2): V-CONGEST, where each node locally broadcasts one
// O(log n)-bit message per round, and E-CONGEST, where one O(log n)-bit
// message crosses each edge direction per round.
//
// Protocols are state machines implementing Process; a driver composes
// phases by calling Engine.RunPhase repeatedly. The engine meters rounds
// the way the paper does: a round in which some node uses s message
// slots is charged as s rounds (slots serialize under a globally known
// schedule), and driver-side glue such as termination-detection
// convergecasts is charged explicitly via Meter.Charge.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// Model selects which congestion constraint the engine enforces.
type Model int

const (
	// VCongest allows each node one local-broadcast slot per round.
	VCongest Model = iota + 1
	// ECongest allows one message per edge direction per round.
	ECongest
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case VCongest:
		return "V-CONGEST"
	case ECongest:
		return "E-CONGEST"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is a bounded message: one kind byte plus up to four integer
// fields, each restricted to O(log n) bits by the engine. Unused fields
// stay zero and cost nothing.
type Message struct {
	Kind uint8
	F    [4]int64
}

// Msg builds a Message from a kind and up to four fields.
func Msg(kind uint8, fields ...int64) Message {
	m := Message{Kind: kind}
	copy(m.F[:], fields)
	return m
}

// BitSize returns the size of the message in bits: 8 for the kind plus
// the signed bit-length of each non-zero field.
func (m Message) BitSize() int {
	b := 8
	for _, f := range m.F {
		b += fieldBits(f)
	}
	return b
}

func fieldBits(f int64) int {
	if f == 0 {
		return 0
	}
	if f < 0 {
		f = -f
	}
	return bits.Len64(uint64(f)) + 1 // +1 sign bit
}

// FieldBits returns the bit cost the engine charges for one message
// field: 0 for zero, signed bit-length otherwise. Protocol drivers use
// it to size WithMaxFieldBits budgets for their value domains.
func FieldBits(f int64) int { return fieldBits(f) }

// DefaultMaxFieldBits returns the engine's default per-field budget for
// an n-node graph: 2⌈log2(n+2)⌉+8, i.e. O(log n).
func DefaultMaxFieldBits(n int) int { return 2*ceilLog2(n+2) + 8 }

// Delivery is a received message together with its sender and the slot
// it was sent in.
type Delivery struct {
	From int32
	Slot int32
	Msg  Message
}

// Status is returned by Process.Round each round.
type Status int

const (
	// Active means the node is still working on the current phase.
	Active Status = iota
	// Done means the node is locally finished with the current phase;
	// the phase ends when every node reports Done in the same round.
	Done
)

// Process is a node-local protocol state machine. Round is called once
// per synchronous round with all messages delivered this round; it may
// send via ctx and must not touch any other node's state.
//
// Contract: a node that sends in a round must return Active for that
// round. A phase ends when every node returns Done in the same round;
// because Done nodes sent nothing, all-Done implies global quiescence.
// The first round of the first phase has an empty inbox; messages sent
// in the last round of a phase are delivered in the first round of the
// next phase.
type Process interface {
	Round(ctx *Context, inbox []Delivery) Status
}

// Context is the per-node view of the network handed to Process.Round.
type Context struct {
	engine *Engine
	node   int32
	rng    *rand.Rand
	pcg    *rand.PCG // rng's source, reseeded in place by Engine.Reset

	// outbox for the current round; target = -1 means local broadcast.
	out       []outMsg
	slotsUsed int32
	violation error
}

type outMsg struct {
	target int32 // neighbor index in Neighbors(), or -1 for broadcast
	slot   int32
	msg    Message
}

// ID returns this node's identifier in [0, N()).
func (c *Context) ID() int { return int(c.node) }

// N returns the number of nodes. The paper grants this knowledge after
// an O(D) preprocessing phase (Section 2), which drivers charge.
func (c *Context) N() int { return c.engine.g.N() }

// Round returns the current round number within the running phase.
func (c *Context) Round() int { return c.engine.phaseRound }

// Degree returns this node's degree.
func (c *Context) Degree() int { return c.engine.g.Degree(int(c.node)) }

// Neighbors returns this node's sorted neighbor list (shared slice).
func (c *Context) Neighbors() []int32 { return c.engine.g.Neighbors(int(c.node)) }

// Rand returns this node's private random stream.
func (c *Context) Rand() *rand.Rand { return c.rng }

// Broadcast sends msg to all neighbors, consuming one slot. Multiple
// broadcasts per round are allowed and metered: a round where some node
// uses s slots is charged as s rounds.
func (c *Context) Broadcast(msg Message) {
	if err := c.engine.checkMessage(msg); err != nil && c.violation == nil {
		c.violation = fmt.Errorf("node %d round %d: %w", c.node, c.engine.phaseRound, err)
		return
	}
	c.out = append(c.out, outMsg{target: -1, slot: c.slotsUsed, msg: msg})
	c.slotsUsed++
}

// Send sends msg to the neighbor at index nbrIndex in Neighbors(). It is
// only legal in the E-CONGEST model.
func (c *Context) Send(nbrIndex int, msg Message) {
	if c.engine.model != ECongest {
		if c.violation == nil {
			c.violation = fmt.Errorf("node %d round %d: Send is illegal in %v", c.node, c.engine.phaseRound, c.engine.model)
		}
		return
	}
	if nbrIndex < 0 || nbrIndex >= c.Degree() {
		if c.violation == nil {
			c.violation = fmt.Errorf("node %d round %d: neighbor index %d out of range", c.node, c.engine.phaseRound, nbrIndex)
		}
		return
	}
	if err := c.engine.checkMessage(msg); err != nil && c.violation == nil {
		c.violation = fmt.Errorf("node %d round %d: %w", c.node, c.engine.phaseRound, err)
		return
	}
	c.out = append(c.out, outMsg{target: int32(nbrIndex), slot: 0, msg: msg})
}
