// Package benchmarks defines the E1–E8 experiment workloads once, so
// the go-test benchmarks (bench_test.go) and the cmd/bench JSON runner
// execute byte-identical work. Each case reports the paper's quantity
// of interest (rounds, packing size, throughput) through b.ReportMetric,
// which testing.Benchmark surfaces as BenchmarkResult.Extra.
package benchmarks

import (
	"fmt"
	"math"
	"testing"

	decomp "repro"
	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/stp"
	"repro/internal/stpdist"
)

// Case is one runnable benchmark workload.
type Case struct {
	// ID is the experiment label (E1..E5); Name the sub-case (empty when
	// the experiment has a single configuration).
	ID   string
	Name string
	// Bench runs the workload b.N times.
	Bench func(b *testing.B)
}

// FullName returns "E1DomPackingDistributed/Q4"-style names matching
// the go-test benchmark tree.
func (c Case) FullName() string {
	if c.Name == "" {
		return c.ID
	}
	return c.ID + "/" + c.Name
}

// E1 is Theorem 1.1: the distributed dominating-tree packing.
func E1() []Case {
	var cases []Case
	for _, d := range []int{4, 5, 6} {
		d := d
		g := graph.Hypercube(d)
		cases = append(cases, Case{
			ID:   "E1DomPackingDistributed",
			Name: fmt.Sprintf("Q%d", d),
			Bench: func(b *testing.B) {
				var rounds, size float64
				for i := 0; i < b.N; i++ {
					res, err := cdsdist.PackWithGuess(g, 4*d, cds.Options{Seed: uint64(i)})
					if err != nil {
						b.Fatal(err)
					}
					rounds = float64(res.Meter.TotalRounds())
					size = res.Packing.Size()
				}
				b.ReportMetric(rounds, "rounds")
				b.ReportMetric(size, "packing-size")
			},
		})
	}
	return cases
}

// E2 is Theorem 1.2: the centralized packing's O~(m) scaling.
func E2() []Case {
	var cases []Case
	for _, d := range []int{6, 8, 10} {
		g := graph.Hypercube(d)
		cases = append(cases, Case{
			ID:   "E2DomPackingCentralized",
			Name: fmt.Sprintf("Q%d_m%d", d, g.M()),
			Bench: func(b *testing.B) {
				var size float64
				for i := 0; i < b.N; i++ {
					p, err := cds.Pack(g, cds.Options{Seed: uint64(i)})
					if err != nil {
						b.Fatal(err)
					}
					size = p.Size()
				}
				b.ReportMetric(size, "packing-size")
				b.ReportMetric(float64(g.M()), "edges")
			},
		})
	}
	return cases
}

// E3Cent is Theorem 1.3's centralized spanning-tree packing.
func E3Cent() []Case {
	var cases []Case
	for _, tc := range []struct {
		name   string
		g      *graph.Graph
		lambda int
	}{
		{"Q6", graph.Hypercube(6), 6},
		{"K16", graph.Complete(16), 15},
		{"K32", graph.Complete(32), 31},
	} {
		tc := tc
		cases = append(cases, Case{
			ID:   "E3SpanPackingCentralized",
			Name: tc.name,
			Bench: func(b *testing.B) {
				var size float64
				for i := 0; i < b.N; i++ {
					p, err := stp.Pack(tc.g, stp.Options{Seed: uint64(i), KnownLambda: tc.lambda})
					if err != nil {
						b.Fatal(err)
					}
					size = p.Size()
				}
				bound := math.Max(1, math.Ceil(float64(tc.lambda-1)/2))
				b.ReportMetric(size, "packing-size")
				b.ReportMetric(size/bound, "fraction-of-bound")
			},
		})
	}
	return cases
}

// E3Dist is Theorem 1.3's E-CONGEST spanning-tree packing.
func E3Dist() Case {
	g := graph.Hypercube(4)
	return Case{
		ID: "E3SpanPackingDistributed",
		Bench: func(b *testing.B) {
			var rounds, size float64
			for i := 0; i < b.N; i++ {
				res, err := stpdist.Pack(g, stp.Options{Seed: uint64(i), KnownLambda: 4, Epsilon: 0.2})
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(res.Meter.TotalRounds())
				size = res.Packing.Size()
			}
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(size, "packing-size")
		},
	}
}

// E4 is Corollary 1.4: broadcast throughput over the dominating-tree
// packing in V-CONGEST. The packing is built outside the timed region.
func E4() Case {
	g := graph.RandomHamCycles(256, 16, ds.NewRand(2))
	return Case{
		ID: "E4BroadcastVertex",
		Bench: func(b *testing.B) {
			p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			srcs := decomp.UniformSources(g.N(), 4*g.N(), 3)
			b.ResetTimer()
			var speedup, throughput float64
			for i := 0; i < b.N; i++ {
				multi, err := decomp.Broadcast(g, p, srcs, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				single, err := decomp.SingleTreeBroadcast(g, srcs, decomp.VCongest, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				speedup = float64(single.Rounds) / float64(multi.Rounds)
				throughput = multi.Throughput
			}
			b.ReportMetric(throughput, "msgs/round")
			b.ReportMetric(speedup, "speedup-vs-tree")
		},
	}
}

// E5 is Corollary 1.5: broadcast throughput over the spanning-tree
// packing in E-CONGEST. The packing is built outside the timed region.
func E5() Case {
	g := graph.Complete(16)
	return Case{
		ID: "E5BroadcastEdge",
		Bench: func(b *testing.B) {
			p, err := decomp.PackSpanningTrees(g, decomp.WithSeed(1), decomp.WithKnownConnectivity(15))
			if err != nil {
				b.Fatal(err)
			}
			srcs := decomp.UniformSources(g.N(), 4*g.N(), 3)
			b.ResetTimer()
			var speedup, throughput float64
			for i := 0; i < b.N; i++ {
				multi, err := decomp.BroadcastEdges(g, p, srcs, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				single, err := decomp.SingleTreeBroadcast(g, srcs, decomp.ECongest, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				speedup = float64(single.Rounds) / float64(multi.Rounds)
				throughput = multi.Throughput
			}
			b.ReportMetric(throughput, "msgs/round")
			b.ReportMetric(speedup, "speedup-vs-tree")
		},
	}
}

// E5Steady measures steady-state demand serving over the E5 workload:
// K repeated demands served by one reusable Scheduler handle (handle
// construction outside the timed region, only the K Runs inside) versus
// K fresh Broadcast calls that each rebuild per-tree adjacency, FIFOs,
// and bitmasks. Both cases run the identical (demand, seed) sequence, so
// ns/op divides by the same K demands.
func E5Steady() []Case {
	const K = 16
	g := graph.Complete(16)
	setup := func(b *testing.B) (*decomp.SpanningTreePacking, []decomp.Demand) {
		p, err := decomp.PackSpanningTrees(g, decomp.WithSeed(1), decomp.WithKnownConnectivity(15))
		if err != nil {
			b.Fatal(err)
		}
		demands := make([]decomp.Demand, K)
		for k := range demands {
			demands[k] = decomp.Demand{Sources: decomp.UniformSources(g.N(), 4*g.N(), uint64(10+k))}
		}
		return p, demands
	}
	return []Case{
		{
			ID:   "E5SteadyBroadcastEdge",
			Name: "reused",
			Bench: func(b *testing.B) {
				p, demands := setup(b)
				s, err := decomp.NewEdgeBroadcastScheduler(g, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var throughput float64
				for i := 0; i < b.N; i++ {
					for k, d := range demands {
						res, err := s.Run(d, uint64(k))
						if err != nil {
							b.Fatal(err)
						}
						throughput = res.Throughput
					}
				}
				b.ReportMetric(K, "demands/op")
				b.ReportMetric(throughput, "msgs/round")
			},
		},
		{
			ID:   "E5SteadyBroadcastEdge",
			Name: "fresh",
			Bench: func(b *testing.B) {
				p, demands := setup(b)
				b.ReportAllocs()
				b.ResetTimer()
				var throughput float64
				for i := 0; i < b.N; i++ {
					for k, d := range demands {
						res, err := decomp.BroadcastEdges(g, p, d.Sources, uint64(k))
						if err != nil {
							b.Fatal(err)
						}
						throughput = res.Throughput
					}
				}
				b.ReportMetric(K, "demands/op")
				b.ReportMetric(throughput, "msgs/round")
			},
		},
	}
}

// E6Parallel measures parallel demand throughput through the serving
// layer: K closed-loop workers each push M demands through one
// serve.Service (singleflight-cached decomposition, pooled Scheduler
// clones sharing one immutable core, bounded concurrency). The packing
// and the first decomposition happen outside the timed region, so ns/op
// is K×M steady-state demands of parallel serving; W1 is the serial
// baseline the W8 case is compared against.
func E6Parallel() []Case {
	const demandsPerWorker = 4
	g := graph.Complete(16)
	var cases []Case
	for _, workers := range []int{1, 8} {
		workers := workers
		cases = append(cases, Case{
			ID:   "E6ParallelThroughput",
			Name: fmt.Sprintf("W%d", workers),
			Bench: func(b *testing.B) {
				svc := decomp.NewService(decomp.ServiceConfig{PackSeed: 1, MaxConcurrent: workers})
				id, err := svc.RegisterGraph(g)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := svc.Decompose(id, decomp.KindSpanning); err != nil {
					b.Fatal(err)
				}
				cfg := decomp.LoadConfig{
					GraphID: id, Kind: decomp.KindSpanning,
					Workers: workers, Demands: demandsPerWorker,
					MsgsPerDemand: 4 * g.N(), Seed: 7,
				}
				b.ResetTimer()
				var rep decomp.LoadReport
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = decomp.GenerateLoad(svc, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(workers*demandsPerWorker), "demands/op")
				b.ReportMetric(rep.MsgsPerRound, "msgs/round")
				b.ReportMetric(rep.DemandsPerSec, "demands/sec")
			},
		})
	}
	return cases
}

// E7Faulted sweeps seeded edge failures over the E5 decomposition from
// 0 up to (and past) the connectivity bound λ=15, measuring what the
// packing was built for: delivered fraction (≈1.0 below the bound,
// graceful degradation beyond) and the round overhead the surviving-
// tree reroute pass pays for it. The scheduler handle is built outside
// the timed region; each iteration is one faulted demand run.
func E7Faulted() []Case {
	const seeds = 8
	g := graph.Complete(16) // λ = 15
	var cases []Case
	for _, kills := range []int{0, 5, 10, 15, 40, 80} {
		kills := kills
		cases = append(cases, Case{
			ID:   "E7FaultedBroadcast",
			Name: fmt.Sprintf("kill%d", kills),
			Bench: func(b *testing.B) {
				p, err := decomp.PackSpanningTrees(g, decomp.WithSeed(1), decomp.WithKnownConnectivity(15))
				if err != nil {
					b.Fatal(err)
				}
				s, err := decomp.NewEdgeBroadcastScheduler(g, p)
				if err != nil {
					b.Fatal(err)
				}
				d := decomp.Demand{Sources: decomp.UniformSources(g.N(), 4*g.N(), 3)}
				// Healthy round baseline for the same demand sequence,
				// outside the timed region.
				healthy := make([]int, seeds)
				for i := range healthy {
					res, err := s.Run(d, uint64(i))
					if err != nil {
						b.Fatal(err)
					}
					healthy[i] = res.Rounds
				}
				b.ResetTimer()
				var fraction, overhead, retries float64
				for i := 0; i < b.N; i++ {
					fraction, overhead, retries = 0, 0, 0
					for seed := uint64(0); seed < seeds; seed++ {
						plan := decomp.FaultPlan{Round: 1, RandomEdges: kills, Seed: 100 + seed, MaxRetries: 2}
						res, err := s.RunFaulted(d, seed, plan)
						if err != nil {
							b.Fatal(err)
						}
						fraction += res.DeliveredFraction
						overhead += float64(res.Rounds) / float64(healthy[seed])
						retries += float64(res.Retries)
					}
				}
				// Means over the fixed seed set, so the reported metrics
				// are independent of b.N.
				b.ReportMetric(fraction/seeds, "delivered-fraction")
				b.ReportMetric(overhead/seeds, "round-overhead")
				b.ReportMetric(retries/seeds, "retries")
				b.ReportMetric(seeds, "demands/op")
			},
		})
	}
	return cases
}

// E8OpenLoop measures open-loop serving latency: demands arrive on a
// deterministic seeded exponential schedule, independent of how fast the
// service drains them, and the load generator reports the per-demand
// latency distribution. The demand size (2048 msgs on K16, ~0.5 ms of
// service time) puts the serial capacity near 2k demands/sec on the
// reference box, so the two rates straddle saturation: at r900 latency
// tracks service time, at r3600 arrivals outpace the drain and queueing
// delay dominates the tail. Overload latency is bimodal — the semaphore
// admits an arrival that finds a free slot ahead of woken waiters, so
// about half the demands finish at service time while the rest wait out
// the backlog — which makes p95/p99 the robust overload signal (the
// median teeters between the modes). ns/op is schedule-bound below
// saturation and service-bound above it; the latency percentiles are
// the metrics of interest.
func E8OpenLoop() []Case {
	const arrivals, msgs = 96, 2048
	g := graph.Complete(16)
	var cases []Case
	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"r900", 900},
		{"r3600", 3600},
	} {
		tc := tc
		cases = append(cases, Case{
			ID:   "E8OpenLoopLatency",
			Name: tc.name,
			Bench: func(b *testing.B) {
				svc := decomp.NewService(decomp.ServiceConfig{PackSeed: 1, MaxConcurrent: 4})
				id, err := svc.RegisterGraph(g)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := svc.Decompose(id, decomp.KindSpanning); err != nil {
					b.Fatal(err)
				}
				cfg := decomp.LoadConfig{
					GraphID: id, Kind: decomp.KindSpanning,
					MsgsPerDemand: msgs, Seed: 7,
					ArrivalRate: tc.rate, Arrivals: arrivals,
				}
				b.ResetTimer()
				var rep decomp.LoadReport
				for i := 0; i < b.N; i++ {
					rep, err = decomp.GenerateLoad(svc, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(arrivals, "demands/op")
				b.ReportMetric(float64(rep.LatencyP50)/1e6, "p50-ms")
				b.ReportMetric(float64(rep.LatencyP95)/1e6, "p95-ms")
				b.ReportMetric(float64(rep.LatencyP99)/1e6, "p99-ms")
				b.ReportMetric(float64(rep.LatencyMax)/1e6, "max-ms")
				b.ReportMetric(float64(rep.MaxPendingSeen), "peak-pending")
			},
		})
	}
	return cases
}

// Cases returns every E1–E8 workload in experiment order.
func Cases() []Case {
	var all []Case
	all = append(all, E1()...)
	all = append(all, E2()...)
	all = append(all, E3Cent()...)
	all = append(all, E3Dist(), E4(), E5())
	all = append(all, E5Steady()...)
	all = append(all, E6Parallel()...)
	all = append(all, E7Faulted()...)
	all = append(all, E8OpenLoop()...)
	return all
}
