// The HTTP front end over the Service: a small JSON API served by
// cmd/serve and driven in-process by its -selftest mode.
//
//	POST /v1/graphs                      {"n":..,"edges":[[u,v],..]}  -> {"id":..,"n":..,"m":..}
//	GET  /v1/graphs/{id}                                              -> {"id":..,"n":..,"m":..}
//	POST /v1/graphs/{id}/decomposition   {"kind":"dominating"|"spanning"} -> DecompInfo
//	POST /v1/graphs/{id}/broadcast       {"kind":..,"sources":[..],"seed":..} -> BroadcastResponse
//	POST /v1/graphs/{id}/broadcast/batch {"kind":..,"demands":[{"sources":[..],"seed":..},..]} -> BatchResponse
//	GET  /v1/stats                                                    -> Stats
//	GET  /v1/traces[?n=K]                                             -> TracesResponse
//	GET  /metrics                                                     -> Prometheus text exposition
//
// Every request is assigned a request id, echoed in the X-Request-Id
// response header, and carries an obs.Trace through its context; traces
// that recorded at least one serving phase land in the recent-traces
// ring behind GET /v1/traces.
//
// The batch endpoint also has a streaming mode (?stream=1): instead of
// one response after the whole batch, it emits newline-delimited JSON
// BatchEvents — one per completed demand, in completion order, then a
// terminal summary event — as they happen. With an Accept header of
// text/event-stream the same events are framed as SSE data lines. The
// events come off the service's in-process bus; a client that reads too
// slowly loses oldest-first (counted in stats.events_dropped) but always
// receives the terminal summary.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/cast"
	"repro/internal/obs"
)

// RegisterRequest is the POST /v1/graphs payload.
type RegisterRequest struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// GraphInfo answers graph registration and lookup.
type GraphInfo struct {
	ID string `json:"id"`
	N  int    `json:"n"`
	M  int    `json:"m"`
}

// DecomposeRequest is the POST /v1/graphs/{id}/decomposition payload.
type DecomposeRequest struct {
	Kind Kind `json:"kind"`
}

// BroadcastRequest is the POST /v1/graphs/{id}/broadcast payload. A
// non-nil Fault runs the demand under that fault plan (chaos mode) and
// the response carries the fault accounting.
type BroadcastRequest struct {
	Kind    Kind            `json:"kind"`
	Sources []int           `json:"sources"`
	Seed    uint64          `json:"seed"`
	Fault   *cast.FaultPlan `json:"fault,omitempty"`
}

// BatchRequest is the POST /v1/graphs/{id}/broadcast/batch payload:
// N demands served over one decomposition checkout.
type BatchRequest struct {
	Kind    Kind          `json:"kind"`
	Demands []BatchDemand `json:"demands"`
}

// BatchResponse is the non-streaming batch reply: per-demand entries in
// demand order (individual failures are entries, not request errors)
// plus the batch summary.
type BatchResponse struct {
	GraphID string       `json:"graph_id"`
	Kind    Kind         `json:"kind"`
	BatchID uint64       `json:"batch_id"`
	Summary BatchSummary `json:"summary"`
	Entries []BatchEntry `json:"entries"`
}

// FaultInfo is the fault accounting of a chaos-mode broadcast.
type FaultInfo struct {
	FailedEdges       int     `json:"failed_edges"`
	FailedVertices    int     `json:"failed_vertices"`
	TreesSurviving    int     `json:"trees_surviving"`
	PairsExpected     int     `json:"pairs_expected"`
	PairsDelivered    int     `json:"pairs_delivered"`
	DeliveredFraction float64 `json:"delivered_fraction"`
	MessagesDelivered int     `json:"messages_delivered"`
	MessagesLost      int     `json:"messages_lost"`
	Retries           int     `json:"retries"`
	RetryRounds       int     `json:"retry_rounds"`
}

// BroadcastResponse wraps a demand's scheduling result; Fault is set
// exactly when the request carried a fault plan.
type BroadcastResponse struct {
	GraphID  string      `json:"graph_id"`
	Kind     Kind        `json:"kind"`
	Messages int         `json:"messages"`
	Result   cast.Result `json:"result"`
	Fault    *FaultInfo  `json:"fault,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler mounts the JSON API over the service.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		id, err := s.Register(req.N, req.Edges)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		g, _ := s.Graph(id)
		writeJSON(w, http.StatusOK, GraphInfo{ID: id, N: g.N(), M: g.M()})
	})
	mux.HandleFunc("GET /v1/graphs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		g, ok := s.Graph(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
			return
		}
		writeJSON(w, http.StatusOK, GraphInfo{ID: id, N: g.N(), M: g.M()})
	})
	mux.HandleFunc("POST /v1/graphs/{id}/decomposition", func(w http.ResponseWriter, r *http.Request) {
		var req DecomposeRequest
		if !readJSON(w, r, &req) {
			return
		}
		id := r.PathValue("id")
		info, err := s.DecomposeContext(r.Context(), id, req.Kind)
		if err != nil {
			writeError(w, statusFor(s, id), err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /v1/graphs/{id}/broadcast", func(w http.ResponseWriter, r *http.Request) {
		var req BroadcastRequest
		if !readJSON(w, r, &req) {
			return
		}
		id := r.PathValue("id")
		resp := BroadcastResponse{GraphID: id, Kind: req.Kind, Messages: len(req.Sources)}
		if req.Fault != nil {
			fres, err := s.BroadcastFaulted(r.Context(), id, req.Kind, req.Sources, req.Seed, *req.Fault)
			if err != nil {
				writeError(w, statusFor(s, id), err)
				return
			}
			resp.Result = fres.Result
			resp.Fault = &FaultInfo{
				FailedEdges:       fres.FailedEdges,
				FailedVertices:    fres.FailedVertices,
				TreesSurviving:    fres.TreesSurviving,
				PairsExpected:     fres.PairsExpected,
				PairsDelivered:    fres.PairsDelivered,
				DeliveredFraction: fres.DeliveredFraction,
				MessagesDelivered: fres.MessagesDelivered,
				MessagesLost:      fres.MessagesLost,
				Retries:           fres.Retries,
				RetryRounds:       fres.RetryRounds,
			}
		} else {
			res, err := s.BroadcastContext(r.Context(), id, req.Kind, req.Sources, req.Seed)
			if err != nil {
				writeError(w, statusFor(s, id), err)
				return
			}
			resp.Result = res
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/graphs/{id}/broadcast/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !readJSON(w, r, &req) {
			return
		}
		id := r.PathValue("id")
		if r.URL.Query().Get("stream") == "1" {
			streamBatch(s, w, r, id, req)
			return
		}
		res, err := s.BroadcastBatch(r.Context(), id, req.Kind, req.Demands)
		if err != nil {
			writeError(w, statusFor(s, id), err)
			return
		}
		writeJSON(w, http.StatusOK, BatchResponse{
			GraphID: id, Kind: req.Kind, BatchID: res.BatchID,
			Summary: res.Summary, Entries: res.Entries,
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if v := r.URL.Query().Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace limit %q", v))
				return
			}
			limit = n
		}
		writeJSON(w, http.StatusOK, TracesResponse{
			Total:  s.Traces().Total(),
			Traces: s.Traces().Snapshot(limit),
		})
	})
	mux.Handle("GET /metrics", s.Metrics().Handler())
	return withObs(s, mux)
}

// TracesResponse answers GET /v1/traces: the recent traces newest
// first (at most ?n=K of them) and the total ever recorded.
type TracesResponse struct {
	Total  uint64          `json:"total"`
	Traces []obs.TraceData `json:"traces"`
}

// withObs is the request-observability middleware: it assigns each
// request an id (echoed as X-Request-Id), threads a trace through the
// request context, and — when the handler recorded at least one serving
// phase — lands the trace in the recent-traces ring. Lookup-only
// endpoints (stats, metrics, the traces endpoint itself) record no
// spans and therefore never pollute the ring.
func withObs(s *Service, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(obs.NewID())
		w.Header().Set("X-Request-Id", tr.ID())
		next.ServeHTTP(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		if tr.HasSpans() {
			s.Traces().Add(tr)
		}
	})
}

// streamBatch serves the batch's per-demand completion events as they
// happen. Request-level validation (and the single pack-cache checkout)
// runs before the first byte, so errors still get proper status codes;
// after that the response is a 200 event stream regardless of
// individual demand outcomes.
func streamBatch(s *Service, w http.ResponseWriter, r *http.Request, id string, req BatchRequest) {
	e, pe, err := s.prepareBatch(r.Context(), id, req.Kind, req.Demands)
	if err != nil {
		writeError(w, statusFor(s, id), err)
		return
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	batchID := s.batchSeq.Add(1)
	sub := s.bus.subscribe(batchID, s.cfg.StreamBuffer)
	defer s.bus.unsubscribe(sub)
	go s.runBatch(r.Context(), e, pe, req.Demands, batchID)

	enc := json.NewEncoder(w)
	for {
		select {
		case ev := <-sub.Events():
			if sse {
				fmt.Fprintf(w, "data: ")
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "\n")
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Type == EventSummary {
				return
			}
		case <-r.Context().Done():
			// Client gone: the batch itself keeps winding down under its
			// cancelled request context; nothing left to stream.
			return
		}
	}
}

// statusFor distinguishes "graph does not exist" (404) from request
// errors on an existing graph (400).
func statusFor(s *Service, id string) int {
	if _, ok := s.Graph(id); !ok {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
