package serve

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ds"
	"repro/internal/graph"
)

// TestBroadcastBatch pins the batched path's core contract: per-demand
// entries in demand order with individual failures as entries (never
// request errors), results identical to the same demands served one by
// one, and exactly one pack-cache checkout for the whole batch.
func TestBroadcastBatch(t *testing.T) {
	g := testGraph()
	s := New(Config{PackSeed: 1, MaxConcurrent: 4})
	id := mustRegister(t, s, g)

	const n = 12
	demands := make([]BatchDemand, n)
	rng := ds.NewRand(3)
	for i := range demands {
		demands[i] = BatchDemand{
			Sources: castSources(g.N(), 4+i, rng),
			Seed:    uint64(100 + i),
		}
	}
	// Wedge two invalid demands into the middle: they must come back as
	// error entries without disturbing their neighbours.
	demands[3] = BatchDemand{Sources: nil, Seed: 1}
	demands[8] = BatchDemand{Sources: []int{g.N() + 5}, Seed: 1}

	res, err := s.BroadcastBatch(context.Background(), id, Dominating, demands)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchID == 0 {
		t.Fatal("batch id not assigned")
	}
	if len(res.Entries) != n {
		t.Fatalf("%d entries for %d demands", len(res.Entries), n)
	}
	if res.Summary.Demands != n || res.Summary.Succeeded != n-2 || res.Summary.Failed != 2 {
		t.Fatalf("summary miscounts: %+v", res.Summary)
	}

	// Entry-for-entry equivalence with the serial path on a fresh service
	// (same pack seed, same decomposition).
	ref := New(Config{PackSeed: 1})
	if _, err := ref.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	var wantRounds uint64
	var wantMsgs int
	for i, e := range res.Entries {
		if e.Index != i {
			t.Fatalf("entry %d mislabeled: %+v", i, e)
		}
		if i == 3 || i == 8 {
			if e.Error == "" || e.Result != nil {
				t.Fatalf("invalid demand %d not an error entry: %+v", i, e)
			}
			continue
		}
		if e.Error != "" || e.Result == nil {
			t.Fatalf("valid demand %d failed: %+v", i, e)
		}
		want, err := ref.Broadcast(id, Dominating, demands[i].Sources, demands[i].Seed)
		if err != nil {
			t.Fatal(err)
		}
		if *e.Result != want {
			t.Fatalf("demand %d diverged from serial path: %+v vs %+v", i, *e.Result, want)
		}
		wantRounds += uint64(want.Rounds)
		wantMsgs += len(demands[i].Sources)
	}
	if res.Summary.Rounds != wantRounds || res.Summary.Messages != wantMsgs {
		t.Fatalf("summary rounds/messages %d/%d, want %d/%d", res.Summary.Rounds, res.Summary.Messages, wantRounds, wantMsgs)
	}

	// The acceptance gate: one batch of N demands touches the pack cache
	// exactly once — PackRequests is 1, not N.
	st := s.Stats()
	if st.PackRequests != 1 || st.PackComputes != 1 {
		t.Fatalf("batch made %d pack requests / %d computes, want 1/1", st.PackRequests, st.PackComputes)
	}
	// And the amortized stats fold matches the per-demand path's totals.
	if st.Requests != n-2 || st.Messages != uint64(wantMsgs) || st.Rounds != wantRounds {
		t.Fatalf("amortized stats wrong: requests=%d messages=%d rounds=%d, want %d/%d/%d",
			st.Requests, st.Messages, st.Rounds, n-2, wantMsgs, wantRounds)
	}
	rst := ref.Stats()
	if st.MaxVertexCongestion != rst.MaxVertexCongestion || st.MaxEdgeCongestion != rst.MaxEdgeCongestion {
		t.Fatalf("congestion maxima diverge from serial path: %+v vs %+v", st, rst)
	}

	// A second identical batch replays entry for entry and gets a fresh id.
	res2, err := s.BroadcastBatch(context.Background(), id, Dominating, demands)
	if err != nil {
		t.Fatal(err)
	}
	if res2.BatchID == res.BatchID {
		t.Fatal("batch ids not unique")
	}
	for i := range res.Entries {
		a, b := res.Entries[i], res2.Entries[i]
		if a.Error != b.Error || (a.Result == nil) != (b.Result == nil) {
			t.Fatalf("replayed entry %d diverged: %+v vs %+v", i, a, b)
		}
		if a.Result != nil && *a.Result != *b.Result {
			t.Fatalf("replayed entry %d result diverged: %+v vs %+v", i, *a.Result, *b.Result)
		}
	}
}

// castSources draws k distinct-ish sources for a batch demand.
func castSources(n, k int, rng interface{ IntN(int) int }) []int {
	srcs := make([]int, k)
	for i := range srcs {
		srcs[i] = rng.IntN(n)
	}
	return srcs
}

// TestBroadcastBatchRequestErrors pins what fails the whole batch versus
// what becomes an entry: unknown graph, unknown kind, empty batch,
// oversized batch, and a cached packing error are request-level; nothing
// else is.
func TestBroadcastBatchRequestErrors(t *testing.T) {
	s := New(Config{PackSeed: 1, MaxBatch: 4})
	id := mustRegister(t, s, testGraph())
	ctx := context.Background()
	one := []BatchDemand{{Sources: []int{0}, Seed: 1}}

	if _, err := s.BroadcastBatch(ctx, "nope", Dominating, one); err == nil || !strings.Contains(err.Error(), "unknown graph") {
		t.Fatalf("unknown graph: %v", err)
	}
	if _, err := s.BroadcastBatch(ctx, id, Kind("steiner"), one); err == nil || !strings.Contains(err.Error(), "unknown decomposition kind") {
		t.Fatalf("unknown kind: %v", err)
	}
	if _, err := s.BroadcastBatch(ctx, id, Dominating, nil); err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("empty batch: %v", err)
	}
	big := make([]BatchDemand, 5)
	for i := range big {
		big[i] = one[0]
	}
	if _, err := s.BroadcastBatch(ctx, id, Dominating, big); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized batch: %v", err)
	}
	if st := s.Stats(); st.Requests != 0 {
		t.Fatalf("rejected batches counted demands: %+v", st)
	}

	// A cached packing error rejects the batch (no per-entry half-service).
	bad := mustRegister(t, s, graph.FromEdgeList(4, [][2]int{{0, 1}, {2, 3}}))
	if _, err := s.BroadcastBatch(ctx, bad, Spanning, one); err == nil {
		t.Fatal("batch over failed packing accepted")
	}
}

// TestBroadcastBatchEvents subscribes to the bus directly and pins the
// event protocol the streaming handler relies on: one demand event per
// entry (valid or not), then exactly one terminal summary matching the
// returned batch result.
func TestBroadcastBatchEvents(t *testing.T) {
	s := New(Config{PackSeed: 1, MaxConcurrent: 2})
	id := mustRegister(t, s, testGraph())
	demands := []BatchDemand{
		{Sources: []int{0, 1, 2}, Seed: 5},
		{Sources: nil, Seed: 0}, // error entry, still an event
		{Sources: []int{3, 4}, Seed: 6},
	}

	// Wildcard subscription (the batch id is allocated inside the call).
	sub := s.bus.subscribe(0, 16)
	defer s.bus.unsubscribe(sub)
	res, err := s.BroadcastBatch(context.Background(), id, Dominating, demands)
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[int]BatchEvent)
	var summary *BatchEvent
	for summary == nil {
		select {
		case ev := <-sub.Events():
			if ev.BatchID != res.BatchID {
				t.Fatalf("event for foreign batch: %+v", ev)
			}
			switch ev.Type {
			case EventDemand:
				if _, dup := seen[ev.Index]; dup {
					t.Fatalf("duplicate event for demand %d", ev.Index)
				}
				seen[ev.Index] = ev
			case EventSummary:
				summary = &ev
			}
		default:
			t.Fatalf("bus drained early: %d demand events, no summary", len(seen))
		}
	}
	if len(seen) != len(demands) {
		t.Fatalf("%d demand events for %d demands", len(seen), len(demands))
	}
	for i, e := range res.Entries {
		ev := seen[i]
		if ev.Error != e.Error {
			t.Fatalf("event %d error %q != entry error %q", i, ev.Error, e.Error)
		}
		if (ev.Result == nil) != (e.Result == nil) || (ev.Result != nil && *ev.Result != *e.Result) {
			t.Fatalf("event %d result mismatch: %+v vs %+v", i, ev.Result, e.Result)
		}
	}
	if *summary.Summary != res.Summary {
		t.Fatalf("summary event %+v != batch summary %+v", *summary.Summary, res.Summary)
	}
	if len(sub.Events()) != 0 {
		t.Fatal("events published after the terminal summary")
	}
}
