package serve

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/snap"
)

// storeConfig is the shared persistence config for these tests: the
// store keys on (PackSeed, Epsilon), so warm-restart tests must reuse
// it exactly.
func storeConfig(dir string) Config {
	return Config{MaxConcurrent: 4, PackSeed: 11, StoreDir: dir}
}

func mustDecompose(t *testing.T, s *Service, id string, kind Kind) DecompInfo {
	t.Helper()
	info, err := s.Decompose(id, kind)
	if err != nil {
		t.Fatalf("Decompose(%s, %s): %v", id, kind, err)
	}
	return info
}

// TestWarmRestartServesFromStore is the tentpole acceptance test: a
// second service over the same store directory serves every previously
// packed (graph, kind) without running a packer, and its broadcasts are
// byte-identical to the first service's.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	g := testGraph()
	sources := []int{0, 5, 9}

	s1 := New(storeConfig(dir))
	id := mustRegister(t, s1, g)
	for _, kind := range []Kind{Dominating, Spanning} {
		if info := mustDecompose(t, s1, id, kind); info.Cached {
			t.Fatalf("first %s decomposition reported cached", kind)
		}
	}
	ref := make(map[Kind]interface{})
	for _, kind := range []Kind{Dominating, Spanning} {
		res, err := s1.Broadcast(id, kind, sources, 42)
		if err != nil {
			t.Fatalf("Broadcast(%s): %v", kind, err)
		}
		ref[kind] = res
	}
	s1.FlushStore()
	st1 := s1.Stats()
	if st1.PackComputes != 2 || st1.StoreMisses != 2 || st1.StoreHits != 0 {
		t.Fatalf("cold service: PackComputes=%d StoreMisses=%d StoreHits=%d, want 2/2/0",
			st1.PackComputes, st1.StoreMisses, st1.StoreHits)
	}

	// Warm restart: fresh service, same store, same options.
	s2 := New(storeConfig(dir))
	if _, err := s2.RegisterGraph(g); err != nil {
		t.Fatalf("RegisterGraph: %v", err)
	}
	for _, kind := range []Kind{Dominating, Spanning} {
		if info := mustDecompose(t, s2, id, kind); !info.Cached {
			t.Fatalf("warm %s decomposition reported uncached (repacked)", kind)
		}
	}
	st2 := s2.Stats()
	if st2.PackComputes != 0 {
		t.Fatalf("warm restart ran %d packings, want 0", st2.PackComputes)
	}
	if st2.StoreHits != 2 || st2.StoreErrors != 0 {
		t.Fatalf("warm restart: StoreHits=%d StoreErrors=%d, want 2/0", st2.StoreHits, st2.StoreErrors)
	}
	if st2.PackRequests != st2.PackComputes+st2.CacheHits+st2.Coalesced+st2.StoreHits {
		t.Fatalf("stats invariant broken: requests=%d computes=%d hits=%d coalesced=%d storeHits=%d",
			st2.PackRequests, st2.PackComputes, st2.CacheHits, st2.Coalesced, st2.StoreHits)
	}
	for _, kind := range []Kind{Dominating, Spanning} {
		res, err := s2.Broadcast(id, kind, sources, 42)
		if err != nil {
			t.Fatalf("warm Broadcast(%s): %v", kind, err)
		}
		if !reflect.DeepEqual(res, ref[kind]) {
			t.Fatalf("warm %s broadcast differs from cold service's result", kind)
		}
	}
	if len(st2.PerGraph) != 1 || st2.PerGraph[0].StoreHits != 2 {
		t.Fatalf("per-graph store hits not recorded: %+v", st2.PerGraph)
	}
}

// TestCorruptSnapshotsDegradeToRecompute damages every on-disk
// snapshot in a different way and asserts a restarted service still
// serves correct decompositions — by repacking, never by returning an
// error to the client.
func TestCorruptSnapshotsDegradeToRecompute(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x20
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			g := graph.Hypercube(4)
			s1 := New(storeConfig(dir))
			id := mustRegister(t, s1, g)
			mustDecompose(t, s1, id, Dominating)
			s1.FlushStore()

			files, err := filepath.Glob(filepath.Join(dir, "*.snap"))
			if err != nil || len(files) != 1 {
				t.Fatalf("expected one snapshot file, got %v (%v)", files, err)
			}
			tc.corrupt(t, files[0])

			s2 := New(storeConfig(dir))
			if _, err := s2.RegisterGraph(g); err != nil {
				t.Fatal(err)
			}
			info := mustDecompose(t, s2, id, Dominating)
			s2.FlushStore() // let the repaired write-behind save land before TempDir cleanup
			if info.Cached {
				t.Fatalf("corrupt snapshot served as cached")
			}
			st := s2.Stats()
			if st.StoreErrors == 0 {
				t.Fatalf("corruption not counted: %+v", st)
			}
			if st.PackComputes != 1 {
				t.Fatalf("PackComputes = %d, want 1 (recompute)", st.PackComputes)
			}
			if st.PackRequests != st.PackComputes+st.CacheHits+st.Coalesced+st.StoreHits {
				t.Fatalf("stats invariant broken after corruption: %+v", st)
			}
		})
	}
}

// TestDifferentOptionsMissTheStore: snapshots are keyed by the options
// digest, so a service with a different PackSeed must not adopt another
// service's trees (they would break its replay determinism).
func TestDifferentOptionsMissTheStore(t *testing.T) {
	dir := t.TempDir()
	g := graph.Hypercube(4)
	s1 := New(storeConfig(dir))
	id := mustRegister(t, s1, g)
	mustDecompose(t, s1, id, Spanning)
	s1.FlushStore()

	cfg := storeConfig(dir)
	cfg.PackSeed = 12
	s2 := New(cfg)
	if _, err := s2.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	mustDecompose(t, s2, id, Spanning)
	s2.FlushStore()
	st := s2.Stats()
	if st.StoreHits != 0 || st.StoreMisses != 1 || st.PackComputes != 1 {
		t.Fatalf("differently-seeded service: StoreHits=%d StoreMisses=%d PackComputes=%d, want 0/1/1",
			st.StoreHits, st.StoreMisses, st.PackComputes)
	}
}

// TestEvictionReloadsFromStore: with MaxResident=1 the second kind
// evicts the first; re-requesting the first reloads it from disk (a
// store hit, not a repack) and serving still works.
func TestEvictionReloadsFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg := storeConfig(dir)
	cfg.MaxResident = 1
	g := graph.Hypercube(4)
	s := New(cfg)
	id := mustRegister(t, s, g)

	mustDecompose(t, s, id, Dominating)
	s.FlushStore() // the snapshot must be on disk before eviction
	mustDecompose(t, s, id, Spanning)
	st := s.Stats()
	if st.Evictions != 1 || st.Resident != 1 {
		t.Fatalf("after second kind: Evictions=%d Resident=%d, want 1/1", st.Evictions, st.Resident)
	}

	info := mustDecompose(t, s, id, Dominating)
	if !info.Cached {
		t.Fatalf("reloaded decomposition reported uncached")
	}
	st = s.Stats()
	if st.StoreHits != 1 || st.PackComputes != 2 {
		t.Fatalf("reload after eviction: StoreHits=%d PackComputes=%d, want 1/2", st.StoreHits, st.PackComputes)
	}
	if _, err := s.Broadcast(id, Dominating, []int{0, 3}, 7); err != nil {
		t.Fatalf("Broadcast after reload: %v", err)
	}
	s.FlushStore() // the spanning save must land before TempDir cleanup
}

// TestEvictionWithoutStoreRecomputes: the residency bound works with
// persistence disabled too — evicted entries just repack on demand.
func TestEvictionWithoutStoreRecomputes(t *testing.T) {
	g := graph.Hypercube(4)
	s := New(Config{MaxConcurrent: 2, MaxResident: 1})
	id := mustRegister(t, s, g)
	mustDecompose(t, s, id, Dominating)
	mustDecompose(t, s, id, Spanning)
	info := mustDecompose(t, s, id, Dominating)
	if info.Cached {
		t.Fatalf("evicted entry served as cached without a store")
	}
	st := s.Stats()
	if st.PackComputes != 3 || st.Evictions != 2 {
		t.Fatalf("PackComputes=%d Evictions=%d, want 3/2", st.PackComputes, st.Evictions)
	}
	if st.PackRequests != st.PackComputes+st.CacheHits+st.Coalesced+st.StoreHits {
		t.Fatalf("stats invariant broken under eviction: %+v", st)
	}
}

// TestConcurrentLoadWhileEvict hammers both kinds of one graph with
// MaxResident=1, so loads, evictions, reloads, and broadcasts interleave
// constantly. Run under -race this is the tentpole's concurrency test.
func TestConcurrentLoadWhileEvict(t *testing.T) {
	dir := t.TempDir()
	cfg := storeConfig(dir)
	cfg.MaxResident = 1
	g := graph.Hypercube(4)
	s := New(cfg)
	id := mustRegister(t, s, g)

	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			kind := Dominating
			if w%2 == 1 {
				kind = Spanning
			}
			for i := 0; i < iters; i++ {
				if _, err := s.Decompose(id, kind); err != nil {
					t.Errorf("worker %d: Decompose: %v", w, err)
					return
				}
				if _, err := s.Broadcast(id, kind, []int{w % g.N()}, uint64(i)); err != nil {
					t.Errorf("worker %d: Broadcast: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s.FlushStore()
	st := s.Stats()
	if st.PackRequests != st.PackComputes+st.CacheHits+st.Coalesced+st.StoreHits {
		t.Fatalf("stats invariant broken under churn: requests=%d computes=%d hits=%d coalesced=%d storeHits=%d",
			st.PackRequests, st.PackComputes, st.CacheHits, st.Coalesced, st.StoreHits)
	}
	if st.Requests != workers*iters {
		t.Fatalf("Requests = %d, want %d", st.Requests, workers*iters)
	}
}

// TestIngestInstallsSnapshot: a snapshot file produced elsewhere (here:
// by a first service) can be ingested into a fresh store-less service,
// registering its graph and priming the cache so the first Decompose is
// already a cache hit with zero packings.
func TestIngestInstallsSnapshot(t *testing.T) {
	dir := t.TempDir()
	g := graph.Hypercube(4)
	s1 := New(storeConfig(dir))
	id := mustRegister(t, s1, g)
	mustDecompose(t, s1, id, Spanning)
	s1.FlushStore()

	sn, err := snap.NewStore(dir).Load(id, string(Spanning), snap.OptionsDigest(11, 0))
	if err != nil {
		t.Fatalf("loading snapshot back: %v", err)
	}

	s2 := New(Config{MaxConcurrent: 2, PackSeed: 11})
	gotID, err := s2.Ingest(sn)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if gotID != id {
		t.Fatalf("Ingest registered id %s, want %s", gotID, id)
	}
	info := mustDecompose(t, s2, id, Spanning)
	if !info.Cached {
		t.Fatalf("post-ingest decomposition reported uncached")
	}
	if st := s2.Stats(); st.PackComputes != 0 || st.Graphs != 1 {
		t.Fatalf("post-ingest stats: PackComputes=%d Graphs=%d, want 0/1", st.PackComputes, st.Graphs)
	}
	if _, err := s2.Broadcast(id, Spanning, []int{1, 2}, 3); err != nil {
		t.Fatalf("Broadcast over ingested snapshot: %v", err)
	}

	// A service with different packing options must refuse the snapshot.
	s3 := New(Config{MaxConcurrent: 2, PackSeed: 99})
	if _, err := s3.Ingest(sn); err == nil {
		t.Fatalf("Ingest accepted a snapshot with a foreign options digest")
	}
}

// TestStoreErrNotFoundSentinel pins the miss classification Load
// promises callers: absent file → ErrNotFound (a plain miss), present
// but damaged → not ErrNotFound (an error worth counting separately).
func TestStoreErrNotFoundSentinel(t *testing.T) {
	st := snap.NewStore(t.TempDir())
	_, err := st.Load("g0000000000000000", string(Dominating), 0)
	if !errors.Is(err, snap.ErrNotFound) {
		t.Fatalf("missing file: got %v, want ErrNotFound", err)
	}
}
