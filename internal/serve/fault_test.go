package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cast"
	"repro/internal/graph"
)

func getJSON(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestBroadcastFaultedDeterministic pins the chaos path end to end:
// the same (graph, kind, demand, seed, plan) through the service is
// exactly reproducible, degrades gracefully (structured partial
// delivery, no error), does not poison the packing cache, and lands in
// the chaos stats globally and per graph.
func TestBroadcastFaultedDeterministic(t *testing.T) {
	s := New(Config{PackSeed: 1})
	id := mustRegister(t, s, testGraph())
	sources := []int{0, 1, 2, 3, 4, 5, 6, 7}
	plan := cast.FaultPlan{Round: 1, RandomEdges: 3, Seed: 42}
	ctx := context.Background()
	for _, kind := range []Kind{Dominating, Spanning} {
		first, err := s.BroadcastFaulted(ctx, id, kind, sources, 9, plan)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		again, err := s.BroadcastFaulted(ctx, id, kind, sources, 9, plan)
		if err != nil {
			t.Fatal(err)
		}
		if first != again {
			t.Fatalf("%s: faulted broadcast diverged: %+v vs %+v", kind, first, again)
		}
		if first.DeliveredFraction <= 0 || first.DeliveredFraction > 1 {
			t.Fatalf("%s: delivered fraction %v out of (0,1]", kind, first.DeliveredFraction)
		}
		// The faulted run shares the healthy decomposition cache: no
		// extra packing may have happened, and a healthy broadcast over
		// the same cache still works.
		if _, err := s.Broadcast(id, kind, sources, 9); err != nil {
			t.Fatalf("%s: healthy broadcast after chaos: %v", kind, err)
		}
	}
	st := s.Stats()
	if st.PackComputes != 2 {
		t.Fatalf("PackComputes=%d, want 2 (chaos must reuse the cache)", st.PackComputes)
	}
	if st.FaultedRequests != 4 {
		t.Fatalf("FaultedRequests=%d, want 4", st.FaultedRequests)
	}
	if st.Requests != 6 {
		t.Fatalf("Requests=%d, want 6 (faulted demands count as served)", st.Requests)
	}
	if st.DeliveredFraction <= 0 || st.DeliveredFraction > 1 {
		t.Fatalf("stats DeliveredFraction=%v", st.DeliveredFraction)
	}
	if len(st.PerGraph) != 1 || st.PerGraph[0].FaultedRequests != 4 {
		t.Fatalf("per-graph chaos stats missing: %+v", st.PerGraph)
	}
	if st.PerGraph[0].DeliveredFraction != st.DeliveredFraction {
		t.Fatalf("per-graph fraction %v != global %v with one graph", st.PerGraph[0].DeliveredFraction, st.DeliveredFraction)
	}
}

// TestBroadcastFaultedValidation: invalid plans error without touching
// the broadcast stats.
func TestBroadcastFaultedValidation(t *testing.T) {
	s := New(Config{PackSeed: 1})
	id := mustRegister(t, s, testGraph())
	ctx := context.Background()
	bad := []cast.FaultPlan{
		{Round: -1},
		{Edges: []int{1 << 20}},
		{Vertices: []int{-1}},
		{RandomEdges: -1},
	}
	for i, plan := range bad {
		if _, err := s.BroadcastFaulted(ctx, id, Spanning, []int{0, 1}, 1, plan); err == nil {
			t.Fatalf("plan %d (%+v) accepted", i, plan)
		}
	}
	if st := s.Stats(); st.Requests != 0 || st.FaultedRequests != 0 {
		t.Fatalf("failed chaos requests leaked into stats: %+v", st)
	}
}

// TestBroadcastContextCancelReleasesSlot pins the disconnect story: a
// cancelled request returns the context error, releases its bounded-
// runner slot and returns the clone to the pool, so subsequent demands
// proceed unimpeded — with MaxConcurrent=1 a leaked slot would deadlock
// the follow-up broadcast.
func TestBroadcastContextCancelReleasesSlot(t *testing.T) {
	s := New(Config{PackSeed: 1, MaxConcurrent: 1})
	id := mustRegister(t, s, testGraph())
	sources := []int{0, 1, 2, 3}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.BroadcastContext(cancelled, id, Spanning, sources, 1); err != context.Canceled {
		t.Fatalf("cancelled broadcast: err=%v, want context.Canceled", err)
	}
	if _, err := s.BroadcastFaulted(cancelled, id, Spanning, sources, 1, cast.FaultPlan{RandomEdges: 1, Seed: 1, Round: 1}); err != context.Canceled {
		t.Fatalf("cancelled faulted broadcast: err=%v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Requests != 0 {
		t.Fatalf("cancelled demands counted as served: %+v", st)
	}

	// The slot and clone must be free: a healthy broadcast completes
	// promptly and matches an uncancelled service's result exactly.
	done := make(chan struct{})
	var got cast.Result
	go func() {
		defer close(done)
		var err error
		got, err = s.Broadcast(id, Spanning, sources, 7)
		if err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("broadcast after cancellation never completed: slot leaked")
	}
	fresh := New(Config{PackSeed: 1})
	if _, err := fresh.RegisterGraph(testGraph()); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Broadcast(id, Spanning, sources, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-cancel broadcast diverged: %+v vs %+v", got, want)
	}
}

// TestGenerateLoadChaos pins the chaos load generator: a FaultRate of 1
// faults every demand, the report's chaos accounting is populated and
// exactly reproducible, and rate 0 keeps the healthy path untouched.
func TestGenerateLoadChaos(t *testing.T) {
	run := func() (LoadReport, *Service) {
		s := New(Config{PackSeed: 1, MaxConcurrent: 4})
		id := mustRegister(t, s, testGraph())
		rep, err := GenerateLoad(s, LoadConfig{
			GraphID: id, Kind: Spanning,
			Workers: 3, Demands: 4, MsgsPerDemand: 8,
			Seed:      11,
			FaultRate: 1, FaultSeed: 5, FaultEdges: 2, FaultRetries: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, s
	}
	rep, s := run()
	if rep.FaultedDemands != rep.Demands {
		t.Fatalf("FaultRate=1 faulted %d of %d demands", rep.FaultedDemands, rep.Demands)
	}
	if rep.DeliveredFraction <= 0 || rep.DeliveredFraction > 1 {
		t.Fatalf("DeliveredFraction=%v", rep.DeliveredFraction)
	}
	if st := s.Stats(); st.FaultedRequests != uint64(rep.Demands) {
		t.Fatalf("service saw %d faulted requests, report says %d", st.FaultedRequests, rep.Demands)
	}
	rep2, _ := run()
	rep.Elapsed, rep2.Elapsed = 0, 0
	rep.DemandsPerSec, rep2.DemandsPerSec = 0, 0
	rep.Phases, rep2.Phases = nil, nil // wall-clock latencies
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatalf("chaos load run not reproducible: %+v vs %+v", rep, rep2)
	}

	s2 := New(Config{PackSeed: 1})
	id := mustRegister(t, s2, testGraph())
	healthy, err := GenerateLoad(s2, LoadConfig{GraphID: id, Kind: Spanning, Workers: 2, Demands: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.FaultedDemands != 0 || healthy.MessagesLost != 0 || healthy.DeliveredFraction != 1 {
		t.Fatalf("healthy load reported chaos: %+v", healthy)
	}
	if st := s2.Stats(); st.FaultedRequests != 0 {
		t.Fatalf("healthy load hit the chaos path: %+v", st)
	}
}

// TestHTTPFaultedBroadcast drives chaos mode over real HTTP: a request
// with a fault plan returns the fault accounting, replays byte-
// identically, and leaves the healthy path serving the same graph.
func TestHTTPFaultedBroadcast(t *testing.T) {
	svc := New(Config{PackSeed: 1, MaxConcurrent: 4})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := srv.Client()

	g := graph.Hypercube(4)
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	var info GraphInfo
	if code, body := postJSON(t, client, srv.URL+"/v1/graphs", RegisterRequest{N: g.N(), Edges: edges}, &info); code != http.StatusOK {
		t.Fatalf("register: %d %s", code, body)
	}
	req := BroadcastRequest{
		Kind: Spanning, Sources: []int{0, 1, 2, 3}, Seed: 3,
		Fault: &cast.FaultPlan{Round: 1, RandomEdges: 2, Seed: 6},
	}
	url := srv.URL + "/v1/graphs/" + info.ID + "/broadcast"
	var resp BroadcastResponse
	if code, body := postJSON(t, client, url, req, &resp); code != http.StatusOK {
		t.Fatalf("faulted broadcast: %d %s", code, body)
	}
	if resp.Fault == nil {
		t.Fatalf("faulted response missing fault info: %+v", resp)
	}
	if resp.Fault.FailedEdges != 2 || resp.Fault.DeliveredFraction <= 0 {
		t.Fatalf("implausible fault info: %+v", resp.Fault)
	}
	var replay BroadcastResponse
	if code, body := postJSON(t, client, url, req, &replay); code != http.StatusOK {
		t.Fatalf("replay: %d %s", code, body)
	}
	if *replay.Fault != *resp.Fault || replay.Result != resp.Result {
		t.Fatalf("HTTP chaos replay diverged: %+v vs %+v", replay, resp)
	}

	healthy := BroadcastRequest{Kind: Spanning, Sources: []int{0, 1, 2, 3}, Seed: 3}
	var hres BroadcastResponse
	if code, body := postJSON(t, client, url, healthy, &hres); code != http.StatusOK {
		t.Fatalf("healthy after chaos: %d %s", code, body)
	}
	if hres.Fault != nil {
		t.Fatalf("healthy response carries fault info: %+v", hres)
	}
	var st Stats
	getJSON(t, client, srv.URL+"/v1/stats", &st)
	if st.FaultedRequests != 2 || st.Requests != 3 {
		t.Fatalf("stats after chaos: %+v", st)
	}
}

// TestHandlerErrorPaths pins the HTTP error contract: malformed JSON,
// unknown graph ids, unknown kinds, and oversized demands map to the
// right status codes, and none of them pollutes the packing cache or
// the served-demand stats.
func TestHandlerErrorPaths(t *testing.T) {
	svc := New(Config{PackSeed: 1, MaxMsgsPerDemand: 4})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := srv.Client()

	g := graph.Hypercube(3)
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	var info GraphInfo
	if code, body := postJSON(t, client, srv.URL+"/v1/graphs", RegisterRequest{N: g.N(), Edges: edges}, &info); code != http.StatusOK {
		t.Fatalf("register: %d %s", code, body)
	}
	bURL := srv.URL + "/v1/graphs/" + info.ID + "/broadcast"

	post := func(url, body string) (int, string) {
		t.Helper()
		resp, err := client.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 1024)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"malformed JSON", bURL, `{"kind":`, http.StatusBadRequest},
		{"unknown field", bURL, `{"kind":"spanning","bogus":1}`, http.StatusBadRequest},
		{"unknown graph", srv.URL + "/v1/graphs/gdeadbeef/broadcast", `{"kind":"spanning","sources":[0],"seed":1}`, http.StatusNotFound},
		{"unknown kind", bURL, `{"kind":"steiner","sources":[0],"seed":1}`, http.StatusBadRequest},
		{"empty demand", bURL, `{"kind":"spanning","sources":[],"seed":1}`, http.StatusBadRequest},
		{"oversized demand", bURL, `{"kind":"spanning","sources":[0,1,2,3,4,5],"seed":1}`, http.StatusBadRequest},
		{"source out of range", bURL, `{"kind":"spanning","sources":[99],"seed":1}`, http.StatusBadRequest},
		{"bad fault plan", bURL, `{"kind":"spanning","sources":[0],"seed":1,"fault":{"round":-1}}`, http.StatusBadRequest},
		{"unknown graph decompose", srv.URL + "/v1/graphs/gdeadbeef/decomposition", `{"kind":"spanning"}`, http.StatusNotFound},
		{"unknown kind decompose", srv.URL + "/v1/graphs/" + info.ID + "/decomposition", `{"kind":"steiner"}`, http.StatusBadRequest},
		{"bad register", srv.URL + "/v1/graphs", `{"n":-3}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := post(tc.url, tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d (body %s), want %d", tc.name, code, body, tc.want)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: error body missing structured error: %s", tc.name, body)
		}
	}

	// None of the failures may have polluted caches or demand stats.
	var st Stats
	getJSON(t, client, srv.URL+"/v1/stats", &st)
	if st.Requests != 0 || st.FaultedRequests != 0 {
		t.Fatalf("failed requests counted as served: %+v", st)
	}
	// The oversized/unknown-kind paths run before packing; only valid
	// kinds on the real graph may ever have computed (here: none, since
	// every broadcast failed validation first... except the empty/bad
	// plan cases which validate before pack too).
	if st.PackComputes > 1 {
		t.Fatalf("error paths packed %d decompositions", st.PackComputes)
	}
}

// TestChaosStatsSnapshotConsistency is the torn-snapshot regression: the
// delivered/expected pair must move atomically, so a Stats reader racing
// faulted broadcasts that each deliver fully can never observe a
// fraction other than exactly 1. (With the pair as two independent
// atomics, a snapshot between the two bumps reports a transiently wrong
// fraction — this test, under -race or just enough iterations, catches
// that.)
func TestChaosStatsSnapshotConsistency(t *testing.T) {
	g := graph.Complete(16)
	sources := []int{0, 1, 2, 3}

	// Pre-verify serially which single-edge-kill runs deliver fully with
	// retries on; only those go into the concurrent phase, so fraction 1
	// is the exact invariant, not an approximation.
	probe := New(Config{PackSeed: 1})
	pid, err := probe.RegisterGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		seed uint64
		plan cast.FaultPlan
	}
	var jobs []job
	for seed := uint64(1); len(jobs) < 16 && seed < 256; seed++ {
		plan := cast.FaultPlan{Round: 1, RandomEdges: 1, Seed: seed, MaxRetries: 2}
		fres, err := probe.BroadcastFaulted(context.Background(), pid, Spanning, sources, seed, plan)
		if err != nil {
			t.Fatal(err)
		}
		if fres.DeliveredFraction == 1 {
			jobs = append(jobs, job{seed, plan})
		}
	}
	if len(jobs) < 8 {
		t.Fatalf("only %d fully-delivering fault runs found", len(jobs))
	}

	s := New(Config{PackSeed: 1, MaxConcurrent: 8})
	id, err := s.RegisterGraph(g)
	if err != nil {
		t.Fatal(err)
	}

	var torn atomic.Value // first inconsistent snapshot, as a string
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if st.DeliveredFraction != 1 {
					torn.CompareAndSwap(nil, fmt.Sprintf("global fraction %v", st.DeliveredFraction))
				}
				for _, pg := range st.PerGraph {
					if pg.DeliveredFraction != 1 {
						torn.CompareAndSwap(nil, fmt.Sprintf("per-graph fraction %v", pg.DeliveredFraction))
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				if _, err := s.BroadcastFaulted(context.Background(), id, Spanning, sources, j.seed, j.plan); err != nil {
					t.Error(err)
				}
			}(j)
		}
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if msg := torn.Load(); msg != nil {
		t.Fatalf("torn chaos snapshot observed: %v", msg)
	}
	if st := s.Stats(); st.DeliveredFraction != 1 || st.FaultedRequests != uint64(4*len(jobs)) {
		t.Fatalf("final stats wrong: %+v", st)
	}
}
