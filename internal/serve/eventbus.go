// The in-process event bus behind the streaming broadcast path: batch
// execution publishes one event per completed demand plus a terminal
// summary, and any number of subscribers (the NDJSON/SSE handler, test
// observers) consume them through bounded channels. Publishing never
// blocks on a slow subscriber: when a subscriber's buffer is full the
// oldest buffered event is dropped to make room and the drop is counted
// (per subscription and in the service-wide events_dropped stat), so a
// stalled client can lose intermediate progress events but never stalls
// the demands themselves — and the terminal summary, being published
// last, always survives drop-oldest.
package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/cast"
)

// Batch event types.
const (
	// EventDemand is one completed (or rejected) batch entry.
	EventDemand = "demand"
	// EventSummary terminates a batch's event stream.
	EventSummary = "summary"
)

// BatchEvent is one event on the service bus. Demand events carry the
// entry's index and its result or error; the summary event carries the
// batch totals and is always the last event published for its batch id.
type BatchEvent struct {
	// Seq is the bus-assigned publication sequence number, strictly
	// increasing across all events the bus ever carries (so a subscriber
	// can detect drop-oldest gaps).
	Seq     uint64 `json:"seq"`
	BatchID uint64 `json:"batch_id"`
	Type    string `json:"type"`
	// Index is the demand's position in the batch (demand events only).
	Index    int           `json:"index"`
	Messages int           `json:"messages,omitempty"`
	Result   *cast.Result  `json:"result,omitempty"`
	Error    string        `json:"error,omitempty"`
	Summary  *BatchSummary `json:"summary,omitempty"`
}

// subscription is one bounded listener on the bus.
type subscription struct {
	// batchID filters delivery: 0 receives every event, nonzero only the
	// events of that batch.
	batchID uint64
	ch      chan BatchEvent
	dropped atomic.Uint64
}

// Events is the subscriber's receive side.
func (s *subscription) Events() <-chan BatchEvent { return s.ch }

// Dropped reports how many events this subscription lost to the
// drop-oldest policy.
func (s *subscription) Dropped() uint64 { return s.dropped.Load() }

// eventBus fans BatchEvents out to its subscriptions. All methods are
// safe for concurrent use; publication order (and Seq assignment) is
// serialized by the bus mutex, so every subscriber observes events of
// one batch in increasing-Seq order.
type eventBus struct {
	mu   sync.Mutex // guards seq, subs
	seq  uint64
	subs map[*subscription]struct{}
	// dropped points at the owning service's events_dropped counter so
	// the slow-subscriber policy is visible in /v1/stats.
	dropped *atomic.Uint64
}

func newEventBus(dropped *atomic.Uint64) *eventBus {
	return &eventBus{subs: make(map[*subscription]struct{}), dropped: dropped}
}

// subscribe registers a listener with the given buffer capacity
// (minimum 1, so the terminal summary always fits).
func (b *eventBus) subscribe(batchID uint64, buffer int) *subscription {
	if buffer < 1 {
		buffer = 1
	}
	sub := &subscription{batchID: batchID, ch: make(chan BatchEvent, buffer)}
	b.mu.Lock()
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
	return sub
}

// unsubscribe detaches the listener. Its channel is left open (a
// concurrent reader may still be draining); the bus simply stops
// delivering to it.
func (b *eventBus) unsubscribe(sub *subscription) {
	b.mu.Lock()
	delete(b.subs, sub)
	b.mu.Unlock()
}

// publish assigns the event its sequence number and delivers it to every
// matching subscription, dropping each full subscription's oldest
// buffered event to make room (counted per subscription and service-wide).
func (b *eventBus) publish(ev BatchEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	ev.Seq = b.seq
	for sub := range b.subs {
		if sub.batchID != 0 && sub.batchID != ev.BatchID {
			continue
		}
		for {
			select {
			case sub.ch <- ev:
			default:
				// Buffer full: evict the oldest event and retry. The
				// non-blocking receive can race a consumer draining the
				// channel; either way room appears and the loop terminates.
				select {
				case <-sub.ch:
					sub.dropped.Add(1)
					if b.dropped != nil {
						b.dropped.Add(1)
					}
				default:
				}
				continue
			}
			break
		}
	}
}
