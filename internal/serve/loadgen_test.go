package serve

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestLoadSeedDomainsDisjoint is the seed-collision regression: the old
// additive derivation (cfg.Seed + w*c for streams, cfg.Seed + w*M + d
// for runs) made families overlap for small indices. The SplitSeed
// double-split must keep every (domain, index) pair distinct.
func TestLoadSeedDomainsDisjoint(t *testing.T) {
	const base, perDomain = 42, 512
	domains := []uint64{loadDomainDemands, loadDomainRuns, loadDomainArrivals, loadDomainFaultPick, loadDomainFaultPlan}
	seen := make(map[uint64]string, len(domains)*perDomain)
	for _, dom := range domains {
		for i := uint64(0); i < perDomain; i++ {
			s := loadSeed(base, dom, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: (domain %d, index %d) == %s", dom, i, prev)
			}
			seen[s] = ""
		}
	}
}

// TestGenerateLoadOpenLoop runs the open-loop shape end to end: every
// arrival completes (no admission bound), the latency distribution is
// populated and ordered, and the service accounting matches the report.
func TestGenerateLoadOpenLoop(t *testing.T) {
	g := graph.Complete(16)
	s := New(Config{PackSeed: 1, MaxConcurrent: 4})
	id := mustRegister(t, s, g)
	rep, err := GenerateLoad(s, LoadConfig{
		GraphID: id, Kind: Spanning, MsgsPerDemand: g.N(),
		Seed: 7, ArrivalRate: 2000, Arrivals: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.Demands != 32 || rep.Completed != 32 || rep.Rejected != 0 {
		t.Fatalf("open-loop accounting wrong: %+v", rep)
	}
	if rep.LatencyP50 <= 0 || rep.LatencyP50 > rep.LatencyP95 || rep.LatencyP95 > rep.LatencyP99 || rep.LatencyP99 > rep.LatencyMax {
		t.Fatalf("latency percentiles degenerate or unordered: %+v", rep)
	}
	if rep.MaxPendingSeen < 1 {
		t.Fatalf("no demand ever pending: %+v", rep)
	}
	if st := s.Stats(); st.Requests != 32 || st.Rounds != rep.Rounds || st.PackComputes != 1 {
		t.Fatalf("service stats disagree with report: stats=%+v report=%+v", st, rep)
	}
}

// TestGenerateLoadOpenLoopReplayable pins the acceptance criterion that
// two runs of one config are byte-identical apart from wall-clock
// fields: with Elapsed, the rates, the latency percentiles, and
// MaxPendingSeen zeroed, the reports must compare equal — demands, run
// seeds, arrival schedule, and the chaos subset are all derived, not
// drawn ad hoc.
func TestGenerateLoadOpenLoopReplayable(t *testing.T) {
	g := testGraph()
	cfg := LoadConfig{
		Kind: Spanning, MsgsPerDemand: 8,
		Seed: 11, ArrivalRate: 4000, Arrivals: 24,
		FaultRate: 0.5, FaultSeed: 5, FaultEdges: 1, FaultRetries: 2,
	}
	run := func() LoadReport {
		s := New(Config{PackSeed: 1, MaxConcurrent: 4})
		cfg := cfg
		cfg.GraphID = mustRegister(t, s, g)
		rep, err := GenerateLoad(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep, rep2 := run(), run()
	if rep.FaultedDemands == 0 || rep.FaultedDemands == rep.Completed {
		t.Fatalf("FaultRate=0.5 faulted %d of %d demands — pick stream suspect", rep.FaultedDemands, rep.Completed)
	}
	for _, r := range []*LoadReport{&rep, &rep2} {
		r.Elapsed, r.DemandsPerSec = 0, 0
		r.LatencyP50, r.LatencyP95, r.LatencyP99, r.LatencyMax = 0, 0, 0, 0
		r.MaxPendingSeen = 0
		r.Phases = nil // per-phase latencies are wall-clock too
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatalf("open-loop run not replayable:\n%+v\n%+v", rep, rep2)
	}
}

// TestGenerateLoadAdmission pins admission control: with one execution
// slot and MaxPending 1, a flood of near-simultaneous arrivals must see
// rejections, every arrival is accounted exactly once, and the pending
// gauge never exceeds the bound.
func TestGenerateLoadAdmission(t *testing.T) {
	g := graph.Complete(16)
	s := New(Config{PackSeed: 1, MaxConcurrent: 1})
	id := mustRegister(t, s, g)
	rep, err := GenerateLoad(s, LoadConfig{
		GraphID: id, Kind: Spanning, MsgsPerDemand: 4 * g.N(),
		Seed: 3, ArrivalRate: 1e7, Arrivals: 64, MaxPending: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Rejected != rep.Demands {
		t.Fatalf("arrivals unaccounted: completed %d + rejected %d != %d", rep.Completed, rep.Rejected, rep.Demands)
	}
	if rep.Rejected == 0 {
		t.Fatalf("instantaneous arrivals against MaxPending=1 never rejected: %+v", rep)
	}
	if rep.MaxPendingSeen > 1 {
		t.Fatalf("pending exceeded the admission bound: %+v", rep)
	}
	if st := s.Stats(); st.Requests != uint64(rep.Completed) {
		t.Fatalf("service served %d demands, report completed %d", st.Requests, rep.Completed)
	}
}

// TestGenerateLoadFirstError pins the stop-on-first-error contract in
// both shapes: when every demand fails validation, the run returns the
// underlying error (not a context.Canceled echo), reports zero
// completions, and leaves no served demands in the stats.
func TestGenerateLoadFirstError(t *testing.T) {
	g := graph.Complete(12)
	for _, cfg := range []LoadConfig{
		{Kind: Spanning, Workers: 4, Demands: 8, MsgsPerDemand: 8, Seed: 3},
		{Kind: Spanning, MsgsPerDemand: 8, Seed: 3, ArrivalRate: 5000, Arrivals: 16},
	} {
		s := New(Config{PackSeed: 1, MaxConcurrent: 4, MaxMsgsPerDemand: 4})
		cfg.GraphID = mustRegister(t, s, g)
		rep, err := GenerateLoad(s, cfg)
		if err == nil {
			t.Fatalf("%s: oversized demands not reported", rep.Mode)
		}
		if err == context.Canceled || !strings.Contains(err.Error(), "exceeds limit") {
			t.Fatalf("first error masked: %v", err)
		}
		if rep.Completed != 0 || rep.Messages != 0 {
			t.Fatalf("failed run reported progress: %+v", rep)
		}
		if st := s.Stats(); st.Requests != 0 {
			t.Fatalf("failed demands counted as served: %+v", st)
		}
	}
}
