// The load generator, in two traffic shapes:
//
//   - Closed loop (the default): K workers each issue M demands
//     back-to-back — a new demand is submitted the moment the previous
//     one returns — the standard model for saturating a
//     bounded-concurrency server and measuring its throughput ceiling.
//   - Open loop (ArrivalRate > 0): demands arrive on a deterministic
//     schedule with exponential interarrival gaps drawn from the seeded
//     PCG, independent of how fast the service drains them. This is the
//     shape real traffic has, and the one that exposes latency: below
//     saturation the percentiles track service time, above it queueing
//     delay grows without bound (or, with MaxPending set, admission
//     control starts rejecting arrivals).
//
// Everything randomized — demand streams, per-demand run seeds, the
// arrival schedule, the faulted subset, and per-plan kill seeds — is
// derived from (Seed, FaultSeed) through disjoint ds.SplitSeed domains,
// so no two families can collide and a load run is replayable demand
// for demand. Wall-clock fields (Elapsed, rates, latency percentiles,
// MaxPendingSeen) are the only parts of a report that vary across runs
// of the same config.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cast"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Seed-family domains. Each family is derived by splitting the config
// seed by its domain first and by the member index second, so the
// demand-stream, run-seed, arrival, and fault families are pairwise
// disjoint for every (worker, demand) index — unlike additive schemes,
// where cfg.Seed+w*c and cfg.Seed+w*M+d overlap for some indices.
const (
	loadDomainDemands   = 1 // per-worker demand streams
	loadDomainRuns      = 2 // per-demand broadcast run seeds
	loadDomainArrivals  = 3 // open-loop interarrival gaps
	loadDomainFaultPick = 4 // which demands run faulted (from FaultSeed)
	loadDomainFaultPlan = 5 // per-plan kill-set seeds (from FaultSeed)
)

// loadSeed derives member index of the given seed family.
func loadSeed(base, domain, index uint64) uint64 {
	d, _ := ds.SplitSeed(base, domain)
	s, _ := ds.SplitSeed(d, index)
	return s
}

// loadRand opens the PCG stream for member index of the seed family.
func loadRand(base, domain, index uint64) *rand.Rand {
	d, _ := ds.SplitSeed(base, domain)
	return ds.SplitRand(d, index)
}

// LoadConfig describes one load run.
type LoadConfig struct {
	GraphID string
	Kind    Kind
	// Workers is K, the number of concurrent closed loops (default 1).
	// Ignored in open-loop mode, where concurrency follows arrivals.
	Workers int
	// Demands is M, demands issued per worker (default 1).
	Demands int
	// MsgsPerDemand sizes each demand (default n, the graph order).
	MsgsPerDemand int
	// Seed derives the demand streams, per-demand run seeds, and the
	// open-loop arrival schedule (disjoint SplitSeed domains).
	Seed uint64

	// ArrivalRate > 0 switches to open-loop mode: demands arrive at this
	// average rate (per second) with exponential interarrival gaps drawn
	// deterministically from Seed, regardless of completion speed.
	ArrivalRate float64
	// Arrivals is the open-loop total demand count (default Workers ×
	// Demands, so a config converts between modes without resizing).
	Arrivals int
	// MaxPending bounds in-flight open-loop demands: an arrival that
	// finds MaxPending demands still running is rejected (admission
	// control) instead of queued. 0 means unbounded — overload then
	// shows up as queueing delay in the latency percentiles.
	MaxPending int

	// Chaos mode: FaultRate in (0, 1] makes a seeded subset of demands
	// run under a fault plan (each demand is faulted independently with
	// this probability, drawn from FaultSeed — the same config replays
	// the same chaos run demand for demand). Zero disables chaos.
	FaultRate float64
	// FaultSeed derives both the faulted-demand subset and each plan's
	// kill-set seed (disjoint SplitSeed domains).
	FaultSeed uint64
	// FaultEdges and FaultVertices size each plan's random kill set.
	// When chaos is on and both are zero, one random edge is killed.
	FaultEdges    int
	FaultVertices int
	// FaultRound is each plan's failure round (default 1, after the
	// injection round).
	FaultRound int
	// FaultRetries is each plan's reroute budget (cast.FaultPlan
	// semantics: 0 means the default, negative disables retries).
	FaultRetries int
}

// LoadReport aggregates a load run. The non-wall-clock fields (counts,
// rounds, chaos accounting) are a pure function of the config; Elapsed,
// the rates, the latency percentiles, and MaxPendingSeen measure this
// particular execution.
type LoadReport struct {
	Mode    string `json:"mode"` // "closed" or "open"
	Workers int    `json:"workers"`
	// Demands is the run's target: Workers × Demands closed-loop,
	// Arrivals open-loop. Completed counts demands that actually ran to
	// completion — fewer than Demands when the run stopped on an error
	// or rejected arrivals at admission.
	Demands   int `json:"demands"`
	Completed int `json:"completed"`
	// Rejected counts open-loop arrivals dropped by admission control
	// (MaxPending).
	Rejected int `json:"rejected,omitempty"`
	// Messages counts messages disseminated by completed demands.
	Messages      int           `json:"messages"`
	Rounds        uint64        `json:"rounds"` // scheduler rounds, summed
	Elapsed       time.Duration `json:"elapsed"`
	DemandsPerSec float64       `json:"demands_per_sec"`
	// MsgsPerRound is the aggregate dissemination throughput: total
	// messages over total scheduler rounds.
	MsgsPerRound float64 `json:"msgs_per_round"`

	// Open-loop latency distribution over completed demands, measured
	// from the scheduled arrival to completion — so dispatcher lag and
	// semaphore queueing count alongside service time, and a saturated
	// run cannot hide its queueing delay behind a slow dispatcher
	// (coordinated omission).
	ArrivalRate float64       `json:"arrival_rate,omitempty"`
	LatencyP50  time.Duration `json:"latency_p50,omitempty"`
	LatencyP95  time.Duration `json:"latency_p95,omitempty"`
	LatencyP99  time.Duration `json:"latency_p99,omitempty"`
	LatencyMax  time.Duration `json:"latency_max,omitempty"`
	// MaxPendingSeen is the peak number of concurrently in-flight
	// demands (open loop) — the overload signal when MaxPending is 0.
	MaxPendingSeen int `json:"max_pending_seen,omitempty"`

	// Chaos accounting, aggregated over the faulted demands only.
	FaultedDemands int `json:"faulted_demands"`
	MessagesLost   int `json:"messages_lost"`
	Retries        int `json:"retries"`
	// DeliveredFraction is pairs delivered over pairs expected across
	// all faulted demands (1 when none were faulted).
	DeliveredFraction float64 `json:"delivered_fraction"`

	// Phases is the per-phase latency breakdown across completed demands
	// (registry, clone, run, ...), folded from each demand's trace spans
	// into deterministic obs histograms. Wall-clock like the percentiles
	// above; phases with no observations are omitted.
	Phases []PhaseSummary `json:"phases,omitempty"`
}

// PhaseSummary is one serving phase's latency summary (nanoseconds) in
// a load report.
type PhaseSummary struct {
	Phase string `json:"phase"`
	obs.Summary
}

// loadPhases accumulates per-demand trace spans into one histogram per
// serving phase for the duration of a load run.
type loadPhases [numPhases]obs.Histogram

// observe runs one demand under a fresh trace and folds the recorded
// spans into the phase histograms.
func (p *loadPhases) observe(ctx context.Context, run func(context.Context) error) error {
	tr := obs.NewTrace("")
	err := run(obs.WithTrace(ctx, tr))
	for _, sp := range tr.Data().Spans {
		for ph, name := range phaseNames {
			if sp.Name == name {
				p[ph].Observe(sp.DurationNs)
				break
			}
		}
	}
	return err
}

// summaries condenses the non-empty phase histograms, in phase order.
func (p *loadPhases) summaries() []PhaseSummary {
	var out []PhaseSummary
	for ph := range p {
		if p[ph].Count() > 0 {
			out = append(out, PhaseSummary{Phase: phaseNames[ph], Summary: p[ph].Summarize()})
		}
	}
	return out
}

// loadCounts is the per-worker (or per-demand) accounting folded into
// the report under one mutex.
type loadCounts struct {
	completed int
	rounds    uint64
	faulted   int
	lost      int
	retries   int
	pairsD    int
	pairsE    int
}

func (c *loadCounts) fold(o loadCounts) {
	c.completed += o.completed
	c.rounds += o.rounds
	c.faulted += o.faulted
	c.lost += o.lost
	c.retries += o.retries
	c.pairsD += o.pairsD
	c.pairsE += o.pairsE
}

// GenerateLoad runs the configured load shape against the service and
// reports aggregate throughput (and, open-loop, the latency
// distribution). The decomposition is forced into the cache before the
// clock starts, so the report measures steady-state serving, not the
// first packing. On a demand error the run stops (in-flight demands are
// cancelled, no new ones start) and the partial report is returned
// alongside the error, so the caller still sees how far the run got.
func GenerateLoad(s *Service, cfg LoadConfig) (LoadReport, error) {
	g, ok := s.Graph(cfg.GraphID)
	if !ok {
		return LoadReport{}, fmt.Errorf("serve: unknown graph %q", cfg.GraphID)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Demands <= 0 {
		cfg.Demands = 1
	}
	if cfg.MsgsPerDemand <= 0 {
		cfg.MsgsPerDemand = g.N()
	}
	if _, err := s.Decompose(cfg.GraphID, cfg.Kind); err != nil {
		return LoadReport{}, err
	}
	if cfg.ArrivalRate > 0 {
		return generateOpenLoad(s, cfg, g)
	}
	return generateClosedLoad(s, cfg, g)
}

// faultPlanFor builds demand flat-index i's fault plan when the pick
// stream says the demand is faulted, nil otherwise.
func faultPlanFor(cfg *LoadConfig, pick *rand.Rand, i uint64) *cast.FaultPlan {
	if pick == nil || pick.Float64() >= cfg.FaultRate {
		return nil
	}
	edges, vertices := cfg.FaultEdges, cfg.FaultVertices
	if edges == 0 && vertices == 0 {
		edges = 1
	}
	round := cfg.FaultRound
	if round <= 0 {
		round = 1
	}
	return &cast.FaultPlan{
		Round:          round,
		RandomEdges:    edges,
		RandomVertices: vertices,
		Seed:           loadSeed(cfg.FaultSeed, loadDomainFaultPlan, i),
		MaxRetries:     cfg.FaultRetries,
	}
}

// runLoadDemand issues one demand (faulted or healthy) under a fresh
// trace, folds its outcome into c and its phase spans into ph.
func runLoadDemand(ctx context.Context, s *Service, cfg *LoadConfig, dem cast.Demand, seed uint64, plan *cast.FaultPlan, c *loadCounts, ph *loadPhases) error {
	return ph.observe(ctx, func(ctx context.Context) error {
		if plan != nil {
			fres, err := s.BroadcastFaulted(ctx, cfg.GraphID, cfg.Kind, dem.Sources, seed, *plan)
			if err != nil {
				return err
			}
			c.faulted++
			c.lost += fres.MessagesLost
			c.retries += fres.Retries
			c.pairsD += fres.PairsDelivered
			c.pairsE += fres.PairsExpected
			c.completed++
			c.rounds += uint64(fres.Rounds)
			return nil
		}
		res, err := s.BroadcastContext(ctx, cfg.GraphID, cfg.Kind, dem.Sources, seed)
		if err != nil {
			return err
		}
		c.completed++
		c.rounds += uint64(res.Rounds)
		return nil
	})
}

// generateClosedLoad is the K-workers × M-demands closed loop. The
// first demand error cancels the shared context: in-flight demands
// abort, no worker starts another, and every worker's counters are
// folded into the report on the way out (error or not).
func generateClosedLoad(s *Service, cfg LoadConfig, g *graph.Graph) (LoadReport, error) {
	// Worker demand streams and fault plans, derived before the clock
	// starts so the run itself is pure serving.
	demands := make([][]cast.Demand, cfg.Workers)
	var plans [][]*cast.FaultPlan
	if cfg.FaultRate > 0 {
		plans = make([][]*cast.FaultPlan, cfg.Workers)
	}
	for w := range demands {
		rng := loadRand(cfg.Seed, loadDomainDemands, uint64(w))
		demands[w] = make([]cast.Demand, cfg.Demands)
		var pick *rand.Rand
		if cfg.FaultRate > 0 {
			plans[w] = make([]*cast.FaultPlan, cfg.Demands)
			pick = loadRand(cfg.FaultSeed, loadDomainFaultPick, uint64(w))
		}
		for d := range demands[w] {
			demands[w][d] = cast.UniformDemand(g.N(), cfg.MsgsPerDemand, rng)
			if pick != nil {
				plans[w][d] = faultPlanFor(&cfg, pick, uint64(w)*uint64(cfg.Demands)+uint64(d))
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		total  loadCounts
		phases loadPhases
		first  error
	)
	fail := func(err error) {
		mu.Lock()
		// A context.Canceled after the first failure is just the stop
		// signal echoing back through another worker, not a new error.
		if first == nil && !errors.Is(err, context.Canceled) {
			first = err
		}
		mu.Unlock()
		cancel()
	}
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local loadCounts
			defer func() {
				mu.Lock()
				total.fold(local)
				mu.Unlock()
			}()
			for d, dem := range demands[w] {
				if ctx.Err() != nil {
					return
				}
				var plan *cast.FaultPlan
				if plans != nil {
					plan = plans[w][d]
				}
				seed := loadSeed(cfg.Seed, loadDomainRuns, uint64(w)*uint64(cfg.Demands)+uint64(d))
				if err := runLoadDemand(ctx, s, &cfg, dem, seed, plan, &local, &phases); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildLoadReport("closed", &cfg, cfg.Workers*cfg.Demands, total, elapsed)
	rep.Workers = cfg.Workers
	rep.Phases = phases.summaries()
	if first != nil {
		return rep, first
	}
	return rep, nil
}

// generateOpenLoad is the open-loop arrival process: a dispatcher
// releases demands on the precomputed schedule, each runs in its own
// goroutine (the service's MaxConcurrent bound turns excess arrivals
// into queueing delay), and per-demand latency is captured from
// scheduled arrival to completion.
func generateOpenLoad(s *Service, cfg LoadConfig, g *graph.Graph) (LoadReport, error) {
	arrivals := cfg.Arrivals
	if arrivals <= 0 {
		arrivals = cfg.Workers * cfg.Demands
	}

	// Demand stream, run seeds, fault plans, and the arrival schedule,
	// all precomputed: the schedule's exponential gaps come from the
	// seeded PCG, so two runs of one config arrive identically.
	demands := make([]cast.Demand, arrivals)
	plans := make([]*cast.FaultPlan, arrivals)
	rng := loadRand(cfg.Seed, loadDomainDemands, 0)
	var pick *rand.Rand
	if cfg.FaultRate > 0 {
		pick = loadRand(cfg.FaultSeed, loadDomainFaultPick, 0)
	}
	for i := range demands {
		demands[i] = cast.UniformDemand(g.N(), cfg.MsgsPerDemand, rng)
		plans[i] = faultPlanFor(&cfg, pick, uint64(i))
	}
	offsets := make([]time.Duration, arrivals)
	arng := loadRand(cfg.Seed, loadDomainArrivals, 0)
	var cum float64
	for i := range offsets {
		cum += arng.ExpFloat64() / cfg.ArrivalRate
		offsets[i] = time.Duration(cum * float64(time.Second))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    loadCounts
		phases   loadPhases
		lats     []time.Duration
		first    error
		pending  atomic.Int64
		maxPend  atomic.Int64
		rejected int
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil && !errors.Is(err, context.Canceled) {
			first = err
		}
		mu.Unlock()
		cancel()
	}
	start := time.Now()
	for i := 0; i < arrivals; i++ {
		if wait := offsets[i] - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		if cfg.MaxPending > 0 && int(pending.Load()) >= cfg.MaxPending {
			rejected++
			continue
		}
		maxInt64(&maxPend, pending.Add(1))
		arrived := start.Add(offsets[i])
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer pending.Add(-1)
			var local loadCounts
			err := runLoadDemand(ctx, s, &cfg, demands[i], loadSeed(cfg.Seed, loadDomainRuns, uint64(i)), plans[i], &local, &phases)
			lat := time.Since(arrived)
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			total.fold(local)
			lats = append(lats, lat)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildLoadReport("open", &cfg, arrivals, total, elapsed)
	rep.Phases = phases.summaries()
	rep.Rejected = rejected
	rep.ArrivalRate = cfg.ArrivalRate
	rep.MaxPendingSeen = int(maxPend.Load())
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.LatencyP50 = percentile(lats, 0.50)
	rep.LatencyP95 = percentile(lats, 0.95)
	rep.LatencyP99 = percentile(lats, 0.99)
	if n := len(lats); n > 0 {
		rep.LatencyMax = lats[n-1]
	}
	if first != nil {
		return rep, first
	}
	return rep, nil
}

// buildLoadReport assembles the fields shared by both loop shapes.
func buildLoadReport(mode string, cfg *LoadConfig, target int, c loadCounts, elapsed time.Duration) LoadReport {
	rep := LoadReport{
		Mode:              mode,
		Demands:           target,
		Completed:         c.completed,
		Messages:          c.completed * cfg.MsgsPerDemand,
		Rounds:            c.rounds,
		Elapsed:           elapsed,
		FaultedDemands:    c.faulted,
		MessagesLost:      c.lost,
		Retries:           c.retries,
		DeliveredFraction: deliveredFraction(uint64(c.pairsD), uint64(c.pairsE)),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.DemandsPerSec = float64(c.completed) / secs
	}
	if c.rounds > 0 {
		rep.MsgsPerRound = float64(rep.Messages) / float64(c.rounds)
	}
	return rep
}

// percentile returns the nearest-rank q-quantile of an ascending slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
