// The closed-loop load generator: K workers each issue M demands
// back-to-back against a Service (a new demand is submitted the moment
// the previous one returns), the standard closed-loop model for
// saturating a bounded-concurrency server. Demands are derived
// deterministically from (Seed, worker, demand index), so a load run is
// replayable demand for demand.
package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cast"
	"repro/internal/ds"
)

// LoadConfig describes one closed-loop load run.
type LoadConfig struct {
	GraphID string
	Kind    Kind
	// Workers is K, the number of concurrent closed loops (default 1).
	Workers int
	// Demands is M, demands issued per worker (default 1).
	Demands int
	// MsgsPerDemand sizes each demand (default n, the graph order).
	MsgsPerDemand int
	// Seed derives every worker's demand stream and run seeds.
	Seed uint64
}

// LoadReport aggregates a load run.
type LoadReport struct {
	Workers       int           `json:"workers"`
	Demands       int           `json:"demands"` // total = Workers × Demands
	Messages      int           `json:"messages"`
	Rounds        uint64        `json:"rounds"` // scheduler rounds, summed
	Elapsed       time.Duration `json:"elapsed"`
	DemandsPerSec float64       `json:"demands_per_sec"`
	// MsgsPerRound is the aggregate dissemination throughput: total
	// messages over total scheduler rounds.
	MsgsPerRound float64 `json:"msgs_per_round"`
}

// GenerateLoad runs the closed loop against the service and reports
// aggregate throughput. The decomposition is forced into the cache
// before the clock starts, so the report measures steady-state serving,
// not the first packing.
func GenerateLoad(s *Service, cfg LoadConfig) (LoadReport, error) {
	g, ok := s.Graph(cfg.GraphID)
	if !ok {
		return LoadReport{}, fmt.Errorf("serve: unknown graph %q", cfg.GraphID)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Demands <= 0 {
		cfg.Demands = 1
	}
	if cfg.MsgsPerDemand <= 0 {
		cfg.MsgsPerDemand = g.N()
	}
	if _, err := s.Decompose(cfg.GraphID, cfg.Kind); err != nil {
		return LoadReport{}, err
	}

	// Worker demand streams, derived before the clock starts.
	demands := make([][]cast.Demand, cfg.Workers)
	for w := range demands {
		rng := ds.NewRand(cfg.Seed + uint64(w)*0x9e3779b9)
		demands[w] = make([]cast.Demand, cfg.Demands)
		for d := range demands[w] {
			demands[w][d] = cast.UniformDemand(g.N(), cfg.MsgsPerDemand, rng)
		}
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		rounds uint64
		first  error
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local uint64
			for d, dem := range demands[w] {
				res, err := s.Broadcast(cfg.GraphID, cfg.Kind, dem.Sources, cfg.Seed+uint64(w*cfg.Demands+d))
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				local += uint64(res.Rounds)
			}
			mu.Lock()
			rounds += local
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if first != nil {
		return LoadReport{}, first
	}

	total := cfg.Workers * cfg.Demands
	rep := LoadReport{
		Workers:  cfg.Workers,
		Demands:  total,
		Messages: total * cfg.MsgsPerDemand,
		Rounds:   rounds,
		Elapsed:  elapsed,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.DemandsPerSec = float64(total) / secs
	}
	if rounds > 0 {
		rep.MsgsPerRound = float64(rep.Messages) / float64(rounds)
	}
	return rep, nil
}
