// The closed-loop load generator: K workers each issue M demands
// back-to-back against a Service (a new demand is submitted the moment
// the previous one returns), the standard closed-loop model for
// saturating a bounded-concurrency server. Demands are derived
// deterministically from (Seed, worker, demand index), so a load run is
// replayable demand for demand.
package serve

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/cast"
	"repro/internal/ds"
)

// LoadConfig describes one closed-loop load run.
type LoadConfig struct {
	GraphID string
	Kind    Kind
	// Workers is K, the number of concurrent closed loops (default 1).
	Workers int
	// Demands is M, demands issued per worker (default 1).
	Demands int
	// MsgsPerDemand sizes each demand (default n, the graph order).
	MsgsPerDemand int
	// Seed derives every worker's demand stream and run seeds.
	Seed uint64

	// Chaos mode: FaultRate in (0, 1] makes a seeded subset of demands
	// run under a fault plan (each demand is faulted independently with
	// this probability, drawn from FaultSeed — the same config replays
	// the same chaos run demand for demand). Zero disables chaos.
	FaultRate float64
	// FaultSeed derives both the faulted-demand subset and each plan's
	// kill-set seed.
	FaultSeed uint64
	// FaultEdges and FaultVertices size each plan's random kill set.
	// When chaos is on and both are zero, one random edge is killed.
	FaultEdges    int
	FaultVertices int
	// FaultRound is each plan's failure round (default 1, after the
	// injection round).
	FaultRound int
	// FaultRetries is each plan's reroute budget (cast.FaultPlan
	// semantics: 0 means the default, negative disables retries).
	FaultRetries int
}

// LoadReport aggregates a load run.
type LoadReport struct {
	Workers       int           `json:"workers"`
	Demands       int           `json:"demands"` // total = Workers × Demands
	Messages      int           `json:"messages"`
	Rounds        uint64        `json:"rounds"` // scheduler rounds, summed
	Elapsed       time.Duration `json:"elapsed"`
	DemandsPerSec float64       `json:"demands_per_sec"`
	// MsgsPerRound is the aggregate dissemination throughput: total
	// messages over total scheduler rounds.
	MsgsPerRound float64 `json:"msgs_per_round"`

	// Chaos accounting, aggregated over the faulted demands only.
	FaultedDemands int `json:"faulted_demands"`
	MessagesLost   int `json:"messages_lost"`
	Retries        int `json:"retries"`
	// DeliveredFraction is pairs delivered over pairs expected across
	// all faulted demands (1 when none were faulted).
	DeliveredFraction float64 `json:"delivered_fraction"`
}

// GenerateLoad runs the closed loop against the service and reports
// aggregate throughput. The decomposition is forced into the cache
// before the clock starts, so the report measures steady-state serving,
// not the first packing.
func GenerateLoad(s *Service, cfg LoadConfig) (LoadReport, error) {
	g, ok := s.Graph(cfg.GraphID)
	if !ok {
		return LoadReport{}, fmt.Errorf("serve: unknown graph %q", cfg.GraphID)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Demands <= 0 {
		cfg.Demands = 1
	}
	if cfg.MsgsPerDemand <= 0 {
		cfg.MsgsPerDemand = g.N()
	}
	if _, err := s.Decompose(cfg.GraphID, cfg.Kind); err != nil {
		return LoadReport{}, err
	}

	// Worker demand streams and fault plans, derived before the clock
	// starts. The faulted subset and every plan seed come from FaultSeed
	// alone, so a chaos run is as replayable as a healthy one.
	demands := make([][]cast.Demand, cfg.Workers)
	var plans [][]*cast.FaultPlan
	if cfg.FaultRate > 0 {
		plans = make([][]*cast.FaultPlan, cfg.Workers)
	}
	faultEdges, faultVertices := cfg.FaultEdges, cfg.FaultVertices
	if cfg.FaultRate > 0 && faultEdges == 0 && faultVertices == 0 {
		faultEdges = 1
	}
	faultRound := cfg.FaultRound
	if faultRound <= 0 {
		faultRound = 1
	}
	for w := range demands {
		rng := ds.NewRand(cfg.Seed + uint64(w)*0x9e3779b9)
		demands[w] = make([]cast.Demand, cfg.Demands)
		var frng *rand.Rand
		if cfg.FaultRate > 0 {
			plans[w] = make([]*cast.FaultPlan, cfg.Demands)
			frng = ds.SplitRand(cfg.FaultSeed, uint64(w))
		}
		for d := range demands[w] {
			demands[w][d] = cast.UniformDemand(g.N(), cfg.MsgsPerDemand, rng)
			if frng != nil && frng.Float64() < cfg.FaultRate {
				planSeed, _ := ds.SplitSeed(cfg.FaultSeed, uint64(w*cfg.Demands+d))
				plans[w][d] = &cast.FaultPlan{
					Round:          faultRound,
					RandomEdges:    faultEdges,
					RandomVertices: faultVertices,
					Seed:           planSeed,
					MaxRetries:     cfg.FaultRetries,
				}
			}
		}
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		rounds  uint64
		first   error
		faulted int
		lost    int
		retries int
		pairsD  int
		pairsE  int
	)
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local uint64
			var lFaulted, lLost, lRetries, lPairsD, lPairsE int
			for d, dem := range demands[w] {
				seed := cfg.Seed + uint64(w*cfg.Demands+d)
				var (
					res cast.Result
					err error
				)
				if plans != nil && plans[w][d] != nil {
					var fres cast.FaultResult
					fres, err = s.BroadcastFaulted(ctx, cfg.GraphID, cfg.Kind, dem.Sources, seed, *plans[w][d])
					if err == nil {
						res = fres.Result
						lFaulted++
						lLost += fres.MessagesLost
						lRetries += fres.Retries
						lPairsD += fres.PairsDelivered
						lPairsE += fres.PairsExpected
					}
				} else {
					res, err = s.Broadcast(cfg.GraphID, cfg.Kind, dem.Sources, seed)
				}
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				local += uint64(res.Rounds)
			}
			mu.Lock()
			rounds += local
			faulted += lFaulted
			lost += lLost
			retries += lRetries
			pairsD += lPairsD
			pairsE += lPairsE
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if first != nil {
		return LoadReport{}, first
	}

	total := cfg.Workers * cfg.Demands
	rep := LoadReport{
		Workers:           cfg.Workers,
		Demands:           total,
		Messages:          total * cfg.MsgsPerDemand,
		Rounds:            rounds,
		Elapsed:           elapsed,
		FaultedDemands:    faulted,
		MessagesLost:      lost,
		Retries:           retries,
		DeliveredFraction: deliveredFraction(uint64(pairsD), uint64(pairsE)),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.DemandsPerSec = float64(total) / secs
	}
	if rounds > 0 {
		rep.MsgsPerRound = float64(rep.Messages) / float64(rounds)
	}
	return rep, nil
}
