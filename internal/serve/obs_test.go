package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// scrapeMetrics fetches /metrics and parses the single-value samples
// (counters, gauges, histogram _sum/_count) into a map.
func scrapeMetrics(t *testing.T, client *http.Client, base string) (map[string]float64, string) {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	var buf bytes.Buffer
	vals := make(map[string]float64)
	sc := bufio.NewScanner(io.TeeReader(resp.Body, &buf))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable sample line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		vals[name] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return vals, buf.String()
}

// TestMetricsEndpoint drives the serving path over HTTP and asserts
// the exposition carries every ServiceStats counter, at least three
// histograms, and — the pack-accounting invariant — that
// PackRequests == PackComputes + CacheHits + Coalesced + StoreHits
// holds in the scraped text itself.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{PackSeed: 1, StoreDir: t.TempDir()})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	id := mustRegister(t, s, testGraph())

	// One compute, one cache hit, one broadcast per kind-path flavor.
	for i := 0; i < 2; i++ {
		if _, err := s.Decompose(id, Spanning); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Broadcast(id, Spanning, []int{0, 1, 2}, 7); err != nil {
		t.Fatal(err)
	}

	vals, text := scrapeMetrics(t, srv.Client(), srv.URL)

	// Every ServiceStats counter/gauge family must be exposed.
	for _, name := range []string{
		"repro_serve_requests_total", "repro_serve_messages_total", "repro_serve_rounds_total",
		"repro_serve_pack_requests_total", "repro_serve_pack_computes_total",
		"repro_serve_cache_hits_total", "repro_serve_coalesced_total",
		"repro_serve_store_hits_total", "repro_serve_store_misses_total", "repro_serve_store_errors_total",
		"repro_serve_evictions_total", "repro_serve_faulted_requests_total",
		"repro_serve_messages_lost_total", "repro_serve_retries_total",
		"repro_serve_events_dropped_total", "repro_serve_traces_total",
		"repro_serve_graphs", "repro_serve_resident",
		"repro_serve_max_vertex_congestion", "repro_serve_max_edge_congestion",
		"repro_serve_delivered_fraction",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if hists := strings.Count(text, "# TYPE repro_serve_") - strings.Count(text, " counter\n") - strings.Count(text, " gauge\n"); hists < 3 {
		t.Fatalf("want >= 3 histograms in exposition, got %d:\n%s", hists, text)
	}

	// The invariant, asserted from the scraped text.
	got := vals["repro_serve_pack_requests_total"]
	want := vals["repro_serve_pack_computes_total"] + vals["repro_serve_cache_hits_total"] +
		vals["repro_serve_coalesced_total"] + vals["repro_serve_store_hits_total"]
	if got != want || got == 0 {
		t.Fatalf("pack accounting broken in /metrics: requests=%v computes+hits+coalesced+store=%v", got, want)
	}

	// Sanity: the served demand showed up in counters and histograms.
	if vals["repro_serve_requests_total"] != 1 || vals["repro_serve_messages_total"] != 3 {
		t.Fatalf("request counters wrong: %+v", vals)
	}
	if vals["repro_serve_demand_messages_count"] != 1 || vals["repro_serve_demand_messages_sum"] != 3 {
		t.Fatalf("demand-size histogram wrong: count=%v sum=%v",
			vals["repro_serve_demand_messages_count"], vals["repro_serve_demand_messages_sum"])
	}
	if vals["repro_serve_phase_run_ns_count"] < 1 {
		t.Fatalf("run-phase histogram empty")
	}
}

// TestMetricsScrapeWhileServing scrapes /metrics concurrently with live
// broadcasts — the guarantee that a scrape can never tear, block, or
// race the serving path (run under -race by make race).
func TestMetricsScrapeWhileServing(t *testing.T) {
	s := New(Config{PackSeed: 1, MaxConcurrent: 4})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	id := mustRegister(t, s, testGraph())

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := s.Broadcast(id, Spanning, []int{w, i % 8}, uint64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := srv.Client().Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	vals, _ := scrapeMetrics(t, srv.Client(), srv.URL)
	if vals["repro_serve_requests_total"] != 60 {
		t.Fatalf("requests_total = %v after 60 broadcasts", vals["repro_serve_requests_total"])
	}
}

// TestTracesEndpoint pins the trace round trip: a broadcast served over
// HTTP gets an X-Request-Id, its trace lands in the ring with the
// serving phases as spans, and GET /v1/traces returns it newest-first.
// Lookup-only requests must not pollute the ring.
func TestTracesEndpoint(t *testing.T) {
	s := New(Config{PackSeed: 1})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	id := mustRegister(t, s, testGraph())

	body, _ := json.Marshal(BroadcastRequest{Kind: Spanning, Sources: []int{0, 1}, Seed: 3})
	resp, err := srv.Client().Post(srv.URL+"/v1/graphs/"+id+"/broadcast", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast: %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id on broadcast response")
	}

	// Stats and traces lookups are span-free and must stay out of the ring.
	for _, path := range []string{"/v1/stats", "/v1/traces", "/metrics"} {
		r, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	var tr TracesResponse
	r, err := srv.Client().Get(srv.URL + "/v1/traces?n=5")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if tr.Total != 1 || len(tr.Traces) != 1 {
		t.Fatalf("ring holds %d traces (total %d), want exactly the broadcast", len(tr.Traces), tr.Total)
	}
	got := tr.Traces[0]
	if got.ID != reqID {
		t.Fatalf("trace id %q != X-Request-Id %q", got.ID, reqID)
	}
	names := make(map[string]bool)
	for _, sp := range got.Spans {
		names[sp.Name] = true
		if sp.DurationNs < 0 || sp.StartNs+sp.DurationNs > got.DurationNs {
			t.Fatalf("span %+v inconsistent with trace duration %d", sp, got.DurationNs)
		}
	}
	for _, want := range []string{"registry", "pack", "clone", "run"} {
		if !names[want] {
			t.Fatalf("trace missing %q span, has %v", want, got.Spans)
		}
	}
	// This broadcast computed the packing, so its trace carries the profile.
	if got.Attached["pack_profile"] == nil {
		t.Fatalf("trace missing pack_profile attachment: %+v", got.Attached)
	}

	if r, err = srv.Client().Get(srv.URL + "/v1/traces?n=bogus"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit accepted: %d", r.StatusCode)
	}
}

// TestDecomposeProfile pins the PackProfile surface: the computing
// request gets kind-specific packer internals on its DecompInfo, the
// cached follow-up does not (nothing ran), and the stop-check split
// accounts for every post-first-iteration stop test.
func TestDecomposeProfile(t *testing.T) {
	s := New(Config{PackSeed: 1})
	id := mustRegister(t, s, testGraph())

	info, err := s.Decompose(id, Spanning)
	if err != nil {
		t.Fatal(err)
	}
	p := info.Profile
	if p == nil {
		t.Fatal("computing Decompose returned no profile")
	}
	if p.Kind != Spanning || p.Trees != info.Trees {
		t.Fatalf("profile header wrong: %+v vs info %+v", p, info)
	}
	if p.Iterations <= 0 || p.MaxLoad <= 0 {
		t.Fatalf("spanning profile missing MWU internals: %+v", p)
	}
	if p.StopChecksExact+p.StopChecksSkipped == 0 {
		t.Fatalf("no stop checks recorded: %+v", p)
	}
	if p.Layers != 0 || p.Matched != 0 {
		t.Fatalf("spanning profile carries dominating fields: %+v", p)
	}

	cached, err := s.Decompose(id, Spanning)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached || cached.Profile != nil {
		t.Fatalf("cached Decompose should carry no profile: %+v", cached)
	}

	dom, err := s.Decompose(id, Dominating)
	if err != nil {
		t.Fatal(err)
	}
	dp := dom.Profile
	if dp == nil || dp.Kind != Dominating {
		t.Fatalf("dominating profile missing: %+v", dp)
	}
	if dp.Layers <= 0 || dp.Classes <= 0 || dp.Matched+dp.Unmatched == 0 {
		t.Fatalf("dominating profile missing layer internals: %+v", dp)
	}
	if dp.Iterations != 0 || dp.DedupHits != 0 {
		t.Fatalf("dominating profile carries spanning fields: %+v", dp)
	}
}

// TestLoadReportPhases pins the per-phase breakdown in load reports:
// a closed-loop run fills registry/clone/run summaries whose counts
// match the completed demands.
func TestLoadReportPhases(t *testing.T) {
	s := New(Config{PackSeed: 1, MaxConcurrent: 2})
	id := mustRegister(t, s, testGraph())
	rep, err := GenerateLoad(s, LoadConfig{GraphID: id, Kind: Spanning, Workers: 2, Demands: 3, MsgsPerDemand: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("load report has no phase summaries")
	}
	byName := make(map[string]obs.Summary)
	for _, ph := range rep.Phases {
		byName[ph.Phase] = ph.Summary
	}
	for _, want := range []string{"registry", "clone", "run"} {
		sum, ok := byName[want]
		if !ok {
			t.Fatalf("phase %q missing from %+v", want, rep.Phases)
		}
		if sum.Count != uint64(rep.Completed) {
			t.Fatalf("phase %q count %d != completed %d", want, sum.Count, rep.Completed)
		}
		if sum.P50 > sum.P99 || sum.P99 > sum.Max && sum.Max > 0 {
			t.Fatalf("phase %q quantiles disordered: %+v", want, sum)
		}
	}
	if _, ok := byName["pack"]; ok {
		t.Fatal("pack phase leaked into load phases (decomposition is pre-warmed)")
	}
}
