package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cast"
	"repro/internal/graph"
)

func postJSON(t *testing.T, client *http.Client, url string, body, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

// TestHTTPRoundTrip drives the whole API over a real HTTP server:
// register, decompose (concurrently, proving the singleflight holds
// across the HTTP layer), broadcast, stats — and pins that the HTTP
// path returns results byte-identical to the in-process service.
func TestHTTPRoundTrip(t *testing.T) {
	svc := New(Config{PackSeed: 1, MaxConcurrent: 4})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := srv.Client()

	g := graph.Hypercube(4)
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	var info GraphInfo
	if code, body := postJSON(t, client, srv.URL+"/v1/graphs", RegisterRequest{N: g.N(), Edges: edges}, &info); code != http.StatusOK {
		t.Fatalf("register: %d %s", code, body)
	}
	if info.N != g.N() || info.M != g.M() {
		t.Fatalf("register echoed wrong graph: %+v", info)
	}

	// GET the graph back.
	resp, err := client.Get(srv.URL + "/v1/graphs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph lookup: %d", resp.StatusCode)
	}

	// Concurrent decomposition requests over HTTP: exactly one packing.
	const callers = 8
	var wg sync.WaitGroup
	infos := make([]DecompInfo, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postJSON(t, client, srv.URL+"/v1/graphs/"+info.ID+"/decomposition",
				DecomposeRequest{Kind: Spanning}, &infos[i])
			if code != http.StatusOK {
				t.Errorf("decompose %d: %d %s", i, code, body)
			}
		}(i)
	}
	wg.Wait()
	for i := range infos {
		if infos[i].Trees != infos[0].Trees || infos[i].Size != infos[0].Size {
			t.Fatalf("caller %d saw different decomposition: %+v vs %+v", i, infos[i], infos[0])
		}
	}

	// Broadcast over HTTP == in-process broadcast, byte for byte.
	srcs := []int{0, 3, 7, 11, 15, 2, 9}
	var resp1 BroadcastResponse
	if code, body := postJSON(t, client, srv.URL+"/v1/graphs/"+info.ID+"/broadcast",
		BroadcastRequest{Kind: Spanning, Sources: srcs, Seed: 42}, &resp1); code != http.StatusOK {
		t.Fatalf("broadcast: %d %s", code, body)
	}
	direct, err := svc.Broadcast(info.ID, Spanning, srcs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if resp1.Result != direct {
		t.Fatalf("HTTP result %+v != in-process result %+v", resp1.Result, direct)
	}
	if resp1.Messages != len(srcs) {
		t.Fatalf("messages echoed wrong: %+v", resp1)
	}

	// Stats reflect the traffic and the single packing.
	var st Stats
	sresp, err := client.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.PackComputes != 1 {
		t.Fatalf("stats report %d packings over HTTP, want 1", st.PackComputes)
	}
	if st.Requests != 2 { // one HTTP broadcast + one in-process
		t.Fatalf("stats report %d requests, want 2", st.Requests)
	}

	// Error paths: bad body, unknown graph, unknown kind, bad sources.
	for _, tc := range []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown graph", srv.URL + "/v1/graphs/gdeadbeef/broadcast", BroadcastRequest{Kind: Spanning, Sources: srcs}, http.StatusNotFound},
		{"unknown kind", srv.URL + "/v1/graphs/" + info.ID + "/broadcast", BroadcastRequest{Kind: "nope", Sources: srcs}, http.StatusBadRequest},
		{"bad source", srv.URL + "/v1/graphs/" + info.ID + "/broadcast", BroadcastRequest{Kind: Spanning, Sources: []int{-1}}, http.StatusBadRequest},
		{"unknown graph decomp", srv.URL + "/v1/graphs/gdeadbeef/decomposition", DecomposeRequest{Kind: Spanning}, http.StatusNotFound},
		{"bad register", srv.URL + "/v1/graphs", RegisterRequest{N: -3}, http.StatusBadRequest},
	} {
		if code, _ := postJSON(t, client, tc.url, tc.body, nil); code != tc.want {
			t.Fatalf("%s: got %d, want %d", tc.name, code, tc.want)
		}
	}
	if code, _ := postJSON(t, client, srv.URL+"/v1/graphs", map[string]any{"n": 4, "bogus": true}, nil); code != http.StatusBadRequest {
		t.Fatal("unknown field accepted")
	}
}

// TestHTTPLoadThroughService exercises the load generator against a
// service that is simultaneously serving HTTP traffic, mimicking the
// mixed workload cmd/serve -selftest drives.
func TestHTTPLoadThroughService(t *testing.T) {
	svc := New(Config{PackSeed: 1, MaxConcurrent: 4})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	g := graph.Complete(12)
	id, err := svc.RegisterGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var rep LoadReport
	var lerr error
	go func() {
		defer wg.Done()
		rep, lerr = GenerateLoad(svc, LoadConfig{GraphID: id, Kind: Spanning, Workers: 2, Demands: 4, Seed: 9})
	}()
	var hres BroadcastResponse
	code, body := postJSON(t, srv.Client(), fmt.Sprintf("%s/v1/graphs/%s/broadcast", srv.URL, id),
		BroadcastRequest{Kind: Spanning, Sources: []int{0, 5}, Seed: 1}, &hres)
	if code != http.StatusOK {
		t.Fatalf("broadcast during load: %d %s", code, body)
	}
	wg.Wait()
	if lerr != nil {
		t.Fatal(lerr)
	}
	if rep.Demands != 8 {
		t.Fatalf("load report %+v", rep)
	}
	if hres.Result == (cast.Result{}) {
		t.Fatal("HTTP broadcast returned zero result")
	}
	if st := svc.Stats(); st.PackComputes != 1 || st.Requests != 9 {
		t.Fatalf("mixed workload stats: %+v", st)
	}
}

// TestHTTPBatch drives the batch endpoint end to end: a mixed batch
// comes back as one 200 with per-demand entries (individual failures as
// entries), exactly one pack-cache checkout lands in the stats, and the
// request-level error matrix maps to the right status codes.
func TestHTTPBatch(t *testing.T) {
	svc := New(Config{PackSeed: 1, MaxConcurrent: 4, MaxBatch: 8})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := srv.Client()

	g := graph.Hypercube(4)
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	var info GraphInfo
	if code, body := postJSON(t, client, srv.URL+"/v1/graphs", RegisterRequest{N: g.N(), Edges: edges}, &info); code != http.StatusOK {
		t.Fatalf("register: %d %s", code, body)
	}
	bURL := srv.URL + "/v1/graphs/" + info.ID + "/broadcast/batch"

	req := BatchRequest{Kind: Spanning, Demands: []BatchDemand{
		{Sources: []int{0, 3, 7}, Seed: 1},
		{Sources: []int{99}, Seed: 2}, // error entry, not a request error
		{Sources: []int{5, 11}, Seed: 3},
	}}
	var resp BatchResponse
	if code, body := postJSON(t, client, bURL, req, &resp); code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	if resp.GraphID != info.ID || resp.Kind != Spanning || resp.BatchID == 0 {
		t.Fatalf("batch response header wrong: %+v", resp)
	}
	if len(resp.Entries) != 3 || resp.Summary.Succeeded != 2 || resp.Summary.Failed != 1 {
		t.Fatalf("batch entries wrong: %+v", resp)
	}
	if resp.Entries[1].Error == "" || resp.Entries[1].Result != nil {
		t.Fatalf("invalid demand not an error entry: %+v", resp.Entries[1])
	}
	// HTTP batch entries == in-process serial results, byte for byte.
	for _, i := range []int{0, 2} {
		want, err := svc.Broadcast(info.ID, Spanning, req.Demands[i].Sources, req.Demands[i].Seed)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Entries[i].Result == nil || *resp.Entries[i].Result != want {
			t.Fatalf("entry %d diverged from serial path: %+v vs %+v", i, resp.Entries[i].Result, want)
		}
	}

	// The whole 3-demand batch made exactly one pack-cache checkout (the
	// two serial probes above add one each).
	var st Stats
	getJSON(t, client, srv.URL+"/v1/stats", &st)
	if st.PackRequests != 3 || st.PackComputes != 1 {
		t.Fatalf("batch pack accounting wrong: requests=%d computes=%d, want 3/1", st.PackRequests, st.PackComputes)
	}
	if st.Requests != 4 { // 2 batch successes + 2 serial probes
		t.Fatalf("requests=%d, want 4", st.Requests)
	}

	// Request-level error matrix.
	oversized := BatchRequest{Kind: Spanning, Demands: make([]BatchDemand, 9)}
	for i := range oversized.Demands {
		oversized.Demands[i] = BatchDemand{Sources: []int{0}, Seed: 1}
	}
	for _, tc := range []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown graph", srv.URL + "/v1/graphs/gdeadbeef/broadcast/batch", req, http.StatusNotFound},
		{"unknown kind", bURL, BatchRequest{Kind: "steiner", Demands: req.Demands}, http.StatusBadRequest},
		{"empty batch", bURL, BatchRequest{Kind: Spanning}, http.StatusBadRequest},
		{"oversized batch", bURL, oversized, http.StatusBadRequest},
	} {
		code, body := postJSON(t, client, tc.url, tc.body, nil)
		if code != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, code, body, tc.want)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: missing structured error: %s", tc.name, body)
		}
	}
	if code, body := postJSON(t, client, bURL+"?stream=1", BatchRequest{Kind: "steiner", Demands: req.Demands}, nil); code != http.StatusBadRequest {
		t.Errorf("streaming request error not a status: %d %s", code, body)
	}
	var after Stats
	getJSON(t, client, srv.URL+"/v1/stats", &after)
	if after.Requests != st.Requests {
		t.Fatalf("rejected batches served demands: %+v", after)
	}
}

// TestHTTPBatchStreaming pins the streaming mode in both framings: the
// NDJSON stream carries one demand event per entry and ends with the
// terminal summary, events arrive in increasing Seq order scoped to this
// batch, and the SSE framing wraps the same payloads in data: lines.
func TestHTTPBatchStreaming(t *testing.T) {
	svc := New(Config{PackSeed: 1, MaxConcurrent: 2})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := srv.Client()

	g := graph.Hypercube(4)
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	var info GraphInfo
	if code, body := postJSON(t, client, srv.URL+"/v1/graphs", RegisterRequest{N: g.N(), Edges: edges}, &info); code != http.StatusOK {
		t.Fatalf("register: %d %s", code, body)
	}
	demands := []BatchDemand{
		{Sources: []int{0, 1, 2}, Seed: 4},
		{Sources: nil, Seed: 0}, // error entry still streams
		{Sources: []int{8, 9}, Seed: 5},
		{Sources: []int{3}, Seed: 6},
	}
	raw, err := json.Marshal(BatchRequest{Kind: Spanning, Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL + "/v1/graphs/" + info.ID + "/broadcast/batch?stream=1"

	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("stream response: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var events []BatchEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev BatchEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream decode after %d events: %v", len(events), err)
		}
		events = append(events, ev)
		if ev.Type == EventSummary {
			break
		}
	}
	if len(events) != len(demands)+1 {
		t.Fatalf("streamed %d events for %d demands", len(events), len(demands))
	}
	seenIdx := make(map[int]bool)
	for i, ev := range events {
		if ev.BatchID != events[0].BatchID {
			t.Fatalf("stream mixed batches: %+v", ev)
		}
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("stream Seq not increasing: %d after %d", ev.Seq, events[i-1].Seq)
		}
		if i < len(demands) {
			if ev.Type != EventDemand || seenIdx[ev.Index] {
				t.Fatalf("event %d wrong or duplicate: %+v", i, ev)
			}
			seenIdx[ev.Index] = true
			if ev.Index == 1 && ev.Error == "" {
				t.Fatalf("error entry streamed without error: %+v", ev)
			}
		}
	}
	summary := events[len(events)-1].Summary
	if summary == nil || summary.Demands != len(demands) || summary.Succeeded != 3 || summary.Failed != 1 {
		t.Fatalf("terminal summary wrong: %+v", summary)
	}

	// SSE framing: same events, data:-prefixed.
	sseReq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sseReq.Header.Set("Content-Type", "application/json")
	sseReq.Header.Set("Accept", "text/event-stream")
	sresp, err := client.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("SSE content type: %s", sresp.Header.Get("Content-Type"))
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(sresp.Body); err != nil {
		t.Fatal(err)
	}
	var dataLines int
	for _, line := range strings.Split(body.String(), "\n") {
		if strings.HasPrefix(line, "data: ") {
			dataLines++
			var ev BatchEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("SSE data line not an event: %q: %v", line, err)
			}
		}
	}
	if dataLines != len(demands)+1 {
		t.Fatalf("SSE carried %d data lines, want %d", dataLines, len(demands)+1)
	}

	// Both streaming batches made one pack checkout each; the pack was
	// computed exactly once across everything.
	var st Stats
	getJSON(t, client, srv.URL+"/v1/stats", &st)
	if st.PackRequests != 2 || st.PackComputes != 1 {
		t.Fatalf("streaming pack accounting: requests=%d computes=%d, want 2/1", st.PackRequests, st.PackComputes)
	}
	if st.Requests != 6 { // 3 successes per streamed batch
		t.Fatalf("requests=%d, want 6", st.Requests)
	}
	if st.EventsDropped != 0 {
		t.Fatalf("fast consumer dropped events: %+v", st)
	}
}
