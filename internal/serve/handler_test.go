package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/cast"
	"repro/internal/graph"
)

func postJSON(t *testing.T, client *http.Client, url string, body, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

// TestHTTPRoundTrip drives the whole API over a real HTTP server:
// register, decompose (concurrently, proving the singleflight holds
// across the HTTP layer), broadcast, stats — and pins that the HTTP
// path returns results byte-identical to the in-process service.
func TestHTTPRoundTrip(t *testing.T) {
	svc := New(Config{PackSeed: 1, MaxConcurrent: 4})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := srv.Client()

	g := graph.Hypercube(4)
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	var info GraphInfo
	if code, body := postJSON(t, client, srv.URL+"/v1/graphs", RegisterRequest{N: g.N(), Edges: edges}, &info); code != http.StatusOK {
		t.Fatalf("register: %d %s", code, body)
	}
	if info.N != g.N() || info.M != g.M() {
		t.Fatalf("register echoed wrong graph: %+v", info)
	}

	// GET the graph back.
	resp, err := client.Get(srv.URL + "/v1/graphs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph lookup: %d", resp.StatusCode)
	}

	// Concurrent decomposition requests over HTTP: exactly one packing.
	const callers = 8
	var wg sync.WaitGroup
	infos := make([]DecompInfo, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postJSON(t, client, srv.URL+"/v1/graphs/"+info.ID+"/decomposition",
				DecomposeRequest{Kind: Spanning}, &infos[i])
			if code != http.StatusOK {
				t.Errorf("decompose %d: %d %s", i, code, body)
			}
		}(i)
	}
	wg.Wait()
	for i := range infos {
		if infos[i].Trees != infos[0].Trees || infos[i].Size != infos[0].Size {
			t.Fatalf("caller %d saw different decomposition: %+v vs %+v", i, infos[i], infos[0])
		}
	}

	// Broadcast over HTTP == in-process broadcast, byte for byte.
	srcs := []int{0, 3, 7, 11, 15, 2, 9}
	var resp1 BroadcastResponse
	if code, body := postJSON(t, client, srv.URL+"/v1/graphs/"+info.ID+"/broadcast",
		BroadcastRequest{Kind: Spanning, Sources: srcs, Seed: 42}, &resp1); code != http.StatusOK {
		t.Fatalf("broadcast: %d %s", code, body)
	}
	direct, err := svc.Broadcast(info.ID, Spanning, srcs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if resp1.Result != direct {
		t.Fatalf("HTTP result %+v != in-process result %+v", resp1.Result, direct)
	}
	if resp1.Messages != len(srcs) {
		t.Fatalf("messages echoed wrong: %+v", resp1)
	}

	// Stats reflect the traffic and the single packing.
	var st Stats
	sresp, err := client.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.PackComputes != 1 {
		t.Fatalf("stats report %d packings over HTTP, want 1", st.PackComputes)
	}
	if st.Requests != 2 { // one HTTP broadcast + one in-process
		t.Fatalf("stats report %d requests, want 2", st.Requests)
	}

	// Error paths: bad body, unknown graph, unknown kind, bad sources.
	for _, tc := range []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown graph", srv.URL + "/v1/graphs/gdeadbeef/broadcast", BroadcastRequest{Kind: Spanning, Sources: srcs}, http.StatusNotFound},
		{"unknown kind", srv.URL + "/v1/graphs/" + info.ID + "/broadcast", BroadcastRequest{Kind: "nope", Sources: srcs}, http.StatusBadRequest},
		{"bad source", srv.URL + "/v1/graphs/" + info.ID + "/broadcast", BroadcastRequest{Kind: Spanning, Sources: []int{-1}}, http.StatusBadRequest},
		{"unknown graph decomp", srv.URL + "/v1/graphs/gdeadbeef/decomposition", DecomposeRequest{Kind: Spanning}, http.StatusNotFound},
		{"bad register", srv.URL + "/v1/graphs", RegisterRequest{N: -3}, http.StatusBadRequest},
	} {
		if code, _ := postJSON(t, client, tc.url, tc.body, nil); code != tc.want {
			t.Fatalf("%s: got %d, want %d", tc.name, code, tc.want)
		}
	}
	if code, _ := postJSON(t, client, srv.URL+"/v1/graphs", map[string]any{"n": 4, "bogus": true}, nil); code != http.StatusBadRequest {
		t.Fatal("unknown field accepted")
	}
}

// TestHTTPLoadThroughService exercises the load generator against a
// service that is simultaneously serving HTTP traffic, mimicking the
// mixed workload cmd/serve -selftest drives.
func TestHTTPLoadThroughService(t *testing.T) {
	svc := New(Config{PackSeed: 1, MaxConcurrent: 4})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	g := graph.Complete(12)
	id, err := svc.RegisterGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var rep LoadReport
	var lerr error
	go func() {
		defer wg.Done()
		rep, lerr = GenerateLoad(svc, LoadConfig{GraphID: id, Kind: Spanning, Workers: 2, Demands: 4, Seed: 9})
	}()
	var hres BroadcastResponse
	code, body := postJSON(t, srv.Client(), fmt.Sprintf("%s/v1/graphs/%s/broadcast", srv.URL, id),
		BroadcastRequest{Kind: Spanning, Sources: []int{0, 5}, Seed: 1}, &hres)
	if code != http.StatusOK {
		t.Fatalf("broadcast during load: %d %s", code, body)
	}
	wg.Wait()
	if lerr != nil {
		t.Fatal(lerr)
	}
	if rep.Demands != 8 {
		t.Fatalf("load report %+v", rep)
	}
	if hres.Result == (cast.Result{}) {
		t.Fatal("HTTP broadcast returned zero result")
	}
	if st := svc.Stats(); st.PackComputes != 1 || st.Requests != 9 {
		t.Fatalf("mixed workload stats: %+v", st)
	}
}
