// Package serve is the concurrent decomposition-and-broadcast service:
// the layer that turns the packers and the cast.Scheduler handle into a
// system that accepts traffic. It provides
//
//   - a graph registry keyed by content hash, sharded into
//     goroutine-safe segments so millions of registered graphs do not
//     contend on one lock (registering the same graph twice yields the
//     same id and shares all cached state),
//   - a per-(graph, kind) packing cache with singleflight semantics — N
//     concurrent requests for the same decomposition trigger exactly one
//     cds.Pack / stp.Pack computation, everyone else waits for it,
//   - an optional durable snapshot store (internal/snap): computed
//     decompositions are persisted write-behind, a cache miss consults
//     the store before packing, and a warm restart therefore serves
//     every previously packed (graph, kind) without a single repack,
//   - per-segment LRU eviction (Config.MaxResident) bounding how many
//     decompositions stay resident; evicted entries reload from the
//     store — or repack — on demand,
//   - a sync.Pool of Scheduler clones per cached decomposition, so
//     concurrent demands share the immutable scheduler core and reuse
//     warm per-run buffers (zero steady-state allocations per clone),
//   - bounded-concurrency demand execution with per-graph and global
//     stats (requests, cache hits, store hits, rounds, congestion
//     maxima).
//
// # Caller invariants
//
// A Service's decompositions are a pure function of (graph content,
// Config.PackSeed, Config.Epsilon); callers that share a snapshot store
// between services must use identical PackSeed/Epsilon, and Ingest
// refuses snapshots whose options digest differs. Write-behind saves
// are asynchronous: call FlushStore before relying on the store's
// on-disk state (shutdown, restart tests). Graphs handed to
// RegisterGraph and results returned from Stats must be treated as
// immutable.
//
// The HTTP front end over this service lives in handler.go and is
// served by cmd/serve; the closed-loop load generator in loadgen.go
// drives it for the E6 parallel-throughput benchmark.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cast"
	"repro/internal/cds"
	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/stp"
)

// Kind selects which decomposition a request is served over.
type Kind string

const (
	// Dominating is the Theorem 1.2 dominating-tree packing, served in
	// the V-CONGEST model (Corollary 1.4).
	Dominating Kind = "dominating"
	// Spanning is the Theorem 1.3 spanning-tree packing, served in the
	// E-CONGEST model (Corollary 1.5).
	Spanning Kind = "spanning"
)

func (k Kind) valid() bool { return k == Dominating || k == Spanning }

// registryShards is the number of goroutine-safe registry segments.
// GraphIDs hash uniformly across them, so contention on any one
// segment lock is 1/registryShards of the single-lock design.
const registryShards = 8

// Config tunes a Service; the zero value serves with the packers'
// calibrated defaults, a conservative concurrency bound, no
// persistence, and unbounded residency.
type Config struct {
	// MaxConcurrent bounds how many demands execute simultaneously
	// (scheduler rounds are CPU-bound; more in flight than cores just
	// grows clone pools). Default 8.
	MaxConcurrent int
	// PackSeed seeds the packing computations (default 0, packer
	// defaults). Fixed per service so a graph's decomposition is a pure
	// function of its content hash.
	PackSeed uint64
	// Epsilon overrides the spanning-tree packer's ε when it lies in
	// (0, 1); values outside that range fall back to the packer default.
	Epsilon float64
	// MaxMsgsPerDemand bounds a single demand's message count; oversized
	// demands are rejected before any scheduler work. Default 65536.
	MaxMsgsPerDemand int
	// MaxBatch bounds how many demands one BroadcastBatch call may
	// carry; oversized batches are rejected whole. Default 1024.
	MaxBatch int
	// StreamBuffer is the event-bus buffer per streaming subscriber;
	// a subscriber that falls further behind loses its oldest events
	// (drop-oldest, counted in stats). Default 256.
	StreamBuffer int
	// StoreDir, when non-empty, enables the durable snapshot store:
	// computed decompositions are persisted there write-behind, and a
	// packing-cache miss consults the store before running a packer, so
	// a warm restart over the same directory repacks nothing.
	StoreDir string
	// MaxResident bounds how many decompositions stay resident per
	// registry segment (0 = unlimited). Beyond the bound the least
	// recently used completed decomposition is evicted; it reloads from
	// the store (or repacks) on its next request.
	MaxResident int
	// TraceRing bounds how many recent request traces stay resident for
	// the traces endpoint. Default 64.
	TraceRing int
}

// Service is the concurrent decomposition service. All methods are safe
// for concurrent use.
type Service struct {
	cfg    Config
	sem    chan struct{} // bounded-concurrency demand execution
	store  *snap.Store   // nil when persistence is disabled
	digest uint64        // options digest keying this service's snapshots

	shards [registryShards]registryShard
	regSeq atomic.Uint64 // registration-order allocator for stable stats

	saves sync.WaitGroup // in-flight write-behind snapshot saves

	// Global counters.
	requests     atomic.Uint64 // broadcast demands served
	messages     atomic.Uint64 // messages disseminated
	rounds       atomic.Uint64 // scheduler rounds across all demands
	packRequests atomic.Uint64 // decomposition requests (incl. cached)
	packComputes atomic.Uint64 // packings actually computed
	cacheHits    atomic.Uint64 // requests served from a completed cache entry
	coalesced    atomic.Uint64 // requests that waited on an in-flight packing
	storeHits    atomic.Uint64 // cache misses served from the snapshot store
	storeMisses  atomic.Uint64 // store lookups that found no snapshot
	storeErrors  atomic.Uint64 // corrupt/unreadable snapshots and failed saves
	evictions    atomic.Uint64 // decompositions evicted by the residency bound
	maxVCong     atomic.Int64  // max per-demand vertex congestion seen
	maxECong     atomic.Int64  // max per-demand edge congestion seen

	// Chaos-mode counters (faulted broadcasts only). The delivered/
	// expected pair lives behind one mutex so a Stats snapshot can never
	// observe expected bumped without its delivered half (a torn read
	// would report a transiently wrong delivered fraction).
	faultedRequests atomic.Uint64 // faulted demands served
	messagesLost    atomic.Uint64 // messages given up after retries
	retries         atomic.Uint64 // surviving-tree reroutes performed
	pairs           pairCount     // (message, live vertex) delivery targets vs achieved

	// Streaming path.
	bus           *eventBus
	batchSeq      atomic.Uint64 // batch-id allocator (ids start at 1)
	eventsDropped atomic.Uint64 // events lost to the slow-subscriber policy

	// Observability (see obs.go): the metric registry pulling from the
	// counters above at scrape time, per-phase latency histograms, size
	// histograms, and the ring of recent request traces.
	metrics   *obs.Registry
	phaseHist [numPhases]*obs.Histogram
	msgsHist  *obs.Histogram // messages per served demand
	batchHist *obs.Histogram // demands per accepted batch
	traces    *obs.Ring
}

// registryShard is one goroutine-safe segment of the graph registry:
// a slice of the id→graph map plus the LRU list of decompositions
// resident in this segment (front = most recently used). The shard
// mutex also covers the packs map of every graphEntry owned by the
// shard, so cache checkout, insertion, and eviction are one critical
// section.
type registryShard struct {
	mu     sync.Mutex // guards graphs, lru
	graphs map[string]*graphEntry
	lru    *list.List // of *residentEntry
}

// residentEntry is one resident decomposition on a shard's LRU list.
type residentEntry struct {
	e    *graphEntry
	kind Kind
	pe   *packEntry
}

// pairCount is the (delivered, expected) chaos accounting pair. Both
// halves move together under one lock: BroadcastFaulted adds them as a
// unit and Stats loads them as a unit, so every snapshot sees a
// consistent delivered fraction.
type pairCount struct {
	mu        sync.Mutex // guards delivered, expected
	delivered uint64
	expected  uint64
}

func (p *pairCount) add(delivered, expected int) {
	p.mu.Lock()
	p.delivered += uint64(delivered)
	p.expected += uint64(expected)
	p.mu.Unlock()
}

func (p *pairCount) load() (delivered, expected uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delivered, p.expected
}

// graphEntry is one registered graph with its per-kind packing cache
// and stats. packs is guarded by the owning shard's mutex (cache
// checkout and LRU maintenance must be atomic across the shard's
// graphs, so the lock cannot live here).
type graphEntry struct {
	id    string
	seq   uint64 // registration order, for stable stats listings
	g     *graph.Graph
	shard *registryShard
	packs map[Kind]*packEntry

	requests  atomic.Uint64
	rounds    atomic.Uint64
	cacheHits atomic.Uint64
	coalesced atomic.Uint64
	computes  atomic.Uint64
	storeHits atomic.Uint64
	maxVCong  atomic.Int64
	maxECong  atomic.Int64

	faultedRequests atomic.Uint64
	messagesLost    atomic.Uint64
	retries         atomic.Uint64
	pairs           pairCount
}

// packEntry is one cached decomposition: the singleflight slot, the
// prototype scheduler whose immutable core every pooled clone shares,
// and the clone pool itself. done is closed once the leader finished
// (computing, loading from the store, or failing); proto/trees/wtrees/
// size/err are written only before that close, so followers read them
// race-free after <-done. elem is the entry's node on its shard's LRU
// list (nil once evicted); it is guarded by the shard mutex like the
// packs map.
type packEntry struct {
	done    chan struct{}
	proto   *cast.Scheduler
	pool    sync.Pool
	wtrees  []cast.WeightedTree // the packed trees, for snapshotting
	trees   int
	size    float64
	profile *PackProfile // packer-internal counters; nil for store/ingest loads
	err     error
	elem    *list.Element
}

// New builds an empty service.
func New(cfg Config) *Service {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
	}
	if cfg.MaxMsgsPerDemand <= 0 {
		cfg.MaxMsgsPerDemand = 65536
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.StreamBuffer <= 0 {
		cfg.StreamBuffer = 256
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 64
	}
	s := &Service{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		digest: snap.OptionsDigest(cfg.PackSeed, cfg.Epsilon),
	}
	if cfg.StoreDir != "" {
		s.store = snap.NewStore(cfg.StoreDir)
	}
	for i := range s.shards {
		s.shards[i].graphs = make(map[string]*graphEntry) //repro:allow guardedfield constructor: service not yet published
		s.shards[i].lru = list.New()                      //repro:allow guardedfield constructor: service not yet published
	}
	s.bus = newEventBus(&s.eventsDropped)
	s.initObs()
	return s
}

// GraphID is the registry key: a content hash over the canonical
// (sorted, deduplicated) edge list, so isomorphic inputs with the same
// labeling always map to the same entry regardless of edge order or
// duplicates in the request. It is the same key internal/snap embeds in
// snapshot files.
func GraphID(g *graph.Graph) string { return snap.GraphKey(g) }

// shardFor maps a graph id to its registry segment.
func (s *Service) shardFor(id string) *registryShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()%registryShards]
}

// Register adds a graph from an edge list (duplicates and self-loops
// dropped, as in decomp.NewGraph) and returns its content-hash id.
// Registering an already-known graph is an idempotent no-op returning
// the existing id. Edge endpoints are validated against [0, n) here:
// this is the network-facing entry point, and the graph builder treats
// out-of-range endpoints as a programming error (panic).
func (s *Service) Register(n int, edges [][2]int) (string, error) {
	if n <= 0 {
		return "", fmt.Errorf("serve: graph must have n > 0 vertices (got %d)", n)
	}
	for i, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return "", fmt.Errorf("serve: edge %d (%d,%d) out of range [0,%d)", i, e[0], e[1], n)
		}
	}
	return s.RegisterGraph(graph.FromEdgeList(n, edges))
}

// RegisterGraph registers an already-built graph (the in-process path
// used by the load generator and benchmarks) and returns its id. An id
// hit is verified against the stored graph's canonical edge list, so a
// content-hash collision between distinct graphs surfaces as an error
// instead of silently serving one graph's decomposition for another.
func (s *Service) RegisterGraph(g *graph.Graph) (string, error) {
	id := GraphID(g)
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.graphs[id]; ok {
		if !sameGraph(e.g, g) {
			return "", fmt.Errorf("serve: graph id collision on %s (registry holds a different graph)", id)
		}
		return id, nil
	}
	sh.graphs[id] = &graphEntry{
		id:    id,
		seq:   s.regSeq.Add(1),
		g:     g,
		shard: sh,
		packs: make(map[Kind]*packEntry),
	}
	return id, nil
}

// sameGraph compares canonical (sorted, deduped) edge lists.
func sameGraph(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	be := b.Edges()
	for i, e := range a.Edges() {
		if e != be[i] {
			return false
		}
	}
	return true
}

// Graph returns a registered graph by id.
func (s *Service) Graph(id string) (*graph.Graph, bool) {
	e, ok := s.lookup(id)
	if !ok {
		return nil, false
	}
	return e.g, true
}

func (s *Service) lookup(id string) (*graphEntry, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.graphs[id]
	sh.mu.Unlock()
	return e, ok
}

// DecompInfo describes a cached (or just-computed) decomposition.
type DecompInfo struct {
	// GraphID is the content-hash registry key the decomposition
	// belongs to.
	GraphID string `json:"graph_id"`
	// Kind is the decomposition kind this info describes.
	Kind Kind `json:"kind"`
	// Trees is the number of trees in the packing.
	Trees int `json:"trees"`
	// Size is the packing size Σ w_τ.
	Size float64 `json:"size"`
	// Cached reports whether this request was served without running a
	// packer — from the in-memory cache or the snapshot store (false
	// exactly for the one request that triggered the packing).
	Cached bool `json:"cached"`
	// Profile is the packer-internal instrumentation of the computation
	// that produced this decomposition. Nil when the decomposition was
	// restored from the snapshot store or ingested (no packer ran in
	// this process, so there is nothing to profile).
	Profile *PackProfile `json:"profile,omitempty"`
}

// Decompose returns the graph's decomposition of the given kind,
// computing and caching it on first request. Concurrent first requests
// singleflight: exactly one runs the packer, the rest block until it
// finishes and share the result (or its error, which is cached too —
// the packers are deterministic, so retrying cannot help). With a
// snapshot store configured, the cache-missing leader first tries the
// store and only packs when no valid snapshot exists. On error the
// returned info is zero: a failed packing has no trees or size to report.
func (s *Service) Decompose(id string, kind Kind) (DecompInfo, error) {
	return s.DecomposeContext(context.Background(), id, kind)
}

// DecomposeContext is Decompose with a context carrying the request's
// trace (obs.WithTrace): the registry and pack phases are recorded as
// spans and the computing leader's pack profile is attached under
// "pack_profile". The context does not (yet) cancel an in-flight
// packing — the packers run to completion once started.
func (s *Service) DecomposeContext(ctx context.Context, id string, kind Kind) (DecompInfo, error) {
	tr := obs.FromContext(ctx)
	start := time.Now()
	e, ok := s.lookup(id)
	if !ok {
		return DecompInfo{}, fmt.Errorf("serve: unknown graph %q", id)
	}
	s.observePhase(tr, phaseRegistry, start)
	pe, hit, err := s.pack(tr, e, kind)
	if err != nil {
		return DecompInfo{}, err
	}
	if pe.err != nil {
		return DecompInfo{}, pe.err
	}
	info := DecompInfo{GraphID: id, Kind: kind, Trees: pe.trees, Size: pe.size, Cached: hit}
	if !hit {
		info.Profile = pe.profile // the compute leader reports what it ran
	}
	return info, nil
}

// pack is the singleflight packing cache: the first caller for a
// (graph, kind) becomes the leader; everyone else waits on the entry's
// done channel. hit reports whether this caller avoided running a
// packer — a follower that finds the entry already complete is a true
// cache hit, one that blocks the full pack duration behind the
// in-flight leader is counted as coalesced (the two tell very
// different latency stories), and a leader that restores the
// decomposition from the snapshot store is a store hit. Every request
// lands in exactly one of those buckets or in PackComputes, so
// PackRequests == PackComputes + CacheHits + Coalesced + StoreHits
// always holds. tr (nil allowed) receives store_load and pack phase
// spans on the leader paths that perform that work.
func (s *Service) pack(tr *obs.Trace, e *graphEntry, kind Kind) (*packEntry, bool, error) {
	if !kind.valid() {
		return nil, false, fmt.Errorf("serve: unknown decomposition kind %q", kind)
	}
	s.packRequests.Add(1)
	sh := e.shard
	sh.mu.Lock()
	if pe, ok := e.packs[kind]; ok {
		if pe.elem != nil {
			sh.lru.MoveToFront(pe.elem)
		}
		sh.mu.Unlock()
		select {
		case <-pe.done:
			s.cacheHits.Add(1)
			e.cacheHits.Add(1)
		default:
			s.coalesced.Add(1)
			e.coalesced.Add(1)
			<-pe.done
		}
		return pe, true, nil
	}
	pe := &packEntry{done: make(chan struct{})}
	e.packs[kind] = pe
	pe.elem = sh.lru.PushFront(&residentEntry{e: e, kind: kind, pe: pe})
	s.evictExcessLocked(sh)
	sh.mu.Unlock()

	// Leader path: consult the snapshot store before packing. Any load
	// failure — missing, torn, tampered, wrong version, oracle-rejected
	// — degrades to a recompute, never to a request error.
	if s.store != nil {
		loadStart := time.Now()
		if sn, err := s.store.Load(e.id, string(kind), s.digest); err == nil {
			if aerr := s.adopt(e, kind, pe, sn); aerr == nil {
				s.observePhase(tr, phaseStoreLoad, loadStart)
				s.storeHits.Add(1)
				e.storeHits.Add(1)
				close(pe.done)
				return pe, true, nil
			}
			s.storeErrors.Add(1)
		} else if errors.Is(err, snap.ErrNotFound) {
			s.storeMisses.Add(1)
		} else {
			s.storeErrors.Add(1)
		}
		s.observePhase(tr, phaseStoreLoad, loadStart)
	}

	s.packComputes.Add(1)
	e.computes.Add(1)
	packStart := time.Now()
	pe.trees, pe.size, pe.wtrees, pe.proto, pe.profile, pe.err = s.compute(e.g, kind)
	s.observePhase(tr, phasePack, packStart)
	if pe.err == nil {
		tr.Attach("pack_profile", pe.profile)
	}
	if pe.proto != nil {
		proto := pe.proto
		pe.pool.New = func() any { return proto.Clone() }
	}
	close(pe.done)
	if s.store != nil && pe.err == nil {
		s.saveAsync(tr, e, kind, pe)
	}
	return pe, false, nil
}

// evictExcessLocked drops least-recently-used completed decompositions
// from the shard until it is back under the residency bound. In-flight
// entries (leader still packing or loading) are skipped: their waiters
// hold the entry pointer and the work is about to be needed. Called
// with the shard mutex held.
func (s *Service) evictExcessLocked(sh *registryShard) {
	if s.cfg.MaxResident <= 0 {
		return
	}
	for sh.lru.Len() > s.cfg.MaxResident {
		evicted := false
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			re := el.Value.(*residentEntry)
			select {
			case <-re.pe.done:
			default:
				continue // in flight: not evictable
			}
			sh.lru.Remove(el)
			re.pe.elem = nil
			delete(re.e.packs, re.kind)
			s.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return // everything over the bound is still in flight
		}
	}
}

// adopt installs a verified snapshot as this entry's decomposition:
// the trees are checked against the internal/check packing oracles for
// the registered graph (a tampered or stale file can never poison
// results) and the prototype scheduler is rebuilt from them exactly as
// compute would have.
func (s *Service) adopt(e *graphEntry, kind Kind, pe *packEntry, sn *snap.Snapshot) error {
	if err := sn.Verify(e.g); err != nil {
		return err
	}
	trees := make([]cast.WeightedTree, len(sn.Trees))
	for i, t := range sn.Trees {
		trees[i] = cast.WeightedTree{Tree: t.Tree, Weight: t.Weight}
	}
	model := sim.VCongest
	if kind == Spanning {
		model = sim.ECongest
	}
	sched, err := cast.NewScheduler(e.g, trees, model)
	if err != nil {
		return fmt.Errorf("serve: scheduler construction from snapshot: %w", err)
	}
	pe.trees = len(trees)
	pe.size = sn.Size
	pe.wtrees = trees
	pe.proto = sched
	pe.pool.New = func() any { return sched.Clone() }
	return nil
}

// saveAsync persists a freshly computed decomposition write-behind:
// the request that computed it returns immediately and the snapshot
// lands on disk in the background. FlushStore waits for all pending
// saves (call it before shutdown or before asserting on-disk state).
// The persist phase lands on the computing request's trace after the
// fact — the trace ring holds live pointers, so the span shows up in
// later snapshots of the same trace.
func (s *Service) saveAsync(tr *obs.Trace, e *graphEntry, kind Kind, pe *packEntry) {
	s.saves.Add(1)
	go func() {
		defer s.saves.Done()
		start := time.Now()
		trees := make([]check.Weighted, len(pe.wtrees))
		for i, t := range pe.wtrees {
			trees[i] = check.Weighted{Tree: t.Tree, Weight: t.Weight}
		}
		sn, err := snap.Capture(e.g, string(kind), s.digest, trees, pe.size)
		if err == nil {
			err = s.store.Save(sn)
		}
		if err != nil {
			s.storeErrors.Add(1)
		}
		s.observePhase(tr, phasePersist, start)
	}()
}

// FlushStore blocks until every pending write-behind snapshot save has
// completed. A no-op when no store is configured.
func (s *Service) FlushStore() { s.saves.Wait() }

// Ingest registers a snapshot's graph and installs its decomposition
// into the cache without packing — the interchange path for files
// produced by cmd/decompose -o or another service sharing this
// service's packing options. The snapshot must carry this service's
// options digest (otherwise its trees would differ from what this
// service computes, breaking replay determinism) and must pass the
// packing oracles for its own graph. With a store configured the
// snapshot is also persisted under its canonical key, so it survives
// further restarts. Returns the registered graph id.
func (s *Service) Ingest(sn *snap.Snapshot) (string, error) {
	if sn.OptionsDigest != s.digest {
		return "", fmt.Errorf("serve: snapshot options digest %016x does not match service digest %016x (PackSeed/Epsilon differ)",
			sn.OptionsDigest, s.digest)
	}
	kind := Kind(sn.Kind)
	if !kind.valid() {
		return "", fmt.Errorf("serve: unknown decomposition kind %q", sn.Kind)
	}
	g := sn.Graph()
	id, err := s.RegisterGraph(g)
	if err != nil {
		return "", err
	}
	e, _ := s.lookup(id)
	sh := e.shard
	sh.mu.Lock()
	if _, ok := e.packs[kind]; ok {
		sh.mu.Unlock()
		return id, nil // already resident; the cached entry wins
	}
	pe := &packEntry{done: make(chan struct{})}
	e.packs[kind] = pe
	pe.elem = sh.lru.PushFront(&residentEntry{e: e, kind: kind, pe: pe})
	s.evictExcessLocked(sh)
	sh.mu.Unlock()
	aerr := s.adopt(e, kind, pe, sn)
	if aerr != nil {
		pe.err = fmt.Errorf("serve: ingested snapshot rejected: %w", aerr)
	}
	close(pe.done)
	if aerr != nil {
		return "", pe.err
	}
	if s.store != nil {
		s.saveAsync(nil, e, kind, pe)
	}
	return id, nil
}

// compute runs the packer for the kind, builds the prototype scheduler
// whose core all pooled clones will share, and condenses the packer's
// run diagnostics into a PackProfile.
func (s *Service) compute(g *graph.Graph, kind Kind) (int, float64, []cast.WeightedTree, *cast.Scheduler, *PackProfile, error) {
	var (
		trees   []cast.WeightedTree
		size    float64
		model   sim.Model
		profile *PackProfile
	)
	switch kind {
	case Dominating:
		p, err := cds.Pack(g, cds.Options{Seed: s.cfg.PackSeed})
		if err != nil {
			return 0, 0, nil, nil, nil, fmt.Errorf("serve: dominating-tree packing: %w", err)
		}
		trees = make([]cast.WeightedTree, len(p.Trees))
		for i, t := range p.Trees {
			trees[i] = cast.WeightedTree{Tree: t.Tree, Weight: t.Weight}
		}
		size = p.Size()
		model = sim.VCongest
		profile = &PackProfile{
			Kind:         kind,
			Trees:        len(trees),
			MaxLoad:      float64(p.Stats.MaxLoad),
			Layers:       p.Stats.Layers,
			Classes:      p.Stats.Classes,
			ValidClasses: p.Stats.ValidClasses,
			Matched:      p.Stats.Matched,
			Unmatched:    p.Stats.Unmatched,
		}
	case Spanning:
		p, err := stp.Pack(g, stp.Options{Seed: s.cfg.PackSeed, Epsilon: s.cfg.Epsilon})
		if err != nil {
			return 0, 0, nil, nil, nil, fmt.Errorf("serve: spanning-tree packing: %w", err)
		}
		trees = make([]cast.WeightedTree, len(p.Trees))
		for i, t := range p.Trees {
			trees[i] = cast.WeightedTree{Tree: t.Tree, Weight: t.Weight}
		}
		size = p.Size()
		model = sim.ECongest
		profile = &PackProfile{
			Kind:              kind,
			Trees:             len(trees),
			MaxLoad:           p.Stats.MaxLoad,
			Iterations:        p.Stats.Iterations,
			StopChecksExact:   p.Stats.StopChecksExact,
			StopChecksSkipped: p.Stats.StopChecksSkipped,
			DedupHits:         p.Stats.DedupHits,
			Subgraphs:         p.Stats.Subgraphs,
			SubgraphsPacked:   p.Stats.SubgraphsPacked,
		}
	}
	sched, err := cast.NewScheduler(g, trees, model)
	if err != nil {
		return 0, 0, nil, nil, nil, fmt.Errorf("serve: scheduler construction: %w", err)
	}
	return len(trees), size, trees, sched, profile, nil
}

// Broadcast serves one demand over the graph's cached decomposition
// (packing it first if needed): a Scheduler clone is checked out of the
// pool, the demand runs under the service's concurrency bound, and the
// result is identical to a serial cast Run with the same (demand, seed).
func (s *Service) Broadcast(id string, kind Kind, sources []int, seed uint64) (cast.Result, error) {
	return s.BroadcastContext(context.Background(), id, kind, sources, seed)
}

// BroadcastContext is Broadcast with request-level cancellation: a done
// context aborts both the wait for an execution slot and the scheduler
// round loop itself, and in either case the slot is released and the
// clone returned to its pool, so a client disconnect mid-broadcast
// never leaks service capacity.
func (s *Service) BroadcastContext(ctx context.Context, id string, kind Kind, sources []int, seed uint64) (cast.Result, error) {
	e, pe, err := s.checkoutDemand(ctx, id, kind, sources)
	if err != nil {
		return cast.Result{}, err
	}
	res, err := s.runDemand(ctx, pe, func(c *cast.Scheduler) (cast.Result, error) {
		return c.RunContext(ctx, cast.Demand{Sources: sources}, seed)
	})
	if err != nil {
		return cast.Result{}, err
	}
	s.recordDemand(e, len(sources), res)
	return res, nil
}

// BroadcastFaulted serves one demand under a fault plan. Partial
// delivery is a structured FaultResult, never an error — errors are
// reserved for unknown graphs/kinds, invalid demands or plans, and
// cancellation — so a chaos run can never poison the packing cache or
// be mistaken for a service failure.
func (s *Service) BroadcastFaulted(ctx context.Context, id string, kind Kind, sources []int, seed uint64, plan cast.FaultPlan) (cast.FaultResult, error) {
	e, pe, err := s.checkoutDemand(ctx, id, kind, sources)
	if err != nil {
		return cast.FaultResult{}, err
	}
	var res cast.FaultResult
	_, err = s.runDemand(ctx, pe, func(c *cast.Scheduler) (cast.Result, error) {
		var ferr error
		res, ferr = c.RunFaultedContext(ctx, cast.Demand{Sources: sources}, seed, plan)
		return res.Result, ferr
	})
	if err != nil {
		return cast.FaultResult{}, err
	}
	s.recordDemand(e, len(sources), res.Result)
	s.faultedRequests.Add(1)
	e.faultedRequests.Add(1)
	s.messagesLost.Add(uint64(res.MessagesLost))
	e.messagesLost.Add(uint64(res.MessagesLost))
	s.retries.Add(uint64(res.Retries))
	e.retries.Add(uint64(res.Retries))
	s.pairs.add(res.PairsDelivered, res.PairsExpected)
	e.pairs.add(res.PairsDelivered, res.PairsExpected)
	return res, nil
}

// checkoutDemand validates a demand and resolves its packing cache
// entry (computing the decomposition if needed). The registry phase
// (lookup + validation) and any leader-side pack phases land on the
// context's trace.
func (s *Service) checkoutDemand(ctx context.Context, id string, kind Kind, sources []int) (*graphEntry, *packEntry, error) {
	tr := obs.FromContext(ctx)
	start := time.Now()
	e, ok := s.lookup(id)
	if !ok {
		return nil, nil, fmt.Errorf("serve: unknown graph %q", id)
	}
	if err := s.validateSources(e, sources); err != nil {
		return nil, nil, err
	}
	s.observePhase(tr, phaseRegistry, start)
	pe, _, err := s.pack(tr, e, kind)
	if err != nil {
		return nil, nil, err
	}
	if pe.err != nil {
		return nil, nil, pe.err
	}
	return e, pe, nil
}

// validateSources checks one demand's source list against the graph and
// the per-demand message bound (the demand-level half of checkout, also
// applied per entry by the batch path).
func (s *Service) validateSources(e *graphEntry, sources []int) error {
	if len(sources) == 0 {
		return fmt.Errorf("serve: empty demand")
	}
	if len(sources) > s.cfg.MaxMsgsPerDemand {
		return fmt.Errorf("serve: demand of %d messages exceeds limit %d", len(sources), s.cfg.MaxMsgsPerDemand)
	}
	for i, src := range sources {
		if src < 0 || src >= e.g.N() {
			return fmt.Errorf("serve: source %d out of range [0,%d) at index %d", src, e.g.N(), i)
		}
	}
	return nil
}

// runDemand executes one demand under the concurrency bound with a
// pooled clone, releasing both slot and clone on every path (a clone's
// buffers are cleared at Run entry, so a cancelled clone is pool-safe).
// The clone checkout (slot wait + pool get) and the round loop are the
// clone and run trace phases.
func (s *Service) runDemand(ctx context.Context, pe *packEntry, run func(*cast.Scheduler) (cast.Result, error)) (cast.Result, error) {
	tr := obs.FromContext(ctx)
	cloneStart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return cast.Result{}, ctx.Err()
	}
	c := pe.pool.Get().(*cast.Scheduler)
	s.observePhase(tr, phaseClone, cloneStart)
	runStart := time.Now()
	res, err := run(c)
	s.observePhase(tr, phaseRun, runStart)
	pe.pool.Put(c)
	<-s.sem
	if err != nil {
		return cast.Result{}, err
	}
	return res, nil
}

// recordDemand folds one served demand into the global and per-graph
// counters.
func (s *Service) recordDemand(e *graphEntry, msgs int, res cast.Result) {
	s.requests.Add(1)
	e.requests.Add(1)
	s.messages.Add(uint64(msgs))
	s.msgsHist.Observe(int64(msgs))
	s.rounds.Add(uint64(res.Rounds))
	e.rounds.Add(uint64(res.Rounds))
	maxInt64(&s.maxVCong, int64(res.MaxVertexCongestion))
	maxInt64(&e.maxVCong, int64(res.MaxVertexCongestion))
	maxInt64(&s.maxECong, int64(res.MaxEdgeCongestion))
	maxInt64(&e.maxECong, int64(res.MaxEdgeCongestion))
}

// maxInt64 lifts m to at least v.
func maxInt64(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// GraphStats is the per-graph slice of the service counters.
type GraphStats struct {
	// ID is the graph's content-hash registry key.
	ID string `json:"id"`
	// N and M are the graph's vertex and edge counts.
	N int `json:"n"`
	M int `json:"m"`
	// Requests counts broadcast demands served against this graph.
	Requests uint64 `json:"requests"`
	// Rounds accumulates scheduler rounds across this graph's demands.
	Rounds uint64 `json:"rounds"`
	// CacheHits, Coalesced, PackComputes, and StoreHits split this
	// graph's decomposition requests the same way the global Stats do.
	CacheHits    uint64 `json:"cache_hits"`
	Coalesced    uint64 `json:"coalesced"`
	PackComputes uint64 `json:"pack_computes"`
	StoreHits    uint64 `json:"store_hits"`
	// MaxVertexCongestion and MaxEdgeCongestion are the per-demand
	// congestion maxima seen on this graph.
	MaxVertexCongestion int64 `json:"max_vertex_congestion"`
	MaxEdgeCongestion   int64 `json:"max_edge_congestion"`
	// Chaos-mode counters: faulted demands served against this graph,
	// their reroutes and losses, and the achieved delivered fraction
	// across all of them (1 when no faulted demand has been served).
	FaultedRequests   uint64  `json:"faulted_requests"`
	MessagesLost      uint64  `json:"messages_lost"`
	Retries           uint64  `json:"retries"`
	DeliveredFraction float64 `json:"delivered_fraction"`
}

// Stats is a snapshot of the service counters.
type Stats struct {
	// Graphs is the number of registered graphs.
	Graphs int `json:"graphs"`
	// Requests, Messages, and Rounds count served demands, disseminated
	// messages, and accumulated scheduler rounds.
	Requests uint64 `json:"requests"`
	Messages uint64 `json:"messages"`
	Rounds   uint64 `json:"rounds"`
	// PackRequests counts decomposition requests; PackComputes the
	// packings actually run. Every request is exactly one of the
	// compute leader, a cache hit, a coalesced follower, or a store
	// hit: PackRequests == PackComputes + CacheHits + Coalesced +
	// StoreHits.
	PackRequests uint64 `json:"pack_requests"`
	PackComputes uint64 `json:"pack_computes"`
	// CacheHits counts decomposition requests served from a completed
	// cache entry; Coalesced the ones that had to wait out an in-flight
	// packing (singleflight followers). Hits are cheap, coalesced
	// requests pay the full pack latency — the split keeps the two
	// distinguishable in latency analysis.
	CacheHits uint64 `json:"cache_hits"`
	Coalesced uint64 `json:"coalesced"`
	// StoreHits counts cache misses restored from the snapshot store
	// instead of packed; StoreMisses the store lookups that found
	// nothing; StoreErrors the corrupt/unreadable snapshots and failed
	// write-behind saves (each such miss or error degrades to a
	// recompute, never to a request error).
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
	StoreErrors uint64 `json:"store_errors"`
	// Resident is the number of decompositions currently held in
	// memory; Evictions counts those dropped by the per-segment
	// residency bound (Config.MaxResident) since startup.
	Resident  int    `json:"resident"`
	Evictions uint64 `json:"evictions"`
	// MaxVertexCongestion and MaxEdgeCongestion are the per-demand
	// congestion maxima across all graphs.
	MaxVertexCongestion int64 `json:"max_vertex_congestion"`
	MaxEdgeCongestion   int64 `json:"max_edge_congestion"`
	// FaultedRequests, MessagesLost, Retries, and DeliveredFraction
	// aggregate the chaos-mode accounting across all graphs.
	FaultedRequests   uint64  `json:"faulted_requests"`
	MessagesLost      uint64  `json:"messages_lost"`
	Retries           uint64  `json:"retries"`
	DeliveredFraction float64 `json:"delivered_fraction"`
	// EventsDropped counts streaming events lost to the slow-subscriber
	// drop-oldest policy across all subscribers.
	EventsDropped uint64 `json:"events_dropped"`
	// PerGraph lists the per-graph counters in registration order.
	PerGraph []GraphStats `json:"per_graph"`
}

// Stats snapshots the global and per-graph counters (per-graph entries
// in registration order across all registry segments).
func (s *Service) Stats() Stats {
	var entries []*graphEntry
	resident := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.graphs {
			entries = append(entries, e)
		}
		resident += sh.lru.Len()
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	delivered, expected := s.pairs.load()
	st := Stats{
		Graphs:              len(entries),
		Requests:            s.requests.Load(),
		Messages:            s.messages.Load(),
		Rounds:              s.rounds.Load(),
		PackRequests:        s.packRequests.Load(),
		PackComputes:        s.packComputes.Load(),
		CacheHits:           s.cacheHits.Load(),
		Coalesced:           s.coalesced.Load(),
		StoreHits:           s.storeHits.Load(),
		StoreMisses:         s.storeMisses.Load(),
		StoreErrors:         s.storeErrors.Load(),
		Resident:            resident,
		Evictions:           s.evictions.Load(),
		MaxVertexCongestion: s.maxVCong.Load(),
		MaxEdgeCongestion:   s.maxECong.Load(),
		FaultedRequests:     s.faultedRequests.Load(),
		MessagesLost:        s.messagesLost.Load(),
		Retries:             s.retries.Load(),
		DeliveredFraction:   deliveredFraction(delivered, expected),
		EventsDropped:       s.eventsDropped.Load(),
	}
	for _, e := range entries {
		gd, ge := e.pairs.load()
		st.PerGraph = append(st.PerGraph, GraphStats{
			ID:                  e.id,
			N:                   e.g.N(),
			M:                   e.g.M(),
			Requests:            e.requests.Load(),
			Rounds:              e.rounds.Load(),
			CacheHits:           e.cacheHits.Load(),
			Coalesced:           e.coalesced.Load(),
			PackComputes:        e.computes.Load(),
			StoreHits:           e.storeHits.Load(),
			MaxVertexCongestion: e.maxVCong.Load(),
			MaxEdgeCongestion:   e.maxECong.Load(),
			FaultedRequests:     e.faultedRequests.Load(),
			MessagesLost:        e.messagesLost.Load(),
			Retries:             e.retries.Load(),
			DeliveredFraction:   deliveredFraction(gd, ge),
		})
	}
	return st
}

// deliveredFraction reports delivered/expected, defaulting to 1 before
// any faulted demand has been served (nothing was expected, nothing was
// lost).
func deliveredFraction(delivered, expected uint64) float64 {
	if expected == 0 {
		return 1
	}
	return float64(delivered) / float64(expected)
}
