// Package serve is the concurrent decomposition-and-broadcast service:
// the layer that turns the packers and the cast.Scheduler handle into a
// system that accepts traffic. It provides
//
//   - a graph registry keyed by content hash (registering the same graph
//     twice yields the same id and shares all cached state),
//   - a per-(graph, kind) packing cache with singleflight semantics — N
//     concurrent requests for the same decomposition trigger exactly one
//     cds.Pack / stp.Pack computation, everyone else waits for it,
//   - a sync.Pool of Scheduler clones per cached decomposition, so
//     concurrent demands share the immutable scheduler core and reuse
//     warm per-run buffers (zero steady-state allocations per clone),
//   - bounded-concurrency demand execution with per-graph and global
//     stats (requests, cache hits, rounds, congestion maxima).
//
// The HTTP front end over this service lives in handler.go and is
// served by cmd/serve; the closed-loop load generator in loadgen.go
// drives it for the E6 parallel-throughput benchmark.
package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/cast"
	"repro/internal/cds"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stp"
)

// Kind selects which decomposition a request is served over.
type Kind string

const (
	// Dominating is the Theorem 1.2 dominating-tree packing, served in
	// the V-CONGEST model (Corollary 1.4).
	Dominating Kind = "dominating"
	// Spanning is the Theorem 1.3 spanning-tree packing, served in the
	// E-CONGEST model (Corollary 1.5).
	Spanning Kind = "spanning"
)

func (k Kind) valid() bool { return k == Dominating || k == Spanning }

// Config tunes a Service; the zero value serves with the packers'
// calibrated defaults and a conservative concurrency bound.
type Config struct {
	// MaxConcurrent bounds how many demands execute simultaneously
	// (scheduler rounds are CPU-bound; more in flight than cores just
	// grows clone pools). Default 8.
	MaxConcurrent int
	// PackSeed seeds the packing computations (default 0, packer
	// defaults). Fixed per service so a graph's decomposition is a pure
	// function of its content hash.
	PackSeed uint64
	// Epsilon overrides the spanning-tree packer's ε when it lies in
	// (0, 1); values outside that range fall back to the packer default.
	Epsilon float64
	// MaxMsgsPerDemand bounds a single demand's message count; oversized
	// demands are rejected before any scheduler work. Default 65536.
	MaxMsgsPerDemand int
	// MaxBatch bounds how many demands one BroadcastBatch call may
	// carry; oversized batches are rejected whole. Default 1024.
	MaxBatch int
	// StreamBuffer is the event-bus buffer per streaming subscriber;
	// a subscriber that falls further behind loses its oldest events
	// (drop-oldest, counted in stats). Default 256.
	StreamBuffer int
}

// Service is the concurrent decomposition service. All methods are safe
// for concurrent use.
type Service struct {
	cfg Config
	sem chan struct{} // bounded-concurrency demand execution

	mu     sync.RWMutex // guards graphs, order
	graphs map[string]*graphEntry
	order  []string // registration order, for stable stats listings

	// Global counters.
	requests     atomic.Uint64 // broadcast demands served
	messages     atomic.Uint64 // messages disseminated
	rounds       atomic.Uint64 // scheduler rounds across all demands
	packRequests atomic.Uint64 // decomposition requests (incl. cached)
	packComputes atomic.Uint64 // packings actually computed
	cacheHits    atomic.Uint64 // requests served from a completed cache entry
	coalesced    atomic.Uint64 // requests that waited on an in-flight packing
	maxVCong     atomic.Int64  // max per-demand vertex congestion seen
	maxECong     atomic.Int64  // max per-demand edge congestion seen

	// Chaos-mode counters (faulted broadcasts only). The delivered/
	// expected pair lives behind one mutex so a Stats snapshot can never
	// observe expected bumped without its delivered half (a torn read
	// would report a transiently wrong delivered fraction).
	faultedRequests atomic.Uint64 // faulted demands served
	messagesLost    atomic.Uint64 // messages given up after retries
	retries         atomic.Uint64 // surviving-tree reroutes performed
	pairs           pairCount     // (message, live vertex) delivery targets vs achieved

	// Streaming path.
	bus           *eventBus
	batchSeq      atomic.Uint64 // batch-id allocator (ids start at 1)
	eventsDropped atomic.Uint64 // events lost to the slow-subscriber policy
}

// pairCount is the (delivered, expected) chaos accounting pair. Both
// halves move together under one lock: BroadcastFaulted adds them as a
// unit and Stats loads them as a unit, so every snapshot sees a
// consistent delivered fraction.
type pairCount struct {
	mu        sync.Mutex // guards delivered, expected
	delivered uint64
	expected  uint64
}

func (p *pairCount) add(delivered, expected int) {
	p.mu.Lock()
	p.delivered += uint64(delivered)
	p.expected += uint64(expected)
	p.mu.Unlock()
}

func (p *pairCount) load() (delivered, expected uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delivered, p.expected
}

// graphEntry is one registered graph with its per-kind packing cache
// and stats.
type graphEntry struct {
	id string
	g  *graph.Graph

	mu    sync.Mutex // guards packs
	packs map[Kind]*packEntry

	requests  atomic.Uint64
	rounds    atomic.Uint64
	cacheHits atomic.Uint64
	coalesced atomic.Uint64
	computes  atomic.Uint64
	maxVCong  atomic.Int64
	maxECong  atomic.Int64

	faultedRequests atomic.Uint64
	messagesLost    atomic.Uint64
	retries         atomic.Uint64
	pairs           pairCount
}

// packEntry is one cached decomposition: the singleflight slot, the
// prototype scheduler whose immutable core every pooled clone shares,
// and the clone pool itself. done is closed once the leader finished
// (successfully or not); proto/trees/size/err are written only before
// that close, so followers read them race-free after <-done.
type packEntry struct {
	done  chan struct{}
	proto *cast.Scheduler
	pool  sync.Pool
	trees int
	size  float64
	err   error
}

// New builds an empty service.
func New(cfg Config) *Service {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
	}
	if cfg.MaxMsgsPerDemand <= 0 {
		cfg.MaxMsgsPerDemand = 65536
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.StreamBuffer <= 0 {
		cfg.StreamBuffer = 256
	}
	s := &Service{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		graphs: make(map[string]*graphEntry),
	}
	s.bus = newEventBus(&s.eventsDropped)
	return s
}

// GraphID is the registry key: a content hash over the canonical
// (sorted, deduplicated) edge list, so isomorphic inputs with the same
// labeling always map to the same entry regardless of edge order or
// duplicates in the request.
func GraphID(g *graph.Graph) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.N()))
	h.Write(buf[:])
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint32(buf[:4], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
		h.Write(buf[:])
	}
	return fmt.Sprintf("g%016x", h.Sum64())
}

// Register adds a graph from an edge list (duplicates and self-loops
// dropped, as in decomp.NewGraph) and returns its content-hash id.
// Registering an already-known graph is an idempotent no-op returning
// the existing id. Edge endpoints are validated against [0, n) here:
// this is the network-facing entry point, and the graph builder treats
// out-of-range endpoints as a programming error (panic).
func (s *Service) Register(n int, edges [][2]int) (string, error) {
	if n <= 0 {
		return "", fmt.Errorf("serve: graph must have n > 0 vertices (got %d)", n)
	}
	for i, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return "", fmt.Errorf("serve: edge %d (%d,%d) out of range [0,%d)", i, e[0], e[1], n)
		}
	}
	return s.RegisterGraph(graph.FromEdgeList(n, edges))
}

// RegisterGraph registers an already-built graph (the in-process path
// used by the load generator and benchmarks) and returns its id. An id
// hit is verified against the stored graph's canonical edge list, so a
// content-hash collision between distinct graphs surfaces as an error
// instead of silently serving one graph's decomposition for another.
func (s *Service) RegisterGraph(g *graph.Graph) (string, error) {
	id := GraphID(g)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.graphs[id]; ok {
		if !sameGraph(e.g, g) {
			return "", fmt.Errorf("serve: graph id collision on %s (registry holds a different graph)", id)
		}
		return id, nil
	}
	s.graphs[id] = &graphEntry{id: id, g: g, packs: make(map[Kind]*packEntry)}
	s.order = append(s.order, id)
	return id, nil
}

// sameGraph compares canonical (sorted, deduped) edge lists.
func sameGraph(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	be := b.Edges()
	for i, e := range a.Edges() {
		if e != be[i] {
			return false
		}
	}
	return true
}

// Graph returns a registered graph by id.
func (s *Service) Graph(id string) (*graph.Graph, bool) {
	e, ok := s.lookup(id)
	if !ok {
		return nil, false
	}
	return e.g, true
}

func (s *Service) lookup(id string) (*graphEntry, bool) {
	s.mu.RLock()
	e, ok := s.graphs[id]
	s.mu.RUnlock()
	return e, ok
}

// DecompInfo describes a cached (or just-computed) decomposition.
type DecompInfo struct {
	GraphID string  `json:"graph_id"`
	Kind    Kind    `json:"kind"`
	Trees   int     `json:"trees"`
	Size    float64 `json:"size"`
	// Cached reports whether this request was served from the cache
	// (false exactly for the one request that triggered the packing).
	Cached bool `json:"cached"`
}

// Decompose returns the graph's decomposition of the given kind,
// computing and caching it on first request. Concurrent first requests
// singleflight: exactly one runs the packer, the rest block until it
// finishes and share the result (or its error, which is cached too —
// the packers are deterministic, so retrying cannot help). On error the
// returned info is zero: a failed packing has no trees or size to report.
func (s *Service) Decompose(id string, kind Kind) (DecompInfo, error) {
	e, ok := s.lookup(id)
	if !ok {
		return DecompInfo{}, fmt.Errorf("serve: unknown graph %q", id)
	}
	pe, hit, err := s.pack(e, kind)
	if err != nil {
		return DecompInfo{}, err
	}
	if pe.err != nil {
		return DecompInfo{}, pe.err
	}
	return DecompInfo{GraphID: id, Kind: kind, Trees: pe.trees, Size: pe.size, Cached: hit}, nil
}

// pack is the singleflight packing cache: the first caller for a
// (graph, kind) becomes the leader and computes; everyone else waits on
// the entry's done channel. hit reports whether this caller avoided the
// computation. A follower that finds the entry already complete is a
// true cache hit; one that has to block the full pack duration behind
// the in-flight leader is counted as coalesced instead — the two tell
// very different latency stories and the stats keep them apart.
func (s *Service) pack(e *graphEntry, kind Kind) (*packEntry, bool, error) {
	if !kind.valid() {
		return nil, false, fmt.Errorf("serve: unknown decomposition kind %q", kind)
	}
	s.packRequests.Add(1)
	e.mu.Lock()
	if pe, ok := e.packs[kind]; ok {
		e.mu.Unlock()
		select {
		case <-pe.done:
			s.cacheHits.Add(1)
			e.cacheHits.Add(1)
		default:
			s.coalesced.Add(1)
			e.coalesced.Add(1)
			<-pe.done
		}
		return pe, true, nil
	}
	pe := &packEntry{done: make(chan struct{})}
	e.packs[kind] = pe
	e.mu.Unlock()

	s.packComputes.Add(1)
	e.computes.Add(1)
	pe.trees, pe.size, pe.proto, pe.err = s.compute(e.g, kind)
	if pe.proto != nil {
		proto := pe.proto
		pe.pool.New = func() any { return proto.Clone() }
	}
	close(pe.done)
	return pe, false, nil
}

// compute runs the packer for the kind and builds the prototype
// scheduler whose core all pooled clones will share.
func (s *Service) compute(g *graph.Graph, kind Kind) (int, float64, *cast.Scheduler, error) {
	var (
		trees []cast.WeightedTree
		size  float64
		model sim.Model
	)
	switch kind {
	case Dominating:
		p, err := cds.Pack(g, cds.Options{Seed: s.cfg.PackSeed})
		if err != nil {
			return 0, 0, nil, fmt.Errorf("serve: dominating-tree packing: %w", err)
		}
		trees = make([]cast.WeightedTree, len(p.Trees))
		for i, t := range p.Trees {
			trees[i] = cast.WeightedTree{Tree: t.Tree, Weight: t.Weight}
		}
		size = p.Size()
		model = sim.VCongest
	case Spanning:
		p, err := stp.Pack(g, stp.Options{Seed: s.cfg.PackSeed, Epsilon: s.cfg.Epsilon})
		if err != nil {
			return 0, 0, nil, fmt.Errorf("serve: spanning-tree packing: %w", err)
		}
		trees = make([]cast.WeightedTree, len(p.Trees))
		for i, t := range p.Trees {
			trees[i] = cast.WeightedTree{Tree: t.Tree, Weight: t.Weight}
		}
		size = p.Size()
		model = sim.ECongest
	}
	sched, err := cast.NewScheduler(g, trees, model)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("serve: scheduler construction: %w", err)
	}
	return len(trees), size, sched, nil
}

// Broadcast serves one demand over the graph's cached decomposition
// (packing it first if needed): a Scheduler clone is checked out of the
// pool, the demand runs under the service's concurrency bound, and the
// result is identical to a serial cast Run with the same (demand, seed).
func (s *Service) Broadcast(id string, kind Kind, sources []int, seed uint64) (cast.Result, error) {
	return s.BroadcastContext(context.Background(), id, kind, sources, seed)
}

// BroadcastContext is Broadcast with request-level cancellation: a done
// context aborts both the wait for an execution slot and the scheduler
// round loop itself, and in either case the slot is released and the
// clone returned to its pool, so a client disconnect mid-broadcast
// never leaks service capacity.
func (s *Service) BroadcastContext(ctx context.Context, id string, kind Kind, sources []int, seed uint64) (cast.Result, error) {
	e, pe, err := s.checkoutDemand(id, kind, sources)
	if err != nil {
		return cast.Result{}, err
	}
	res, err := s.runDemand(ctx, pe, func(c *cast.Scheduler) (cast.Result, error) {
		return c.RunContext(ctx, cast.Demand{Sources: sources}, seed)
	})
	if err != nil {
		return cast.Result{}, err
	}
	s.recordDemand(e, len(sources), res)
	return res, nil
}

// BroadcastFaulted serves one demand under a fault plan. Partial
// delivery is a structured FaultResult, never an error — errors are
// reserved for unknown graphs/kinds, invalid demands or plans, and
// cancellation — so a chaos run can never poison the packing cache or
// be mistaken for a service failure.
func (s *Service) BroadcastFaulted(ctx context.Context, id string, kind Kind, sources []int, seed uint64, plan cast.FaultPlan) (cast.FaultResult, error) {
	e, pe, err := s.checkoutDemand(id, kind, sources)
	if err != nil {
		return cast.FaultResult{}, err
	}
	var res cast.FaultResult
	_, err = s.runDemand(ctx, pe, func(c *cast.Scheduler) (cast.Result, error) {
		var ferr error
		res, ferr = c.RunFaultedContext(ctx, cast.Demand{Sources: sources}, seed, plan)
		return res.Result, ferr
	})
	if err != nil {
		return cast.FaultResult{}, err
	}
	s.recordDemand(e, len(sources), res.Result)
	s.faultedRequests.Add(1)
	e.faultedRequests.Add(1)
	s.messagesLost.Add(uint64(res.MessagesLost))
	e.messagesLost.Add(uint64(res.MessagesLost))
	s.retries.Add(uint64(res.Retries))
	e.retries.Add(uint64(res.Retries))
	s.pairs.add(res.PairsDelivered, res.PairsExpected)
	e.pairs.add(res.PairsDelivered, res.PairsExpected)
	return res, nil
}

// checkoutDemand validates a demand and resolves its packing cache
// entry (computing the decomposition if needed).
func (s *Service) checkoutDemand(id string, kind Kind, sources []int) (*graphEntry, *packEntry, error) {
	e, ok := s.lookup(id)
	if !ok {
		return nil, nil, fmt.Errorf("serve: unknown graph %q", id)
	}
	if err := s.validateSources(e, sources); err != nil {
		return nil, nil, err
	}
	pe, _, err := s.pack(e, kind)
	if err != nil {
		return nil, nil, err
	}
	if pe.err != nil {
		return nil, nil, pe.err
	}
	return e, pe, nil
}

// validateSources checks one demand's source list against the graph and
// the per-demand message bound (the demand-level half of checkout, also
// applied per entry by the batch path).
func (s *Service) validateSources(e *graphEntry, sources []int) error {
	if len(sources) == 0 {
		return fmt.Errorf("serve: empty demand")
	}
	if len(sources) > s.cfg.MaxMsgsPerDemand {
		return fmt.Errorf("serve: demand of %d messages exceeds limit %d", len(sources), s.cfg.MaxMsgsPerDemand)
	}
	for i, src := range sources {
		if src < 0 || src >= e.g.N() {
			return fmt.Errorf("serve: source %d out of range [0,%d) at index %d", src, e.g.N(), i)
		}
	}
	return nil
}

// runDemand executes one demand under the concurrency bound with a
// pooled clone, releasing both slot and clone on every path (a clone's
// buffers are cleared at Run entry, so a cancelled clone is pool-safe).
func (s *Service) runDemand(ctx context.Context, pe *packEntry, run func(*cast.Scheduler) (cast.Result, error)) (cast.Result, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return cast.Result{}, ctx.Err()
	}
	c := pe.pool.Get().(*cast.Scheduler)
	res, err := run(c)
	pe.pool.Put(c)
	<-s.sem
	if err != nil {
		return cast.Result{}, err
	}
	return res, nil
}

// recordDemand folds one served demand into the global and per-graph
// counters.
func (s *Service) recordDemand(e *graphEntry, msgs int, res cast.Result) {
	s.requests.Add(1)
	e.requests.Add(1)
	s.messages.Add(uint64(msgs))
	s.rounds.Add(uint64(res.Rounds))
	e.rounds.Add(uint64(res.Rounds))
	maxInt64(&s.maxVCong, int64(res.MaxVertexCongestion))
	maxInt64(&e.maxVCong, int64(res.MaxVertexCongestion))
	maxInt64(&s.maxECong, int64(res.MaxEdgeCongestion))
	maxInt64(&e.maxECong, int64(res.MaxEdgeCongestion))
}

// maxInt64 lifts m to at least v.
func maxInt64(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// GraphStats is the per-graph slice of the service counters.
type GraphStats struct {
	ID                  string `json:"id"`
	N                   int    `json:"n"`
	M                   int    `json:"m"`
	Requests            uint64 `json:"requests"`
	Rounds              uint64 `json:"rounds"`
	CacheHits           uint64 `json:"cache_hits"`
	Coalesced           uint64 `json:"coalesced"`
	PackComputes        uint64 `json:"pack_computes"`
	MaxVertexCongestion int64  `json:"max_vertex_congestion"`
	MaxEdgeCongestion   int64  `json:"max_edge_congestion"`
	// Chaos-mode counters: faulted demands served against this graph,
	// their reroutes and losses, and the achieved delivered fraction
	// across all of them (1 when no faulted demand has been served).
	FaultedRequests   uint64  `json:"faulted_requests"`
	MessagesLost      uint64  `json:"messages_lost"`
	Retries           uint64  `json:"retries"`
	DeliveredFraction float64 `json:"delivered_fraction"`
}

// Stats is a snapshot of the service counters.
type Stats struct {
	Graphs       int    `json:"graphs"`
	Requests     uint64 `json:"requests"`
	Messages     uint64 `json:"messages"`
	Rounds       uint64 `json:"rounds"`
	PackRequests uint64 `json:"pack_requests"`
	PackComputes uint64 `json:"pack_computes"`
	// CacheHits counts decomposition requests served from a completed
	// cache entry; Coalesced the ones that had to wait out an in-flight
	// packing (singleflight followers). Hits are cheap, coalesced
	// requests pay the full pack latency — the split keeps the two
	// distinguishable in latency analysis.
	CacheHits           uint64  `json:"cache_hits"`
	Coalesced           uint64  `json:"coalesced"`
	MaxVertexCongestion int64   `json:"max_vertex_congestion"`
	MaxEdgeCongestion   int64   `json:"max_edge_congestion"`
	FaultedRequests     uint64  `json:"faulted_requests"`
	MessagesLost        uint64  `json:"messages_lost"`
	Retries             uint64  `json:"retries"`
	DeliveredFraction   float64 `json:"delivered_fraction"`
	// EventsDropped counts streaming events lost to the slow-subscriber
	// drop-oldest policy across all subscribers.
	EventsDropped uint64       `json:"events_dropped"`
	PerGraph      []GraphStats `json:"per_graph"`
}

// Stats snapshots the global and per-graph counters (per-graph entries
// in registration order).
func (s *Service) Stats() Stats {
	s.mu.RLock()
	entries := make([]*graphEntry, 0, len(s.order))
	for _, id := range s.order {
		entries = append(entries, s.graphs[id])
	}
	s.mu.RUnlock()
	delivered, expected := s.pairs.load()
	st := Stats{
		Graphs:              len(entries),
		Requests:            s.requests.Load(),
		Messages:            s.messages.Load(),
		Rounds:              s.rounds.Load(),
		PackRequests:        s.packRequests.Load(),
		PackComputes:        s.packComputes.Load(),
		CacheHits:           s.cacheHits.Load(),
		Coalesced:           s.coalesced.Load(),
		MaxVertexCongestion: s.maxVCong.Load(),
		MaxEdgeCongestion:   s.maxECong.Load(),
		FaultedRequests:     s.faultedRequests.Load(),
		MessagesLost:        s.messagesLost.Load(),
		Retries:             s.retries.Load(),
		DeliveredFraction:   deliveredFraction(delivered, expected),
		EventsDropped:       s.eventsDropped.Load(),
	}
	for _, e := range entries {
		gd, ge := e.pairs.load()
		st.PerGraph = append(st.PerGraph, GraphStats{
			ID:                  e.id,
			N:                   e.g.N(),
			M:                   e.g.M(),
			Requests:            e.requests.Load(),
			Rounds:              e.rounds.Load(),
			CacheHits:           e.cacheHits.Load(),
			Coalesced:           e.coalesced.Load(),
			PackComputes:        e.computes.Load(),
			MaxVertexCongestion: e.maxVCong.Load(),
			MaxEdgeCongestion:   e.maxECong.Load(),
			FaultedRequests:     e.faultedRequests.Load(),
			MessagesLost:        e.messagesLost.Load(),
			Retries:             e.retries.Load(),
			DeliveredFraction:   deliveredFraction(gd, ge),
		})
	}
	return st
}

// deliveredFraction reports delivered/expected, defaulting to 1 before
// any faulted demand has been served (nothing was expected, nothing was
// lost).
func deliveredFraction(delivered, expected uint64) float64 {
	if expected == 0 {
		return 1
	}
	return float64(delivered) / float64(expected)
}
