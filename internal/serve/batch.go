// The batched demand path: N demands against one graph resolved with a
// single registry lookup and a single packing-cache checkout, executed
// concurrently under the service's existing semaphore with one pooled
// Scheduler clone per in-flight demand, and folded into the stats with
// one amortized update per batch instead of one per demand. A demand
// that fails validation or is cancelled becomes a structured entry in
// the result array — only request-level problems (unknown graph or
// kind, empty or oversized batch, a cached packing error) fail the
// batch as a whole. Every batch also publishes per-demand completion
// events and a terminal summary on the service event bus, which is what
// the streaming HTTP mode consumes.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cast"
	"repro/internal/obs"
)

// BatchDemand is one demand of a batch: a source list and the seed its
// tree assignment draws from (so a batch is replayable entry for entry).
type BatchDemand struct {
	Sources []int  `json:"sources"`
	Seed    uint64 `json:"seed"`
}

// BatchEntry is one demand's outcome. Exactly one of Result and Error
// is set.
type BatchEntry struct {
	Index  int          `json:"index"`
	Result *cast.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// BatchSummary aggregates a batch.
type BatchSummary struct {
	Demands   int `json:"demands"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	// Messages and Rounds sum over the succeeded entries only.
	Messages int    `json:"messages"`
	Rounds   uint64 `json:"rounds"`
}

// BatchResult is a batch's structured outcome: one entry per demand, in
// demand order, plus the summary the terminal stream event carries.
type BatchResult struct {
	BatchID uint64       `json:"batch_id"`
	Entries []BatchEntry `json:"entries"`
	Summary BatchSummary `json:"summary"`
}

// BroadcastBatch serves a batch of demands over the graph's cached
// decomposition. Individual demand failures (bad sources, oversized
// demand, cancellation mid-batch) are entries, not errors; the error
// return is reserved for request-level rejection. The packing cache is
// consulted exactly once for the whole batch.
func (s *Service) BroadcastBatch(ctx context.Context, id string, kind Kind, demands []BatchDemand) (BatchResult, error) {
	e, pe, err := s.prepareBatch(ctx, id, kind, demands)
	if err != nil {
		return BatchResult{}, err
	}
	return s.runBatch(ctx, e, pe, demands, s.batchSeq.Add(1)), nil
}

// prepareBatch performs the request-level half of a batch: registry
// lookup, kind/size validation, and the single packing-cache checkout.
// The streaming handler calls it separately so request errors surface
// as proper HTTP statuses before the first streamed byte. The registry
// and leader-side pack phases land on the context's trace, and the
// accepted batch size is observed once per batch.
func (s *Service) prepareBatch(ctx context.Context, id string, kind Kind, demands []BatchDemand) (*graphEntry, *packEntry, error) {
	tr := obs.FromContext(ctx)
	start := time.Now()
	e, ok := s.lookup(id)
	if !ok {
		return nil, nil, fmt.Errorf("serve: unknown graph %q", id)
	}
	if len(demands) == 0 {
		return nil, nil, fmt.Errorf("serve: empty batch")
	}
	if len(demands) > s.cfg.MaxBatch {
		return nil, nil, fmt.Errorf("serve: batch of %d demands exceeds limit %d", len(demands), s.cfg.MaxBatch)
	}
	s.observePhase(tr, phaseRegistry, start)
	s.batchHist.Observe(int64(len(demands)))
	pe, _, err := s.pack(tr, e, kind)
	if err != nil {
		return nil, nil, err
	}
	if pe.err != nil {
		return nil, nil, pe.err
	}
	return e, pe, nil
}

// runBatch executes a prepared batch: every valid entry runs under the
// service semaphore on a pooled clone, completion events are published
// as demands finish, stats are folded once at the end, and the terminal
// summary event closes the batch's stream.
func (s *Service) runBatch(ctx context.Context, e *graphEntry, pe *packEntry, demands []BatchDemand, batchID uint64) BatchResult {
	entries := make([]BatchEntry, len(demands))
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex // guards the aggregate below
		agg struct {
			succeeded, messages int
			rounds              uint64
			maxV, maxE          int64
		}
	)
	for i := range demands {
		entries[i].Index = i
		d := demands[i]
		if err := s.validateSources(e, d.Sources); err != nil {
			entries[i].Error = err.Error()
			s.bus.publish(BatchEvent{BatchID: batchID, Type: EventDemand, Index: i, Error: entries[i].Error})
			continue
		}
		wg.Add(1)
		go func(i int, d BatchDemand) {
			defer wg.Done()
			res, err := s.runDemand(ctx, pe, func(c *cast.Scheduler) (cast.Result, error) {
				return c.RunContext(ctx, cast.Demand{Sources: d.Sources}, d.Seed)
			})
			if err != nil {
				entries[i].Error = err.Error()
				s.bus.publish(BatchEvent{BatchID: batchID, Type: EventDemand, Index: i, Error: entries[i].Error})
				return
			}
			entries[i].Result = &res
			mu.Lock()
			agg.succeeded++
			agg.messages += len(d.Sources)
			agg.rounds += uint64(res.Rounds)
			agg.maxV = max(agg.maxV, int64(res.MaxVertexCongestion))
			agg.maxE = max(agg.maxE, int64(res.MaxEdgeCongestion))
			mu.Unlock()
			s.bus.publish(BatchEvent{BatchID: batchID, Type: EventDemand, Index: i, Messages: len(d.Sources), Result: &res})
		}(i, d)
	}
	wg.Wait()

	// Amortized stats: one update per counter for the whole batch.
	if agg.succeeded > 0 {
		s.requests.Add(uint64(agg.succeeded))
		e.requests.Add(uint64(agg.succeeded))
		s.messages.Add(uint64(agg.messages))
		s.rounds.Add(agg.rounds)
		e.rounds.Add(agg.rounds)
		maxInt64(&s.maxVCong, agg.maxV)
		maxInt64(&e.maxVCong, agg.maxV)
		maxInt64(&s.maxECong, agg.maxE)
		maxInt64(&e.maxECong, agg.maxE)
	}
	summary := BatchSummary{
		Demands:   len(demands),
		Succeeded: agg.succeeded,
		Failed:    len(demands) - agg.succeeded,
		Messages:  agg.messages,
		Rounds:    agg.rounds,
	}
	s.bus.publish(BatchEvent{BatchID: batchID, Type: EventSummary, Summary: &summary})
	return BatchResult{BatchID: batchID, Entries: entries, Summary: summary}
}
