package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Request phases instrumented on the serving path. Each phase gets one
// latency histogram and, when the request carries a trace, one span.
const (
	phaseRegistry  = iota // registry lookup + demand validation
	phaseStoreLoad        // snapshot store load + oracle verification
	phasePack             // packer run + scheduler construction
	phaseClone            // scheduler clone checkout from the pool
	phaseRun              // scheduler round loop
	phasePersist          // write-behind snapshot capture + save
	numPhases
)

// phaseNames are the span names and the histogram name stems.
var phaseNames = [numPhases]string{"registry", "store_load", "pack", "clone", "run", "persist"}

// PackProfile is the packer-internal instrumentation of one computed
// decomposition: which algorithm ran and what its inner loops did. It
// is attached to DecompInfo for the request that computed the packing
// and to that request's trace, so a slow pack is explainable from the
// traces endpoint alone. Spanning-kind profiles fill the MWU fields,
// dominating-kind profiles the layer-assignment fields.
type PackProfile struct {
	// Kind is the decomposition kind the profile describes; Trees the
	// packed tree count; MaxLoad the packer's load diagnostic (max_e z_e
	// for spanning, max per-vertex class count for dominating).
	Kind    Kind    `json:"kind"`
	Trees   int     `json:"trees"`
	MaxLoad float64 `json:"max_load"`

	// Spanning: MWU iterations, the exact-vs-skipped split of the
	// Lemma F.1 stop tests, signature-index tree dedups, and the
	// Section 5.2 subgraph sampling outcome.
	Iterations        int `json:"iterations,omitempty"`
	StopChecksExact   int `json:"stop_checks_exact,omitempty"`
	StopChecksSkipped int `json:"stop_checks_skipped,omitempty"`
	DedupHits         int `json:"dedup_hits,omitempty"`
	Subgraphs         int `json:"subgraphs,omitempty"`
	SubgraphsPacked   int `json:"subgraphs_packed,omitempty"`

	// Dominating: virtual layers, classes attempted vs valid, and the
	// bridging-graph matching outcome across all recursive layers.
	Layers       int `json:"layers,omitempty"`
	Classes      int `json:"classes,omitempty"`
	ValidClasses int `json:"valid_classes,omitempty"`
	Matched      int `json:"matched,omitempty"`
	Unmatched    int `json:"unmatched,omitempty"`
}

// initObs builds the service's metric registry and trace ring. Called
// once from New before the service is published, so the registrations
// need no locking.
func (s *Service) initObs() {
	s.traces = obs.NewRing(s.cfg.TraceRing)
	r := obs.NewRegistry()
	s.metrics = r

	counter := func(name, help string, v *atomic.Uint64) {
		r.Counter(name, help, v.Load)
	}
	counter("repro_serve_requests_total", "Broadcast demands served.", &s.requests)
	counter("repro_serve_messages_total", "Messages disseminated.", &s.messages)
	counter("repro_serve_rounds_total", "Scheduler rounds across all demands.", &s.rounds)
	counter("repro_serve_pack_requests_total", "Decomposition requests, including cached.", &s.packRequests)
	counter("repro_serve_pack_computes_total", "Packings actually computed.", &s.packComputes)
	counter("repro_serve_cache_hits_total", "Decomposition requests served from a completed cache entry.", &s.cacheHits)
	counter("repro_serve_coalesced_total", "Decomposition requests that waited on an in-flight packing.", &s.coalesced)
	counter("repro_serve_store_hits_total", "Cache misses restored from the snapshot store.", &s.storeHits)
	counter("repro_serve_store_misses_total", "Store lookups that found no snapshot.", &s.storeMisses)
	counter("repro_serve_store_errors_total", "Corrupt or unreadable snapshots and failed saves.", &s.storeErrors)
	counter("repro_serve_evictions_total", "Decompositions evicted by the residency bound.", &s.evictions)
	counter("repro_serve_faulted_requests_total", "Faulted (chaos) demands served.", &s.faultedRequests)
	counter("repro_serve_messages_lost_total", "Messages given up after fault retries.", &s.messagesLost)
	counter("repro_serve_retries_total", "Surviving-tree reroutes performed.", &s.retries)
	counter("repro_serve_events_dropped_total", "Streaming events lost to the slow-subscriber policy.", &s.eventsDropped)
	r.Counter("repro_serve_traces_total", "Request traces recorded.", s.traces.Total)

	r.Gauge("repro_serve_graphs", "Registered graphs.", func() float64 {
		return float64(s.graphCount())
	})
	r.Gauge("repro_serve_resident", "Decompositions currently resident.", func() float64 {
		return float64(s.residentCount())
	})
	r.Gauge("repro_serve_max_vertex_congestion", "Max per-demand vertex congestion seen.", func() float64 {
		return float64(s.maxVCong.Load())
	})
	r.Gauge("repro_serve_max_edge_congestion", "Max per-demand edge congestion seen.", func() float64 {
		return float64(s.maxECong.Load())
	})
	r.Gauge("repro_serve_delivered_fraction", "Achieved delivered fraction across faulted demands.", func() float64 {
		delivered, expected := s.pairs.load()
		return deliveredFraction(delivered, expected)
	})

	for ph := 0; ph < numPhases; ph++ {
		s.phaseHist[ph] = r.Histogram("repro_serve_phase_"+phaseNames[ph]+"_ns",
			"Latency of the "+phaseNames[ph]+" request phase in nanoseconds.")
	}
	s.msgsHist = r.Histogram("repro_serve_demand_messages", "Messages per served demand.")
	s.batchHist = r.Histogram("repro_serve_batch_demands", "Demands per accepted batch.")
}

// Metrics returns the service's metric registry (GET /metrics backs
// onto its Handler).
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// Traces returns the ring of recent request traces (GET /v1/traces
// backs onto its Snapshot).
func (s *Service) Traces() *obs.Ring { return s.traces }

// observePhase folds one completed phase, started at start, into the
// phase histogram and the request's trace (nil trace records nothing).
func (s *Service) observePhase(tr *obs.Trace, ph int, start time.Time) {
	s.phaseHist[ph].Observe(time.Since(start).Nanoseconds())
	tr.Record(phaseNames[ph], start)
}

// graphCount counts registered graphs across all registry segments.
func (s *Service) graphCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.graphs)
		sh.mu.Unlock()
	}
	return n
}

// residentCount counts resident decompositions across all segments.
func (s *Service) residentCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}
