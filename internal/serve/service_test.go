package serve

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cast"
	"repro/internal/cds"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/sim"
)

func testGraph() *graph.Graph { return graph.RandomHamCycles(64, 4, ds.NewRand(7)) }

// mustRegister registers an in-process graph, failing the test on error.
func mustRegister(t *testing.T, s *Service, g *graph.Graph) string {
	t.Helper()
	id, err := s.RegisterGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestRegisterIdempotent pins the content-hash registry: the same graph
// registered twice (even with shuffled/duplicated edges) maps to one
// entry, and distinct graphs map to distinct entries.
func TestRegisterIdempotent(t *testing.T) {
	s := New(Config{})
	g := graph.Hypercube(3)
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	id1, err := s.Register(g.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed order, reversed endpoints, plus duplicates and a self-loop:
	// the canonicalizing builder must hash these to the same graph.
	var shuffled [][2]int
	for i := len(edges) - 1; i >= 0; i-- {
		shuffled = append(shuffled, [2]int{edges[i][1], edges[i][0]})
	}
	shuffled = append(shuffled, edges[0], [2]int{1, 1})
	id2, err := s.Register(g.N(), shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("same graph registered under two ids: %s vs %s", id1, id2)
	}
	if st := s.Stats(); st.Graphs != 1 {
		t.Fatalf("registry holds %d graphs, want 1", st.Graphs)
	}
	id3 := mustRegister(t, s, graph.Hypercube(4))
	if id3 == id1 {
		t.Fatal("distinct graphs collided")
	}
	if _, err := s.Register(0, nil); err == nil {
		t.Fatal("n=0 graph accepted")
	}
	// Out-of-range endpoints must error at the service boundary (the
	// graph builder would panic — unacceptable on the network path).
	for _, bad := range [][2]int{{0, 5}, {-1, 0}, {8, 1}} {
		if _, err := s.Register(4, [][2]int{bad}); err == nil {
			t.Fatalf("out-of-range edge %v accepted", bad)
		}
	}
}

// TestSingleflightPacksOnce is the cache-stampede gate the acceptance
// criteria name: 16 goroutines request the same decomposition
// concurrently, and the packer must run exactly once — one compute, 15
// cache hits, every caller seeing the identical packing.
func TestSingleflightPacksOnce(t *testing.T) {
	for _, kind := range []Kind{Dominating, Spanning} {
		s := New(Config{PackSeed: 1})
		id := mustRegister(t, s, testGraph())
		const callers = 16
		infos := make([]DecompInfo, callers)
		errs := make([]error, callers)
		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				infos[i], errs[i] = s.Decompose(id, kind)
			}(i)
		}
		wg.Wait()
		for i := 0; i < callers; i++ {
			if errs[i] != nil {
				t.Fatalf("kind %s caller %d: %v", kind, i, errs[i])
			}
			if infos[i].Trees != infos[0].Trees || infos[i].Size != infos[0].Size {
				t.Fatalf("kind %s caller %d saw a different packing: %+v vs %+v", kind, i, infos[i], infos[0])
			}
		}
		st := s.Stats()
		if st.PackComputes != 1 {
			t.Fatalf("kind %s: %d packings computed for %d concurrent requests, want exactly 1", kind, st.PackComputes, callers)
		}
		// The 15 followers either raced the leader (coalesced) or arrived
		// after it finished (true cache hit); together they account for
		// every request but the leader's.
		if st.PackRequests != callers || st.CacheHits+st.Coalesced != callers-1 {
			t.Fatalf("kind %s: requests=%d hits=%d coalesced=%d, want %d requests and hits+coalesced=%d",
				kind, st.PackRequests, st.CacheHits, st.Coalesced, callers, callers-1)
		}
		// A sequential re-request against the now-complete entry is a true
		// cache hit, never coalesced.
		if _, err := s.Decompose(id, kind); err != nil {
			t.Fatal(err)
		}
		st2 := s.Stats()
		if st2.CacheHits != st.CacheHits+1 || st2.Coalesced != st.Coalesced {
			t.Fatalf("kind %s: sequential re-request counted hits %d->%d coalesced %d->%d, want a single cache hit",
				kind, st.CacheHits, st2.CacheHits, st.Coalesced, st2.Coalesced)
		}
		if len(st2.PerGraph) != 1 || st2.PerGraph[0].CacheHits+st2.PerGraph[0].Coalesced != callers {
			t.Fatalf("kind %s: per-graph hit accounting wrong: %+v", kind, st2.PerGraph)
		}
	}
}

// TestBroadcastConcurrentMatchesSerial is the service-level determinism
// gate: 8 workers × 16 demands each through the service (pooled clones,
// bounded concurrency) must be byte-identical to a serial replay on one
// scheduler handle built from the same packing.
func TestBroadcastConcurrentMatchesSerial(t *testing.T) {
	g := testGraph()
	s := New(Config{PackSeed: 1, MaxConcurrent: 4})
	id := mustRegister(t, s, g)

	const nWorkers, nDemands = 8, 16
	demands := make([][]cast.Demand, nWorkers)
	for w := range demands {
		demands[w] = make([]cast.Demand, nDemands)
		for d := range demands[w] {
			size := g.N()/2 + (w*nDemands+d)%g.N()
			demands[w][d] = cast.UniformDemand(g.N(), size, ds.NewRand(uint64(500+w*nDemands+d)))
		}
	}
	seed := func(w, d int) uint64 { return uint64(11 + w*nDemands + d) }

	// Serial reference: same packing (same seed), one handle.
	p, err := cds.Pack(g, cds.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	trees := make([]cast.WeightedTree, len(p.Trees))
	for i, tr := range p.Trees {
		trees[i] = cast.WeightedTree{Tree: tr.Tree, Weight: tr.Weight}
	}
	ref, err := cast.NewScheduler(g, trees, sim.VCongest)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]cast.Result, nWorkers)
	for w := range demands {
		want[w] = make([]cast.Result, nDemands)
		for d, dem := range demands[w] {
			r, err := ref.Run(dem, seed(w, d))
			if err != nil {
				t.Fatal(err)
			}
			want[w][d] = r
		}
	}

	got := make([][]cast.Result, nWorkers)
	errs := make([]error, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]cast.Result, nDemands)
			for d, dem := range demands[w] {
				r, err := s.Broadcast(id, Dominating, dem.Sources, seed(w, d))
				if err != nil {
					errs[w] = err
					return
				}
				got[w][d] = r
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < nWorkers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		for d := range got[w] {
			if got[w][d] != want[w][d] {
				t.Fatalf("worker %d demand %d: service %+v != serial %+v", w, d, got[w][d], want[w][d])
			}
		}
	}

	st := s.Stats()
	if st.PackComputes != 1 {
		t.Fatalf("%d packings computed, want 1", st.PackComputes)
	}
	if st.Requests != nWorkers*nDemands {
		t.Fatalf("stats count %d requests, want %d", st.Requests, nWorkers*nDemands)
	}
	if len(st.PerGraph) != 1 || st.PerGraph[0].Requests != nWorkers*nDemands {
		t.Fatalf("per-graph stats wrong: %+v", st.PerGraph)
	}
	if st.Rounds == 0 || st.MaxVertexCongestion == 0 {
		t.Fatalf("rounds/congestion not metered: %+v", st)
	}
}

// TestBroadcastValidation covers the request-boundary errors.
func TestBroadcastValidation(t *testing.T) {
	s := New(Config{})
	id := mustRegister(t, s, graph.Hypercube(3))
	if _, err := s.Broadcast("nope", Dominating, []int{0}, 1); err == nil || !strings.Contains(err.Error(), "unknown graph") {
		t.Fatalf("unknown graph not rejected: %v", err)
	}
	if _, err := s.Broadcast(id, Dominating, nil, 1); err == nil {
		t.Fatal("empty demand accepted")
	}
	if _, err := s.Broadcast(id, Dominating, []int{99}, 1); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := s.Broadcast(id, Kind("triangulating"), []int{0}, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := s.Decompose(id, Kind("triangulating")); err == nil {
		t.Fatal("unknown kind accepted by Decompose")
	}
	if _, err := s.Decompose("nope", Dominating); err == nil {
		t.Fatal("unknown graph accepted by Decompose")
	}
}

// TestPackErrorCached pins that a packing failure is cached like a
// success: the deterministic packer would fail identically on retry, so
// the singleflight slot keeps the error and computes only once.
func TestPackErrorCached(t *testing.T) {
	s := New(Config{})
	// A disconnected graph cannot be packed with spanning trees.
	id := mustRegister(t, s, graph.FromEdgeList(4, [][2]int{{0, 1}, {2, 3}}))
	if _, err := s.Decompose(id, Spanning); err == nil {
		t.Fatal("disconnected graph packed")
	}
	if _, err := s.Broadcast(id, Spanning, []int{0}, 1); err == nil {
		t.Fatal("broadcast over failed packing succeeded")
	}
	// The cached error must come back alone: a populated DecompInfo next
	// to a non-nil error invites callers into using a packing that does
	// not exist.
	info, err := s.Decompose(id, Spanning)
	if err == nil {
		t.Fatal("cached pack error not replayed")
	}
	if info != (DecompInfo{}) {
		t.Fatalf("cached pack error returned populated info: %+v", info)
	}
	if st := s.Stats(); st.PackComputes != 1 {
		t.Fatalf("failed packing recomputed: %d computes", st.PackComputes)
	}
}

// TestGenerateLoad runs the closed loop end to end and checks the
// report's accounting against the service stats.
func TestGenerateLoad(t *testing.T) {
	g := graph.Complete(16)
	s := New(Config{PackSeed: 1, MaxConcurrent: 4})
	id := mustRegister(t, s, g)
	cfg := LoadConfig{GraphID: id, Kind: Spanning, Workers: 4, Demands: 8, MsgsPerDemand: 2 * g.N(), Seed: 3}
	rep, err := GenerateLoad(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Demands != 32 || rep.Messages != 32*2*g.N() {
		t.Fatalf("report miscounts: %+v", rep)
	}
	if rep.Rounds == 0 || rep.MsgsPerRound <= 0 || rep.DemandsPerSec <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	st := s.Stats()
	if st.Requests != 32 || st.Rounds != rep.Rounds {
		t.Fatalf("service stats disagree with report: stats=%+v report=%+v", st, rep)
	}
	if st.PackComputes != 1 {
		t.Fatalf("load run packed %d times, want 1", st.PackComputes)
	}
	// Replayability: the same config on a fresh service yields the same
	// rounds total (demands and seeds are derived, not drawn ad hoc).
	s2 := New(Config{PackSeed: 1, MaxConcurrent: 4})
	cfg.GraphID = mustRegister(t, s2, g)
	rep2, err := GenerateLoad(s2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Rounds != rep.Rounds {
		t.Fatalf("load run not replayable: %d rounds vs %d", rep2.Rounds, rep.Rounds)
	}
	if _, err := GenerateLoad(s, LoadConfig{GraphID: "nope", Kind: Spanning}); err == nil {
		t.Fatal("unknown graph accepted by load generator")
	}
}
