package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestEventBusOrderAndFiltering pins the bus contract a streaming client
// relies on: a subscriber sees its batch's events in publication order
// with strictly increasing Seq, and never sees another batch's events.
func TestEventBusOrderAndFiltering(t *testing.T) {
	var dropped atomic.Uint64
	b := newEventBus(&dropped)
	sub1 := b.subscribe(1, 64)
	subAll := b.subscribe(0, 64)
	defer b.unsubscribe(sub1)
	defer b.unsubscribe(subAll)

	const perBatch = 10
	for i := 0; i < perBatch; i++ {
		b.publish(BatchEvent{BatchID: 1, Type: EventDemand, Index: i})
		b.publish(BatchEvent{BatchID: 2, Type: EventDemand, Index: i})
	}
	b.publish(BatchEvent{BatchID: 1, Type: EventSummary, Summary: &BatchSummary{Demands: perBatch}})

	var got []BatchEvent
	for ev := range sub1.Events() {
		got = append(got, ev)
		if ev.Type == EventSummary {
			break
		}
	}
	if len(got) != perBatch+1 {
		t.Fatalf("batch-1 subscriber received %d events, want %d", len(got), perBatch+1)
	}
	for i, ev := range got {
		if ev.BatchID != 1 {
			t.Fatalf("batch-1 subscriber leaked batch %d event: %+v", ev.BatchID, ev)
		}
		if i > 0 && ev.Seq <= got[i-1].Seq {
			t.Fatalf("Seq not increasing: %d after %d", ev.Seq, got[i-1].Seq)
		}
		if i < perBatch && ev.Index != i {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
	// The wildcard subscriber saw both batches, every event, in Seq order.
	if n := len(subAll.Events()); n != 2*perBatch+1 {
		t.Fatalf("wildcard subscriber buffered %d events, want %d", n, 2*perBatch+1)
	}
	if dropped.Load() != 0 || sub1.Dropped() != 0 {
		t.Fatalf("unfull buffers dropped events: service=%d sub=%d", dropped.Load(), sub1.Dropped())
	}
}

// TestEventBusDropOldest pins the slow-subscriber policy: a full buffer
// loses its oldest events (counted per subscription and service-wide),
// the newest events survive, and the terminal summary — published last
// into a buffer of at least one — is always deliverable.
func TestEventBusDropOldest(t *testing.T) {
	var dropped atomic.Uint64
	b := newEventBus(&dropped)
	const buffer, events = 4, 20
	sub := b.subscribe(7, buffer)
	defer b.unsubscribe(sub)

	for i := 0; i < events; i++ {
		b.publish(BatchEvent{BatchID: 7, Type: EventDemand, Index: i})
	}
	b.publish(BatchEvent{BatchID: 7, Type: EventSummary, Summary: &BatchSummary{}})

	want := uint64(events + 1 - buffer)
	if sub.Dropped() != want || dropped.Load() != want {
		t.Fatalf("dropped sub=%d service=%d, want %d", sub.Dropped(), dropped.Load(), want)
	}
	// What survives is the newest window, ending in the summary.
	var got []BatchEvent
	for len(sub.Events()) > 0 {
		got = append(got, <-sub.Events())
	}
	if len(got) != buffer {
		t.Fatalf("drained %d events from a %d-buffer, want full", len(got), buffer)
	}
	if got[len(got)-1].Type != EventSummary {
		t.Fatalf("summary did not survive drop-oldest: %+v", got)
	}
	for i, ev := range got[:len(got)-1] {
		if ev.Index != events-buffer+1+i {
			t.Fatalf("survivor %d is not the newest window: %+v", i, got)
		}
	}

	// Even a buffer-of-one subscriber (the subscribe floor) ends holding
	// the summary.
	tiny := b.subscribe(8, 0)
	defer b.unsubscribe(tiny)
	for i := 0; i < 5; i++ {
		b.publish(BatchEvent{BatchID: 8, Type: EventDemand, Index: i})
	}
	b.publish(BatchEvent{BatchID: 8, Type: EventSummary, Summary: &BatchSummary{}})
	if ev := <-tiny.Events(); ev.Type != EventSummary {
		t.Fatalf("buffer-of-one subscriber holds %+v, want the summary", ev)
	}
}

// TestEventBusConcurrentPublish hammers the bus from many publishers
// while a consumer drains, pinning that the evict-retry loop terminates
// and accounting stays exact: received + dropped == published.
func TestEventBusConcurrentPublish(t *testing.T) {
	var dropped atomic.Uint64
	b := newEventBus(&dropped)
	sub := b.subscribe(0, 8)

	const publishers, each = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.publish(BatchEvent{BatchID: uint64(p + 1), Type: EventDemand, Index: i})
			}
		}(p)
	}
	var received atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Events() {
			received.Add(1)
		}
	}()
	wg.Wait()
	b.unsubscribe(sub)
	close(sub.ch) // publishers are done and the sub detached; safe to end the drain
	<-done
	if got := received.Load() + sub.Dropped(); got != publishers*each {
		t.Fatalf("received %d + dropped %d = %d, want %d", received.Load(), sub.Dropped(), got, publishers*each)
	}
}
