package cast

import (
	"context"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestFaultBenignPlanMatchesHealthy pins the faulted engines to the
// healthy ones: a plan that kills nothing must reproduce Run's Result
// field for field (rounds, throughput, both congestion meters) and
// report full delivery, in both congestion models.
func TestFaultBenignPlanMatchesHealthy(t *testing.T) {
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		demands := []Demand{AllToAll(g.N()), {Sources: []int{0, 1, 2}}}
		for i, d := range demands {
			seed := uint64(50 + i)
			want, err := s.Run(d, seed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.RunFaulted(d, seed, FaultPlan{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Result != want {
				t.Fatalf("model %v demand %d: benign faulted run %+v != healthy %+v", model, i, got.Result, want)
			}
			if got.DeliveredFraction != 1 || got.MessagesLost != 0 || got.Retries != 0 {
				t.Fatalf("model %v demand %d: benign run reported losses: %+v", model, i, got)
			}
			if got.PairsDelivered != got.PairsExpected || got.PairsExpected != g.N()*len(d.Sources) {
				t.Fatalf("model %v demand %d: benign pair accounting wrong: %+v", model, i, got)
			}
			if got.TreesSurviving != len(trees) {
				t.Fatalf("model %v demand %d: %d/%d trees survive a benign plan", model, i, got.TreesSurviving, len(trees))
			}
		}
	}
}

// TestFaultDeterministicAcrossClones is the determinism gate for
// faulted runs: the same (demand, seed, plan) must produce an identical
// FaultResult on a handle, on a repeat of the same handle, and on a
// Clone — including plans with seeded random kill sets.
func TestFaultDeterministicAcrossClones(t *testing.T) {
	plans := []FaultPlan{
		{Round: 1, RandomEdges: 3, Seed: 99},
		{Round: 0, RandomVertices: 2, RandomEdges: 2, Seed: 7},
		{Round: 2, Edges: []int{0, 5}, Vertices: []int{3}},
	}
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		clone := s.Clone()
		d := AllToAll(g.N())
		for pi, plan := range plans {
			first, err := s.RunFaulted(d, 11, plan)
			if err != nil {
				t.Fatal(err)
			}
			again, err := s.RunFaulted(d, 11, plan)
			if err != nil {
				t.Fatal(err)
			}
			if first != again {
				t.Fatalf("model %v plan %d: repeat diverged: %+v vs %+v", model, pi, first, again)
			}
			cloned, err := clone.RunFaulted(d, 11, plan)
			if err != nil {
				t.Fatal(err)
			}
			if first != cloned {
				t.Fatalf("model %v plan %d: clone diverged: %+v vs %+v", model, pi, first, cloned)
			}
		}
		// A healthy Run after faulted runs must be untouched by the fault
		// scratch state.
		h1, err := s.Run(d, 11)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := clone.Clone().Run(d, 11)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("model %v: healthy run diverged after faulted runs: %+v vs %+v", model, h1, h2)
		}
	}
}

// TestFaultAccountingInvariants spot-checks the delivery arithmetic
// under real damage across both models and a sweep of kill counts.
func TestFaultAccountingInvariants(t *testing.T) {
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		d := AllToAll(g.N())
		for kills := 0; kills <= g.M()/2; kills += max(1, g.M()/8) {
			plan := FaultPlan{Round: 1, RandomEdges: kills, Seed: uint64(kills) + 1}
			res, err := s.RunFaulted(d, 13, plan)
			if err != nil {
				t.Fatal(err)
			}
			if res.FailedEdges != kills {
				t.Fatalf("model %v kills=%d: FailedEdges=%d", model, kills, res.FailedEdges)
			}
			if res.PairsDelivered > res.PairsExpected {
				t.Fatalf("model %v kills=%d: delivered %d > expected %d", model, kills, res.PairsDelivered, res.PairsExpected)
			}
			if res.MessagesDelivered+res.MessagesLost != len(d.Sources) {
				t.Fatalf("model %v kills=%d: delivered %d + lost %d != %d messages", model, kills, res.MessagesDelivered, res.MessagesLost, len(d.Sources))
			}
			want := float64(res.PairsDelivered) / float64(res.PairsExpected)
			if res.DeliveredFraction != want {
				t.Fatalf("model %v kills=%d: fraction %v != %d/%d", model, kills, res.DeliveredFraction, res.PairsDelivered, res.PairsExpected)
			}
			if res.TreesSurviving < 0 || res.TreesSurviving > len(trees) {
				t.Fatalf("model %v kills=%d: TreesSurviving=%d of %d", model, kills, res.TreesSurviving, len(trees))
			}
		}
	}
}

// TestFaultVertexKillExcludesTargets pins the "surviving vertices"
// accounting: dead vertices are not delivery targets, so expected pairs
// shrink accordingly, and killing a non-source vertex on a well-
// connected graph still yields full delivery to the survivors.
func TestFaultVertexKillExcludesTargets(t *testing.T) {
	g := graph.Hypercube(4)
	trees := spanTrees(t, g, 5)
	s, err := NewScheduler(g, trees, sim.ECongest)
	if err != nil {
		t.Fatal(err)
	}
	d := Demand{Sources: []int{0, 1, 2, 3}}
	res, err := s.RunFaulted(d, 3, FaultPlan{Round: 1, Vertices: []int{9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedVertices != 1 {
		t.Fatalf("FailedVertices=%d, want 1", res.FailedVertices)
	}
	if res.PairsExpected != len(d.Sources)*(g.N()-1) {
		t.Fatalf("PairsExpected=%d, want %d", res.PairsExpected, len(d.Sources)*(g.N()-1))
	}
	// A single vertex failure is far below the hypercube's connectivity:
	// rerouting over surviving structure must deliver everything.
	if res.DeliveredFraction != 1 {
		t.Fatalf("one dead vertex lost traffic: %+v", res)
	}
	// Spanning trees all contain the dead vertex, so none survive whole.
	if res.TreesSurviving != 0 {
		t.Fatalf("TreesSurviving=%d with a dead vertex under spanning trees", res.TreesSurviving)
	}
}

// TestFaultFullDeliveryBelowConnectivity is the paper's robustness
// claim in miniature: killing a handful of edges of a highly connected
// graph (far below the connectivity bound) must still deliver every
// message to every surviving vertex via rerouting.
func TestFaultFullDeliveryBelowConnectivity(t *testing.T) {
	g := graph.Complete(16) // λ = 15
	trees := spanTrees(t, g, 1)
	s, err := NewScheduler(g, trees, sim.ECongest)
	if err != nil {
		t.Fatal(err)
	}
	d := AllToAll(g.N())
	for _, kills := range []int{1, 3, 5} {
		res, err := s.RunFaulted(d, 17, FaultPlan{Round: 1, RandomEdges: kills, Seed: uint64(kills)})
		if err != nil {
			t.Fatal(err)
		}
		if res.DeliveredFraction != 1 {
			t.Fatalf("kills=%d (λ=15): lost traffic: %+v", kills, res)
		}
	}
}

// TestFaultPlanValidation rejects malformed plans.
func TestFaultPlanValidation(t *testing.T) {
	g := graph.Complete(4)
	tr := graph.TreeFromBFS(g, 0)
	s, err := NewScheduler(g, []WeightedTree{{Tree: tr, Weight: 1}}, sim.VCongest)
	if err != nil {
		t.Fatal(err)
	}
	d := AllToAll(4)
	bad := []FaultPlan{
		{Round: -1},
		{Edges: []int{g.M()}},
		{Edges: []int{-1}},
		{Vertices: []int{4}},
		{Vertices: []int{-2}},
		{RandomEdges: -1},
		{RandomVertices: -3},
	}
	for i, plan := range bad {
		if _, err := s.RunFaulted(d, 1, plan); err == nil {
			t.Fatalf("plan %d (%+v) accepted", i, plan)
		}
	}
	if _, err := s.RunFaulted(Demand{}, 1, FaultPlan{}); err == nil {
		t.Fatal("empty demand accepted")
	}
}

// TestRunContextCancellation covers the cooperative-cancellation paths:
// an already-cancelled context aborts healthy and faulted runs with the
// context's error, and the handle remains usable afterwards.
func TestRunContextCancellation(t *testing.T) {
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		d := AllToAll(g.N())
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.RunContext(ctx, d, 1); err != context.Canceled {
			t.Fatalf("model %v: RunContext with cancelled ctx: err=%v", model, err)
		}
		if _, err := s.RunFaultedContext(ctx, d, 1, FaultPlan{Round: 1, RandomEdges: 1, Seed: 1}); err != context.Canceled {
			t.Fatalf("model %v: RunFaultedContext with cancelled ctx: err=%v", model, err)
		}
		// The handle must recover fully: a healthy run after cancellation
		// matches a fresh clone's.
		got, err := s.Run(d, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Clone().Run(d, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("model %v: post-cancel run diverged: %+v vs %+v", model, got, want)
		}
	}
}

// TestFaultConcurrentClones runs faulted demands on many clones at once
// (the serve layer's usage) and checks every goroutine sees the serial
// result; under -race this doubles as the data-race gate for the fault
// scratch buffers.
func TestFaultConcurrentClones(t *testing.T) {
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		d := AllToAll(g.N())
		plan := FaultPlan{Round: 1, RandomEdges: 2, RandomVertices: 1, Seed: 21}
		want, err := s.RunFaulted(d, 9, plan)
		if err != nil {
			t.Fatal(err)
		}
		const workers = 4
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := s.Clone()
				for i := 0; i < 3; i++ {
					got, err := c.RunFaulted(d, 9, plan)
					if err != nil {
						errs[w] = err
						return
					}
					if got != want {
						t.Errorf("model %v worker %d: %+v != %+v", model, w, got, want)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}
