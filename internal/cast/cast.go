// Package cast implements the paper's information-dissemination
// applications (Section 1.3.1, Appendix A): broadcast and gossip by
// routing each message along a random tree of a connectivity
// decomposition, with throughput and oblivious-routing congestion
// metering (Corollaries 1.4, 1.5, 1.6 and A.1).
//
// The scheduler enforces the communication models directly: in
// V-CONGEST each node transmits at most one message per round (heard by
// all neighbors); in E-CONGEST each directed edge carries at most one
// message per round. Scheduling decisions are node-local (FIFO queues);
// the only global setup is a one-time announcement of tree memberships,
// charged as setup rounds.
package cast

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/sim"
)

// WeightedTree is one tree of a decomposition with its fractional
// weight. Both dominating-tree and spanning-tree packings convert to
// this form.
type WeightedTree struct {
	Tree   *graph.Tree
	Weight float64
}

// Result reports a dissemination run.
type Result struct {
	// Rounds is the number of rounds until every node held every message.
	Rounds int
	// SetupRounds is the one-time membership-announcement charge.
	SetupRounds int
	// Throughput is messages delivered per round, N/Rounds.
	Throughput float64
	// MaxVertexCongestion is the maximum number of transmissions by any
	// single node (the Corollary 1.6 vertex-congestion).
	MaxVertexCongestion int
	// MaxEdgeCongestion is the maximum number of messages carried by any
	// single edge (both directions combined).
	MaxEdgeCongestion int
	// TreeLoad is the maximum number of messages assigned to one tree.
	TreeLoad int
}

// Demand is a multiset of messages to broadcast: message i originates at
// Sources[i].
type Demand struct {
	Sources []int
}

// AllToAll returns the gossip demand (Appendix A): one message per node.
func AllToAll(n int) Demand {
	src := make([]int, n)
	for i := range src {
		src[i] = i
	}
	return Demand{Sources: src}
}

// UniformDemand returns nMsgs messages from uniformly random sources.
func UniformDemand(n, nMsgs int, rng *rand.Rand) Demand {
	src := make([]int, nMsgs)
	for i := range src {
		src[i] = rng.IntN(n)
	}
	return Demand{Sources: src}
}

// assignTrees routes each message to a tree with probability
// proportional to tree weight (the paper's "broadcast each message along
// a random tree").
func assignTrees(trees []WeightedTree, nMsgs int, rng *rand.Rand) []int {
	// cum[i] = total weight of trees[0..i]; drawing r in [0, total] and
	// taking the first i with r <= cum[i] is the original accumulation
	// scan with the prefix sums hoisted out of the message loop.
	cum := make([]float64, len(trees))
	total := 0.0
	for i, t := range trees {
		total += t.Weight
		cum[i] = total
	}
	out := make([]int, nMsgs)
	for i := range out {
		r := rng.Float64() * total
		ti := len(trees) - 1
		for j, c := range cum {
			if r <= c {
				ti = j
				break
			}
		}
		out[i] = ti
	}
	return out
}

// Broadcast disseminates the demand's messages to every node of g by
// routing each along a randomly chosen tree of the decomposition, and
// returns the realized rounds, throughput, and congestion.
//
// In sim.VCongest mode the trees must be dominating trees; in
// sim.ECongest mode they must be spanning trees.
func Broadcast(g *graph.Graph, trees []WeightedTree, demand Demand, model sim.Model, seed uint64) (Result, error) {
	if len(trees) == 0 {
		return Result{}, fmt.Errorf("cast: no trees")
	}
	if len(demand.Sources) == 0 {
		return Result{}, fmt.Errorf("cast: empty demand")
	}
	for i, t := range trees {
		if model == sim.ECongest && !t.Tree.IsSpanning(g) {
			return Result{}, fmt.Errorf("cast: tree %d not spanning (required in E-CONGEST)", i)
		}
		if model == sim.VCongest && !t.Tree.IsDominatingIn(g) {
			return Result{}, fmt.Errorf("cast: tree %d not dominating (required in V-CONGEST)", i)
		}
	}
	rng := ds.NewRand(seed)
	assign := assignTrees(trees, len(demand.Sources), rng)
	switch model {
	case sim.VCongest:
		return runVertexScheduler(g, trees, demand, assign)
	case sim.ECongest:
		return runEdgeScheduler(g, trees, demand, assign)
	default:
		return Result{}, fmt.Errorf("cast: unknown model %v", model)
	}
}

// SingleTreeBaseline broadcasts the demand over one pipelined BFS tree —
// the throughput-1 baseline the corollaries compare against.
func SingleTreeBaseline(g *graph.Graph, demand Demand, model sim.Model, seed uint64) (Result, error) {
	tree := graph.TreeFromBFS(g, 0)
	return Broadcast(g, []WeightedTree{{Tree: tree, Weight: 1}}, demand, model, seed)
}

// runVertexScheduler floods each message within its dominating tree's
// member set; non-members overhear their dominating neighbors. One
// transmission per node per round.
//
// Delivery state is kept message-major as node bitmasks so one
// transmission updates 64 neighbors per word operation: a send (v, m)
// ORs v's precomputed neighbor mask into message m's has-row, counts
// fresh deliveries by popcount, and derives the forwarding set as
// neighbors ∧ members ∧ ¬queued — identical, transmission for
// transmission, to the scalar per-neighbor loop it replaces.
func runVertexScheduler(g *graph.Graph, trees []WeightedTree, demand Demand, assign []int) (Result, error) {
	n := g.N()
	nMsgs := len(demand.Sources)
	res := Result{TreeLoad: maxCount(assign, len(trees))}

	member := make([]*ds.Bitset, len(trees)) // member[t].Has(v)
	for ti, t := range trees {
		member[ti] = ds.NewBitset(n)
		for _, v := range t.Tree.Vertices() {
			member[ti].Set(int(v))
		}
	}

	// nbrMask[v*stride : (v+1)*stride] is v's adjacency as a bitmask.
	stride := (n + 63) / 64
	nbrMask := make([]uint64, n*stride)
	for v := 0; v < n; v++ {
		row := nbrMask[v*stride : (v+1)*stride]
		for _, w := range g.Neighbors(v) {
			row[w>>6] |= 1 << (uint(w) & 63)
		}
	}

	// hasM/queuedM[m*stride : (m+1)*stride] = nodes holding / having
	// queued message m.
	hasM := make([]uint64, nMsgs*stride)
	queuedM := make([]uint64, nMsgs*stride)
	queues := make([][]int32, n)
	vertexCong := make([]int, n)

	// Injection: each source holds its message and transmits it once;
	// member neighbors of the assigned tree pick it up and flood it
	// within the member set (Appendix A's "give the message to a random
	// tree": domination guarantees a member within one hop). Tree
	// memberships are announced once, charged as a setup round.
	res.SetupRounds = 1
	for m, s := range demand.Sources {
		bit := uint64(1) << (uint(s) & 63)
		hasM[m*stride+s>>6] |= bit
		if queuedM[m*stride+s>>6]&bit == 0 {
			queuedM[m*stride+s>>6] |= bit
			queues[s] = append(queues[s], int32(m))
		}
	}
	// Each message occupies exactly its own (source, message) cell here.
	remaining := n*nMsgs - nMsgs

	type tx struct {
		v int
		m int32
	}
	sends := make([]tx, 0, n)
	maxRounds := 4 * (nMsgs + n) * (len(trees) + 2)
	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return res, fmt.Errorf("cast: vertex scheduler stalled after %d rounds (%d deliveries missing)", round, remaining)
		}
		res.Rounds++
		sends = sends[:0]
		for v := 0; v < n; v++ {
			if len(queues[v]) == 0 {
				continue
			}
			m := queues[v][0]
			queues[v] = queues[v][1:]
			sends = append(sends, tx{v, m})
		}
		for _, s := range sends {
			vertexCong[s.v]++
			m := int(s.m)
			hrow := hasM[m*stride : (m+1)*stride]
			qrow := queuedM[m*stride : (m+1)*stride]
			nrow := nbrMask[s.v*stride : (s.v+1)*stride]
			mwords := member[assign[m]].Words()
			for j, nb := range nrow {
				if nb == 0 {
					continue
				}
				if fresh := nb &^ hrow[j]; fresh != 0 {
					hrow[j] |= fresh
					remaining -= bits.OnesCount64(fresh)
				}
				// Members of the message's tree forward it (once each),
				// queued in ascending node order like the scalar loop.
				for enq := nb & mwords[j] &^ qrow[j]; enq != 0; enq &= enq - 1 {
					w := j<<6 + bits.TrailingZeros64(enq)
					queues[w] = append(queues[w], s.m)
				}
				qrow[j] |= nb & mwords[j]
			}
		}
	}
	res.Throughput = float64(nMsgs) / float64(max(res.Rounds, 1))
	res.MaxVertexCongestion = maxOf(vertexCong)
	// Every transmission by a node crosses each of its incident edges
	// exactly once, so an edge's load is the sum of its endpoints'
	// transmission counts — no per-delivery counter needed.
	maxEdge := 0
	for _, e := range g.Edges() {
		if c := vertexCong[e.U] + vertexCong[e.V]; c > maxEdge {
			maxEdge = c
		}
	}
	res.MaxEdgeCongestion = maxEdge
	return res, nil
}

// runEdgeScheduler pipelines each message along its spanning tree's
// edges; one message per directed edge per round.
//
// The round loop is bitmask-parallel in the arc dimension, mirroring the
// vertex scheduler's treatment: a 64-arcs-per-word activity mask records
// which directed edges have queued messages, so a round visits only live
// arcs (word-skip + trailing-zeros iteration) instead of scanning all 2m
// FIFOs. Congestion meters are not counted per transmission either: a
// message assigned to tree t crosses every edge of t exactly once and is
// forwarded by a member v on deg_t(v)-1 arcs (deg_t(v) at its source),
// so per-edge loads are derived from per-tree edge bitmasks (one
// popcount-style bit sweep per used tree) and per-vertex loads from the
// CSR arc offsets — identical, transmission for transmission, to the
// scalar counters they replace.
func runEdgeScheduler(g *graph.Graph, trees []WeightedTree, demand Demand, assign []int) (Result, error) {
	n := g.N()
	m := g.M()
	nArcs := 2 * m
	nMsgs := len(demand.Sources)
	edges := g.Edges()
	msgsPerTree := make([]int32, len(trees))
	for _, t := range assign {
		msgsPerTree[t]++
	}
	res := Result{TreeLoad: int(maxOf32(msgsPerTree))}

	// Per-tree CSR arc lists in shared backing arrays: tree ti's arcs at
	// vertex v are arcBack[abase[ti]+off[v] : abase[ti]+off[v+1]] with
	// off = offBack[ti*(n+1):]. An arc is stored as its directed-edge
	// index dir = 2*eid + side alone — the edge id is dir>>1 and the
	// receiving endpoint comes from headOf — so arcs are 4 bytes each.
	// treeEdges[ti] is the tree's edge set as a bitmask over edge ids.
	// Trees with no assigned messages are never routed through and are
	// skipped entirely.
	used := 0
	for _, c := range msgsPerTree {
		if c > 0 {
			used++
		}
	}
	ewords := (m + 63) / 64
	awords := (nArcs + 63) / 64
	// One uint64 arena: per-tree edge masks, the live-arc mask and its
	// per-round snapshot, then the FIFO cursors.
	u64 := make([]uint64, len(trees)*ewords+2*awords+nArcs)
	treeEdges := u64[:len(trees)*ewords]
	activeWords := u64[len(trees)*ewords : len(trees)*ewords+awords]
	snapWords := u64[len(trees)*ewords+awords : len(trees)*ewords+2*awords]
	qht := u64[len(trees)*ewords+2*awords:]

	// One int32 arena for everything whose size is known up front.
	sz0 := len(trees) * (n + 1)     // offBack
	sz1 := sz0 + 2*used*max(n-1, 0) // arcBack
	sz2 := sz1 + len(trees)         // abase
	sz3 := sz2 + n                  // cur
	sz4 := sz3 + n                  // vertexCong
	sz5 := sz4 + m                  // edgeCong
	sz6 := sz5 + nArcs + 1          // qoff
	sz7 := sz6 + nArcs              // headOf
	// Each used tree contributes msgs*(n-1) queue slots per direction
	// pair: total FIFO capacity is known before any load is computed.
	qcap := 0
	for _, c := range msgsPerTree {
		qcap += int(c)
	}
	qcap *= 2 * max(n-1, 0)
	sz8 := sz7 + qcap // qbuf
	i32a := make([]int32, sz8)
	offBack := i32a[:sz0]
	arcBack := i32a[sz0:sz1]
	abase := i32a[sz1:sz2]
	cur := i32a[sz2:sz3]
	tedges := make([]int32, 0, 3*max(n-1, 0)) // (child, parent, eid) triples
	apos := int32(0)
	for ti, t := range trees {
		abase[ti] = apos
		if msgsPerTree[ti] == 0 {
			continue
		}
		off := offBack[ti*(n+1) : (ti+1)*(n+1)]
		erow := treeEdges[ti*ewords : (ti+1)*ewords]
		tedges = tedges[:0]
		t.Tree.ForEachEdge(func(child, parent int) {
			eid, ok := g.EdgeID(child, parent)
			if !ok {
				return
			}
			erow[eid>>6] |= 1 << (uint(eid) & 63)
			off[child+1]++
			off[parent+1]++
			tedges = append(tedges, int32(child), int32(parent), int32(eid))
		})
		for v := 0; v < n; v++ {
			off[v+1] += off[v]
		}
		na := off[n]
		list := arcBack[apos : apos+na]
		copy(cur, off[:n])
		for i := 0; i < len(tedges); i += 3 {
			child, parent, eid := tedges[i], tedges[i+1], tedges[i+2]
			childDir, parentDir := 2*eid, 2*eid+1
			if child != edges[eid].U {
				childDir, parentDir = parentDir, childDir
			}
			list[cur[child]] = childDir
			cur[child]++
			list[cur[parent]] = parentDir
			cur[parent]++
		}
		apos += na
	}

	// Congestion, derived up front: every message crosses each edge of
	// its tree exactly once, and each member v of tree t transmits it
	// deg_t(v)-1 times (deg_t(v) for the source, which also injects it).
	// Beyond metering, edgeCong bounds every directed-edge FIFO's total
	// traffic, which sizes the flat queue buffer below.
	vertexCong := i32a[sz3:sz4]
	edgeCong := i32a[sz4:sz5]
	for ti := range trees {
		c := msgsPerTree[ti]
		if c == 0 {
			continue
		}
		off := offBack[ti*(n+1) : (ti+1)*(n+1)]
		for v := 0; v < n; v++ {
			vertexCong[v] += c * (off[v+1] - off[v] - 1)
		}
		for wi, w := range treeEdges[ti*ewords : (ti+1)*ewords] {
			for ; w != 0; w &= w - 1 {
				edgeCong[wi<<6+bits.TrailingZeros64(w)] += c
			}
		}
	}
	for _, s := range demand.Sources {
		vertexCong[s]++
	}

	// Per directed edge FIFO of messages; directed index = 2*eid + side.
	// Each message traverses an edge in at most one direction, so a
	// segment of edgeCong[eid] entries per direction always suffices.
	// qht packs each FIFO's (tail<<32)|head cursor pair into one word;
	// headOf[dir] is the receiving endpoint, so the send loop never
	// re-derives endpoints.
	qoff := i32a[sz5:sz6]
	for eid, c := range edgeCong {
		qoff[2*eid+1] = qoff[2*eid] + c
		qoff[2*eid+2] = qoff[2*eid+1] + c
	}
	headOf := i32a[sz6:sz7]
	qbuf := i32a[sz7:sz8]
	for eid, e := range edges {
		headOf[2*eid] = e.V
		headOf[2*eid+1] = e.U
	}
	// Cursors are absolute positions into qbuf, packed (tail<<32)|head
	// and seeded at the segment base, so the transmission loops never
	// reload the segment offsets; a FIFO is empty iff head == tail.
	for dir := range qht {
		qht[dir] = uint64(qoff[dir]) * (1<<32 + 1)
	}
	assign32 := make([]int32, nMsgs)
	for i, t := range assign {
		assign32[i] = int32(t)
	}

	// relay delivers msg at v and forwards it on every tree arc except
	// the arrival edge. A tree flood visits each vertex exactly once
	// (arcs of a tree cannot revisit, and the arrival arc is skipped),
	// so every relay is a fresh delivery and remaining can decrement
	// unconditionally — no per-(vertex,message) delivered grid needed.
	remaining := n * nMsgs
	relay := func(v int, msg int32, fromEdge int32) {
		remaining--
		ti := int(assign32[msg])
		off := offBack[ti*(n+1):]
		base := abase[ti]
		for _, dir := range arcBack[base+off[v] : base+off[v+1]] {
			if dir>>1 == fromEdge {
				continue
			}
			ht := qht[dir]
			if uint32(ht) == uint32(ht>>32) {
				activeWords[dir>>6] |= 1 << (uint(dir) & 63)
			}
			qbuf[ht>>32] = msg
			qht[dir] = ht + 1<<32
		}
	}
	for msg, s := range demand.Sources {
		relay(s, int32(msg), -1)
	}

	maxRounds := 4 * (nMsgs + n) * (len(trees) + 2)
	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return res, fmt.Errorf("cast: edge scheduler stalled after %d rounds (%d deliveries missing)", round, remaining)
		}
		res.Rounds++
		// Every arc live at round start transmits its FIFO head, in
		// ascending directed-edge order like the scalar scan. Popping
		// from a snapshot of the live mask makes the immediate relay
		// equivalent to the scalar two-phase loop: a relay only appends
		// at queue tails and revives bits outside the snapshot, neither
		// of which a snapshot pop ever re-reads within the round.
		copy(snapWords, activeWords)
		for wi, w := range snapWords {
			for ; w != 0; w &= w - 1 {
				dir := wi<<6 + bits.TrailingZeros64(w)
				ht := qht[dir] + 1
				qht[dir] = ht
				msg := qbuf[uint32(ht)-1]
				if uint32(ht) == uint32(ht>>32) {
					activeWords[wi] &^= 1 << (uint(dir) & 63)
				}
				// relay(headOf[dir], msg, dir>>1), open-coded: the Go
				// inliner rejects the closure, and this loop carries
				// every transmission of the run.
				fromEdge := int32(dir) >> 1
				v := int(headOf[dir])
				remaining--
				ti := int(assign32[msg])
				off := offBack[ti*(n+1):]
				base := abase[ti]
				for _, adir := range arcBack[base+off[v] : base+off[v+1]] {
					if adir>>1 == fromEdge {
						continue
					}
					aht := qht[adir]
					if uint32(aht) == uint32(aht>>32) {
						activeWords[adir>>6] |= 1 << (uint(adir) & 63)
					}
					qbuf[aht>>32] = msg
					qht[adir] = aht + 1<<32
				}
			}
		}
	}
	res.Throughput = float64(nMsgs) / float64(max(res.Rounds, 1))
	res.MaxVertexCongestion = int(maxOf32(vertexCong))
	res.MaxEdgeCongestion = int(maxOf32(edgeCong))
	return res, nil
}

func maxCount(assign []int, k int) int {
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	return maxOf(counts)
}

func maxOf32(xs []int32) int32 {
	var m int32
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
