// Package cast implements the paper's information-dissemination
// applications (Section 1.3.1, Appendix A): broadcast and gossip by
// routing each message along a random tree of a connectivity
// decomposition, with throughput and oblivious-routing congestion
// metering (Corollaries 1.4, 1.5, 1.6 and A.1).
//
// The scheduler enforces the communication models directly: in
// V-CONGEST each node transmits at most one message per round (heard by
// all neighbors); in E-CONGEST each directed edge carries at most one
// message per round. Scheduling decisions are node-local (FIFO queues);
// the only global setup is a one-time announcement of tree memberships,
// charged as setup rounds.
package cast

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/sim"
)

// WeightedTree is one tree of a decomposition with its fractional
// weight. Both dominating-tree and spanning-tree packings convert to
// this form.
type WeightedTree struct {
	Tree   *graph.Tree
	Weight float64
}

// Result reports a dissemination run.
type Result struct {
	// Rounds is the number of rounds until every node held every message.
	Rounds int
	// SetupRounds is the one-time membership-announcement charge.
	SetupRounds int
	// Throughput is messages delivered per round, N/Rounds.
	Throughput float64
	// MaxVertexCongestion is the maximum number of transmissions by any
	// single node (the Corollary 1.6 vertex-congestion).
	MaxVertexCongestion int
	// MaxEdgeCongestion is the maximum number of messages carried by any
	// single edge (both directions combined).
	MaxEdgeCongestion int
	// TreeLoad is the maximum number of messages assigned to one tree.
	TreeLoad int
}

// Demand is a multiset of messages to broadcast: message i originates at
// Sources[i].
type Demand struct {
	Sources []int
}

// AllToAll returns the gossip demand (Appendix A): one message per node.
func AllToAll(n int) Demand {
	src := make([]int, n)
	for i := range src {
		src[i] = i
	}
	return Demand{Sources: src}
}

// UniformDemand returns nMsgs messages from uniformly random sources.
func UniformDemand(n, nMsgs int, rng *rand.Rand) Demand {
	src := make([]int, nMsgs)
	for i := range src {
		src[i] = rng.IntN(n)
	}
	return Demand{Sources: src}
}

// assignTrees routes each message to a tree with probability
// proportional to tree weight (the paper's "broadcast each message along
// a random tree").
func assignTrees(trees []WeightedTree, nMsgs int, rng *rand.Rand) []int {
	total := 0.0
	for _, t := range trees {
		total += t.Weight
	}
	out := make([]int, nMsgs)
	for i := range out {
		r := rng.Float64() * total
		acc := 0.0
		out[i] = len(trees) - 1
		for ti, t := range trees {
			acc += t.Weight
			if r <= acc {
				out[i] = ti
				break
			}
		}
	}
	return out
}

// Broadcast disseminates the demand's messages to every node of g by
// routing each along a randomly chosen tree of the decomposition, and
// returns the realized rounds, throughput, and congestion.
//
// In sim.VCongest mode the trees must be dominating trees; in
// sim.ECongest mode they must be spanning trees.
func Broadcast(g *graph.Graph, trees []WeightedTree, demand Demand, model sim.Model, seed uint64) (Result, error) {
	if len(trees) == 0 {
		return Result{}, fmt.Errorf("cast: no trees")
	}
	if len(demand.Sources) == 0 {
		return Result{}, fmt.Errorf("cast: empty demand")
	}
	for i, t := range trees {
		if model == sim.ECongest && !t.Tree.IsSpanning(g) {
			return Result{}, fmt.Errorf("cast: tree %d not spanning (required in E-CONGEST)", i)
		}
		if model == sim.VCongest && !t.Tree.IsDominatingIn(g) {
			return Result{}, fmt.Errorf("cast: tree %d not dominating (required in V-CONGEST)", i)
		}
	}
	rng := ds.NewRand(seed)
	assign := assignTrees(trees, len(demand.Sources), rng)
	switch model {
	case sim.VCongest:
		return runVertexScheduler(g, trees, demand, assign)
	case sim.ECongest:
		return runEdgeScheduler(g, trees, demand, assign)
	default:
		return Result{}, fmt.Errorf("cast: unknown model %v", model)
	}
}

// SingleTreeBaseline broadcasts the demand over one pipelined BFS tree —
// the throughput-1 baseline the corollaries compare against.
func SingleTreeBaseline(g *graph.Graph, demand Demand, model sim.Model, seed uint64) (Result, error) {
	tree := graph.TreeFromBFS(g, 0)
	return Broadcast(g, []WeightedTree{{Tree: tree, Weight: 1}}, demand, model, seed)
}

// runVertexScheduler floods each message within its dominating tree's
// member set; non-members overhear their dominating neighbors. One
// transmission per node per round.
//
// Delivery state is kept message-major as node bitmasks so one
// transmission updates 64 neighbors per word operation: a send (v, m)
// ORs v's precomputed neighbor mask into message m's has-row, counts
// fresh deliveries by popcount, and derives the forwarding set as
// neighbors ∧ members ∧ ¬queued — identical, transmission for
// transmission, to the scalar per-neighbor loop it replaces.
func runVertexScheduler(g *graph.Graph, trees []WeightedTree, demand Demand, assign []int) (Result, error) {
	n := g.N()
	nMsgs := len(demand.Sources)
	res := Result{TreeLoad: maxCount(assign, len(trees))}

	member := make([]*ds.Bitset, len(trees)) // member[t].Has(v)
	for ti, t := range trees {
		member[ti] = ds.NewBitset(n)
		for _, v := range t.Tree.Vertices() {
			member[ti].Set(int(v))
		}
	}

	// nbrMask[v*stride : (v+1)*stride] is v's adjacency as a bitmask.
	stride := (n + 63) / 64
	nbrMask := make([]uint64, n*stride)
	for v := 0; v < n; v++ {
		row := nbrMask[v*stride : (v+1)*stride]
		for _, w := range g.Neighbors(v) {
			row[w>>6] |= 1 << (uint(w) & 63)
		}
	}

	// hasM/queuedM[m*stride : (m+1)*stride] = nodes holding / having
	// queued message m.
	hasM := make([]uint64, nMsgs*stride)
	queuedM := make([]uint64, nMsgs*stride)
	queues := make([][]int32, n)
	vertexCong := make([]int, n)

	// Injection: each source holds its message and transmits it once;
	// member neighbors of the assigned tree pick it up and flood it
	// within the member set (Appendix A's "give the message to a random
	// tree": domination guarantees a member within one hop). Tree
	// memberships are announced once, charged as a setup round.
	res.SetupRounds = 1
	for m, s := range demand.Sources {
		bit := uint64(1) << (uint(s) & 63)
		hasM[m*stride+s>>6] |= bit
		if queuedM[m*stride+s>>6]&bit == 0 {
			queuedM[m*stride+s>>6] |= bit
			queues[s] = append(queues[s], int32(m))
		}
	}
	// Each message occupies exactly its own (source, message) cell here.
	remaining := n*nMsgs - nMsgs

	type tx struct {
		v int
		m int32
	}
	sends := make([]tx, 0, n)
	maxRounds := 4 * (nMsgs + n) * (len(trees) + 2)
	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return res, fmt.Errorf("cast: vertex scheduler stalled after %d rounds (%d deliveries missing)", round, remaining)
		}
		res.Rounds++
		sends = sends[:0]
		for v := 0; v < n; v++ {
			if len(queues[v]) == 0 {
				continue
			}
			m := queues[v][0]
			queues[v] = queues[v][1:]
			sends = append(sends, tx{v, m})
		}
		for _, s := range sends {
			vertexCong[s.v]++
			m := int(s.m)
			hrow := hasM[m*stride : (m+1)*stride]
			qrow := queuedM[m*stride : (m+1)*stride]
			nrow := nbrMask[s.v*stride : (s.v+1)*stride]
			mwords := member[assign[m]].Words()
			for j, nb := range nrow {
				if nb == 0 {
					continue
				}
				if fresh := nb &^ hrow[j]; fresh != 0 {
					hrow[j] |= fresh
					remaining -= bits.OnesCount64(fresh)
				}
				// Members of the message's tree forward it (once each),
				// queued in ascending node order like the scalar loop.
				for enq := nb & mwords[j] &^ qrow[j]; enq != 0; enq &= enq - 1 {
					w := j<<6 + bits.TrailingZeros64(enq)
					queues[w] = append(queues[w], s.m)
				}
				qrow[j] |= nb & mwords[j]
			}
		}
	}
	res.Throughput = float64(nMsgs) / float64(max(res.Rounds, 1))
	res.MaxVertexCongestion = maxOf(vertexCong)
	// Every transmission by a node crosses each of its incident edges
	// exactly once, so an edge's load is the sum of its endpoints'
	// transmission counts — no per-delivery counter needed.
	maxEdge := 0
	for _, e := range g.Edges() {
		if c := vertexCong[e.U] + vertexCong[e.V]; c > maxEdge {
			maxEdge = c
		}
	}
	res.MaxEdgeCongestion = maxEdge
	return res, nil
}

// runEdgeScheduler pipelines each message along its spanning tree's
// edges; one message per directed edge per round.
func runEdgeScheduler(g *graph.Graph, trees []WeightedTree, demand Demand, assign []int) (Result, error) {
	n := g.N()
	nMsgs := len(demand.Sources)
	res := Result{TreeLoad: maxCount(assign, len(trees))}

	// treeAdj[t][v] = tree-neighbor list of v in tree t, as (neighbor,
	// edge id, outgoing direction) triples; the direction index is
	// precomputed so the relay loop never re-derives endpoints.
	type arc struct {
		to  int32
		eid int32
		dir int32 // directed index of (v -> to): 2*eid + (v != U)
	}
	treeAdj := make([][][]arc, len(trees))
	for ti, t := range trees {
		adj := make([][]arc, n)
		t.Tree.ForEachEdge(func(child, parent int) {
			eid, ok := g.EdgeID(child, parent)
			if !ok {
				return
			}
			u, _ := g.Endpoints(eid)
			childDir, parentDir := int32(2*eid), int32(2*eid+1)
			if child != u {
				childDir, parentDir = parentDir, childDir
			}
			adj[child] = append(adj[child], arc{int32(parent), int32(eid), childDir})
			adj[parent] = append(adj[parent], arc{int32(child), int32(eid), parentDir})
		})
		treeAdj[ti] = adj
	}

	has := newBitGrid(n, nMsgs)
	// Per directed edge FIFO of messages; directed index = 2*eid + dir.
	queues := make([][]int32, 2*g.M())
	edgeCong := make([]int, g.M())
	vertexCong := make([]int, n)

	remaining := n * nMsgs
	relay := func(v int, m int32, fromEdge int32) {
		if !has.has(v, int(m)) {
			has.set(v, int(m))
			remaining--
		}
		for _, a := range treeAdj[assign[m]][v] {
			if a.eid == fromEdge {
				continue
			}
			queues[a.dir] = append(queues[a.dir], m)
		}
	}
	for m, s := range demand.Sources {
		relay(s, int32(m), -1)
	}

	type tx struct {
		dir int
		m   int32
	}
	sends := make([]tx, 0, 2*g.M())
	maxRounds := 4 * (nMsgs + n) * (len(trees) + 2)
	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return res, fmt.Errorf("cast: edge scheduler stalled after %d rounds (%d deliveries missing)", round, remaining)
		}
		res.Rounds++
		sends = sends[:0]
		for dir := range queues {
			if len(queues[dir]) == 0 {
				continue
			}
			m := queues[dir][0]
			queues[dir] = queues[dir][1:]
			sends = append(sends, tx{dir, m})
		}
		for _, s := range sends {
			eid := s.dir / 2
			u, v := g.Endpoints(eid)
			tail, head := u, v
			if s.dir%2 == 1 {
				tail, head = v, u
			}
			edgeCong[eid]++
			vertexCong[tail]++
			relay(head, s.m, int32(eid))
		}
	}
	res.Throughput = float64(nMsgs) / float64(max(res.Rounds, 1))
	res.MaxVertexCongestion = maxOf(vertexCong)
	res.MaxEdgeCongestion = maxOf(edgeCong)
	return res, nil
}

// bitGrid is a dense rows x cols bit matrix.
type bitGrid struct {
	words []uint64
	cols  int
}

func newBitGrid(rows, cols int) *bitGrid {
	stride := (cols + 63) / 64
	return &bitGrid{words: make([]uint64, rows*stride), cols: stride}
}

func (b *bitGrid) idx(r, c int) (int, uint64) {
	return r*b.cols + c>>6, 1 << (uint(c) & 63)
}

func (b *bitGrid) has(r, c int) bool {
	i, mask := b.idx(r, c)
	return b.words[i]&mask != 0
}

func (b *bitGrid) set(r, c int) {
	i, mask := b.idx(r, c)
	b.words[i] |= mask
}

func maxCount(assign []int, k int) int {
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	return maxOf(counts)
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
