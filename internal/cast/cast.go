// Package cast implements the paper's information-dissemination
// applications (Section 1.3.1, Appendix A): broadcast and gossip by
// routing each message along a random tree of a connectivity
// decomposition, with throughput and oblivious-routing congestion
// metering (Corollaries 1.4, 1.5, 1.6 and A.1).
//
// The scheduler enforces the communication models directly: in
// V-CONGEST each node transmits at most one message per round (heard by
// all neighbors); in E-CONGEST each directed edge carries at most one
// message per round. Scheduling decisions are node-local (FIFO queues);
// the only global setup is a one-time announcement of tree memberships,
// charged as setup rounds.
//
// The Scheduler handle (scheduler.go) is the primary entry point for
// steady-state serving: construct once per (graph, trees, model),
// then Run any sequence of demands with zero per-run setup allocations.
// Broadcast and SingleTreeBaseline are thin construct-and-run wrappers
// for one-shot use.
//
// # Caller invariants
//
// NewScheduler validates the trees against the graph once; after that
// the graph and trees are shared, not copied, and must not be mutated
// for the handle's lifetime. One handle serves one goroutine at a
// time — concurrent use goes through Clone, which shares the immutable
// core and owns fresh run buffers (clones of one handle may Run
// concurrently and return results byte-identical to serial replays).
// Results are pure functions of (handle construction, demand, seed),
// and for RunFaulted additionally of the fault plan.
package cast

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/graph"
	"repro/internal/sim"
)

// WeightedTree is one tree of a decomposition with its fractional
// weight. Both dominating-tree and spanning-tree packings convert to
// this form.
type WeightedTree struct {
	Tree   *graph.Tree
	Weight float64
}

// Result reports a dissemination run.
type Result struct {
	// Rounds is the number of rounds until every node held every message.
	Rounds int
	// SetupRounds is the one-time membership-announcement charge.
	SetupRounds int
	// Throughput is messages delivered per round, N/Rounds.
	Throughput float64
	// MaxVertexCongestion is the maximum number of transmissions by any
	// single node (the Corollary 1.6 vertex-congestion).
	MaxVertexCongestion int
	// MaxEdgeCongestion is the maximum number of messages carried by any
	// single edge (both directions combined).
	MaxEdgeCongestion int
	// TreeLoad is the maximum number of messages assigned to one tree.
	TreeLoad int
}

// Demand is a multiset of messages to broadcast: message i originates at
// Sources[i].
type Demand struct {
	Sources []int
}

// AllToAll returns the gossip demand (Appendix A): one message per node.
func AllToAll(n int) Demand {
	src := make([]int, n)
	for i := range src {
		src[i] = i
	}
	return Demand{Sources: src}
}

// UniformDemand returns nMsgs messages from uniformly random sources.
func UniformDemand(n, nMsgs int, rng *rand.Rand) Demand {
	src := make([]int, nMsgs)
	for i := range src {
		src[i] = rng.IntN(n)
	}
	return Demand{Sources: src}
}

// assignTrees routes each message to a tree with probability
// proportional to tree weight (the paper's "broadcast each message along
// a random tree"). Scheduler.assignDemand draws the identical stream
// over reused buffers; this standalone form documents the distribution.
func assignTrees(trees []WeightedTree, nMsgs int, rng *rand.Rand) []int {
	// cum[i] = total weight of trees[0..i]; drawing r in [0, total] and
	// taking the first i with r <= cum[i] is the original accumulation
	// scan with the prefix sums hoisted out of the message loop.
	cum := make([]float64, len(trees))
	total := 0.0
	for i, t := range trees {
		total += t.Weight
		cum[i] = total
	}
	out := make([]int, nMsgs)
	for i := range out {
		r := rng.Float64() * total
		ti := len(trees) - 1
		for j, c := range cum {
			if r <= c {
				ti = j
				break
			}
		}
		out[i] = ti
	}
	return out
}

// Broadcast disseminates the demand's messages to every node of g by
// routing each along a randomly chosen tree of the decomposition, and
// returns the realized rounds, throughput, and congestion. It is the
// one-shot form of the Scheduler handle: construct, run once, discard —
// callers serving repeated demands should hold a Scheduler instead.
//
// In sim.VCongest mode the trees must be dominating trees; in
// sim.ECongest mode they must be spanning trees.
func Broadcast(g *graph.Graph, trees []WeightedTree, demand Demand, model sim.Model, seed uint64) (Result, error) {
	if len(trees) == 0 {
		return Result{}, fmt.Errorf("cast: no trees")
	}
	if len(demand.Sources) == 0 {
		return Result{}, fmt.Errorf("cast: empty demand")
	}
	s, err := NewScheduler(g, trees, model)
	if err != nil {
		return Result{}, err
	}
	return s.Run(demand, seed)
}

// SingleTreeBaseline broadcasts the demand over one pipelined BFS tree —
// the throughput-1 baseline the corollaries compare against.
func SingleTreeBaseline(g *graph.Graph, demand Demand, model sim.Model, seed uint64) (Result, error) {
	tree := graph.TreeFromBFS(g, 0)
	return Broadcast(g, []WeightedTree{{Tree: tree, Weight: 1}}, demand, model, seed)
}

func maxOf32(xs []int32) int32 {
	var m int32
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
