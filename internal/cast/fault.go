// Fault injection for the broadcast Scheduler: the paper's whole point
// is information flow *matching connectivity* — a fractionally disjoint
// tree packing means broadcast traffic survives edge and vertex
// failures up to the connectivity bound — and this file is where that
// claim is exercised. A FaultPlan kills a deterministic (seeded) set of
// edges and/or vertices at a chosen round; RunFaulted replays the exact
// healthy schedule until the failure round, stops dead elements from
// carrying messages after it, and reroutes undelivered messages over
// the surviving trees with a bounded per-message retry budget. The
// result reports delivered fraction, per-tree survival, and the round
// overhead paid for rerouting — a faulted run never errors because of
// delivery shortfalls; partial delivery is a structured result.
//
// Everything is deterministic: the demand's tree assignment draws the
// same PCG stream as Run, the fault set is derived from the plan's own
// seed, and retries pick surviving trees by index arithmetic — so a
// faulted run is byte-identical across a Scheduler and its Clone, and a
// plan that never triggers (failure round beyond completion, nothing
// killed) reproduces Run's Result field for field.
package cast

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/ds"
	"repro/internal/sim"
)

// FaultPlan describes one deterministic failure scenario.
type FaultPlan struct {
	// Round is the failure round: transmissions in rounds >= Round no
	// longer cross dead edges or involve dead vertices. Round 0 kills
	// everything in the plan before the first transmission.
	Round int `json:"round"`
	// Edges and Vertices are killed outright (edge ids / vertex ids of
	// the scheduler's graph).
	Edges    []int `json:"edges,omitempty"`
	Vertices []int `json:"vertices,omitempty"`
	// RandomEdges and RandomVertices kill that many additional distinct
	// elements, drawn from a PCG seeded with Seed — a plan is replayable
	// from (graph, plan) alone. Vertices are drawn before edges.
	RandomEdges    int    `json:"random_edges,omitempty"`
	RandomVertices int    `json:"random_vertices,omitempty"`
	Seed           uint64 `json:"seed,omitempty"`
	// MaxRetries bounds how many times one undelivered message may be
	// rerouted over a surviving tree before it is given up as lost.
	// Zero means the default (2); negative disables retries.
	MaxRetries int `json:"max_retries,omitempty"`
}

// defaultFaultRetries is the reroute budget when the plan leaves
// MaxRetries at zero.
const defaultFaultRetries = 2

func (p FaultPlan) retries() int {
	switch {
	case p.MaxRetries > 0:
		return p.MaxRetries
	case p.MaxRetries < 0:
		return 0
	default:
		return defaultFaultRetries
	}
}

// active reports whether the plan kills anything at all.
func (p FaultPlan) active() bool {
	return len(p.Edges)+len(p.Vertices)+p.RandomEdges+p.RandomVertices > 0
}

// FaultResult is a faulted run's outcome: the usual scheduling Result
// plus the fault accounting. All fields are scalars, so two results
// compare with ==.
type FaultResult struct {
	Result

	// FailedEdges and FailedVertices count the elements the plan killed
	// (explicit plus random; edges dead only via a dead endpoint are not
	// double-counted here).
	FailedEdges    int
	FailedVertices int
	// TreesSurviving counts decomposition trees untouched by the fault
	// set: no dead member vertex and no dead usable edge. Retries route
	// over exactly these trees (falling back to damaged trees only when
	// none survive).
	TreesSurviving int
	// PairsExpected is the delivery target: messages × surviving
	// vertices. PairsDelivered is how many of those (message, vertex)
	// deliveries were achieved; DeliveredFraction their ratio.
	PairsExpected     int
	PairsDelivered    int
	DeliveredFraction float64
	// MessagesDelivered counts messages that reached every surviving
	// vertex; MessagesLost the ones given up after the retry budget.
	MessagesDelivered int
	MessagesLost      int
	// Retries counts per-message reroutes over surviving trees;
	// RetryRounds the rounds spent after the first reroute (the round
	// overhead of fault recovery, included in Rounds).
	Retries     int
	RetryRounds int
}

// faultBuffers is the per-handle scratch of the faulted scheduler,
// grown once and reused across RunFaulted calls (clones allocate their
// own lazily, so faulted runs stay concurrent-safe across clones).
type faultBuffers struct {
	deadV     []bool
	deadE     []bool
	deadVIDs  []int32
	deadEIDs  []int32
	liveTrees []int32
	liveMask  []uint64 // live-vertex bitmask, one stride row
	has       []uint64 // nMsgs × stride delivery grid
	queued    []uint64 // vertex model: nMsgs × stride ever-queued grid
	queues    [][]int32
	qhead     []int32
	attempts  []int32
	vcong     []int32
	econg     []int32
	sends     []vtx
	esends    []esend
}

type esend struct {
	dir int32
	msg int32
}

// RunFaulted runs the demand under the fault plan; see RunFaultedContext.
func (s *Scheduler) RunFaulted(demand Demand, seed uint64, plan FaultPlan) (FaultResult, error) {
	return s.RunFaultedContext(context.Background(), demand, seed, plan)
}

// RunFaultedContext disseminates the demand exactly as Run would for
// the same seed until the plan's failure round, then applies the fault
// set: dead edges and arcs incident to dead vertices stop carrying
// messages, dead vertices stop transmitting and no longer count as
// delivery targets, and once the flood stalls each undelivered message
// is rerouted over a surviving tree (bounded retries; exhausted budget
// counts the message as lost). Partial delivery is a structured result,
// never an error — errors are reserved for empty demands, invalid
// plans, and context cancellation.
func (s *Scheduler) RunFaultedContext(ctx context.Context, demand Demand, seed uint64, plan FaultPlan) (FaultResult, error) {
	if len(demand.Sources) == 0 {
		return FaultResult{}, fmt.Errorf("cast: empty demand")
	}
	fb, err := s.prepareFaults(plan)
	if err != nil {
		return FaultResult{}, err
	}
	ds.Reseed(s.pcg, seed)
	s.assignDemand(len(demand.Sources))
	if s.core.model == sim.VCongest {
		return s.runVertexFaulted(ctx, fb, demand, plan)
	}
	return s.runEdgeFaulted(ctx, fb, demand, plan)
}

// prepareFaults validates the plan and materializes the fault set:
// explicit kills, then seeded random draws (vertices before edges, so
// either count alone replays the same stream prefix), then the list of
// trees that survive untouched.
func (s *Scheduler) prepareFaults(plan FaultPlan) (*faultBuffers, error) {
	g := s.core.g
	n, m := g.N(), g.M()
	if plan.Round < 0 {
		return nil, fmt.Errorf("cast: fault round %d < 0", plan.Round)
	}
	if plan.RandomEdges < 0 || plan.RandomVertices < 0 {
		return nil, fmt.Errorf("cast: negative random fault counts (%d edges, %d vertices)", plan.RandomEdges, plan.RandomVertices)
	}
	if s.fbuf == nil {
		s.fbuf = &faultBuffers{}
	}
	fb := s.fbuf
	fb.deadV = growClear(fb.deadV, n)
	fb.deadE = growClear(fb.deadE, m)
	fb.deadVIDs, fb.deadEIDs = fb.deadVIDs[:0], fb.deadEIDs[:0]
	for _, v := range plan.Vertices {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("cast: fault vertex %d out of range [0,%d)", v, n)
		}
		if !fb.deadV[v] {
			fb.deadV[v] = true
			fb.deadVIDs = append(fb.deadVIDs, int32(v))
		}
	}
	for _, e := range plan.Edges {
		if e < 0 || e >= m {
			return nil, fmt.Errorf("cast: fault edge %d out of range [0,%d)", e, m)
		}
		if !fb.deadE[e] {
			fb.deadE[e] = true
			fb.deadEIDs = append(fb.deadEIDs, int32(e))
		}
	}
	if plan.RandomVertices > 0 || plan.RandomEdges > 0 {
		rng := ds.NewRand(plan.Seed)
		for k := 0; k < plan.RandomVertices && len(fb.deadVIDs) < n; {
			v := rng.IntN(n)
			if !fb.deadV[v] {
				fb.deadV[v] = true
				fb.deadVIDs = append(fb.deadVIDs, int32(v))
				k++
			}
		}
		for k := 0; k < plan.RandomEdges && len(fb.deadEIDs) < m; {
			e := rng.IntN(m)
			if !fb.deadE[e] {
				fb.deadE[e] = true
				fb.deadEIDs = append(fb.deadEIDs, int32(e))
				k++
			}
		}
	}
	fb.liveTrees = fb.liveTrees[:0]
	for ti := range s.core.trees {
		if s.treeSurvives(ti, fb) {
			fb.liveTrees = append(fb.liveTrees, int32(ti))
		}
	}
	return fb, nil
}

// treeSurvives reports whether tree ti is untouched by the fault set:
// no member vertex is dead and no edge it could route over is dead. In
// E-CONGEST the routed edges are exactly the tree edges; in V-CONGEST a
// member's transmission crosses every edge between members, so any dead
// member-member edge disqualifies (a conservative test — the flood may
// still succeed around it).
func (s *Scheduler) treeSurvives(ti int, fb *faultBuffers) bool {
	if s.core.es != nil {
		// Spanning trees contain every vertex, so any dead vertex kills
		// every tree.
		if len(fb.deadVIDs) > 0 {
			return false
		}
		erow := s.core.es.treeEdges[ti*s.core.es.ewords : (ti+1)*s.core.es.ewords]
		for _, e := range fb.deadEIDs {
			if erow[e>>6]&(1<<(uint(e)&63)) != 0 {
				return false
			}
		}
		return true
	}
	member := s.core.vs.member[ti]
	for _, v := range fb.deadVIDs {
		if member.Has(int(v)) {
			return false
		}
	}
	for _, e := range fb.deadEIDs {
		u, w := s.core.g.Endpoints(int(e))
		if member.Has(u) && member.Has(w) {
			return false
		}
	}
	return true
}

// runVertexFaulted is the fault-aware V-CONGEST flood. It mirrors
// runVertex round for round (two-phase: collect one transmission per
// queued vertex in ascending order, then process them in order) with
// three differences: dead vertices stop transmitting and receiving from
// the failure round, transmissions stop crossing dead edges, and a
// stalled flood triggers the reroute pass instead of an error.
func (s *Scheduler) runVertexFaulted(ctx context.Context, fb *faultBuffers, demand Demand, plan FaultPlan) (FaultResult, error) {
	vs := s.core.vs
	g := s.core.g
	n, nMsgs, stride := g.N(), len(demand.Sources), vs.stride
	res := FaultResult{Result: Result{TreeLoad: int(maxOf32(s.msgsPerTree)), SetupRounds: 1}}
	res.FailedVertices, res.FailedEdges = len(fb.deadVIDs), len(fb.deadEIDs)
	res.TreesSurviving = len(fb.liveTrees)

	fb.liveMask = growClear(fb.liveMask, stride)
	nLive := 0
	for v := 0; v < n; v++ {
		if !fb.deadV[v] {
			fb.liveMask[v>>6] |= 1 << (uint(v) & 63)
			nLive++
		}
	}
	expected := nMsgs * nLive
	res.PairsExpected = expected

	fb.has = growClear(fb.has, nMsgs*stride)
	fb.queued = growClear(fb.queued, nMsgs*stride)
	fb.queues = growQueues(fb.queues, n)
	fb.qhead = growClear(fb.qhead, n)
	fb.attempts = growClear(fb.attempts, nMsgs)
	fb.vcong = growClear(fb.vcong, n)

	// Injection, exactly as the healthy scheduler: each source holds its
	// message and queues one transmission of it.
	delivered := 0
	for msg, src := range demand.Sources {
		bit := uint64(1) << (uint(src) & 63)
		fb.has[msg*stride+src>>6] |= bit
		if !fb.deadV[src] {
			delivered++
		}
		if fb.queued[msg*stride+src>>6]&bit == 0 {
			fb.queued[msg*stride+src>>6] |= bit
			fb.queues[src] = append(fb.queues[src], int32(msg))
		}
	}

	maxRetries := plan.retries()
	// reroute reseeds one undelivered message onto a (preferably
	// surviving) tree: all live holders re-queue it and the queued grid
	// resets to exactly that holder set, so the new tree's members
	// forward it as a fresh multi-source flood.
	firstRetryRounds := -1
	reroute := func() bool {
		did := false
		for msg := 0; msg < nMsgs; msg++ {
			hrow := fb.has[msg*stride : (msg+1)*stride]
			missing, holders := false, false
			for j, live := range fb.liveMask {
				if live&^hrow[j] != 0 {
					missing = true
				}
				if live&hrow[j] != 0 {
					holders = true
				}
			}
			if !missing || int(fb.attempts[msg]) >= maxRetries {
				continue
			}
			if !holders {
				// No surviving copy exists (e.g. the source died at round
				// 0): nothing to reroute, the message is lost outright.
				fb.attempts[msg] = int32(maxRetries)
				continue
			}
			s.assign[msg] = s.retryTree(msg, int(fb.attempts[msg]), fb)
			fb.attempts[msg]++
			res.Retries++
			qrow := fb.queued[msg*stride : (msg+1)*stride]
			for j := range qrow {
				hold := hrow[j] & fb.liveMask[j]
				qrow[j] = hold
				for ; hold != 0; hold &= hold - 1 {
					v := j<<6 + bits.TrailingZeros64(hold)
					fb.queues[v] = append(fb.queues[v], int32(msg))
				}
			}
			did = true
		}
		if did && firstRetryRounds < 0 {
			firstRetryRounds = res.Rounds
		}
		return did
	}

	done := ctx.Done()
	maxRounds := 4 * (nMsgs + n) * (len(s.core.trees) + 2) * (maxRetries + 2)
	sends := fb.sends[:0]
	for round := 0; delivered < expected; {
		if done != nil {
			select {
			case <-done:
				fb.sends = sends
				return res, ctx.Err()
			default:
			}
		}
		faulty := round >= plan.Round
		sends = sends[:0]
		for v := 0; v < n; v++ {
			if faulty && fb.deadV[v] {
				continue
			}
			if int(fb.qhead[v]) == len(fb.queues[v]) {
				continue
			}
			m := fb.queues[v][fb.qhead[v]]
			fb.qhead[v]++
			sends = append(sends, vtx{v, m})
		}
		if len(sends) == 0 {
			if !reroute() {
				break
			}
			continue
		}
		if round >= maxRounds {
			break
		}
		res.Rounds++
		round++
		for _, t := range sends {
			fb.vcong[t.v]++
			msg := int(t.m)
			hrow := fb.has[msg*stride : (msg+1)*stride]
			qrow := fb.queued[msg*stride : (msg+1)*stride]
			member := vs.member[s.assign[msg]].Words()
			nbrs := g.Neighbors(t.v)
			eids := g.IncidentEdges(t.v)
			for i, w32 := range nbrs {
				w := int(w32)
				if faulty && (fb.deadE[eids[i]] || fb.deadV[w]) {
					continue
				}
				wi, bit := w>>6, uint64(1)<<(uint(w)&63)
				if hrow[wi]&bit == 0 {
					hrow[wi] |= bit
					if fb.liveMask[wi]&bit != 0 {
						delivered++
					}
				}
				if member[wi]&bit != 0 && qrow[wi]&bit == 0 {
					qrow[wi] |= bit
					fb.queues[w] = append(fb.queues[w], t.m)
				}
			}
		}
	}
	fb.sends = sends

	s.finishFaulted(&res, fb, nMsgs, stride, delivered, expected, firstRetryRounds)
	res.MaxVertexCongestion = int(maxOf32(fb.vcong))
	// Same derivation as the healthy scheduler: every transmission by a
	// node crosses each incident edge once (for dead edges this is the
	// healthy-equivalent upper bound, kept so a never-triggering plan
	// reproduces Run's meters exactly).
	maxEdge := int32(0)
	for _, e := range g.Edges() {
		if c := fb.vcong[e.U] + fb.vcong[e.V]; c > maxEdge {
			maxEdge = c
		}
	}
	res.MaxEdgeCongestion = int(maxEdge)
	return res, nil
}

// runEdgeFaulted is the fault-aware E-CONGEST pipeline. It mirrors
// runEdge round for round (pop the FIFO head of every arc live at round
// start in ascending directed-edge order, then relay in that order),
// except that arcs on dead edges or incident to dead vertices stop
// transmitting from the failure round, deliveries are deduplicated per
// (message, vertex) — reroutes may revisit — and a stalled pipeline
// triggers the reroute pass instead of an error.
func (s *Scheduler) runEdgeFaulted(ctx context.Context, fb *faultBuffers, demand Demand, plan FaultPlan) (FaultResult, error) {
	es := s.core.es
	g := s.core.g
	n, m, nMsgs := g.N(), g.M(), len(demand.Sources)
	nArcs := 2 * m
	stride := (n + 63) / 64
	res := FaultResult{Result: Result{TreeLoad: int(maxOf32(s.msgsPerTree))}}
	res.FailedVertices, res.FailedEdges = len(fb.deadVIDs), len(fb.deadEIDs)
	res.TreesSurviving = len(fb.liveTrees)

	fb.liveMask = growClear(fb.liveMask, stride)
	nLive := 0
	for v := 0; v < n; v++ {
		if !fb.deadV[v] {
			fb.liveMask[v>>6] |= 1 << (uint(v) & 63)
			nLive++
		}
	}
	expected := nMsgs * nLive
	res.PairsExpected = expected

	fb.has = growClear(fb.has, nMsgs*stride)
	fb.queues = growQueues(fb.queues, nArcs)
	fb.qhead = growClear(fb.qhead, nArcs)
	fb.attempts = growClear(fb.attempts, nMsgs)
	fb.vcong = growClear(fb.vcong, n)
	fb.econg = growClear(fb.econg, m)

	// Injection: the source holds its message and queues it on every arc
	// of its tree, as in the healthy scheduler.
	delivered := 0
	enqueueAt := func(msg int, v int, skipEdge int32) {
		ti := int(s.assign[msg])
		off := es.offBack[ti*(n+1):]
		base := es.abase[ti]
		for _, adir := range es.arcBack[base+off[v] : base+off[v+1]] {
			if adir>>1 == skipEdge {
				continue
			}
			fb.queues[adir] = append(fb.queues[adir], int32(msg))
		}
	}
	for msg, src := range demand.Sources {
		bit := uint64(1) << (uint(src) & 63)
		fb.has[msg*stride+src>>6] |= bit
		if !fb.deadV[src] {
			delivered++
		}
		enqueueAt(msg, src, -1)
	}

	maxRetries := plan.retries()
	firstRetryRounds := -1
	// reroute reseeds one undelivered message onto a (preferably
	// surviving) tree: every live holder re-queues it on all of the new
	// tree's arcs at that holder; receivers that already hold the
	// message absorb it without relaying, so the re-flood terminates.
	reroute := func() bool {
		did := false
		for msg := 0; msg < nMsgs; msg++ {
			hrow := fb.has[msg*stride : (msg+1)*stride]
			missing, holders := false, false
			for j, live := range fb.liveMask {
				if live&^hrow[j] != 0 {
					missing = true
				}
				if live&hrow[j] != 0 {
					holders = true
				}
			}
			if !missing || int(fb.attempts[msg]) >= maxRetries {
				continue
			}
			if !holders {
				fb.attempts[msg] = int32(maxRetries)
				continue
			}
			s.assign[msg] = s.retryTree(msg, int(fb.attempts[msg]), fb)
			fb.attempts[msg]++
			res.Retries++
			for j, live := range fb.liveMask {
				for hold := hrow[j] & live; hold != 0; hold &= hold - 1 {
					v := j<<6 + bits.TrailingZeros64(hold)
					enqueueAt(msg, v, -1)
				}
			}
			did = true
		}
		if did && firstRetryRounds < 0 {
			firstRetryRounds = res.Rounds
		}
		return did
	}

	done := ctx.Done()
	maxRounds := 4 * (nMsgs + n) * (len(s.core.trees) + 2) * (maxRetries + 2)
	esends := fb.esends[:0]
	for round := 0; delivered < expected; {
		if done != nil {
			select {
			case <-done:
				fb.esends = esends
				return res, ctx.Err()
			default:
			}
		}
		faulty := round >= plan.Round
		esends = esends[:0]
		for dir := 0; dir < nArcs; dir++ {
			if int(fb.qhead[dir]) == len(fb.queues[dir]) {
				continue
			}
			if faulty {
				if fb.deadE[dir>>1] || fb.deadV[es.headOf[dir]] || fb.deadV[es.headOf[dir^1]] {
					continue
				}
			}
			msg := fb.queues[dir][fb.qhead[dir]]
			fb.qhead[dir]++
			esends = append(esends, esend{int32(dir), msg})
		}
		if len(esends) == 0 {
			if !reroute() {
				break
			}
			continue
		}
		if round >= maxRounds {
			break
		}
		res.Rounds++
		round++
		for _, t := range esends {
			dir := int(t.dir)
			msg := int(t.msg)
			eid := int32(dir) >> 1
			fb.vcong[es.headOf[dir^1]]++
			fb.econg[eid]++
			v := int(es.headOf[dir])
			wi, bit := v>>6, uint64(1)<<(uint(v)&63)
			hrow := fb.has[msg*stride : (msg+1)*stride]
			if hrow[wi]&bit != 0 {
				continue // already held (reroute overlap): absorb, no relay
			}
			hrow[wi] |= bit
			if fb.liveMask[wi]&bit != 0 {
				delivered++
			}
			enqueueAt(msg, v, eid)
		}
	}
	fb.esends = esends

	s.finishFaulted(&res, fb, nMsgs, stride, delivered, expected, firstRetryRounds)
	res.MaxVertexCongestion = int(maxOf32(fb.vcong))
	res.MaxEdgeCongestion = int(maxOf32(fb.econg))
	return res, nil
}

// retryTree picks the tree for a message's attempt-th reroute: round-
// robin over the surviving trees (so retried messages spread instead of
// piling onto one tree), skipping the current assignment when another
// choice exists, falling back to the full tree list when nothing
// survives untouched — a damaged tree still reaches its fragment.
func (s *Scheduler) retryTree(msg, attempt int, fb *faultBuffers) int32 {
	if len(fb.liveTrees) > 0 {
		idx := (msg + attempt) % len(fb.liveTrees)
		ti := fb.liveTrees[idx]
		if ti == s.assign[msg] && len(fb.liveTrees) > 1 {
			ti = fb.liveTrees[(idx+1)%len(fb.liveTrees)]
		}
		return ti
	}
	t := len(s.core.trees)
	idx := (msg + attempt) % t
	if int32(idx) == s.assign[msg] && t > 1 {
		idx = (idx + 1) % t
	}
	return int32(idx)
}

// finishFaulted fills the delivery accounting shared by both models.
func (s *Scheduler) finishFaulted(res *FaultResult, fb *faultBuffers, nMsgs, stride, delivered, expected, firstRetryRounds int) {
	lost := 0
	for msg := 0; msg < nMsgs; msg++ {
		hrow := fb.has[msg*stride : (msg+1)*stride]
		for j, live := range fb.liveMask {
			if live&^hrow[j] != 0 {
				lost++
				break
			}
		}
	}
	res.MessagesLost = lost
	res.MessagesDelivered = nMsgs - lost
	res.PairsDelivered = delivered
	if expected > 0 {
		res.DeliveredFraction = float64(delivered) / float64(expected)
	}
	if firstRetryRounds >= 0 {
		res.RetryRounds = res.Rounds - firstRetryRounds
	}
	res.Throughput = float64(nMsgs) / float64(max(res.Rounds, 1))
}

// growClear returns s with length n and every element zeroed, reusing
// capacity when possible.
func growClear[T bool | int32 | uint64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growQueues returns q with length n and every queue emptied, keeping
// each queue's capacity.
func growQueues(q [][]int32, n int) [][]int32 {
	for len(q) < n {
		q = append(q, nil)
	}
	q = q[:n]
	for i := range q {
		q[i] = q[i][:0]
	}
	return q
}
