package cast

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/sim"
)

// schedulerFixture returns a (graph, trees) pair valid for the model.
func schedulerFixture(t testing.TB, model sim.Model) (*graph.Graph, []WeightedTree) {
	t.Helper()
	if model == sim.VCongest {
		g := graph.Hypercube(5)
		return g, domTrees(t, g, 3)
	}
	g := graph.Hypercube(4)
	return g, spanTrees(t, g, 5)
}

// TestSchedulerReuseMatchesFreshBroadcast is the reuse determinism gate:
// one handle serving N demands of varying sizes (growing and shrinking,
// so buffer reuse across size changes is exercised) must produce results
// identical to N fresh Broadcast calls, in both congestion models.
func TestSchedulerReuseMatchesFreshBroadcast(t *testing.T) {
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		n := g.N()
		demands := []Demand{
			AllToAll(n),
			UniformDemand(n, 4*n, ds.NewRand(41)),
			UniformDemand(n, 3, ds.NewRand(42)),
			UniformDemand(n, 2*n, ds.NewRand(43)),
			AllToAll(n),
		}
		for i, d := range demands {
			seed := uint64(100 + i)
			got, err := s.Run(d, seed)
			if err != nil {
				t.Fatalf("model %v demand %d: %v", model, i, err)
			}
			want, err := Broadcast(g, trees, d, model, seed)
			if err != nil {
				t.Fatalf("model %v demand %d: %v", model, i, err)
			}
			if got != want {
				t.Fatalf("model %v demand %d: reused handle %+v != fresh broadcast %+v", model, i, got, want)
			}
		}
	}
}

// TestSchedulerRunRepeatable pins that re-serving the same (demand, seed)
// pair through one handle is exactly reproducible.
func TestSchedulerRunRepeatable(t *testing.T) {
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		d := AllToAll(g.N())
		r1, err := s.Run(d, 7)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s.Run(d, 7)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("model %v: same (demand, seed) diverged: %+v vs %+v", model, r1, r2)
		}
	}
}

// TestSchedulerValidation mirrors the Broadcast validation at
// construction/run time.
func TestSchedulerValidation(t *testing.T) {
	g := graph.Complete(4)
	if _, err := NewScheduler(g, nil, sim.VCongest); err == nil {
		t.Fatal("no trees accepted")
	}
	partial, err := graph.NewTree(4, 0, map[int]int{1: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(g, []WeightedTree{{Tree: partial, Weight: 1}}, sim.ECongest); err == nil {
		t.Fatal("non-spanning tree accepted in E-CONGEST")
	}
	tr := graph.TreeFromBFS(g, 0)
	s, err := NewScheduler(g, []WeightedTree{{Tree: tr, Weight: 1}}, sim.VCongest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Demand{}, 1); err == nil {
		t.Fatal("empty demand accepted")
	}
}

// TestSchedulerRunZeroSteadyStateAllocs is the steady-state allocation
// gate: once a handle has served a demand of a given size, re-serving
// demands of that size must not allocate at all, in either model.
func TestSchedulerRunZeroSteadyStateAllocs(t *testing.T) {
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		d := AllToAll(g.N())
		const seeds = 4
		for i := 0; i < seeds; i++ {
			if _, err := s.Run(d, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		var i int
		allocs := testing.AllocsPerRun(2*seeds, func() {
			i++
			if _, err := s.Run(d, uint64(i%seeds)); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("model %v: warm Scheduler.Run made %.1f allocations per run, want 0", model, allocs)
		}
	}
}

// benchmarkSchedulerSteady measures a warm handle serving one demand per
// iteration; with ReportAllocs it doubles as the steady-state zero-alloc
// witness in bench output.
func benchmarkSchedulerSteady(b *testing.B, model sim.Model) {
	g, trees := schedulerFixture(b, model)
	s, err := NewScheduler(g, trees, model)
	if err != nil {
		b.Fatal(err)
	}
	d := AllToAll(g.N())
	const seeds = 8
	for i := 0; i < seeds; i++ {
		if _, err := s.Run(d, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(d, uint64(i%seeds)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerSteadyVertex(b *testing.B) { benchmarkSchedulerSteady(b, sim.VCongest) }

func BenchmarkSchedulerSteadyEdge(b *testing.B) { benchmarkSchedulerSteady(b, sim.ECongest) }
