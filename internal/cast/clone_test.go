package cast

import (
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/ds"
	"repro/internal/sim"
)

// cloneWorkload returns the demand/seed grid the clone tests replay:
// nWorkers workers × nDemands demands each, sizes varying per demand so
// buffer regrowth is exercised inside each clone.
func cloneWorkload(n, nWorkers, nDemands int) [][]Demand {
	demands := make([][]Demand, nWorkers)
	for w := range demands {
		demands[w] = make([]Demand, nDemands)
		for d := range demands[w] {
			size := n/2 + (w*nDemands+d)%(2*n)
			demands[w][d] = UniformDemand(n, max(size, 1), ds.NewRand(uint64(1000+w*nDemands+d)))
		}
	}
	return demands
}

func cloneSeed(w, d int) uint64 { return uint64(7 + w*31 + d) }

// TestSchedulerCloneConcurrentMatchesSerial is the shared-core gate: in
// both congestion models, 8 clones of one scheduler core each serve 16
// demands concurrently, and every result must be byte-identical to a
// serial replay of the same (demand, seed) on the original handle. Run
// under -race (the make ci race set includes internal/cast) this also
// proves the core is never written after construction.
func TestSchedulerCloneConcurrentMatchesSerial(t *testing.T) {
	const nWorkers, nDemands = 8, 16
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		demands := cloneWorkload(g.N(), nWorkers, nDemands)

		// Serial replay on the original handle first.
		want := make([][]Result, nWorkers)
		for w := range demands {
			want[w] = make([]Result, nDemands)
			for d, dem := range demands[w] {
				r, err := s.Run(dem, cloneSeed(w, d))
				if err != nil {
					t.Fatalf("model %v serial (%d,%d): %v", model, w, d, err)
				}
				want[w][d] = r
			}
		}

		got := make([][]Result, nWorkers)
		errs := make([]error, nWorkers)
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := s.Clone()
				got[w] = make([]Result, nDemands)
				for d, dem := range demands[w] {
					r, err := c.Run(dem, cloneSeed(w, d))
					if err != nil {
						errs[w] = err
						return
					}
					got[w][d] = r
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < nWorkers; w++ {
			if errs[w] != nil {
				t.Fatalf("model %v clone %d: %v", model, w, errs[w])
			}
			for d := range got[w] {
				if got[w][d] != want[w][d] {
					t.Fatalf("model %v clone %d demand %d: concurrent %+v != serial %+v",
						model, w, d, got[w][d], want[w][d])
				}
			}
		}
	}
}

// TestSchedulerCloneOfCloneSharesCore pins that cloning a clone yields a
// handle over the same core with identical behavior.
func TestSchedulerCloneOfCloneSharesCore(t *testing.T) {
	g, trees := schedulerFixture(t, sim.ECongest)
	s, err := NewScheduler(g, trees, sim.ECongest)
	if err != nil {
		t.Fatal(err)
	}
	cc := s.Clone().Clone()
	if cc.core != s.core {
		t.Fatal("clone of clone does not share the original core")
	}
	d := AllToAll(g.N())
	r1, err := s.Run(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cc.Run(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("clone of clone diverged: %+v vs %+v", r1, r2)
	}
}

// TestSchedulerClonePoolZeroSteadyStateAllocs is the pooled-clone
// allocation gate: warm clones checked out of a sync.Pool, run, and
// returned must not allocate at all in steady state, in either model.
// GC is disabled for the measurement so the pool cannot be drained
// mid-run (a collected pool entry would charge a fresh Clone to the
// loop being measured).
func TestSchedulerClonePoolZeroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, model := range []sim.Model{sim.VCongest, sim.ECongest} {
		g, trees := schedulerFixture(t, model)
		s, err := NewScheduler(g, trees, model)
		if err != nil {
			t.Fatal(err)
		}
		pool := &sync.Pool{New: func() any { return s.Clone() }}
		d := AllToAll(g.N())
		// Warm a handful of pooled clones to the demand size.
		const warm = 4
		clones := make([]*Scheduler, warm)
		for i := range clones {
			clones[i] = pool.Get().(*Scheduler)
			if _, err := clones[i].Run(d, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range clones {
			pool.Put(c)
		}
		var i int
		allocs := testing.AllocsPerRun(2*warm, func() {
			i++
			c := pool.Get().(*Scheduler)
			if _, err := c.Run(d, uint64(i%warm)); err != nil {
				t.Fatal(err)
			}
			pool.Put(c)
		})
		if allocs != 0 {
			t.Fatalf("model %v: warm pooled clone made %.1f allocations per run, want 0", model, allocs)
		}
	}
}
