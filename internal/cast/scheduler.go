// The reusable broadcast Scheduler handle: construction builds every
// demand-independent artifact of the two congestion-model schedulers
// once (per-tree CSR adjacency, membership and neighbor bitmasks,
// per-arc FIFO layout, congestion tables), and Run serves an arbitrary
// sequence of demands with engine-style buffer reuse — zero allocations
// per Run once the buffers have grown to the demand size — while
// producing results identical, transmission for transmission, to a
// fresh Broadcast call with the same seed.
//
// The handle is split into a shared immutable core and per-handle
// mutable buffers: Clone returns a sibling handle over the same core
// with fresh buffers, so many goroutines can Run demands against one
// decomposition concurrently, each keeping the zero-steady-state-alloc
// property and producing results byte-identical to a serial run of the
// same (demand, seed).
package cast

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand/v2"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Scheduler is a reusable broadcast handle bound to one
// (graph, decomposition, model) triple. Construct it once with
// NewScheduler, then serve any number of demands via Run; the handle
// keeps every setup artifact and scratch buffer alive between runs, so
// steady-state serving pays only for rounds, not setup.
//
// A single Scheduler is not safe for concurrent use, but its setup
// artifacts are immutable and shared: Clone returns an independent
// handle over the same core, and any number of clones may Run
// concurrently with each other (and with the original).
type Scheduler struct {
	core *schedCore

	// Tree-choice sampling state: pcg is reseeded in place per Run so the
	// draw stream is identical to a fresh ds.NewRand(seed) — hence
	// identical across clones for the same (demand, seed).
	pcg *rand.PCG
	rng *rand.Rand

	// Per-run demand state, grown once and reused.
	assign      []int32 // assign[m] = tree routing message m
	msgsPerTree []int32

	vb *vertexBuffers // V-CONGEST run buffers, nil in E-CONGEST
	eb *edgeBuffers   // E-CONGEST run buffers, nil in V-CONGEST

	fbuf *faultBuffers // fault-injection scratch, allocated on first RunFaulted
}

// schedCore is the demand-independent, read-only half of a Scheduler:
// everything NewScheduler computes from (graph, trees, model) and no
// Run ever mutates. Clones share one core by pointer; nothing below may
// be written after construction.
type schedCore struct {
	g     *graph.Graph
	trees []WeightedTree
	model sim.Model

	// cum[i] is the total weight of trees[0..i]; total the grand sum.
	cum   []float64
	total float64

	vs *vertexCore // V-CONGEST setup artifacts, nil in E-CONGEST
	es *edgeCore   // E-CONGEST setup artifacts, nil in V-CONGEST
}

// vertexCore is the V-CONGEST scheduler's immutable setup: membership
// and adjacency bitmasks, built once per core and read by every clone.
type vertexCore struct {
	stride  int          // words per n-bit row
	member  []*ds.Bitset // member[t].Has(v): v is in tree t
	nbrMask []uint64     // nbrMask[v*stride:(v+1)*stride] = v's adjacency
}

// vertexBuffers is the V-CONGEST scheduler's per-handle run state: the
// message-major delivery grids and per-node FIFOs grow to the largest
// demand served and are cleared per run.
type vertexBuffers struct {
	hasM    []uint64  // hasM[m*stride:...] = nodes holding message m
	queuedM []uint64  // queuedM[m*stride:...] = nodes that queued m
	queues  [][]int32 // per-node FIFO storage, reused across runs
	qhead   []int32   // per-node FIFO head index into queues[v]
	vcong   []int     // transmissions per node
	sends   []vtx
}

type vtx struct {
	v int
	m int32
}

// edgeCore is the E-CONGEST scheduler's immutable setup. The per-tree
// CSR arc lists live in shared backing arrays sized for all trees (a
// fixed 2(n-1) arc stride per tree): tree ti's arcs at vertex v are
// arcBack[abase[ti]+off[v] : abase[ti]+off[v+1]] with
// off = offBack[ti*(n+1):]. An arc is stored as its directed-edge index
// dir = 2*eid + side alone — the edge id is dir>>1 and the receiving
// endpoint comes from headOf — so arcs are 4 bytes each. treeEdges[ti]
// is the tree's edge set as a bitmask over edge ids.
type edgeCore struct {
	ewords, awords int

	offBack   []int32  // len(trees)*(n+1) CSR offsets
	arcBack   []int32  // len(trees)*2*(n-1) directed-edge indices
	abase     []int32  // arcBack base per tree
	treeEdges []uint64 // per-tree edge bitmask rows
	headOf    []int32  // headOf[dir] = receiving endpoint of arc dir
}

// edgeBuffers is the E-CONGEST scheduler's per-handle run state: FIFO
// layout, cursors, activity masks, and congestion tables recomputed per
// demand over grown-once storage.
type edgeBuffers struct {
	vcong       []int32  // transmissions per node (derived, not counted)
	econg       []int32  // messages per edge (derived, not counted)
	qoff        []int32  // per-arc FIFO segment offsets into qbuf
	qht         []uint64 // packed (tail<<32)|head cursor per arc
	activeWords []uint64 // live-arc bitmask
	snapWords   []uint64 // per-round snapshot of activeWords
	qbuf        []int32  // flat FIFO storage, grown to the demand size
}

// NewScheduler validates the decomposition against the model and builds
// the demand-independent scheduler state: in sim.VCongest mode the trees
// must be dominating trees; in sim.ECongest mode they must be spanning
// trees.
func NewScheduler(g *graph.Graph, trees []WeightedTree, model sim.Model) (*Scheduler, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("cast: no trees")
	}
	for i, t := range trees {
		if model == sim.ECongest && !t.Tree.IsSpanning(g) {
			return nil, fmt.Errorf("cast: tree %d not spanning (required in E-CONGEST)", i)
		}
		if model == sim.VCongest && !t.Tree.IsDominatingIn(g) {
			return nil, fmt.Errorf("cast: tree %d not dominating (required in V-CONGEST)", i)
		}
	}
	core := &schedCore{
		g:     g,
		trees: trees,
		model: model,
		cum:   make([]float64, len(trees)),
	}
	for i, t := range trees {
		core.total += t.Weight
		core.cum[i] = core.total
	}
	switch model {
	case sim.VCongest:
		core.vs = newVertexCore(g, trees)
	case sim.ECongest:
		core.es = newEdgeCore(g, trees)
	default:
		return nil, fmt.Errorf("cast: unknown model %v", model)
	}
	return newHandle(core), nil
}

// newHandle wraps a core with fresh per-handle buffers; NewScheduler
// and Clone share it so every handle starts from the same state.
func newHandle(core *schedCore) *Scheduler {
	s := &Scheduler{
		core:        core,
		pcg:         rand.NewPCG(0, 0),
		msgsPerTree: make([]int32, len(core.trees)),
	}
	s.rng = rand.New(s.pcg)
	n := core.g.N()
	if core.vs != nil {
		s.vb = &vertexBuffers{
			queues: make([][]int32, n),
			qhead:  make([]int32, n),
			vcong:  make([]int, n),
		}
	}
	if core.es != nil {
		nArcs := 2 * core.g.M()
		s.eb = &edgeBuffers{
			vcong:       make([]int32, n),
			econg:       make([]int32, core.g.M()),
			qoff:        make([]int32, nArcs+1),
			qht:         make([]uint64, nArcs),
			activeWords: make([]uint64, (nArcs+63)/64),
			snapWords:   make([]uint64, (nArcs+63)/64),
		}
	}
	return s
}

// Clone returns an independent handle over the same immutable core:
// setup artifacts (per-tree CSR arc lists, bitmasks, congestion tables)
// are shared, run buffers are fresh. The clone serves Run concurrently
// with the original and with other clones, keeps the zero-steady-state-
// allocation property once warm, and produces results byte-identical to
// the original handle for the same (demand, seed). Cloning a clone is
// equivalent to cloning the original.
func (s *Scheduler) Clone() *Scheduler { return newHandle(s.core) }

// Model reports the congestion model the handle schedules for.
func (s *Scheduler) Model() sim.Model { return s.core.model }

// NumTrees reports the decomposition size the handle routes over.
func (s *Scheduler) NumTrees() int { return len(s.core.trees) }

// Run disseminates the demand's messages to every node by routing each
// along a randomly chosen tree of the decomposition, exactly as
// Broadcast would with the same seed, reusing the handle's buffers.
func (s *Scheduler) Run(demand Demand, seed uint64) (Result, error) {
	return s.RunContext(context.Background(), demand, seed)
}

// RunContext is Run with cooperative cancellation: the round loop
// checks ctx between rounds and returns ctx's error as soon as it is
// done, leaving the handle reusable (every Run clears its buffers on
// entry). With context.Background() the check compiles to nothing —
// a nil done channel is never selected on.
func (s *Scheduler) RunContext(ctx context.Context, demand Demand, seed uint64) (Result, error) {
	if len(demand.Sources) == 0 {
		return Result{}, fmt.Errorf("cast: empty demand")
	}
	ds.Reseed(s.pcg, seed)
	s.assignDemand(len(demand.Sources))
	if s.core.model == sim.VCongest {
		return s.runVertex(ctx, demand)
	}
	return s.runEdge(ctx, demand)
}

// assignDemand routes each message to a tree with probability
// proportional to tree weight (the paper's "broadcast each message along
// a random tree"), drawing the same stream as assignTrees: r in
// [0, total] maps to the first tree whose cumulative weight covers it.
func (s *Scheduler) assignDemand(nMsgs int) {
	if cap(s.assign) < nMsgs {
		s.assign = make([]int32, nMsgs)
	}
	s.assign = s.assign[:nMsgs]
	clear(s.msgsPerTree)
	trees, cum := s.core.trees, s.core.cum
	for i := range s.assign {
		r := s.rng.Float64() * s.core.total
		ti := len(trees) - 1
		for j, c := range cum {
			if r <= c {
				ti = j
				break
			}
		}
		s.assign[i] = int32(ti)
		s.msgsPerTree[ti]++
	}
}

func newVertexCore(g *graph.Graph, trees []WeightedTree) *vertexCore {
	n := g.N()
	vs := &vertexCore{
		stride: (n + 63) / 64,
		member: make([]*ds.Bitset, len(trees)),
	}
	for ti, t := range trees {
		vs.member[ti] = ds.NewBitset(n)
		for _, v := range t.Tree.Vertices() {
			vs.member[ti].Set(int(v))
		}
	}
	vs.nbrMask = make([]uint64, n*vs.stride)
	for v := 0; v < n; v++ {
		row := vs.nbrMask[v*vs.stride : (v+1)*vs.stride]
		for _, w := range g.Neighbors(v) {
			row[w>>6] |= 1 << (uint(w) & 63)
		}
	}
	return vs
}

// runVertex floods each message within its dominating tree's member set;
// non-members overhear their dominating neighbors. One transmission per
// node per round.
//
// Delivery state is kept message-major as node bitmasks so one
// transmission updates 64 neighbors per word operation: a send (v, m)
// ORs v's precomputed neighbor mask into message m's has-row, counts
// fresh deliveries by popcount, and derives the forwarding set as
// neighbors ∧ members ∧ ¬queued — identical, transmission for
// transmission, to the scalar per-neighbor loop it replaces.
func (s *Scheduler) runVertex(ctx context.Context, demand Demand) (Result, error) {
	vs := s.core.vs
	vb := s.vb
	n := s.core.g.N()
	nMsgs := len(demand.Sources)
	stride := vs.stride
	res := Result{TreeLoad: int(maxOf32(s.msgsPerTree))}

	need := nMsgs * stride
	if cap(vb.hasM) < need {
		vb.hasM = make([]uint64, need)
	} else {
		vb.hasM = vb.hasM[:need]
		clear(vb.hasM)
	}
	if cap(vb.queuedM) < need {
		vb.queuedM = make([]uint64, need)
	} else {
		vb.queuedM = vb.queuedM[:need]
		clear(vb.queuedM)
	}
	for v := range vb.queues {
		vb.queues[v] = vb.queues[v][:0]
	}
	clear(vb.qhead)
	clear(vb.vcong)

	// Injection: each source holds its message and transmits it once;
	// member neighbors of the assigned tree pick it up and flood it
	// within the member set (Appendix A's "give the message to a random
	// tree": domination guarantees a member within one hop). Tree
	// memberships are announced once, charged as a setup round.
	res.SetupRounds = 1
	for m, src := range demand.Sources {
		bit := uint64(1) << (uint(src) & 63)
		vb.hasM[m*stride+src>>6] |= bit
		if vb.queuedM[m*stride+src>>6]&bit == 0 {
			vb.queuedM[m*stride+src>>6] |= bit
			vb.queues[src] = append(vb.queues[src], int32(m))
		}
	}
	// Each message occupies exactly its own (source, message) cell here.
	remaining := n*nMsgs - nMsgs

	sends := vb.sends[:0]
	done := ctx.Done()
	maxRounds := 4 * (nMsgs + n) * (len(s.core.trees) + 2)
	for round := 0; remaining > 0; round++ {
		if done != nil {
			select {
			case <-done:
				vb.sends = sends
				return res, ctx.Err()
			default:
			}
		}
		if round >= maxRounds {
			vb.sends = sends
			return res, fmt.Errorf("cast: vertex scheduler stalled after %d rounds (%d deliveries missing)", round, remaining)
		}
		res.Rounds++
		sends = sends[:0]
		for v := 0; v < n; v++ {
			if int(vb.qhead[v]) == len(vb.queues[v]) {
				continue
			}
			m := vb.queues[v][vb.qhead[v]]
			vb.qhead[v]++
			sends = append(sends, vtx{v, m})
		}
		for _, t := range sends {
			vb.vcong[t.v]++
			m := int(t.m)
			hrow := vb.hasM[m*stride : (m+1)*stride]
			qrow := vb.queuedM[m*stride : (m+1)*stride]
			nrow := vs.nbrMask[t.v*stride : (t.v+1)*stride]
			mwords := vs.member[s.assign[m]].Words()
			for j, nb := range nrow {
				if nb == 0 {
					continue
				}
				if fresh := nb &^ hrow[j]; fresh != 0 {
					hrow[j] |= fresh
					remaining -= bits.OnesCount64(fresh)
				}
				// Members of the message's tree forward it (once each),
				// queued in ascending node order like the scalar loop.
				for enq := nb & mwords[j] &^ qrow[j]; enq != 0; enq &= enq - 1 {
					w := j<<6 + bits.TrailingZeros64(enq)
					vb.queues[w] = append(vb.queues[w], t.m)
				}
				qrow[j] |= nb & mwords[j]
			}
		}
	}
	vb.sends = sends
	res.Throughput = float64(nMsgs) / float64(max(res.Rounds, 1))
	res.MaxVertexCongestion = maxOf(vb.vcong)
	// Every transmission by a node crosses each of its incident edges
	// exactly once, so an edge's load is the sum of its endpoints'
	// transmission counts — no per-delivery counter needed.
	maxEdge := 0
	for _, e := range s.core.g.Edges() {
		if c := vb.vcong[e.U] + vb.vcong[e.V]; c > maxEdge {
			maxEdge = c
		}
	}
	res.MaxEdgeCongestion = maxEdge
	return res, nil
}

func newEdgeCore(g *graph.Graph, trees []WeightedTree) *edgeCore {
	n := g.N()
	m := g.M()
	nArcs := 2 * m
	arcStride := 2 * max(n-1, 0)
	edges := g.Edges()
	es := &edgeCore{
		ewords:  (m + 63) / 64,
		awords:  (nArcs + 63) / 64,
		offBack: make([]int32, len(trees)*(n+1)),
		arcBack: make([]int32, len(trees)*arcStride),
		abase:   make([]int32, len(trees)),
		headOf:  make([]int32, nArcs),
	}
	es.treeEdges = make([]uint64, len(trees)*es.ewords)
	cur := make([]int32, n)
	tedges := make([]int32, 0, 3*max(n-1, 0)) // (child, parent, eid) triples
	for ti, t := range trees {
		es.abase[ti] = int32(ti * arcStride)
		off := es.offBack[ti*(n+1) : (ti+1)*(n+1)]
		erow := es.treeEdges[ti*es.ewords : (ti+1)*es.ewords]
		tedges = tedges[:0]
		t.Tree.ForEachEdge(func(child, parent int) {
			eid, ok := g.EdgeID(child, parent)
			if !ok {
				return
			}
			erow[eid>>6] |= 1 << (uint(eid) & 63)
			off[child+1]++
			off[parent+1]++
			tedges = append(tedges, int32(child), int32(parent), int32(eid))
		})
		for v := 0; v < n; v++ {
			off[v+1] += off[v]
		}
		list := es.arcBack[es.abase[ti] : int(es.abase[ti])+int(off[n])]
		copy(cur, off[:n])
		for i := 0; i < len(tedges); i += 3 {
			child, parent, eid := tedges[i], tedges[i+1], tedges[i+2]
			childDir, parentDir := 2*eid, 2*eid+1
			if child != edges[eid].U {
				childDir, parentDir = parentDir, childDir
			}
			list[cur[child]] = childDir
			cur[child]++
			list[cur[parent]] = parentDir
			cur[parent]++
		}
	}
	for eid, e := range edges {
		es.headOf[2*eid] = e.V
		es.headOf[2*eid+1] = e.U
	}
	return es
}

// runEdge pipelines each message along its spanning tree's edges; one
// message per directed edge per round.
//
// The round loop is bitmask-parallel in the arc dimension, mirroring the
// vertex scheduler's treatment: a 64-arcs-per-word activity mask records
// which directed edges have queued messages, so a round visits only live
// arcs (word-skip + trailing-zeros iteration) instead of scanning all 2m
// FIFOs. Congestion meters are not counted per transmission either: a
// message assigned to tree t crosses every edge of t exactly once and is
// forwarded by a member v on deg_t(v)-1 arcs (deg_t(v) at its source),
// so per-edge loads are derived from per-tree edge bitmasks (one
// popcount-style bit sweep per used tree) and per-vertex loads from the
// CSR arc offsets — identical, transmission for transmission, to the
// scalar counters they replace.
func (s *Scheduler) runEdge(ctx context.Context, demand Demand) (Result, error) {
	es := s.core.es
	eb := s.eb
	n := s.core.g.N()
	nMsgs := len(demand.Sources)
	res := Result{TreeLoad: int(maxOf32(s.msgsPerTree))}

	// Congestion, derived up front: every message crosses each edge of
	// its tree exactly once, and each member v of tree t transmits it
	// deg_t(v)-1 times (deg_t(v) for the source, which also injects it).
	// Beyond metering, econg bounds every directed-edge FIFO's total
	// traffic, which sizes the flat queue buffer below. Trees with no
	// assigned messages are never routed through and are skipped.
	clear(eb.vcong)
	clear(eb.econg)
	for ti := range s.core.trees {
		c := s.msgsPerTree[ti]
		if c == 0 {
			continue
		}
		off := es.offBack[ti*(n+1) : (ti+1)*(n+1)]
		for v := 0; v < n; v++ {
			eb.vcong[v] += c * (off[v+1] - off[v] - 1)
		}
		for wi, w := range es.treeEdges[ti*es.ewords : (ti+1)*es.ewords] {
			for ; w != 0; w &= w - 1 {
				eb.econg[wi<<6+bits.TrailingZeros64(w)] += c
			}
		}
	}
	for _, src := range demand.Sources {
		eb.vcong[src]++
	}

	// Per directed edge FIFO of messages; directed index = 2*eid + side.
	// Each message traverses an edge in at most one direction, so a
	// segment of econg[eid] entries per direction always suffices. qht
	// packs each FIFO's (tail<<32)|head cursor pair into one word, with
	// cursors absolute into qbuf and seeded at the segment base, so the
	// transmission loops never reload the segment offsets; a FIFO is
	// empty iff head == tail.
	for eid, c := range eb.econg {
		eb.qoff[2*eid+1] = eb.qoff[2*eid] + c
		eb.qoff[2*eid+2] = eb.qoff[2*eid+1] + c
	}
	// Each message contributes n-1 queue slots per direction pair: total
	// FIFO capacity is known before any load is computed.
	qcap := nMsgs * 2 * max(n-1, 0)
	if cap(eb.qbuf) < qcap {
		eb.qbuf = make([]int32, qcap)
	} else {
		eb.qbuf = eb.qbuf[:qcap]
	}
	for dir := range eb.qht {
		eb.qht[dir] = uint64(eb.qoff[dir]) * (1<<32 + 1)
	}
	clear(eb.activeWords)

	// Injection delivers each message at its source and forwards it on
	// every arc of its tree (the relay below with no arrival edge to
	// skip). A tree flood visits each vertex exactly once (arcs of a tree
	// cannot revisit, and the arrival arc is skipped), so every relay is
	// a fresh delivery and remaining can decrement unconditionally — no
	// per-(vertex,message) delivered grid needed.
	remaining := n * nMsgs
	for msg, src := range demand.Sources {
		remaining--
		ti := int(s.assign[msg])
		off := es.offBack[ti*(n+1):]
		base := es.abase[ti]
		for _, dir := range es.arcBack[base+off[src] : base+off[src+1]] {
			ht := eb.qht[dir]
			if uint32(ht) == uint32(ht>>32) {
				eb.activeWords[dir>>6] |= 1 << (uint(dir) & 63)
			}
			eb.qbuf[ht>>32] = int32(msg)
			eb.qht[dir] = ht + 1<<32
		}
	}

	done := ctx.Done()
	maxRounds := 4 * (nMsgs + n) * (len(s.core.trees) + 2)
	for round := 0; remaining > 0; round++ {
		if done != nil {
			select {
			case <-done:
				return res, ctx.Err()
			default:
			}
		}
		if round >= maxRounds {
			return res, fmt.Errorf("cast: edge scheduler stalled after %d rounds (%d deliveries missing)", round, remaining)
		}
		res.Rounds++
		// Every arc live at round start transmits its FIFO head, in
		// ascending directed-edge order like the scalar scan. Popping
		// from a snapshot of the live mask makes the immediate relay
		// equivalent to the scalar two-phase loop: a relay only appends
		// at queue tails and revives bits outside the snapshot, neither
		// of which a snapshot pop ever re-reads within the round.
		copy(eb.snapWords, eb.activeWords)
		for wi, w := range eb.snapWords {
			for ; w != 0; w &= w - 1 {
				dir := wi<<6 + bits.TrailingZeros64(w)
				ht := eb.qht[dir] + 1
				eb.qht[dir] = ht
				msg := eb.qbuf[uint32(ht)-1]
				if uint32(ht) == uint32(ht>>32) {
					eb.activeWords[wi] &^= 1 << (uint(dir) & 63)
				}
				// The relay, open-coded: the Go inliner rejects a
				// closure, and this loop carries every transmission of
				// the run.
				fromEdge := int32(dir) >> 1
				v := int(es.headOf[dir])
				remaining--
				ti := int(s.assign[msg])
				off := es.offBack[ti*(n+1):]
				base := es.abase[ti]
				for _, adir := range es.arcBack[base+off[v] : base+off[v+1]] {
					if adir>>1 == fromEdge {
						continue
					}
					aht := eb.qht[adir]
					if uint32(aht) == uint32(aht>>32) {
						eb.activeWords[adir>>6] |= 1 << (uint(adir) & 63)
					}
					eb.qbuf[aht>>32] = msg
					eb.qht[adir] = aht + 1<<32
				}
			}
		}
	}
	res.Throughput = float64(nMsgs) / float64(max(res.Rounds, 1))
	res.MaxVertexCongestion = int(maxOf32(eb.vcong))
	res.MaxEdgeCongestion = int(maxOf32(eb.econg))
	return res, nil
}
