//go:build race

package cast

// raceEnabled reports whether the race detector is active; under it
// sync.Pool intentionally drops items at random, so pool-backed
// allocation counts are meaningless.
const raceEnabled = true
