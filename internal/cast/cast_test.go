package cast

import (
	"testing"

	"repro/internal/cds"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stp"
)

func domTrees(t testing.TB, g *graph.Graph, seed uint64) []WeightedTree {
	t.Helper()
	p, err := cds.Pack(g, cds.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]WeightedTree, len(p.Trees))
	for i, tr := range p.Trees {
		out[i] = WeightedTree{Tree: tr.Tree, Weight: tr.Weight}
	}
	return out
}

func spanTrees(t testing.TB, g *graph.Graph, seed uint64) []WeightedTree {
	t.Helper()
	p, err := stp.Pack(g, stp.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]WeightedTree, len(p.Trees))
	for i, tr := range p.Trees {
		out[i] = WeightedTree{Tree: tr.Tree, Weight: tr.Weight}
	}
	return out
}

func TestBroadcastValidation(t *testing.T) {
	g := graph.Complete(4)
	if _, err := Broadcast(g, nil, AllToAll(4), sim.VCongest, 1); err == nil {
		t.Fatal("no trees accepted")
	}
	tr := graph.TreeFromBFS(g, 0)
	if _, err := Broadcast(g, []WeightedTree{{Tree: tr, Weight: 1}}, Demand{}, sim.VCongest, 1); err == nil {
		t.Fatal("empty demand accepted")
	}
	// A non-spanning tree must be rejected in E-CONGEST.
	partial, err := graph.NewTree(4, 0, map[int]int{1: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Broadcast(g, []WeightedTree{{Tree: partial, Weight: 1}}, AllToAll(4), sim.ECongest, 1); err == nil {
		t.Fatal("non-spanning tree accepted in E-CONGEST")
	}
}

func TestBroadcastVertexModelDelivers(t *testing.T) {
	g := graph.Hypercube(5)
	trees := domTrees(t, g, 3)
	res, err := Broadcast(g, trees, AllToAll(g.N()), sim.VCongest, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.MaxVertexCongestion <= 0 {
		t.Fatal("no congestion recorded")
	}
}

func TestBroadcastEdgeModelDelivers(t *testing.T) {
	g := graph.Hypercube(4)
	trees := spanTrees(t, g, 5)
	res, err := Broadcast(g, trees, AllToAll(g.N()), sim.ECongest, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestPackingBeatsSingleTreeOnWellConnectedGraph(t *testing.T) {
	// Corollary 1.4's point: a k-connected graph sustains ~k/log n
	// messages per round versus 1 for a single tree. With n messages on
	// Q6 the packing must finish in fewer rounds.
	g := graph.Hypercube(6)
	trees := domTrees(t, g, 11)
	if len(trees) < 2 {
		t.Skip("packing degenerated to one tree")
	}
	demand := AllToAll(g.N())
	multi, err := Broadcast(g, trees, demand, sim.VCongest, 13)
	if err != nil {
		t.Fatal(err)
	}
	single, err := SingleTreeBaseline(g, demand, sim.VCongest, 13)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Rounds >= single.Rounds {
		t.Fatalf("packing (%d rounds) not faster than single tree (%d rounds)",
			multi.Rounds, single.Rounds)
	}
}

func TestEdgePackingBeatsSingleTree(t *testing.T) {
	g := graph.Complete(16) // λ=15, packing size ~7
	trees := spanTrees(t, g, 15)
	if len(trees) < 2 {
		t.Skip("packing degenerated to one tree")
	}
	demand := AllToAll(g.N())
	multi, err := Broadcast(g, trees, demand, sim.ECongest, 17)
	if err != nil {
		t.Fatal(err)
	}
	single, err := SingleTreeBaseline(g, demand, sim.ECongest, 17)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Rounds >= single.Rounds {
		t.Fatalf("packing (%d rounds) not faster than single tree (%d rounds)",
			multi.Rounds, single.Rounds)
	}
}

func TestObliviousVertexCongestionCompetitive(t *testing.T) {
	// Corollary 1.6: vertex congestion is O(log n)-competitive against
	// the information-theoretic optimum N/k.
	g := graph.Hypercube(5) // k=5
	trees := domTrees(t, g, 19)
	n := g.N()
	nMsgs := 4 * n
	demand := UniformDemand(n, nMsgs, ds.NewRand(21))
	res, err := Broadcast(g, trees, demand, sim.VCongest, 23)
	if err != nil {
		t.Fatal(err)
	}
	opt := float64(nMsgs) / 5.0
	competitiveness := float64(res.MaxVertexCongestion) / opt
	// Lenient constant: 12·log2(n).
	if competitiveness > 12*5 {
		t.Fatalf("vertex-congestion competitiveness %.2f too high", competitiveness)
	}
}

func TestUniformDemandSources(t *testing.T) {
	d := UniformDemand(10, 50, ds.NewRand(1))
	if len(d.Sources) != 50 {
		t.Fatalf("got %d sources", len(d.Sources))
	}
	for _, s := range d.Sources {
		if s < 0 || s >= 10 {
			t.Fatalf("source %d out of range", s)
		}
	}
}

func TestAssignTreesProportional(t *testing.T) {
	tr := graph.TreeFromBFS(graph.Complete(3), 0)
	trees := []WeightedTree{
		{Tree: tr, Weight: 0.9},
		{Tree: tr, Weight: 0.1},
	}
	rng := ds.NewRand(2)
	assign := assignTrees(trees, 10000, rng)
	count := 0
	for _, a := range assign {
		if a == 0 {
			count++
		}
	}
	if count < 8500 || count > 9500 {
		t.Fatalf("tree 0 got %d/10000 assignments, want ~9000", count)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := graph.Hypercube(4)
	trees := domTrees(t, g, 25)
	d := AllToAll(g.N())
	r1, err := Broadcast(g, trees, d, sim.VCongest, 27)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Broadcast(g, trees, d, sim.VCongest, 27)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
}
