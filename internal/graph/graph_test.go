package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/ds"
)

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(2, 2) // self-loop
	b.AddEdge(2, 3)
	g := b.Graph()
	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge(0,1) missing")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop survived")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("phantom edge (0,3)")
	}
}

func TestGraphDegreesAndEdgeIDs(t *testing.T) {
	g := FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}})
	if g.Degree(0) != 3 {
		t.Fatalf("Degree(0) = %d, want 3", g.Degree(0))
	}
	if g.MinDegree() != 1 {
		t.Fatalf("MinDegree = %d, want 1", g.MinDegree())
	}
	// Every incident edge id must round-trip through Endpoints.
	for u := 0; u < g.N(); u++ {
		nbrs := g.Neighbors(u)
		eids := g.IncidentEdges(u)
		if len(nbrs) != len(eids) {
			t.Fatalf("vertex %d: %d neighbors but %d edge ids", u, len(nbrs), len(eids))
		}
		for i, v := range nbrs {
			a, b := g.Endpoints(int(eids[i]))
			if !(a == u && b == int(v)) && !(a == int(v) && b == u) {
				t.Fatalf("edge id %d of (%d,%d) has endpoints (%d,%d)", eids[i], u, v, a, b)
			}
		}
	}
	if id, ok := g.EdgeID(3, 4); !ok {
		t.Fatal("EdgeID(3,4) not found")
	} else if a, b := g.Endpoints(id); a != 3 || b != 4 {
		t.Fatalf("Endpoints(%d) = (%d,%d), want (3,4)", id, a, b)
	}
	if _, ok := g.EdgeID(1, 4); ok {
		t.Fatal("EdgeID(1,4) found for non-edge")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, orig, err := g.InducedSubgraph([]int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3 has n=%d m=%d", sub.N(), sub.M())
	}
	want := []int{1, 3, 4}
	for i, v := range orig {
		if v != want[i] {
			t.Fatalf("orig = %v, want %v", orig, want)
		}
	}
	if _, _, err := g.InducedSubgraph([]int{1, 1}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{7}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestSubgraphByEdges(t *testing.T) {
	g := Cycle(6)
	even := g.SubgraphByEdges(func(id int) bool { return id%2 == 0 })
	if even.M() != 3 {
		t.Fatalf("M = %d, want 3", even.M())
	}
	if even.N() != 6 {
		t.Fatalf("N = %d, want 6 (spanning subgraph)", even.N())
	}
}

func TestGeneratorShapes(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		n, m      int
		regular   int // -1 = skip
		connected bool
	}{
		{"K6", Complete(6), 6, 15, 5, true},
		{"P5", Path(5), 5, 4, -1, true},
		{"C7", Cycle(7), 7, 7, 2, true},
		{"Q4", Hypercube(4), 16, 32, 4, true},
		{"Torus4x5", Torus(4, 5), 20, 40, 4, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Fatalf("n=%d m=%d, want n=%d m=%d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
			if tc.regular >= 0 {
				for v := 0; v < tc.g.N(); v++ {
					if tc.g.Degree(v) != tc.regular {
						t.Fatalf("vertex %d degree %d, want %d", v, tc.g.Degree(v), tc.regular)
					}
				}
			}
			if IsConnected(tc.g) != tc.connected {
				t.Fatalf("IsConnected = %v, want %v", IsConnected(tc.g), tc.connected)
			}
		})
	}
}

func TestHararyDegrees(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{2, 8}, {3, 8}, {4, 9}, {5, 11}, {6, 20}} {
		g, err := Harary(tc.k, tc.n)
		if err != nil {
			t.Fatalf("Harary(%d,%d): %v", tc.k, tc.n, err)
		}
		if !IsConnected(g) {
			t.Fatalf("Harary(%d,%d) disconnected", tc.k, tc.n)
		}
		if md := g.MinDegree(); md < tc.k {
			t.Fatalf("Harary(%d,%d) min degree %d < k", tc.k, tc.n, md)
		}
		// Harary is edge-minimal: ceil(kn/2) edges (within rounding for odd/odd).
		if g.M() > (tc.k*tc.n+1)/2+1 {
			t.Fatalf("Harary(%d,%d) has %d edges, expected about %d", tc.k, tc.n, g.M(), (tc.k*tc.n+1)/2)
		}
	}
	if _, err := Harary(1, 5); err == nil {
		t.Fatal("Harary(1,5) accepted")
	}
	if _, err := Harary(5, 5); err == nil {
		t.Fatal("Harary(5,5) accepted")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := ds.NewRand(11)
	g, err := RandomRegular(50, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 5, rng); err == nil {
		t.Fatal("d >= n accepted")
	}
}

func TestRandomHamCycles(t *testing.T) {
	rng := ds.NewRand(3)
	g := RandomHamCycles(40, 3, rng)
	if !IsConnected(g) {
		t.Fatal("union of Hamiltonian cycles disconnected")
	}
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d < 2 || d > 6 {
			t.Fatalf("vertex %d degree %d outside [2,6]", v, d)
		}
	}
}

func TestCliqueChain(t *testing.T) {
	g, err := CliqueChain(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("N = %d, want 20", g.N())
	}
	if !IsConnected(g) {
		t.Fatal("clique chain disconnected")
	}
	if d := Diameter(g); d < 3 {
		t.Fatalf("diameter %d too small for a chain of 4 cliques", d)
	}
	if _, err := CliqueChain(2, 3, 4); err == nil {
		t.Fatal("bridge > size accepted")
	}
}

// TestGnpEdgeCount checks G(n,p) produces a plausible number of edges.
func TestGnpEdgeCount(t *testing.T) {
	rng := ds.NewRand(5)
	n, p := 100, 0.3
	g := Gnp(n, p, rng)
	expected := float64(n*(n-1)/2) * p
	if m := float64(g.M()); m < expected*0.7 || m > expected*1.3 {
		t.Fatalf("G(100,0.3) has %d edges, expected about %.0f", g.M(), expected)
	}
}

// TestNeighborsSortedProperty: neighbor lists must be sorted and
// loop-free for any random edge set.
func TestNeighborsSortedProperty(t *testing.T) {
	property := func(pairs []uint16) bool {
		const n = 40
		b := NewBuilder(n)
		for _, p := range pairs {
			b.AddEdge(int(p)%n, int(p>>8)%n)
		}
		g := b.Graph()
		for u := 0; u < n; u++ {
			nbrs := g.Neighbors(u)
			for i, v := range nbrs {
				if int(v) == u {
					return false
				}
				if i > 0 && nbrs[i-1] >= v {
					return false
				}
			}
		}
		// Handshake: sum of degrees = 2m.
		total := 0
		for u := 0; u < n; u++ {
			total += g.Degree(u)
		}
		return total == 2*g.M()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
