package graph

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// Tree is a subtree of a host graph on n vertices, stored as a parent
// forest: parent[v] = -1 for the root, -2 for vertices not in the tree.
// Dominating-tree and spanning-tree packings are collections of Trees.
type Tree struct {
	root     int32
	parent   []int32
	vertices []int32 // sorted
}

const (
	treeAbsent = -2
	treeRoot   = -1
)

// NewTree builds a Tree over a host graph with n vertices from a parent
// map. parentOf must map every non-root tree vertex to its parent; the
// root maps to -1. It returns an error if the structure is not a single
// tree rooted at root.
func NewTree(n int, root int, parentOf map[int]int) (*Tree, error) {
	t := &Tree{root: int32(root), parent: make([]int32, n)}
	for i := range t.parent {
		t.parent[i] = treeAbsent
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("graph: tree root %d out of range", root)
	}
	t.parent[root] = treeRoot
	t.vertices = append(t.vertices, int32(root))
	// Sorted-key iteration keeps everything downstream of the map
	// deterministic — including which entry a validation error names
	// (maprange would flag a direct range here).
	for _, v := range slices.Sorted(maps.Keys(parentOf)) {
		p := parentOf[v]
		if v == root {
			if p != -1 {
				return nil, fmt.Errorf("graph: root %d has parent %d", root, p)
			}
			continue
		}
		if v < 0 || v >= n || p < 0 || p >= n {
			return nil, fmt.Errorf("graph: tree entry %d->%d out of range", v, p)
		}
		t.parent[v] = int32(p)
		t.vertices = append(t.vertices, int32(v))
	}
	sort.Slice(t.vertices, func(i, j int) bool { return t.vertices[i] < t.vertices[j] })
	// Every vertex must reach the root without cycles.
	for _, v := range t.vertices {
		steps := 0
		for u := v; t.parent[u] != treeRoot; u = t.parent[u] {
			if t.parent[u] == treeAbsent {
				return nil, fmt.Errorf("graph: vertex %d's ancestor chain leaves the tree", v)
			}
			steps++
			if steps > len(t.vertices) {
				return nil, fmt.Errorf("graph: cycle in parent chain of vertex %d", v)
			}
		}
	}
	return t, nil
}

// TreeFromBFS builds the BFS spanning tree of g's component containing
// root.
func TreeFromBFS(g *Graph, root int) *Tree {
	dist, parent := BFS(g, root)
	t := &Tree{root: int32(root), parent: make([]int32, g.n)}
	for i := range t.parent {
		t.parent[i] = treeAbsent
	}
	for v := 0; v < g.n; v++ {
		if dist[v] < 0 {
			continue
		}
		if v == root {
			t.parent[v] = treeRoot
		} else {
			t.parent[v] = parent[v]
		}
		t.vertices = append(t.vertices, int32(v))
	}
	return t
}

// Root returns the tree root.
func (t *Tree) Root() int { return int(t.root) }

// Size returns the number of vertices in the tree.
func (t *Tree) Size() int { return len(t.vertices) }

// Contains reports whether v is a tree vertex.
func (t *Tree) Contains(v int) bool { return t.parent[v] != treeAbsent }

// Parent returns v's parent and true, or (-1,false) for the root or for
// vertices outside the tree.
func (t *Tree) Parent(v int) (int, bool) {
	p := t.parent[v]
	if p < 0 {
		return -1, false
	}
	return int(p), true
}

// Vertices returns the sorted vertex list. The slice is shared; do not
// modify it.
func (t *Tree) Vertices() []int32 { return t.vertices }

// EdgeCount returns the number of tree edges (Size()-1 for a valid tree).
func (t *Tree) EdgeCount() int { return len(t.vertices) - 1 }

// ForEachEdge calls fn once per tree edge (child, parent).
func (t *Tree) ForEachEdge(fn func(child, parent int)) {
	for _, v := range t.vertices {
		if p := t.parent[v]; p >= 0 {
			fn(int(v), int(p))
		}
	}
}

// Height returns the maximum root-to-leaf distance (0 for a single
// vertex). Because every tree path between two vertices has length at
// most 2*Height, this bounds the tree diameter the paper's Theorem 1.1
// constrains.
func (t *Tree) Height() int {
	depth := make(map[int32]int32, len(t.vertices))
	var depthOf func(v int32) int32
	depthOf = func(v int32) int32 {
		if t.parent[v] == treeRoot {
			return 0
		}
		if d, ok := depth[v]; ok {
			return d
		}
		d := depthOf(t.parent[v]) + 1
		depth[v] = d
		return d
	}
	max := int32(0)
	for _, v := range t.vertices {
		if d := depthOf(v); d > max {
			max = d
		}
	}
	return int(max)
}

// ValidateIn checks that t is a tree whose edges all exist in g.
func (t *Tree) ValidateIn(g *Graph) error {
	if len(t.vertices) == 0 {
		return fmt.Errorf("graph: empty tree")
	}
	bad := error(nil)
	t.ForEachEdge(func(child, parent int) {
		if bad == nil && !g.HasEdge(child, parent) {
			bad = fmt.Errorf("graph: tree edge (%d,%d) not in host graph", child, parent)
		}
	})
	return bad
}

// IsSpanning reports whether t contains every vertex of g.
func (t *Tree) IsSpanning(g *Graph) bool { return len(t.vertices) == g.n }

// IsDominatingIn reports whether every vertex of g is in t or adjacent
// to a vertex of t — the dominating-tree condition of Section 2.
func (t *Tree) IsDominatingIn(g *Graph) bool {
	for v := 0; v < g.n; v++ {
		if t.Contains(v) {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if t.Contains(int(w)) {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// SpanningTreeOfSubset builds a spanning tree of g[S] (the subgraph
// induced by S) rooted at the smallest vertex of S, provided g[S] is
// connected. This implements the paper's CDS-to-dominating-tree step
// (the 0/1-weight MST of Section 3.1 reduces to exactly this).
func SpanningTreeOfSubset(g *Graph, inSet func(v int) bool) (*Tree, error) {
	root := -1
	for v := 0; v < g.n; v++ {
		if inSet(v) {
			root = v
			break
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("graph: empty vertex set")
	}
	t := &Tree{root: int32(root), parent: make([]int32, g.n)}
	for i := range t.parent {
		t.parent[i] = treeAbsent
	}
	t.parent[root] = treeRoot
	t.vertices = append(t.vertices, int32(root))
	queue := []int32{int32(root)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if inSet(int(v)) && t.parent[v] == treeAbsent {
				t.parent[v] = u
				t.vertices = append(t.vertices, v)
				queue = append(queue, v)
			}
		}
	}
	size := 0
	for v := 0; v < g.n; v++ {
		if inSet(v) {
			size++
		}
	}
	if size != len(t.vertices) {
		return nil, fmt.Errorf("graph: induced subgraph disconnected (%d of %d reached)", len(t.vertices), size)
	}
	sort.Slice(t.vertices, func(i, j int) bool { return t.vertices[i] < t.vertices[j] })
	return t, nil
}
