package graph

// BFS runs a breadth-first search from src and returns the distance and
// parent arrays. Unreachable vertices have dist = -1 and parent = -1;
// src has parent -1.
func BFS(g *Graph, src int) (dist, parent []int32) {
	dist = make([]int32, g.n)
	parent = make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// Components labels the connected components of g. labels[v] is a dense
// component index in [0, count).
func Components(g *Graph) (labels []int32, count int) {
	labels = make([]int32, g.n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(count)
		queue = queue[:0]
		queue = append(queue, int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(int(u)) {
				if labels[v] < 0 {
					labels[v] = int32(count)
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether g is connected. The empty graph counts as
// connected.
func IsConnected(g *Graph) bool {
	if g.n == 0 {
		return true
	}
	dist, _ := BFS(g, 0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the greatest BFS distance from src, or -1 if the
// graph is disconnected from src.
func Eccentricity(g *Graph, src int) int {
	dist, _ := BFS(g, src)
	ecc := int32(0)
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}

// Diameter returns the exact diameter via all-pairs BFS (O(nm)); it
// returns -1 for disconnected graphs. Intended for the modest sizes used
// in tests and experiment calibration.
func Diameter(g *Graph) int {
	diam := 0
	for s := 0; s < g.n; s++ {
		e := Eccentricity(g, s)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// ApproxDiameter returns a value D' with Diameter <= D' <= 2*Diameter in
// O(m) time: twice the eccentricity of an arbitrary vertex, refined by a
// double sweep. Returns -1 for disconnected graphs. This mirrors the
// paper's assumption (Section 2) that nodes know a 2-approximation of D.
func ApproxDiameter(g *Graph) int {
	if g.n == 0 {
		return 0
	}
	dist, _ := BFS(g, 0)
	far, ecc := 0, int32(0)
	for v, d := range dist {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc, far = d, v
		}
	}
	// Double sweep: eccentricity of the farthest vertex is a lower bound
	// and at most the true diameter; 2x is a valid upper bound.
	e2 := Eccentricity(g, far)
	if e2 < 0 {
		return -1
	}
	return 2 * e2
}

// BFSRestricted runs BFS from src but only traverses vertices for which
// allowed reports true (src must be allowed). It is the primitive behind
// class-restricted component identification.
func BFSRestricted(g *Graph, src int, allowed func(v int) bool) (dist []int32) {
	dist = make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if !allowed(src) {
		return dist
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 && allowed(int(v)) {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
