package graph

import (
	"testing"
)

// TestBuilderGraphAllocatesO1Slices pins the CSR finalize cost: one
// clone of the key list, the edge list, the three CSR arrays, one fill
// cursor, and the Graph header — independent of vertex count, where the
// old slice-of-slices layout allocated 2n+O(1).
func TestBuilderGraphAllocatesO1Slices(t *testing.T) {
	for _, d := range []int{4, 6, 8} {
		n := 1 << d
		b := NewBuilder(n)
		for u := 0; u < n; u++ {
			for bit := 0; bit < d; bit++ {
				if v := u ^ (1 << bit); u < v {
					b.AddEdge(u, v)
				}
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if g := b.Graph(); g.N() != n {
				t.Fatal("bad graph")
			}
		})
		if allocs > 8 {
			t.Fatalf("Q%d: Builder.Graph() made %.0f allocations, want O(1) (<= 8)", d, allocs)
		}
	}
}

func benchmarkBuild(b *testing.B, d int) {
	n := 1 << d
	bld := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			if v := u ^ (1 << bit); u < v {
				bld.AddEdge(u, v)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := bld.Graph(); g.M() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkBuilderGraph measures CSR finalization (sort+dedup+two-pass
// fill) with allocation counts.
func BenchmarkBuilderGraph(b *testing.B) {
	for _, d := range []int{6, 8, 10} {
		b.Run("Q"+string(rune('0'+d/10))+string(rune('0'+d%10)), func(b *testing.B) {
			benchmarkBuild(b, d)
		})
	}
}

// BenchmarkBuilderAddEdge measures the append-only edge intake.
func BenchmarkBuilderAddEdge(b *testing.B) {
	const n = 1 << 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n)
		for u := 0; u < n; u++ {
			bld.AddEdge(u, (u+1)%n)
			bld.AddEdge(u, (u+7)%n)
		}
	}
}
