// Package graph provides the undirected simple-graph substrate used by
// every other module: a compact adjacency representation with stable edge
// identifiers, generators for the families the experiments run on, and
// the traversal utilities (BFS, components, diameter) the paper's
// algorithms assume as primitives.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between U and V with U < V.
type Edge struct {
	U, V int32
}

// Graph is an immutable undirected simple graph on vertices 0..N()-1.
// Neighbor lists are sorted; every edge has a stable identifier equal to
// its index in Edges(), which the spanning-tree packing uses for
// per-edge load accounting.
type Graph struct {
	n       int
	adj     [][]int32 // sorted neighbor lists
	adjEdge [][]int32 // adjEdge[u][i] = edge id of (u, adj[u][i])
	edges   []Edge
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are silently dropped, so generators can over-propose.
type Builder struct {
	n    int
	seen map[Edge]bool
	list []Edge
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, seen: make(map[Edge]bool)}
}

// AddEdge records the undirected edge {u,v}. Self-loops and duplicates
// are ignored. Vertices must be in range; out-of-range panics because it
// is always a programming error in a generator.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	e := Edge{int32(u), int32(v)}
	if b.seen[e] {
		return
	}
	b.seen[e] = true
	b.list = append(b.list, e)
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return b.seen[Edge{int32(u), int32(v)}]
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.list) }

// Graph finalizes the builder into an immutable Graph.
func (b *Builder) Graph() *Graph {
	edges := append([]Edge(nil), b.list...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return fromEdges(b.n, edges)
}

func fromEdges(n int, edges []Edge) *Graph {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	adj := make([][]int32, n)
	adjEdge := make([][]int32, n)
	for u := range adj {
		adj[u] = make([]int32, 0, deg[u])
		adjEdge[u] = make([]int32, 0, deg[u])
	}
	for id, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adjEdge[e.U] = append(adjEdge[e.U], int32(id))
		adj[e.V] = append(adj[e.V], e.U)
		adjEdge[e.V] = append(adjEdge[e.V], int32(id))
	}
	g := &Graph{n: n, adj: adj, adjEdge: adjEdge, edges: edges}
	for u := 0; u < n; u++ {
		g.sortAdj(u)
	}
	return g
}

func (g *Graph) sortAdj(u int) {
	a, e := g.adj[u], g.adjEdge[u]
	sort.Sort(&adjSorter{a, e})
}

type adjSorter struct {
	a []int32
	e []int32
}

func (s *adjSorter) Len() int           { return len(s.a) }
func (s *adjSorter) Less(i, j int) bool { return s.a[i] < s.a[j] }
func (s *adjSorter) Swap(i, j int) {
	s.a[i], s.a[j] = s.a[j], s.a[i]
	s.e[i], s.e[j] = s.e[j], s.e[i]
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MinDegree returns the minimum degree over all vertices, or 0 for an
// empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if d := g.Degree(u); d < min {
			min = d
		}
	}
	return min
}

// Neighbors returns u's sorted neighbor list. The slice is shared; do
// not modify it.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// IncidentEdges returns the edge ids parallel to Neighbors(u). The slice
// is shared; do not modify it.
func (g *Graph) IncidentEdges(u int) []int32 { return g.adjEdge[u] }

// Edges returns the edge list indexed by edge id. The slice is shared;
// do not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Endpoints returns the two endpoints of edge id e.
func (g *Graph) Endpoints(e int) (int, int) {
	ed := g.edges[e]
	return int(ed.U), int(ed.V)
}

// HasEdge reports whether {u,v} is an edge, by binary search on the
// smaller neighbor list.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// EdgeID returns the id of edge {u,v} and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	if u == v {
		return 0, false
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	if i < len(a) && a[i] == int32(v) {
		return int(g.adjEdge[u][i]), true
	}
	return 0, false
}

// InducedSubgraph returns the subgraph induced by the given vertex set
// together with the mapping from new ids to original ids. Vertices may
// be listed in any order; duplicates are rejected.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	orig := make([]int, 0, len(vertices))
	index := make(map[int]int, len(vertices))
	for _, v := range vertices {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := index[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		index[v] = len(orig)
		orig = append(orig, v)
	}
	b := NewBuilder(len(orig))
	for newU, u := range orig {
		for _, w := range g.adj[u] {
			if newW, ok := index[int(w)]; ok && newU < newW {
				b.AddEdge(newU, newW)
			}
		}
	}
	return b.Graph(), orig, nil
}

// SubgraphByEdges returns the spanning subgraph of g containing exactly
// the edges whose ids satisfy keep.
func (g *Graph) SubgraphByEdges(keep func(edgeID int) bool) *Graph {
	b := NewBuilder(g.n)
	for id, e := range g.edges {
		if keep(id) {
			b.AddEdge(int(e.U), int(e.V))
		}
	}
	return b.Graph()
}

// FromEdgeList builds a graph on n vertices from an explicit edge list.
// It is a convenience for tests.
func FromEdgeList(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}
