// Package graph provides the undirected simple-graph substrate used by
// every other module: a compact adjacency representation with stable edge
// identifiers, generators for the families the experiments run on, and
// the traversal utilities (BFS, components, diameter) the paper's
// algorithms assume as primitives.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Edge is an undirected edge between U and V with U < V.
type Edge struct {
	U, V int32
}

// Graph is an immutable undirected simple graph on vertices 0..N()-1 in
// CSR (compressed sparse row) form: one flat neighbor array and one flat
// incident-edge-id array, both indexed by per-vertex offsets. Neighbor
// lists are sorted; every edge has a stable identifier equal to its
// index in Edges(), which the spanning-tree packing uses for per-edge
// load accounting.
type Graph struct {
	n     int
	off   []int32 // len n+1: vertex u's adjacency is [off[u], off[u+1])
	nbr   []int32 // len 2m: flat sorted neighbor lists
	eid   []int32 // len 2m: eid[p] = edge id of (u, nbr[p])
	edges []Edge
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are silently dropped, so generators can over-propose.
// Edges are kept as packed (u,v) keys and deduplicated once at finalize
// time by sort+compact; no per-edge hashing happens unless a caller asks
// mid-build questions (HasEdge/NumEdges), which build a lazy index.
type Builder struct {
	n    int
	keys []uint64            // (u<<32)|v with u < v; may contain duplicates
	seen map[uint64]struct{} // lazy, built on first HasEdge/NumEdges call
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v}. Self-loops and duplicates
// are ignored. Vertices must be in range; out-of-range panics because it
// is always a programming error in a generator.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	k := uint64(u)<<32 | uint64(v)
	if b.seen != nil {
		if _, dup := b.seen[k]; dup {
			return
		}
		b.seen[k] = struct{}{}
	}
	b.keys = append(b.keys, k)
}

// ensureSeen builds the lazy duplicate index from the keys added so far.
func (b *Builder) ensureSeen() {
	if b.seen != nil {
		return
	}
	b.seen = make(map[uint64]struct{}, len(b.keys))
	for _, k := range b.keys {
		b.seen[k] = struct{}{}
	}
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	b.ensureSeen()
	_, ok := b.seen[uint64(u)<<32|uint64(v)]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int {
	b.ensureSeen()
	return len(b.seen)
}

// Graph finalizes the builder into an immutable Graph. The builder
// remains usable afterwards.
func (b *Builder) Graph() *Graph {
	keys := slices.Clone(b.keys)
	slices.Sort(keys)
	keys = slices.Compact(keys)
	edges := make([]Edge, len(keys))
	for i, k := range keys {
		edges[i] = Edge{U: int32(k >> 32), V: int32(k & 0xffffffff)}
	}
	return fromEdges(b.n, edges)
}

// fromEdges builds the CSR arrays from an edge list sorted by (U,V).
// Two ordered fill passes leave every neighbor list sorted without any
// comparison sort: the first pass appends each vertex's lower neighbors
// (ascending, because edges are sorted by U), the second its higher
// neighbors (ascending, because for fixed U edges are sorted by V).
func fromEdges(n int, edges []Edge) *Graph {
	off := make([]int32, n+1)
	for _, e := range edges {
		off[e.U+1]++
		off[e.V+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	m2 := int(off[n])
	nbr := make([]int32, m2)
	eid := make([]int32, m2)
	cur := make([]int32, n)
	copy(cur, off[:n])
	for id, e := range edges {
		p := cur[e.V]
		cur[e.V] = p + 1
		nbr[p] = e.U
		eid[p] = int32(id)
	}
	for id, e := range edges {
		p := cur[e.U]
		cur[e.U] = p + 1
		nbr[p] = e.V
		eid[p] = int32(id)
	}
	return &Graph{n: n, off: off, nbr: nbr, eid: eid, edges: edges}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return int(g.off[u+1] - g.off[u]) }

// MinDegree returns the minimum degree over all vertices, or 0 for an
// empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if d := g.Degree(u); d < min {
			min = d
		}
	}
	return min
}

// Neighbors returns u's sorted neighbor list — a view into the shared
// CSR array; do not modify it.
func (g *Graph) Neighbors(u int) []int32 { return g.nbr[g.off[u]:g.off[u+1]] }

// IncidentEdges returns the edge ids parallel to Neighbors(u) — a view
// into the shared CSR array; do not modify it.
func (g *Graph) IncidentEdges(u int) []int32 { return g.eid[g.off[u]:g.off[u+1]] }

// AdjOffsets returns the CSR offset array (length N()+1): vertex u's
// rows in the flat arrays are [AdjOffsets()[u], AdjOffsets()[u+1]).
// Shared; do not modify.
func (g *Graph) AdjOffsets() []int32 { return g.off }

// AdjTargets returns the flat CSR neighbor array (length 2M()). Shared;
// do not modify.
func (g *Graph) AdjTargets() []int32 { return g.nbr }

// AdjEdgeIDs returns the flat CSR incident-edge-id array parallel to
// AdjTargets. Shared; do not modify.
func (g *Graph) AdjEdgeIDs() []int32 { return g.eid }

// Edges returns the edge list indexed by edge id. The slice is shared;
// do not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Endpoints returns the two endpoints of edge id e.
func (g *Graph) Endpoints(e int) (int, int) {
	ed := g.edges[e]
	return int(ed.U), int(ed.V)
}

// HasEdge reports whether {u,v} is an edge, by binary search on the
// smaller neighbor list.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	a := g.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// EdgeID returns the id of edge {u,v} and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	if u == v {
		return 0, false
	}
	a := g.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	if i < len(a) && a[i] == int32(v) {
		return int(g.IncidentEdges(u)[i]), true
	}
	return 0, false
}

// NeighborIndex returns the position of v in u's sorted neighbor list,
// or -1 when {u,v} is not an edge. The simulator's routing uses it to
// map sender ids back to adjacency rows.
func (g *Graph) NeighborIndex(u, v int) int {
	a := g.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	if i < len(a) && a[i] == int32(v) {
		return i
	}
	return -1
}

// InducedSubgraph returns the subgraph induced by the given vertex set
// together with the mapping from new ids to original ids. Vertices may
// be listed in any order; duplicates are rejected.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	orig := make([]int, 0, len(vertices))
	index := make(map[int]int, len(vertices))
	for _, v := range vertices {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := index[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		index[v] = len(orig)
		orig = append(orig, v)
	}
	b := NewBuilder(len(orig))
	for newU, u := range orig {
		for _, w := range g.Neighbors(u) {
			if newW, ok := index[int(w)]; ok && newU < newW {
				b.AddEdge(newU, newW)
			}
		}
	}
	return b.Graph(), orig, nil
}

// SubgraphByEdges returns the spanning subgraph of g containing exactly
// the edges whose ids satisfy keep.
func (g *Graph) SubgraphByEdges(keep func(edgeID int) bool) *Graph {
	kept := make([]Edge, 0, len(g.edges))
	for id, e := range g.edges {
		if keep(id) {
			kept = append(kept, e)
		}
	}
	// g.edges is sorted by (U,V), so the filtered list already is too.
	return fromEdges(g.n, kept)
}

// FromEdgeList builds a graph on n vertices from an explicit edge list.
// It is a convenience for tests.
func FromEdgeList(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}
