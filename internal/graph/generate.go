package graph

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/ds"
)

// Complete returns K_n, which has vertex and edge connectivity n-1.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Graph()
}

// Path returns the path P_n (connectivity 1, diameter n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	return b.Graph()
}

// Cycle returns the cycle C_n (connectivity 2).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n)
	}
	return b.Graph()
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices.
// Both its vertex and edge connectivity equal d, making it the
// experiments' canonical "known-k" family.
func Hypercube(d int) *Graph {
	n := 1 << d
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << bit)
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Graph()
}

// Torus returns the rows x cols wraparound grid. For rows, cols >= 3 it
// is 4-regular with vertex and edge connectivity 4.
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id((r+1)%rows, c))
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
		}
	}
	return b.Graph()
}

// Harary returns the Harary graph H_{k,n}: the k-connected graph on n
// vertices with the minimum possible number of edges (⌈kn/2⌉). Its
// vertex and edge connectivity are exactly k, which makes it the exact
// ground-truth family for the connectivity-approximation experiments.
// It requires 2 <= k < n.
func Harary(k, n int) (*Graph, error) {
	if k < 2 || k >= n {
		return nil, fmt.Errorf("graph: Harary needs 2 <= k < n, got k=%d n=%d", k, n)
	}
	b := NewBuilder(n)
	half := k / 2
	for u := 0; u < n; u++ {
		for off := 1; off <= half; off++ {
			b.AddEdge(u, (u+off)%n)
		}
	}
	if k%2 == 1 {
		if n%2 == 0 {
			for u := 0; u < n/2; u++ {
				b.AddEdge(u, u+n/2)
			}
		} else {
			// Odd k, odd n: standard Harary construction adds the
			// (n+1)/2 edges {i, i+(n-1)/2} for 0 <= i <= (n-1)/2; the
			// middle vertex gains two, all others gain one.
			for u := 0; u <= (n-1)/2; u++ {
				b.AddEdge(u, (u+(n-1)/2)%n)
			}
		}
	}
	return b.Graph(), nil
}

// Gnp returns an Erdős–Rényi random graph G(n,p); for p well above
// log(n)/n its vertex connectivity concentrates near the minimum degree.
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Graph()
}

// RandomHamCycles returns the union of c independent uniformly random
// Hamiltonian cycles on n vertices. The result is 2c-regular (up to
// coincidences) and w.h.p. has vertex and edge connectivity 2c; it is
// the experiments' scalable "tunable-k expander" family.
func RandomHamCycles(n, c int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	perm := make([]int, n)
	for i := 0; i < c; i++ {
		ds.Perm(rng, perm)
		for j := 0; j < n; j++ {
			b.AddEdge(perm[j], perm[(j+1)%n])
		}
	}
	return b.Graph()
}

// RandomRegular returns a (near-)d-regular random simple graph via the
// configuration model with rejection of loops and duplicates, retrying
// stubs a bounded number of times. For d >= 3 the result is d-connected
// w.h.p. It requires n*d even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular needs n*d even, got n=%d d=%d", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: RandomRegular needs d < n, got n=%d d=%d", n, d)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		stubs := make([]int, 0, n*d)
		for u := 0; u < n; u++ {
			for j := 0; j < d; j++ {
				stubs = append(stubs, u)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		b := NewBuilder(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || b.HasEdge(u, v) {
				ok = false
				break
			}
			b.AddEdge(u, v)
		}
		if ok {
			return b.Graph(), nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d,d=%d) failed after %d attempts", n, d, maxAttempts)
}

// CliqueChain returns a path of `cliques` cliques of size `size`, where
// consecutive cliques are joined by `bridge` vertex-disjoint edges. Its
// vertex and edge connectivity equal min(bridge, size-1) and its
// diameter grows linearly in `cliques`, giving a high-diameter,
// low-connectivity family for round-complexity experiments.
func CliqueChain(cliques, size, bridge int) (*Graph, error) {
	if bridge > size {
		return nil, fmt.Errorf("graph: CliqueChain bridge %d exceeds clique size %d", bridge, size)
	}
	if cliques < 1 || size < 2 {
		return nil, fmt.Errorf("graph: CliqueChain needs cliques >= 1, size >= 2")
	}
	n := cliques * size
	b := NewBuilder(n)
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
		if c+1 < cliques {
			next := (c + 1) * size
			for i := 0; i < bridge; i++ {
				b.AddEdge(base+i, next+i)
			}
		}
	}
	return b.Graph(), nil
}

// RandomSpanningConnected adds a random spanning tree to g's edge set so
// that the result is connected; it is used to repair sparse random
// graphs in workload generators.
func RandomSpanningConnected(n int, extra []Edge, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	perm := make([]int, n)
	ds.Perm(rng, perm)
	for i := 1; i < n; i++ {
		b.AddEdge(perm[i], perm[rng.IntN(i)])
	}
	for _, e := range extra {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b.Graph()
}
