package graph

import (
	"fmt"
	"io"
)

// DOTOptions customizes WriteDOT output. Nil callbacks fall back to
// defaults.
type DOTOptions struct {
	Name      string                // graph name; default "G"
	NodeAttrs func(v int) string    // extra attrs, e.g. `color="red"`
	EdgeAttrs func(u, v int) string // extra attrs per edge
	KeepNode  func(v int) bool      // nil keeps all
	ExtraEdge []Edge                // drawn dashed, for overlays
	Label     func(v int) string    // node label; default id
}

// WriteDOT renders g in Graphviz format. It backs cmd/figures, which
// regenerates the paper's schematic figures from live data structures.
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if opts.KeepNode != nil && !opts.KeepNode(v) {
			continue
		}
		label := fmt.Sprintf("%d", v)
		if opts.Label != nil {
			label = opts.Label(v)
		}
		attrs := ""
		if opts.NodeAttrs != nil {
			attrs = opts.NodeAttrs(v)
		}
		if attrs != "" {
			attrs = ", " + attrs
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"%s];\n", v, label, attrs); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		u, v := int(e.U), int(e.V)
		if opts.KeepNode != nil && (!opts.KeepNode(u) || !opts.KeepNode(v)) {
			continue
		}
		attrs := ""
		if opts.EdgeAttrs != nil {
			attrs = opts.EdgeAttrs(u, v)
		}
		if attrs != "" {
			attrs = " [" + attrs + "]"
		}
		if _, err := fmt.Fprintf(w, "  n%d -- n%d%s;\n", u, v, attrs); err != nil {
			return err
		}
	}
	for _, e := range opts.ExtraEdge {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d [style=dashed];\n", e.U, e.V); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
