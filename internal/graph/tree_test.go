package graph

import (
	"strings"
	"testing"
)

func TestNewTreeValid(t *testing.T) {
	tr, err := NewTree(5, 0, map[int]int{1: 0, 2: 0, 3: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 4 || tr.Root() != 0 || tr.EdgeCount() != 3 {
		t.Fatalf("size=%d root=%d edges=%d", tr.Size(), tr.Root(), tr.EdgeCount())
	}
	if !tr.Contains(3) || tr.Contains(4) {
		t.Fatal("Contains bookkeeping wrong")
	}
	if p, ok := tr.Parent(3); !ok || p != 1 {
		t.Fatalf("Parent(3) = (%d,%v), want (1,true)", p, ok)
	}
	if _, ok := tr.Parent(0); ok {
		t.Fatal("root reported a parent")
	}
	if h := tr.Height(); h != 2 {
		t.Fatalf("Height = %d, want 2", h)
	}
}

func TestNewTreeRejectsBadStructures(t *testing.T) {
	if _, err := NewTree(4, 0, map[int]int{1: 2}); err == nil {
		t.Fatal("dangling parent chain accepted")
	}
	if _, err := NewTree(4, 0, map[int]int{1: 2, 2: 1}); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := NewTree(4, 9, nil); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := NewTree(4, 0, map[int]int{1: 7}); err == nil {
		t.Fatal("out-of-range parent accepted")
	}
}

func TestTreeFromBFSSpanning(t *testing.T) {
	g := Hypercube(3)
	tr := TreeFromBFS(g, 0)
	if !tr.IsSpanning(g) {
		t.Fatal("BFS tree of connected graph not spanning")
	}
	if err := tr.ValidateIn(g); err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(); h != 3 {
		t.Fatalf("BFS height of Q3 = %d, want 3", h)
	}
	if !tr.IsDominatingIn(g) {
		t.Fatal("spanning tree must dominate")
	}
}

func TestTreeDominating(t *testing.T) {
	// Star K_{1,4}: tree = center alone dominates.
	g := FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	tr, err := NewTree(5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsDominatingIn(g) {
		t.Fatal("center of a star should dominate")
	}
	// A leaf alone does not dominate the other leaves.
	leaf, err := NewTree(5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.IsDominatingIn(g) {
		t.Fatal("a single leaf cannot dominate a star")
	}
}

func TestValidateInCatchesForeignEdges(t *testing.T) {
	g := Path(4)                                // edges 0-1,1-2,2-3
	tr, err := NewTree(4, 0, map[int]int{2: 0}) // edge (2,0) not in P4
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ValidateIn(g); err == nil {
		t.Fatal("foreign edge not caught")
	}
}

func TestSpanningTreeOfSubset(t *testing.T) {
	g := Cycle(8)
	even := func(v int) bool { return v%2 == 0 }
	if _, err := SpanningTreeOfSubset(g, even); err == nil {
		t.Fatal("disconnected induced subgraph accepted")
	}
	firstHalf := func(v int) bool { return v < 5 }
	tr, err := SpanningTreeOfSubset(g, firstHalf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 5 {
		t.Fatalf("Size = %d, want 5", tr.Size())
	}
	if err := tr.ValidateIn(g); err != nil {
		t.Fatal(err)
	}
	if _, err := SpanningTreeOfSubset(g, func(int) bool { return false }); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestForEachEdgeCount(t *testing.T) {
	g := Complete(6)
	tr := TreeFromBFS(g, 2)
	edges := 0
	tr.ForEachEdge(func(child, parent int) {
		edges++
		if !g.HasEdge(child, parent) {
			t.Fatalf("edge (%d,%d) not in host", child, parent)
		}
	})
	if edges != tr.EdgeCount() {
		t.Fatalf("ForEachEdge visited %d edges, want %d", edges, tr.EdgeCount())
	}
}

func TestWriteDOT(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	err := WriteDOT(&sb, g, DOTOptions{Name: "P3"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph P3", "n0 -- n1", "n1 -- n2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
