package graph

import (
	"testing"

	"repro/internal/ds"
)

// treeFromEdgesReference is the allocation-heavy path the pool replaces:
// rebuild a Graph from the tree edges and BFS it.
func treeFromEdgesReference(g *Graph, edgeIDs []int, root int) *Tree {
	b := NewBuilder(g.N())
	for _, e := range edgeIDs {
		u, v := g.Endpoints(e)
		b.AddEdge(u, v)
	}
	return TreeFromBFS(b.Graph(), root)
}

// spanningEdgeIDs picks a deterministic spanning tree of g by a BFS over
// edge ids.
func spanningEdgeIDs(t *testing.T, g *Graph) []int {
	t.Helper()
	uf := ds.NewUnionFind(g.N())
	var ids []int
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if uf.Union(u, v) {
			ids = append(ids, e)
		}
	}
	if len(ids) != g.N()-1 {
		t.Fatalf("graph not connected: %d tree edges for n=%d", len(ids), g.N())
	}
	return ids
}

func TestTreePoolMatchesBuilderBFS(t *testing.T) {
	cases := []*Graph{
		Hypercube(4),
		Complete(12),
		Torus(4, 5),
		Cycle(9),
	}
	pool := NewTreePool(32)
	for _, g := range cases {
		ids := spanningEdgeIDs(t, g)
		got, err := pool.SpanningFromEdgeIDs(g, ids, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := treeFromEdgesReference(g, ids, 0)
		if got.Root() != want.Root() || got.Size() != want.Size() {
			t.Fatalf("root/size mismatch: got (%d,%d) want (%d,%d)", got.Root(), got.Size(), want.Root(), want.Size())
		}
		for v := 0; v < g.N(); v++ {
			gp, gok := got.Parent(v)
			wp, wok := want.Parent(v)
			if gp != wp || gok != wok {
				t.Fatalf("parent[%d]: got (%d,%v) want (%d,%v)", v, gp, gok, wp, wok)
			}
		}
		if err := got.ValidateIn(g); err != nil {
			t.Fatal(err)
		}
		if !got.IsSpanning(g) {
			t.Fatal("pool tree not spanning")
		}
	}
}

func TestTreePoolReusedAcrossTrees(t *testing.T) {
	g := Complete(10)
	pool := NewTreePool(g.N())
	// Two different spanning trees through the same pool must not bleed
	// adjacency into each other.
	star := make([]int, 0, g.N()-1)
	for v := 1; v < g.N(); v++ {
		id, ok := g.EdgeID(0, v)
		if !ok {
			t.Fatalf("edge (0,%d) missing", v)
		}
		star = append(star, id)
	}
	path := make([]int, 0, g.N()-1)
	for v := 0; v < g.N()-1; v++ {
		id, ok := g.EdgeID(v, v+1)
		if !ok {
			t.Fatalf("edge (%d,%d) missing", v, v+1)
		}
		path = append(path, id)
	}
	for trial := 0; trial < 3; trial++ {
		for _, ids := range [][]int{star, path} {
			got, err := pool.SpanningFromEdgeIDs(g, ids, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := treeFromEdgesReference(g, ids, 0)
			for v := 0; v < g.N(); v++ {
				gp, _ := got.Parent(v)
				wp, _ := want.Parent(v)
				if gp != wp {
					t.Fatalf("trial %d parent[%d]: got %d want %d", trial, v, gp, wp)
				}
			}
		}
	}
}

func TestTreePoolRejectsNonSpanning(t *testing.T) {
	g := Cycle(6)
	ids := spanningEdgeIDs(t, g)
	if _, err := NewTreePool(g.N()).SpanningFromEdgeIDs(g, ids[:len(ids)-1], 0); err == nil {
		t.Fatal("accepted too few edges")
	}
	// n-1 edges that do not span: duplicate-component shape — a path on
	// {0,1,2} plus an edge of {3,4} leaves 5 unreached with 4 edges on C6.
	bad := []int{ids[0], ids[1], ids[2], ids[3]}
	pool := NewTreePool(g.N())
	if _, err := pool.SpanningFromEdgeIDs(g, bad[:3], 0); err == nil {
		t.Fatal("accepted 3 edges for n=6")
	}
}
