package graph

import (
	"testing"

	"repro/internal/ds"
)

func TestBFSDistances(t *testing.T) {
	g := Path(6)
	dist, parent := BFS(g, 0)
	for v := 0; v < 6; v++ {
		if int(dist[v]) != v {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if parent[0] != -1 {
		t.Fatalf("parent of source = %d, want -1", parent[0])
	}
	for v := 1; v < 6; v++ {
		if int(parent[v]) != v-1 {
			t.Fatalf("parent[%d] = %d, want %d", v, parent[v], v-1)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromEdgeList(4, [][2]int{{0, 1}}) // {2,3} isolated
	dist, parent := BFS(g, 0)
	if dist[2] != -1 || parent[2] != -1 {
		t.Fatalf("unreachable vertex has dist=%d parent=%d", dist[2], parent[2])
	}
}

func TestComponents(t *testing.T) {
	g := FromEdgeList(7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	labels, count := Components(g)
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("component of {0,1,2} split: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Fatalf("component of {3,4} split: %v", labels)
	}
	if labels[5] == labels[6] || labels[0] == labels[3] {
		t.Fatalf("distinct components merged: %v", labels)
	}
}

func TestDiameterKnownFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"P10", Path(10), 9},
		{"C10", Cycle(10), 5},
		{"K5", Complete(5), 1},
		{"Q4", Hypercube(4), 4},
		{"Torus4x4", Torus(4, 4), 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Diameter(tc.g); got != tc.want {
				t.Fatalf("Diameter = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestApproxDiameterWithinFactor2(t *testing.T) {
	rng := ds.NewRand(17)
	graphs := []*Graph{
		Path(30), Cycle(30), Hypercube(5), Torus(5, 6),
		RandomHamCycles(60, 2, rng),
	}
	for i, g := range graphs {
		exact := Diameter(g)
		approx := ApproxDiameter(g)
		if approx < exact || approx > 2*exact {
			t.Fatalf("graph %d: ApproxDiameter = %d outside [%d, %d]", i, approx, exact, 2*exact)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := FromEdgeList(4, [][2]int{{0, 1}})
	if Diameter(g) != -1 {
		t.Fatal("Diameter of disconnected graph != -1")
	}
	if ApproxDiameter(g) != -1 {
		t.Fatal("ApproxDiameter of disconnected graph != -1")
	}
	if Eccentricity(g, 0) != -1 {
		t.Fatal("Eccentricity in disconnected graph != -1")
	}
}

func TestBFSRestricted(t *testing.T) {
	g := Path(6)
	// Only even vertices allowed: from 0 we can reach only 0.
	dist := BFSRestricted(g, 0, func(v int) bool { return v%2 == 0 })
	if dist[0] != 0 {
		t.Fatalf("dist[0] = %d, want 0", dist[0])
	}
	for v := 1; v < 6; v++ {
		if dist[v] != -1 {
			t.Fatalf("dist[%d] = %d, want -1", v, dist[v])
		}
	}
	// Disallowed source reaches nothing.
	dist = BFSRestricted(g, 1, func(v int) bool { return v%2 == 0 })
	for v := 0; v < 6; v++ {
		if dist[v] != -1 {
			t.Fatalf("disallowed source: dist[%d] = %d, want -1", v, dist[v])
		}
	}
}

func TestIsConnectedEmptyAndSingle(t *testing.T) {
	if !IsConnected(NewBuilder(0).Graph()) {
		t.Fatal("empty graph should count as connected")
	}
	if !IsConnected(NewBuilder(1).Graph()) {
		t.Fatal("single vertex should be connected")
	}
	if IsConnected(NewBuilder(2).Graph()) {
		t.Fatal("two isolated vertices reported connected")
	}
}
