package graph

import (
	"testing"

	"repro/internal/ds"
)

func TestSparseCertificateEdgeBudget(t *testing.T) {
	g := Complete(20)
	for _, k := range []int{1, 3, 5} {
		cert := SparseCertificate(g, k)
		if cert.M() > k*(g.N()-1) {
			t.Fatalf("k=%d: %d edges exceed k(n-1)=%d", k, cert.M(), k*(g.N()-1))
		}
		if cert.N() != g.N() {
			t.Fatalf("certificate changed vertex count")
		}
		if !IsConnected(cert) {
			t.Fatalf("k=%d: certificate disconnected", k)
		}
	}
}

func TestSparseCertificateSubgraph(t *testing.T) {
	rng := ds.NewRand(3)
	g := Gnp(30, 0.3, rng)
	cert := SparseCertificate(g, 2)
	for _, e := range cert.Edges() {
		if !g.HasEdge(int(e.U), int(e.V)) {
			t.Fatalf("certificate edge (%d,%d) not in original", e.U, e.V)
		}
	}
}

func TestSparseCertificateExhaustsSmallGraphs(t *testing.T) {
	g := Path(5) // one spanning forest is the whole graph
	cert := SparseCertificate(g, 10)
	if cert.M() != g.M() {
		t.Fatalf("certificate of a tree should keep all %d edges, got %d", g.M(), cert.M())
	}
}

func TestSparseCertificateKBelowOne(t *testing.T) {
	g := Cycle(6)
	cert := SparseCertificate(g, 0) // clamped to 1
	if cert.M() != 5 {
		t.Fatalf("one forest of C6 should have 5 edges, got %d", cert.M())
	}
}
