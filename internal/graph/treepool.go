package graph

import "fmt"

// TreePool builds rooted spanning Trees directly from host-graph edge-id
// lists, reusing all scratch between calls. The spanning-tree packing's
// MWU loop materializes one Tree per distinct tree in its collection;
// routing each through a fresh Builder + Graph + BFS allocated a CSR
// graph per tree, while the pool keeps one flat adjacency workspace.
//
// Because the input edges form a tree, the rooted parent orientation is
// unique, so the result is identical to building a one-off Graph from
// the same edges and calling TreeFromBFS on it.
type TreePool struct {
	head  []int32 // head[v] = first slot of v's adjacency, -1 if none
	next  []int32 // next[s] = following slot in v's list
	to    []int32 // to[s] = neighbor vertex of the slot's edge
	queue []int32
}

// NewTreePool returns a pool for trees over host graphs of up to n
// vertices.
func NewTreePool(n int) *TreePool {
	p := &TreePool{
		head:  make([]int32, n),
		next:  make([]int32, 0, 2*(n-1)),
		to:    make([]int32, 0, 2*(n-1)),
		queue: make([]int32, 0, n),
	}
	for i := range p.head {
		p.head[i] = -1
	}
	return p
}

// SpanningFromEdgeIDs builds the spanning tree of g rooted at root from
// exactly n-1 edge ids forming a spanning tree. It returns an error when
// the edges do not connect all of g's vertices.
func (p *TreePool) SpanningFromEdgeIDs(g *Graph, edgeIDs []int, root int) (*Tree, error) {
	n := g.N()
	if len(edgeIDs) != n-1 {
		return nil, fmt.Errorf("graph: %d edges cannot span %d vertices", len(edgeIDs), n)
	}
	if n > len(p.head) {
		return nil, fmt.Errorf("graph: pool sized for %d vertices, got %d", len(p.head), n)
	}
	p.next = p.next[:0]
	p.to = p.to[:0]
	for _, e := range edgeIDs {
		u, v := g.Endpoints(e)
		p.link(int32(u), int32(v))
		p.link(int32(v), int32(u))
	}

	t := &Tree{root: int32(root), parent: make([]int32, n), vertices: make([]int32, n)}
	for i := range t.parent {
		t.parent[i] = treeAbsent
		t.vertices[i] = int32(i)
	}
	t.parent[root] = treeRoot
	p.queue = append(p.queue[:0], int32(root))
	visited := 1
	for head := 0; head < len(p.queue); head++ {
		u := p.queue[head]
		for s := p.head[u]; s >= 0; s = p.next[s] {
			v := p.to[s]
			if t.parent[v] == treeAbsent {
				t.parent[v] = u
				p.queue = append(p.queue, v)
				visited++
			}
		}
	}
	for _, u := range p.queue { // reset only the touched heads
		p.head[u] = -1
	}
	if visited != n {
		// Untouched vertices keep head[v] = -1 already; the loop above
		// reset the visited ones, but vertices that got adjacency slots
		// without being reached need clearing too.
		for _, e := range edgeIDs {
			u, v := g.Endpoints(e)
			p.head[u], p.head[v] = -1, -1
		}
		return nil, fmt.Errorf("graph: edge set spans %d of %d vertices", visited, n)
	}
	return t, nil
}

func (p *TreePool) link(u, v int32) {
	p.to = append(p.to, v)
	p.next = append(p.next, p.head[u])
	p.head[u] = int32(len(p.to) - 1)
}
