package graph

import "repro/internal/ds"

// SparseCertificate returns a spanning subgraph with at most k(n-1)
// edges that preserves edge connectivity up to k: the union of k
// successively extracted edge-disjoint spanning forests (Nagamochi–
// Ibaraki; the primitive behind Thurimella's sparse certificates [49],
// which the paper's Theorem B.2 toolbox builds on). For every pair
// (u,v), λ_cert(u,v) >= min(λ_G(u,v), k); in particular the global edge
// connectivity satisfies λ(cert) = min(λ(G), k).
func SparseCertificate(g *Graph, k int) *Graph {
	if k < 1 {
		k = 1
	}
	b := NewBuilder(g.n)
	used := ds.NewBitset(g.M())
	for round := 0; round < k; round++ {
		uf := ds.NewUnionFind(g.n)
		added := false
		for id, e := range g.edges {
			if used.Has(id) {
				continue
			}
			if uf.Union(int(e.U), int(e.V)) {
				used.Set(id)
				b.AddEdge(int(e.U), int(e.V))
				added = true
			}
		}
		if !added {
			break // graph exhausted: fewer than k forests exist
		}
	}
	return b.Graph()
}
