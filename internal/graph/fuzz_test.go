package graph

import (
	"sort"
	"testing"
)

// FuzzBuilder drives Builder with arbitrary edge streams — duplicates,
// self-loops, repeated finalization, and interleaved HasEdge/NumEdges
// probes (which flip the builder onto its lazy-index path) — and checks
// the finalized CSR graph against a reference edge set: sorted deduped
// symmetric adjacency, consistent edge ids, and intact offsets.
//
// `make ci` runs a 10-second smoke of this fuzzer; longer local runs:
//
//	go test -fuzz FuzzBuilder -fuzztime 2m ./internal/graph
func FuzzBuilder(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 0, 2, 2, 1, 3})        // dup (reversed), self-loop
	f.Add(uint8(1), []byte{0, 0, 0, 0})                    // single vertex, loops only
	f.Add(uint8(16), []byte{0, 1, 0, 1, 0, 1, 5, 9, 9, 5}) // heavy duplication
	f.Add(uint8(32), []byte{})                             // no edges
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%32 + 1
		b := NewBuilder(n)
		want := make(map[[2]int]bool)
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			// Every third proposal, probe the builder mid-stream so the
			// lazy duplicate index gets built and then kept in sync.
			if i%6 == 4 {
				lo, hi := u, v
				if lo > hi {
					lo, hi = hi, lo
				}
				if got := b.HasEdge(u, v); got != (u != v && want[[2]int{lo, hi}]) {
					t.Fatalf("mid-build HasEdge(%d,%d) = %v, want %v", u, v, got, !got)
				}
				if got := b.NumEdges(); got != len(want) {
					t.Fatalf("mid-build NumEdges = %d, want %d", got, len(want))
				}
			}
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				want[[2]int{u, v}] = true
			}
		}
		g := b.Graph()

		if g.N() != n {
			t.Fatalf("N = %d, want %d", g.N(), n)
		}
		if g.M() != len(want) {
			t.Fatalf("M = %d, want %d distinct edges", g.M(), len(want))
		}

		// Edge list: sorted by (U,V), deduped, ids consistent both ways.
		edges := g.Edges()
		for id, e := range edges {
			if e.U >= e.V {
				t.Fatalf("edge %d = (%d,%d) not normalized U < V", id, e.U, e.V)
			}
			if !want[[2]int{int(e.U), int(e.V)}] {
				t.Fatalf("edge %d = (%d,%d) was never added", id, e.U, e.V)
			}
			if id > 0 && !(edges[id-1].U < e.U || (edges[id-1].U == e.U && edges[id-1].V < e.V)) {
				t.Fatalf("edge list not sorted at id %d", id)
			}
			if got, ok := g.EdgeID(int(e.U), int(e.V)); !ok || got != id {
				t.Fatalf("EdgeID(%d,%d) = %d,%v, want %d", e.U, e.V, got, ok, id)
			}
		}

		// Adjacency: sorted, strictly increasing (dedup), loop-free,
		// symmetric, parallel to incident edge ids.
		degSum := 0
		for v := 0; v < n; v++ {
			nbr := g.Neighbors(v)
			eids := g.IncidentEdges(v)
			if len(nbr) != len(eids) {
				t.Fatalf("vertex %d: %d neighbors but %d incident ids", v, len(nbr), len(eids))
			}
			degSum += len(nbr)
			if !sort.SliceIsSorted(nbr, func(i, j int) bool { return nbr[i] < nbr[j] }) {
				t.Fatalf("vertex %d adjacency %v not sorted", v, nbr)
			}
			for i, w := range nbr {
				if int(w) == v {
					t.Fatalf("vertex %d kept a self-loop", v)
				}
				if i > 0 && nbr[i-1] == w {
					t.Fatalf("vertex %d adjacency %v has duplicate %d", v, nbr, w)
				}
				lo, hi := v, int(w)
				if lo > hi {
					lo, hi = hi, lo
				}
				if !want[[2]int{lo, hi}] {
					t.Fatalf("adjacency invented edge (%d,%d)", v, w)
				}
				e := edges[eids[i]]
				if int(e.U) != lo || int(e.V) != hi {
					t.Fatalf("vertex %d: incident id %d is (%d,%d), want (%d,%d)", v, eids[i], e.U, e.V, lo, hi)
				}
				if g.NeighborIndex(int(w), v) < 0 {
					t.Fatalf("asymmetric adjacency: %d lists %d but not vice versa", v, w)
				}
			}
		}
		if degSum != 2*len(want) {
			t.Fatalf("degree sum %d, want %d", degSum, 2*len(want))
		}

		// The builder stays usable after finalization: a second Graph()
		// over the same stream is identical.
		g2 := b.Graph()
		if g2.M() != g.M() || g2.N() != g.N() {
			t.Fatalf("re-finalize changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
		}
	})
}
