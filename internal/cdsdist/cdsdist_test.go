package cdsdist

import (
	"math"
	"testing"

	"repro/internal/cds"
	"repro/internal/graph"
)

func TestPackWithGuessValidation(t *testing.T) {
	g := graph.Complete(4)
	if _, err := PackWithGuess(g, 0, cds.Options{Seed: 1}); err == nil {
		t.Fatal("guess 0 accepted")
	}
	if _, err := PackWithGuess(graph.NewBuilder(0).Graph(), 1, cds.Options{Seed: 1}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestDistributedSingleClass(t *testing.T) {
	g := graph.Cycle(12)
	res, err := PackWithGuess(g, 1, cds.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Packing
	if p.Stats.Classes != 1 || p.Stats.ValidClasses != 1 {
		t.Fatalf("classes=%d valid=%d, want 1/1", p.Stats.Classes, p.Stats.ValidClasses)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if res.Meter.TotalRounds() == 0 || res.Meter.Messages == 0 {
		t.Fatalf("meter empty: %+v", res.Meter)
	}
}

func TestDistributedPackingHypercube(t *testing.T) {
	g := graph.Hypercube(5) // n=32, k=5
	res, err := PackWithGuess(g, 5, cds.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Packing
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.Stats.ValidClasses != p.Stats.Classes {
		t.Fatalf("only %d/%d classes valid on Q5", p.Stats.ValidClasses, p.Stats.Classes)
	}
	if p.Size() <= 0 {
		t.Fatal("empty packing")
	}
	// Whitney-style sanity: packing size cannot exceed κ = 5.
	if p.Size() > 5+1e-9 {
		t.Fatalf("size %.3f exceeds κ=5", p.Size())
	}
}

func TestDistributedMatchesCentralizedQuality(t *testing.T) {
	// The distributed and centralized algorithms implement the same
	// construction; with the same options their packing sizes should be
	// within a factor ~2 of each other on a well-connected graph.
	g := graph.Hypercube(6)
	distRes, err := PackWithGuess(g, 6, cds.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cenRes, err := cds.PackWithGuess(g, 6, cds.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ds, cs := distRes.Packing.Size(), cenRes.Size()
	if ds <= 0 || cs <= 0 {
		t.Fatalf("sizes: dist=%.3f cen=%.3f", ds, cs)
	}
	if ds < cs/3 || ds > cs*3 {
		t.Fatalf("distributed size %.3f far from centralized %.3f", ds, cs)
	}
}

func TestDistributedConvergenceTrace(t *testing.T) {
	g := graph.Hypercube(5)
	res, err := PackWithGuess(g, 5, cds.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	trace := res.Packing.Stats.ExcessComponents
	if len(trace) == 0 {
		t.Fatal("no convergence trace")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1] {
			t.Fatalf("M_ell increased at %d: %v", i, trace)
		}
	}
}

func TestDistributedTreeMembersMatchClasses(t *testing.T) {
	g := graph.Torus(4, 8) // k=4
	res, err := PackWithGuess(g, 4, cds.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Packing.Trees {
		members := res.Packing.Classes[tr.Class]
		if len(members) != tr.Tree.Size() {
			t.Fatalf("class %d has %d members but tree has %d vertices",
				tr.Class, len(members), tr.Tree.Size())
		}
		for _, v := range members {
			if !tr.Tree.Contains(int(v)) {
				t.Fatalf("class %d member %d missing from tree", tr.Class, v)
			}
		}
	}
}

func TestDistributedPackTryAndError(t *testing.T) {
	g := graph.Hypercube(4) // n=16, k=4: small enough for the full loop
	res, err := Pack(g, cds.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Packing.Validate(g); err != nil {
		t.Fatal(err)
	}
	if res.Packing.Size() > 4+1e-9 {
		t.Fatalf("size %.3f exceeds κ=4", res.Packing.Size())
	}
	if res.Meter.TotalRounds() == 0 {
		t.Fatal("try-and-error metered zero rounds")
	}
}

func TestDistributedRoundsScaleReasonably(t *testing.T) {
	// Theorem 1.1 claims O~(min{D+sqrt(n), n/k}) rounds. At these sizes
	// polylog factors dominate; assert the meter stays under a generous
	// polylog envelope rather than the asymptotic constant.
	g := graph.Hypercube(5)
	res, err := PackWithGuess(g, 5, cds.Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(g.N())
	envelope := (math.Sqrt(n) + float64(graph.Diameter(g))) * math.Pow(math.Log2(n+2), 4) * 10
	if float64(res.Meter.TotalRounds()) > envelope {
		t.Fatalf("rounds %d exceed envelope %.0f", res.Meter.TotalRounds(), envelope)
	}
}

func TestDistributedDeterministicForSeed(t *testing.T) {
	g := graph.Hypercube(4)
	r1, err := PackWithGuess(g, 4, cds.Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PackWithGuess(g, 4, cds.Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Packing.Size() != r2.Packing.Size() {
		t.Fatalf("same seed diverged: %.4f vs %.4f", r1.Packing.Size(), r2.Packing.Size())
	}
	if r1.Meter != r2.Meter {
		t.Fatalf("meters diverged: %+v vs %+v", r1.Meter, r2.Meter)
	}
}
