package cdsdist

import (
	"fmt"

	"repro/internal/cds"
	"repro/internal/graph"
	"repro/internal/sim"
)

// fieldBitsFor sizes the per-field message budget: node ids, class ids,
// and the 4·log2(n)-bit random proposal values (Section 2's random-id
// convention) must all fit — still O(log n) bits.
func (r *run) fieldBitsFor() int {
	b := 0
	for v := 1; v < r.n+2 || v < r.classes+2; v <<= 1 {
		b++
	}
	return 8 + 4*b + 4
}

// proposalRange returns the domain of random proposal values: n^4, the
// paper's 4·log n random-bits convention, distinct w.h.p.
func proposalRange(n int) int64 {
	v := int64(n) + 2
	return v * v * v * v
}

// runPhase executes one protocol phase, reusing a single engine across
// all phases of the run (every phase ends quiescent, so there is never
// message carry-over to preserve; Reset reseeds the per-node streams).
func (r *run) runPhase(procs []sim.Process, seed uint64, maxRounds int) error {
	if r.eng == nil {
		eng, err := sim.NewEngine(r.g, sim.VCongest, procs, seed, sim.WithMaxFieldBits(r.fieldBitsFor()))
		if err != nil {
			return err
		}
		r.eng = eng
	} else if err := r.eng.Reset(procs, seed, sim.WithMaxFieldBits(r.fieldBitsFor())); err != nil {
		return err
	}
	if err := r.eng.RunPhase(maxRounds); err != nil {
		return err
	}
	r.meter.Add(r.eng.Meter())
	// Each phase boundary models a termination-detection convergecast
	// over the preprocessing BFS tree.
	r.meter.Charge(r.diam)
	return nil
}

// --- Phase A: component identification --------------------------------

// compFloodNode floods, per class this node belongs to, the minimum real
// node id within the class component (Theorem B.2 restricted flooding:
// class-c messages only merge across edges whose both endpoints carry
// class c, which is exactly class-c component adjacency). Per-class
// state is indexed by position in the sorted class list; min-merging is
// order-insensitive, so the sorted broadcast order leaves results
// identical to any other send order.
type compFloodNode struct {
	cls      []int32
	label    []int64
	dirty    []bool
	hasDirty bool
	started  bool
}

func (p *compFloodNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		id := int64(ctx.ID())
		for i := range p.cls {
			p.label[i] = id
			p.dirty[i] = true
		}
		p.hasDirty = len(p.cls) > 0
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindComp {
			continue
		}
		i := classIndex(p.cls, int32(d.Msg.F[0]))
		if i < 0 {
			continue
		}
		if d.Msg.F[1] < p.label[i] {
			p.label[i] = d.Msg.F[1]
			p.dirty[i] = true
			p.hasDirty = true
		}
	}
	if !p.hasDirty {
		return sim.Done
	}
	for i, c := range p.cls {
		if p.dirty[i] {
			ctx.Broadcast(sim.Msg(kindComp, int64(c), p.label[i]))
			p.dirty[i] = false
		}
	}
	p.hasDirty = false
	return sim.Active
}

// identifyComponents refreshes r.compList/r.compID for the current
// old-node sets. The per-node state slices come from two shared backing
// arrays, so the whole phase costs O(1) allocations.
func (r *run) identifyComponents() error {
	total := 0
	for v := 0; v < r.n; v++ {
		total += len(r.clsList[v])
	}
	labelBacking := make([]int64, total)
	dirtyBacking := make([]bool, total)
	procs := make([]sim.Process, r.n)
	nodes := make([]*compFloodNode, r.n)
	pos := 0
	for v := 0; v < r.n; v++ {
		k := len(r.clsList[v])
		nodes[v] = &compFloodNode{
			cls:   r.clsList[v],
			label: labelBacking[pos : pos+k : pos+k],
			dirty: dirtyBacking[pos : pos+k : pos+k],
		}
		pos += k
		procs[v] = nodes[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^0xc0ffee, 4*r.n+8); err != nil {
		return fmt.Errorf("component identification: %w", err)
	}
	for v := 0; v < r.n; v++ {
		r.compList[v] = nodes[v].label
		m := r.compID[v]
		clear(m)
		for i, c := range r.clsList[v] {
			m[c] = nodes[v].label[i]
		}
	}
	return nil
}

// --- Phase B: deactivation and bridging lists --------------------------

// candidate is one bridging-graph neighbor of a type-2 node: an active
// component, identified by (class, compID).
type candidate struct {
	class  int32
	compID int64
}

// annNode broadcasts this node's (class, compID) pairs; type-1 new nodes
// that see two components of their class reply with a connector message;
// old nodes hearing a connector for their (class, component) mark it
// deactivated locally (flooded component-wide in the next step). All
// collection steps are set-valued, so the sorted announcement order is
// interchangeable with any other.
type annNode struct {
	cls        []int32 // sorted classes with old nodes here
	comp       []int64 // component ids parallel to cls
	type1Class int32
	round      int
	deact      []bool // parallel to cls: component deactivated locally
	seen       [2]int64
}

func (p *annNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		for i, c := range p.cls {
			ctx.Broadcast(sim.Msg(kindCompAnn, int64(c), p.comp[i], 1))
		}
		if len(p.cls) > 0 {
			return sim.Active
		}
	case 1:
		p.round++
		// Type-1 role: collect components of own class; if >= 2, shout
		// the connector symbol for that class. Two distinct ids suffice,
		// so a two-slot set is enough.
		nseen := 0
		note := func(id int64) {
			if nseen > 0 && p.seen[0] == id {
				return
			}
			if nseen > 1 && p.seen[1] == id {
				return
			}
			if nseen < 2 {
				p.seen[nseen] = id
			}
			nseen++
		}
		if i := classIndex(p.cls, p.type1Class); i >= 0 {
			note(p.comp[i])
		}
		for _, d := range inbox {
			if d.Msg.Kind == kindCompAnn && int32(d.Msg.F[0]) == p.type1Class {
				note(d.Msg.F[1])
			}
		}
		if nseen >= 2 {
			ctx.Broadcast(sim.Msg(kindDeact, int64(p.type1Class)))
			return sim.Active
		}
	case 2:
		p.round++
		for _, d := range inbox {
			if d.Msg.Kind != kindDeact {
				continue
			}
			if i := classIndex(p.cls, int32(d.Msg.F[0])); i >= 0 {
				p.deact[i] = true
			}
		}
	}
	return sim.Done
}

// deactFloodNode floods the deactivation bit component-wide (restricted
// flooding again: class-c adjacency is component adjacency). Flag
// merging is order-insensitive, like the component flood.
type deactFloodNode struct {
	cls      []int32
	deact    []bool
	dirty    []bool
	hasDirty bool
	started  bool
}

func (p *deactFloodNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		for i := range p.cls {
			if p.deact[i] {
				p.dirty[i] = true
				p.hasDirty = true
			}
		}
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindDeact {
			continue
		}
		i := classIndex(p.cls, int32(d.Msg.F[0]))
		if i >= 0 && !p.deact[i] {
			p.deact[i] = true
			p.dirty[i] = true
			p.hasDirty = true
		}
	}
	if !p.hasDirty {
		return sim.Done
	}
	for i, c := range p.cls {
		if p.dirty[i] {
			ctx.Broadcast(sim.Msg(kindDeact, int64(c)))
			p.dirty[i] = false
		}
	}
	p.hasDirty = false
	return sim.Active
}

// scoutNode implements Appendix B.2's bridging-graph construction: old
// nodes re-announce (class, compID, activity); each type-3 new node w
// forms its message m_w; each type-2 new node v assembles its neighbor
// list List_v from active announced components and type-3 messages.
// List order follows delivery order (sender-major), as in the original
// map-based version; every collection step in between is set-valued.
type scoutNode struct {
	cls        []int32 // sorted classes with old nodes here
	comp       []int64 // component ids parallel to cls
	active     []bool  // parallel to cls
	classes    int
	type3Class int32
	type2Class int32 // unused by the protocol; kept for symmetry
	round      int

	// scratch
	seenComp []int64     // distinct type-3 component ids heard
	annHeard []candidate // active components heard (class, compID)
	list     []candidate
}

func (p *scoutNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		for i, c := range p.cls {
			act := int64(0)
			if p.active[i] {
				act = 1
			}
			ctx.Broadcast(sim.Msg(kindCompAnn, int64(c), p.comp[i], act))
		}
		if len(p.cls) > 0 {
			return sim.Active
		}
	case 1:
		p.round++
		// Gather announcements; type-3 role constructs m_w.
		noteComp := func(id int64) {
			for _, have := range p.seenComp {
				if have == id {
					return
				}
			}
			p.seenComp = append(p.seenComp, id)
		}
		if i := classIndex(p.cls, p.type3Class); i >= 0 {
			noteComp(p.comp[i])
		}
		for _, d := range inbox {
			if d.Msg.Kind != kindCompAnn {
				continue
			}
			c := int32(d.Msg.F[0])
			if d.Msg.F[2] == 1 {
				p.annHeard = append(p.annHeard, candidate{class: c, compID: d.Msg.F[1]})
			}
			if c == p.type3Class {
				noteComp(d.Msg.F[1])
			}
		}
		// Also count own active components as heard (virtual adjacency
		// within the same real node).
		for i, c := range p.cls {
			if p.active[i] {
				p.annHeard = append(p.annHeard, candidate{class: c, compID: p.comp[i]})
			}
		}
		switch {
		case len(p.seenComp) == 0:
			// empty m_w
		case len(p.seenComp) == 1:
			ctx.Broadcast(sim.Msg(kindScout, int64(p.type3Class), p.seenComp[0]))
			return sim.Active
		default:
			ctx.Broadcast(sim.Msg(kindScout, int64(p.type3Class), connectorSymbol))
			return sim.Active
		}
	case 2:
		p.round++
		// Type-2 role: build List_v per Appendix B.2. Scout messages are
		// bucketed per class; each bucket is a small distinct-id set.
		scouts := make([][]int64, p.classes)
		for _, d := range inbox {
			if d.Msg.Kind != kindScout {
				continue
			}
			c := int32(d.Msg.F[0])
			if c < 0 || int(c) >= p.classes {
				continue
			}
			id := d.Msg.F[1]
			dup := false
			for _, have := range scouts[c] {
				if have == id {
					dup = true
					break
				}
			}
			if !dup {
				scouts[c] = append(scouts[c], id)
			}
		}
		// A component C of class i joins List_v iff v heard an active
		// announcement of C and some scout message for class i names a
		// component != C (or the connector symbol). First occurrence
		// order of annHeard is preserved, as before.
		for hi, cand := range p.annHeard {
			dup := false
			for _, prev := range p.annHeard[:hi] {
				if prev == cand {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			for _, id := range scouts[cand.class] {
				if id == connectorSymbol || id != cand.compID {
					p.list = append(p.list, cand)
					break
				}
			}
		}
	}
	return sim.Done
}

// buildBridging runs phases B of a layer and returns each type-2 node's
// bridging-graph neighbor list.
func (r *run) buildBridging(layer int) ([][]candidate, error) {
	// B.1: announcements + type-1 connector detection.
	total := 0
	for v := 0; v < r.n; v++ {
		total += len(r.clsList[v])
	}
	annDeact := make([]bool, total)
	anns := make([]*annNode, r.n)
	procs := make([]sim.Process, r.n)
	pos := 0
	for v := 0; v < r.n; v++ {
		k := len(r.clsList[v])
		anns[v] = &annNode{
			cls:        r.clsList[v],
			comp:       r.compList[v],
			type1Class: r.classOf[v][layer*3+0],
			deact:      annDeact[pos : pos+k : pos+k],
		}
		pos += k
		procs[v] = anns[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^uint64(layer)<<8^0xdead, 8); err != nil {
		return nil, fmt.Errorf("deactivation detection: %w", err)
	}

	// B.2: flood deactivation component-wide, seeded from the type-1
	// verdicts (same class indexing, so the flags carry over directly).
	dirtyBacking := make([]bool, total)
	floods := make([]*deactFloodNode, r.n)
	pos = 0
	for v := 0; v < r.n; v++ {
		k := len(r.clsList[v])
		floods[v] = &deactFloodNode{
			cls:   r.clsList[v],
			deact: anns[v].deact,
			dirty: dirtyBacking[pos : pos+k : pos+k],
		}
		pos += k
		procs[v] = floods[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^uint64(layer)<<8^0xbeef, 4*r.n+8); err != nil {
		return nil, fmt.Errorf("deactivation flood: %w", err)
	}
	for v := 0; v < r.n; v++ {
		active := r.active[v][:0]
		for i := range r.clsList[v] {
			active = append(active, !floods[v].deact[i])
		}
		r.active[v] = active
	}

	// B.3: re-announce with activity; scouts; type-2 lists.
	scouts := make([]*scoutNode, r.n)
	for v := 0; v < r.n; v++ {
		scouts[v] = &scoutNode{
			cls:        r.clsList[v],
			comp:       r.compList[v],
			active:     r.active[v],
			classes:    r.classes,
			type3Class: r.classOf[v][layer*3+2],
			type2Class: r.classOf[v][layer*3+1],
		}
		procs[v] = scouts[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^uint64(layer)<<8^0xfeed, 8); err != nil {
		return nil, fmt.Errorf("bridging construction: %w", err)
	}
	lists := make([][]candidate, r.n)
	for v := 0; v < r.n; v++ {
		lists[v] = scouts[v].list
	}
	return lists, nil
}

// --- Phase C: matching stages ------------------------------------------

// proposeNode: stage round 1 — unmatched type-2 nodes propose to the
// listed component with the largest random value; old nodes record the
// best proposal they hear for each of their components. The best-map is
// a max-merge (ties to the higher proposer id), so collection order is
// immaterial; state is indexed by position in the sorted class list.
type proposeNode struct {
	cls      []int32
	comp     []int64
	blocked  []bool      // parallel: component here already matched
	list     []candidate // nil when matched or empty
	proposal candidate   // what this node proposed to
	propVal  int64
	proposed bool
	round    int
	// best proposal per class heard by this old node: (value, proposer).
	best    [][2]int64
	hasBest []bool
}

func (p *proposeNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		if len(p.list) > 0 {
			bestIdx, bestVal := 0, int64(-1)
			span := proposalRange(ctx.N())
			for i := range p.list {
				v := ctx.Rand().Int64N(span) // 4·log n random bits
				if v > bestVal {
					bestVal, bestIdx = v, i
				}
			}
			p.proposal = p.list[bestIdx]
			p.propVal = bestVal
			p.proposed = true
			ctx.Broadcast(sim.Msg(kindPropose, int64(p.proposal.class), p.proposal.compID, bestVal))
			return sim.Active
		}
	case 1:
		p.round++
		for _, d := range inbox {
			if d.Msg.Kind != kindPropose {
				continue
			}
			i := classIndex(p.cls, int32(d.Msg.F[0]))
			if i < 0 || p.blocked[i] || p.comp[i] != d.Msg.F[1] {
				continue // not in this component, or matched earlier
			}
			val, from := d.Msg.F[2], int64(d.From)
			cur := p.best[i]
			if !p.hasBest[i] || val > cur[0] || (val == cur[0] && from > cur[1]) {
				p.best[i] = [2]int64{val, from}
				p.hasBest[i] = true
			}
		}
	}
	return sim.Done
}

// acceptNode: after the component-wide max flood, old nodes broadcast
// the accepted proposal; type-2 nodes learn whether they were matched
// and prune their lists. The lost-collection is a set, so announcement
// order is immaterial.
type acceptNode struct {
	cls      []int32
	comp     []int64
	accepted [][2]int64 // parallel: (value, proposer), -1 proposer = none
	proposed bool
	proposal candidate
	propVal  int64
	round    int
	matched  bool
	lost     []candidate // components that accepted someone else
}

func (p *acceptNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		sent := false
		for i, best := range p.accepted {
			if best[1] < 0 {
				continue // no proposal reached this component
			}
			c := p.cls[i]
			// Self-acceptance: a proposer that is itself a member of the
			// winning component never hears its own broadcast.
			if p.proposed && p.proposal.class == c && p.proposal.compID == p.comp[i] &&
				best[0] == p.propVal && best[1] == int64(ctx.ID()) {
				p.matched = true
			}
			ctx.Broadcast(sim.Msg(kindAccept, int64(c), p.comp[i], best[0], best[1]))
			sent = true
		}
		if sent {
			return sim.Active
		}
	case 1:
		p.round++
		for _, d := range inbox {
			if d.Msg.Kind != kindAccept {
				continue
			}
			cand := candidate{class: int32(d.Msg.F[0]), compID: d.Msg.F[1]}
			val, winner := d.Msg.F[2], d.Msg.F[3]
			if p.proposed && cand == p.proposal && val == p.propVal && winner == int64(ctx.ID()) {
				p.matched = true
			} else {
				dup := false
				for _, have := range p.lost {
					if have == cand {
						dup = true
						break
					}
				}
				if !dup {
					p.lost = append(p.lost, cand)
				}
			}
		}
	}
	return sim.Done
}

// matchStages runs the O(log n) Luby-style stages of Appendix B.3 and
// assigns classes to the type-2 virtual nodes of the layer. Returns the
// number matched through the bridging graph.
func (r *run) matchStages(layer int, lists [][]candidate) (int, error) {
	stages := 1
	for s := 1; s < r.n; s <<= 1 {
		stages++
	}
	matchedCount := 0
	assigned := make([]bool, r.n)
	procs := make([]sim.Process, r.n)
	total := 0
	for v := 0; v < r.n; v++ {
		total += len(r.clsList[v])
	}
	blockedBacking := make([]bool, total)
	blocked := make([][]bool, r.n)
	pos := 0
	for v := range blocked {
		k := len(r.clsList[v])
		blocked[v] = blockedBacking[pos : pos+k : pos+k]
		pos += k
	}

	for stage := 0; stage < stages; stage++ {
		anyList := false
		for v := 0; v < r.n; v++ {
			if !assigned[v] && len(lists[v]) > 0 {
				anyList = true
				break
			}
		}
		if !anyList {
			break
		}
		// Stage round 1-2: propose and collect.
		bestBacking := make([][2]int64, total)
		hasBacking := make([]bool, total)
		props := make([]*proposeNode, r.n)
		pos = 0
		for v := 0; v < r.n; v++ {
			var list []candidate
			if !assigned[v] {
				list = lists[v]
			}
			k := len(r.clsList[v])
			props[v] = &proposeNode{
				cls:     r.clsList[v],
				comp:    r.compList[v],
				blocked: blocked[v],
				list:    list,
				best:    bestBacking[pos : pos+k : pos+k],
				hasBest: hasBacking[pos : pos+k : pos+k],
			}
			pos += k
			procs[v] = props[v]
		}
		seed := r.opts.Seed ^ uint64(layer*131+stage)<<10 ^ 0xabcd
		if err := r.runPhase(procs, seed, 8); err != nil {
			return matchedCount, fmt.Errorf("propose stage: %w", err)
		}

		// Component-wide max of proposals per class, via restricted
		// flooding (minimize (-value, -proposer)).
		accepted, err := r.floodBestProposal(props, seed^0x1111)
		if err != nil {
			return matchedCount, err
		}

		// Accept round.
		accs := make([]*acceptNode, r.n)
		for v := 0; v < r.n; v++ {
			accs[v] = &acceptNode{
				cls:      r.clsList[v],
				comp:     r.compList[v],
				accepted: accepted[v],
				proposed: props[v].proposed,
				proposal: props[v].proposal,
				propVal:  props[v].propVal,
			}
			procs[v] = accs[v]
		}
		if err := r.runPhase(procs, seed^0x2222, 8); err != nil {
			return matchedCount, fmt.Errorf("accept stage: %w", err)
		}

		for v := 0; v < r.n; v++ {
			// Members of components that accepted a proposal mark them
			// matched for all later stages.
			for i := range accepted[v] {
				if accepted[v][i][1] >= 0 {
					blocked[v][i] = true
				}
			}
			if assigned[v] {
				continue
			}
			if accs[v].matched {
				r.classOf[v][layer*3+1] = props[v].proposal.class
				assigned[v] = true
				matchedCount++
				continue
			}
			// Prune components that accepted other proposals.
			if len(accs[v].lost) > 0 {
				pruned := lists[v][:0]
				for _, cand := range lists[v] {
					lostIt := false
					for _, lc := range accs[v].lost {
						if lc == cand {
							lostIt = true
							break
						}
					}
					if !lostIt {
						pruned = append(pruned, cand)
					}
				}
				lists[v] = pruned
			}
		}
	}

	// Unmatched type-2 nodes join random classes.
	for v := 0; v < r.n; v++ {
		if !assigned[v] {
			r.classOf[v][layer*3+1] = int32(r.rngs[v].IntN(r.classes))
		}
	}
	return matchedCount, nil
}

// floodBestProposal spreads each component's best proposal to all its
// members (the Theorem B.2 aggregation of Appendix B.3). The max-merge
// with (value, proposer) tie-breaking is order-insensitive, so the
// slice-indexed state floods identically to the map-based original.
// Entries with hasBest false stand for "no proposal heard yet".
type proposalFloodNode struct {
	cls      []int32
	best     [][2]int64
	hasBest  []bool
	dirty    []bool
	hasDirty bool
	started  bool
}

func (p *proposalFloodNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		for i := range p.cls {
			if p.hasBest[i] {
				p.dirty[i] = true
				p.hasDirty = true
			}
		}
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindPropose {
			continue
		}
		i := classIndex(p.cls, int32(d.Msg.F[0]))
		if i < 0 {
			continue
		}
		val, who := d.Msg.F[1], d.Msg.F[2]
		cur := p.best[i]
		if !p.hasBest[i] || val > cur[0] || (val == cur[0] && who > cur[1]) {
			p.best[i] = [2]int64{val, who}
			p.hasBest[i] = true
			p.dirty[i] = true
			p.hasDirty = true
		}
	}
	if !p.hasDirty {
		return sim.Done
	}
	for i, c := range p.cls {
		if p.dirty[i] {
			b := p.best[i]
			ctx.Broadcast(sim.Msg(kindPropose, int64(c), b[0], b[1]))
			p.dirty[i] = false
		}
	}
	p.hasDirty = false
	return sim.Active
}

func (r *run) floodBestProposal(props []*proposeNode, seed uint64) ([][][2]int64, error) {
	total := 0
	for v := 0; v < r.n; v++ {
		total += len(r.clsList[v])
	}
	bestBacking := make([][2]int64, total)
	flagBacking := make([]bool, 2*total)
	nodes := make([]*proposalFloodNode, r.n)
	procs := make([]sim.Process, r.n)
	pos := 0
	for v := 0; v < r.n; v++ {
		k := len(r.clsList[v])
		nd := &proposalFloodNode{
			cls:     r.clsList[v],
			best:    bestBacking[pos : pos+k : pos+k],
			hasBest: flagBacking[pos : pos+k : pos+k],
			dirty:   flagBacking[total+pos : total+pos+k : total+pos+k],
		}
		copy(nd.best, props[v].best)
		copy(nd.hasBest, props[v].hasBest)
		pos += k
		nodes[v] = nd
		procs[v] = nd
	}
	if err := r.runPhase(procs, seed, 4*r.n+8); err != nil {
		return nil, fmt.Errorf("proposal flood: %w", err)
	}
	out := make([][][2]int64, r.n)
	for v := 0; v < r.n; v++ {
		// Components with no proposal anywhere get proposer -1 so
		// acceptNode can skip them.
		best := nodes[v].best
		for i := range best {
			if !nodes[v].hasBest[i] {
				best[i] = [2]int64{-1, -1}
			}
		}
		out[v] = best
	}
	return out, nil
}

// --- Tree extraction ----------------------------------------------------

// bfsClassNode grows, for every class this node belongs to, a BFS tree
// from the class leader (the member whose id equals the component id).
// The parent rule ("first delivery for the class") picks the lowest-id
// neighbor at the previous BFS depth: deliveries arrive sender-major,
// and a sender broadcasts each class at most once per round, so the rule
// is insensitive to the per-sender broadcast order. parent[i] is -2
// until the BFS reaches the node (-1 marks the root).
type bfsClassNode struct {
	cls      []int32
	leader   []bool
	parent   []int64
	depth    []int64
	dirty    []bool
	hasDirty bool
	started  bool
}

func (p *bfsClassNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		for i := range p.cls {
			if p.leader[i] {
				p.parent[i] = -1
				p.depth[i] = 0
				p.dirty[i] = true
				p.hasDirty = true
			}
		}
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindBFS {
			continue
		}
		i := classIndex(p.cls, int32(d.Msg.F[0]))
		if i < 0 || p.parent[i] != unreached {
			continue
		}
		p.parent[i] = int64(d.From)
		p.depth[i] = d.Msg.F[1] + 1
		p.dirty[i] = true
		p.hasDirty = true
	}
	if !p.hasDirty {
		return sim.Done
	}
	for i, c := range p.cls {
		if p.dirty[i] {
			ctx.Broadcast(sim.Msg(kindBFS, int64(c), p.depth[i]))
			p.dirty[i] = false
		}
	}
	p.hasDirty = false
	return sim.Active
}

// unreached marks a class whose BFS has not arrived at this node.
const unreached = -2

// extractTrees converts the final classes into dominating trees by
// per-class distributed BFS from the class leader. This realizes the
// paper's 0/1-weight MST step: a BFS forest of the 0-weight (same-class)
// subgraph is such an MST's 0-weight part.
func (r *run) extractTrees() error {
	total := 0
	for v := 0; v < r.n; v++ {
		total += len(r.clsList[v])
	}
	i64Backing := make([]int64, 2*total)
	flagBacking := make([]bool, 2*total)
	nodes := make([]*bfsClassNode, r.n)
	procs := make([]sim.Process, r.n)
	pos := 0
	for v := 0; v < r.n; v++ {
		k := len(r.clsList[v])
		nd := &bfsClassNode{
			cls:    r.clsList[v],
			leader: flagBacking[pos : pos+k : pos+k],
			parent: i64Backing[pos : pos+k : pos+k],
			depth:  i64Backing[total+pos : total+pos+k : total+pos+k],
			dirty:  flagBacking[total+pos : total+pos+k : total+pos+k],
		}
		for i := range nd.parent {
			nd.parent[i] = unreached
		}
		for i := range r.clsList[v] {
			nd.leader[i] = r.compList[v][i] == int64(v)
		}
		pos += k
		nodes[v] = nd
		procs[v] = nd
	}
	if err := r.runPhase(procs, r.opts.Seed^0x7ee5, 4*r.n+8); err != nil {
		return fmt.Errorf("tree extraction: %w", err)
	}
	for v := 0; v < r.n; v++ {
		m := r.parent[v]
		clear(m)
		for i, c := range r.clsList[v] {
			if nodes[v].parent[i] != unreached {
				m[c] = nodes[v].parent[i]
			}
		}
	}
	return nil
}

// buildPacking assembles the cds.Packing from the per-node protocol
// outputs, keeping only classes whose trees are connected dominating
// trees (the others are reported through Stats.ValidClasses, exactly
// the quantity the try-and-error tester checks).
func (r *run) buildPacking() *cds.Packing {
	classMembers := make([][]int32, r.classes)
	for v := 0; v < r.n; v++ {
		for _, c := range r.clsList[v] {
			classMembers[c] = append(classMembers[c], int32(v))
		}
	}
	var trees []cds.Tree
	for c := 0; c < r.classes; c++ {
		members := classMembers[c]
		if len(members) == 0 {
			continue
		}
		parentOf := make(map[int]int, len(members))
		root := -1
		complete := true
		for _, v := range members {
			p, ok := r.parent[v][int32(c)]
			if !ok {
				complete = false // BFS never reached v: class disconnected
				break
			}
			if p < 0 {
				if root >= 0 {
					complete = false // two roots: split class
					break
				}
				root = int(v)
			} else {
				parentOf[int(v)] = int(p)
			}
		}
		if !complete || root < 0 {
			continue
		}
		tree, err := graph.NewTree(r.n, root, parentOf)
		if err != nil {
			continue
		}
		if !tree.IsDominatingIn(r.g) {
			continue
		}
		trees = append(trees, cds.Tree{Tree: tree, Weight: 1, Class: c})
	}
	stats := r.stats
	stats.ValidClasses = len(trees)
	stats.MaxLoad = cds.FinalizeWeights(trees, r.n)
	return &cds.Packing{Trees: trees, Classes: classMembers, Stats: stats}
}
