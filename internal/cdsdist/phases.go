package cdsdist

import (
	"fmt"

	"repro/internal/cds"
	"repro/internal/graph"
	"repro/internal/sim"
)

// fieldBitsFor sizes the per-field message budget: node ids, class ids,
// and the 4·log2(n)-bit random proposal values (Section 2's random-id
// convention) must all fit — still O(log n) bits.
func (r *run) fieldBitsFor() int {
	b := 0
	for v := 1; v < r.n+2 || v < r.classes+2; v <<= 1 {
		b++
	}
	return 8 + 4*b + 4
}

// proposalRange returns the domain of random proposal values: n^4, the
// paper's 4·log n random-bits convention, distinct w.h.p.
func proposalRange(n int) int64 {
	v := int64(n) + 2
	return v * v * v * v
}

func (r *run) runPhase(procs []sim.Process, seed uint64, maxRounds int) error {
	eng, err := sim.NewEngine(r.g, sim.VCongest, procs, seed, sim.WithMaxFieldBits(r.fieldBitsFor()))
	if err != nil {
		return err
	}
	if err := eng.RunPhase(maxRounds); err != nil {
		return err
	}
	addMeter(&r.meter, eng.Meter())
	// Each phase boundary models a termination-detection convergecast
	// over the preprocessing BFS tree.
	r.meter.Charge(r.diam)
	return nil
}

// --- Phase A: component identification --------------------------------

// compFloodNode floods, per class this node belongs to, the minimum real
// node id within the class component (Theorem B.2 restricted flooding:
// class-c messages only merge across edges whose both endpoints carry
// class c, which is exactly class-c component adjacency).
type compFloodNode struct {
	classes map[int32]bool
	label   map[int32]int64
	dirty   map[int32]bool
	started bool
}

func (p *compFloodNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		for c := range p.classes {
			p.label[c] = int64(ctx.ID())
			p.dirty[c] = true
		}
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindComp {
			continue
		}
		c := int32(d.Msg.F[0])
		if !p.classes[c] {
			continue
		}
		if d.Msg.F[1] < p.label[c] {
			p.label[c] = d.Msg.F[1]
			p.dirty[c] = true
		}
	}
	sent := false
	for c := range p.dirty {
		ctx.Broadcast(sim.Msg(kindComp, int64(c), p.label[c]))
		delete(p.dirty, c)
		sent = true
	}
	if sent {
		return sim.Active
	}
	return sim.Done
}

// identifyComponents refreshes r.compID for the current old-node sets.
func (r *run) identifyComponents() error {
	procs := make([]sim.Process, r.n)
	nodes := make([]*compFloodNode, r.n)
	for v := 0; v < r.n; v++ {
		nodes[v] = &compFloodNode{
			classes: r.hasOld[v],
			label:   make(map[int32]int64, len(r.hasOld[v])),
			dirty:   make(map[int32]bool, len(r.hasOld[v])),
		}
		procs[v] = nodes[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^0xc0ffee, 4*r.n+8); err != nil {
		return fmt.Errorf("component identification: %w", err)
	}
	for v := 0; v < r.n; v++ {
		r.compID[v] = nodes[v].label
	}
	return nil
}

// --- Phase B: deactivation and bridging lists --------------------------

// candidate is one bridging-graph neighbor of a type-2 node: an active
// component, identified by (class, compID).
type candidate struct {
	class  int32
	compID int64
}

// annNode broadcasts this node's (class, compID) pairs; type-1 new nodes
// that see two components of their class reply with a connector message;
// old nodes hearing a connector for their (class, component) mark it
// deactivated locally (flooded component-wide in the next step).
type annNode struct {
	comps      map[int32]int64 // old-node components at this node
	type1Class int32
	round      int
	deact      map[int32]bool // class -> component deactivated locally
}

func (p *annNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		sent := false
		for c, id := range p.comps {
			ctx.Broadcast(sim.Msg(kindCompAnn, int64(c), id, 1))
			sent = true
		}
		if sent {
			return sim.Active
		}
	case 1:
		p.round++
		// Type-1 role: collect components of own class; if >= 2, shout
		// the connector symbol for that class.
		seen := map[int64]bool{}
		if id, ok := p.comps[p.type1Class]; ok {
			seen[id] = true
		}
		for _, d := range inbox {
			if d.Msg.Kind == kindCompAnn && int32(d.Msg.F[0]) == p.type1Class {
				seen[d.Msg.F[1]] = true
			}
		}
		if len(seen) >= 2 {
			ctx.Broadcast(sim.Msg(kindDeact, int64(p.type1Class)))
			return sim.Active
		}
	case 2:
		p.round++
		for _, d := range inbox {
			if d.Msg.Kind != kindDeact {
				continue
			}
			c := int32(d.Msg.F[0])
			if _, ok := p.comps[c]; ok {
				p.deact[c] = true
			}
		}
	}
	return sim.Done
}

// deactFloodNode floods the deactivation bit component-wide (restricted
// flooding again: class-c adjacency is component adjacency).
type deactFloodNode struct {
	comps   map[int32]int64
	deact   map[int32]bool
	dirty   map[int32]bool
	started bool
}

func (p *deactFloodNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		for c := range p.deact {
			p.dirty[c] = true
		}
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindDeact {
			continue
		}
		c := int32(d.Msg.F[0])
		if _, ok := p.comps[c]; ok && !p.deact[c] {
			p.deact[c] = true
			p.dirty[c] = true
		}
	}
	sent := false
	for c := range p.dirty {
		ctx.Broadcast(sim.Msg(kindDeact, int64(c)))
		delete(p.dirty, c)
		sent = true
	}
	if sent {
		return sim.Active
	}
	return sim.Done
}

// scoutNode implements Appendix B.2's bridging-graph construction: old
// nodes re-announce (class, compID, activity); each type-3 new node w
// forms its message m_w; each type-2 new node v assembles its neighbor
// list List_v from active announced components and type-3 messages.
type scoutNode struct {
	comps      map[int32]int64
	active     map[int32]bool
	type3Class int32
	type2Class int32 // unused by the protocol; kept for symmetry
	round      int

	// scratch
	seenComp  map[int64]bool
	annHeard  []candidate // active components heard (class, compID)
	scoutMsgs []sim.Message
	list      []candidate
}

func (p *scoutNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		sent := false
		for c, id := range p.comps {
			act := int64(0)
			if p.active[c] {
				act = 1
			}
			ctx.Broadcast(sim.Msg(kindCompAnn, int64(c), id, act))
			sent = true
		}
		if sent {
			return sim.Active
		}
	case 1:
		p.round++
		// Gather announcements; type-3 role constructs m_w.
		p.seenComp = map[int64]bool{}
		if id, ok := p.comps[p.type3Class]; ok {
			p.seenComp[id] = true
		}
		for _, d := range inbox {
			if d.Msg.Kind != kindCompAnn {
				continue
			}
			c := int32(d.Msg.F[0])
			if d.Msg.F[2] == 1 {
				p.annHeard = append(p.annHeard, candidate{class: c, compID: d.Msg.F[1]})
			}
			if c == p.type3Class {
				p.seenComp[d.Msg.F[1]] = true
			}
		}
		// Also count own active components as heard (virtual adjacency
		// within the same real node).
		for c, id := range p.comps {
			if p.active[c] {
				p.annHeard = append(p.annHeard, candidate{class: c, compID: id})
			}
		}
		switch {
		case len(p.seenComp) == 0:
			// empty m_w
		case len(p.seenComp) == 1:
			var only int64
			for id := range p.seenComp {
				only = id
			}
			ctx.Broadcast(sim.Msg(kindScout, int64(p.type3Class), only))
			return sim.Active
		default:
			ctx.Broadcast(sim.Msg(kindScout, int64(p.type3Class), connectorSymbol))
			return sim.Active
		}
	case 2:
		p.round++
		// Type-2 role: build List_v per Appendix B.2.
		scouts := make(map[int32][]int64)
		add := func(c int32, id int64) {
			for _, have := range scouts[c] {
				if have == id {
					return
				}
			}
			scouts[c] = append(scouts[c], id)
		}
		for _, d := range inbox {
			if d.Msg.Kind == kindScout {
				add(int32(d.Msg.F[0]), d.Msg.F[1])
			}
		}
		// A component C of class i joins List_v iff v heard an active
		// announcement of C and some scout message for class i names a
		// component != C (or the connector symbol).
		seen := map[candidate]bool{}
		for _, cand := range p.annHeard {
			if seen[cand] {
				continue
			}
			seen[cand] = true
			for _, id := range scouts[cand.class] {
				if id == connectorSymbol || id != cand.compID {
					p.list = append(p.list, cand)
					break
				}
			}
		}
	}
	return sim.Done
}

// buildBridging runs phases B of a layer and returns each type-2 node's
// bridging-graph neighbor list.
func (r *run) buildBridging(layer int) ([][]candidate, error) {
	// B.1: announcements + type-1 connector detection.
	anns := make([]*annNode, r.n)
	procs := make([]sim.Process, r.n)
	for v := 0; v < r.n; v++ {
		anns[v] = &annNode{
			comps:      r.compID[v],
			type1Class: r.classOf[v][layer*3+0],
			deact:      make(map[int32]bool),
		}
		procs[v] = anns[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^uint64(layer)<<8^0xdead, 8); err != nil {
		return nil, fmt.Errorf("deactivation detection: %w", err)
	}

	// B.2: flood deactivation component-wide.
	floods := make([]*deactFloodNode, r.n)
	for v := 0; v < r.n; v++ {
		floods[v] = &deactFloodNode{
			comps: r.compID[v],
			deact: anns[v].deact,
			dirty: make(map[int32]bool),
		}
		procs[v] = floods[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^uint64(layer)<<8^0xbeef, 4*r.n+8); err != nil {
		return nil, fmt.Errorf("deactivation flood: %w", err)
	}
	for v := 0; v < r.n; v++ {
		r.active[v] = make(map[int32]bool, len(r.compID[v]))
		for c := range r.compID[v] {
			r.active[v][c] = !floods[v].deact[c]
		}
	}

	// B.3: re-announce with activity; scouts; type-2 lists.
	scouts := make([]*scoutNode, r.n)
	for v := 0; v < r.n; v++ {
		scouts[v] = &scoutNode{
			comps:      r.compID[v],
			active:     r.active[v],
			type3Class: r.classOf[v][layer*3+2],
			type2Class: r.classOf[v][layer*3+1],
		}
		procs[v] = scouts[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^uint64(layer)<<8^0xfeed, 8); err != nil {
		return nil, fmt.Errorf("bridging construction: %w", err)
	}
	lists := make([][]candidate, r.n)
	for v := 0; v < r.n; v++ {
		lists[v] = scouts[v].list
	}
	return lists, nil
}

// --- Phase C: matching stages ------------------------------------------

// proposeNode: stage round 1 — unmatched type-2 nodes propose to the
// listed component with the largest random value; old nodes record the
// best proposal they hear for each of their components.
type proposeNode struct {
	comps    map[int32]int64
	blocked  map[int32]bool // classes whose component here already matched
	list     []candidate    // nil when matched or empty
	proposal candidate      // what this node proposed to
	propVal  int64
	proposed bool
	round    int
	// best proposal per class heard by this old node: (value, proposer).
	best map[int32][2]int64
}

func (p *proposeNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		p.best = make(map[int32][2]int64)
		if len(p.list) > 0 {
			bestIdx, bestVal := 0, int64(-1)
			span := proposalRange(ctx.N())
			for i := range p.list {
				v := ctx.Rand().Int64N(span) // 4·log n random bits
				if v > bestVal {
					bestVal, bestIdx = v, i
				}
			}
			p.proposal = p.list[bestIdx]
			p.propVal = bestVal
			p.proposed = true
			ctx.Broadcast(sim.Msg(kindPropose, int64(p.proposal.class), p.proposal.compID, bestVal))
			return sim.Active
		}
	case 1:
		p.round++
		for _, d := range inbox {
			if d.Msg.Kind != kindPropose {
				continue
			}
			c := int32(d.Msg.F[0])
			if p.blocked[c] {
				continue // component already matched in an earlier stage
			}
			if id, ok := p.comps[c]; !ok || id != d.Msg.F[1] {
				continue // proposal for a component this node is not in
			}
			val, from := d.Msg.F[2], int64(d.From)
			cur, ok := p.best[c]
			if !ok || val > cur[0] || (val == cur[0] && from > cur[1]) {
				p.best[c] = [2]int64{val, from}
			}
		}
	}
	return sim.Done
}

// acceptNode: after the component-wide max flood, old nodes broadcast
// the accepted proposal; type-2 nodes learn whether they were matched
// and prune their lists.
type acceptNode struct {
	comps     map[int32]int64
	accepted  map[int32][2]int64 // class -> (value, proposer), flood result
	proposed  bool
	proposal  candidate
	propVal   int64
	round     int
	matched   bool
	lost      map[candidate]bool // components that accepted someone else
	announced bool
}

func (p *acceptNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		sent := false
		for c, best := range p.accepted {
			if best[1] < 0 {
				continue // no proposal reached this component
			}
			// Self-acceptance: a proposer that is itself a member of the
			// winning component never hears its own broadcast.
			if p.proposed && p.proposal.class == c && p.proposal.compID == p.comps[c] &&
				best[0] == p.propVal && best[1] == int64(ctx.ID()) {
				p.matched = true
			}
			ctx.Broadcast(sim.Msg(kindAccept, int64(c), p.comps[c], best[0], best[1]))
			sent = true
		}
		if sent {
			return sim.Active
		}
	case 1:
		p.round++
		p.lost = make(map[candidate]bool)
		for _, d := range inbox {
			if d.Msg.Kind != kindAccept {
				continue
			}
			cand := candidate{class: int32(d.Msg.F[0]), compID: d.Msg.F[1]}
			val, winner := d.Msg.F[2], d.Msg.F[3]
			if p.proposed && cand == p.proposal && val == p.propVal && winner == int64(ctx.ID()) {
				p.matched = true
			} else {
				p.lost[cand] = true
			}
		}
	}
	return sim.Done
}

// matchStages runs the O(log n) Luby-style stages of Appendix B.3 and
// assigns classes to the type-2 virtual nodes of the layer. Returns the
// number matched through the bridging graph.
func (r *run) matchStages(layer int, lists [][]candidate) (int, error) {
	stages := 1
	for s := 1; s < r.n; s <<= 1 {
		stages++
	}
	matchedCount := 0
	assigned := make([]bool, r.n)
	procs := make([]sim.Process, r.n)
	blocked := make([]map[int32]bool, r.n)
	for v := range blocked {
		blocked[v] = make(map[int32]bool)
	}

	for stage := 0; stage < stages; stage++ {
		anyList := false
		for v := 0; v < r.n; v++ {
			if !assigned[v] && len(lists[v]) > 0 {
				anyList = true
				break
			}
		}
		if !anyList {
			break
		}
		// Stage round 1-2: propose and collect.
		props := make([]*proposeNode, r.n)
		for v := 0; v < r.n; v++ {
			var list []candidate
			if !assigned[v] {
				list = lists[v]
			}
			props[v] = &proposeNode{comps: r.compID[v], blocked: blocked[v], list: list}
			procs[v] = props[v]
		}
		seed := r.opts.Seed ^ uint64(layer*131+stage)<<10 ^ 0xabcd
		if err := r.runPhase(procs, seed, 8); err != nil {
			return matchedCount, fmt.Errorf("propose stage: %w", err)
		}

		// Component-wide max of proposals per class, via restricted
		// flooding (minimize (-value, -proposer)).
		accepted, err := r.floodBestProposal(props, seed^0x1111)
		if err != nil {
			return matchedCount, err
		}

		// Accept round.
		accs := make([]*acceptNode, r.n)
		for v := 0; v < r.n; v++ {
			accs[v] = &acceptNode{
				comps:    r.compID[v],
				accepted: accepted[v],
				proposed: props[v].proposed,
				proposal: props[v].proposal,
				propVal:  props[v].propVal,
			}
			procs[v] = accs[v]
		}
		if err := r.runPhase(procs, seed^0x2222, 8); err != nil {
			return matchedCount, fmt.Errorf("accept stage: %w", err)
		}

		for v := 0; v < r.n; v++ {
			// Members of components that accepted a proposal mark them
			// matched for all later stages.
			for c, best := range accepted[v] {
				if best[1] >= 0 {
					blocked[v][c] = true
				}
			}
			if assigned[v] {
				continue
			}
			if accs[v].matched {
				r.classOf[v][layer*3+1] = props[v].proposal.class
				assigned[v] = true
				matchedCount++
				continue
			}
			// Prune components that accepted other proposals.
			if len(accs[v].lost) > 0 {
				pruned := lists[v][:0]
				for _, cand := range lists[v] {
					if !accs[v].lost[cand] {
						pruned = append(pruned, cand)
					}
				}
				lists[v] = pruned
			}
		}
	}

	// Unmatched type-2 nodes join random classes.
	for v := 0; v < r.n; v++ {
		if !assigned[v] {
			r.classOf[v][layer*3+1] = int32(r.rngs[v].IntN(r.classes))
		}
	}
	return matchedCount, nil
}

// floodBestProposal spreads each component's best proposal to all its
// members (the Theorem B.2 aggregation of Appendix B.3).
type proposalFloodNode struct {
	comps   map[int32]int64
	best    map[int32][2]int64
	dirty   map[int32]bool
	started bool
}

func (p *proposalFloodNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		for c := range p.best {
			p.dirty[c] = true
		}
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindPropose {
			continue
		}
		c := int32(d.Msg.F[0])
		if _, ok := p.comps[c]; !ok {
			continue
		}
		val, who := d.Msg.F[1], d.Msg.F[2]
		cur, ok := p.best[c]
		if !ok || val > cur[0] || (val == cur[0] && who > cur[1]) {
			p.best[c] = [2]int64{val, who}
			p.dirty[c] = true
		}
	}
	sent := false
	for c := range p.dirty {
		b := p.best[c]
		ctx.Broadcast(sim.Msg(kindPropose, int64(c), b[0], b[1]))
		delete(p.dirty, c)
		sent = true
	}
	if sent {
		return sim.Active
	}
	return sim.Done
}

func (r *run) floodBestProposal(props []*proposeNode, seed uint64) ([]map[int32][2]int64, error) {
	nodes := make([]*proposalFloodNode, r.n)
	procs := make([]sim.Process, r.n)
	for v := 0; v < r.n; v++ {
		best := make(map[int32][2]int64, len(props[v].best))
		for c, b := range props[v].best {
			best[c] = b
		}
		nodes[v] = &proposalFloodNode{
			comps: r.compID[v],
			best:  best,
			dirty: make(map[int32]bool),
		}
		procs[v] = nodes[v]
	}
	if err := r.runPhase(procs, seed, 4*r.n+8); err != nil {
		return nil, fmt.Errorf("proposal flood: %w", err)
	}
	out := make([]map[int32][2]int64, r.n)
	for v := 0; v < r.n; v++ {
		// Components with no proposal anywhere stay absent; mark with
		// proposer -1 for members so acceptNode can skip them.
		m := nodes[v].best
		for c := range r.compID[v] {
			if _, ok := m[c]; !ok {
				m[c] = [2]int64{-1, -1}
			}
		}
		out[v] = m
	}
	return out, nil
}

// --- Tree extraction ----------------------------------------------------

// bfsClassNode grows, for every class this node belongs to, a BFS tree
// from the class leader (the member whose id equals the component id).
type bfsClassNode struct {
	member  map[int32]bool
	leader  map[int32]bool
	parent  map[int32]int64
	depth   map[int32]int64
	dirty   map[int32]bool
	started bool
}

func (p *bfsClassNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		for c := range p.leader {
			p.parent[c] = -1
			p.depth[c] = 0
			p.dirty[c] = true
		}
	}
	for _, d := range inbox {
		if d.Msg.Kind != kindBFS {
			continue
		}
		c := int32(d.Msg.F[0])
		if !p.member[c] {
			continue
		}
		if _, reached := p.parent[c]; reached {
			continue
		}
		p.parent[c] = int64(d.From)
		p.depth[c] = d.Msg.F[1] + 1
		p.dirty[c] = true
	}
	sent := false
	for c := range p.dirty {
		ctx.Broadcast(sim.Msg(kindBFS, int64(c), p.depth[c]))
		delete(p.dirty, c)
		sent = true
	}
	if sent {
		return sim.Active
	}
	return sim.Done
}

// extractTrees converts the final classes into dominating trees by
// per-class distributed BFS from the class leader. This realizes the
// paper's 0/1-weight MST step: a BFS forest of the 0-weight (same-class)
// subgraph is such an MST's 0-weight part.
func (r *run) extractTrees() error {
	nodes := make([]*bfsClassNode, r.n)
	procs := make([]sim.Process, r.n)
	for v := 0; v < r.n; v++ {
		member := make(map[int32]bool, len(r.hasOld[v]))
		leader := make(map[int32]bool)
		for c := range r.hasOld[v] {
			member[c] = true
			if id, ok := r.compID[v][c]; ok && id == int64(v) {
				leader[c] = true
			}
		}
		nodes[v] = &bfsClassNode{
			member: member,
			leader: leader,
			parent: make(map[int32]int64),
			depth:  make(map[int32]int64),
			dirty:  make(map[int32]bool),
		}
		procs[v] = nodes[v]
	}
	if err := r.runPhase(procs, r.opts.Seed^0x7ee5, 4*r.n+8); err != nil {
		return fmt.Errorf("tree extraction: %w", err)
	}
	for v := 0; v < r.n; v++ {
		r.parent[v] = nodes[v].parent
	}
	return nil
}

// buildPacking assembles the cds.Packing from the per-node protocol
// outputs, keeping only classes whose trees are connected dominating
// trees (the others are reported through Stats.ValidClasses, exactly
// the quantity the try-and-error tester checks).
func (r *run) buildPacking() *cds.Packing {
	classMembers := make([][]int32, r.classes)
	for v := 0; v < r.n; v++ {
		for c := range r.hasOld[v] {
			classMembers[c] = append(classMembers[c], int32(v))
		}
	}
	var trees []cds.Tree
	for c := 0; c < r.classes; c++ {
		members := classMembers[c]
		if len(members) == 0 {
			continue
		}
		parentOf := make(map[int]int, len(members))
		root := -1
		complete := true
		for _, v := range members {
			p, ok := r.parent[v][int32(c)]
			if !ok {
				complete = false // BFS never reached v: class disconnected
				break
			}
			if p < 0 {
				if root >= 0 {
					complete = false // two roots: split class
					break
				}
				root = int(v)
			} else {
				parentOf[int(v)] = int(p)
			}
		}
		if !complete || root < 0 {
			continue
		}
		tree, err := graph.NewTree(r.n, root, parentOf)
		if err != nil {
			continue
		}
		if !tree.IsDominatingIn(r.g) {
			continue
		}
		trees = append(trees, cds.Tree{Tree: tree, Weight: 1, Class: c})
	}
	stats := r.stats
	stats.ValidClasses = len(trees)
	stats.MaxLoad = cds.FinalizeWeights(trees, r.n)
	return &cds.Packing{Trees: trees, Classes: classMembers, Stats: stats}
}
