// Package cdsdist implements the distributed fractional dominating-tree
// packing of Theorem 1.1 in the V-CONGEST model, following Appendix B.
//
// Each real node simulates the 3L virtual nodes of the paper's virtual
// graph internally; virtual-node messages are sent as slots of the real
// node's local broadcast, so the simulator's slot meter realizes exactly
// the paper's meta-round accounting (Θ(log n) real rounds per virtual
// round). The per-layer structure is the paper's: component
// identification by restricted flooding (Theorem B.2), deactivation by
// type-1 connectors, bridging-graph construction through type-3
// messages, and O(log n) stages of randomized proposal matching
// (Appendix B.3), followed by per-class distributed BFS tree extraction.
package cdsdist

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/cds"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tester"
)

// Message kinds used by the protocol.
const (
	kindComp    = 20 // (class, labelA, labelB): component-label flooding
	kindDeact   = 21 // (class, active01): deactivation flooding
	kindCompAnn = 22 // (class, compID, active01): component announcement
	kindScout   = 23 // (class, compID|-1 connector): type-3 message m_w
	kindPropose = 24 // (class, compID, value): type-2 proposal
	kindAccept  = 25 // (class, compID, value, proposer): accepted proposal
	kindBFS     = 26 // (class, depth): tree-extraction flood
)

const connectorSymbol = -1

// Result is the outcome of a distributed packing run.
type Result struct {
	Packing *cds.Packing
	Meter   sim.Meter
}

// PackWithGuess runs the Appendix B protocol with a fixed connectivity
// guess (the paper's 2-approximation assumption; Pack removes it).
func PackWithGuess(g *graph.Graph, kGuess int, opts cds.Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("cdsdist: empty graph")
	}
	if kGuess < 1 {
		return nil, fmt.Errorf("cdsdist: connectivity guess %d < 1", kGuess)
	}
	opts = normalized(opts)
	r := newRun(g, kGuess, opts)
	if err := r.execute(); err != nil {
		return nil, err
	}
	return &Result{Packing: r.buildPacking(), Meter: r.meter}, nil
}

// Pack removes the connectivity-guess assumption with the try-and-error
// loop of Remark 3.1, testing each guess's outcome with the distributed
// tester of Appendix E and keeping the passing packing of maximum size.
// All testing rounds are added to the returned meter.
func Pack(g *graph.Graph, opts cds.Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("cdsdist: empty graph")
	}
	var best *Result
	var total sim.Meter
	for guess := n; guess >= 1; guess /= 2 {
		res, err := PackWithGuess(g, guess, opts)
		if err != nil {
			return nil, err
		}
		total.Add(&res.Meter)
		classOf := make([][]int32, n)
		for i, t := range res.Packing.Trees {
			for _, v := range t.Tree.Vertices() {
				classOf[v] = append(classOf[v], int32(i))
			}
		}
		tr, err := tester.CheckDistributed(g, classOf, res.Packing.Stats.Classes, opts.Seed+uint64(guess))
		if err != nil {
			return nil, err
		}
		total.Add(&tr.Meter)
		if tr.OK && (best == nil || res.Packing.Size() > best.Packing.Size()) {
			best = res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cdsdist: no guess produced a valid packing (graph disconnected?)")
	}
	best.Meter = total
	return best, nil
}

func normalized(o cds.Options) cds.Options {
	if o.ClassFactor <= 0 {
		o.ClassFactor = 0.5
	}
	if o.LayerFactor <= 0 {
		o.LayerFactor = 1.0
	}
	if o.JumpStartFraction <= 0 || o.JumpStartFraction >= 1 {
		o.JumpStartFraction = 0.5
	}
	return o
}

// run holds the global (driver-visible) protocol state: per-node class
// memberships and per-layer working state. Only information a node
// could know locally is read inside processes; the driver moves state
// between phases and charges barrier costs.
type run struct {
	g       *graph.Graph
	n       int
	layers  int
	classes int
	opts    cds.Options
	rngs    []*rand.Rand // per-node private randomness
	meter   sim.Meter
	diam    int
	eng     *sim.Engine // reused across all phases of the run

	// classOf[v][layer*3+typ] = class of that virtual node, -1 unassigned.
	classOf [][]int32
	// clsList[v] = sorted distinct classes with an assigned virtual node
	// at v in layers processed so far (the keys of the paper's old-node
	// sets). The flood protocols index their per-class state by position
	// in this list, so their per-message work is a short linear scan
	// instead of a map probe.
	clsList [][]int32
	// compList[v][i] = min real id in v's component of class clsList[v][i]
	// (phase A output), parallel to clsList.
	compList [][]int64
	// compID[v][class] = the same information as a map, for the
	// matching-phase processes that inherited map-shaped state.
	compID []map[int32]int64
	// active[v][i] = component of class clsList[v][i] not deactivated
	// this layer, parallel to clsList.
	active [][]bool
	// stats
	stats cds.Stats
	// tree extraction output: parent[v][class] (real parent), -1 root.
	parent []map[int32]int64
}

// classIndex returns the position of c in the sorted class list, or -1.
// Lists hold O(log n) entries, so a linear scan beats hashing.
func classIndex(cls []int32, c int32) int {
	for i, x := range cls {
		if x == c {
			return i
		}
	}
	return -1
}

// insertClass adds c to the sorted class list if absent.
func insertClass(cls []int32, c int32) []int32 {
	i := 0
	for i < len(cls) && cls[i] < c {
		i++
	}
	if i < len(cls) && cls[i] == c {
		return cls
	}
	cls = append(cls, 0)
	copy(cls[i+1:], cls[i:])
	cls[i] = c
	return cls
}

func newRun(g *graph.Graph, kGuess int, opts cds.Options) *run {
	n := g.N()
	layers := layersFor(n, opts)
	classes := int(opts.ClassFactor * float64(kGuess))
	if classes < 1 {
		classes = 1
	}
	r := &run{
		g:        g,
		n:        n,
		layers:   layers,
		classes:  classes,
		opts:     opts,
		rngs:     make([]*rand.Rand, n),
		classOf:  make([][]int32, n),
		clsList:  make([][]int32, n),
		compList: make([][]int64, n),
		compID:   make([]map[int32]int64, n),
		active:   make([][]bool, n),
		parent:   make([]map[int32]int64, n),
		stats:    cds.Stats{Guess: kGuess, Layers: layers, Classes: classes},
	}
	d := graph.ApproxDiameter(g)
	if d < 1 {
		d = n
	}
	r.diam = d
	seedBase := opts.Seed ^ (uint64(kGuess) * 0x9e3779b97f4a7c15)
	for v := 0; v < n; v++ {
		r.rngs[v] = ds.SplitRand(seedBase, uint64(v))
		r.classOf[v] = make([]int32, layers*3)
		for i := range r.classOf[v] {
			r.classOf[v][i] = -1
		}
		r.compID[v] = make(map[int32]int64, 8)
		r.parent[v] = make(map[int32]int64, 8)
	}
	return r
}

func layersFor(n int, o cds.Options) int {
	l := int(math.Ceil(o.LayerFactor * math.Log2(float64(n)+2)))
	if l < 2 {
		l = 2
	}
	return 2 * l
}

func (r *run) execute() error {
	// The paper assumes n and a 2-approximate D are known after an O(D)
	// BFS preprocessing (Section 2); charge it once.
	r.meter.Charge(r.diam)

	// Jump start: local random assignment of layers [0, half).
	half := int(r.opts.JumpStartFraction * float64(r.layers))
	if half < 1 {
		half = 1
	}
	if half > r.layers-1 {
		half = r.layers - 1
	}
	for v := 0; v < r.n; v++ {
		for layer := 0; layer < half; layer++ {
			for typ := 0; typ < 3; typ++ {
				c := int32(r.rngs[v].IntN(r.classes))
				r.classOf[v][layer*3+typ] = c
				r.clsList[v] = insertClass(r.clsList[v], c)
			}
		}
	}

	for layer := half; layer < r.layers; layer++ {
		if err := r.assignLayer(layer); err != nil {
			return fmt.Errorf("cdsdist: layer %d: %w", layer, err)
		}
	}

	// Final component identification + per-class BFS tree extraction.
	if err := r.identifyComponents(); err != nil {
		return err
	}
	if err := r.extractTrees(); err != nil {
		return err
	}
	return nil
}

// assignLayer runs one layer of the recursive class assignment.
func (r *run) assignLayer(layer int) error {
	// Phase A: identify components of the old nodes (Appendix B.1).
	if err := r.identifyComponents(); err != nil {
		return err
	}
	r.stats.ExcessComponents = append(r.stats.ExcessComponents, r.excess())

	// Types 1 and 3 of the new layer join random classes (local coins).
	for v := 0; v < r.n; v++ {
		r.classOf[v][layer*3+0] = int32(r.rngs[v].IntN(r.classes))
		r.classOf[v][layer*3+2] = int32(r.rngs[v].IntN(r.classes))
	}

	// Phase B: deactivate components already bridged by type-1 nodes
	// (Appendix B.2), then build each type-2 node's neighbor list of the
	// bridging graph via component announcements and type-3 scouting.
	lists, err := r.buildBridging(layer)
	if err != nil {
		return err
	}

	// Phase C: O(log n) stages of randomized proposal matching
	// (Appendix B.3).
	matchedCount, err := r.matchStages(layer, lists)
	if err != nil {
		return err
	}
	r.stats.MatchedPerLayer = append(r.stats.MatchedPerLayer, matchedCount)

	// Unmatched type-2 nodes join random classes (done inside
	// matchStages). Fold the new layer into the old-node sets.
	for v := 0; v < r.n; v++ {
		for typ := 0; typ < 3; typ++ {
			if c := r.classOf[v][layer*3+typ]; c >= 0 {
				r.clsList[v] = insertClass(r.clsList[v], c)
			}
		}
	}
	return nil
}

// excess computes M_ell from the driver's view of component ids
// (diagnostic only; no rounds charged).
func (r *run) excess() int {
	comps := make(map[int32]map[int64]bool)
	for v := 0; v < r.n; v++ {
		//repro:allow maprange order-independent fold: every (class, id) pair lands in the same set regardless of visit order
		for c, id := range r.compID[v] {
			if comps[c] == nil {
				comps[c] = make(map[int64]bool)
			}
			comps[c][id] = true
		}
	}
	m := 0
	//repro:allow maprange order-independent sum of per-set excesses
	for _, set := range comps {
		if len(set) > 1 {
			m += len(set) - 1
		}
	}
	return m
}
