package tester

import (
	"testing"

	"repro/internal/cds"
	"repro/internal/graph"
)

// singleClassAll returns a membership table putting every node in class 0.
func singleClassAll(n int) [][]int32 {
	out := make([][]int32, n)
	for i := range out {
		out[i] = []int32{0}
	}
	return out
}

func TestCheckCentralizedValidSingleClass(t *testing.T) {
	g := graph.Cycle(8)
	res, err := CheckCentralized(g, singleClassAll(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("valid partition rejected: %+v", res)
	}
}

func TestCheckCentralizedDominationFailure(t *testing.T) {
	// Class 0 = {0} on a path: vertex 3+ is not dominated.
	g := graph.Path(5)
	classOf := make([][]int32, 5)
	classOf[0] = []int32{0}
	res, err := CheckCentralized(g, classOf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.DominationFailures == 0 {
		t.Fatalf("undominated partition accepted: %+v", res)
	}
}

func TestCheckCentralizedConnectivityFailure(t *testing.T) {
	// C6: class 0 = {0, 3} dominates (every node within 1 of {0,3}) but
	// is disconnected.
	g := graph.Cycle(6)
	classOf := make([][]int32, 6)
	classOf[0] = []int32{0}
	classOf[3] = []int32{0}
	res, err := CheckCentralized(g, classOf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("disconnected class accepted")
	}
	if res.ConnectivityFailures == 0 {
		t.Fatalf("no connectivity failure recorded: %+v", res)
	}
	if res.DominationFailures != 0 {
		t.Fatalf("spurious domination failure: %+v", res)
	}
}

func TestCheckCentralizedEmptyClass(t *testing.T) {
	g := graph.Complete(4)
	classOf := singleClassAll(4) // class 1 exists but is empty
	res, err := CheckCentralized(g, classOf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("empty class accepted")
	}
}

func TestCheckCentralizedValidatesLength(t *testing.T) {
	g := graph.Path(3)
	if _, err := CheckCentralized(g, make([][]int32, 2), 1); err == nil {
		t.Fatal("bad classOf length accepted")
	}
	if _, err := CheckDistributed(g, make([][]int32, 2), 1, 1); err == nil {
		t.Fatal("bad classOf length accepted (distributed)")
	}
}

func TestDistributedMatchesCentralizedOnCases(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.Graph
		classOf func(n int) [][]int32
		classes int
		wantOK  bool
	}{
		{
			name: "valid-two-classes-K8",
			g:    graph.Complete(8),
			classOf: func(n int) [][]int32 {
				out := make([][]int32, n)
				for i := range out {
					out[i] = []int32{int32(i % 2)}
				}
				return out
			},
			classes: 2,
			wantOK:  true,
		},
		{
			name:    "single-class-cycle",
			g:       graph.Cycle(9),
			classOf: singleClassAll,
			classes: 1,
			wantOK:  true,
		},
		{
			name: "undominated",
			g:    graph.Path(6),
			classOf: func(n int) [][]int32 {
				out := make([][]int32, n)
				out[0] = []int32{0}
				return out
			},
			classes: 1,
			wantOK:  false,
		},
		{
			name: "disconnected-class-far-apart",
			g:    graph.Cycle(12),
			classOf: func(n int) [][]int32 {
				// {0,1,2} and {6,7,8}: dominating? vertex 4 has
				// neighbors 3,5 — not dominated; add 4 and 10 to keep
				// domination but with 4 pieces.
				out := make([][]int32, n)
				for _, v := range []int{0, 1, 2, 4, 6, 7, 8, 10} {
					out[v] = []int32{0}
				}
				return out
			},
			classes: 1,
			wantOK:  false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			classOf := tc.classOf(tc.g.N())
			cen, err := CheckCentralized(tc.g, classOf, tc.classes)
			if err != nil {
				t.Fatal(err)
			}
			dis, err := CheckDistributed(tc.g, classOf, tc.classes, 5)
			if err != nil {
				t.Fatal(err)
			}
			if cen.OK != tc.wantOK {
				t.Fatalf("centralized OK=%v, want %v (%+v)", cen.OK, tc.wantOK, cen)
			}
			if dis.OK != tc.wantOK {
				t.Fatalf("distributed OK=%v, want %v (%+v)", dis.OK, tc.wantOK, dis)
			}
			if dis.Meter.TotalRounds() == 0 {
				t.Fatal("distributed test metered zero rounds")
			}
		})
	}
}

func TestTesterAcceptsRealPacking(t *testing.T) {
	g := graph.Hypercube(5)
	p, err := cds.Pack(g, cds.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	classOf := make([][]int32, g.N())
	classes := 0
	for i, tr := range p.Trees {
		for _, v := range tr.Tree.Vertices() {
			classOf[v] = append(classOf[v], int32(i))
		}
		classes = i + 1
	}
	cen, err := CheckCentralized(g, classOf, classes)
	if err != nil {
		t.Fatal(err)
	}
	if !cen.OK {
		t.Fatalf("centralized test rejected a valid packing: %+v", cen)
	}
	dis, err := CheckDistributed(g, classOf, classes, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !dis.OK {
		t.Fatalf("distributed test rejected a valid packing: %+v", dis)
	}
}

func TestTesterDetectsSabotagedPacking(t *testing.T) {
	g := graph.Hypercube(5)
	p, err := cds.Pack(g, cds.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Trees) == 0 {
		t.Fatal("empty packing")
	}
	classOf := make([][]int32, g.N())
	classes := len(p.Trees)
	for i, tr := range p.Trees {
		for _, v := range tr.Tree.Vertices() {
			classOf[v] = append(classOf[v], int32(i))
		}
	}
	// Sabotage: remove class 0 from one of its cut vertices — pick a
	// non-leaf tree vertex so the class likely splits or loses domination.
	victim := -1
	tr := p.Trees[0].Tree
	childCount := map[int]int{}
	tr.ForEachEdge(func(child, parent int) { childCount[parent]++ })
	for v, c := range childCount {
		if c >= 2 {
			victim = v
			break
		}
	}
	if victim < 0 {
		victim = tr.Root()
	}
	pruned := classOf[victim][:0]
	for _, c := range classOf[victim] {
		if c != 0 {
			pruned = append(pruned, c)
		}
	}
	classOf[victim] = pruned

	cen, err := CheckCentralized(g, classOf, classes)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := CheckDistributed(g, classOf, classes, 13)
	if err != nil {
		t.Fatal(err)
	}
	if cen.OK != dis.OK {
		t.Fatalf("centralized (%v) and distributed (%v) disagree on sabotage", cen.OK, dis.OK)
	}
}

func TestMaxRoundsBudgetPositive(t *testing.T) {
	if b := MaxRoundsBudget(graph.Hypercube(4)); b <= 0 {
		t.Fatalf("budget = %d", b)
	}
}
