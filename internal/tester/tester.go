// Package tester implements the randomized CDS-packing test of Appendix
// E (Lemma E.1): given a partition of (virtual) nodes into classes, it
// checks that every class is a connected dominating set, centrally in
// O(m log n) steps or distributedly in O~(min{d', D + sqrt(n)}) rounds.
// The test is one-sided: valid packings always pass; an invalid packing
// is rejected w.h.p. (the connectivity half is randomized).
package tester

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Result reports a test outcome and its cost.
type Result struct {
	// OK is true when the partition passed both tests.
	OK bool
	// DominationFailures counts (node, class) domination violations
	// found (centralized test only; the distributed test stops at one).
	DominationFailures int
	// ConnectivityFailures counts classes detected disconnected.
	ConnectivityFailures int
	// Meter is the distributed cost (zero for the centralized test).
	Meter sim.Meter
}

// CheckCentralized is the centralized test: every class must dominate
// the graph and induce a connected subgraph. classOf[v] lists the
// classes node v belongs to (a node may be in several classes, matching
// the paper's virtual-node partition projected to real nodes); classes
// is t. The predicate itself lives in internal/check (check.Partition),
// shared with the packer property sweeps; this wrapper adds the
// Result/meter shape the try-and-error loop consumes.
func CheckCentralized(g *graph.Graph, classOf [][]int32, classes int) (Result, error) {
	n := g.N()
	if len(classOf) != n {
		return Result{}, fmt.Errorf("tester: classOf has %d entries for %d nodes", len(classOf), n)
	}
	var res Result
	res.DominationFailures, res.ConnectivityFailures = check.Partition(g, classOf, classes)
	res.OK = res.DominationFailures == 0 && res.ConnectivityFailures == 0
	return res, nil
}

// CheckDistributed is the distributed test of Appendix E run in the
// V-CONGEST model. Each node knows its own class memberships; the test
// performs the domination phase (one announcement round plus failure
// flooding) and the connectivity phase (component identification via
// Theorem B.2 flooding, then Θ(log n) rounds of random-class component-
// id announcements to detect split classes, then failure flooding).
//
// For simplicity each phase handles one class at a time when a node has
// multiple memberships; the meter is charged for all slots, matching
// the paper's meta-round accounting.
func CheckDistributed(g *graph.Graph, classOf [][]int32, classes int, seed uint64) (Result, error) {
	n := g.N()
	if len(classOf) != n {
		return Result{}, fmt.Errorf("tester: classOf has %d entries for %d nodes", len(classOf), n)
	}
	var res Result
	res.OK = true

	// --- Domination phase: every node announces its memberships (one
	// slot per membership); every node checks it saw all classes.
	domFail := false
	{
		procs := make([]sim.Process, n)
		nodes := make([]*domNode, n)
		for v := 0; v < n; v++ {
			nodes[v] = &domNode{mine: classOf[v], classes: classes}
			procs[v] = nodes[v]
		}
		eng, err := sim.NewEngine(g, sim.VCongest, procs, seed)
		if err != nil {
			return res, err
		}
		if err := eng.RunPhase(4); err != nil {
			return res, fmt.Errorf("tester: domination phase: %w", err)
		}
		res.Meter.Add(eng.Meter())
		for _, nd := range nodes {
			if nd.failed {
				domFail = true
				res.DominationFailures++
			}
		}
		// Failure flooding costs O(D); charge it.
		res.Meter.Charge(approxD(g))
	}
	if domFail {
		res.OK = false
		return res, nil // the paper aborts after a domination failure
	}

	// --- Connectivity phase, per class: identify components of the
	// class subgraph, then have members exchange component ids; a node
	// seeing two different component ids of the same class detects a
	// disconnect. (With domination already verified, every node of the
	// graph neighbors every class, so a class split into components is
	// detected by some node w.h.p. — here deterministically, because we
	// announce every class membership rather than sampling; the paper's
	// Θ(log n) random sampling meets the same bound when nodes carry
	// O(log n) memberships, which is the regime of Lemma 4.6.)
	for c := 0; c < classes; c++ {
		member := make([]bool, n)
		any := false
		for v := 0; v < n; v++ {
			for _, cc := range classOf[v] {
				if int(cc) == c {
					member[v] = true
					any = true
				}
			}
		}
		if !any {
			res.ConnectivityFailures++
			res.OK = false
			continue
		}
		edgeOK := make([]bool, g.M())
		for id := range edgeOK {
			u, v := g.Endpoints(id)
			edgeOK[id] = member[u] && member[v]
		}
		// Theorem B.2 component identification (restricted flooding).
		values := make([]dist.Pair, n)
		for v := 0; v < n; v++ {
			if member[v] {
				values[v] = dist.Pair{A: int64(v), B: 0}
			} else {
				values[v] = dist.Pair{A: int64(n), B: 0} // inert
			}
		}
		ids, m, err := dist.ComponentMin(g, sim.VCongest, edgeOK, values, seed+uint64(c)+1)
		if err != nil {
			return res, err
		}
		res.Meter.Add(&m)
		// Announcement round: members broadcast component ids; any node
		// hearing two distinct ids for class c detects a disconnect.
		procs := make([]sim.Process, n)
		nodes := make([]*connNode, n)
		for v := 0; v < n; v++ {
			cid := int64(-1)
			if member[v] {
				cid = ids[v].A
			}
			nodes[v] = &connNode{compID: cid}
			procs[v] = nodes[v]
		}
		eng, err := sim.NewEngine(g, sim.VCongest, procs, seed+uint64(c)*31+7)
		if err != nil {
			return res, err
		}
		if err := eng.RunPhase(4); err != nil {
			return res, fmt.Errorf("tester: connectivity phase: %w", err)
		}
		res.Meter.Add(eng.Meter())
		detected := false
		for _, nd := range nodes {
			if nd.detected {
				detected = true
				break
			}
		}
		if detected {
			res.ConnectivityFailures++
			res.OK = false
		}
		res.Meter.Charge(approxD(g)) // failure flooding
	}
	return res, nil
}

func approxD(g *graph.Graph) int {
	d := graph.ApproxDiameter(g)
	if d < 1 {
		d = g.N()
	}
	return d
}

// domNode announces this node's class memberships (one slot each) and
// checks that its closed neighborhood covers every class.
type domNode struct {
	mine    []int32
	classes int
	round   int
	seen    map[int32]bool
	failed  bool
}

const (
	kindMembership = 10
	kindCompID     = 11
)

func (p *domNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		p.seen = make(map[int32]bool, p.classes)
		for _, c := range p.mine {
			p.seen[c] = true
			ctx.Broadcast(sim.Msg(kindMembership, int64(c)))
		}
		if len(p.mine) > 0 {
			return sim.Active
		}
	case 1:
		p.round++
		for _, d := range inbox {
			if d.Msg.Kind == kindMembership {
				p.seen[int32(d.Msg.F[0])] = true
			}
		}
		if len(p.seen) < p.classes {
			p.failed = true
		}
	}
	return sim.Done
}

// connNode implements the detector-path scheme: members broadcast their
// component id; every node records the id it heard (its "witness") and
// re-broadcasts it; a node that ever sees two distinct ids for the class
// flags a disconnect. With domination verified, every node has a
// witness, so a split class always yields an adjacent pair with
// different witnesses — the middle of the paper's length-<=3 detector
// paths.
type connNode struct {
	compID   int64 // -1 for non-members
	round    int
	heard    int64
	detected bool
}

func (p *connNode) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	switch p.round {
	case 0:
		p.round++
		p.heard = p.compID // members witness their own component
		if p.compID >= 0 {
			ctx.Broadcast(sim.Msg(kindCompID, p.compID))
			return sim.Active
		}
	case 1:
		p.round++
		for _, d := range inbox {
			if d.Msg.Kind != kindCompID {
				continue
			}
			id := d.Msg.F[0]
			if p.heard >= 0 && id != p.heard {
				p.detected = true
			}
			p.heard = id
		}
		if p.heard >= 0 {
			ctx.Broadcast(sim.Msg(kindCompID, p.heard))
			return sim.Active
		}
	case 2:
		p.round++
		for _, d := range inbox {
			if d.Msg.Kind == kindCompID && p.heard >= 0 && d.Msg.F[0] != p.heard {
				p.detected = true
			}
		}
	}
	return sim.Done
}

// MaxRoundsBudget returns the Lemma E.1 round bound for reporting:
// O~(min{d', D + sqrt(n)}) with d' <= n.
func MaxRoundsBudget(g *graph.Graph) int {
	n := float64(g.N())
	d := float64(approxD(g))
	b := math.Min(n, d+math.Sqrt(n)*math.Log2(n+2))
	return int(b) + 1
}
