package cds

import (
	"fmt"

	"repro/internal/graph"
)

// IndependentTrees converts vertex-disjoint dominating trees into vertex
// independent spanning trees rooted at root, the Section 1.4.1
// transformation: every non-member of a dominating tree is attached as a
// leaf to one of its dominated neighbors (and the root is attached
// likewise when absent). For any vertex v, the root-to-v paths in
// different output trees then have internally disjoint vertex sets,
// because all internal vertices of the i-th path lie in the i-th
// (disjoint) dominating tree.
//
// This makes the packing an algorithmic poly-log approximation of the
// Zehavi–Itai independent-tree conjecture, as Section 1.4.1 observes.
func IndependentTrees(g *graph.Graph, disjoint []*graph.Tree, root int) ([]*graph.Tree, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("cds: root %d out of range", root)
	}
	out := make([]*graph.Tree, 0, len(disjoint))
	for ti, dt := range disjoint {
		if !dt.IsDominatingIn(g) {
			return nil, fmt.Errorf("cds: tree %d does not dominate", ti)
		}
		parentOf := make(map[int]int, g.N())
		dt.ForEachEdge(func(child, parent int) { parentOf[child] = parent })
		// Attach every non-member as a leaf under a member neighbor.
		for v := 0; v < g.N(); v++ {
			if dt.Contains(v) || v == root {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if dt.Contains(int(w)) {
					parentOf[v] = int(w)
					break
				}
			}
		}
		// Re-root at the requested root. If the root is not a member,
		// hang the old root's component under the root via one of the
		// root's member neighbors: reverse the path root->...->oldRoot.
		oldRoot := dt.Root()
		if root != oldRoot {
			if dt.Contains(root) {
				reversePathToRoot(parentOf, root)
			} else {
				attach := -1
				for _, w := range g.Neighbors(root) {
					if dt.Contains(int(w)) {
						attach = int(w)
						break
					}
				}
				if attach < 0 {
					return nil, fmt.Errorf("cds: root %d has no neighbor in tree %d", root, ti)
				}
				reversePathToRoot(parentOf, attach)
				parentOf[attach] = root
			}
			delete(parentOf, root)
		}
		tree, err := graph.NewTree(g.N(), root, parentOf)
		if err != nil {
			return nil, fmt.Errorf("cds: tree %d re-rooting: %w", ti, err)
		}
		if !tree.IsSpanning(g) {
			return nil, fmt.Errorf("cds: tree %d does not span after leaf attachment", ti)
		}
		out = append(out, tree)
	}
	return out, nil
}

// reversePathToRoot makes newRoot the root of its parent forest by
// reversing the parent pointers along newRoot's ancestor chain.
func reversePathToRoot(parentOf map[int]int, newRoot int) {
	prev := -1
	cur := newRoot
	for {
		next, ok := parentOf[cur]
		if prev >= 0 {
			parentOf[cur] = prev
		} else {
			delete(parentOf, cur)
		}
		if !ok {
			break
		}
		prev = cur
		cur = next
	}
}

// VerifyIndependent checks the independent-trees property: for every
// vertex v, the root-to-v paths in the given spanning trees are pairwise
// internally vertex-disjoint.
func VerifyIndependent(g *graph.Graph, trees []*graph.Tree, root int) error {
	paths := make([][]map[int]bool, len(trees)) // paths[t][v] = internal vertex set
	for ti, tr := range trees {
		if !tr.IsSpanning(g) {
			return fmt.Errorf("cds: tree %d not spanning", ti)
		}
		if tr.Root() != root {
			return fmt.Errorf("cds: tree %d rooted at %d, want %d", ti, tr.Root(), root)
		}
		paths[ti] = make([]map[int]bool, g.N())
		for v := 0; v < g.N(); v++ {
			set := map[int]bool{}
			cur := v
			for steps := 0; cur != root; steps++ {
				if steps > g.N() {
					return fmt.Errorf("cds: tree %d has a broken parent chain at %d", ti, v)
				}
				p, ok := tr.Parent(cur)
				if !ok {
					return fmt.Errorf("cds: tree %d: no parent for %d", ti, cur)
				}
				if cur != v {
					set[cur] = true
				}
				cur = p
			}
			paths[ti][v] = set
		}
	}
	for v := 0; v < g.N(); v++ {
		for a := 0; a < len(trees); a++ {
			for b := a + 1; b < len(trees); b++ {
				//repro:allow maprange membership scan: pass/fail is order-independent, only which violating vertex an error names first varies
				for w := range paths[a][v] {
					if paths[b][v][w] {
						return fmt.Errorf("cds: paths to %d in trees %d and %d share internal vertex %d", v, a, b, w)
					}
				}
			}
		}
	}
	return nil
}
