package cds

import (
	"sort"

	"repro/internal/ds"
	"repro/internal/graph"
)

// Virtual node types, following the paper's numbering (Section 3.1).
const (
	typeOne   = 0 // paper type-1: directly bridges two components
	typeTwo   = 1 // paper type-2: assigned via the bridging-graph matching
	typeThree = 2 // paper type-3: scouts components for type-2 neighbors
	numTypes  = 3
)

// virtualGraph is the bookkeeping for the virtual graph G~: each real
// node simulates 3L virtual nodes (one per layer and type); two virtual
// nodes are adjacent iff their real nodes are equal or adjacent in G.
// Connected components of each class are tracked by a union-find over
// virtual node ids, with one representative virtual node per (real
// node, class) so that merging a new virtual node costs O(deg) finds.
//
// Representatives are stored as two parallel per-vertex slices sorted by
// class (repCls/repVid) instead of per-vertex maps: a vertex belongs to
// O(log n) classes, so lookups are a short binary search and inserts a
// short shift, and every iteration over a vertex's classes is in
// ascending class order — deterministic by construction.
type virtualGraph struct {
	g       *graph.Graph
	n       int
	layers  int
	classes int
	classOf []int32 // per vid; -1 unassigned
	uf      *ds.UnionFind
	repCls  [][]int32 // repCls[v] = sorted classes with a representative at v
	repVid  [][]int32 // repVid[v][i] = representative vid of class repCls[v][i]
	comps   []int32   // comps[class] = live component count
}

func newVirtualGraph(g *graph.Graph, layers, classes int) *virtualGraph {
	n := g.N()
	vg := &virtualGraph{
		g:       g,
		n:       n,
		layers:  layers,
		classes: classes,
		classOf: make([]int32, n*layers*numTypes),
		uf:      ds.NewUnionFind(n * layers * numTypes),
		repCls:  make([][]int32, n),
		repVid:  make([][]int32, n),
		comps:   make([]int32, classes),
	}
	for i := range vg.classOf {
		vg.classOf[i] = -1
	}
	return vg
}

// vid maps (real node, layer, type) to a virtual node id.
func (vg *virtualGraph) vid(v, layer, typ int) int32 {
	return int32((v*vg.layers+layer)*numTypes + typ)
}

// numVirtual returns the size of the virtual node id space, which sizes
// the epoch-stamped scratch arrays keyed by component root.
func (vg *virtualGraph) numVirtual() int {
	return vg.n * vg.layers * numTypes
}

// class returns the class of virtual node (v,layer,typ), or -1.
func (vg *virtualGraph) class(v, layer, typ int) int32 {
	return vg.classOf[vg.vid(v, layer, typ)]
}

// setClass records a class assignment without merging, used while a
// layer's matching still needs the previous layers' component structure.
func (vg *virtualGraph) setClass(v, layer, typ int, class int32) {
	vg.classOf[vg.vid(v, layer, typ)] = class
}

// rep returns the representative vid of class at real node v, or -1 when
// no virtual node of v has joined the class yet.
func (vg *virtualGraph) rep(v int, class int32) int32 {
	cls := vg.repCls[v]
	i := sort.Search(len(cls), func(i int) bool { return cls[i] >= class })
	if i < len(cls) && cls[i] == class {
		return vg.repVid[v][i]
	}
	return -1
}

// addRep records vid as the representative of class at real node v,
// keeping the per-vertex class list sorted.
func (vg *virtualGraph) addRep(v int, class, id int32) {
	cls, vids := vg.repCls[v], vg.repVid[v]
	i := sort.Search(len(cls), func(i int) bool { return cls[i] >= class })
	cls = append(cls, 0)
	vids = append(vids, 0)
	copy(cls[i+1:], cls[i:])
	copy(vids[i+1:], vids[i:])
	cls[i], vids[i] = class, id
	vg.repCls[v], vg.repVid[v] = cls, vids
}

// merge folds an assigned virtual node into its class's component
// structure, unioning it with the class representatives at its own real
// node and at every real neighbor.
func (vg *virtualGraph) merge(v, layer, typ int) {
	id := vg.vid(v, layer, typ)
	class := vg.classOf[id]
	if class < 0 {
		return
	}
	vg.comps[class]++
	if r := vg.rep(v, class); r >= 0 {
		if vg.uf.Union(int(id), int(r)) {
			vg.comps[class]--
		}
	} else {
		vg.addRep(v, class, id)
	}
	for _, w := range vg.g.Neighbors(v) {
		if r := vg.rep(int(w), class); r >= 0 {
			if vg.uf.Union(int(id), int(r)) {
				vg.comps[class]--
			}
		}
	}
}

// assign is setClass followed by merge, used during the jump start.
func (vg *virtualGraph) assign(v, layer, typ int, class int32) {
	vg.setClass(v, layer, typ, class)
	vg.merge(v, layer, typ)
}

// adjacentComponents appends to dst the distinct component roots of the
// given class adjacent (in the virtual graph) to real node v: the class
// components containing a virtual node of v itself or of a real
// neighbor of v.
func (vg *virtualGraph) adjacentComponents(v int, class int32, dst []int32) []int32 {
	add := func(u int) {
		r := vg.rep(u, class)
		if r < 0 {
			return
		}
		root := int32(vg.uf.Find(int(r)))
		for _, have := range dst {
			if have == root {
				return
			}
		}
		dst = append(dst, root)
	}
	add(v)
	for _, w := range vg.g.Neighbors(v) {
		add(int(w))
	}
	return dst
}

// excess returns M = Σ_i max(0, N_i - 1), the paper's count of excess
// components over all classes.
func (vg *virtualGraph) excess() int {
	m := 0
	for _, c := range vg.comps {
		if c > 1 {
			m += int(c) - 1
		}
	}
	return m
}

// realClasses projects classes onto real nodes: class i contains real
// node v iff some virtual node of v joined class i (repCls records
// exactly the classes each real node participates in). Members are
// appended in ascending v, so every class list comes out sorted.
func (vg *virtualGraph) realClasses() [][]int32 {
	out := make([][]int32, vg.classes)
	for v := 0; v < vg.n; v++ {
		for _, class := range vg.repCls[v] {
			out[class] = append(out[class], int32(v))
		}
	}
	return out
}

// maxLoad returns the maximum over real nodes of the number of distinct
// classes the node belongs to.
func (vg *virtualGraph) maxLoad() int {
	max := 0
	for v := 0; v < vg.n; v++ {
		if l := len(vg.repCls[v]); l > max {
			max = l
		}
	}
	return max
}
