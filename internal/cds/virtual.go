package cds

import (
	"repro/internal/ds"
	"repro/internal/graph"
)

// Virtual node types, following the paper's numbering (Section 3.1).
const (
	typeOne   = 0 // paper type-1: directly bridges two components
	typeTwo   = 1 // paper type-2: assigned via the bridging-graph matching
	typeThree = 2 // paper type-3: scouts components for type-2 neighbors
	numTypes  = 3
)

// virtualGraph is the bookkeeping for the virtual graph G~: each real
// node simulates 3L virtual nodes (one per layer and type); two virtual
// nodes are adjacent iff their real nodes are equal or adjacent in G.
// Connected components of each class are tracked by a union-find over
// virtual node ids, with one representative virtual node per (real
// node, class) so that merging a new virtual node costs O(deg) finds.
type virtualGraph struct {
	g       *graph.Graph
	n       int
	layers  int
	classes int
	classOf []int32 // per vid; -1 unassigned
	uf      *ds.UnionFind
	rep     []map[int32]int32 // rep[v][class] = representative vid
	comps   []int32           // comps[class] = live component count
}

func newVirtualGraph(g *graph.Graph, layers, classes int) *virtualGraph {
	n := g.N()
	vg := &virtualGraph{
		g:       g,
		n:       n,
		layers:  layers,
		classes: classes,
		classOf: make([]int32, n*layers*numTypes),
		uf:      ds.NewUnionFind(n * layers * numTypes),
		rep:     make([]map[int32]int32, n),
		comps:   make([]int32, classes),
	}
	for i := range vg.classOf {
		vg.classOf[i] = -1
	}
	for v := range vg.rep {
		vg.rep[v] = make(map[int32]int32, 8)
	}
	return vg
}

// vid maps (real node, layer, type) to a virtual node id.
func (vg *virtualGraph) vid(v, layer, typ int) int32 {
	return int32((v*vg.layers+layer)*numTypes + typ)
}

// class returns the class of virtual node (v,layer,typ), or -1.
func (vg *virtualGraph) class(v, layer, typ int) int32 {
	return vg.classOf[vg.vid(v, layer, typ)]
}

// setClass records a class assignment without merging, used while a
// layer's matching still needs the previous layers' component structure.
func (vg *virtualGraph) setClass(v, layer, typ int, class int32) {
	vg.classOf[vg.vid(v, layer, typ)] = class
}

// merge folds an assigned virtual node into its class's component
// structure, unioning it with the class representatives at its own real
// node and at every real neighbor.
func (vg *virtualGraph) merge(v, layer, typ int) {
	id := vg.vid(v, layer, typ)
	class := vg.classOf[id]
	if class < 0 {
		return
	}
	vg.comps[class]++
	if r, ok := vg.rep[v][class]; ok {
		if vg.uf.Union(int(id), int(r)) {
			vg.comps[class]--
		}
	} else {
		vg.rep[v][class] = id
	}
	for _, w := range vg.g.Neighbors(v) {
		if r, ok := vg.rep[w][class]; ok {
			if vg.uf.Union(int(id), int(r)) {
				vg.comps[class]--
			}
		}
	}
}

// assign is setClass followed by merge, used during the jump start.
func (vg *virtualGraph) assign(v, layer, typ int, class int32) {
	vg.setClass(v, layer, typ, class)
	vg.merge(v, layer, typ)
}

// adjacentComponents appends to dst the distinct component roots of the
// given class adjacent (in the virtual graph) to real node v: the class
// components containing a virtual node of v itself or of a real
// neighbor of v.
func (vg *virtualGraph) adjacentComponents(v int, class int32, dst []int32) []int32 {
	add := func(rv map[int32]int32) {
		r, ok := rv[class]
		if !ok {
			return
		}
		root := int32(vg.uf.Find(int(r)))
		for _, have := range dst {
			if have == root {
				return
			}
		}
		dst = append(dst, root)
	}
	add(vg.rep[v])
	for _, w := range vg.g.Neighbors(v) {
		add(vg.rep[w])
	}
	return dst
}

// excess returns M = Σ_i max(0, N_i - 1), the paper's count of excess
// components over all classes.
func (vg *virtualGraph) excess() int {
	m := 0
	for _, c := range vg.comps {
		if c > 1 {
			m += int(c) - 1
		}
	}
	return m
}

// realClasses projects classes onto real nodes: class i contains real
// node v iff some virtual node of v joined class i (rep keys record
// exactly the classes each real node participates in).
func (vg *virtualGraph) realClasses() [][]int32 {
	out := make([][]int32, vg.classes)
	for v := 0; v < vg.n; v++ {
		for class := range vg.rep[v] {
			out[class] = append(out[class], int32(v))
		}
	}
	for class := range out {
		sortInt32s(out[class])
	}
	return out
}

func sortInt32s(a []int32) {
	// Insertion sort is fine: class membership lists are built in near-
	// sorted order (ascending v), so this is effectively linear.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// maxLoad returns the maximum over real nodes of the number of distinct
// classes the node belongs to.
func (vg *virtualGraph) maxLoad() int {
	max := 0
	for v := 0; v < vg.n; v++ {
		if l := len(vg.rep[v]); l > max {
			max = l
		}
	}
	return max
}
