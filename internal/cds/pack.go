package cds

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/ds"
	"repro/internal/graph"
)

// PackWithGuess runs the CDS-packing construction of Section 3.1 with a
// fixed connectivity guess kGuess (the paper's 2-approximation
// assumption; Pack removes it). It always returns a Packing — possibly
// with fewer valid trees than classes — so callers can test the outcome
// as the paper's try-and-error loop does.
func PackWithGuess(g *graph.Graph, kGuess int, opts Options) (*Packing, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("cds: empty graph")
	}
	if kGuess < 1 {
		return nil, fmt.Errorf("cds: connectivity guess %d < 1", kGuess)
	}
	opts = opts.normalize(n)
	layers := layersFor(n, opts)
	classes := int(opts.ClassFactor * float64(kGuess))
	if classes < 1 {
		classes = 1
	}
	rng := ds.NewRand(opts.Seed ^ (uint64(kGuess) * 0x9e3779b97f4a7c15))
	vg := newVirtualGraph(g, layers, classes)
	scratch := newPackScratch(vg)
	stats := Stats{Guess: kGuess, Layers: layers, Classes: classes}

	// Jump start: layers [0, half) of every type join random classes
	// (Section 3.1's first step, giving domination w.h.p.).
	half := int(opts.JumpStartFraction * float64(layers))
	if half < 1 {
		half = 1
	}
	if half > layers-1 {
		half = layers - 1
	}
	for layer := 0; layer < half; layer++ {
		for v := 0; v < n; v++ {
			for typ := 0; typ < numTypes; typ++ {
				vg.assign(v, layer, typ, int32(rng.IntN(classes)))
			}
		}
	}
	stats.ExcessComponents = append(stats.ExcessComponents, vg.excess())

	// Recursive class assignment, one layer at a time.
	for layer := half; layer < layers; layer++ {
		matchedCount := assignLayer(g, vg, scratch, rng, layer, classes)
		stats.MatchedPerLayer = append(stats.MatchedPerLayer, matchedCount)
		stats.Matched += matchedCount
		stats.Unmatched += n - matchedCount
		stats.ExcessComponents = append(stats.ExcessComponents, vg.excess())
	}

	return buildPacking(g, vg, stats), nil
}

// packScratch is the epoch-stamped scratch arena shared by every layer
// of one PackWithGuess run. The per-layer component sets (deactivated,
// matched) and the per-findMatch potential-matches array are "cleared"
// by bumping a generation counter instead of reallocating maps, so the
// matching loop performs no per-call allocation and no hashing.
type packScratch struct {
	layerGen int32   // current layer generation
	deactGen []int32 // per component root: deactivated iff == layerGen
	matchGen []int32 // per component root: matched iff == layerGen

	pmGen  int32     // current findMatch generation
	pmSeen []int32   // per class: pm[class] valid iff == pmGen
	pm     [][]int32 // per class: suitable component roots (App. C array)

	suitable [][]int32 // per vertex: reused across layers
	order    []int     // matching order permutation, reused across layers
}

func newPackScratch(vg *virtualGraph) *packScratch {
	// Generation 0 is never current: layerGen and pmGen are incremented
	// before first use, so the zeroed stamps mean "not in set".
	return &packScratch{
		deactGen: make([]int32, vg.numVirtual()),
		matchGen: make([]int32, vg.numVirtual()),
		pmSeen:   make([]int32, vg.classes),
		pm:       make([][]int32, vg.classes),
		suitable: make([][]int32, vg.n),
		order:    make([]int, vg.n),
	}
}

// assignLayer performs the paper's recursive class assignment for one
// new layer: random classes for types 1 and 3, then the bridging-graph
// maximal matching for type 2 (Appendix C data-structure version).
// It returns the number of type-2 nodes matched through the bridging
// graph.
func assignLayer(g *graph.Graph, vg *virtualGraph, s *packScratch, rng *rand.Rand, layer, classes int) int {
	n := g.N()
	s.layerGen++

	// Types 1 and 3 join random classes (recorded, merged later).
	for v := 0; v < n; v++ {
		vg.setClass(v, layer, typeOne, int32(rng.IntN(classes)))
		vg.setClass(v, layer, typeThree, int32(rng.IntN(classes)))
	}

	// Deactivation: a component already bridged by a type-1 new node of
	// its own class needs no type-2 match this layer (Appendix B.2).
	var scratch []int32
	for v := 0; v < n; v++ {
		class := vg.class(v, layer, typeOne)
		scratch = vg.adjacentComponents(v, class, scratch[:0])
		if len(scratch) >= 2 {
			for _, root := range scratch {
				s.deactGen[root] = s.layerGen
			}
		}
	}

	// Suitability: for each type-3 new node, the components of its own
	// class it is adjacent to (rule (c) of the bridging graph).
	for v := 0; v < n; v++ {
		class := vg.class(v, layer, typeThree)
		s.suitable[v] = vg.adjacentComponents(v, class, s.suitable[v][:0])
	}

	// Maximal matching over the bridging graph, greedily over type-2 new
	// nodes in random order (Appendix C walks an arbitrary linked list;
	// a random order is one such list and symmetrizes the analysis).
	ds.Perm(rng, s.order)
	matchedCount := 0
	for _, v := range s.order {
		class, comp := findMatch(g, vg, s, v, layer)
		if class >= 0 {
			vg.setClass(v, layer, typeTwo, class)
			s.matchGen[comp] = s.layerGen
			matchedCount++
		} else {
			vg.setClass(v, layer, typeTwo, int32(rng.IntN(classes)))
		}
	}

	// Merge the completed layer into the component structure.
	for v := 0; v < n; v++ {
		for typ := 0; typ < numTypes; typ++ {
			vg.merge(v, layer, typ)
		}
	}
	return matchedCount
}

// findMatch looks for a bridging-graph neighbor of type-2 node (v,
// layer): an active unmatched component C of some class i such that v
// has a virtual neighbor in C and a type-3 new neighbor of class i that
// is adjacent to a component of class i other than C. It returns the
// matched class and component root, or (-1, -1). Candidate classes are
// scanned in ascending class order (the sorted representative lists),
// so the greedy choice is deterministic by construction.
func findMatch(g *graph.Graph, vg *virtualGraph, s *packScratch, v, layer int) (int32, int32) {
	// s.pm[class] = set of component roots reachable via type-3 new
	// neighbors of that class (the potential-matches array of App. C),
	// valid for this call iff s.pmSeen[class] == s.pmGen.
	s.pmGen++
	addSuit := func(u int) {
		class := vg.class(u, layer, typeThree)
		roots := s.suitable[u]
		if len(roots) == 0 {
			return
		}
		if s.pmSeen[class] != s.pmGen {
			s.pmSeen[class] = s.pmGen
			s.pm[class] = s.pm[class][:0]
		}
	outer:
		for _, root := range roots {
			for _, have := range s.pm[class] {
				if have == root {
					continue outer
				}
			}
			s.pm[class] = append(s.pm[class], root)
		}
	}
	addSuit(v)
	for _, w := range g.Neighbors(v) {
		addSuit(int(w))
	}

	// Scan candidate components adjacent to v, class by class.
	tryClass := func(u int) (int32, int32) {
		vids := vg.repVid[u]
		for i, class := range vg.repCls[u] {
			root := int32(vg.uf.Find(int(vids[i])))
			if s.matchGen[root] == s.layerGen || s.deactGen[root] == s.layerGen {
				continue
			}
			// Bridging rule (c): some suitable component differs from root.
			var set []int32
			if s.pmSeen[class] == s.pmGen {
				set = s.pm[class]
			}
			ok := len(set) > 1 || (len(set) == 1 && set[0] != root)
			if ok {
				return class, root
			}
		}
		return -1, -1
	}
	if class, root := tryClass(v); class >= 0 {
		return class, root
	}
	for _, w := range g.Neighbors(v) {
		if class, root := tryClass(int(w)); class >= 0 {
			return class, root
		}
	}
	return -1, -1
}

// buildPacking converts the class assignment into dominating trees: the
// CDS-to-tree step of Section 3.1 (a 0/1-weight MST, which reduces to a
// per-class spanning tree of the induced subgraph), then uniform
// fractional weights 1/maxLoad so that per-vertex load is at most 1.
func buildPacking(g *graph.Graph, vg *virtualGraph, stats Stats) *Packing {
	classes := vg.realClasses()
	inSet := ds.NewBitset(g.N())
	var trees []Tree
	for class, members := range classes {
		if len(members) == 0 {
			continue
		}
		inSet.Reset()
		for _, v := range members {
			inSet.Set(int(v))
		}
		tree, err := graph.SpanningTreeOfSubset(g, inSet.Has)
		if err != nil {
			continue // class not connected: invalid
		}
		if !tree.IsDominatingIn(g) {
			continue
		}
		trees = append(trees, Tree{Tree: tree, Weight: 1, Class: class})
	}
	stats.ValidClasses = len(trees)
	stats.MaxLoad = FinalizeWeights(trees, g.N())
	return &Packing{Trees: trees, Classes: classes, Stats: stats}
}

// FinalizeWeights assigns fractional weights to the valid trees: first the
// safe per-tree weight 1/max_{v in tau} count(v) (which keeps every
// vertex load at most 1, since each of the count(v) trees through v
// contributes at most 1/count(v)), then greedy augmentation passes that
// raise each tree's weight by the minimum residual slack along it.
// It returns the maximum per-vertex tree count. The distributed packer
// (internal/cdsdist) reuses it on the trees it extracts.
func FinalizeWeights(trees []Tree, n int) int {
	count := make([]int, n)
	for _, t := range trees {
		for _, v := range t.Tree.Vertices() {
			count[v]++
		}
	}
	maxCount := 0
	for _, c := range count {
		if c > maxCount {
			maxCount = c
		}
	}
	load := make([]float64, n)
	for i := range trees {
		mc := 1
		for _, v := range trees[i].Tree.Vertices() {
			if count[v] > mc {
				mc = count[v]
			}
		}
		trees[i].Weight = 1 / float64(mc)
		for _, v := range trees[i].Tree.Vertices() {
			load[v] += trees[i].Weight
		}
	}
	const augmentPasses = 3
	for pass := 0; pass < augmentPasses; pass++ {
		for i := range trees {
			slack := 1 - trees[i].Weight
			for _, v := range trees[i].Tree.Vertices() {
				if s := 1 - load[v]; s < slack {
					slack = s
				}
			}
			if slack <= 1e-12 {
				continue
			}
			trees[i].Weight += slack
			for _, v := range trees[i].Tree.Vertices() {
				load[v] += slack
			}
		}
	}
	return maxCount
}

// Pack removes the known-connectivity assumption with the paper's
// try-and-error loop (Remark 3.1): it tries exponentially decreasing
// guesses k-hat = n/2^j, tests each outcome (domination and
// connectivity of every class), and returns the passing packing of
// maximum size. Around the correct guess the size is Ω(k/log n) w.h.p.
// while no valid fractional dominating-tree packing can exceed k, so
// the best passing size is the Corollary 1.7 estimate. For a connected
// graph the loop always terminates with at least the single-class
// packing (the whole vertex set).
func Pack(g *graph.Graph, opts Options) (*Packing, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("cds: empty graph")
	}
	opts = opts.normalize(n)
	var best *Packing
	for guess := n; guess >= 1; guess /= 2 {
		p, err := PackWithGuess(g, guess, opts)
		if err != nil {
			return nil, err
		}
		if packingPasses(p, opts) && (best == nil || p.Size() > best.Size()) {
			best = p
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cds: no guess produced a valid packing (graph disconnected?)")
	}
	return best, nil
}

func packingPasses(p *Packing, opts Options) bool {
	if opts.AllowPartialValidity {
		return p.Stats.ValidClasses*2 >= p.Stats.Classes && p.Stats.ValidClasses > 0
	}
	return p.Stats.ValidClasses == p.Stats.Classes
}

// ApproxVertexConnectivity returns the packing-size estimate of the
// vertex connectivity (Corollary 1.7): the returned value is always at
// most k (any vertex cut meets every dominating tree) and, w.h.p., at
// least Ω(k/log n), so k is approximated within an O(log n) factor.
func ApproxVertexConnectivity(g *graph.Graph, opts Options) (float64, *Packing, error) {
	p, err := Pack(g, opts)
	if err != nil {
		return 0, nil, err
	}
	return p.Size(), p, nil
}

// ExtractDisjoint greedily derives an integral, vertex-disjoint
// dominating-tree packing from a fractional one: classes are scanned in
// packing order, and a class is kept if its members minus all
// previously used vertices still induce a connected dominating set.
// This replaces the random-layering adaptation of [12, Theorem 1.2]
// (see DESIGN.md substitutions); the returned trees are guaranteed
// vertex-disjoint dominating trees.
func ExtractDisjoint(g *graph.Graph, p *Packing) []*graph.Tree {
	used := ds.NewBitset(g.N())
	member := ds.NewBitset(g.N())
	var out []*graph.Tree
	for _, t := range p.Trees {
		member.Reset()
		for _, u := range t.Tree.Vertices() {
			member.Set(int(u))
		}
		free := func(v int) bool { return member.Has(v) && !used.Has(v) }
		tree, err := graph.SpanningTreeOfSubset(g, free)
		if err != nil {
			continue
		}
		if !tree.IsDominatingIn(g) {
			continue
		}
		out = append(out, tree)
		for _, v := range tree.Vertices() {
			used.Set(int(v))
		}
	}
	return out
}
