// Package cds implements the paper's core contribution: fractional
// dominating-tree (connected-dominating-set) packings of size
// Ω(k/log n) for graphs with vertex connectivity k (Theorems 1.1/1.2).
//
// The centralized implementation follows Section 3 and Appendix C: a
// virtual graph with L = Θ(log n) layers of three typed copies per real
// node, a random jump-start on the first L/2 layers, and a recursive
// class assignment in which type-2 virtual nodes are matched to
// connected components through the bridging graph. Components are
// maintained with a union-find over virtual nodes, giving the paper's
// O(m log^2 n) step bound up to the union-find inverse-Ackermann factor.
package cds

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Tree is one weighted dominating tree of a packing.
type Tree struct {
	// Tree is the dominating tree in the host graph.
	Tree *graph.Tree
	// Weight is the tree's fractional weight x_tau in [0,1].
	Weight float64
	// Class is the class index this tree was built from.
	Class int
}

// Packing is a fractional dominating tree packing (Section 2): trees
// with weights such that the total weight through every vertex is at
// most 1. Size() is the packing size Σ x_tau, the quantity Theorem 1.1
// lower-bounds by Ω(k/log n).
type Packing struct {
	Trees []Tree
	// Classes holds, for every class (valid or not), the set of real
	// vertices that joined it; experiment code uses it for diagnostics
	// and figure generation.
	Classes [][]int32
	// Stats records convergence diagnostics of the run that built this
	// packing.
	Stats Stats
}

// Size returns the packing size Σ x_tau.
func (p *Packing) Size() float64 {
	s := 0.0
	for _, t := range p.Trees {
		s += t.Weight
	}
	return s
}

// MaxVertexLoad returns the maximum over vertices of the total weight
// of trees containing that vertex; a valid fractional packing has load
// at most 1.
func (p *Packing) MaxVertexLoad(n int) float64 {
	load := make([]float64, n)
	for _, t := range p.Trees {
		for _, v := range t.Tree.Vertices() {
			load[v] += t.Weight
		}
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// MaxTreeCount returns the maximum over vertices of the number of trees
// containing that vertex (the paper's "each node is included in
// O(log n) trees").
func (p *Packing) MaxTreeCount(n int) int {
	count := make([]int, n)
	for _, t := range p.Trees {
		for _, v := range t.Tree.Vertices() {
			count[v]++
		}
	}
	max := 0
	for _, c := range count {
		if c > max {
			max = c
		}
	}
	return max
}

// MaxTreeHeight returns the maximum tree height in the packing, which
// bounds tree diameters within a factor 2 (Theorem 1.1's O~(n/k) claim).
func (p *Packing) MaxTreeHeight() int {
	max := 0
	for _, t := range p.Trees {
		if h := t.Tree.Height(); h > max {
			max = h
		}
	}
	return max
}

// Validate checks the packing against the host graph: every tree must
// be a genuine dominating tree of g, weights must lie in (0,1], and the
// per-vertex fractional load must not exceed 1 (+eps).
func (p *Packing) Validate(g *graph.Graph) error {
	for i, t := range p.Trees {
		if t.Weight <= 0 || t.Weight > 1 {
			return fmt.Errorf("cds: tree %d has weight %f outside (0,1]", i, t.Weight)
		}
		if err := t.Tree.ValidateIn(g); err != nil {
			return fmt.Errorf("cds: tree %d: %w", i, err)
		}
		if !t.Tree.IsDominatingIn(g) {
			return fmt.Errorf("cds: tree %d does not dominate", i)
		}
	}
	if load := p.MaxVertexLoad(g.N()); load > 1+1e-9 {
		return fmt.Errorf("cds: max vertex load %f exceeds 1", load)
	}
	return nil
}

// Stats captures the run diagnostics the experiments report.
type Stats struct {
	// Guess is the connectivity guess k-hat the packing was built with.
	Guess int
	// Layers is L, the number of virtual layers used.
	Layers int
	// Classes is t, the number of classes attempted.
	Classes int
	// ValidClasses counts classes that ended up connected and dominating.
	ValidClasses int
	// ExcessComponents traces M_ell (total excess component count) after
	// each layer from L/2 to L; the Fast Merger Lemma predicts geometric
	// decay.
	ExcessComponents []int
	// MatchedPerLayer counts bridging-graph matches made at each layer.
	MatchedPerLayer []int
	// Matched and Unmatched total the type-2 nodes across all recursive
	// layers that were matched through the bridging graph vs. fell back
	// to a random class (observability roll-up of MatchedPerLayer).
	Matched   int
	Unmatched int
	// MaxLoad is the maximum number of distinct classes any real vertex
	// belongs to (per-node load before fractional weighting).
	MaxLoad int
}

// Options configures the packing algorithms. The zero value is usable;
// Normalize fills defaults.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// ClassFactor sets t = max(1, floor(ClassFactor * k-hat)); the paper
	// uses t = Θ(k) with a small constant. Default 0.5.
	ClassFactor float64
	// LayerFactor sets L = 2*ceil(LayerFactor * log2 n) (always even);
	// the paper uses L = Θ(log n). Default 1.0, i.e. L = 2*ceil(log2 n).
	LayerFactor float64
	// JumpStartFraction is the fraction of layers assigned randomly
	// up-front (paper: 1/2). Exposed for the A2 ablation. Default 0.5.
	JumpStartFraction float64
	// AllowPartialValidity lets Pack accept a guess when at least half
	// of its classes are valid CDSs. The default (false) is the paper's
	// test: every class must be a CDS.
	AllowPartialValidity bool
}

func (o Options) normalize(n int) Options {
	if o.ClassFactor <= 0 {
		o.ClassFactor = 0.5
	}
	if o.LayerFactor <= 0 {
		o.LayerFactor = 1.0
	}
	if o.JumpStartFraction <= 0 || o.JumpStartFraction >= 1 {
		o.JumpStartFraction = 0.5
	}
	_ = n
	return o
}

func layersFor(n int, o Options) int {
	log2n := math.Log2(float64(n) + 2)
	l := int(math.Ceil(o.LayerFactor * log2n))
	if l < 2 {
		l = 2
	}
	return 2 * l // even, so L/2 is an integer layer count
}
