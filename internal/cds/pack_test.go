package cds

import (
	"math"
	"testing"

	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
)

// buildGraph constructs test graphs directly through graph.Builder, the
// same CSR path every generator uses, so these tests exercise no other
// construction route.
func buildGraph(n int, edges [][2]int) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}

func TestPackWithGuessValidatesInputs(t *testing.T) {
	g := graph.Complete(4)
	if _, err := PackWithGuess(g, 0, Options{Seed: 1}); err == nil {
		t.Fatal("guess 0 accepted")
	}
	if _, err := PackWithGuess(graph.NewBuilder(0).Graph(), 1, Options{Seed: 1}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestPackSingleClassIsWholeGraph(t *testing.T) {
	// Guess 1 => one class containing every vertex; the packing is a
	// single spanning (hence dominating) tree with weight 1.
	g := graph.Cycle(10)
	p, err := PackWithGuess(g, 1, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Classes != 1 || p.Stats.ValidClasses != 1 {
		t.Fatalf("classes=%d valid=%d, want 1/1", p.Stats.Classes, p.Stats.ValidClasses)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s := p.Size(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("Size = %f, want 1", s)
	}
}

func TestPackingOnKnownConnectivityFamilies(t *testing.T) {
	rng := ds.NewRand(2024)
	h8, err := graph.Harary(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		g    *graph.Graph
		k    int // true vertex connectivity (or strong lower bound)
	}{
		{"Hypercube6", graph.Hypercube(6), 6},
		{"Harary8_64", h8, 8},
		{"HamCycles4_96", graph.RandomHamCycles(96, 4, rng), 6},
		{"Complete24", graph.Complete(24), 23},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Pack(tc.g, Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(tc.g); err != nil {
				t.Fatal(err)
			}
			n := float64(tc.g.N())
			size := p.Size()
			if size <= 0 {
				t.Fatal("empty packing")
			}
			// Upper bound: packing size can never exceed k (every vertex
			// cut meets every dominating tree).
			if size > float64(tc.k)+1e-9 {
				t.Fatalf("packing size %.3f exceeds κ=%d", size, tc.k)
			}
			// Lower bound: Ω(k/log n) with a lenient constant.
			floor := float64(tc.k) / (8 * math.Log2(n+2))
			if size < floor {
				t.Fatalf("packing size %.3f below k/(8 log n) = %.3f", size, floor)
			}
			// Per-node membership is O(log n).
			if mt := p.MaxTreeCount(tc.g.N()); float64(mt) > 6*math.Log2(n+2) {
				t.Fatalf("a node is in %d trees, above 6 log n", mt)
			}
		})
	}
}

func TestFastMergerConvergence(t *testing.T) {
	// The Fast Merger Lemma predicts M_ell decays geometrically; verify
	// the trace is non-increasing and reaches 0 on a well-connected graph.
	g := graph.Hypercube(6)
	p, err := PackWithGuess(g, 6, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	trace := p.Stats.ExcessComponents
	if len(trace) == 0 {
		t.Fatal("no convergence trace")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1] {
			t.Fatalf("M_ell increased at layer %d: %v", i, trace)
		}
	}
	if last := trace[len(trace)-1]; last != 0 {
		t.Fatalf("excess components did not reach 0: %v", trace)
	}
	if p.Stats.ValidClasses != p.Stats.Classes {
		t.Fatalf("only %d/%d classes valid on Q6", p.Stats.ValidClasses, p.Stats.Classes)
	}
}

func TestPackingSizeWithinLogFactorOfKappa(t *testing.T) {
	// Corollary 1.7: packing size approximates κ within O(log n).
	rng := ds.NewRand(5)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"Q4", graph.Hypercube(4)},
		{"Gnp64", graph.Gnp(64, 0.25, rng)},
		{"Ham3_48", graph.RandomHamCycles(48, 3, rng)},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			if !graph.IsConnected(tc.g) {
				t.Skip("random graph disconnected")
			}
			kappa := flow.VertexConnectivity(tc.g)
			size, p, err := ApproxVertexConnectivity(tc.g, Options{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(tc.g); err != nil {
				t.Fatal(err)
			}
			if size > float64(kappa)+1e-9 {
				t.Fatalf("estimate %.3f exceeds κ=%d", size, kappa)
			}
			ratio := float64(kappa) / size
			logn := math.Log2(float64(tc.g.N()) + 2)
			if ratio > 10*logn {
				t.Fatalf("approximation ratio %.1f above 10 log n = %.1f", ratio, 10*logn)
			}
		})
	}
}

func TestTreeDiameterBound(t *testing.T) {
	// Theorem 1.1: tree diameters are O~(n/k). With n=64, k=6 the bound
	// n/k * polylog is loose; assert heights stay below n/2 as a sanity
	// shape check and report the realized max.
	g := graph.Hypercube(6)
	p, err := PackWithGuess(g, 6, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	h := p.MaxTreeHeight()
	if h <= 0 || h > g.N()/2 {
		t.Fatalf("max tree height %d outside (0, n/2]", h)
	}
}

func TestExtractDisjoint(t *testing.T) {
	g := graph.Complete(32)
	p, err := Pack(g, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	trees := ExtractDisjoint(g, p)
	if len(trees) == 0 {
		t.Fatal("no disjoint trees extracted from K32")
	}
	seen := ds.NewBitset(g.N())
	for ti, tree := range trees {
		if !tree.IsDominatingIn(g) {
			t.Fatalf("tree %d does not dominate", ti)
		}
		for _, v := range tree.Vertices() {
			if seen.Has(int(v)) {
				t.Fatalf("vertex %d appears in two disjoint trees", v)
			}
			seen.Set(int(v))
		}
	}
}

func TestPackDeterministicForSeed(t *testing.T) {
	g := graph.Hypercube(5)
	p1, err := Pack(g, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Pack(g, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Size() != p2.Size() || p1.Stats.ValidClasses != p2.Stats.ValidClasses {
		t.Fatalf("same seed diverged: size %f/%f valid %d/%d",
			p1.Size(), p2.Size(), p1.Stats.ValidClasses, p2.Stats.ValidClasses)
	}
}

func TestPackDisconnectedGraphFails(t *testing.T) {
	g := buildGraph(6, [][2]int{{0, 1}, {2, 3}, {4, 5}})
	if _, err := Pack(g, Options{Seed: 1}); err == nil {
		t.Fatal("disconnected graph produced a packing")
	}
}

func TestValidateCatchesOverload(t *testing.T) {
	g := graph.Complete(4)
	tr := graph.TreeFromBFS(g, 0)
	p := &Packing{Trees: []Tree{{Tree: tr, Weight: 0.8}, {Tree: tr, Weight: 0.8}}}
	if err := p.Validate(g); err == nil {
		t.Fatal("vertex load 1.6 accepted")
	}
	p = &Packing{Trees: []Tree{{Tree: tr, Weight: 1.5}}}
	if err := p.Validate(g); err == nil {
		t.Fatal("weight over 1 accepted")
	}
}

func TestAllowPartialValidity(t *testing.T) {
	g := graph.Hypercube(4)
	opts := Options{Seed: 3, AllowPartialValidity: true}
	p, err := Pack(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.ValidClasses*2 < p.Stats.Classes {
		t.Fatalf("partial pass accepted with %d/%d valid", p.Stats.ValidClasses, p.Stats.Classes)
	}
}
