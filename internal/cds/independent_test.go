package cds

import (
	"testing"

	"repro/internal/graph"
)

func TestIndependentTreesFromCompleteGraph(t *testing.T) {
	g := graph.Complete(32)
	p, err := Pack(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	disjoint := ExtractDisjoint(g, p)
	if len(disjoint) < 2 {
		t.Skipf("only %d disjoint trees extracted", len(disjoint))
	}
	trees, err := IndependentTrees(g, disjoint, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != len(disjoint) {
		t.Fatalf("got %d independent trees from %d disjoint trees", len(trees), len(disjoint))
	}
	if err := VerifyIndependent(g, trees, 0); err != nil {
		t.Fatal(err)
	}
}

func TestIndependentTreesRootVariants(t *testing.T) {
	g := graph.Complete(24)
	p, err := Pack(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	disjoint := ExtractDisjoint(g, p)
	if len(disjoint) < 2 {
		t.Skipf("only %d disjoint trees", len(disjoint))
	}
	for _, root := range []int{0, 7, 23} {
		trees, err := IndependentTrees(g, disjoint, root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if err := VerifyIndependent(g, trees, root); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestIndependentTreesValidation(t *testing.T) {
	g := graph.Complete(5)
	if _, err := IndependentTrees(g, nil, 9); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	// A non-dominating tree must be rejected.
	leaf, err := graph.NewTree(5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	gg := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if _, err := IndependentTrees(gg, []*graph.Tree{leaf}, 0); err == nil {
		t.Fatal("non-dominating tree accepted")
	}
}

func TestVerifyIndependentCatchesSharing(t *testing.T) {
	// Two identical spanning paths share all internal vertices.
	g := graph.Path(4)
	tr := graph.TreeFromBFS(g, 0)
	if err := VerifyIndependent(g, []*graph.Tree{tr, tr}, 0); err == nil {
		t.Fatal("shared internal vertices not caught")
	}
}

func TestReversePathToRoot(t *testing.T) {
	// Chain 3->2->1->0 (root 0); re-root at 3.
	parentOf := map[int]int{1: 0, 2: 1, 3: 2}
	reversePathToRoot(parentOf, 3)
	tr, err := graph.NewTree(4, 3, parentOf)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(0); p != 1 {
		t.Fatalf("parent of 0 = %d, want 1", p)
	}
	if p, _ := tr.Parent(2); p != 3 {
		t.Fatalf("parent of 2 = %d, want 3", p)
	}
}
