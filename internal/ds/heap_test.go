package ds

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexHeapSortedPop(t *testing.T) {
	h := NewIndexHeap(8)
	keys := []float64{5, 3, 8, 1, 9, 2, 7, 4}
	for i, k := range keys {
		h.Push(i, k)
	}
	prev := -1.0
	for h.Len() > 0 {
		item, key := h.PopMin()
		if key < prev {
			t.Fatalf("pop order violated: %f after %f", key, prev)
		}
		if keys[item] != key {
			t.Fatalf("item %d popped with key %f, want %f", item, key, keys[item])
		}
		prev = key
	}
}

func TestIndexHeapDecreaseKey(t *testing.T) {
	h := NewIndexHeap(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	item, key := h.PopMin()
	if item != 2 || key != 5 {
		t.Fatalf("PopMin = (%d,%f), want (2,5)", item, key)
	}
	// Increasing via DecreaseKey must be a no-op.
	h.DecreaseKey(0, 100)
	item, key = h.PopMin()
	if item != 0 || key != 10 {
		t.Fatalf("PopMin = (%d,%f), want (0,10)", item, key)
	}
}

func TestIndexHeapContains(t *testing.T) {
	h := NewIndexHeap(3)
	h.Push(1, 1.5)
	if !h.Contains(1) || h.Contains(0) || h.Contains(2) {
		t.Fatal("Contains bookkeeping wrong after Push")
	}
	h.PopMin()
	if h.Contains(1) {
		t.Fatal("Contains(1) = true after PopMin")
	}
}

// TestIndexHeapMatchesSort pops every element of a random key set and
// compares the order against sort.Float64s.
func TestIndexHeapMatchesSort(t *testing.T) {
	property := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 256 {
			raw = raw[:256]
		}
		h := NewIndexHeap(len(raw))
		for i, k := range raw {
			h.Push(i, k)
		}
		want := append([]float64(nil), raw...)
		sort.Float64s(want)
		for _, w := range want {
			_, key := h.PopMin()
			if key != w {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
