package ds

import (
	"testing"
	"testing/quick"
)

func TestUnionFindBasic(t *testing.T) {
	u := NewUnionFind(10)
	if got := u.Sets(); got != 10 {
		t.Fatalf("Sets() = %d, want 10", got)
	}
	if !u.Union(0, 1) {
		t.Fatal("Union(0,1) = false, want true")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat Union(1,0) = true, want false")
	}
	if !u.Same(0, 1) {
		t.Fatal("Same(0,1) = false after union")
	}
	if u.Same(0, 2) {
		t.Fatal("Same(0,2) = true without union")
	}
	if got := u.Sets(); got != 9 {
		t.Fatalf("Sets() = %d, want 9", got)
	}
	if got := u.SizeOf(1); got != 2 {
		t.Fatalf("SizeOf(1) = %d, want 2", got)
	}
}

func TestUnionFindChainMerge(t *testing.T) {
	const n = 1000
	u := NewUnionFind(n)
	for i := 0; i+1 < n; i++ {
		u.Union(i, i+1)
	}
	if got := u.Sets(); got != 1 {
		t.Fatalf("Sets() after chain = %d, want 1", got)
	}
	if got := u.SizeOf(0); got != n {
		t.Fatalf("SizeOf(0) = %d, want %d", got, n)
	}
	for i := 1; i < n; i++ {
		if !u.Same(0, i) {
			t.Fatalf("Same(0,%d) = false after chain", i)
		}
	}
}

func TestUnionFindReset(t *testing.T) {
	u := NewUnionFind(5)
	u.Union(0, 1)
	u.Union(2, 3)
	u.Reset()
	if got := u.Sets(); got != 5 {
		t.Fatalf("Sets() after Reset = %d, want 5", got)
	}
	if u.Same(0, 1) {
		t.Fatal("Same(0,1) = true after Reset")
	}
	if got := u.SizeOf(2); got != 1 {
		t.Fatalf("SizeOf(2) after Reset = %d, want 1", got)
	}
}

func TestUnionFindComponents(t *testing.T) {
	u := NewUnionFind(6)
	u.Union(0, 2)
	u.Union(2, 4)
	u.Union(1, 5)
	labels, count := u.Components()
	if count != 3 {
		t.Fatalf("component count = %d, want 3", count)
	}
	if labels[0] != labels[2] || labels[2] != labels[4] {
		t.Fatalf("labels of {0,2,4} differ: %v", labels)
	}
	if labels[1] != labels[5] {
		t.Fatalf("labels of {1,5} differ: %v", labels)
	}
	if labels[0] == labels[1] || labels[0] == labels[3] || labels[1] == labels[3] {
		t.Fatalf("distinct components share labels: %v", labels)
	}
}

// TestUnionFindMatchesNaive drives the structure with random union
// sequences and checks Same/Sets against a brute-force partition.
func TestUnionFindMatchesNaive(t *testing.T) {
	property := func(ops []uint16) bool {
		const n = 32
		u := NewUnionFind(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		relabel := func(from, to int) {
			for i := range naive {
				if naive[i] == from {
					naive[i] = to
				}
			}
		}
		for _, op := range ops {
			x, y := int(op)%n, int(op>>5)%n
			u.Union(x, y)
			if naive[x] != naive[y] {
				relabel(naive[x], naive[y])
			}
		}
		groups := map[int]bool{}
		for i := 0; i < n; i++ {
			groups[naive[i]] = true
			for j := i + 1; j < n; j++ {
				if u.Same(i, j) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		return u.Sets() == len(groups)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := NewRand(1)
	for i := 0; i < b.N; i++ {
		u := NewUnionFind(n)
		for j := 0; j < n; j++ {
			u.Union(rng.IntN(n), rng.IntN(n))
		}
	}
}
