package ds

// IndexHeap is a binary min-heap over item indices 0..n-1 keyed by
// float64 priorities, with DecreaseKey support. It is used by Prim's MST
// and by Dijkstra-style sweeps in the broadcast scheduler.
type IndexHeap struct {
	keys []float64
	heap []int32 // heap[i] = item at heap position i
	pos  []int32 // pos[item] = heap position, -1 if absent
}

// NewIndexHeap returns an empty heap over items 0..n-1.
func NewIndexHeap(n int) *IndexHeap {
	h := &IndexHeap{
		keys: make([]float64, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently in the heap.
func (h *IndexHeap) Len() int { return len(h.heap) }

// Contains reports whether item is currently in the heap.
func (h *IndexHeap) Contains(item int) bool { return h.pos[item] >= 0 }

// Key returns the current key of item; meaningful only if the item has
// been pushed at least once.
func (h *IndexHeap) Key(item int) float64 { return h.keys[item] }

// Push inserts item with the given key. The item must not be in the heap.
func (h *IndexHeap) Push(item int, key float64) {
	h.keys[item] = key
	h.pos[item] = int32(len(h.heap))
	h.heap = append(h.heap, int32(item))
	h.up(len(h.heap) - 1)
}

// DecreaseKey lowers item's key. It is a no-op if the new key is not
// smaller than the current one.
func (h *IndexHeap) DecreaseKey(item int, key float64) {
	if key >= h.keys[item] {
		return
	}
	h.keys[item] = key
	h.up(int(h.pos[item]))
}

// PopMin removes and returns the item with the smallest key.
func (h *IndexHeap) PopMin() (item int, key float64) {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return int(top), h.keys[top]
}

func (h *IndexHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[h.heap[parent]] <= h.keys[h.heap[i]] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.keys[h.heap[l]] < h.keys[h.heap[smallest]] {
			smallest = l
		}
		if r < n && h.keys[h.heap[r]] < h.keys[h.heap[smallest]] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *IndexHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}
