package ds

import (
	"testing"
	"testing/quick"
)

func TestBitsetSetClearHas(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Has(i) {
			t.Fatalf("Has(%d) = true on empty set", i)
		}
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("Has(%d) = false after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("Has(64) = true after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
}

func TestBitsetForEachOrder(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 64, 65, 100, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
}

func TestBitsetUnionIntersect(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	if got := a.IntersectCount(b); got != 1 {
		t.Fatalf("IntersectCount = %d, want 1", got)
	}
	a.Union(b)
	if got := a.Count(); got != 3 {
		t.Fatalf("Count after Union = %d, want 3", got)
	}
	for _, i := range []int{1, 50, 99} {
		if !a.Has(i) {
			t.Fatalf("Has(%d) = false after Union", i)
		}
	}
}

// TestBitsetMatchesMap checks the bitset against a map-based set over
// random operation sequences.
func TestBitsetMatchesMap(t *testing.T) {
	property := func(ops []uint16) bool {
		const n = 300
		b := NewBitset(n)
		m := map[int]bool{}
		for _, op := range ops {
			i := int(op) % n
			if op&0x8000 != 0 {
				b.Clear(i)
				delete(m, i)
			} else {
				b.Set(i)
				m[i] = true
			}
		}
		if b.Count() != len(m) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Has(i) != m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetReset(t *testing.T) {
	b := NewBitset(70)
	b.Set(0)
	b.Set(69)
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
}
