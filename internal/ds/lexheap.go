package ds

// LexHeap is a binary min-heap over item indices 0..n-1 keyed
// lexicographically by (key, tie): ties in the float64 key are broken by
// the int32 tie value. Prim's MST uses it with tie = edge id so that
// equal-weight graphs yield the same tree as Kruskal's documented
// edge-id tie-breaking (both then compute the unique MST of the
// infinitesimally perturbed weights w_e + δ·id_e).
type LexHeap struct {
	keys []float64
	ties []int32
	heap []int32 // heap[i] = item at heap position i
	pos  []int32 // pos[item] = heap position, -1 if absent
}

// NewLexHeap returns an empty heap over items 0..n-1.
func NewLexHeap(n int) *LexHeap {
	h := &LexHeap{
		keys: make([]float64, n),
		ties: make([]int32, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently in the heap.
func (h *LexHeap) Len() int { return len(h.heap) }

// Contains reports whether item is currently in the heap.
func (h *LexHeap) Contains(item int) bool { return h.pos[item] >= 0 }

// Key returns item's current (key, tie); meaningful only if the item has
// been pushed at least once.
func (h *LexHeap) Key(item int) (float64, int32) { return h.keys[item], h.ties[item] }

// less reports whether item a precedes item b in (key, tie) order.
func (h *LexHeap) less(a, b int32) bool {
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return h.ties[a] < h.ties[b]
}

// Push inserts item with the given (key, tie). The item must not be in
// the heap.
func (h *LexHeap) Push(item int, key float64, tie int32) {
	h.keys[item] = key
	h.ties[item] = tie
	h.pos[item] = int32(len(h.heap))
	h.heap = append(h.heap, int32(item))
	h.up(len(h.heap) - 1)
}

// DecreaseKey lowers item's (key, tie) and reports whether it did; it is
// a no-op when the new pair does not lexicographically precede the
// current one.
func (h *LexHeap) DecreaseKey(item int, key float64, tie int32) bool {
	if key > h.keys[item] || (key == h.keys[item] && tie >= h.ties[item]) {
		return false
	}
	h.keys[item] = key
	h.ties[item] = tie
	h.up(int(h.pos[item]))
	return true
}

// PopMin removes and returns the item with the lexicographically
// smallest (key, tie).
func (h *LexHeap) PopMin() (item int, key float64, tie int32) {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return int(top), h.keys[top], h.ties[top]
}

func (h *LexHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *LexHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.heap[l], h.heap[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.heap[r], h.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *LexHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}
