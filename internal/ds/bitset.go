package ds

import "math/bits"

// Bitset is a fixed-size set of small non-negative integers backed by
// 64-bit words. The zero value is an empty set of size zero; use
// NewBitset to size it.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset able to hold values 0..n-1.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the bitset (the n it was created with).
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Words exposes the backing 64-bit words (length ⌈Len()/64⌉) for
// word-parallel set algebra; callers must not resize it.
func (b *Bitset) Words() []uint64 { return b.words }

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset removes all elements.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ForEach calls fn for each element in increasing order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi<<6 + tz)
			w &= w - 1
		}
	}
}

// Union adds every element of other to b. Both bitsets must have the
// same capacity.
func (b *Bitset) Union(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// IntersectCount returns |b ∩ other| without materializing the result.
func (b *Bitset) IntersectCount(other *Bitset) int {
	c := 0
	for i := range b.words {
		c += bits.OnesCount64(b.words[i] & other.words[i])
	}
	return c
}
