package ds

// OrderedLoads maintains a permutation of the ids 0..m-1 sorted by
// (load, id) ascending under the update pattern of the spanning-tree
// packing's MWU loop: every iteration multiplies all loads by the same
// (1-β) — which preserves relative order — and then adds β to a sparse
// set of "bumped" ids (the chosen tree edges). Reorder folds a bumped
// set back into the maintained order with one O(m) merge instead of the
// O(m log m) full sort the loop would otherwise pay per iteration.
//
// The maintained permutation is exactly the one sort.Slice produces
// under the same (load, id) comparator, so a consumer that scans it
// (Kruskal's union-find pass) sees bit-identical edge order.
type OrderedLoads struct {
	order  []int32
	rest   []int32 // scratch: the non-bumped ids, in maintained order
	bumped []bool  // scratch mask, always false between calls
}

// NewOrderedLoads returns the identity order over ids 0..m-1, which is
// the (load, id)-sorted order of an all-equal load vector.
func NewOrderedLoads(m int) *OrderedLoads {
	o := &OrderedLoads{
		order:  make([]int32, m),
		rest:   make([]int32, 0, m),
		bumped: make([]bool, m),
	}
	for i := range o.order {
		o.order[i] = int32(i)
	}
	return o
}

// Order returns the maintained permutation, sorted by (load, id)
// ascending. The slice is owned by OrderedLoads; callers must not
// modify it, and it is invalidated by the next Reorder.
func (o *OrderedLoads) Order() []int32 { return o.order }

// MaxID returns the id with the maximum (load, id) — the last element
// of the order — in O(1).
func (o *OrderedLoads) MaxID() int32 { return o.order[len(o.order)-1] }

// Reorder restores (load, id) order after an order-preserving rescale
// of all loads followed by a bump of the given ids. bumpedIDs must
// itself be sorted by (load, id) under the new loads and contain no
// duplicates. loads holds the new (post-rescale, post-bump) values.
//
// A float subtlety: the rescale can round two distinct loads onto the
// same value, leaving a formerly load-ordered pair tied and therefore
// id-ordered the wrong way. The merge alone would preserve that stale
// relative order, so a final insertion pass repairs such runs; it is
// O(m) plus one swap per rounding collision, which keeps the whole
// update linear in practice.
func (o *OrderedLoads) Reorder(loads []float64, bumpedIDs []int32) {
	for _, id := range bumpedIDs {
		o.bumped[id] = true
	}
	o.rest = o.rest[:0]
	for _, id := range o.order {
		if !o.bumped[id] {
			o.rest = append(o.rest, id)
		}
	}
	for _, id := range bumpedIDs {
		o.bumped[id] = false
	}

	// Merge the two (load, id)-sorted sequences.
	out := o.order[:0]
	i, j := 0, 0
	for i < len(o.rest) && j < len(bumpedIDs) {
		a, b := o.rest[i], bumpedIDs[j]
		if loads[a] < loads[b] || (loads[a] == loads[b] && a < b) {
			out = append(out, a)
			i++
		} else {
			out = append(out, b)
			j++
		}
	}
	out = append(out, o.rest[i:]...)
	out = append(out, bumpedIDs[j:]...)
	o.order = out

	// Repair rounding-collision ties: insertion sort is O(m) on the
	// already-sorted result and touches only genuinely inverted pairs.
	for i := 1; i < len(o.order); i++ {
		for j := i; j > 0; j-- {
			a, b := o.order[j-1], o.order[j]
			if loads[a] < loads[b] || (loads[a] == loads[b] && a < b) {
				break
			}
			o.order[j-1], o.order[j] = b, a
		}
	}
}
