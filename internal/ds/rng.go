package ds

import "math/rand/v2"

// NewRand returns a deterministic PCG-backed random source for the given
// seed. All randomized algorithms in this repository draw from streams
// created here so that every experiment is reproducible from its seed.
func NewRand(seed uint64) *rand.Rand {
	pcg := rand.NewPCG(0, 0)
	Reseed(pcg, seed)
	return rand.New(pcg)
}

// Reseed reseeds pcg in place to the state NewRand(seed) starts from, so
// long-lived consumers (the broadcast Scheduler handle) replay the exact
// per-seed stream without allocating a new generator.
func Reseed(pcg *rand.PCG, seed uint64) {
	pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// SplitSeed derives the PCG seed pair SplitRand would use for a stream,
// so long-lived consumers (the simulator's engine reuse path) can
// reseed a PCG in place instead of allocating a new generator.
func SplitSeed(seed uint64, stream uint64) (uint64, uint64) {
	// SplitMix64-style avalanche of the pair keeps streams decorrelated.
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z, z ^ 0xda942042e4dd58b5
}

// SplitRand derives an independent stream from a parent seed and a
// stream index. Distributed nodes use SplitRand(seed, nodeID) so that
// per-node randomness is independent of scheduling order, matching the
// paper's model where each node has private coins.
func SplitRand(seed uint64, stream uint64) *rand.Rand {
	s1, s2 := SplitSeed(seed, stream)
	return rand.New(rand.NewPCG(s1, s2))
}

// Perm fills dst with a uniformly random permutation of 0..len(dst)-1
// drawn from rng.
func Perm(rng *rand.Rand, dst []int) {
	for i := range dst {
		dst[i] = i
	}
	rng.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}
