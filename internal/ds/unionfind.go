// Package ds provides the small data structures shared by the
// connectivity-decomposition substrates: union-find, bitsets, a
// lexicographic indexed heap, the load-order maintenance helper behind
// the spanning-tree MWU engine, and deterministic random-number streams.
package ds

// UnionFind is a disjoint-set forest with union by rank and path halving.
// It tracks the number of disjoint sets and the size of each set, which
// the dominating-tree packer uses to count excess components per class
// (the M_ell quantity of the paper's Section 3.1).
type UnionFind struct {
	parent []int32
	rank   []int8
	size   []int32
	sets   int
}

// NewUnionFind returns a union-find over elements 0..n-1, each in its own
// singleton set.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	p := int32(x)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]] // path halving
		p = u.parent[p]
	}
	return int(p)
}

// Union merges the sets containing x and y. It reports whether a merge
// happened (false when x and y were already in the same set).
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	u.size[rx] += u.size[ry]
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// SizeOf returns the size of the set containing x.
func (u *UnionFind) SizeOf(x int) int { return int(u.size[u.Find(x)]) }

// Reset returns every element to its own singleton set, reusing storage.
func (u *UnionFind) Reset() {
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.rank[i] = 0
		u.size[i] = 1
	}
	u.sets = len(u.parent)
}

// Components returns, for each element, a dense component index in
// [0, Sets()), numbering components in order of first appearance.
func (u *UnionFind) Components() (labels []int32, count int) {
	labels = make([]int32, len(u.parent))
	index := make(map[int]int32, u.sets)
	for i := range u.parent {
		r := u.Find(i)
		id, ok := index[r]
		if !ok {
			id = int32(len(index))
			index[r] = id
		}
		labels[i] = id
	}
	return labels, len(index)
}
