package ds

import (
	"sort"
	"testing"
)

// refOrder is the specification: ids sorted by (load, id) ascending via
// a full comparison sort, exactly what the MWU loop used to pay per
// iteration.
func refOrder(loads []float64) []int32 {
	order := make([]int32, len(loads))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := loads[order[a]], loads[order[b]]
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	return order
}

func assertOrderEqual(t *testing.T, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("order length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (got %v, want %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestOrderedLoadsMatchesFullSort(t *testing.T) {
	const m = 64
	loads := make([]float64, m)
	o := NewOrderedLoads(m)
	assertOrderEqual(t, o.Order(), refOrder(loads))

	// Drive the exact MWU update pattern for many iterations: rescale
	// everything by (1-beta), bump a deterministic sparse subset by beta,
	// and compare against a from-scratch sort each time.
	rng := NewRand(7)
	const beta = 0.03
	for iter := 0; iter < 200; iter++ {
		for e := range loads {
			loads[e] *= 1 - beta
		}
		nBump := 1 + rng.IntN(m/3)
		seen := make(map[int32]bool, nBump)
		var bumped []int32
		for len(bumped) < nBump {
			id := int32(rng.IntN(m))
			if !seen[id] {
				seen[id] = true
				bumped = append(bumped, id)
			}
		}
		for _, id := range bumped {
			loads[id] += beta
		}
		sort.Slice(bumped, func(a, b int) bool {
			la, lb := loads[bumped[a]], loads[bumped[b]]
			if la != lb {
				return la < lb
			}
			return bumped[a] < bumped[b]
		})
		o.Reorder(loads, bumped)
		assertOrderEqual(t, o.Order(), refOrder(loads))
		if want := refOrder(loads)[m-1]; o.MaxID() != want {
			t.Fatalf("iter %d: MaxID = %d, want %d", iter, o.MaxID(), want)
		}
	}
}

func TestOrderedLoadsTiesBreakByID(t *testing.T) {
	// All-equal loads: order must be the identity, and bumping a subset
	// to a shared higher value must leave both tied groups id-sorted.
	const m = 10
	loads := make([]float64, m)
	o := NewOrderedLoads(m)
	bumped := []int32{1, 4, 7}
	for _, id := range bumped {
		loads[id] = 0.5
	}
	o.Reorder(loads, bumped)
	assertOrderEqual(t, o.Order(), []int32{0, 2, 3, 5, 6, 8, 9, 1, 4, 7})
}

func TestOrderedLoadsRepairsRoundingCollisions(t *testing.T) {
	// Simulate the rescale collapsing two distinct loads onto one value:
	// id 5 held a larger load than id 2 (so it sat after id 2), but the
	// new loads are equal — Reorder must emit id order within the tie
	// even though neither id was bumped.
	const m = 6
	loads := []float64{0, 0, 0.25, 0, 0, 0.5}
	o := NewOrderedLoads(m)
	o.Reorder(loads, nil)
	assertOrderEqual(t, o.Order(), refOrder(loads)) // {0,1,3,4,2,5}

	loads[2], loads[5] = 0.25, 0.25 // the collapse
	o.Reorder(loads, nil)
	assertOrderEqual(t, o.Order(), refOrder(loads))
}

func TestOrderedLoadsAllBumped(t *testing.T) {
	// Degenerate spanning case (m = n-1): every edge is in every tree.
	const m = 5
	loads := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	o := NewOrderedLoads(m)
	o.Reorder(loads, []int32{0, 1, 2, 3, 4})
	assertOrderEqual(t, o.Order(), []int32{0, 1, 2, 3, 4})
}

func TestLexHeapOrdering(t *testing.T) {
	h := NewLexHeap(8)
	h.Push(0, 2.0, 5)
	h.Push(1, 2.0, 3)
	h.Push(2, 1.0, 9)
	h.Push(3, 2.0, 4)
	if !h.Contains(1) || h.Contains(4) {
		t.Fatal("Contains wrong")
	}
	// Lower tie at equal key must win DecreaseKey; higher must not.
	if h.DecreaseKey(0, 2.0, 7) {
		t.Fatal("DecreaseKey accepted a larger tie")
	}
	if !h.DecreaseKey(0, 2.0, 1) {
		t.Fatal("DecreaseKey rejected a smaller tie at equal key")
	}
	wantItems := []int{2, 0, 1, 3}
	wantTies := []int32{9, 1, 3, 4}
	for i, want := range wantItems {
		item, _, tie := h.PopMin()
		if item != want || tie != wantTies[i] {
			t.Fatalf("pop %d: got item %d tie %d, want item %d tie %d", i, item, tie, want, wantTies[i])
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty: %d", h.Len())
	}
}

func TestLexHeapEqualKeysPopByTie(t *testing.T) {
	h := NewLexHeap(16)
	for i := 15; i >= 0; i-- {
		h.Push(i, 1.0, int32(i))
	}
	for want := 0; want < 16; want++ {
		item, key, tie := h.PopMin()
		if item != want || key != 1.0 || int(tie) != want {
			t.Fatalf("pop: got (%d,%v,%d), want item %d", item, key, tie, want)
		}
	}
}
