package ds

import "testing"

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("two streams with the same seed diverged")
		}
	}
}

func TestSplitRandStreamsDiffer(t *testing.T) {
	a, b := SplitRand(7, 0), SplitRand(7, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 agree on %d/64 draws; expected near-independence", same)
	}
}

func TestSplitRandReproducible(t *testing.T) {
	a, b := SplitRand(7, 3), SplitRand(7, 3)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitRand with identical (seed,stream) diverged")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRand(9)
	p := make([]int, 257)
	Perm(rng, p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("Perm produced invalid permutation at value %d", v)
		}
		seen[v] = true
	}
}
