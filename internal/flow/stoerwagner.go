package flow

import "repro/internal/graph"

// StoerWagner computes the global minimum cut weight of g (with unit
// edge weights this is the edge connectivity λ). It is an independent
// O(n^3) algorithmic path used to cross-validate the flow-based
// EdgeConnectivity in tests. Returns 0 for graphs with fewer than two
// vertices or disconnected graphs.
func StoerWagner(g *graph.Graph) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	// Weighted adjacency matrix over supernodes; merged[v] marks
	// vertices already contracted away.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, e := range g.Edges() {
		w[e.U][e.V]++
		w[e.V][e.U]++
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := int64(1) << 60
	weight := make([]int64, n)
	inA := make([]bool, n)
	for len(active) > 1 {
		// Minimum cut phase: maximum adjacency order over the active
		// supernodes.
		for _, v := range active {
			weight[v] = 0
			inA[v] = false
		}
		prev, last := -1, -1
		for range active {
			sel := -1
			for _, v := range active {
				if !inA[v] && (sel < 0 || weight[v] > weight[sel]) {
					sel = v
				}
			}
			inA[sel] = true
			prev, last = last, sel
			for _, v := range active {
				if !inA[v] {
					weight[v] += w[sel][v]
				}
			}
		}
		// Cut-of-the-phase: last supernode vs. the rest.
		if weight[last] < best {
			best = weight[last]
		}
		// Merge last into prev.
		for _, v := range active {
			if v != prev && v != last {
				w[prev][v] += w[last][v]
				w[v][prev] = w[prev][v]
			}
		}
		dst := active[:0]
		for _, v := range active {
			if v != last {
				dst = append(dst, v)
			}
		}
		active = dst
	}
	return int(best)
}
