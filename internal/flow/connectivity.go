package flow

import (
	"fmt"

	"repro/internal/graph"
)

// LocalEdgeConnectivity returns λ(s,t): the maximum number of
// edge-disjoint s-t paths in g.
func LocalEdgeConnectivity(g *graph.Graph, s, t int) int {
	return localEdgeConnectivityAtMost(g, s, t, int(unbounded))
}

func localEdgeConnectivityAtMost(g *graph.Graph, s, t, limit int) int {
	f := NewNetwork(g.N())
	for _, e := range g.Edges() {
		f.AddEdge(int(e.U), int(e.V))
	}
	return f.MaxFlowAtMost(s, t, limit)
}

// EdgeConnectivity returns the exact global edge connectivity λ(G) by
// fixing vertex 0 and taking the minimum of λ(0,t) over all other t
// (every global minimum cut separates 0 from some t). It returns 0 for
// disconnected or single-vertex graphs.
func EdgeConnectivity(g *graph.Graph) int {
	if g.N() <= 1 {
		return 0
	}
	best := g.Degree(0)
	for t := 1; t < g.N() && best > 0; t++ {
		if c := localEdgeConnectivityAtMost(g, 0, t, best); c < best {
			best = c
		}
	}
	return best
}

// LocalVertexConnectivity returns κ(s,t): the maximum number of
// internally vertex-disjoint s-t paths, for non-adjacent s != t. It
// returns an error for adjacent or equal endpoints, where κ(s,t) is
// undefined in Menger form.
func LocalVertexConnectivity(g *graph.Graph, s, t int) (int, error) {
	if s == t {
		return 0, fmt.Errorf("flow: κ(s,t) undefined for s == t")
	}
	if g.HasEdge(s, t) {
		return 0, fmt.Errorf("flow: κ(%d,%d) undefined for adjacent endpoints", s, t)
	}
	return localVertexConnectivityAtMost(g, s, t, int(unbounded)), nil
}

// localVertexConnectivityAtMost computes min(κ(s,t), limit) via the
// standard vertex-splitting reduction: v becomes v_in -> v_out with
// capacity 1 (unbounded for s and t), and each undirected edge {u,v}
// becomes u_out -> v_in and v_out -> u_in with unbounded capacity.
func localVertexConnectivityAtMost(g *graph.Graph, s, t, limit int) int {
	n := g.N()
	inOf := func(v int) int { return 2 * v }
	outOf := func(v int) int { return 2*v + 1 }
	f := NewNetwork(2 * n)
	for v := 0; v < n; v++ {
		c := int32(1)
		if v == s || v == t {
			c = unbounded
		}
		f.AddArc(inOf(v), outOf(v), c)
	}
	for _, e := range g.Edges() {
		u, v := int(e.U), int(e.V)
		f.AddArc(outOf(u), inOf(v), unbounded)
		f.AddArc(outOf(v), inOf(u), unbounded)
	}
	return f.MaxFlowAtMost(outOf(s), inOf(t), limit)
}

// VertexConnectivity returns the exact vertex connectivity κ(G) using
// Even's reduction: fix a minimum-degree vertex x; then
//
//	κ(G) = min( κ(x,t) over t non-adjacent to x,
//	            κ(u,v) over non-adjacent pairs u,v ∈ N(x) ),
//
// or n-1 when the graph is complete. Correctness: a minimum cut S either
// misses x (then the far side is non-adjacent to x) or contains x (then
// x has neighbors on both sides, which are non-adjacent to each other).
// It returns 0 for disconnected graphs.
func VertexConnectivity(g *graph.Graph) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	if !graph.IsConnected(g) {
		return 0
	}
	x := 0
	for v := 1; v < n; v++ {
		if g.Degree(v) < g.Degree(x) {
			x = v
		}
	}
	best := g.Degree(x) // κ <= δ
	sawNonAdjacent := false
	for t := 0; t < n && best > 0; t++ {
		if t == x || g.HasEdge(x, t) {
			continue
		}
		sawNonAdjacent = true
		if c := localVertexConnectivityAtMost(g, x, t, best); c < best {
			best = c
		}
	}
	nbrs := g.Neighbors(x)
	for i := 0; i < len(nbrs) && best > 0; i++ {
		for j := i + 1; j < len(nbrs) && best > 0; j++ {
			u, v := int(nbrs[i]), int(nbrs[j])
			if g.HasEdge(u, v) {
				continue
			}
			sawNonAdjacent = true
			if c := localVertexConnectivityAtMost(g, u, v, best); c < best {
				best = c
			}
		}
	}
	if !sawNonAdjacent {
		// No non-adjacent pair seen from x. If the whole graph is
		// complete κ = n-1; otherwise fall back to scanning all pairs
		// (x's closed neighborhood was a clique but the graph is not).
		complete := g.M() == n*(n-1)/2
		if complete {
			return n - 1
		}
		for u := 0; u < n && best > 0; u++ {
			for v := u + 1; v < n && best > 0; v++ {
				if g.HasEdge(u, v) {
					continue
				}
				if c := localVertexConnectivityAtMost(g, u, v, best); c < best {
					best = c
				}
			}
		}
	}
	return best
}
