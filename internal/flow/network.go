// Package flow implements unit-capacity max-flow (Dinic) and the exact
// vertex- and edge-connectivity algorithms used as ground-truth baselines
// for the paper's approximation claims (Corollary 1.7) and as validators
// for the generators' advertised connectivity.
package flow

// Network is a directed flow network with integer capacities stored as
// residual arc pairs: arc i and arc i^1 are each other's residuals.
type Network struct {
	n     int
	first []int32 // first[v] = index of v's first arc, -1 if none
	next  []int32 // next arc in v's list
	to    []int32
	cap   []int32

	// scratch for Dinic
	level []int32
	iter  []int32
	queue []int32
}

// NewNetwork returns an empty network on n vertices.
func NewNetwork(n int) *Network {
	f := &Network{n: n, first: make([]int32, n)}
	for i := range f.first {
		f.first[i] = -1
	}
	return f
}

// N returns the number of vertices.
func (f *Network) N() int { return f.n }

// AddArc adds a directed arc u->v with the given capacity and its
// zero-capacity residual twin. It returns the arc index.
func (f *Network) AddArc(u, v int, capacity int32) int {
	id := len(f.to)
	f.to = append(f.to, int32(v), int32(u))
	f.cap = append(f.cap, capacity, 0)
	f.next = append(f.next, f.first[u], f.first[v])
	f.first[u] = int32(id)
	f.first[v] = int32(id + 1)
	return id
}

// AddEdge adds an undirected unit edge as a symmetric pair of arcs with
// capacity 1 each, the standard encoding for edge-connectivity flows.
func (f *Network) AddEdge(u, v int) {
	f.AddArc(u, v, 1)
	f.AddArc(v, u, 1)
}

const unbounded = int32(1) << 30

// MaxFlow computes the s-t max flow with Dinic's algorithm.
func (f *Network) MaxFlow(s, t int) int {
	return f.MaxFlowAtMost(s, t, int(unbounded))
}

// MaxFlowAtMost computes min(maxflow(s,t), limit), stopping early once
// limit is reached. Connectivity searches use the early exit to avoid
// paying for flows far above the current best cut.
func (f *Network) MaxFlowAtMost(s, t, limit int) int {
	if s == t {
		return limit
	}
	total := 0
	for total < limit && f.bfs(s, t) {
		if f.iter == nil {
			f.iter = make([]int32, f.n)
		}
		copy(f.iter, f.first)
		for total < limit {
			pushed := f.dfs(s, t, unbounded)
			if pushed == 0 {
				break
			}
			total += int(pushed)
		}
	}
	if total > limit {
		total = limit
	}
	return total
}

func (f *Network) bfs(s, t int) bool {
	if f.level == nil {
		f.level = make([]int32, f.n)
		f.queue = make([]int32, 0, f.n)
	}
	for i := range f.level {
		f.level[i] = -1
	}
	f.level[s] = 0
	f.queue = f.queue[:0]
	f.queue = append(f.queue, int32(s))
	for head := 0; head < len(f.queue); head++ {
		u := f.queue[head]
		for a := f.first[u]; a >= 0; a = f.next[a] {
			v := f.to[a]
			if f.cap[a] > 0 && f.level[v] < 0 {
				f.level[v] = f.level[u] + 1
				f.queue = append(f.queue, v)
			}
		}
	}
	return f.level[t] >= 0
}

func (f *Network) dfs(u, t int, budget int32) int32 {
	if u == t {
		return budget
	}
	for ; f.iter[u] >= 0; f.iter[u] = f.next[f.iter[u]] {
		a := f.iter[u]
		v := f.to[a]
		if f.cap[a] <= 0 || f.level[v] != f.level[u]+1 {
			continue
		}
		send := budget
		if f.cap[a] < send {
			send = f.cap[a]
		}
		pushed := f.dfs(int(v), t, send)
		if pushed > 0 {
			f.cap[a] -= pushed
			f.cap[a^1] += pushed
			return pushed
		}
	}
	return 0
}

// MinCutSource returns the set of vertices reachable from s in the
// residual graph after a MaxFlow call — the source side of a minimum
// cut.
func (f *Network) MinCutSource(s int) []bool {
	side := make([]bool, f.n)
	queue := []int32{int32(s)}
	side[s] = true
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for a := f.first[u]; a >= 0; a = f.next[a] {
			v := f.to[a]
			if f.cap[a] > 0 && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}
