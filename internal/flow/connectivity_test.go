package flow

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/graph"
)

func TestMaxFlowTiny(t *testing.T) {
	// s=0 -> {1,2} -> t=3, all unit arcs: flow 2.
	f := NewNetwork(4)
	f.AddArc(0, 1, 1)
	f.AddArc(0, 2, 1)
	f.AddArc(1, 3, 1)
	f.AddArc(2, 3, 1)
	if got := f.MaxFlow(0, 3); got != 2 {
		t.Fatalf("MaxFlow = %d, want 2", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// Wide fan into a single middle vertex.
	f := NewNetwork(6)
	for i := 1; i <= 3; i++ {
		f.AddArc(0, i, 5)
		f.AddArc(i, 4, 5)
	}
	f.AddArc(4, 5, 2)
	if got := f.MaxFlow(0, 5); got != 2 {
		t.Fatalf("MaxFlow = %d, want 2", got)
	}
}

func TestMaxFlowAtMostEarlyExit(t *testing.T) {
	f := NewNetwork(2)
	for i := 0; i < 10; i++ {
		f.AddArc(0, 1, 1)
	}
	if got := f.MaxFlowAtMost(0, 1, 3); got != 3 {
		t.Fatalf("MaxFlowAtMost = %d, want 3", got)
	}
}

func TestMinCutSource(t *testing.T) {
	f := NewNetwork(4)
	f.AddArc(0, 1, 3)
	f.AddArc(1, 2, 1) // bottleneck
	f.AddArc(2, 3, 3)
	if got := f.MaxFlow(0, 3); got != 1 {
		t.Fatalf("MaxFlow = %d, want 1", got)
	}
	side := f.MinCutSource(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Fatalf("cut side = %v, want {0,1}", side)
	}
}

func TestEdgeConnectivityKnown(t *testing.T) {
	chain, err := graph.CliqueChain(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P5", graph.Path(5), 1},
		{"C8", graph.Cycle(8), 2},
		{"K6", graph.Complete(6), 5},
		{"Q3", graph.Hypercube(3), 3},
		{"Q4", graph.Hypercube(4), 4},
		{"Torus4x4", graph.Torus(4, 4), 4},
		{"CliqueChain-bridge2", chain, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := EdgeConnectivity(tc.g); got != tc.want {
				t.Fatalf("EdgeConnectivity = %d, want %d", got, tc.want)
			}
			if got := StoerWagner(tc.g); got != tc.want {
				t.Fatalf("StoerWagner = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestVertexConnectivityKnown(t *testing.T) {
	h47, err := graph.Harary(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	h511, err := graph.Harary(5, 11)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := graph.CliqueChain(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P5", graph.Path(5), 1},
		{"C8", graph.Cycle(8), 2},
		{"K6", graph.Complete(6), 5},
		{"Q3", graph.Hypercube(3), 3},
		{"Q4", graph.Hypercube(4), 4},
		{"Harary4_9", h47, 4},
		{"Harary5_11", h511, 5},
		{"CliqueChain-bridge2", chain, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := VertexConnectivity(tc.g); got != tc.want {
				t.Fatalf("VertexConnectivity = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestVertexConnectivityDisconnectedAndTiny(t *testing.T) {
	if got := VertexConnectivity(graph.FromEdgeList(4, [][2]int{{0, 1}})); got != 0 {
		t.Fatalf("disconnected κ = %d, want 0", got)
	}
	if got := VertexConnectivity(graph.NewBuilder(1).Graph()); got != 0 {
		t.Fatalf("single vertex κ = %d, want 0", got)
	}
	if got := EdgeConnectivity(graph.NewBuilder(1).Graph()); got != 0 {
		t.Fatalf("single vertex λ = %d, want 0", got)
	}
}

func TestLocalVertexConnectivityErrors(t *testing.T) {
	g := graph.Complete(4)
	if _, err := LocalVertexConnectivity(g, 1, 1); err == nil {
		t.Fatal("s == t accepted")
	}
	if _, err := LocalVertexConnectivity(g, 0, 1); err == nil {
		t.Fatal("adjacent pair accepted")
	}
}

func TestLocalVertexConnectivityPath(t *testing.T) {
	g := graph.Path(5)
	got, err := LocalVertexConnectivity(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("κ(0,4) on P5 = %d, want 1", got)
	}
}

// TestWhitneyInequality checks κ <= λ <= δ on random graphs, plus
// agreement between the two independent λ implementations.
func TestWhitneyInequality(t *testing.T) {
	rng := ds.NewRand(23)
	for trial := 0; trial < 8; trial++ {
		g := graph.Gnp(24, 0.3, rng)
		if !graph.IsConnected(g) {
			continue
		}
		kappa := VertexConnectivity(g)
		lambda := EdgeConnectivity(g)
		sw := StoerWagner(g)
		delta := g.MinDegree()
		if lambda != sw {
			t.Fatalf("trial %d: flow λ=%d vs Stoer-Wagner %d", trial, lambda, sw)
		}
		if kappa > lambda || lambda > delta {
			t.Fatalf("trial %d: Whitney violated: κ=%d λ=%d δ=%d", trial, kappa, lambda, delta)
		}
	}
}

// TestMengerPathsMatchCuts verifies max-flow equals the brute-force
// minimum vertex cut on small graphs (LP duality / Menger).
func TestMengerPathsMatchCuts(t *testing.T) {
	rng := ds.NewRand(31)
	for trial := 0; trial < 6; trial++ {
		g := graph.Gnp(10, 0.35, rng)
		if !graph.IsConnected(g) {
			continue
		}
		// Find a non-adjacent pair.
		s, tt := -1, -1
		for u := 0; u < g.N() && s < 0; u++ {
			for v := u + 1; v < g.N(); v++ {
				if !g.HasEdge(u, v) {
					s, tt = u, v
					break
				}
			}
		}
		if s < 0 {
			continue // complete
		}
		got, err := LocalVertexConnectivity(g, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceVertexCut(g, s, tt)
		if got != want {
			t.Fatalf("trial %d: κ(%d,%d) = %d, brute force %d", trial, s, tt, got, want)
		}
	}
}

// bruteForceVertexCut enumerates vertex subsets (excluding s,t) in
// increasing size and returns the size of the smallest set whose removal
// separates s from t.
func bruteForceVertexCut(g *graph.Graph, s, t int) int {
	n := g.N()
	candidates := make([]int, 0, n-2)
	for v := 0; v < n; v++ {
		if v != s && v != t {
			candidates = append(candidates, v)
		}
	}
	for size := 0; size <= len(candidates); size++ {
		removed := make([]bool, n)
		var try func(start, left int) bool
		try = func(start, left int) bool {
			if left == 0 {
				dist := graph.BFSRestricted(g, s, func(v int) bool { return !removed[v] })
				return dist[t] < 0
			}
			for i := start; i <= len(candidates)-left; i++ {
				removed[candidates[i]] = true
				if try(i+1, left-1) {
					return true
				}
				removed[candidates[i]] = false
			}
			return false
		}
		if try(0, size) {
			return size
		}
	}
	return len(candidates)
}

// TestSparseCertificatePreservesLambda cross-checks the Nagamochi–
// Ibaraki property: λ(SparseCertificate(g,k)) = min(λ(g), k).
func TestSparseCertificatePreservesLambda(t *testing.T) {
	rng := ds.NewRand(41)
	cases := []*graph.Graph{
		graph.Complete(12),                // λ=11
		graph.Hypercube(4),                // λ=4
		graph.RandomHamCycles(20, 3, rng), // λ≈6
	}
	for gi, g := range cases {
		lambda := EdgeConnectivity(g)
		for _, k := range []int{1, 2, lambda, lambda + 3} {
			cert := graph.SparseCertificate(g, k)
			got := EdgeConnectivity(cert)
			want := lambda
			if k < want {
				want = k
			}
			if got != want {
				t.Fatalf("graph %d k=%d: λ(cert)=%d, want %d", gi, k, got, want)
			}
		}
	}
}
