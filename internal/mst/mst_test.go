package mst

import (
	"math"
	"testing"

	"repro/internal/ds"
	"repro/internal/graph"
)

func unitWeight(int) float64 { return 1 }

func TestKruskalSpanningTreeSize(t *testing.T) {
	g := graph.Hypercube(4)
	chosen := Kruskal(g, unitWeight)
	if len(chosen) != g.N()-1 {
		t.Fatalf("MST has %d edges, want %d", len(chosen), g.N()-1)
	}
	uf := ds.NewUnionFind(g.N())
	for _, id := range chosen {
		u, v := g.Endpoints(id)
		if !uf.Union(u, v) {
			t.Fatalf("MST edge %d creates a cycle", id)
		}
	}
	if uf.Sets() != 1 {
		t.Fatal("MST does not span")
	}
}

func TestKruskalRespectsWeights(t *testing.T) {
	// Triangle with one heavy edge: the heavy edge must be excluded.
	g := graph.FromEdgeList(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	heavy, ok := g.EdgeID(0, 2)
	if !ok {
		t.Fatal("edge (0,2) missing")
	}
	w := func(id int) float64 {
		if id == heavy {
			return 10
		}
		return 1
	}
	chosen := Kruskal(g, w)
	for _, id := range chosen {
		if id == heavy {
			t.Fatal("heavy edge selected")
		}
	}
}

func TestKruskalForestOnDisconnected(t *testing.T) {
	g := graph.FromEdgeList(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	chosen := Kruskal(g, unitWeight)
	if len(chosen) != 3 {
		t.Fatalf("forest has %d edges, want 3", len(chosen))
	}
}

func TestPrimMatchesKruskalWeight(t *testing.T) {
	rng := ds.NewRand(41)
	for trial := 0; trial < 10; trial++ {
		g := graph.Gnp(30, 0.2, rng)
		if !graph.IsConnected(g) {
			continue
		}
		weights := make([]float64, g.M())
		for i := range weights {
			weights[i] = rng.Float64()
		}
		w := func(id int) float64 { return weights[id] }
		kr := TotalWeight(Kruskal(g, w), w)
		tree := Prim(g, 0, w)
		var pr float64
		tree.ForEachEdge(func(child, parent int) {
			id, ok := g.EdgeID(child, parent)
			if !ok {
				t.Fatalf("Prim edge (%d,%d) not in graph", child, parent)
			}
			pr += w(id)
		})
		if math.Abs(kr-pr) > 1e-9 {
			t.Fatalf("trial %d: Kruskal %.9f vs Prim %.9f", trial, kr, pr)
		}
		if !tree.IsSpanning(g) {
			t.Fatalf("trial %d: Prim not spanning", trial)
		}
	}
}

// TestPrimKruskalAgreeOnEqualWeights feeds both oracles all-equal
// weights on several families: with the edge-id tie-break on each side,
// both compute the unique MST of the perturbed weights w_e + δ·id_e, so
// the trees must be identical edge sets — not merely equal in weight.
func TestPrimKruskalAgreeOnEqualWeights(t *testing.T) {
	rng := ds.NewRand(97)
	cases := []*graph.Graph{
		graph.Hypercube(4),
		graph.Complete(9),
		graph.Torus(3, 4),
		graph.RandomHamCycles(20, 2, rng),
	}
	for ci, g := range cases {
		kr := Kruskal(g, unitWeight)
		inKruskal := make(map[int]bool, len(kr))
		for _, id := range kr {
			inKruskal[id] = true
		}
		tree := Prim(g, 0, unitWeight)
		count := 0
		tree.ForEachEdge(func(child, parent int) {
			id, ok := g.EdgeID(child, parent)
			if !ok {
				t.Fatalf("case %d: Prim edge (%d,%d) not in graph", ci, child, parent)
			}
			if !inKruskal[id] {
				t.Fatalf("case %d: Prim edge %d not chosen by Kruskal", ci, id)
			}
			count++
		})
		if count != len(kr) {
			t.Fatalf("case %d: Prim tree has %d edges, Kruskal %d", ci, count, len(kr))
		}
	}
}

// TestPrimTieBreakPrefersSmallerEdgeID pins the tie-break directly: on
// an all-equal-weight multigraph-free diamond, vertex 3 is reachable
// through edge (1,3) or (2,3); the smaller edge id must win.
func TestPrimTieBreakPrefersSmallerEdgeID(t *testing.T) {
	// FromEdgeList assigns ids in sorted (u,v) order: (0,1)=0, (0,2)=1,
	// (1,3)=2, (2,3)=3.
	g := graph.FromEdgeList(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	tree := Prim(g, 0, unitWeight)
	p, ok := tree.Parent(3)
	if !ok || p != 1 {
		t.Fatalf("vertex 3's parent = %d (ok=%v), want 1 via edge id 2", p, ok)
	}
}

func TestPrimSingleVertex(t *testing.T) {
	g := graph.NewBuilder(1).Graph()
	tree := Prim(g, 0, unitWeight)
	if tree.Size() != 1 || tree.Root() != 0 {
		t.Fatalf("single-vertex tree wrong: size=%d root=%d", tree.Size(), tree.Root())
	}
}

func TestLogSumExpAgainstDirect(t *testing.T) {
	l := NewLogSumExp()
	terms := []struct{ exp, mult float64 }{
		{0, 1}, {1, 0.5}, {2, 2}, {-3, 1},
	}
	direct := 0.0
	for _, tm := range terms {
		l.Add(tm.exp, tm.mult)
		direct += tm.mult * math.Exp(tm.exp)
	}
	if got := l.Log(); math.Abs(got-math.Log(direct)) > 1e-12 {
		t.Fatalf("Log = %.15f, want %.15f", got, math.Log(direct))
	}
}

func TestLogSumExpHugeExponents(t *testing.T) {
	// exp(5000) overflows float64; the accumulator must not.
	l := NewLogSumExp()
	l.Add(5000, 1)
	l.Add(5001, 1)
	want := 5001 + math.Log(1+math.Exp(-1))
	if got := l.Log(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Log = %f, want %f", got, want)
	}
	if math.IsInf(l.Log(), 1) || math.IsNaN(l.Log()) {
		t.Fatal("accumulator overflowed")
	}
}

func TestLogSumExpGreaterThan(t *testing.T) {
	a, b := NewLogSumExp(), NewLogSumExp()
	a.Add(10, 1)
	b.Add(9, 1)
	if !a.GreaterThan(b, 1) {
		t.Fatal("exp(10) should exceed exp(9)")
	}
	if a.GreaterThan(b, 5) {
		t.Fatal("exp(10) should not exceed 5*exp(9)")
	}
	empty := NewLogSumExp()
	if empty.GreaterThan(b, 1) {
		t.Fatal("empty sum exceeds non-empty")
	}
	if !a.GreaterThan(empty, 1) {
		t.Fatal("non-empty does not exceed empty")
	}
	if zero := NewLogSumExp(); zero.GreaterThan(empty, 1) {
		t.Fatal("empty exceeds empty")
	}
}

func TestLogSumExpIgnoresZeroMult(t *testing.T) {
	l := NewLogSumExp()
	l.Add(3, 0)
	if !math.IsInf(l.Log(), -1) {
		t.Fatal("zero multiplier contributed")
	}
}
