// Package mst provides minimum spanning tree algorithms. The
// spanning-tree packing of Section 5 calls an MST oracle once per MWU
// iteration with exponential edge costs exp(α·z_e); to keep that stable
// for large exponents the oracle works directly on the exponents (MST
// order is monotone in z_e) and the cost sums use a log-sum-exp
// accumulator.
package mst

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ds"
	"repro/internal/graph"
)

// Kruskal computes a minimum spanning forest of g under the given
// per-edge weights and returns the chosen edge ids. Ties are broken by
// edge id, making the result deterministic.
func Kruskal(g *graph.Graph, weight func(edgeID int) float64) []int {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := weight(order[a]), weight(order[b])
		if wa != wb {
			return wa < wb
		}
		return order[a] < order[b]
	})
	uf := ds.NewUnionFind(g.N())
	chosen := make([]int, 0, g.N()-1)
	for _, id := range order {
		u, v := g.Endpoints(id)
		if uf.Union(u, v) {
			chosen = append(chosen, id)
		}
	}
	return chosen
}

// Prim computes a minimum spanning tree of the component containing
// root and returns it as a graph.Tree. It is the oracle used when only
// one component matters. Equal weights break by edge id, exactly like
// Kruskal: both then compute the unique MST of the infinitesimally
// perturbed weights w_e + δ·id_e, so the two oracles agree even on
// all-equal-weight graphs.
func Prim(g *graph.Graph, root int, weight func(edgeID int) float64) *graph.Tree {
	h := ds.NewLexHeap(g.N())
	parent := make(map[int]int)
	bestEdge := make([]int32, g.N())
	inTree := make([]bool, g.N())
	for i := range bestEdge {
		bestEdge[i] = -1
	}
	h.Push(root, 0, -1)
	for h.Len() > 0 {
		u, _, _ := h.PopMin()
		inTree[u] = true
		if be := bestEdge[u]; be >= 0 {
			a, b := g.Endpoints(int(be))
			if a == u {
				parent[u] = b
			} else {
				parent[u] = a
			}
		}
		nbrs := g.Neighbors(u)
		eids := g.IncidentEdges(u)
		for i, v := range nbrs {
			if inTree[v] {
				continue
			}
			w := weight(int(eids[i]))
			if !h.Contains(int(v)) {
				bestEdge[v] = eids[i]
				h.Push(int(v), w, eids[i])
			} else if h.DecreaseKey(int(v), w, eids[i]) {
				bestEdge[v] = eids[i]
			}
		}
	}
	t, err := graph.NewTree(g.N(), root, parent)
	if err != nil {
		// Prim over a connected component always yields a valid tree;
		// reaching here is a bug, not an input error.
		panic(fmt.Sprintf("mst: Prim built an invalid tree: %v", err))
	}
	return t
}

// TotalWeight sums weight over the given edge ids.
func TotalWeight(ids []int, weight func(edgeID int) float64) float64 {
	total := 0.0
	for _, id := range ids {
		total += weight(id)
	}
	return total
}

// LogSumExp accumulates a sum of terms exp(x_i), optionally scaled by a
// non-negative multiplier, while only ever storing the log of the sum.
// The spanning-tree packing compares Σ c_e·x_e against Cost(MST) where
// c_e = exp(α·z_e) can overflow float64; both sides are accumulated here.
type LogSumExp struct {
	maxExp float64 // current reference exponent
	sum    float64 // Σ m_i * exp(x_i - maxExp)
	empty  bool
}

// NewLogSumExp returns an empty accumulator.
func NewLogSumExp() *LogSumExp {
	return &LogSumExp{maxExp: math.Inf(-1), empty: true}
}

// Reset returns the accumulator to the empty state so hot loops (one
// Lemma F.1 test per MWU iteration) can reuse it without allocating.
func (l *LogSumExp) Reset() {
	l.maxExp = math.Inf(-1)
	l.sum = 0
	l.empty = true
}

// Add accumulates mult * exp(exponent). Zero multipliers are ignored.
func (l *LogSumExp) Add(exponent, mult float64) {
	if mult <= 0 {
		return
	}
	x := exponent + math.Log(mult)
	if l.empty {
		l.maxExp = x
		l.sum = 1
		l.empty = false
		return
	}
	if x > l.maxExp {
		l.sum = l.sum*math.Exp(l.maxExp-x) + 1
		l.maxExp = x
	} else {
		l.sum += math.Exp(x - l.maxExp)
	}
}

// Log returns log(Σ m_i · exp(x_i)), or -Inf when empty.
func (l *LogSumExp) Log() float64 {
	if l.empty {
		return math.Inf(-1)
	}
	return l.maxExp + math.Log(l.sum)
}

// GreaterThan reports whether this accumulated sum exceeds factor times
// the other one, comparing in the log domain.
func (l *LogSumExp) GreaterThan(other *LogSumExp, factor float64) bool {
	if other.empty {
		return !l.empty
	}
	if l.empty {
		return false
	}
	return l.Log() > other.Log()+math.Log(factor)
}
