// Package stpdist implements the distributed fractional spanning-tree
// packing of Theorem 1.3 in the E-CONGEST model (Section 5).
//
// Each MWU iteration runs one distributed MST (internal/dist's Borůvka
// phases standing in for Kutten–Peleg, DESIGN.md substitution 2) under
// edge loads quantized to multiples of Θ(1/n) — the paper's footnote-6
// rounding that keeps messages within O(log n) bits. The
// stop-or-continue decision is the leader's: we compute it driver-side
// and charge one BFS-tree convergecast (D rounds) per iteration, as the
// paper describes.
//
// For general λ, the η sampled subgraphs are edge-disjoint, so their
// MSTs compose congestion-free in E-CONGEST: a joint iteration is
// metered as the maximum of the per-subgraph MST rounds (Lemma 5.1's
// parallel composition), plus the shared convergecast.
package stpdist

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/sim"
	"repro/internal/stp"
)

// Result is a distributed packing outcome with its cost meter.
type Result struct {
	Packing *stp.Packing
	Meter   sim.Meter
}

// Pack computes the fractional spanning-tree packing distributedly.
func Pack(g *graph.Graph, opts stp.Options) (*Result, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("stpdist: graph too small (n=%d)", n)
	}
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("stpdist: graph disconnected")
	}
	opts = normalize(opts, n)
	lambda := opts.KnownLambda
	var meter sim.Meter
	if lambda <= 0 {
		// The paper uses the distributed min-cut 3-approximation of [21]
		// in O~(D+sqrt(n)) rounds; we substitute the exact value and
		// charge that bound (DESIGN.md substitution 5).
		lambda = flow.StoerWagner(g)
		d := approxD(g)
		charge := float64(d) + math.Sqrt(float64(n))*math.Log2(float64(n)+2)
		meter.Charge(int(charge))
	}
	if lambda < 1 {
		return nil, fmt.Errorf("stpdist: edge connectivity %d < 1", lambda)
	}

	logn := math.Log2(float64(n) + 2)
	cutoff := opts.SampleThreshold * logn / (opts.Epsilon * opts.Epsilon)
	subgraphs := []*graph.Graph{g}
	eta := 1
	if float64(lambda) > cutoff {
		eta = int(float64(lambda) / cutoff)
		if eta < 2 {
			eta = 2
		}
		rng := ds.NewRand(opts.Seed ^ 0x5eed)
		assign := make([]int, g.M())
		for e := range assign {
			assign[e] = rng.IntN(eta)
		}
		subgraphs = subgraphs[:0]
		for i := 0; i < eta; i++ {
			idx := i
			sub := g.SubgraphByEdges(func(id int) bool { return assign[id] == idx })
			if graph.IsConnected(sub) {
				subgraphs = append(subgraphs, sub)
			}
		}
		if len(subgraphs) == 0 {
			return nil, fmt.Errorf("stpdist: all %d sampled subgraphs disconnected", eta)
		}
	}

	out := &stp.Packing{Stats: stp.Stats{Lambda: lambda, Subgraphs: eta}}
	states := make([]*mwuState, len(subgraphs))
	for i, sub := range subgraphs {
		subLambda := lambda
		if eta > 1 {
			subLambda = flow.StoerWagner(sub)
		}
		if subLambda < 1 {
			continue
		}
		states[i] = newMWUState(sub, subLambda, opts)
	}

	d := approxD(g)
	for iter := 0; iter < opts.MaxIters; iter++ {
		anyActive := false
		iterRounds := 0
		for i, st := range states {
			if st == nil || st.done {
				continue
			}
			anyActive = true
			rounds, err := st.step(opts.Seed + uint64(iter*len(states)+i))
			if err != nil {
				return nil, fmt.Errorf("stpdist: subgraph %d iteration %d: %w", i, iter, err)
			}
			// Lemma 5.1: edge-disjoint subgraphs run simultaneously; the
			// joint iteration costs the maximum, not the sum.
			if rounds > iterRounds {
				iterRounds = rounds
			}
			addBitsAndMessages(&meter, &st.lastMeter)
		}
		if !anyActive {
			break
		}
		meter.MeteredRounds += iterRounds
		meter.Charge(d + len(states)) // leader decision convergecast
		out.Stats.Iterations++
	}

	for _, st := range states {
		if st == nil {
			continue
		}
		p := st.finish()
		out.Trees = append(out.Trees, p.Trees...)
		out.Stats.DistinctTrees += p.Stats.DistinctTrees
		if p.Stats.MaxLoad > out.Stats.MaxLoad {
			out.Stats.MaxLoad = p.Stats.MaxLoad
		}
	}
	if len(out.Trees) == 0 {
		return nil, fmt.Errorf("stpdist: empty packing")
	}
	return &Result{Packing: out, Meter: meter}, nil
}

func normalize(o stp.Options, n int) stp.Options {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.15
	}
	if o.MaxIters <= 0 {
		l := math.Log2(float64(n) + 2)
		o.MaxIters = int(40 * l * l * l / o.Epsilon)
		if o.MaxIters < 1000 {
			o.MaxIters = 1000
		}
		if o.MaxIters > 20000 {
			o.MaxIters = 20000
		}
	}
	if o.SampleThreshold <= 0 {
		o.SampleThreshold = 6
	}
	return o
}

func approxD(g *graph.Graph) int {
	d := graph.ApproxDiameter(g)
	if d < 1 {
		d = g.N()
	}
	return d
}

func addBitsAndMessages(dst *sim.Meter, src *sim.Meter) {
	dst.RawRounds += src.RawRounds
	dst.Messages += src.Messages
	dst.Bits += src.Bits
	dst.Phases += src.Phases
	// MeteredRounds handled by the caller (parallel composition).
}

// mwuState is the per-subgraph MWU loop state.
type mwuState struct {
	g       *graph.Graph
	lambda  int
	halfLam int
	eps     float64
	alpha   float64
	beta    float64
	x       []float64
	trees   map[string]*treeEntry
	order   []*treeEntry // insertion order, so the packing is seed-deterministic
	done    bool
	// runner reuses one simulator engine across the per-iteration MSTs.
	runner  *dist.MSTRunner
	weights []int64
	// lastMeter is the cost of the most recent distributed MST.
	lastMeter sim.Meter
	maxIters  int
	iters     int
}

type treeEntry struct {
	tree   *graph.Tree
	weight float64
}

func newMWUState(g *graph.Graph, lambda int, opts stp.Options) *mwuState {
	halfLam := ceilHalf(lambda - 1) // ⌈(λ-1)/2⌉
	if halfLam < 1 {
		halfLam = 1
	}
	eps := opts.Epsilon
	m := g.M()
	alpha := math.Log(2*float64(m)/eps) / eps
	st := &mwuState{
		g:        g,
		lambda:   lambda,
		halfLam:  halfLam,
		eps:      eps,
		alpha:    alpha,
		beta:     1 / (alpha * float64(halfLam)),
		x:        make([]float64, m),
		trees:    make(map[string]*treeEntry),
		runner:   dist.NewMSTRunner(g, sim.ECongest),
		weights:  make([]int64, m),
		maxIters: opts.MaxIters,
	}
	return st
}

// step runs one distributed MWU iteration and returns the MST's metered
// rounds. It sets done when the Lemma F.1 condition (or the direct load
// check) fires.
func (st *mwuState) step(seed uint64) (int, error) {
	st.iters++
	// Quantize z_e to multiples of 1/(4n) (footnote 6) so MST messages
	// stay within O(log n) bits.
	scale := int64(4 * st.g.N())
	weights := st.weights
	maxZ := 0.0
	for e := range weights {
		z := st.x[e] * float64(st.halfLam)
		if z > maxZ {
			maxZ = z
		}
		q := int64(math.Round(z * float64(scale) / 4)) // z <= ~4 after start
		weights[e] = q
	}
	chosen, meter, err := st.runner.MST(weights, seed, 0)
	if err != nil {
		return 0, err
	}
	st.lastMeter = meter

	costMST := mst.NewLogSumExp()
	for _, e := range chosen {
		costMST.Add(st.alpha*st.x[e]*float64(st.halfLam), 1)
	}
	costAll := mst.NewLogSumExp()
	for e := range st.x {
		costAll.Add(st.alpha*st.x[e]*float64(st.halfLam), st.x[e])
	}
	if st.iters > 1 && (costMST.GreaterThan(costAll, 1-st.eps) || maxZ <= 1+2*st.eps) {
		st.done = true
		return meter.TotalRounds(), nil
	}
	st.addTree(chosen)
	return meter.TotalRounds(), nil
}

func (st *mwuState) addTree(edgeIDs []int) {
	beta := st.beta
	if len(st.trees) == 0 {
		beta = 1 // first tree takes all the weight
	}
	for _, ent := range st.order {
		ent.weight *= 1 - beta
	}
	for e := range st.x {
		st.x[e] *= 1 - beta
	}
	sig := signature(edgeIDs)
	if cur, ok := st.trees[sig]; ok {
		cur.weight += beta
	} else {
		ent := &treeEntry{tree: treeFromEdges(st.g, edgeIDs), weight: beta}
		st.trees[sig] = ent
		st.order = append(st.order, ent)
	}
	for _, e := range edgeIDs {
		st.x[e] += beta
	}
}

// finish rescales the collection into a valid packing, exactly as the
// centralized code does.
func (st *mwuState) finish() *stp.Packing {
	maxZ := 0.0
	for e := range st.x {
		if z := st.x[e] * float64(st.halfLam); z > maxZ {
			maxZ = z
		}
	}
	if maxZ <= 0 {
		maxZ = 1
	}
	scaleW := float64(st.halfLam) / maxZ
	p := &stp.Packing{Stats: stp.Stats{Lambda: st.lambda, Iterations: st.iters, MaxLoad: maxZ}}
	for _, ent := range st.order {
		if w := ent.weight * scaleW; w > 1e-12 {
			p.Trees = append(p.Trees, stp.Tree{Tree: ent.tree, Weight: w})
		}
	}
	p.Stats.DistinctTrees = len(p.Trees)
	return p
}

func ceilHalf(x int) int {
	if x <= 0 {
		return 0
	}
	return (x + 1) / 2
}

func signature(edgeIDs []int) string {
	// edge ids are unique per tree; sort-free signature via sorted copy.
	ids := append([]int(nil), edgeIDs...)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	buf := make([]byte, 0, 4*len(ids))
	for _, e := range ids {
		buf = append(buf, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(buf)
}

func treeFromEdges(g *graph.Graph, edgeIDs []int) *graph.Tree {
	b := graph.NewBuilder(g.N())
	for _, e := range edgeIDs {
		u, v := g.Endpoints(e)
		b.AddEdge(u, v)
	}
	return graph.TreeFromBFS(b.Graph(), 0)
}
