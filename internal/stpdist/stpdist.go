// Package stpdist implements the distributed fractional spanning-tree
// packing of Theorem 1.3 in the E-CONGEST model (Section 5).
//
// Each MWU iteration runs one distributed MST (internal/dist's Borůvka
// phases standing in for Kutten–Peleg, DESIGN.md substitution 2) under
// edge loads quantized to multiples of 1/(4n) — the paper's footnote-6
// rounding that keeps messages within O(log n) bits. The
// stop-or-continue decision is the leader's: we compute it driver-side
// and charge one BFS-tree convergecast (D rounds) per iteration, as the
// paper describes.
//
// The MWU loop itself — load bookkeeping, the Lemma F.1 stop test with
// its iters > 1 first-step guard, tree deduplication, the final rescale
// — is stp.Engine, shared with the centralized packer; this package
// contributes only the distributed MST oracle and the round/bit
// accounting around it.
//
// For general λ, the η sampled subgraphs are edge-disjoint, so their
// MSTs compose congestion-free in E-CONGEST: a joint iteration is
// metered as the maximum of the per-subgraph MST rounds (Lemma 5.1's
// parallel composition), plus the shared convergecast.
package stpdist

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stp"
)

// Result is a distributed packing outcome with its cost meter.
type Result struct {
	Packing *stp.Packing
	Meter   sim.Meter
}

// Pack computes the fractional spanning-tree packing distributedly.
func Pack(g *graph.Graph, opts stp.Options) (*Result, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("stpdist: graph too small (n=%d)", n)
	}
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("stpdist: graph disconnected")
	}
	opts = normalize(opts, n)
	lambda := opts.KnownLambda
	var meter sim.Meter
	if lambda <= 0 {
		// The paper uses the distributed min-cut 3-approximation of [21]
		// in O~(D+sqrt(n)) rounds; we substitute the exact value and
		// charge that bound (DESIGN.md substitution 5).
		lambda = flow.StoerWagner(g)
		d := approxD(g)
		charge := float64(d) + math.Sqrt(float64(n))*math.Log2(float64(n)+2)
		meter.Charge(int(charge))
	}
	if lambda < 1 {
		return nil, fmt.Errorf("stpdist: edge connectivity %d < 1", lambda)
	}

	logn := math.Log2(float64(n) + 2)
	cutoff := opts.SampleThreshold * logn / (opts.Epsilon * opts.Epsilon)
	subgraphs := []*graph.Graph{g}
	eta := 1
	if float64(lambda) > cutoff {
		eta = int(float64(lambda) / cutoff)
		if eta < 2 {
			eta = 2
		}
		rng := ds.NewRand(opts.Seed ^ 0x5eed)
		assign := make([]int, g.M())
		for e := range assign {
			assign[e] = rng.IntN(eta)
		}
		subgraphs = subgraphs[:0]
		for i := 0; i < eta; i++ {
			idx := i
			sub := g.SubgraphByEdges(func(id int) bool { return assign[id] == idx })
			if graph.IsConnected(sub) {
				subgraphs = append(subgraphs, sub)
			}
		}
		if len(subgraphs) == 0 {
			return nil, fmt.Errorf("stpdist: all %d sampled subgraphs disconnected", eta)
		}
	}

	out := &stp.Packing{Stats: stp.Stats{Lambda: lambda, Subgraphs: eta}}
	states := make([]*mwuState, len(subgraphs))
	for i, sub := range subgraphs {
		subLambda := lambda
		if eta > 1 {
			subLambda = flow.StoerWagner(sub)
		}
		if subLambda < 1 {
			continue
		}
		states[i] = newMWUState(sub, subLambda, opts)
	}

	d := approxD(g)
	for iter := 0; iter < opts.MaxIters; iter++ {
		anyActive := false
		iterRounds := 0
		for i, st := range states {
			if st == nil || st.eng.Done() {
				continue
			}
			anyActive = true
			rounds, err := st.eng.Step(opts.Seed + uint64(iter*len(states)+i))
			if err != nil {
				return nil, fmt.Errorf("stpdist: subgraph %d iteration %d: %w", i, iter, err)
			}
			// Lemma 5.1: edge-disjoint subgraphs run simultaneously; the
			// joint iteration costs the maximum, not the sum.
			if rounds > iterRounds {
				iterRounds = rounds
			}
			addBitsAndMessages(&meter, &st.lastMeter)
		}
		if !anyActive {
			break
		}
		meter.MeteredRounds += iterRounds
		meter.Charge(d + len(states)) // leader decision convergecast
		out.Stats.Iterations++
	}

	for _, st := range states {
		if st == nil {
			continue
		}
		p := st.eng.Finish()
		out.Trees = append(out.Trees, p.Trees...)
		out.Stats.SubgraphsPacked++
		out.Stats.DistinctTrees += p.Stats.DistinctTrees
		if p.Stats.MaxLoad > out.Stats.MaxLoad {
			out.Stats.MaxLoad = p.Stats.MaxLoad
		}
	}
	if len(out.Trees) == 0 {
		return nil, fmt.Errorf("stpdist: empty packing")
	}
	return &Result{Packing: out, Meter: meter}, nil
}

func normalize(o stp.Options, n int) stp.Options {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.15
	}
	if o.MaxIters <= 0 {
		l := math.Log2(float64(n) + 2)
		o.MaxIters = int(40 * l * l * l / o.Epsilon)
		if o.MaxIters < 1000 {
			o.MaxIters = 1000
		}
		if o.MaxIters > 20000 {
			o.MaxIters = 20000
		}
	}
	if o.SampleThreshold <= 0 {
		o.SampleThreshold = 6
	}
	return o
}

func approxD(g *graph.Graph) int {
	d := graph.ApproxDiameter(g)
	if d < 1 {
		d = g.N()
	}
	return d
}

func addBitsAndMessages(dst *sim.Meter, src *sim.Meter) {
	dst.RawRounds += src.RawRounds
	dst.Messages += src.Messages
	dst.Bits += src.Bits
	dst.Phases += src.Phases
	// MeteredRounds handled by the caller (parallel composition).
}

// mwuState couples one subgraph's shared MWU engine with the distributed
// MST oracle feeding it: a reused MSTRunner (one simulator engine and all
// per-node protocol state across iterations) plus the quantized weight
// buffer and the cost meter of the most recent MST.
type mwuState struct {
	eng    *stp.Engine
	runner *dist.MSTRunner
	// weights is the footnote-6 quantization buffer, reused per iteration.
	weights []int64
	// lastMeter is the cost of the most recent distributed MST.
	lastMeter sim.Meter
}

func newMWUState(g *graph.Graph, lambda int, opts stp.Options) *mwuState {
	st := &mwuState{
		runner:  dist.NewMSTRunner(g, sim.ECongest),
		weights: make([]int64, g.M()),
	}
	st.eng = stp.NewEngine(g, lambda, opts, st.oracle)
	return st
}

// quantScale returns the footnote-6 quantization denominator 4n: loads
// are rounded to multiples of 1/(4n), which keeps every MST message
// within O(log n) bits while staying below the β = 1/(α·⌈(λ-1)/2⌉)
// step the analysis tolerates.
func quantScale(n int) float64 { return float64(4 * n) }

// oracle is the distributed MST oracle: quantize z_e to multiples of
// 1/(4n) (footnote 6) and run one Borůvka-phase MST on the simulator.
func (st *mwuState) oracle(e *stp.Engine, seed uint64) ([]int, int, error) {
	scale := quantScale(e.Graph().N())
	halfLam := float64(e.HalfLambda())
	x := e.Loads()
	for i := range st.weights {
		z := x[i] * halfLam
		st.weights[i] = int64(math.Round(z * scale))
	}
	chosen, meter, err := st.runner.MST(st.weights, seed, 0)
	if err != nil {
		return nil, 0, err
	}
	st.lastMeter = meter
	return chosen, meter.TotalRounds(), nil
}
