package stpdist

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stp"
)

func TestPackValidation(t *testing.T) {
	if _, err := Pack(graph.NewBuilder(1).Graph(), stp.Options{}); err == nil {
		t.Fatal("single vertex accepted")
	}
	if _, err := Pack(graph.FromEdgeList(3, [][2]int{{0, 1}}), stp.Options{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestDistributedPackCycle(t *testing.T) {
	g := graph.Cycle(10) // λ=2, one tree of weight 1 is the target
	res, err := Pack(g, stp.Options{Seed: 1, KnownLambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Packing.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s := res.Packing.Size(); s < 0.8 || s > 1+1e-9 {
		t.Fatalf("size = %f, want about 1", s)
	}
	if res.Meter.TotalRounds() == 0 || res.Meter.Messages == 0 {
		t.Fatalf("meter empty: %+v", res.Meter)
	}
}

func TestDistributedPackHypercube(t *testing.T) {
	g := graph.Hypercube(4) // n=16, λ=4, target ⌈3/2⌉=2
	res, err := Pack(g, stp.Options{Seed: 3, KnownLambda: 4, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Packing
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s := p.Size(); s < 2*(1-0.5) || s > 2+1e-6 {
		t.Fatalf("size %.3f outside [1, 2] for λ=4", s)
	}
	if p.Stats.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestDistributedMatchesCentralizedSize(t *testing.T) {
	g := graph.Hypercube(4)
	opts := stp.Options{Seed: 5, KnownLambda: 4, Epsilon: 0.2}
	distRes, err := Pack(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	cen, err := stp.Pack(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	dsz, csz := distRes.Packing.Size(), cen.Size()
	if math.Abs(dsz-csz) > 0.5*math.Max(dsz, csz) {
		t.Fatalf("distributed %.3f vs centralized %.3f sizes diverge", dsz, csz)
	}
}

func TestDistributedPackEstimatesLambda(t *testing.T) {
	g := graph.Torus(4, 4) // λ=4
	res, err := Pack(g, stp.Options{Seed: 7, Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packing.Stats.Lambda != 4 {
		t.Fatalf("estimated λ=%d, want 4", res.Packing.Stats.Lambda)
	}
	// Estimation charges the [21] min-cut approximation rounds.
	if res.Meter.ChargedRounds == 0 {
		t.Fatal("λ estimation not charged")
	}
}

func TestDistributedDeterministic(t *testing.T) {
	g := graph.Hypercube(3)
	r1, err := Pack(g, stp.Options{Seed: 11, KnownLambda: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Pack(g, stp.Options{Seed: 11, KnownLambda: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Packing.Size() != r2.Packing.Size() || r1.Meter != r2.Meter {
		t.Fatal("same seed diverged")
	}
}

func TestRoundsScaleWithSqrtNLambda(t *testing.T) {
	// Theorem 1.3: O~(D + sqrt(nλ)) rounds. Check the meter stays below
	// a generous polylog envelope at n=16.
	g := graph.Hypercube(4)
	res, err := Pack(g, stp.Options{Seed: 13, KnownLambda: 4, Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(g.N())
	envelope := (float64(graph.Diameter(g)) + math.Sqrt(n*4)) * math.Pow(math.Log2(n+2), 4) * 20
	if float64(res.Meter.TotalRounds()) > envelope {
		t.Fatalf("rounds %d above envelope %.0f", res.Meter.TotalRounds(), envelope)
	}
}
