package stpdist

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stp"
)

// TestQuantizationStepIsQuarterOverN pins the footnote-6 granularity:
// loads quantize to multiples of 1/(4n), the resolution the O(log n)-bit
// message budget is sized for. The seed shipped with round(z·4n/4),
// which collapses the grid to 1/n — four distinct quarter-steps mapped
// to one weight — so this is the regression gate for that bug.
func TestQuantizationStepIsQuarterOverN(t *testing.T) {
	const n = 8
	scale := quantScale(n)
	if scale != 4*n {
		t.Fatalf("quantScale(%d) = %v, want %v", n, scale, 4*n)
	}
	// Consecutive multiples of 1/(4n) must quantize to consecutive
	// integers: the step size is exactly 1/(4n).
	for k := 0; k < 64; k++ {
		z := float64(k) / (4 * n)
		if q := int64(math.Round(z * scale)); q != int64(k) {
			t.Fatalf("z=%d/(4·%d) quantized to %d, want %d", k, n, q, k)
		}
	}
	// Sub-half-step perturbations must not move the quantized value.
	z := 3.0 / (4 * n)
	if q := int64(math.Round((z + 1/(16.0*n)) * scale)); q != 3 {
		t.Fatalf("z+1/(16n) quantized to %d, want 3", q)
	}
	// The old bug: round(z·scale/4) maps 3/(4n) and 4/(4n) both to 1.
	if old3, old4 := int64(math.Round(3.0/(4*n)*scale/4)), int64(math.Round(4.0/(4*n)*scale/4)); old3 != old4 {
		t.Fatalf("regression-test premise wrong: old quantization gave %d vs %d", old3, old4)
	} else if q3, q4 := int64(math.Round(3.0/(4*n)*scale)), int64(math.Round(4.0/(4*n)*scale)); q3 == q4 {
		t.Fatalf("fixed quantization still collapses quarter-steps: %d == %d", q3, q4)
	}
}

// TestStatsSubgraphsAttemptedVsPacked forces the η-sampling path and
// checks that Stats separates the attempted subgraph count from the
// count that actually packed (disconnected samples are skipped).
func TestStatsSubgraphsAttemptedVsPacked(t *testing.T) {
	g := graph.Complete(24) // λ=23
	res, err := Pack(g, stp.Options{Seed: 2, KnownLambda: 23, Epsilon: 0.3, SampleThreshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Packing.Stats
	if s.Subgraphs < 2 {
		t.Fatalf("sampling did not engage: η=%d", s.Subgraphs)
	}
	if s.SubgraphsPacked < 1 || s.SubgraphsPacked > s.Subgraphs {
		t.Fatalf("SubgraphsPacked=%d outside [1, %d]", s.SubgraphsPacked, s.Subgraphs)
	}
	if err := res.Packing.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestPackValidation(t *testing.T) {
	if _, err := Pack(graph.NewBuilder(1).Graph(), stp.Options{}); err == nil {
		t.Fatal("single vertex accepted")
	}
	if _, err := Pack(graph.FromEdgeList(3, [][2]int{{0, 1}}), stp.Options{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestDistributedPackCycle(t *testing.T) {
	g := graph.Cycle(10) // λ=2, one tree of weight 1 is the target
	res, err := Pack(g, stp.Options{Seed: 1, KnownLambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Packing.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s := res.Packing.Size(); s < 0.8 || s > 1+1e-9 {
		t.Fatalf("size = %f, want about 1", s)
	}
	if res.Meter.TotalRounds() == 0 || res.Meter.Messages == 0 {
		t.Fatalf("meter empty: %+v", res.Meter)
	}
}

func TestDistributedPackHypercube(t *testing.T) {
	g := graph.Hypercube(4) // n=16, λ=4, target ⌈3/2⌉=2
	res, err := Pack(g, stp.Options{Seed: 3, KnownLambda: 4, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Packing
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s := p.Size(); s < 2*(1-0.5) || s > 2+1e-6 {
		t.Fatalf("size %.3f outside [1, 2] for λ=4", s)
	}
	if p.Stats.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestDistributedMatchesCentralizedSize(t *testing.T) {
	g := graph.Hypercube(4)
	opts := stp.Options{Seed: 5, KnownLambda: 4, Epsilon: 0.2}
	distRes, err := Pack(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	cen, err := stp.Pack(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	dsz, csz := distRes.Packing.Size(), cen.Size()
	if math.Abs(dsz-csz) > 0.5*math.Max(dsz, csz) {
		t.Fatalf("distributed %.3f vs centralized %.3f sizes diverge", dsz, csz)
	}
}

func TestDistributedPackEstimatesLambda(t *testing.T) {
	g := graph.Torus(4, 4) // λ=4
	res, err := Pack(g, stp.Options{Seed: 7, Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packing.Stats.Lambda != 4 {
		t.Fatalf("estimated λ=%d, want 4", res.Packing.Stats.Lambda)
	}
	// Estimation charges the [21] min-cut approximation rounds.
	if res.Meter.ChargedRounds == 0 {
		t.Fatal("λ estimation not charged")
	}
}

func TestDistributedDeterministic(t *testing.T) {
	g := graph.Hypercube(3)
	r1, err := Pack(g, stp.Options{Seed: 11, KnownLambda: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Pack(g, stp.Options{Seed: 11, KnownLambda: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Packing.Size() != r2.Packing.Size() || r1.Meter != r2.Meter {
		t.Fatal("same seed diverged")
	}
}

func TestRoundsScaleWithSqrtNLambda(t *testing.T) {
	// Theorem 1.3: O~(D + sqrt(nλ)) rounds. Check the meter stays below
	// a generous polylog envelope at n=16.
	g := graph.Hypercube(4)
	res, err := Pack(g, stp.Options{Seed: 13, KnownLambda: 4, Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(g.N())
	envelope := (float64(graph.Diameter(g)) + math.Sqrt(n*4)) * math.Pow(math.Log2(n+2), 4) * 20
	if float64(res.Meter.TotalRounds()) > envelope {
		t.Fatalf("rounds %d above envelope %.0f", res.Meter.TotalRounds(), envelope)
	}
}
