package lower

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{H: 1, L: 1, W: 1}, nil, nil); err == nil {
		t.Fatal("H=1 accepted")
	}
	if _, err := Build(Params{H: 4, L: 2, W: 1}, []int{7}, nil); err == nil {
		t.Fatal("out-of-range X element accepted")
	}
}

func TestLemmaG4DiameterAtMost3(t *testing.T) {
	inst, err := Build(Params{H: 4, L: 3, W: 2}, []int{0, 2}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := graph.Diameter(inst.G); d > 3 {
		t.Fatalf("diameter %d > 3", d)
	}
	if !graph.IsConnected(inst.G) {
		t.Fatal("instance disconnected")
	}
}

func TestLemmaG4IntersectingCase(t *testing.T) {
	// X∩Y = {2}: vertex connectivity exactly 4 = {a, b, u_2, v_2}.
	inst, err := Build(Params{H: 4, L: 2, W: 5}, []int{0, 2}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.MinCutUpper()
	if err != nil {
		t.Fatal(err)
	}
	if want != 4 {
		t.Fatalf("MinCutUpper = %d, want 4", want)
	}
	if got := flow.VertexConnectivity(inst.G); got != 4 {
		t.Fatalf("κ(G(X,Y)) = %d, want 4", got)
	}
}

func TestLemmaG4DisjointCase(t *testing.T) {
	// X∩Y = ∅: every vertex cut has size >= w.
	inst, err := Build(Params{H: 4, L: 2, W: 5}, []int{0, 2}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.MinCutUpper()
	if err != nil {
		t.Fatal(err)
	}
	if want != 5 {
		t.Fatalf("MinCutUpper = %d, want 5", want)
	}
	if got := flow.VertexConnectivity(inst.G); got < 5 {
		t.Fatalf("κ(G(X,Y)) = %d, want >= 5", got)
	}
}

func TestMinCutUpperRejectsBigIntersection(t *testing.T) {
	inst, err := Build(Params{H: 4, L: 2, W: 3}, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.MinCutUpper(); err == nil {
		t.Fatal("|X∩Y|=2 accepted")
	}
}

func TestSidesPartitionReasonably(t *testing.T) {
	inst, err := Build(Params{H: 3, L: 2, W: 2}, []int{0}, []int{1}) // disjoint
	if err != nil {
		t.Fatal(err)
	}
	left, right, both := 0, 0, 0
	for v := 0; v < inst.G.N(); v++ {
		l, r := inst.LeftOf[v], inst.RightOf[v]
		if l && r {
			both++
		} else if l {
			left++
		} else if r {
			right++
		} else {
			t.Fatalf("vertex %d on neither side", v)
		}
	}
	if left == 0 || right == 0 || both == 0 {
		t.Fatalf("degenerate split: left=%d right=%d both=%d", left, right, both)
	}
}

// hubChatter: hubs broadcast for `rounds` rounds; used to verify the
// cut-bit meter counts exactly the hub traffic.
type hubChatter struct {
	isHub  bool
	rounds int
	sent   int
}

func (p *hubChatter) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if p.isHub && p.sent < p.rounds {
		p.sent++
		ctx.Broadcast(sim.Msg(1, 5)) // 8 + 4 bits
		return sim.Active
	}
	return sim.Done
}

func TestCutBitsCountsHubTraffic(t *testing.T) {
	inst, err := Build(Params{H: 3, L: 2, W: 2}, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]sim.Process, inst.G.N())
	for v := range procs {
		procs[v] = &hubChatter{isHub: v == inst.A || v == inst.B, rounds: 3}
	}
	bits, meter, err := inst.CutBits(procs, sim.VCongest, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Two hubs x three rounds x 12 bits each.
	if bits != 2*3*12 {
		t.Fatalf("CutBits = %d, want 72", bits)
	}
	if meter.RawRounds == 0 {
		t.Fatal("no rounds metered")
	}
}

func TestCutBitsIgnoresNonHubTraffic(t *testing.T) {
	inst, err := Build(Params{H: 3, L: 2, W: 2}, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone EXCEPT the hubs chatters.
	procs := make([]sim.Process, inst.G.N())
	for v := range procs {
		procs[v] = &hubChatter{isHub: v != inst.A && v != inst.B, rounds: 2}
	}
	bits, _, err := inst.CutBits(procs, sim.VCongest, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 0 {
		t.Fatalf("CutBits = %d, want 0 for non-hub traffic", bits)
	}
}

func TestDisjointnessBitsLowerBound(t *testing.T) {
	if DisjointnessBitsLowerBound(64) != 64 {
		t.Fatal("wrong bound")
	}
}
