// Package lower builds the lower-bound graph family of Appendix G and
// the measurement harness around it.
//
// H(X,Y) consists of h+1 paths of 2ℓ heavy nodes, a set-disjointness
// gadget at both ends (u_x and v_y connector nodes), and two hub nodes a
// and b keeping the diameter at 3. G(X,Y) replaces each heavy node by a
// w-clique and each edge by a complete bipartite graph. Lemma G.4: if
// X∩Y = {z}, the vertex connectivity is exactly 4 (cut {a, b, u_z,
// v_z}); if X and Y are disjoint, it is at least w.
//
// The two-party reduction (Lemma G.6) bounds the bits a T-round protocol
// moves across the Alice/Bob boundary by 2BT; CutBits meters exactly
// that quantity for live protocol runs via the simulator's delivery
// observer.
package lower

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Params sizes the construction.
type Params struct {
	H int // number of gadget paths is H+1; universe size for X, Y
	L int // half path length: each path has 2L heavy nodes
	W int // heavy node weight (clique size in G(X,Y))
}

// Instance is a constructed G(X,Y) with the vertex roles needed by the
// experiments.
type Instance struct {
	G *graph.Graph
	// A and B are the hub nodes.
	A, B int
	// UNodes[x] is the u_x connector (present iff x ∈ X); VNodes likewise.
	UNodes, VNodes map[int]int
	// CliqueOf[p][q] lists the w vertices of heavy node (p,q),
	// p ∈ [0,H], q ∈ [0, 2L).
	CliqueOf [][][]int
	// LeftOf reports Alice's side V'_A(0): everything except the
	// right-end gadget; RightOf is Bob's V'_B(0).
	LeftOf, RightOf []bool
	Params          Params
	X, Y            map[int]bool
}

// Build constructs G(X,Y). X and Y are subsets of {0,…,H-1}.
func Build(p Params, x, y []int) (*Instance, error) {
	if p.H < 2 || p.L < 1 || p.W < 1 {
		return nil, fmt.Errorf("lower: bad params %+v", p)
	}
	xs := map[int]bool{}
	for _, e := range x {
		if e < 0 || e >= p.H {
			return nil, fmt.Errorf("lower: X element %d outside [0,%d)", e, p.H)
		}
		xs[e] = true
	}
	ys := map[int]bool{}
	for _, e := range y {
		if e < 0 || e >= p.H {
			return nil, fmt.Errorf("lower: Y element %d outside [0,%d)", e, p.H)
		}
		ys[e] = true
	}

	// Vertex layout: cliques for heavy nodes (p,q), then a, b, u_x, v_y.
	paths := p.H + 1
	next := 0
	cliqueOf := make([][][]int, paths)
	for pi := 0; pi < paths; pi++ {
		cliqueOf[pi] = make([][]int, 2*p.L)
		for q := 0; q < 2*p.L; q++ {
			ids := make([]int, p.W)
			for i := range ids {
				ids[i] = next
				next++
			}
			cliqueOf[pi][q] = ids
		}
	}
	a := next
	b := next + 1
	next += 2
	uNodes := map[int]int{}
	for e := range xs {
		uNodes[e] = next
		next++
	}
	vNodes := map[int]int{}
	for e := range ys {
		vNodes[e] = next
		next++
	}

	bld := graph.NewBuilder(next)
	cliqueEdges := func(ids []int) {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				bld.AddEdge(ids[i], ids[j])
			}
		}
	}
	biclique := func(as, bs []int) {
		for _, u := range as {
			for _, v := range bs {
				bld.AddEdge(u, v)
			}
		}
	}
	single := func(v int) []int { return []int{v} }

	// Heavy cliques and path edges.
	for pi := 0; pi < paths; pi++ {
		for q := 0; q < 2*p.L; q++ {
			cliqueEdges(cliqueOf[pi][q])
			if q+1 < 2*p.L {
				biclique(cliqueOf[pi][q], cliqueOf[pi][q+1])
			}
		}
	}
	// Set gadget, left side: path 0's first clique connects to path x's
	// first clique, through u_x when x ∈ X, directly otherwise.
	for xi := 1; xi <= p.H; xi++ {
		elem := xi - 1
		if xs[elem] {
			u := uNodes[elem]
			biclique(single(u), cliqueOf[0][0])
			biclique(single(u), cliqueOf[xi][0])
		} else {
			biclique(cliqueOf[0][0], cliqueOf[xi][0])
		}
	}
	// Right side with Y.
	for yi := 1; yi <= p.H; yi++ {
		elem := yi - 1
		if ys[elem] {
			v := vNodes[elem]
			biclique(single(v), cliqueOf[0][2*p.L-1])
			biclique(single(v), cliqueOf[yi][2*p.L-1])
		} else {
			biclique(cliqueOf[0][2*p.L-1], cliqueOf[yi][2*p.L-1])
		}
	}
	// Hubs: a serves the left half (q < L) and the u nodes; b the rest.
	bld.AddEdge(a, b)
	for pi := 0; pi < paths; pi++ {
		for q := 0; q < 2*p.L; q++ {
			hub := a
			if q >= p.L {
				hub = b
			}
			biclique(single(hub), cliqueOf[pi][q])
		}
	}
	for _, u := range uNodes {
		bld.AddEdge(a, u)
	}
	for _, v := range vNodes {
		bld.AddEdge(b, v)
	}

	g := bld.Graph()
	inst := &Instance{
		G: g, A: a, B: b,
		UNodes: uNodes, VNodes: vNodes,
		CliqueOf: cliqueOf,
		Params:   p, X: xs, Y: ys,
		LeftOf:  make([]bool, g.N()),
		RightOf: make([]bool, g.N()),
	}
	// Alice knows V'_A(0) = {a} ∪ U ∪ cliques with q < 2L-0... following
	// Lemma G.5: V_A(r) excludes the rightmost r+1 columns; V_A(0) is
	// everything but the last column, V_B(0) everything but the first.
	for pi := 0; pi < paths; pi++ {
		for q := 0; q < 2*p.L; q++ {
			for _, id := range cliqueOf[pi][q] {
				if q < 2*p.L-1 {
					inst.LeftOf[id] = true
				}
				if q > 0 {
					inst.RightOf[id] = true
				}
			}
		}
	}
	inst.LeftOf[a] = true
	inst.RightOf[b] = true
	for _, u := range uNodes {
		inst.LeftOf[u] = true
	}
	for _, v := range vNodes {
		inst.RightOf[v] = true
	}
	return inst, nil
}

// MinCutUpper returns the Lemma G.4 prediction for the instance: 4 when
// |X∩Y| = 1, and W when X∩Y = ∅ (the true connectivity is >= W then;
// min degree makes it exactly related to the gadget). Returns an error
// for |X∩Y| > 1, where the lemma gives no single value.
func (inst *Instance) MinCutUpper() (int, error) {
	common := 0
	for e := range inst.X {
		if inst.Y[e] {
			common++
		}
	}
	switch common {
	case 0:
		return inst.Params.W, nil
	case 1:
		return 4, nil
	default:
		return 0, fmt.Errorf("lower: |X∩Y| = %d > 1 not covered by Lemma G.4", common)
	}
}

// CutBits runs the given processes on the instance's graph and returns
// the bits Alice and Bob would exchange in the Lemma G.5/G.6 simulation:
// everything the hub nodes a and b transmit. In V-CONGEST each hub
// broadcast is delivered to the other hub exactly once over the a-b
// edge, so metering a<->b deliveries counts each exchanged message once;
// Lemma G.6 bounds the total by 2B·T for T-round protocols.
func (inst *Instance) CutBits(procs []sim.Process, model sim.Model, seed uint64, maxRounds int) (int64, sim.Meter, error) {
	var crossing int64
	a, b := int32(inst.A), int32(inst.B)
	obs := func(from, to int32, bits int) {
		if (from == a && to == b) || (from == b && to == a) {
			crossing += int64(bits)
		}
	}
	eng, err := sim.NewEngine(inst.G, model, procs, seed, sim.WithDeliveryObserver(obs))
	if err != nil {
		return 0, sim.Meter{}, err
	}
	if err := eng.RunPhase(maxRounds); err != nil {
		return crossing, *eng.Meter(), err
	}
	return crossing, *eng.Meter(), nil
}

// DisjointnessBitsLowerBound returns the Ω(h) bits two parties must
// exchange to decide set disjointness over universe [h] ([29, 46]),
// i.e. the denominator of the Theorem G.2 round bound.
func DisjointnessBitsLowerBound(h int) int { return h }
