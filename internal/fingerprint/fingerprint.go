// Package fingerprint renders the deterministic, content-level
// fingerprint of the repo's randomized pipelines: packing tree contents
// (hashed), sizes, and full meters for fixed seeds across several graph
// families, plus broadcast/gossip scheduler results. Two builds that
// produce the same text produce byte-identical experiment outcomes, so
// diffs of this text are the regression gate for refactors of the graph
// core, the simulator engine, and the schedulers.
//
// cmd/fingerprint prints the text; the committed FINGERPRINT.txt golden
// is compared against it both by `make ci` and by TestFingerprintGolden,
// so a determinism break fails in CI rather than only at bench time.
package fingerprint

import (
	"fmt"
	"hash/fnv"
	"strings"

	decomp "repro"
	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/ds"
	"repro/internal/graph"
)

// Text returns the full fingerprint, one line per pinned workload.
func Text() string {
	var b strings.Builder
	packingFingerprints(&b)
	broadcastFingerprints(&b)
	return b.String()
}

// packingFingerprints covers the Theorem 1.1 distributed packing over
// five graph families and eight seeds each.
func packingFingerprints(b *strings.Builder) {
	type tc struct {
		name string
		g    *graph.Graph
		k    int
	}
	chain, err := graph.CliqueChain(8, 8, 2)
	if err != nil {
		panic(err)
	}
	cases := []tc{
		{"Q4", graph.Hypercube(4), 16},
		{"Q5", graph.Hypercube(5), 20},
		{"Q6", graph.Hypercube(6), 24},
		{"ham64", graph.RandomHamCycles(64, 3, ds.NewRand(1)), 6},
		{"chain", chain, 2},
	}
	for _, c := range cases {
		for seed := uint64(0); seed < 8; seed++ {
			res, err := cdsdist.PackWithGuess(c.g, c.k, cds.Options{Seed: seed})
			if err != nil {
				panic(err)
			}
			h := fnv.New64a()
			for _, t := range res.Packing.Trees {
				fmt.Fprintf(h, "%d:%v;", t.Class, t.Tree.Vertices())
			}
			m := res.Meter
			fmt.Fprintf(b, "%s seed=%d size=%.6f raw=%d metered=%d charged=%d msgs=%d bits=%d phases=%d hash=%x\n",
				c.name, seed, res.Packing.Size(), m.RawRounds, m.MeteredRounds, m.ChargedRounds, m.Messages, m.Bits, m.Phases, h.Sum64())
		}
	}
}

// broadcastFingerprints covers the Corollary 1.4/1.5/A.1 schedulers.
func broadcastFingerprints(b *strings.Builder) {
	g := decomp.RandomHamCycles(256, 16, 2)
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(1))
	if err != nil {
		panic(err)
	}
	srcs := decomp.UniformSources(g.N(), 4*g.N(), 3)
	for seed := uint64(0); seed < 6; seed++ {
		multi, err := decomp.Broadcast(g, p, srcs, seed)
		if err != nil {
			panic(err)
		}
		single, err := decomp.SingleTreeBroadcast(g, srcs, decomp.VCongest, seed)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(b, "V seed=%d multi=%+v single=%+v\n", seed, multi, single)
	}
	k := decomp.Complete(16)
	sp, err := decomp.PackSpanningTrees(k, decomp.WithSeed(1), decomp.WithKnownConnectivity(15))
	if err != nil {
		panic(err)
	}
	ksrcs := decomp.UniformSources(k.N(), 4*k.N(), 3)
	for seed := uint64(0); seed < 6; seed++ {
		multi, err := decomp.BroadcastEdges(k, sp, ksrcs, seed)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(b, "E seed=%d multi=%+v\n", seed, multi)
	}
	gg := decomp.RandomHamCycles(128, 12, 3)
	gp, err := decomp.PackDominatingTrees(gg, decomp.WithSeed(1))
	if err != nil {
		panic(err)
	}
	for seed := uint64(0); seed < 3; seed++ {
		res, err := decomp.Gossip(gg, gp, seed)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(b, "G seed=%d res=%+v\n", seed, res)
	}
}
