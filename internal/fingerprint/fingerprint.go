// Package fingerprint renders the deterministic, content-level
// fingerprint of the repo's randomized pipelines: packing tree contents
// (hashed), sizes, and full meters for fixed seeds across several graph
// families, plus broadcast/gossip scheduler results. Two builds that
// produce the same text produce byte-identical experiment outcomes, so
// diffs of this text are the regression gate for refactors of the graph
// core, the simulator engine, and the schedulers.
//
// cmd/fingerprint prints the text; the committed FINGERPRINT.txt golden
// is compared against it both by `make ci` and by TestFingerprintGolden,
// so a determinism break fails in CI rather than only at bench time.
package fingerprint

import (
	"fmt"
	"hash/fnv"
	"strings"

	decomp "repro"
	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/stp"
	"repro/internal/stpdist"
)

// Text returns the full fingerprint, one line per pinned workload.
func Text() string {
	var b strings.Builder
	packingFingerprints(&b)
	spanningFingerprints(&b)
	broadcastFingerprints(&b)
	faultFingerprints(&b)
	return b.String()
}

// packingFingerprints covers the Theorem 1.1 distributed packing over
// five graph families and eight seeds each.
func packingFingerprints(b *strings.Builder) {
	type tc struct {
		name string
		g    *graph.Graph
		k    int
	}
	chain, err := graph.CliqueChain(8, 8, 2)
	if err != nil {
		panic(err)
	}
	cases := []tc{
		{"Q4", graph.Hypercube(4), 16},
		{"Q5", graph.Hypercube(5), 20},
		{"Q6", graph.Hypercube(6), 24},
		{"ham64", graph.RandomHamCycles(64, 3, ds.NewRand(1)), 6},
		{"chain", chain, 2},
	}
	for _, c := range cases {
		for seed := uint64(0); seed < 8; seed++ {
			res, err := cdsdist.PackWithGuess(c.g, c.k, cds.Options{Seed: seed})
			if err != nil {
				panic(err)
			}
			h := fnv.New64a()
			for _, t := range res.Packing.Trees {
				fmt.Fprintf(h, "%d:%v;", t.Class, t.Tree.Vertices())
			}
			m := res.Meter
			fmt.Fprintf(b, "%s seed=%d size=%.6f raw=%d metered=%d charged=%d msgs=%d bits=%d phases=%d hash=%x\n",
				c.name, seed, res.Packing.Size(), m.RawRounds, m.MeteredRounds, m.ChargedRounds, m.Messages, m.Bits, m.Phases, h.Sum64())
		}
	}
}

// spanningFingerprints covers the Theorem 1.3 spanning-tree packers:
// S lines pin the centralized MWU engine (deterministic given the graph
// when no edge-sampling engages, so low-λ cases carry one line and only
// the sampled K40 case sweeps seeds), D lines the distributed E-CONGEST
// loop whose MST weights carry the footnote-6 1/(4n) quantization. The
// tree hash covers weights and parent-edge structure, so any change to
// iteration count, stop decision, tie-breaking, or quantization shows.
func spanningFingerprints(b *strings.Builder) {
	spanHash := func(p *stp.Packing) uint64 {
		h := fnv.New64a()
		for _, t := range p.Trees {
			fmt.Fprintf(h, "%.9f|", t.Weight)
			t.Tree.ForEachEdge(func(child, parent int) {
				fmt.Fprintf(h, "%d-%d;", child, parent)
			})
		}
		return h.Sum64()
	}
	type tc struct {
		name   string
		g      *graph.Graph
		lambda int
		eps    float64
	}
	for _, c := range []tc{
		{"K16", graph.Complete(16), 15, 0.1},
		{"Q5", graph.Hypercube(5), 5, 0.1},
		{"torus45", graph.Torus(4, 5), 4, 0.15},
	} {
		p, err := stp.Pack(c.g, stp.Options{KnownLambda: c.lambda, Epsilon: c.eps})
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(b, "S %s size=%.6f iters=%d trees=%d maxload=%.6f hash=%x\n",
			c.name, p.Size(), p.Stats.Iterations, p.Stats.DistinctTrees, p.Stats.MaxLoad, spanHash(p))
	}
	k40 := graph.Complete(40)
	for seed := uint64(0); seed < 3; seed++ {
		p, err := stp.Pack(k40, stp.Options{Seed: seed, KnownLambda: 39, Epsilon: 0.3, SampleThreshold: 0.5})
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(b, "S K40sampled seed=%d size=%.6f eta=%d packed=%d trees=%d hash=%x\n",
			seed, p.Size(), p.Stats.Subgraphs, p.Stats.SubgraphsPacked, p.Stats.DistinctTrees, spanHash(p))
	}
	// D lines are seed-invariant by design (the Borůvka outcome and the
	// meter totals are deterministic; the seed only permutes simulator
	// delivery order) — two seeds are pinned so that invariance is
	// itself part of the gate.
	for _, c := range []tc{
		{"Q4", graph.Hypercube(4), 4, 0.2},
		{"cycle12", graph.Cycle(12), 2, 0.2},
		{"torus34", graph.Torus(3, 4), 4, 0.25},
	} {
		for seed := uint64(0); seed < 2; seed++ {
			res, err := stpdist.Pack(c.g, stp.Options{Seed: seed, KnownLambda: c.lambda, Epsilon: c.eps})
			if err != nil {
				panic(err)
			}
			p, m := res.Packing, res.Meter
			fmt.Fprintf(b, "D %s seed=%d size=%.6f iters=%d trees=%d raw=%d metered=%d charged=%d msgs=%d bits=%d phases=%d hash=%x\n",
				c.name, seed, p.Size(), p.Stats.Iterations, p.Stats.DistinctTrees,
				m.RawRounds, m.MeteredRounds, m.ChargedRounds, m.Messages, m.Bits, m.Phases, spanHash(p))
		}
	}
}

// broadcastFingerprints covers the Corollary 1.4/1.5/A.1 schedulers.
func broadcastFingerprints(b *strings.Builder) {
	g := decomp.RandomHamCycles(256, 16, 2)
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(1))
	if err != nil {
		panic(err)
	}
	srcs := decomp.UniformSources(g.N(), 4*g.N(), 3)
	for seed := uint64(0); seed < 6; seed++ {
		multi, err := decomp.Broadcast(g, p, srcs, seed)
		if err != nil {
			panic(err)
		}
		single, err := decomp.SingleTreeBroadcast(g, srcs, decomp.VCongest, seed)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(b, "V seed=%d multi=%+v single=%+v\n", seed, multi, single)
	}
	k := decomp.Complete(16)
	sp, err := decomp.PackSpanningTrees(k, decomp.WithSeed(1), decomp.WithKnownConnectivity(15))
	if err != nil {
		panic(err)
	}
	ksrcs := decomp.UniformSources(k.N(), 4*k.N(), 3)
	for seed := uint64(0); seed < 6; seed++ {
		multi, err := decomp.BroadcastEdges(k, sp, ksrcs, seed)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(b, "E seed=%d multi=%+v\n", seed, multi)
	}
	gg := decomp.RandomHamCycles(128, 12, 3)
	gp, err := decomp.PackDominatingTrees(gg, decomp.WithSeed(1))
	if err != nil {
		panic(err)
	}
	for seed := uint64(0); seed < 3; seed++ {
		res, err := decomp.Gossip(gg, gp, seed)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(b, "G seed=%d res=%+v\n", seed, res)
	}
}

// faultFingerprints pins the fault-injection scheduler (F lines): each
// line is one faulted run over a fixed decomposition, executed through
// both a Scheduler handle and its Clone — a divergence panics rather
// than fingerprinting garbage, so the clone-parity guarantee of faulted
// runs is enforced right here. Healthy lines above must not move when
// fault behavior changes, and vice versa.
func faultFingerprints(b *strings.Builder) {
	runBoth := func(s *decomp.Scheduler, srcs []int, seed uint64, plan decomp.FaultPlan) decomp.FaultResult {
		res, err := s.RunFaulted(decomp.Demand{Sources: srcs}, seed, plan)
		if err != nil {
			panic(err)
		}
		cres, err := s.Clone().RunFaulted(decomp.Demand{Sources: srcs}, seed, plan)
		if err != nil {
			panic(err)
		}
		if res != cres {
			panic(fmt.Sprintf("fault fingerprint: clone diverged: %+v vs %+v", res, cres))
		}
		return res
	}

	// E-CONGEST over the same K16 spanning packing as the E lines: an
	// edge-kill sweep from well below the connectivity bound (λ=15) to
	// beyond it.
	k := decomp.Complete(16)
	sp, err := decomp.PackSpanningTrees(k, decomp.WithSeed(1), decomp.WithKnownConnectivity(15))
	if err != nil {
		panic(err)
	}
	es, err := decomp.NewEdgeBroadcastScheduler(k, sp)
	if err != nil {
		panic(err)
	}
	ksrcs := decomp.UniformSources(k.N(), 4*k.N(), 3)
	for _, kills := range []int{2, 6, 14} {
		for seed := uint64(0); seed < 2; seed++ {
			plan := decomp.FaultPlan{Round: 1, RandomEdges: kills, Seed: 40 + seed, MaxRetries: 2}
			res := runBoth(es, ksrcs, seed, plan)
			fmt.Fprintf(b, "F E K16 kill=%d seed=%d res=%+v\n", kills, seed, res)
		}
	}

	// V-CONGEST over the same ham-cycles expander family as the G lines:
	// mixed vertex+edge kills against the dominating-tree packing.
	gg := decomp.RandomHamCycles(128, 12, 3)
	gp, err := decomp.PackDominatingTrees(gg, decomp.WithSeed(1))
	if err != nil {
		panic(err)
	}
	vs, err := decomp.NewBroadcastScheduler(gg, gp)
	if err != nil {
		panic(err)
	}
	vsrcs := decomp.UniformSources(gg.N(), 2*gg.N(), 3)
	for _, kill := range []struct{ v, e int }{{1, 2}, {3, 6}, {6, 12}} {
		for seed := uint64(0); seed < 2; seed++ {
			plan := decomp.FaultPlan{Round: 1, RandomVertices: kill.v, RandomEdges: kill.e, Seed: 60 + seed, MaxRetries: 2}
			res := runBoth(vs, vsrcs, seed, plan)
			fmt.Fprintf(b, "F V ham128 killv=%d kille=%d seed=%d res=%+v\n", kill.v, kill.e, seed, res)
		}
	}
}
