package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the module's packages with a shared
// file set. Module-local import paths resolve straight to directories
// under the module root (the module has no external dependencies);
// standard-library imports go through the compiler's source importer,
// so the whole pipeline needs nothing beyond GOROOT source.
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory (holds go.mod)
	modPath string // module path from go.mod ("repro")
	std     types.Importer
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader builds a loader for the module containing dir (walking up
// to the nearest go.mod). An empty dir starts from the working
// directory.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// ModPath returns the module path from go.mod.
func (l *Loader) ModPath() string { return l.modPath }

// LoadAll walks the module and loads every package (directories named
// testdata, hidden directories, and test files are skipped), returning
// them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	paths, err := l.walk()
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walk returns the sorted import paths of every package directory in
// the module.
func (l *Loader) walk() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if !l.hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.modPath)
		} else {
			paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isLintedGoFile(e.Name()) {
			return true
		}
	}
	return false
}

func isLintedGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// Load parses and type-checks one module-local package by import path
// (memoized; the package's module-local imports load recursively).
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("lint: %s is not in module %s", importPath, l.modPath)
	}
	return l.LoadDir(dir, importPath)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(importPath string) (string, bool) {
	if importPath == l.modPath {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(importPath, l.modPath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Tests use it to load fixture packages from testdata
// (which the module walk deliberately skips).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var (
		files []*ast.File
		lines = map[string][]string{}
	)
	for _, e := range entries {
		if e.IsDir() || !isLintedGoFile(e.Name()) {
			continue
		}
		filename := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		lines[filename] = strings.Split(string(src), "\n")
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.importPkg(path)
		}),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, firstErr)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Lines: lines,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPkg resolves one import for the type checker: module-local
// paths load through the loader, everything else is standard library
// and goes through the source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ResolvePatterns maps cmd/lint package arguments to module import
// paths. Accepted forms: "./..." or "all" (every package), "./x/y" and
// "x/y" (directory relative to the module root), and full import paths
// like "repro/internal/graph".
func (l *Loader) ResolvePatterns(args []string) ([]string, error) {
	if len(args) == 0 {
		return l.walk()
	}
	var paths []string
	seen := map[string]bool{}
	for _, arg := range args {
		var resolved []string
		switch {
		case arg == "./..." || arg == "all":
			all, err := l.walk()
			if err != nil {
				return nil, err
			}
			resolved = all
		case arg == l.modPath || strings.HasPrefix(arg, l.modPath+"/"):
			resolved = []string{arg}
		default:
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(arg, "./")))
			if rel == "." {
				resolved = []string{l.modPath}
			} else if strings.HasPrefix(rel, "..") || filepath.IsAbs(rel) {
				return nil, fmt.Errorf("lint: package %q is outside the module", arg)
			} else {
				resolved = []string{l.modPath + "/" + rel}
			}
		}
		for _, p := range resolved {
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	return paths, nil
}
