package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newTestLoader builds a loader rooted at this repository (the test
// binary runs inside internal/lint, so the go.mod walk-up finds it).
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// loadFixture loads one fixture package from testdata/src under a
// synthetic fixture/ import path (the module walk skips testdata, so
// fixtures are only reachable this way).
func loadFixture(t *testing.T, l *Loader, rel string) *Package {
	t.Helper()
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", filepath.FromSlash(rel)), "fixture/"+rel)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", rel, err)
	}
	return pkg
}

// fixtureFingerprinted treats every fixture package as fingerprinted so
// the determinism analyzers run over them.
func fixtureFingerprinted(path string) bool { return strings.HasPrefix(path, "fixture/") }

// fixtureDocScoped doc-scopes only the pkgdoc fixtures: the other
// fixtures deliberately leave their exported decls undocumented and
// must not pick up pkgdoc findings their want markers don't expect.
func fixtureDocScoped(path string) bool { return strings.HasPrefix(path, "fixture/pkgdoc") }

type markerKey struct {
	file     string
	line     int
	analyzer string
}

// wantMarkers collects the `// want analyzer…` expectations from a
// fixture package: a comment of the form `// want a b` (standalone,
// trailing, or embedded after another comment's text) expects one
// finding per listed analyzer on its line.
func wantMarkers(pkg *Package) map[markerKey]int {
	want := map[markerKey]int{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				var rest string
				if r, ok := strings.CutPrefix(c.Text, "// want "); ok {
					rest = r
				} else if i := strings.Index(c.Text, " // want "); i >= 0 {
					rest = c.Text[i+len(" // want "):]
				} else {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, name := range strings.Fields(rest) {
					want[markerKey{pos.Filename, pos.Line, name}]++
				}
			}
		}
	}
	return want
}

// TestFixtures runs the full suite over every fixture package and
// requires the findings to match the in-file want markers exactly.
func TestFixtures(t *testing.T) {
	l := newTestLoader(t)
	fixtures := []string{
		"maprange/pos", "maprange/neg",
		"nondetsource/pos", "nondetsource/neg",
		"guardedfield/pos", "guardedfield/neg",
		"allowdirective/pos", "allowdirective/neg",
		"pkgdoc/pos", "pkgdoc/neg",
	}
	for _, name := range fixtures {
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			pkg := loadFixture(t, l, name)
			diags := Run(Config{IsFingerprinted: fixtureFingerprinted, IsDocScoped: fixtureDocScoped}, []*Package{pkg})
			got := map[markerKey]int{}
			for _, d := range diags {
				if d.Pos.Filename == "" || d.Pos.Line <= 0 {
					t.Errorf("diagnostic without position: %v", d)
				}
				if d.Hint == "" {
					t.Errorf("diagnostic without fix hint: %v", d)
				}
				got[markerKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]++
			}
			want := wantMarkers(pkg)
			for k, n := range want {
				if got[k] != n {
					t.Errorf("%s:%d: want %d %s finding(s), got %d", k.file, k.line, n, k.analyzer, got[k])
				}
			}
			for k, n := range got {
				if want[k] == 0 {
					t.Errorf("%s:%d: unexpected %s finding (%d)", k.file, k.line, k.analyzer, n)
				}
			}
			if t.Failed() {
				for _, d := range diags {
					t.Logf("got: %v", d)
				}
			}
		})
	}
}

// TestNegativeFixturesAreClean pins the non-firing half of the
// acceptance bar explicitly: every neg fixture must produce zero
// findings.
func TestNegativeFixturesAreClean(t *testing.T) {
	l := newTestLoader(t)
	for _, name := range []string{"maprange/neg", "nondetsource/neg", "guardedfield/neg", "allowdirective/neg", "pkgdoc/neg"} {
		pkg := loadFixture(t, l, name)
		if diags := Run(Config{IsFingerprinted: fixtureFingerprinted, IsDocScoped: fixtureDocScoped}, []*Package{pkg}); len(diags) != 0 {
			t.Errorf("%s: want clean, got %d finding(s): %v", name, len(diags), diags)
		}
	}
}

// TestRepoIsClean is the in-tree gate behind `make lint`: the whole
// module must lint clean — every real finding has been fixed or carries
// a justified //repro:allow, and no directive has gone stale.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	l := newTestLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 25 {
		t.Fatalf("LoadAll found only %d packages — the module walk is broken", len(pkgs))
	}
	diags := Run(Config{}, pkgs)
	for _, d := range diags {
		t.Errorf("%v", d)
	}
}

// TestFingerprintedScope pins the determinism analyzers to the packages
// whose output FINGERPRINT.txt pins.
func TestFingerprintedScope(t *testing.T) {
	for _, path := range []string{
		"repro/internal/graph", "repro/internal/sim", "repro/internal/cast",
		"repro/internal/cds", "repro/internal/cdsdist", "repro/internal/stp",
		"repro/internal/stpdist", "repro/internal/ds", "repro/internal/mst",
		"repro/internal/dist", "repro/internal/flow",
	} {
		if !DefaultFingerprinted(path) {
			t.Errorf("%s must be fingerprinted", path)
		}
	}
	for _, path := range []string{"repro", "repro/internal/serve", "repro/internal/lint", "repro/internal/obs", "repro/cmd/serve"} {
		if DefaultFingerprinted(path) {
			t.Errorf("%s must not be fingerprinted", path)
		}
	}
}

// TestObsCarveOut pins the observability carve-out with one fixture
// loaded under two identities: the identical time.Since call passes
// when the package is repro/internal/obs (wall-clock is that layer's
// purpose) and still fails when it sits in a fingerprinted package.
func TestObsCarveOut(t *testing.T) {
	dir := filepath.Join("testdata", "src", "nondetsource", "obsclock")
	for _, tc := range []struct {
		path string
		want int
	}{
		{"repro/internal/obs", 0},
		{"repro/internal/stp", 1},
	} {
		// A fresh loader per identity: LoadDir memoizes by import path,
		// and the second load must not see the first's package.
		pkg, err := newTestLoader(t).LoadDir(dir, tc.path)
		if err != nil {
			t.Fatalf("LoadDir as %s: %v", tc.path, err)
		}
		diags := Run(Config{Analyzers: []*Analyzer{NonDetSource}}, []*Package{pkg})
		if len(diags) != tc.want {
			t.Errorf("as %s: want %d finding(s), got %d: %v", tc.path, tc.want, len(diags), diags)
		}
	}
}

// TestDocScope pins the doc-comment analyzer to the API-surface
// packages (and keeps it away from everything else).
func TestDocScope(t *testing.T) {
	for _, path := range []string{"repro", "repro/internal/serve"} {
		if !DefaultDocScoped(path) {
			t.Errorf("%s must be doc-scoped", path)
		}
	}
	for _, path := range []string{"repro/internal/graph", "repro/internal/lint", "repro/cmd/serve", "fixture/maprange/pos"} {
		if DefaultDocScoped(path) {
			t.Errorf("%s must not be doc-scoped", path)
		}
	}
}

// TestFingerprintedOnlySkipsOtherPackages runs the suite over a firing
// fixture with the default predicate: the determinism analyzers must
// not run there at all (and their allow directives must not be
// reported stale, because the analyzer never ran).
func TestFingerprintedOnlySkipsOtherPackages(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "maprange/pos")
	for _, d := range Run(Config{}, []*Package{pkg}) {
		t.Errorf("unexpected finding outside fingerprinted scope: %v", d)
	}
}

// TestAnalyzerNames keeps the literal name list (needed to break the
// All <-> AllowDirective initialization cycle) in sync with All.
func TestAnalyzerNames(t *testing.T) {
	if len(All) != len(analyzerNames) {
		t.Fatalf("All has %d analyzers, analyzerNames %d", len(All), len(analyzerNames))
	}
	for i, a := range All {
		if a.Name != analyzerNames[i] {
			t.Errorf("All[%d] = %q, analyzerNames[%d] = %q", i, a.Name, i, analyzerNames[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
	}
	known := KnownAnalyzers()
	for i := 1; i < len(known); i++ {
		if known[i-1] >= known[i] {
			t.Errorf("KnownAnalyzers not sorted: %v", known)
		}
	}
}

// TestDiagnosticString pins the file:line:col rendering cmd/lint prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "maprange",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "range over map m",
		Hint:     "sort the keys",
	}
	want := "x.go:3:7: maprange: range over map m (fix: sort the keys)"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestResolvePatterns covers the cmd/lint argument forms.
func TestResolvePatterns(t *testing.T) {
	l := newTestLoader(t)
	for _, tc := range []struct {
		args []string
		want string // an import path that must be present
	}{
		{[]string{"./internal/graph"}, "repro/internal/graph"},
		{[]string{"internal/graph"}, "repro/internal/graph"},
		{[]string{"repro/internal/graph"}, "repro/internal/graph"},
		{[]string{"."}, "repro"},
		{[]string{"./..."}, "repro/internal/lint"},
		{[]string{"all"}, "repro/cmd/lint"},
		{nil, "repro/internal/serve"},
	} {
		got, err := l.ResolvePatterns(tc.args)
		if err != nil {
			t.Errorf("ResolvePatterns(%v): %v", tc.args, err)
			continue
		}
		found := false
		for _, p := range got {
			if p == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("ResolvePatterns(%v) = %v, missing %s", tc.args, got, tc.want)
		}
	}
	// Duplicates collapse.
	got, err := l.ResolvePatterns([]string{"./internal/graph", "repro/internal/graph"})
	if err != nil || len(got) != 1 {
		t.Errorf("duplicate patterns: got %v, %v", got, err)
	}
	// Paths outside the module are rejected.
	if _, err := l.ResolvePatterns([]string{"../elsewhere"}); err == nil {
		t.Error("ResolvePatterns accepted a path outside the module")
	}
}

// TestLoaderErrors covers the loader failure paths with throwaway
// modules.
func TestLoaderErrors(t *testing.T) {
	// No go.mod anywhere above the directory.
	orphan := t.TempDir()
	if _, err := NewLoader(orphan); err == nil {
		// A go.mod above the temp dir (e.g. in /tmp) makes this
		// environment-dependent; only fail when the walk clearly
		// misbehaved by resolving to the temp dir itself.
		t.Log("NewLoader found a go.mod above the temp dir; skipping")
	}

	// A go.mod without a module line.
	broken := t.TempDir()
	mustWrite(t, filepath.Join(broken, "go.mod"), "go 1.24\n")
	if _, err := NewLoader(broken); err == nil {
		t.Error("NewLoader accepted a go.mod without a module line")
	}

	// A package that does not parse.
	bad := t.TempDir()
	mustWrite(t, filepath.Join(bad, "go.mod"), "module tmp\n\ngo 1.24\n")
	mustWrite(t, filepath.Join(bad, "bad.go"), "package bad\nfunc {")
	l, err := NewLoader(bad)
	if err != nil {
		t.Fatalf("NewLoader(bad): %v", err)
	}
	if _, err := l.Load("tmp"); err == nil {
		t.Error("Load accepted a package that does not parse")
	}

	// A package that does not type-check.
	ill := t.TempDir()
	mustWrite(t, filepath.Join(ill, "go.mod"), "module tmp2\n\ngo 1.24\n")
	mustWrite(t, filepath.Join(ill, "ill.go"), "package ill\n\nvar x undefined\n")
	l2, err := NewLoader(ill)
	if err != nil {
		t.Fatalf("NewLoader(ill): %v", err)
	}
	if _, err := l2.Load("tmp2"); err == nil {
		t.Error("Load accepted a package that does not type-check")
	}

	// Import paths outside the module.
	if _, err := l2.Load("other/module"); err == nil {
		t.Error("Load accepted an import path outside the module")
	}

	// A directory with no Go files.
	if _, err := l2.LoadDir(t.TempDir(), "tmp2/empty"); err == nil {
		t.Error("LoadDir accepted a directory with no Go files")
	}
}

// TestLoaderResolvesLocalImports covers the recursive module-local
// import path (package a imports package b of the same throwaway
// module) and load memoization.
func TestLoaderResolvesLocalImports(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, filepath.Join(root, "go.mod"), "module tmp3\n\ngo 1.24\n")
	mustWrite(t, filepath.Join(root, "b", "b.go"), "package b\n\n// B is exported.\nfunc B() int { return 1 }\n")
	mustWrite(t, filepath.Join(root, "a", "a.go"), "package a\n\nimport \"tmp3/b\"\n\n// A is exported.\nfunc A() int { return b.B() }\n")
	l, err := NewLoader(filepath.Join(root, "a"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if got := l.Root(); got != root {
		// macOS tempdirs resolve through symlinks; compare resolved.
		r1, _ := filepath.EvalSymlinks(got)
		r2, _ := filepath.EvalSymlinks(root)
		if r1 != r2 {
			t.Fatalf("Root() = %s, want %s", got, root)
		}
	}
	if got := l.ModPath(); got != "tmp3" {
		t.Fatalf("ModPath() = %s, want tmp3", got)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("LoadAll = %d packages, want 2", len(pkgs))
	}
	again, err := l.Load("tmp3/a")
	if err != nil {
		t.Fatalf("Load(tmp3/a): %v", err)
	}
	if again != pkgs[0] && again != pkgs[1] {
		t.Error("Load after LoadAll did not return the memoized package")
	}
	if diags := Run(Config{}, pkgs); len(diags) != 0 {
		t.Errorf("throwaway module should lint clean, got %v", diags)
	}
}

// TestRunSubsetStillPolicesAllows documents that directive policing
// lives in the runner: even running only maprange, a stale maprange
// allow is reported (under the allowdirective name).
func TestRunSubsetStillPolicesAllows(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "allowdirective/pos")
	diags := Run(Config{
		Analyzers:       []*Analyzer{MapRange},
		IsFingerprinted: fixtureFingerprinted,
	}, []*Package{pkg})
	var stale, fired int
	for _, d := range diags {
		switch d.Analyzer {
		case AllowDirective.Name:
			stale++
		case MapRange.Name:
			fired++
		}
	}
	if stale != 1 || fired != 1 {
		t.Errorf("want 1 stale directive + 1 maprange finding, got stale=%d fired=%d: %v", stale, fired, diags)
	}
}

// TestLineText covers the raw-source accessor boundaries.
func TestLineText(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "maprange/pos")
	file := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	if got := pkg.LineText(file, 1); !strings.Contains(got, "Package pos") {
		t.Errorf("LineText line 1 = %q", got)
	}
	if got := pkg.LineText(file, 0); got != "" {
		t.Errorf("LineText line 0 = %q, want empty", got)
	}
	if got := pkg.LineText(file, 1<<20); got != "" {
		t.Errorf("LineText out of range = %q, want empty", got)
	}
	if got := pkg.LineText("nosuch.go", 1); got != "" {
		t.Errorf("LineText unknown file = %q, want empty", got)
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRepoLint measures one full-module lint pass (load +
// type-check + all analyzers), the cost `make lint` adds to CI.
func BenchmarkRepoLint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := NewLoader("")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if diags := Run(Config{}, pkgs); len(diags) != 0 {
			b.Fatal(fmt.Sprint(diags))
		}
	}
}
