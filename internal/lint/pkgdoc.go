package lint

import (
	"go/ast"
	"go/token"
)

// PkgDoc flags exported declarations without doc comments (and packages
// without a package comment) in the doc-scoped packages — the public
// API surfaces (the root decomp facade and internal/serve) whose
// callers live outside the package and have only the doc comments to
// learn the invariants they must uphold. Genuinely self-explanatory
// exceptions are annotated //repro:allow pkgdoc with the justification
// spelled out.
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc: "flags exported types, functions, methods, and package clauses " +
		"missing doc comments in the API-surface packages: callers outside " +
		"the package learn invariants only from docs",
	DocScopedOnly: true,
	Run:           runPkgDoc,
}

// runPkgDoc inspects top-level declarations only; struct fields and
// interface methods are left to the package author's judgment. A doc
// comment is a comment group with actual text: CommentGroup.Text strips
// `//name:` directive lines, so a bare //repro:allow above a
// declaration does not count as documentation (it suppresses the
// finding through the normal directive path instead), and trailing
// same-line comments are not docs at all (godoc ignores them).
func runPkgDoc(p *Pass) {
	hasPkgDoc := false
	for _, f := range p.Pkg.Files {
		if f.Doc.Text() != "" {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(p.Pkg.Files) > 0 {
		// Reported once, on the first file's package clause (files are
		// sorted by name, so the position is stable).
		name := p.Pkg.Files[0].Name
		p.Reportf(name.Pos(),
			"add a package comment (or justify with //repro:allow pkgdoc <reason>)",
			"package %s has no package comment", name.Name)
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc.Text() != "" || !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					if !receiverExported(d.Recv) {
						continue // method reachable only inside the package
					}
					p.Reportf(d.Name.Pos(),
						"document what the method does and any invariant its caller must uphold",
						"exported method %s has no doc comment", d.Name.Name)
					continue
				}
				p.Reportf(d.Name.Pos(),
					"document what the function does and any invariant its caller must uphold",
					"exported function %s has no doc comment", d.Name.Name)
			case *ast.GenDecl:
				if d.Tok == token.IMPORT {
					continue
				}
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && d.Doc.Text() == "" && sp.Doc.Text() == "" {
							p.Reportf(sp.Name.Pos(),
								"document the type (or its declaration group)",
								"exported type %s has no doc comment", sp.Name.Name)
						}
					case *ast.ValueSpec:
						if d.Doc.Text() != "" || sp.Doc.Text() != "" {
							continue
						}
						for _, n := range sp.Names {
							if n.IsExported() {
								p.Reportf(n.Pos(),
									"document the value (or its declaration group)",
									"exported %s %s has no doc comment", d.Tok, n.Name)
								break // one finding per spec, not per name
							}
						}
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver base type is
// exported (methods on unexported types are unreachable outside the
// package, so their docs are the package author's business).
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver: T[P]
			t = x.X
		case *ast.IndexListExpr: // generic receiver: T[P1, P2]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true // unrecognized shape: err on the side of checking
		}
	}
}
