package lint

import (
	"go/token"
	"strings"
)

// allowPrefix is the suppression-directive marker. Like all Go tool
// directives it must follow the `//` immediately — `// repro:allow`
// (with a space) is an ordinary comment, and the allowdirective
// analyzer flags that near-miss as a probable typo.
const allowPrefix = "//repro:allow"

// allow is one parsed //repro:allow directive.
type allow struct {
	analyzer string // analyzer name the directive names (may be unknown)
	reason   string // free-text justification (may be empty: linted)
	file     string
	line     int       // line the directive sits on
	target   int       // line whose findings it suppresses
	pos      token.Pos // position of the directive comment
	used     bool      // set when a finding was suppressed by it
}

// parseAllows extracts every //repro:allow directive in the package.
// An end-of-line directive suppresses findings on its own line; a
// directive standing alone on its line suppresses findings on the next
// line (directives stack: a standalone directive immediately above
// another directive shares that directive's target).
func parseAllows(pkg *Package) []*allow {
	var out []*allow
	for _, f := range pkg.Files {
		var fileAllows []*allow
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // //repro:allowsomething — not this directive
				}
				pos := pkg.Fset.Position(c.Slash)
				// A nested // starts a trailing remark (test want-markers,
				// asides), not part of the reason.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				al := &allow{
					file: pos.Filename,
					line: pos.Line,
					pos:  c.Slash,
				}
				if len(fields) > 0 {
					al.analyzer = fields[0]
					al.reason = strings.Join(fields[1:], " ")
				}
				fileAllows = append(fileAllows, al)
			}
		}
		// Resolve targets bottom-up so stacked standalone directives
		// chain to the first non-directive line below them.
		byLine := map[int]*allow{}
		for _, al := range fileAllows {
			byLine[al.line] = al
		}
		for i := len(fileAllows) - 1; i >= 0; i-- {
			al := fileAllows[i]
			if inlineDirective(pkg, al) {
				al.target = al.line
				continue
			}
			al.target = al.line + 1
			if next, ok := byLine[al.line+1]; ok && next.target != 0 {
				al.target = next.target
			}
		}
		out = append(out, fileAllows...)
	}
	return out
}

// inlineDirective reports whether the directive shares its line with
// code (anything non-blank before the comment marker).
func inlineDirective(pkg *Package, al *allow) bool {
	text := pkg.LineText(al.file, al.line)
	idx := strings.Index(text, allowPrefix)
	if idx < 0 {
		return false
	}
	return strings.TrimSpace(text[:idx]) != ""
}

// AllowDirective lints the suppression directives themselves: a
// directive must name a known analyzer and carry a reason, and the
// spaced near-miss `// repro:allow` is flagged as a typo. The runner
// adds the fourth check — a directive whose analyzer ran but that
// suppressed nothing is stale and reported there.
var AllowDirective = &Analyzer{
	Name: "allowdirective",
	Doc: "validates //repro:allow suppression directives: the analyzer " +
		"name must exist, a reason is mandatory, near-miss spellings are " +
		"flagged, and (via the runner) a directive that suppresses nothing " +
		"is an error",
	Run: runAllowDirective,
}

func runAllowDirective(p *Pass) {
	parsed := map[token.Pos]bool{}
	for _, al := range parseAllows(p.Pkg) {
		parsed[al.pos] = true
		switch {
		case al.analyzer == "":
			p.Report(al.pos,
				"//repro:allow without an analyzer name",
				"write //repro:allow <analyzer> <reason> with one of: "+strings.Join(KnownAnalyzers(), ", "))
		case !knownAnalyzer(al.analyzer):
			p.Reportf(al.pos,
				"known analyzers: "+strings.Join(KnownAnalyzers(), ", "),
				"//repro:allow names unknown analyzer %q", al.analyzer)
		case al.reason == "":
			p.Reportf(al.pos,
				"append a justification: //repro:allow "+al.analyzer+" <why this finding is safe>",
				"//repro:allow %s is missing its reason", al.analyzer)
		}
	}
	// Near-miss spellings (`// repro:allow`, `//repro:allowtypo …`)
	// never reach parseAllows — they are ordinary comments — so scan for
	// them separately: a directive that does not parse is worse than one
	// that fails validation, because it silently suppresses nothing.
	for _, f := range p.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				trimmed := strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), " \t")
				if !strings.HasPrefix(trimmed, "repro:allow") || parsed[c.Slash] {
					continue
				}
				p.Report(c.Slash,
					"malformed suppression directive (it will not suppress anything)",
					"spell it exactly //repro:allow <analyzer> <reason>, no space after //")
			}
		}
	}
}

// knownAnalyzer reports whether name is one of the suite's analyzers.
func knownAnalyzer(name string) bool {
	for _, n := range analyzerNames {
		if n == name {
			return true
		}
	}
	return false
}
