package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedField enforces the `// guards a, b` convention on mutex
// fields: a struct field whose mutex carries that comment may only be
// read under the guard's Lock/RLock and written under Lock, checked per
// enclosing function. This is the torn-snapshot bug class PR 7 fixed in
// the chaos stats (delivered/expected read without the pair's mutex).
//
// The check is flow-insensitive by design: a function qualifies by
// containing a matching lock call on the same base expression anywhere
// in its body (deferred unlocks and early returns need no modeling),
// and functions whose name ends in "Locked" are assumed to be called
// with the guard held. Construction through composite literals is
// naturally exempt — literal keys are not field selector expressions.
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc: "flags reads/writes of a `// guards`-annotated mutex-protected " +
		"struct field in functions that never lock the guard (writes " +
		"additionally require the exclusive lock, not RLock)",
	Run: runGuardedField,
}

// guardInfo ties one guarded field to its mutex.
type guardInfo struct {
	guard *types.Var // the mutex field
	rw    bool       // guard is a sync.RWMutex
}

func runGuardedField(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(p, guards, fd)
		}
	}
}

// collectGuards parses every `// guards …` field comment in the
// package's struct types, validating the convention as it goes: the
// annotated field must be a single sync.Mutex/RWMutex, and every listed
// name must be a sibling field.
func collectGuards(p *Pass) map[*types.Var]guardInfo {
	guards := map[*types.Var]guardInfo{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := p.Pkg.Info.Defs[ts.Name]
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			tstruct, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			collectStructGuards(p, st, tstruct, guards)
			return true
		})
	}
	return guards
}

// collectStructGuards reads one struct declaration. Field objects are
// matched positionally: each name in a field declaration (or the one
// implicit name of an embedded field) corresponds to the next
// types.Struct field.
func collectStructGuards(p *Pass, st *ast.StructType, tstruct *types.Struct, guards map[*types.Var]guardInfo) {
	byName := map[string]*types.Var{}
	for i := 0; i < tstruct.NumFields(); i++ {
		fv := tstruct.Field(i)
		byName[fv.Name()] = fv
	}
	idx := 0
	for _, field := range st.Fields.List {
		width := len(field.Names)
		if width == 0 {
			width = 1 // embedded field
		}
		names, ok := guardComment(field)
		if !ok {
			idx += width
			continue
		}
		guard := tstruct.Field(idx)
		if width > 1 {
			p.Report(field.Pos(),
				"a // guards comment must annotate exactly one mutex field",
				"declare each guard mutex on its own line")
			idx += width
			continue
		}
		rw, isMutex := mutexKind(guard.Type())
		if !isMutex {
			p.Reportf(field.Pos(),
				"// guards only applies to sync.Mutex / sync.RWMutex fields",
				"// guards comment on non-mutex field %s", guard.Name())
			idx += width
			continue
		}
		if len(names) == 0 {
			p.Report(field.Pos(),
				"list the sibling fields the mutex protects: // guards a, b",
				"// guards comment names no fields")
		}
		for _, name := range names {
			fv, ok := byName[name]
			if !ok {
				p.Reportf(field.Pos(),
					"// guards must list sibling fields of the same struct",
					"// guards names unknown field %q", name)
				continue
			}
			guards[fv] = guardInfo{guard: guard, rw: rw}
		}
		idx += width
	}
}

// guardComment extracts the guarded field names from a field's trailing
// or doc comment line of the form "guards a, b". The second result is
// false when the field carries no guards comment at all.
func guardComment(field *ast.Field) ([]string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "guards ")
			if !ok {
				continue
			}
			// A nested // starts a trailing remark, not a field name.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			var names []string
			for _, tok := range strings.FieldsFunc(rest, func(r rune) bool {
				return r == ',' || r == ' ' || r == '\t'
			}) {
				names = append(names, strings.TrimSuffix(tok, "."))
			}
			return names, true
		}
	}
	return nil, false
}

// mutexKind reports whether t is sync.Mutex or sync.RWMutex (rw true
// for the latter).
func mutexKind(t types.Type) (rw, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// lockSet records which guards a function locks, keyed by the guard
// field object and the printed base expression it is locked through
// ("s", "e", "s.pairs", …).
type lockSet map[lockKey]lockState

type lockKey struct {
	guard *types.Var
	base  string
}

type lockState struct{ exclusive, shared bool }

// checkFunc verifies every guarded-field access in one top-level
// function. Lock calls anywhere in the function body (including inside
// closures) qualify the whole function — flow-insensitive, so a lock
// taken in a deferred closure or before a retry loop never false-
// positives; the cost is accepting rare lock-then-unlock-then-access
// patterns, which the race detector still covers.
func checkFunc(p *Pass, guards map[*types.Var]guardInfo, fd *ast.FuncDecl) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // convention: callers hold the guard
	}
	locks := collectLocks(p, guards, fd.Body)
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := p.Pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fv, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		info, ok := guards[fv]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		state := locks[lockKey{info.guard, base}]
		write := isWrite(stack)
		switch {
		case write && !state.exclusive:
			hint := "lock " + base + "." + info.guard.Name() + " before writing (or rename the function with a Locked suffix)"
			if state.shared {
				hint = "upgrade to " + base + "." + info.guard.Name() + ".Lock(): RLock only licenses reads"
			}
			p.Reportf(sel.Sel.Pos(), hint,
				"write to %s.%s without holding %s.%s",
				base, fv.Name(), base, info.guard.Name())
		case !write && !state.exclusive && !state.shared:
			p.Reportf(sel.Sel.Pos(),
				"lock "+base+"."+info.guard.Name()+" around the read (or rename the function with a Locked suffix)",
				"read of %s.%s without holding %s.%s",
				base, fv.Name(), base, info.guard.Name())
		}
		return true
	})
}

// collectLocks finds every guard Lock/RLock call in body. Two call
// shapes are recognized: the explicit x.mu.Lock(), and the promoted
// x.Lock() when the mutex is embedded in x's struct.
func collectLocks(p *Pass, guards map[*types.Var]guardInfo, body *ast.BlockStmt) lockSet {
	guardFields := map[*types.Var]bool{}
	for _, info := range guards {
		guardFields[info.guard] = true
	}
	locks := lockSet{}
	record := func(guard *types.Var, base, method string) {
		key := lockKey{guard, base}
		state := locks[key]
		switch method {
		case "Lock":
			state.exclusive = true
		case "RLock":
			state.shared = true
		}
		locks[key] = state
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		if method != "Lock" && method != "RLock" {
			return true
		}
		// Explicit form: base.guard.Lock().
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if selection, ok := p.Pkg.Info.Selections[inner]; ok && selection.Kind() == types.FieldVal {
				if fv, ok := selection.Obj().(*types.Var); ok && guardFields[fv] {
					record(fv, types.ExprString(inner.X), method)
					return true
				}
			}
		}
		// Promoted form: base.Lock() through an embedded guard mutex.
		if selection, ok := p.Pkg.Info.Selections[sel]; ok && len(selection.Index()) > 1 {
			recv := selection.Recv()
			if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			if tstruct, isStruct := recv.Underlying().(*types.Struct); isStruct {
				fv := tstruct.Field(selection.Index()[0])
				if guardFields[fv] {
					record(fv, types.ExprString(sel.X), method)
				}
			}
		}
		return true
	})
	return locks
}

// isWrite reports whether the selector at the top of the stack is in a
// write position: assignment target, ++/--, address-taken, or the map
// argument of delete — including through index, dereference, paren, and
// nested-field chains.
func isWrite(stack []ast.Node) bool {
	child := stack[len(stack)-1].(ast.Expr)
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
		case *ast.StarExpr:
			child = parent
		case *ast.IndexExpr:
			if parent.X != child {
				return false // index expression, not the indexed value
			}
			child = parent
		case *ast.SelectorExpr:
			if parent.X != child {
				return false
			}
			child = parent // writing x.f.g mutates the value held in f
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return parent.X == child
		case *ast.UnaryExpr:
			return parent.Op == token.AND && parent.X == child
		case *ast.CallExpr:
			if id, ok := parent.Fun.(*ast.Ident); ok && id.Name == "delete" &&
				len(parent.Args) > 0 && parent.Args[0] == child {
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}
