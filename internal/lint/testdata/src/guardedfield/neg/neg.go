// Package neg holds guardedfield negative fixtures: correctly locked
// accesses in every shape the analyzer accepts — explicit locks,
// deferred unlocks, RLock-covered reads, the Locked-suffix convention,
// promoted locks on an embedded mutex, constructors using composite
// literals, and method values (which are not field accesses).
package neg

import "sync"

type counter struct {
	mu sync.Mutex // guards n, m
	n  int
	m  map[string]int
}

// newCounter initializes guarded fields through a composite literal:
// no selector expression, no finding — construction precedes sharing.
func newCounter() *counter {
	return &counter{m: map[string]int{}}
}

func (c *counter) add(v int) {
	c.mu.Lock()
	c.n += v
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) set(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = c.n
	delete(c.m, k)
}

// addLocked relies on the Locked-suffix convention: the caller holds
// c.mu.
func (c *counter) addLocked(v int) { c.n += v }

// methodValue captures a bound method, not a field: selections of kind
// MethodVal are ignored.
func (c *counter) methodValue() func() int { return c.get }

// shadowed documents the accepted limit of the flow-insensitive base
// match: the closure parameter shadows the receiver, but both print as
// "c", so the outer lock qualifies the inner access. The race detector,
// not the linter, owns this case.
func (c *counter) shadowed(other *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func(c *counter) int { return c.n }
	return f(c)
}

type rstats struct {
	rw    sync.RWMutex // guards total
	total int
}

func (s *rstats) read() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.total
}

func (s *rstats) write(v int) {
	s.rw.Lock()
	defer s.rw.Unlock()
	s.total = v
}

// embedded guards its field through an embedded mutex: the promoted
// e.Lock() call form must qualify accesses of e.v.
type embedded struct {
	sync.Mutex // guards v
	v          int
}

func (e *embedded) bump() {
	e.Lock()
	defer e.Unlock()
	e.v++
}

// outerStats guards a nested struct: a write to pair.a mutates pair,
// so the climb through the nested selector must still see the lock.
type outerStats struct {
	mu   sync.Mutex // guards pair
	pair struct{ a, b int }
}

func (o *outerStats) bump() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pair.a++
}

var _ = []any{
	newCounter, (*counter).add, (*counter).get, (*counter).set,
	(*counter).addLocked, (*counter).methodValue, (*counter).shadowed,
	(*rstats).read, (*rstats).write, (*embedded).bump, (*outerStats).bump,
}
