// Package pos holds guardedfield positive fixtures: unlocked accesses
// of guarded fields in every write shape the analyzer recognizes, plus
// malformed guards comments.
package pos

import "sync"

type counter struct {
	mu sync.Mutex // guards n, m
	n  int
	m  map[string]int
}

func (c *counter) readUnlocked() int { return c.n } // want guardedfield

func (c *counter) writeUnlocked() { c.n++ } // want guardedfield

func (c *counter) assignUnlocked(v int) { c.n = v } // want guardedfield

func (c *counter) mapWriteUnlocked(k string) { c.m[k] = 1 } // want guardedfield

func (c *counter) deleteUnlocked(k string) { delete(c.m, k) } // want guardedfield

func (c *counter) addrUnlocked() *int { return &c.n } // want guardedfield

// wrongBase locks one counter but touches another: the base expression
// must match, not just the guard field.
func wrongBase(a, b *counter) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want guardedfield
}

type rstats struct {
	rw    sync.RWMutex // guards total
	total int
}

// writeUnderRLock holds only the shared lock: reads are fine, the write
// is not.
func (s *rstats) writeUnderRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.total++ // want guardedfield
	return s.total
}

type badGuard struct {
	mu sync.Mutex // guards missing // want guardedfield
	n  int
}

type notMutex struct {
	flag bool // guards n // want guardedfield
	n    int
}

type doubleName struct {
	a, b sync.Mutex // guards n // want guardedfield
	n    int
}

type emptyList struct {
	mu sync.Mutex // guards // want guardedfield
	n  int
}

type outerStats struct {
	mu   sync.Mutex // guards pair
	pair struct{ a, b int }
}

// nestedWrite mutates the guarded pair through a nested selector with
// no lock held.
func (o *outerStats) nestedWrite() { o.pair.a++ } // want guardedfield

var _ = []any{
	(*counter).readUnlocked, (*counter).writeUnlocked, (*counter).assignUnlocked,
	(*counter).mapWriteUnlocked, (*counter).deleteUnlocked, (*counter).addrUnlocked,
	wrongBase, (*rstats).writeUnderRLock, (*outerStats).nestedWrite,
	badGuard{}, notMutex{}, doubleName{}, emptyList{},
}
