// Package pos holds allowdirective positive fixtures: directives that
// fail validation, a near-miss spelling, and a stale directive that
// suppresses nothing.
package pos

//repro:allow nosuchanalyzer the analyzer name does not exist // want allowdirective

//repro:allow maprange // want allowdirective

// repro:allow maprange a space after // keeps this from parsing // want allowdirective

//repro:allowtypo maprange fused prefix never parses either // want allowdirective

// stale carries a directive that targets the line below it — not the
// loop two lines down — so it suppresses nothing and the loop still
// fires.
func stale(m map[int]int) int {
	//repro:allow maprange stale: this targets the next line, not the loop // want allowdirective
	total := 0
	for _, v := range m { // want maprange
		total += v
	}
	return total
}

var _ = stale
