// Package neg holds allowdirective negative fixtures: well-formed,
// load-bearing directives in both placements — inline, standalone, and
// a stacked pair chaining onto one line that fires two analyzers.
package neg

import "time"

func inline(m map[string]bool) int {
	n := 0
	for range m { //repro:allow maprange order-independent count
		n++
	}
	return n
}

func standalone(m map[string]bool) int {
	n := 0
	//repro:allow maprange order-independent count
	for range m {
		n++
	}
	return n
}

// chained stacks two directives above a line that fires both maprange
// (range over the inner map) and nondetsource (the wall-clock read):
// the upper directive chains through the lower one onto the loop line.
func chained(m map[int]map[string]int) int {
	n := 0
	//repro:allow nondetsource diagnostic-only bucket choice
	//repro:allow maprange order-independent count
	for range m[time.Now().Second()] {
		n++
	}
	return n
}

var _ = []any{inline, standalone, chained}
