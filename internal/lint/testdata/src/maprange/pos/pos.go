// Package pos holds maprange positive fixtures: every marked line must
// produce exactly one maprange finding.
package pos

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want maprange
		out = append(out, k)
	}
	return out
}

func values(m map[int][]byte) int {
	total := 0
	for _, v := range m { // want maprange
		total += len(v)
	}
	return total
}

type wrapped map[uint64]bool

func named(w wrapped) int {
	n := 0
	for range w { // want maprange
		n++
	}
	return n
}

var _ = []any{keys, values, named}
