// Package neg holds maprange negative fixtures: ranges that are not
// over maps, the canonical sorted-key idiom, and a justified
// suppression. None of them may produce a finding.
package neg

import (
	"maps"
	"slices"
)

func sorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for _, k := range slices.Sorted(maps.Keys(m)) {
		out = append(out, k)
	}
	return out
}

func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func chanRange(ch chan int) int {
	total := 0
	for x := range ch {
		total += x
	}
	return total
}

func stringRange(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

func intRange(n int) int {
	total := 0
	for i := range n {
		total += i
	}
	return total
}

// allowedFold writes each value to the slot named by its key, so visit
// order cannot influence the result — the canonical justified allow.
func allowedFold(m map[int]int, dst []int) {
	for k, v := range m { //repro:allow maprange keyed writes are order-independent
		dst[k] = v
	}
}

var _ = []any{sorted, sliceRange, chanRange, stringRange, intRange, allowedFold}
