// Package neg is fully documented: every exported declaration carries
// a doc comment, so pkgdoc must stay silent.
package neg

// Thing is a documented exported type.
type Thing struct{}

// Do is a documented exported function.
func Do() {}

// Method is a documented exported method.
func (t *Thing) Method() {}

// Limit is a documented exported constant.
const Limit = 7

// Exported values in a documented group need no per-spec docs.
var (
	Counter int
	Gauge   int
)

type helper struct{}

func (helper) work() {}

func private() {}
