package pos // want pkgdoc

type Widget struct{} // want pkgdoc

// Documented types are fine.
type Gadget struct{}

func Exported() {} // want pkgdoc

// Documented functions are fine.
func Fine() {}

func (Widget) Method() {} // want pkgdoc

// Documented methods are fine.
func (Widget) Documented() {}

// Methods on unexported types are the package's own business.
type hidden struct{}

func (hidden) Method() {}

func unexported() {}

const Limit = 3 // want pkgdoc

// Grouped declarations are covered by the group doc.
const (
	A = 1
	B = 2
)

var (
	Counter int // want pkgdoc

	// Documented group members are fine.
	Gauge int

	internal int
)

var SelfEvident = true //repro:allow pkgdoc name says it all
