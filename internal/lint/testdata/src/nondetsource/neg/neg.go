// Package neg holds nondetsource negative fixtures: seeded generators,
// methods on caller-owned sources, the sorted-iterator idiom, and
// clock-free time arithmetic.
package neg

import (
	"maps"
	randv2 "math/rand/v2"
	"slices"
	"time"
)

func seeded(seed uint64) int {
	r := randv2.New(randv2.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return r.IntN(10)
}

func chacha(key [32]byte) uint64 {
	return randv2.NewChaCha8(key).Uint64()
}

func sortedKeys(m map[string]int) []string { return slices.Sorted(maps.Keys(m)) }

func sortedValues(m map[string]int) []int { return slices.Sorted(maps.Values(m)) }

func timeout(rounds int) time.Duration { return time.Duration(rounds) * time.Millisecond }

var _ = []any{seeded, chacha, sortedKeys, sortedValues, timeout}
