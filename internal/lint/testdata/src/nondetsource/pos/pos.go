// Package pos holds nondetsource positive fixtures: global random
// sources, wall-clock reads, and unsorted map iterators.
package pos

import (
	"maps"
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func globalV1() int { return rand.Intn(10) } // want nondetsource

func globalV2() int { return randv2.IntN(10) } // want nondetsource

func globalShuffle(xs []int) {
	randv2.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want nondetsource
}

func wallClock() int64 { return time.Now().UnixNano() } // want nondetsource

func elapsed(start time.Time) time.Duration { return time.Since(start) } // want nondetsource

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want nondetsource
		out = append(out, k)
	}
	return out
}

var _ = []any{globalV1, globalV2, globalShuffle, wallClock, elapsed, unsortedKeys}
