// Package obsclock is the observability carve-out fixture. It contains
// the exact time.Since use nondetsource flags in fingerprinted
// packages; TestObsCarveOut loads it once as repro/internal/obs (must
// pass — wall-clock measurement is the layer's purpose) and once as
// repro/internal/stp (must still fail).
package obsclock

import "time"

// Elapsed measures a wall-clock duration, the observability layer's
// bread and butter and a determinism violation everywhere else.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
