// Package lint is the project's static-analysis suite: a stdlib-only
// analysis driver (go/parser + go/types with the source importer — the
// module has zero external dependencies and must stay that way) plus
// the project-specific analyzers that encode this repository's two
// hardest-won invariants as compile-time checks:
//
//   - byte-identical deterministic output (the FINGERPRINT.txt golden):
//     maprange and nondetsource flag nondeterministic iteration and
//     entropy sources in the fingerprinted packages, the exact bug
//     classes PR 1 fixed by hand in stp/stpdist;
//   - race-free concurrent serving: guardedfield parses the
//     `// guards a, b` convention on mutex fields and flags accesses of
//     a guarded field outside a function that locks the guard — the
//     torn-snapshot class PR 7 fixed in the chaos stats;
//   - documented API surfaces: pkgdoc requires doc comments on exported
//     declarations in the packages external callers import (the root
//     facade and internal/serve), where the docs are the only place
//     caller invariants live.
//
// Findings are suppressed, one at a time and with a recorded reason, by
// a `//repro:allow <analyzer> <reason>` comment; the directives are
// themselves linted (unknown analyzer names, missing reasons, and
// directives that suppress nothing are errors), so the suppression
// inventory can never rot silently. cmd/lint is the command-line
// driver; `make lint` runs it over every package in the module and is
// part of `make ci`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding: a position, the analyzer that
// produced it, the defect, and a one-line fix hint.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Hint     string
}

// String renders the diagnostic in the file:line:col form every Go tool
// uses, with the fix hint appended.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s (fix: %s)",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message, d.Hint)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/graph").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset is the loader's shared file set (positions are only
	// meaningful against it).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for Files.
	Types *types.Package
	Info  *types.Info
	// Lines holds each file's source split into lines (1-based access
	// through LineText), so analyzers and the directive parser can
	// inspect raw line text — e.g. to decide whether a comment stands
	// alone on its line.
	Lines map[string][]string
}

// LineText returns the raw source text of the given 1-based line of a
// file in the package ("" when out of range).
func (p *Package) LineText(filename string, line int) string {
	lines := p.Lines[filename]
	if line < 1 || line > len(lines) {
		return ""
	}
	return lines[line-1]
}

// Analyzer is one project-specific check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //repro:allow directives.
	Name string
	// Doc is the one-paragraph description shown by cmd/lint -list.
	Doc string
	// FingerprintedOnly restricts the analyzer to the packages whose
	// output is pinned by FINGERPRINT.txt (determinism checks are
	// meaningless — and far too noisy — elsewhere).
	FingerprintedOnly bool
	// DocScopedOnly restricts the analyzer to the API-surface packages
	// (the root decomp facade and internal/serve), where doc comments
	// are the contract external callers rely on.
	DocScopedOnly bool
	// Run reports findings through the pass.
	Run func(*Pass)
}

// Pass is one (analyzer, package) analysis run.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Report records a finding at pos with a fix hint.
func (p *Pass) Report(pos token.Pos, message, hint string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  message,
		Hint:     hint,
	})
}

// Reportf is Report with a formatted message.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...), hint)
}

// All is the full analyzer suite in the order cmd/lint runs it.
var All = []*Analyzer{MapRange, NonDetSource, GuardedField, AllowDirective, PkgDoc}

// analyzerNames mirrors All by name. It exists as a literal so
// runAllowDirective can validate directive names without referring to
// All (which refers back to AllowDirective — an initialization cycle);
// TestAnalyzerNames keeps the two in sync.
var analyzerNames = []string{"maprange", "nondetsource", "guardedfield", "allowdirective", "pkgdoc"}

// KnownAnalyzers returns the names every //repro:allow directive may
// reference, sorted.
func KnownAnalyzers() []string {
	names := make([]string, len(analyzerNames))
	copy(names, analyzerNames)
	sort.Strings(names)
	return names
}

// fingerprinted is the set of packages whose experiment output is
// pinned byte-for-byte by FINGERPRINT.txt (see cmd/fingerprint): any
// nondeterminism here changes committed goldens.
var fingerprinted = map[string]bool{
	"repro/internal/graph":   true,
	"repro/internal/sim":     true,
	"repro/internal/cast":    true,
	"repro/internal/cds":     true,
	"repro/internal/cdsdist": true,
	"repro/internal/stp":     true,
	"repro/internal/stpdist": true,
	"repro/internal/ds":      true,
	"repro/internal/mst":     true,
	"repro/internal/dist":    true,
	"repro/internal/flow":    true,
}

// obsExempt is the explicit observability carve-out: internal/obs
// measures wall-clock durations by design (trace spans, latency
// histograms), so the nondeterminism sources the determinism analyzers
// hunt are legal there. The exemption is subtracted inside
// DefaultFingerprinted — not just left out of the set above — so it
// keeps holding even if obs is ever added to the fingerprint surface
// (say, because a golden starts summarizing histogram bucket counts).
var obsExempt = map[string]bool{
	"repro/internal/obs": true,
}

// DefaultFingerprinted reports whether the import path is one of the
// fingerprinted packages (the default scope predicate for
// FingerprintedOnly analyzers), minus the observability carve-out.
func DefaultFingerprinted(path string) bool { return fingerprinted[path] && !obsExempt[path] }

// docScoped is the set of API-surface packages whose exported
// declarations must carry doc comments: the root facade every external
// caller imports, and the serving layer whose concurrency and
// persistence invariants live in its docs.
var docScoped = map[string]bool{
	"repro":                true,
	"repro/internal/serve": true,
}

// DefaultDocScoped reports whether the import path is one of the
// doc-scoped API-surface packages (the default scope predicate for
// DocScopedOnly analyzers).
func DefaultDocScoped(path string) bool { return docScoped[path] }

// Config tunes a Run.
type Config struct {
	// Analyzers to run; nil means All.
	Analyzers []*Analyzer
	// IsFingerprinted scopes FingerprintedOnly analyzers; nil means
	// DefaultFingerprinted. Tests point it at fixture packages.
	IsFingerprinted func(pkgPath string) bool
	// IsDocScoped scopes DocScopedOnly analyzers; nil means
	// DefaultDocScoped. Tests point it at fixture packages.
	IsDocScoped func(pkgPath string) bool
}

// Run executes the configured analyzers over the packages, applies
// //repro:allow suppression, flags unused directives, and returns the
// surviving diagnostics sorted by file, line, column, analyzer.
func Run(cfg Config, pkgs []*Package) []Diagnostic {
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All
	}
	isFP := cfg.IsFingerprinted
	if isFP == nil {
		isFP = DefaultFingerprinted
	}
	isDoc := cfg.IsDocScoped
	if isDoc == nil {
		isDoc = DefaultDocScoped
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		ranByName := map[string]bool{}
		for _, a := range analyzers {
			if a.FingerprintedOnly && !isFP(pkg.Path) {
				continue
			}
			if a.DocScopedOnly && !isDoc(pkg.Path) {
				continue
			}
			ranByName[a.Name] = true
			a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &raw})
		}
		allows := parseAllows(pkg)
		for _, d := range raw {
			// allowdirective findings are not themselves suppressible:
			// a malformed or dead directive must be fixed, not allowed.
			if d.Analyzer != AllowDirective.Name && suppress(allows, d) {
				continue
			}
			out = append(out, d)
		}
		// A directive whose analyzer ran here but suppressed nothing is
		// dead weight — the finding it justified is gone, so the
		// recorded reason no longer corresponds to anything. Directives
		// that already failed validation (unknown analyzer, no reason)
		// are reported once by allowdirective, not twice.
		for _, al := range allows {
			if !al.used && al.reason != "" && ranByName[al.analyzer] {
				out = append(out, Diagnostic{
					Analyzer: AllowDirective.Name,
					Pos:      pkg.Fset.Position(al.pos),
					Message:  fmt.Sprintf("//repro:allow %s suppresses nothing on line %d", al.analyzer, al.target),
					Hint:     "delete the stale directive (or move it onto the finding it justifies)",
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppress reports whether an allow directive in the diagnostic's file
// covers it, marking the directive used.
func suppress(allows []*allow, d Diagnostic) bool {
	for _, al := range allows {
		if al.analyzer == d.Analyzer && al.file == d.Pos.Filename && al.target == d.Pos.Line {
			al.used = true
			return true
		}
	}
	return false
}
