package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for … range` over a map-typed operand in the
// fingerprinted packages. Go randomizes map iteration order per run, so
// any output influenced by such a loop breaks the FINGERPRINT.txt
// determinism golden — the exact bug class PR 1 fixed by hand in
// stp/stpdist. Loops whose bodies are genuinely order-independent
// (pure per-key writes folded into an order-insensitive structure) are
// annotated //repro:allow maprange with the argument spelled out.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flags range over a map in the fingerprinted packages: map " +
		"iteration order is randomized per run and breaks byte-identical " +
		"output",
	FingerprintedOnly: true,
	Run:               runMapRange,
}

func runMapRange(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				p.Reportf(rs.For,
					"iterate a sorted key slice (slices.Sorted(maps.Keys(m))) or justify with //repro:allow maprange <reason>",
					"range over map %s iterates in nondeterministic order",
					types.ExprString(rs.X))
			}
			return true
		})
	}
}
