package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// NonDetSource flags nondeterminism sources in the fingerprinted
// packages: package-level math/rand and math/rand/v2 functions (the
// process-global generator — only PCG streams seeded through
// internal/ds are legal there), wall-clock reads via time.Now and
// time.Since, and the iteration-order-dependent maps.Keys/Values/All
// unless immediately sorted through slices.Sorted*.
var NonDetSource = &Analyzer{
	Name: "nondetsource",
	Doc: "flags global math/rand entropy, time.Now/time.Since, and unsorted " +
		"maps.Keys/Values/All in the fingerprinted packages, where only " +
		"seeded ds.NewRand/ds.SplitRand streams are legal",
	FingerprintedOnly: true,
	Run:               runNonDetSource,
}

func runNonDetSource(p *Pass) {
	blessed := blessedMapIters(p.Pkg)
	type use struct {
		id  *ast.Ident
		obj types.Object
	}
	var uses []use
	for id, obj := range p.Pkg.Info.Uses {
		uses = append(uses, use{id, obj})
	}
	// Info.Uses is itself a map: order the report pass by position so
	// the diagnostics (and tests over them) are deterministic.
	sort.Slice(uses, func(i, j int) bool { return uses[i].id.Pos() < uses[j].id.Pos() })
	for _, u := range uses {
		obj := u.obj
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() != nil {
			continue // methods run on a caller-owned (seedable) value
		}
		switch pkgPath := obj.Pkg().Path(); pkgPath {
		case "math/rand", "math/rand/v2":
			// Constructors (NewPCG, NewChaCha8, New, …) build seedable
			// sources; every other package-level function draws from the
			// process-global generator.
			if strings.HasPrefix(fn.Name(), "New") {
				continue
			}
			p.Reportf(u.id.Pos(),
				"draw from a seeded stream (ds.NewRand / ds.SplitRand) instead of the global generator",
				"%s.%s uses the process-global random source", pkgPath, fn.Name())
		case "time":
			if fn.Name() != "Now" && fn.Name() != "Since" {
				continue
			}
			p.Reportf(u.id.Pos(),
				"fingerprinted output must not depend on wall clock; count rounds/iterations, or measure time outside the fingerprinted packages",
				"time.%s reads the wall clock", fn.Name())
		case "maps":
			switch fn.Name() {
			case "Keys", "Values", "All":
			default:
				continue
			}
			if blessed[u.id] {
				continue // slices.Sorted(maps.Keys(m)) is deterministic
			}
			p.Reportf(u.id.Pos(),
				"sort the sequence immediately: slices.Sorted(maps."+fn.Name()+"(m))",
				"maps.%s yields keys in nondeterministic order", fn.Name())
		}
	}
}

// blessedMapIters returns the maps.Keys/Values selector idents that
// appear as the direct argument of slices.Sorted / slices.SortedFunc /
// slices.SortedStableFunc — the canonical deterministic iteration
// idiom.
func blessedMapIters(pkg *Package) map[*ast.Ident]bool {
	blessed := map[*ast.Ident]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isPkgFunc(pkg, call.Fun, "slices", "Sorted", "SortedFunc", "SortedStableFunc") {
				return true
			}
			arg, ok := call.Args[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := arg.Fun.(*ast.SelectorExpr)
			if ok && isPkgFunc(pkg, sel, "maps", "Keys", "Values") {
				blessed[sel.Sel] = true
			}
			return true
		})
	}
	return blessed
}

// isPkgFunc reports whether expr is a selector resolving to one of the
// named package-level functions of the given standard-library package.
func isPkgFunc(pkg *Package, expr ast.Expr, pkgPath string, names ...string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}
