// Package decomp is a reproduction of "Distributed Connectivity
// Decomposition" (Censor-Hillel, Ghaffari, Kuhn — PODC 2014,
// arXiv:1311.5317): algorithms that decompose a graph's vertex or edge
// connectivity into fractionally disjoint dominating or spanning trees,
// plus the applications the paper derives from them.
//
// The public API wraps the per-subsystem packages under internal/:
//
//   - Dominating-tree (CDS) packings of size Ω(k/log n) for
//     k-vertex-connected graphs — Theorems 1.1 (distributed, V-CONGEST)
//     and 1.2 (centralized, O~(m)).
//   - Spanning-tree packings of size ⌈(λ-1)/2⌉(1-ε) for
//     λ-edge-connected graphs — Theorem 1.3 (E-CONGEST and centralized).
//   - An O(log n)-approximation of vertex connectivity (Corollary 1.7).
//   - Broadcast/gossip with near-optimal throughput and oblivious-
//     routing congestion (Corollaries 1.4–1.6, A.1).
//
// Distributed algorithms run on a synchronous message-passing simulator
// that enforces the paper's V-CONGEST/E-CONGEST models and meters rounds,
// messages, and bits; results carry those meters.
//
// # Caller invariants
//
// Everything here is deterministic on purpose: for a fixed graph and
// seed, packings, meters, and broadcast results are byte-identical
// across runs, worker counts, and process restarts. Callers keep that
// guarantee by treating values as immutable after construction — don't
// mutate a Graph once it has been packed, a packing once it has been
// scheduled, or a Demand while a Run is in flight. A
// BroadcastScheduler handle is single-goroutine; concurrent serving
// goes through internal/serve, which clones handles per goroutine.
// Seeds are the only entropy input: two calls differing only in seed
// are independent samples, two calls with equal seeds are replays.
package decomp

import (
	"fmt"
	"net/http"

	"repro/internal/cast"
	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stp"
	"repro/internal/stpdist"
)

// Graph is an immutable undirected simple graph (see internal/graph).
type Graph = graph.Graph

// Tree is a subtree of a host graph stored as a parent forest.
type Tree = graph.Tree

// Meter is the distributed cost accounting: rounds (slot-serialized plus
// driver charges), messages, and bits.
type Meter = sim.Meter

// Model selects the congestion model for distributed runs and broadcast.
type Model = sim.Model

// The two models of Section 1.2.
const (
	VCongest = sim.VCongest
	ECongest = sim.ECongest
)

// DominatingTreePacking is a fractional dominating-tree packing
// (Theorem 1.1/1.2 output).
type DominatingTreePacking = cds.Packing

// SpanningTreePacking is a fractional spanning-tree packing (Theorem 1.3
// output).
type SpanningTreePacking = stp.Packing

// DistDominatingResult couples a distributed packing with its cost meter.
type DistDominatingResult = cdsdist.Result

// DistSpanningResult couples a distributed spanning packing with its
// cost meter.
type DistSpanningResult = stpdist.Result

// BroadcastResult reports rounds, throughput, and congestion of a
// dissemination run.
type BroadcastResult = cast.Result

// Demand is a broadcast workload: message i originates at Sources[i].
type Demand = cast.Demand

// Scheduler is a reusable broadcast handle bound to one
// (graph, packing, model) triple: construction builds per-tree
// adjacency, FIFOs, and congestion tables once; Run then serves an
// arbitrary sequence of demands with zero steady-state allocations.
// Scheduler.Clone returns an independent handle over the same immutable
// core, so many goroutines can Run demands on one decomposition in
// parallel with results byte-identical to serial runs.
type Scheduler = cast.Scheduler

// FaultPlan describes a deterministic failure scenario for
// Scheduler.RunFaulted: explicit and/or PCG-seeded random edge and
// vertex kills applied from a chosen round, with a bounded per-message
// reroute budget over the surviving trees.
type FaultPlan = cast.FaultPlan

// FaultResult is a faulted run's outcome: the usual BroadcastResult
// plus delivered-fraction, per-tree survival, and retry/round-overhead
// accounting. Partial delivery is reported here, never as an error.
type FaultResult = cast.FaultResult

// Options configures the packing algorithms; the zero value uses the
// defaults the experiments were calibrated with. Use the With* helpers.
type Options struct {
	cds cds.Options
	stp stp.Options
	err error
}

// fail records the first invalid option; entry points surface it before
// running anything, so a bad parameter errors at the API boundary
// instead of silently misbehaving deep in a packer.
func (o *Options) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// Option customizes Options.
type Option func(*Options)

// WithSeed fixes all randomness; identical seeds give identical results.
func WithSeed(seed uint64) Option {
	return func(o *Options) {
		o.cds.Seed = seed
		o.stp.Seed = seed
	}
}

// WithKnownConnectivity skips the try-and-error loop (dominating trees)
// or the min-cut estimation (spanning trees) by asserting the graph's
// connectivity. The asserted connectivity must be at least 1.
func WithKnownConnectivity(k int) Option {
	return func(o *Options) {
		if k < 1 {
			o.fail(fmt.Errorf("decomp: WithKnownConnectivity(%d): connectivity must be >= 1", k))
			return
		}
		o.stp.KnownLambda = k
	}
}

// WithEpsilon sets the spanning-tree packing's ε (default 0.1). ε must
// lie in (0, 1): the packer would otherwise silently substitute its
// default.
func WithEpsilon(eps float64) Option {
	return func(o *Options) {
		if eps <= 0 || eps >= 1 {
			o.fail(fmt.Errorf("decomp: WithEpsilon(%g): epsilon must be in (0, 1)", eps))
			return
		}
		o.stp.Epsilon = eps
	}
}

// WithClassFactor overrides t = ClassFactor·k-hat in the CDS packing.
// The factor must be positive.
func WithClassFactor(f float64) Option {
	return func(o *Options) {
		if f <= 0 {
			o.fail(fmt.Errorf("decomp: WithClassFactor(%g): factor must be > 0", f))
			return
		}
		o.cds.ClassFactor = f
	}
}

func buildOptions(opts []Option) (Options, error) {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o, o.err
}

// --- Graph construction -------------------------------------------------

// NewGraph builds a graph on n vertices from an edge list; duplicates
// and self-loops are dropped.
func NewGraph(n int, edges [][2]int) *Graph { return graph.FromEdgeList(n, edges) }

// Hypercube returns the d-dimensional hypercube (κ = λ = d).
func Hypercube(d int) *Graph { return graph.Hypercube(d) }

// Complete returns K_n (κ = λ = n-1).
func Complete(n int) *Graph { return graph.Complete(n) }

// Torus returns the rows×cols wraparound grid (κ = λ = 4 for sizes >= 3).
func Torus(rows, cols int) *Graph { return graph.Torus(rows, cols) }

// Harary returns the minimal k-connected graph H_{k,n} (κ = λ = k).
func Harary(k, n int) (*Graph, error) { return graph.Harary(k, n) }

// RandomRegular returns a random d-regular graph (d-connected w.h.p.
// for d >= 3).
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	return graph.RandomRegular(n, d, ds.NewRand(seed))
}

// RandomHamCycles returns the union of c random Hamiltonian cycles
// (connectivity 2c w.h.p.).
func RandomHamCycles(n, c int, seed uint64) *Graph {
	return graph.RandomHamCycles(n, c, ds.NewRand(seed))
}

// Gnp returns an Erdős–Rényi random graph.
func Gnp(n int, p float64, seed uint64) *Graph {
	return graph.Gnp(n, p, ds.NewRand(seed))
}

// --- Connectivity -------------------------------------------------------

// VertexConnectivity computes the exact vertex connectivity κ(G)
// (Even's algorithm over unit-capacity max-flows).
func VertexConnectivity(g *Graph) int { return flow.VertexConnectivity(g) }

// EdgeConnectivity computes the exact edge connectivity λ(G).
func EdgeConnectivity(g *Graph) int { return flow.EdgeConnectivity(g) }

// ApproxVertexConnectivity estimates κ(G) within an O(log n) factor via
// the dominating-tree packing (Corollary 1.7): the estimate never
// exceeds κ and is Ω(κ/log n) w.h.p.
func ApproxVertexConnectivity(g *Graph, opts ...Option) (float64, *DominatingTreePacking, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return 0, nil, err
	}
	return cds.ApproxVertexConnectivity(g, o.cds)
}

// ApproxVertexConnectivityDistributed is the distributed half of
// Corollary 1.7: the same O(log n)-approximation computed by the
// V-CONGEST protocol in O~(D+√n) rounds, returned with its meter.
func ApproxVertexConnectivityDistributed(g *Graph, opts ...Option) (float64, *DistDominatingResult, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return 0, nil, err
	}
	res, err := cdsdist.Pack(g, o.cds)
	if err != nil {
		return 0, nil, err
	}
	return res.Packing.Size(), res, nil
}

// SparseCertificate returns a spanning subgraph with at most k(n-1)
// edges preserving edge connectivity up to k (Nagamochi–Ibaraki /
// Thurimella [49], the sparsification primitive behind Theorem B.2).
func SparseCertificate(g *Graph, k int) *Graph { return graph.SparseCertificate(g, k) }

// --- Packings -----------------------------------------------------------

// PackDominatingTrees runs the centralized O~(m) fractional
// dominating-tree packing (Theorem 1.2), including the try-and-error
// connectivity search of Remark 3.1.
func PackDominatingTrees(g *Graph, opts ...Option) (*DominatingTreePacking, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return cds.Pack(g, o.cds)
}

// PackDominatingTreesDistributed runs the V-CONGEST protocol of
// Theorem 1.1 on the simulator and returns the packing with its round
// meter.
func PackDominatingTreesDistributed(g *Graph, opts ...Option) (*DistDominatingResult, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return cdsdist.Pack(g, o.cds)
}

// PackDominatingTreesDistributedWithGuess runs the Theorem 1.1 protocol
// with a known 2-approximation of κ, skipping the try-and-error loop.
func PackDominatingTreesDistributedWithGuess(g *Graph, kGuess int, opts ...Option) (*DistDominatingResult, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return cdsdist.PackWithGuess(g, kGuess, o.cds)
}

// PackSpanningTrees runs the centralized fractional spanning-tree
// packing (Section 5): size ⌈(λ-1)/2⌉(1-O(ε)).
func PackSpanningTrees(g *Graph, opts ...Option) (*SpanningTreePacking, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return stp.Pack(g, o.stp)
}

// PackSpanningTreesDistributed runs the E-CONGEST protocol of
// Theorem 1.3 on the simulator.
func PackSpanningTreesDistributed(g *Graph, opts ...Option) (*DistSpanningResult, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return stpdist.Pack(g, o.stp)
}

// IntegralSpanningTrees returns edge-disjoint spanning trees of count
// Ω(λ/log n) (the integral variant noted under Theorem 1.3).
func IntegralSpanningTrees(g *Graph, opts ...Option) ([]*Tree, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return stp.IntegralPack(g, o.stp)
}

// DisjointDominatingTrees extracts vertex-disjoint dominating trees from
// a fractional packing (the integral adaptation of Section 1.2).
func DisjointDominatingTrees(g *Graph, p *DominatingTreePacking) []*Tree {
	return cds.ExtractDisjoint(g, p)
}

// IndependentSpanningTrees converts vertex-disjoint dominating trees
// into vertex independent spanning trees rooted at root (Section 1.4.1):
// for every vertex, the root paths in different trees are internally
// vertex-disjoint — an algorithmic poly-log approximation of the
// Zehavi–Itai conjecture.
func IndependentSpanningTrees(g *Graph, disjoint []*Tree, root int) ([]*Tree, error) {
	return cds.IndependentTrees(g, disjoint, root)
}

// --- Information dissemination ------------------------------------------

// NewBroadcastScheduler builds a reusable V-CONGEST broadcast handle
// over a dominating-tree packing (Corollary 1.4 served in steady state):
// s.Run(decomp.Demand{Sources: srcs}, seed) is equivalent to
// Broadcast(g, p, srcs, seed) without the per-call setup.
func NewBroadcastScheduler(g *Graph, p *DominatingTreePacking) (*Scheduler, error) {
	return cast.NewScheduler(g, domToWeighted(p), sim.VCongest)
}

// NewEdgeBroadcastScheduler builds a reusable E-CONGEST broadcast handle
// over a spanning-tree packing (Corollary 1.5 served in steady state):
// s.Run(decomp.Demand{Sources: srcs}, seed) is equivalent to
// BroadcastEdges(g, p, srcs, seed) without the per-call setup.
func NewEdgeBroadcastScheduler(g *Graph, p *SpanningTreePacking) (*Scheduler, error) {
	return cast.NewScheduler(g, spanToWeighted(p), sim.ECongest)
}

// Broadcast routes each message along a random tree of the dominating-
// tree packing in the V-CONGEST model (Corollary 1.4).
func Broadcast(g *Graph, p *DominatingTreePacking, sources []int, seed uint64) (BroadcastResult, error) {
	return cast.Broadcast(g, domToWeighted(p), cast.Demand{Sources: sources}, sim.VCongest, seed)
}

// BroadcastEdges routes each message along a random spanning tree in the
// E-CONGEST model (Corollary 1.5).
func BroadcastEdges(g *Graph, p *SpanningTreePacking, sources []int, seed uint64) (BroadcastResult, error) {
	return cast.Broadcast(g, spanToWeighted(p), cast.Demand{Sources: sources}, sim.ECongest, seed)
}

// Gossip performs all-to-all broadcast (Appendix A): one message per
// node, routed through the dominating-tree packing.
func Gossip(g *Graph, p *DominatingTreePacking, seed uint64) (BroadcastResult, error) {
	return cast.Broadcast(g, domToWeighted(p), cast.AllToAll(g.N()), sim.VCongest, seed)
}

// SingleTreeBroadcast is the throughput-1 baseline: all messages over
// one pipelined BFS tree.
func SingleTreeBroadcast(g *Graph, sources []int, model Model, seed uint64) (BroadcastResult, error) {
	return cast.SingleTreeBaseline(g, cast.Demand{Sources: sources}, model, seed)
}

// UniformSources draws nMsgs message sources uniformly at random.
func UniformSources(n, nMsgs int, seed uint64) []int {
	return cast.UniformDemand(n, nMsgs, ds.NewRand(seed)).Sources
}

func domToWeighted(p *DominatingTreePacking) []cast.WeightedTree {
	out := make([]cast.WeightedTree, len(p.Trees))
	for i, t := range p.Trees {
		out[i] = cast.WeightedTree{Tree: t.Tree, Weight: t.Weight}
	}
	return out
}

func spanToWeighted(p *SpanningTreePacking) []cast.WeightedTree {
	out := make([]cast.WeightedTree, len(p.Trees))
	for i, t := range p.Trees {
		out[i] = cast.WeightedTree{Tree: t.Tree, Weight: t.Weight}
	}
	return out
}

// --- Serving ------------------------------------------------------------

// Service is the concurrent decomposition-and-broadcast service: a graph
// registry keyed by content hash, a per-(graph, kind) packing cache with
// singleflight semantics (N concurrent requests trigger exactly one
// packing), a Scheduler clone pool per cached decomposition, and
// bounded-concurrency demand execution with per-graph and global stats.
type Service = serve.Service

// ServiceConfig tunes a Service; the zero value uses calibrated
// defaults.
type ServiceConfig = serve.Config

// ServiceStats is a snapshot of the service counters (requests, cache
// hits, rounds, congestion maxima), globally and per graph.
type ServiceStats = serve.Stats

// ServiceGraphStats is the per-graph slice of ServiceStats.
type ServiceGraphStats = serve.GraphStats

// DecompositionKind selects which decomposition a service request is
// served over.
type DecompositionKind = serve.Kind

// The two decomposition kinds a Service caches and serves.
const (
	// KindDominating: Theorem 1.2 dominating trees, V-CONGEST broadcast.
	KindDominating = serve.Dominating
	// KindSpanning: Theorem 1.3 spanning trees, E-CONGEST broadcast.
	KindSpanning = serve.Spanning
)

// DecompositionInfo describes a cached (or just-computed) service
// decomposition.
type DecompositionInfo = serve.DecompInfo

// PackProfile is the packer-internal instrumentation a freshly
// computed DecompositionInfo carries (nil on cache and store hits):
// MWU iteration, stop-check, and dedup counters for spanning packs;
// layer and connectivity-class matching counters for dominating packs.
// The serving layer also attaches it to the request's trace.
type PackProfile = serve.PackProfile

// LoadConfig describes one load run: closed loop (K workers × M
// demands, the default) or open loop (ArrivalRate > 0, demands arriving
// on a deterministic exponential schedule regardless of completion
// speed).
type LoadConfig = serve.LoadConfig

// LoadReport aggregates a load run's throughput and, open-loop, its
// latency distribution and admission accounting.
type LoadReport = serve.LoadReport

// PhaseSummary is one serving phase's latency distribution in a
// LoadReport: observation count and sum plus the exact max and the
// p50/p95/p99 estimates of the deterministic log-scale histogram.
type PhaseSummary = serve.PhaseSummary

// BatchDemand is one demand of a service batch: a source list plus the
// seed its tree assignment draws from.
type BatchDemand = serve.BatchDemand

// BatchEntry is one batch demand's outcome — exactly one of Result and
// Error is set.
type BatchEntry = serve.BatchEntry

// BatchSummary aggregates a batch (entry counts, messages, rounds).
type BatchSummary = serve.BatchSummary

// BatchResult is a batch's structured outcome: per-demand entries in
// demand order plus the summary.
type BatchResult = serve.BatchResult

// BatchEvent is one event on a service's streaming bus: a completed (or
// rejected) batch entry, or the terminal batch summary.
type BatchEvent = serve.BatchEvent

// NewService builds an empty decomposition service.
func NewService(cfg ServiceConfig) *Service { return serve.New(cfg) }

// NewServiceHandler mounts the service's JSON HTTP API (the interface
// cmd/serve exposes: register graph, request decomposition, submit
// broadcast demand, stats).
func NewServiceHandler(s *Service) http.Handler { return serve.NewHandler(s) }

// GenerateLoad drives the load generator against a service — closed
// loop (K workers × M demands) or, when ArrivalRate is set, open loop
// (deterministic arrival schedule, latency percentiles, admission
// control).
func GenerateLoad(s *Service, cfg LoadConfig) (LoadReport, error) { return serve.GenerateLoad(s, cfg) }

// GraphID returns the content-hash registry key a Service would assign
// the graph.
func GraphID(g *Graph) string { return serve.GraphID(g) }
