// Command decompose generates a graph from a named family and runs
// either connectivity decomposition on it, printing packing statistics.
//
// Usage:
//
//	decompose -family hypercube -param 6 -mode vertex
//	decompose -family harary -param 8 -n 64 -mode edge -distributed
//
// With -o FILE the packed trees are also written as a snapshot
// (internal/snap) that `cmd/serve` can ingest (-ingest FILE) or serve
// from a store directory, so a decomposition computed offline never has
// to be repacked by the server.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	decomp "repro"
	"repro/internal/check"
	"repro/internal/snap"
)

func main() {
	family := flag.String("family", "hypercube", "graph family: hypercube|complete|torus|harary|hamcycles|gnp")
	param := flag.Int("param", 5, "family parameter (dimension, k, c, ...)")
	n := flag.Int("n", 64, "number of vertices (families that take one)")
	mode := flag.String("mode", "vertex", "decomposition: vertex (dominating trees) or edge (spanning trees)")
	distributed := flag.Bool("distributed", false, "run the distributed protocol on the simulator and report rounds")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "write the packing as a snapshot `file` cmd/serve can ingest")
	flag.Parse()

	g, err := makeGraph(*family, *param, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: family=%s n=%d m=%d\n", *family, g.N(), g.M())

	var (
		kind  string
		trees []check.Weighted
		size  float64
	)
	switch *mode {
	case "vertex":
		kind = snap.KindDominating
		trees, size = runVertex(g, *distributed, *seed)
	case "edge":
		kind = snap.KindSpanning
		trees, size = runEdge(g, *distributed, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *out != "" {
		if err := writeSnapshot(*out, g, kind, *seed, trees, size); err != nil {
			log.Fatal(err)
		}
	}
}

// writeSnapshot captures the packing as a snapshot file. The options
// digest uses the packer-default epsilon (this command exposes no
// epsilon flag), matching a serve.Config with the same PackSeed and
// zero Epsilon.
func writeSnapshot(path string, g *decomp.Graph, kind string, seed uint64, trees []check.Weighted, size float64) error {
	sn, err := snap.Capture(g, kind, snap.OptionsDigest(seed, 0), trees, size)
	if err != nil {
		return fmt.Errorf("capturing snapshot: %w", err)
	}
	data, err := sn.Encode()
	if err != nil {
		return fmt.Errorf("encoding snapshot: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot: wrote %s (%d bytes; store name %s)\n",
		path, len(data), snap.FileName(sn.GraphKey(), kind, sn.OptionsDigest))
	return nil
}

func makeGraph(family string, param, n int, seed uint64) (*decomp.Graph, error) {
	switch family {
	case "hypercube":
		return decomp.Hypercube(param), nil
	case "complete":
		return decomp.Complete(n), nil
	case "torus":
		return decomp.Torus(param, param), nil
	case "harary":
		return decomp.Harary(param, n)
	case "hamcycles":
		return decomp.RandomHamCycles(n, param, seed), nil
	case "gnp":
		return decomp.Gnp(n, float64(param)/100, seed), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func runVertex(g *decomp.Graph, distributed bool, seed uint64) ([]check.Weighted, float64) {
	var p *decomp.DominatingTreePacking
	if distributed {
		res, err := decomp.PackDominatingTreesDistributed(g, decomp.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		p = res.Packing
		printDomPacking(g, p)
		fmt.Printf("distributed cost: %d rounds (%d metered + %d charged), %d messages, %d bits\n",
			res.Meter.TotalRounds(), res.Meter.MeteredRounds, res.Meter.ChargedRounds,
			res.Meter.Messages, res.Meter.Bits)
	} else {
		var err error
		p, err = decomp.PackDominatingTrees(g, decomp.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		printDomPacking(g, p)
	}
	trees := make([]check.Weighted, len(p.Trees))
	for i, t := range p.Trees {
		trees[i] = check.Weighted{Tree: t.Tree, Weight: t.Weight}
	}
	return trees, p.Size()
}

func printDomPacking(g *decomp.Graph, p *decomp.DominatingTreePacking) {
	fmt.Printf("dominating-tree packing: %d trees (of %d classes), size %.3f\n",
		len(p.Trees), p.Stats.Classes, p.Size())
	fmt.Printf("  guess k-hat=%d, layers=%d, max per-node membership=%d, max tree height=%d\n",
		p.Stats.Guess, p.Stats.Layers, p.MaxTreeCount(g.N()), p.MaxTreeHeight())
	fmt.Printf("  excess-component trace (M_ell): %v\n", p.Stats.ExcessComponents)
	if err := p.Validate(g); err != nil {
		fmt.Printf("  VALIDATION FAILED: %v\n", err)
	} else {
		fmt.Println("  validation: OK (every tree dominates; vertex load <= 1)")
	}
}

func runEdge(g *decomp.Graph, distributed bool, seed uint64) ([]check.Weighted, float64) {
	var p *decomp.SpanningTreePacking
	if distributed {
		res, err := decomp.PackSpanningTreesDistributed(g, decomp.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		p = res.Packing
		printSpanPacking(g, p)
		fmt.Printf("distributed cost: %d rounds (%d metered + %d charged), %d messages, %d bits\n",
			res.Meter.TotalRounds(), res.Meter.MeteredRounds, res.Meter.ChargedRounds,
			res.Meter.Messages, res.Meter.Bits)
	} else {
		var err error
		p, err = decomp.PackSpanningTrees(g, decomp.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		printSpanPacking(g, p)
	}
	trees := make([]check.Weighted, len(p.Trees))
	for i, t := range p.Trees {
		trees[i] = check.Weighted{Tree: t.Tree, Weight: t.Weight}
	}
	return trees, p.Size()
}

func printSpanPacking(g *decomp.Graph, p *decomp.SpanningTreePacking) {
	fmt.Printf("spanning-tree packing: %d distinct trees, size %.3f (λ=%d, Tutte/Nash-Williams bound %d)\n",
		len(p.Trees), p.Size(), p.Stats.Lambda, ceilHalf(p.Stats.Lambda-1))
	fmt.Printf("  MWU iterations=%d, subgraphs=%d, pre-rescale max load=%.3f, max edge membership=%d\n",
		p.Stats.Iterations, p.Stats.Subgraphs, p.Stats.MaxLoad, p.MaxEdgeTreeCount(g))
	if err := p.Validate(g); err != nil {
		fmt.Printf("  VALIDATION FAILED: %v\n", err)
	} else {
		fmt.Println("  validation: OK (every tree spans; edge load <= 1)")
	}
}

func ceilHalf(x int) int {
	if x <= 0 {
		return 1
	}
	return (x + 1) / 2
}
