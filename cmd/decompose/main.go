// Command decompose generates a graph from a named family and runs
// either connectivity decomposition on it, printing packing statistics.
//
// Usage:
//
//	decompose -family hypercube -param 6 -mode vertex
//	decompose -family harary -param 8 -n 64 -mode edge -distributed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	decomp "repro"
)

func main() {
	family := flag.String("family", "hypercube", "graph family: hypercube|complete|torus|harary|hamcycles|gnp")
	param := flag.Int("param", 5, "family parameter (dimension, k, c, ...)")
	n := flag.Int("n", 64, "number of vertices (families that take one)")
	mode := flag.String("mode", "vertex", "decomposition: vertex (dominating trees) or edge (spanning trees)")
	distributed := flag.Bool("distributed", false, "run the distributed protocol on the simulator and report rounds")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	g, err := makeGraph(*family, *param, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: family=%s n=%d m=%d\n", *family, g.N(), g.M())

	switch *mode {
	case "vertex":
		runVertex(g, *distributed, *seed)
	case "edge":
		runEdge(g, *distributed, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func makeGraph(family string, param, n int, seed uint64) (*decomp.Graph, error) {
	switch family {
	case "hypercube":
		return decomp.Hypercube(param), nil
	case "complete":
		return decomp.Complete(n), nil
	case "torus":
		return decomp.Torus(param, param), nil
	case "harary":
		return decomp.Harary(param, n)
	case "hamcycles":
		return decomp.RandomHamCycles(n, param, seed), nil
	case "gnp":
		return decomp.Gnp(n, float64(param)/100, seed), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func runVertex(g *decomp.Graph, distributed bool, seed uint64) {
	if distributed {
		res, err := decomp.PackDominatingTreesDistributed(g, decomp.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		printDomPacking(g, res.Packing)
		fmt.Printf("distributed cost: %d rounds (%d metered + %d charged), %d messages, %d bits\n",
			res.Meter.TotalRounds(), res.Meter.MeteredRounds, res.Meter.ChargedRounds,
			res.Meter.Messages, res.Meter.Bits)
		return
	}
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	printDomPacking(g, p)
}

func printDomPacking(g *decomp.Graph, p *decomp.DominatingTreePacking) {
	fmt.Printf("dominating-tree packing: %d trees (of %d classes), size %.3f\n",
		len(p.Trees), p.Stats.Classes, p.Size())
	fmt.Printf("  guess k-hat=%d, layers=%d, max per-node membership=%d, max tree height=%d\n",
		p.Stats.Guess, p.Stats.Layers, p.MaxTreeCount(g.N()), p.MaxTreeHeight())
	fmt.Printf("  excess-component trace (M_ell): %v\n", p.Stats.ExcessComponents)
	if err := p.Validate(g); err != nil {
		fmt.Printf("  VALIDATION FAILED: %v\n", err)
	} else {
		fmt.Println("  validation: OK (every tree dominates; vertex load <= 1)")
	}
}

func runEdge(g *decomp.Graph, distributed bool, seed uint64) {
	if distributed {
		res, err := decomp.PackSpanningTreesDistributed(g, decomp.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		printSpanPacking(g, res.Packing)
		fmt.Printf("distributed cost: %d rounds (%d metered + %d charged), %d messages, %d bits\n",
			res.Meter.TotalRounds(), res.Meter.MeteredRounds, res.Meter.ChargedRounds,
			res.Meter.Messages, res.Meter.Bits)
		return
	}
	p, err := decomp.PackSpanningTrees(g, decomp.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	printSpanPacking(g, p)
}

func printSpanPacking(g *decomp.Graph, p *decomp.SpanningTreePacking) {
	fmt.Printf("spanning-tree packing: %d distinct trees, size %.3f (λ=%d, Tutte/Nash-Williams bound %d)\n",
		len(p.Trees), p.Size(), p.Stats.Lambda, ceilHalf(p.Stats.Lambda-1))
	fmt.Printf("  MWU iterations=%d, subgraphs=%d, pre-rescale max load=%.3f, max edge membership=%d\n",
		p.Stats.Iterations, p.Stats.Subgraphs, p.Stats.MaxLoad, p.MaxEdgeTreeCount(g))
	if err := p.Validate(g); err != nil {
		fmt.Printf("  VALIDATION FAILED: %v\n", err)
	} else {
		fmt.Println("  validation: OK (every tree spans; edge load <= 1)")
	}
}

func ceilHalf(x int) int {
	if x <= 0 {
		return 1
	}
	return (x + 1) / 2
}
