// Command serve runs the concurrent decomposition-and-broadcast service
// as an HTTP server (the paper's headline application — Ω(k/log n)
// fractionally disjoint trees spreading broadcast traffic — turned into
// a serving layer):
//
//	go run ./cmd/serve -addr :8080
//
//	curl -s localhost:8080/v1/graphs -d '{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0],[0,2],[1,3]]}'
//	curl -s localhost:8080/v1/graphs/<id>/decomposition -d '{"kind":"spanning"}'
//	curl -s localhost:8080/v1/graphs/<id>/broadcast -d '{"kind":"spanning","sources":[0,2],"seed":7}'
//	curl -s localhost:8080/v1/stats
//
// With -store DIR the service persists every computed decomposition to
// a snapshot store (internal/snap) and consults it before packing, so a
// restart over the same directory serves all previously packed graphs
// without recomputing anything. -max-resident N bounds how many
// decompositions stay in memory per registry segment (evicted entries
// reload from the store on demand), and -ingest FILE pre-loads a
// snapshot written by `cmd/decompose -o` before serving.
//
// Every request is logged through log/slog with its request id (the
// X-Request-Id the serving layer assigns and echoes), GET /metrics
// serves the Prometheus text exposition, GET /v1/traces the recent
// per-request phase traces, and -pprof ADDR opens a net/http/pprof
// side listener kept off the API address so profiling endpoints are
// never exposed to API clients.
//
// With -selftest the command instead drives the full loop in-process
// against a real HTTP listener — register, concurrent decomposition
// requests (asserting the singleflight packed exactly once), concurrent
// broadcasts checked byte-identical against a serial replay, a batch
// round-trip (one pack checkout for N demands) plus its streaming
// NDJSON twin, closed- and open-loop load runs, a persist → restart →
// warm-serve phase (asserting zero repacks and survival of a corrupted
// snapshot file), an observability phase (metrics scrape with the
// pack-accounting invariant checked in the exposition text, plus a
// trace round trip from X-Request-Id to /v1/traces), and a stats audit
// — exiting nonzero on any failure. `make ci` runs it as the serving
// smoke test.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cast"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/snap"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 8, "bound on simultaneously executing demands")
	packSeed := flag.Uint64("pack-seed", 1, "seed for packing computations")
	storeDir := flag.String("store", "", "snapshot store directory (empty disables persistence)")
	maxResident := flag.Int("max-resident", 0, "resident decompositions per registry segment (0 = unlimited)")
	pprofAddr := flag.String("pprof", "", "net/http/pprof side-listener address (empty disables)")
	selftest := flag.Bool("selftest", false, "drive the full serving loop in-process and exit")
	var ingest []string
	flag.Func("ingest", "snapshot `file` to pre-load before serving (repeatable)", func(path string) error {
		ingest = append(ingest, path)
		return nil
	})
	flag.Parse()

	svc := serve.New(serve.Config{
		MaxConcurrent: *maxConcurrent,
		PackSeed:      *packSeed,
		StoreDir:      *storeDir,
		MaxResident:   *maxResident,
	})
	if *selftest {
		if err := runSelftest(svc); err != nil {
			fmt.Fprintf(os.Stderr, "selftest: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("selftest: OK")
		return
	}
	for _, path := range ingest {
		sn, err := readSnapshot(path)
		if err != nil {
			log.Fatalf("ingest %s: %v", path, err)
		}
		id, err := svc.Ingest(sn)
		if err != nil {
			log.Fatalf("ingest %s: %v", path, err)
		}
		log.Printf("ingested %s: graph %s, %s decomposition", path, id, sn.Kind)
	}
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}
	log.Printf("serving on %s (max-concurrent=%d store=%q pprof=%q)", *addr, *maxConcurrent, *storeDir, *pprofAddr)
	if err := run(*addr, svc); err != nil {
		log.Fatal(err)
	}
}

// servePprof runs the net/http/pprof endpoints on their own listener
// and mux, so profiling is reachable only on the side address — the
// API mux never sees /debug/pprof and nothing registers on
// http.DefaultServeMux.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("pprof listening on %s", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		log.Printf("pprof listener: %v", err)
	}
}

// readSnapshot loads and decodes one snapshot file (full checksum and
// structural validation; oracle verification happens in Ingest).
func readSnapshot(path string) (*snap.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return snap.Decode(data)
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests with
// http.Server.Shutdown. Broadcast handlers observe the client's request
// context, so even long demand runs cancel promptly when their client
// goes away and cannot hold the drain open.
func run(addr string, svc *serve.Service) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := &http.Server{
		Addr:              addr,
		Handler:           logRequests(logger, serve.NewHandler(svc)),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining in-flight requests)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	svc.FlushStore() // let write-behind snapshot saves land before exit
	log.Printf("bye")
	return nil
}

// logRequests emits one structured log line per request: method, path,
// status, duration, and the request id the serving layer assigned
// (read back from the X-Request-Id response header the inner handler
// set, so the log line and the trace ring agree on the id).
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration", time.Since(start),
			"request_id", w.Header().Get("X-Request-Id"),
		)
	})
}

// statusWriter captures the response status for logging. Flush must be
// forwarded explicitly: the wrapper would otherwise hide the underlying
// http.Flusher and stall the streaming batch endpoint's per-event
// flushes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// runSelftest exercises the full serving loop over a real HTTP listener.
func runSelftest(svc *serve.Service) error {
	srv := httptest.NewServer(serve.NewHandler(svc))
	defer srv.Close()
	client := srv.Client()

	// Register a 6-connected expander over HTTP.
	g := graph.RandomHamCycles(64, 3, ds.NewRand(1))
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	var info serve.GraphInfo
	if err := post(client, srv.URL+"/v1/graphs", serve.RegisterRequest{N: g.N(), Edges: edges}, &info); err != nil {
		return fmt.Errorf("register: %w", err)
	}
	if info.N != g.N() || info.M != g.M() {
		return fmt.Errorf("register echoed n=%d m=%d, want n=%d m=%d", info.N, info.M, g.N(), g.M())
	}
	fmt.Printf("registered %s (n=%d m=%d)\n", info.ID, info.N, info.M)

	// Concurrent decomposition requests: the singleflight cache must
	// pack exactly once per kind.
	const decompCallers = 8
	for _, kind := range []serve.Kind{serve.Dominating, serve.Spanning} {
		var wg sync.WaitGroup
		errs := make([]error, decompCallers)
		infos := make([]serve.DecompInfo, decompCallers)
		for i := 0; i < decompCallers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = post(client, srv.URL+"/v1/graphs/"+info.ID+"/decomposition",
					serve.DecomposeRequest{Kind: kind}, &infos[i])
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("decompose %s caller %d: %w", kind, i, err)
			}
			if infos[i].Trees != infos[0].Trees || infos[i].Size != infos[0].Size {
				return fmt.Errorf("decompose %s: caller %d saw %+v, caller 0 saw %+v", kind, i, infos[i], infos[0])
			}
		}
		fmt.Printf("decomposition %-10s trees=%d size=%.3f (%d concurrent callers)\n",
			kind, infos[0].Trees, infos[0].Size, decompCallers)
	}
	if st := stats(client, srv.URL); st.PackComputes != 2 {
		return fmt.Errorf("singleflight violated: %d packings computed for 2 kinds", st.PackComputes)
	}

	// Concurrent broadcasts over both kinds, checked byte-identical
	// against a second pass of the same (demand, seed) pairs (the
	// schedulers are deterministic, so replaying through the service
	// must reproduce every result exactly).
	const workers, demandsPer = 4, 6
	type key struct {
		kind serve.Kind
		w, d int
	}
	results := make(map[key]cast.Result)
	var mu sync.Mutex
	for pass := 0; pass < 2; pass++ {
		var wg sync.WaitGroup
		errs := make([]error, workers*2)
		for ki, kind := range []serve.Kind{serve.Dominating, serve.Spanning} {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(ki int, kind serve.Kind, w int) {
					defer wg.Done()
					rng := ds.NewRand(uint64(100*ki + w))
					for d := 0; d < demandsPer; d++ {
						dem := cast.UniformDemand(g.N(), g.N()/2+d, rng)
						var resp serve.BroadcastResponse
						if err := post(client, srv.URL+"/v1/graphs/"+info.ID+"/broadcast",
							serve.BroadcastRequest{Kind: kind, Sources: dem.Sources, Seed: uint64(w*demandsPer + d)}, &resp); err != nil {
							errs[ki*workers+w] = err
							return
						}
						mu.Lock()
						k := key{kind, w, d}
						if prev, ok := results[k]; ok && prev != resp.Result {
							errs[ki*workers+w] = fmt.Errorf("%s (%d,%d): replay diverged: %+v vs %+v", kind, w, d, prev, resp.Result)
							mu.Unlock()
							return
						}
						results[k] = resp.Result
						mu.Unlock()
					}
				}(ki, kind, w)
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	fmt.Printf("broadcast: %d concurrent demands per pass, replay byte-identical\n", 2*workers*demandsPer)

	// Chaos smoke: a faulted broadcast over HTTP must degrade gracefully
	// (structured fault accounting, 200 OK) and replay byte-identically.
	faultReq := serve.BroadcastRequest{
		Kind: serve.Spanning, Sources: []int{0, 1, 2, 3}, Seed: 11,
		Fault: &cast.FaultPlan{Round: 1, RandomEdges: 3, Seed: 13},
	}
	var fresp, freplay serve.BroadcastResponse
	if err := post(client, srv.URL+"/v1/graphs/"+info.ID+"/broadcast", faultReq, &fresp); err != nil {
		return fmt.Errorf("faulted broadcast: %w", err)
	}
	if fresp.Fault == nil {
		return fmt.Errorf("faulted broadcast returned no fault accounting: %+v", fresp)
	}
	if f := fresp.Fault.DeliveredFraction; f <= 0 || f > 1 {
		return fmt.Errorf("faulted broadcast delivered fraction %v out of (0,1]", f)
	}
	if err := post(client, srv.URL+"/v1/graphs/"+info.ID+"/broadcast", faultReq, &freplay); err != nil {
		return fmt.Errorf("faulted replay: %w", err)
	}
	if freplay.Result != fresp.Result || *freplay.Fault != *fresp.Fault {
		return fmt.Errorf("faulted replay diverged: %+v vs %+v", freplay, fresp)
	}
	fmt.Printf("chaos: %d edges killed, %d trees surviving, delivered=%.3f retries=%d, replay byte-identical\n",
		fresp.Fault.FailedEdges, fresp.Fault.TreesSurviving,
		fresp.Fault.DeliveredFraction, fresp.Fault.Retries)

	// Batch round-trip: one request, N demands (one invalid on purpose),
	// exactly one additional pack-cache checkout.
	preBatch := stats(client, srv.URL)
	batchReq := serve.BatchRequest{Kind: serve.Spanning, Demands: []serve.BatchDemand{
		{Sources: []int{0, 1, 2}, Seed: 31},
		{Sources: []int{5, 9}, Seed: 32},
		{Sources: []int{g.N() + 1}, Seed: 33}, // error entry, not a request error
		{Sources: []int{7}, Seed: 34},
	}}
	var bresp serve.BatchResponse
	if err := post(client, srv.URL+"/v1/graphs/"+info.ID+"/broadcast/batch", batchReq, &bresp); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if len(bresp.Entries) != len(batchReq.Demands) || bresp.Summary.Succeeded != 3 || bresp.Summary.Failed != 1 {
		return fmt.Errorf("batch entries wrong: %+v", bresp)
	}
	if st := stats(client, srv.URL); st.PackRequests != preBatch.PackRequests+1 {
		return fmt.Errorf("batch of %d demands made %d pack checkouts, want 1",
			len(batchReq.Demands), st.PackRequests-preBatch.PackRequests)
	}
	fmt.Printf("batch: %d demands in one request, %d succeeded, 1 pack checkout\n",
		bresp.Summary.Demands, bresp.Summary.Succeeded)

	// Streaming round-trip: the same batch as NDJSON events — one per
	// demand in completion order, then the terminal summary.
	events, err := streamBatchEvents(client, srv.URL+"/v1/graphs/"+info.ID+"/broadcast/batch?stream=1", batchReq)
	if err != nil {
		return fmt.Errorf("streaming batch: %w", err)
	}
	if len(events) != len(batchReq.Demands)+1 {
		return fmt.Errorf("streamed %d events for %d demands", len(events), len(batchReq.Demands))
	}
	last := events[len(events)-1]
	if last.Type != serve.EventSummary || last.Summary == nil || *last.Summary != bresp.Summary {
		return fmt.Errorf("streamed summary %+v diverges from batch summary %+v", last.Summary, bresp.Summary)
	}
	fmt.Printf("stream: %d events, terminal summary matches the batch response\n", len(events))

	// Closed-loop load run through the same (already warm) cache.
	rep, err := serve.GenerateLoad(svc, serve.LoadConfig{
		GraphID: info.ID, Kind: serve.Spanning, Workers: 4, Demands: 8, Seed: 5,
	})
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	fmt.Printf("load: %d demands, %d workers, %.0f demands/s, %.2f msgs/round\n",
		rep.Demands, rep.Workers, rep.DemandsPerSec, rep.MsgsPerRound)

	// Open-loop load run: deterministic exponential arrivals, per-demand
	// latency percentiles.
	orep, err := serve.GenerateLoad(svc, serve.LoadConfig{
		GraphID: info.ID, Kind: serve.Spanning, Seed: 8,
		ArrivalRate: 2000, Arrivals: 16,
	})
	if err != nil {
		return fmt.Errorf("open load: %w", err)
	}
	if orep.Completed != orep.Demands || orep.LatencyP50 <= 0 || orep.LatencyP99 < orep.LatencyP50 {
		return fmt.Errorf("open load degenerate: %+v", orep)
	}
	fmt.Printf("open load: %d arrivals at %.0f/s, p50=%s p95=%s p99=%s peak-pending=%d\n",
		orep.Completed, orep.ArrivalRate, orep.LatencyP50, orep.LatencyP95, orep.LatencyP99, orep.MaxPendingSeen)
	for _, ph := range orep.Phases {
		if ph.Count == 0 {
			continue
		}
		fmt.Printf("  phase %-10s count=%d p50=%s p95=%s max=%s\n",
			ph.Phase, ph.Count, time.Duration(ph.P50), time.Duration(ph.P95), time.Duration(ph.Max))
	}

	// Chaos load run: every demand faulted, service keeps serving.
	crep, err := serve.GenerateLoad(svc, serve.LoadConfig{
		GraphID: info.ID, Kind: serve.Spanning, Workers: 4, Demands: 4, Seed: 6,
		FaultRate: 1, FaultSeed: 21, FaultEdges: 2,
	})
	if err != nil {
		return fmt.Errorf("chaos load: %w", err)
	}
	if crep.FaultedDemands != crep.Demands {
		return fmt.Errorf("chaos load faulted %d of %d demands, want all", crep.FaultedDemands, crep.Demands)
	}
	if crep.DeliveredFraction <= 0 || crep.DeliveredFraction > 1 {
		return fmt.Errorf("chaos load delivered fraction %v out of (0,1]", crep.DeliveredFraction)
	}
	fmt.Printf("chaos load: %d faulted demands, delivered=%.3f retries=%d lost=%d\n",
		crep.FaultedDemands, crep.DeliveredFraction, crep.Retries, crep.MessagesLost)

	// Persistence: persist → restart → warm-serve, then survive a
	// corrupted snapshot file by recomputing.
	if err := runPersistSelftest(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}

	// Observability: metrics scrape and trace round trip on a fresh
	// service, so the exposition values are exactly predictable.
	if err := runObsSelftest(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}

	// Final stats audit.
	st := stats(client, srv.URL)
	// Two passes × two kinds of concurrent broadcasts, two chaos smokes,
	// two batches (streamed and not) of three valid demands each, and the
	// three load runs.
	wantReqs := uint64(2*2*workers*demandsPer + 2 + 2*3 + rep.Demands + crep.Demands + orep.Completed)
	if st.Requests != wantReqs {
		return fmt.Errorf("stats count %d requests, want %d", st.Requests, wantReqs)
	}
	wantFaulted := uint64(2 + crep.Demands)
	if st.FaultedRequests != wantFaulted {
		return fmt.Errorf("stats count %d faulted requests, want %d", st.FaultedRequests, wantFaulted)
	}
	if st.DeliveredFraction <= 0 || st.DeliveredFraction > 1 {
		return fmt.Errorf("stats delivered fraction %v out of (0,1]", st.DeliveredFraction)
	}
	if st.PackComputes != 2 {
		return fmt.Errorf("stats count %d packings, want 2", st.PackComputes)
	}
	// Every pack request is exactly one of: the computing leader, a true
	// cache hit, coalesced behind an in-flight leader, or restored from
	// the snapshot store.
	if st.PackRequests != st.PackComputes+st.CacheHits+st.Coalesced+st.StoreHits {
		return fmt.Errorf("pack accounting leaks: %d requests != %d computes + %d hits + %d coalesced + %d store hits",
			st.PackRequests, st.PackComputes, st.CacheHits, st.Coalesced, st.StoreHits)
	}
	if st.EventsDropped != 0 {
		return fmt.Errorf("selftest stream dropped %d events", st.EventsDropped)
	}
	if st.Graphs != 1 || len(st.PerGraph) != 1 || st.PerGraph[0].Requests != wantReqs {
		return fmt.Errorf("per-graph stats wrong: %+v", st)
	}
	if st.PerGraph[0].FaultedRequests != wantFaulted {
		return fmt.Errorf("per-graph faulted count %d, want %d", st.PerGraph[0].FaultedRequests, wantFaulted)
	}
	fmt.Printf("stats: %d requests (%d faulted), %d rounds, %d/%d pack computes/requests, max congestion v=%d e=%d, delivered=%.3f\n",
		st.Requests, st.FaultedRequests, st.Rounds, st.PackComputes, st.PackRequests,
		st.MaxVertexCongestion, st.MaxEdgeCongestion, st.DeliveredFraction)
	return nil
}

// runPersistSelftest drives the durable-store loop in-process: a cold
// service packs and persists, a second service over the same directory
// serves warm with zero repacks and byte-identical broadcasts, and a
// third survives a deliberately corrupted snapshot file by recomputing.
func runPersistSelftest() error {
	const dir = "selftest.store"
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := serve.Config{MaxConcurrent: 4, PackSeed: 1, StoreDir: dir}
	g := graph.RandomHamCycles(64, 3, ds.NewRand(1))
	sources := []int{0, 7, 13}

	cold := serve.New(cfg)
	id, err := cold.RegisterGraph(g)
	if err != nil {
		return err
	}
	for _, kind := range []serve.Kind{serve.Dominating, serve.Spanning} {
		if _, err := cold.Decompose(id, kind); err != nil {
			return fmt.Errorf("cold decompose %s: %w", kind, err)
		}
	}
	ref := make(map[serve.Kind]cast.Result)
	for _, kind := range []serve.Kind{serve.Dominating, serve.Spanning} {
		res, err := cold.Broadcast(id, kind, sources, 42)
		if err != nil {
			return fmt.Errorf("cold broadcast %s: %w", kind, err)
		}
		ref[kind] = res
	}
	cold.FlushStore()
	if cst := cold.Stats(); cst.PackComputes != 2 || cst.StoreMisses != 2 {
		return fmt.Errorf("cold service: computes=%d misses=%d, want 2/2", cst.PackComputes, cst.StoreMisses)
	}

	warm := serve.New(cfg)
	if _, err := warm.RegisterGraph(g); err != nil {
		return err
	}
	for _, kind := range []serve.Kind{serve.Dominating, serve.Spanning} {
		info, err := warm.Decompose(id, kind)
		if err != nil {
			return fmt.Errorf("warm decompose %s: %w", kind, err)
		}
		if !info.Cached {
			return fmt.Errorf("warm %s decomposition was repacked", kind)
		}
		res, err := warm.Broadcast(id, kind, sources, 42)
		if err != nil {
			return fmt.Errorf("warm broadcast %s: %w", kind, err)
		}
		if res != ref[kind] {
			return fmt.Errorf("warm %s broadcast diverged: %+v vs %+v", kind, res, ref[kind])
		}
	}
	wst := warm.Stats()
	if wst.PackComputes != 0 || wst.StoreHits != 2 {
		return fmt.Errorf("warm restart: computes=%d store hits=%d, want 0/2", wst.PackComputes, wst.StoreHits)
	}
	if wst.PackRequests != wst.PackComputes+wst.CacheHits+wst.Coalesced+wst.StoreHits {
		return fmt.Errorf("warm pack accounting leaks: %+v", wst)
	}

	// Corrupt one snapshot: the next restart must recompute that kind
	// (and count the damage) instead of erroring to the client.
	victim := snap.NewStore(dir).Path(id, string(serve.Dominating), snap.OptionsDigest(cfg.PackSeed, cfg.Epsilon))
	data, err := os.ReadFile(victim)
	if err != nil {
		return fmt.Errorf("reading snapshot to corrupt: %w", err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		return err
	}
	hurt := serve.New(cfg)
	if _, err := hurt.RegisterGraph(g); err != nil {
		return err
	}
	for _, kind := range []serve.Kind{serve.Dominating, serve.Spanning} {
		if _, err := hurt.Decompose(id, kind); err != nil {
			return fmt.Errorf("post-corruption decompose %s: %w", kind, err)
		}
	}
	hurt.FlushStore() // the repaired save must land before the deferred RemoveAll
	hst := hurt.Stats()
	if hst.PackComputes != 1 || hst.StoreErrors == 0 || hst.StoreHits != 1 {
		return fmt.Errorf("corruption handling: computes=%d errors=%d hits=%d, want 1/≥1/1",
			hst.PackComputes, hst.StoreErrors, hst.StoreHits)
	}
	fmt.Printf("persist: warm restart served 2 kinds with 0 repacks, byte-identical broadcasts; corrupted snapshot recomputed\n")
	return nil
}

// runObsSelftest drives the observability surface over HTTP against a
// fresh service: a traced decomposition and a traced broadcast, each
// resolved from its echoed X-Request-Id through GET /v1/traces to the
// recorded phase spans (and the pack profile attachment), then a
// /metrics scrape whose exposition text must satisfy the
// pack-accounting invariant and expose the phase histograms.
func runObsSelftest() error {
	svc := serve.New(serve.Config{MaxConcurrent: 4, PackSeed: 1})
	srv := httptest.NewServer(serve.NewHandler(svc))
	defer srv.Close()
	client := srv.Client()

	g := graph.RandomHamCycles(48, 3, ds.NewRand(2))
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	var info serve.GraphInfo
	if err := post(client, srv.URL+"/v1/graphs", serve.RegisterRequest{N: g.N(), Edges: edges}, &info); err != nil {
		return fmt.Errorf("register: %w", err)
	}

	decompID, err := postCaptureID(client, srv.URL+"/v1/graphs/"+info.ID+"/decomposition",
		serve.DecomposeRequest{Kind: serve.Spanning}, new(serve.DecompInfo))
	if err != nil {
		return fmt.Errorf("decompose: %w", err)
	}
	castID, err := postCaptureID(client, srv.URL+"/v1/graphs/"+info.ID+"/broadcast",
		serve.BroadcastRequest{Kind: serve.Spanning, Sources: []int{0, 5}, Seed: 3},
		new(serve.BroadcastResponse))
	if err != nil {
		return fmt.Errorf("broadcast: %w", err)
	}
	if decompID == "" || castID == "" || decompID == castID {
		return fmt.Errorf("request ids degenerate: decompose %q broadcast %q", decompID, castID)
	}

	var traces serve.TracesResponse
	if err := getJSON(client, srv.URL+"/v1/traces", &traces); err != nil {
		return fmt.Errorf("traces: %w", err)
	}
	dtr, err := findTrace(traces, decompID)
	if err != nil {
		return err
	}
	for _, name := range []string{"registry", "pack"} {
		if !hasSpan(dtr, name) {
			return fmt.Errorf("decompose trace %s missing %q span: %+v", decompID, name, dtr.Spans)
		}
	}
	if dtr.Attached["pack_profile"] == nil {
		return fmt.Errorf("decompose trace %s carries no pack profile", decompID)
	}
	btr, err := findTrace(traces, castID)
	if err != nil {
		return err
	}
	for _, name := range []string{"registry", "clone", "run"} {
		if !hasSpan(btr, name) {
			return fmt.Errorf("broadcast trace %s missing %q span: %+v", castID, name, btr.Spans)
		}
	}

	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("metrics read: %w", err)
	}
	text := string(body)
	val := func(name string) float64 {
		v, verr := metricValue(text, name)
		if verr != nil && err == nil {
			err = verr
		}
		return v
	}
	pr := val("repro_serve_pack_requests_total")
	pc := val("repro_serve_pack_computes_total")
	ch := val("repro_serve_cache_hits_total")
	co := val("repro_serve_coalesced_total")
	sh := val("repro_serve_store_hits_total")
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	if pr != pc+ch+co+sh {
		return fmt.Errorf("exposed pack accounting leaks: %v requests != %v computes + %v hits + %v coalesced + %v store hits",
			pr, pc, ch, co, sh)
	}
	if v := val("repro_serve_requests_total"); v != 1 {
		return fmt.Errorf("exposed %v served requests, want 1", v)
	}
	if n := strings.Count(text, " histogram\n"); n < 3 {
		return fmt.Errorf("exposition declares %d histograms, want >= 3", n)
	}
	fmt.Printf("obs: traces %s/%s carry phase spans + pack profile; /metrics invariant holds (%v pack requests)\n",
		decompID, castID, pr)
	return nil
}

// findTrace locates one trace by id in a /v1/traces response.
func findTrace(traces serve.TracesResponse, id string) (obs.TraceData, error) {
	for _, tr := range traces.Traces {
		if tr.ID == id {
			return tr, nil
		}
	}
	return obs.TraceData{}, fmt.Errorf("request %s not in the trace ring (%d resident)", id, len(traces.Traces))
}

// hasSpan reports whether the trace recorded a span under name.
func hasSpan(tr obs.TraceData, name string) bool {
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// metricValue extracts one un-labelled sample value from Prometheus
// exposition text.
func metricValue(text, name string) (float64, error) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseFloat(strings.TrimSpace(rest), 64)
		}
	}
	return 0, fmt.Errorf("metric %s not in exposition", name)
}

// streamBatchEvents posts a batch to the streaming endpoint and decodes
// the NDJSON event stream through the terminal summary.
func streamBatchEvents(client *http.Client, url string, req serve.BatchRequest) ([]serve.BatchEvent, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return nil, fmt.Errorf("stream content type %q", ct)
	}
	var events []serve.BatchEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev serve.BatchEvent
		if err := dec.Decode(&ev); err != nil {
			return events, fmt.Errorf("stream decode after %d events: %w", len(events), err)
		}
		events = append(events, ev)
		if ev.Type == serve.EventSummary {
			return events, nil
		}
	}
}

func post(client *http.Client, url string, body, out any) error {
	_, err := postCaptureID(client, url, body, out)
	return err
}

// postCaptureID posts like post and also returns the X-Request-Id the
// serving layer echoed on the response.
func postCaptureID(client *http.Client, url string, body, out any) (string, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return "", err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return "", fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(buf.Bytes()))
	}
	return resp.Header.Get("X-Request-Id"), json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func stats(client *http.Client, base string) serve.Stats {
	var st serve.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}
