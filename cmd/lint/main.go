// Command lint runs the project's static-analysis suite (internal/lint)
// over the module: maprange and nondetsource police the determinism
// contract of the fingerprinted packages, guardedfield polices the
// `// guards` mutex convention, pkgdoc polices doc comments on the
// API-surface packages' exported declarations, and allowdirective
// polices the //repro:allow suppression inventory itself.
//
// Usage:
//
//	go run ./cmd/lint                    # every package in the module
//	go run ./cmd/lint ./internal/graph   # a single package
//	go run ./cmd/lint -analyzers maprange ./internal/stp
//	go run ./cmd/lint -list              # describe the analyzers
//
// Exit status is nonzero when any finding survives suppression, so
// `make lint` is a hard CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	analyzersFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All {
			scope := "all packages"
			if a.FingerprintedOnly {
				scope = "fingerprinted packages"
			}
			if a.DocScopedOnly {
				scope = "API-surface packages"
			}
			fmt.Printf("%-15s (%s)\n    %s\n", a.Name, scope, a.Doc)
		}
		return
	}

	cfg := lint.Config{}
	if *analyzersFlag != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*analyzersFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (known: %s)", name, strings.Join(lint.KnownAnalyzers(), ", "))
			}
			cfg.Analyzers = append(cfg.Analyzers, a)
		}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := loader.ResolvePatterns(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.Run(cfg, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s) across %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lint: "+format+"\n", args...)
	os.Exit(1)
}
