// Command connectivity compares the exact vertex/edge connectivity with
// the packing-based O(log n)-approximation of Corollary 1.7.
//
// Usage:
//
//	connectivity -family hypercube -param 7
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	decomp "repro"
)

func main() {
	family := flag.String("family", "hypercube", "graph family: hypercube|complete|torus|harary|hamcycles|gnp")
	param := flag.Int("param", 6, "family parameter")
	n := flag.Int("n", 64, "number of vertices (when the family takes one)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	g, err := makeGraph(*family, *param, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	kappa := decomp.VertexConnectivity(g)
	tExactK := time.Since(t0)

	t0 = time.Now()
	lambda := decomp.EdgeConnectivity(g)
	tExactL := time.Since(t0)

	t0 = time.Now()
	est, p, err := decomp.ApproxVertexConnectivity(g, decomp.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	tApprox := time.Since(t0)

	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("exact:  κ=%d (%v)   λ=%d (%v)\n", kappa, tExactK, lambda, tExactL)
	fmt.Printf("approx: κ ∈ [%.3f, κ] via a %d-tree packing (%v)\n", est, len(p.Trees), tApprox)
	if est > 0 {
		fmt.Printf("approximation ratio: %.2f (paper guarantees O(log n) = ~%.1f here)\n",
			float64(kappa)/est, log2(float64(g.N())))
	}
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

func makeGraph(family string, param, n int, seed uint64) (*decomp.Graph, error) {
	switch family {
	case "hypercube":
		return decomp.Hypercube(param), nil
	case "complete":
		return decomp.Complete(n), nil
	case "torus":
		return decomp.Torus(param, param), nil
	case "harary":
		return decomp.Harary(param, n)
	case "hamcycles":
		return decomp.RandomHamCycles(n, param, seed), nil
	case "gnp":
		return decomp.Gnp(n, float64(param)/100, seed), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
