// Command bench executes the E1–E5 experiment benchmarks (the same
// workloads go test -bench runs, via internal/benchmarks) and writes the
// results as BENCH_<label>.json, seeding the repo's performance
// trajectory. An optional baseline file adds per-benchmark speedups:
//
//	go run ./cmd/bench -label pr1 -baseline BENCH_seed.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchmarks"
)

// Entry is one benchmark measurement.
type Entry struct {
	Bench      string             `json:"bench"`
	NsPerOp    float64            `json:"ns_per_op"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<label>.json payload.
type Report struct {
	Label    string             `json:"label"`
	Date     string             `json:"date"`
	GoOS     string             `json:"goos"`
	GoArch   string             `json:"goarch"`
	NumCPU   int                `json:"num_cpu"`
	Note     string             `json:"note,omitempty"`
	Results  []Entry            `json:"results"`
	Baseline *Report            `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	label := flag.String("label", "local", "label for the output file BENCH_<label>.json")
	baselinePath := flag.String("baseline", "", "optional prior BENCH_*.json to embed and compute speedups against")
	filter := flag.String("filter", "", "optional regexp restricting which benchmarks run")
	outDir := flag.String("out", ".", "directory for the output file")
	flag.Parse()

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			log.Fatalf("bad -filter: %v", err)
		}
	}

	rep := Report{
		Label:  *label,
		Date:   time.Now().UTC().Format(time.RFC3339),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	for _, c := range benchmarks.Cases() {
		name := c.FullName()
		if re != nil && !re.MatchString(name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-40s ", name)
		res := testing.Benchmark(c.Bench)
		entry := Entry{
			Bench:      name,
			NsPerOp:    float64(res.NsPerOp()),
			Iterations: res.N,
			Metrics:    res.Extra,
		}
		rep.Results = append(rep.Results, entry)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op  (n=%d)\n", entry.NsPerOp, res.N)
	}

	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			log.Fatalf("read baseline: %v", err)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			log.Fatalf("parse baseline: %v", err)
		}
		base.Baseline = nil // never nest more than one level
		rep.Baseline = &base
		rep.Speedup = map[string]float64{}
		byName := map[string]Entry{}
		for _, e := range base.Results {
			byName[e.Bench] = e
		}
		for _, e := range rep.Results {
			if b, ok := byName[e.Bench]; ok && e.NsPerOp > 0 {
				rep.Speedup[e.Bench] = b.NsPerOp / e.NsPerOp
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", *outDir, *label)
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println(path)
}
