// Command bench executes the E1–E8 experiment benchmarks (the same
// workloads go test -bench runs, via internal/benchmarks) and writes the
// results as BENCH_<label>.json, seeding the repo's performance
// trajectory. An optional baseline file adds per-benchmark speedups:
//
//	go run ./cmd/bench -label pr1 -baseline BENCH_seed.json
//
// With -check the command writes nothing and instead gates: every
// benchmark present in the baseline must be no more than -tolerance
// (fractional, default 0.20) slower than its baseline ns/op, or the
// process exits nonzero — the pre-merge `make bench-check` regression
// gate. A benchmark over tolerance is re-measured up to -retries times
// and gated on its best attempt, so a transient host-contention spike
// on a shared box does not fail the gate while a real regression (slow
// on every attempt) still does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchmarks"
)

// Entry is one benchmark measurement.
type Entry struct {
	Bench      string             `json:"bench"`
	NsPerOp    float64            `json:"ns_per_op"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<label>.json payload.
type Report struct {
	Label    string             `json:"label"`
	Date     string             `json:"date"`
	GoOS     string             `json:"goos"`
	GoArch   string             `json:"goarch"`
	NumCPU   int                `json:"num_cpu"`
	Note     string             `json:"note,omitempty"`
	Results  []Entry            `json:"results"`
	Baseline *Report            `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	label := flag.String("label", "local", "label for the output file BENCH_<label>.json")
	baselinePath := flag.String("baseline", "", "optional prior BENCH_*.json to embed and compute speedups against")
	filter := flag.String("filter", "", "optional regexp restricting which benchmarks run")
	outDir := flag.String("out", ".", "directory for the output file")
	check := flag.Bool("check", false, "regression-gate mode: compare against -baseline, write nothing, exit nonzero on regression")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional slowdown per benchmark before -check fails (0.20 = 20%)")
	retries := flag.Int("retries", 2, "extra -check measurements for a benchmark over tolerance; gated on the best attempt")
	flag.Parse()

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			log.Fatalf("bad -filter: %v", err)
		}
	}
	if *check && *baselinePath == "" {
		log.Fatal("-check requires -baseline BENCH_*.json")
	}
	var base *Report
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			log.Fatalf("read baseline: %v", err)
		}
		base = &Report{}
		if err := json.Unmarshal(raw, base); err != nil {
			log.Fatalf("parse baseline: %v", err)
		}
		base.Baseline = nil // never nest more than one level
	}

	rep := Report{
		Label:  *label,
		Date:   time.Now().UTC().Format(time.RFC3339),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	cases := benchmarks.Cases()
	caseByName := make(map[string]benchmarks.Case, len(cases))
	for _, c := range cases {
		name := c.FullName()
		caseByName[name] = c
		if re != nil && !re.MatchString(name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-40s ", name)
		res := testing.Benchmark(c.Bench)
		entry := Entry{
			Bench:      name,
			NsPerOp:    float64(res.NsPerOp()),
			Iterations: res.N,
			Metrics:    res.Extra,
		}
		rep.Results = append(rep.Results, entry)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op  (n=%d)\n", entry.NsPerOp, res.N)
	}

	var byName map[string]Entry
	if base != nil {
		byName = make(map[string]Entry, len(base.Results))
		for _, e := range base.Results {
			byName[e.Bench] = e
		}
	}

	if *check {
		failed := 0
		ran := make(map[string]bool, len(rep.Results))
		fmt.Printf("%-45s %14s %14s %8s  %s\n", "bench", "baseline ns", "current ns", "ratio", "status")
		for _, e := range rep.Results {
			ran[e.Bench] = true
			b, ok := byName[e.Bench]
			if !ok || b.NsPerOp <= 0 {
				fmt.Printf("%-45s %14s %14.0f %8s  no baseline, skipped\n", e.Bench, "-", e.NsPerOp, "-")
				continue
			}
			// Gate on the best attempt: re-measure over-tolerance cases so a
			// one-off scheduling hiccup doesn't read as a regression.
			best := e.NsPerOp
			attempts := 1
			for best/b.NsPerOp > 1+*tolerance && attempts <= *retries {
				res := testing.Benchmark(caseByName[e.Bench].Bench)
				attempts++
				if ns := float64(res.NsPerOp()); ns < best {
					best = ns
				}
			}
			ratio := best / b.NsPerOp
			status := "ok"
			if ratio > 1+*tolerance {
				status = "REGRESSED"
				failed++
			}
			if attempts > 1 {
				status += fmt.Sprintf(" (best of %d)", attempts)
			}
			fmt.Printf("%-45s %14.0f %14.0f %8.2f  %s\n", e.Bench, b.NsPerOp, best, ratio, status)
		}
		// Every baseline benchmark must still exist (modulo -filter): a
		// silently dropped or renamed case would otherwise un-gate itself.
		for _, b := range base.Results {
			if ran[b.Bench] || (re != nil && !re.MatchString(b.Bench)) {
				continue
			}
			fmt.Printf("%-45s %14.0f %14s %8s  MISSING from current run\n", b.Bench, b.NsPerOp, "-", "-")
			failed++
		}
		if failed > 0 {
			fmt.Printf("\n%d benchmark(s) regressed beyond %.0f%% of (or went missing from) %s\n", failed, *tolerance*100, *baselinePath)
			os.Exit(1)
		}
		fmt.Printf("\nall benchmarks within %.0f%% of %s\n", *tolerance*100, *baselinePath)
		return
	}

	if base != nil {
		rep.Baseline = base
		rep.Speedup = map[string]float64{}
		for _, e := range rep.Results {
			if b, ok := byName[e.Bench]; ok && e.NsPerOp > 0 {
				rep.Speedup[e.Bench] = b.NsPerOp / e.NsPerOp
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", *outDir, *label)
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println(path)
}
