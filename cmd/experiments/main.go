// Command experiments runs the full claimed-vs-measured suite of
// DESIGN.md (E1–E10) and prints one table per experiment. EXPERIMENTS.md
// is a captured run of this tool.
//
// Usage: experiments [-quick] [-only E3]
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"
	"time"

	decomp "repro"
	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/lower"
	"repro/internal/sim"
	"repro/internal/stp"
	"repro/internal/stpdist"
	"repro/internal/tester"
)

var (
	quick = flag.Bool("quick", false, "smaller sweeps")
	only  = flag.String("only", "", "run only the named experiment (e.g. E3)")
)

func main() {
	flag.Parse()
	experiments := []struct {
		id  string
		fn  func()
		why string
	}{
		{"E1", e1, "Thm 1.1: distributed dominating-tree packing"},
		{"E2", e2, "Thm 1.2: centralized O~(m) packing scaling"},
		{"E3", e3, "Thm 1.3: spanning-tree packing"},
		{"E4", e4, "Cor 1.4: V-CONGEST broadcast throughput"},
		{"E5", e5, "Cor 1.5: E-CONGEST broadcast throughput"},
		{"E6", e6, "Cor 1.6: oblivious routing congestion"},
		{"E7", e7, "Cor 1.7: vertex connectivity approximation"},
		{"E8", e8, "Cor A.1: gossiping"},
		{"E9", e9, "Lemma E.1: packing tester"},
		{"E10", e10, "App G: lower-bound family"},
	}
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("\n## %s — %s\n\n", e.id, e.why)
		e.fn()
	}
}

func hypercubes() []int {
	if *quick {
		return []int{4, 5}
	}
	return []int{4, 5, 6, 7}
}

// E1: Theorem 1.1 — distributed fractional dominating-tree packing,
// including the Remark 3.1 try-and-error loop with the Appendix E tester.
func e1() {
	fmt.Printf("%-10s %6s %6s %8s %8s %10s %10s %12s %10s\n",
		"graph", "n", "k", "size", "k/size", "maxMember", "height", "rounds", "D+√n·lg⁴")
	for _, d := range hypercubes() {
		g := graph.Hypercube(d)
		res, err := cdsdist.Pack(g, cds.Options{Seed: 7})
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		p := res.Packing
		n := float64(g.N())
		envelope := (float64(d) + math.Sqrt(n)) * math.Pow(math.Log2(n), 4)
		fmt.Printf("%-10s %6d %6d %8.3f %8.2f %10d %10d %12d %10.0f\n",
			fmt.Sprintf("Q%d", d), g.N(), d, p.Size(), float64(d)/p.Size(),
			p.MaxTreeCount(g.N()), p.MaxTreeHeight(), res.Meter.TotalRounds(), envelope)
	}
	fmt.Println("\nclaims: size=Ω(k/log n) [k/size=O(log n)], membership O(log n),")
	fmt.Println("tree diameter O~(n/k), rounds O~(min{D+√n, n/k}).")
}

// E2: Theorem 1.2 — centralized packing, runtime scaling with m.
func e2() {
	fmt.Printf("%-12s %8s %8s %8s %10s %10s %12s\n", "graph", "n", "m", "size", "valid", "ms", "ms/(m·lg²n)")
	sizes := []int{5, 6, 7, 8}
	if !*quick {
		sizes = append(sizes, 9, 10)
	}
	for _, d := range sizes {
		g := graph.Hypercube(d)
		t0 := time.Now()
		p, err := cds.Pack(g, cds.Options{Seed: 7})
		ms := time.Since(t0).Seconds() * 1000
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		logn := math.Log2(float64(g.N()) + 2)
		fmt.Printf("%-12s %8d %8d %8.3f %6d/%-3d %10.1f %12.5f\n",
			fmt.Sprintf("Q%d", d), g.N(), g.M(), p.Size(),
			p.Stats.ValidClasses, p.Stats.Classes, ms,
			ms/(float64(g.M())*logn*logn))
	}
	fmt.Println("\nclaim: O~(m) time — the normalized column ms/(m·log²n) should stay")
	fmt.Println("roughly flat as m grows (the try-and-error loop adds its log-factor).")
}

// E3: Theorem 1.3 — spanning-tree packing size vs ⌈(λ-1)/2⌉.
func e3() {
	type row struct {
		name   string
		g      *graph.Graph
		lambda int
	}
	rows := []row{
		{"C12", graph.Cycle(12), 2},
		{"Q4", graph.Hypercube(4), 4},
		{"Q6", graph.Hypercube(6), 6},
		{"K16", graph.Complete(16), 15},
		{"K32", graph.Complete(32), 31},
	}
	if *quick {
		rows = rows[:3]
	}
	fmt.Printf("%-8s %4s %10s %8s %10s %10s %10s\n",
		"graph", "λ", "⌈(λ-1)/2⌉", "size", "size/bnd", "edgeTrees", "iters")
	for _, r := range rows {
		p, err := stp.Pack(r.g, stp.Options{Seed: 3, KnownLambda: r.lambda})
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		bound := float64(ceilHalf(r.lambda - 1))
		if bound < 1 {
			bound = 1
		}
		fmt.Printf("%-8s %4d %10.0f %8.3f %10.3f %10d %10d\n",
			r.name, r.lambda, bound, p.Size(), p.Size()/bound,
			p.MaxEdgeTreeCount(r.g), p.Stats.Iterations)
	}
	// Distributed run on a small instance.
	g := graph.Hypercube(4)
	res, err := stpdist.Pack(g, stp.Options{Seed: 3, KnownLambda: 4, Epsilon: 0.2})
	if err == nil {
		fmt.Printf("\ndistributed (Q4): size=%.3f rounds=%d messages=%d\n",
			res.Packing.Size(), res.Meter.TotalRounds(), res.Meter.Messages)
	}
	fmt.Println("\nclaims: size = ⌈(λ-1)/2⌉(1-ε); edge membership O(log³n);")
	fmt.Println("distributed rounds O~(D+√(nλ)).")
}

// E4: Corollary 1.4 — broadcast throughput vs the single-tree baseline.
func e4() {
	fmt.Printf("%-14s %4s %8s %10s %10s %10s %10s\n",
		"graph", "k", "pack sz", "pack rds", "tree rds", "speedup", "Ω(k/lg n)")
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"Q6", graph.Hypercube(6), 6},
		{"Q7", graph.Hypercube(7), 7},
		{"Ham16_256", graph.RandomHamCycles(256, 16, ds.NewRand(2)), 30},
	}
	if *quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		p, err := decomp.PackDominatingTrees(c.g, decomp.WithSeed(11))
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		srcs := decomp.UniformSources(c.g.N(), 4*c.g.N(), 13)
		multi, err := decomp.Broadcast(c.g, p, srcs, 17)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		single, err := decomp.SingleTreeBroadcast(c.g, srcs, decomp.VCongest, 17)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		fmt.Printf("%-14s %4d %8.2f %10d %10d %10.2f %10.2f\n",
			c.name, c.k, p.Size(), multi.Rounds, single.Rounds,
			float64(single.Rounds)/float64(multi.Rounds),
			float64(c.k)/math.Log2(float64(c.g.N())+2))
	}
	fmt.Println("\nclaim: throughput Ω(k/log n) msgs/round (single tree: <=1);")
	fmt.Println("crossover: for k below ~log n the packing size is ~1 and the")
	fmt.Println("two strategies tie — visible on low-k rows and in E8.")
}

// E5: Corollary 1.5 — E-CONGEST broadcast via spanning trees.
func e5() {
	fmt.Printf("%-8s %4s %10s %10s %10s %10s\n", "graph", "λ", "pack sz", "pack rds", "tree rds", "speedup")
	for _, c := range []struct {
		name string
		g    *graph.Graph
		l    int
	}{
		{"K16", graph.Complete(16), 15},
		{"Q5", graph.Hypercube(5), 5},
	} {
		p, err := decomp.PackSpanningTrees(c.g, decomp.WithSeed(19), decomp.WithKnownConnectivity(c.l))
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		srcs := decomp.UniformSources(c.g.N(), 4*c.g.N(), 23)
		multi, err := decomp.BroadcastEdges(c.g, p, srcs, 29)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		single, err := decomp.SingleTreeBroadcast(c.g, srcs, decomp.ECongest, 29)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		fmt.Printf("%-8s %4d %10.2f %10d %10d %10.2f\n",
			c.name, c.l, p.Size(), multi.Rounds, single.Rounds,
			float64(single.Rounds)/float64(multi.Rounds))
	}
	fmt.Println("\nclaim: throughput ⌈(λ-1)/2⌉(1-ε) msgs/round.")
}

// E6: Corollary 1.6 — oblivious routing congestion competitiveness.
func e6() {
	fmt.Printf("%-8s %4s %8s %14s %12s %12s\n",
		"graph", "k", "N", "maxNodeCong", "opt N/k", "competit.")
	for _, c := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"Q5", graph.Hypercube(5), 5},
		{"Q6", graph.Hypercube(6), 6},
	} {
		p, err := decomp.PackDominatingTrees(c.g, decomp.WithSeed(31))
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		nMsgs := 6 * c.g.N()
		srcs := decomp.UniformSources(c.g.N(), nMsgs, 37)
		res, err := decomp.Broadcast(c.g, p, srcs, 41)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		opt := float64(nMsgs) / float64(c.k)
		fmt.Printf("%-8s %4d %8d %14d %12.1f %12.2f\n",
			c.name, c.k, nMsgs, res.MaxVertexCongestion, opt,
			float64(res.MaxVertexCongestion)/opt)
	}
	fmt.Println("\nclaim: vertex-congestion competitiveness O(log n) — note any")
	fmt.Println("point-to-point oblivious routing is Ω(√n)-competitive [24].")
}

// E7: Corollary 1.7 — vertex connectivity approximation.
func e7() {
	h10, _ := graph.Harary(10, 128)
	fmt.Printf("%-14s %6s %10s %8s %10s\n", "graph", "κ", "estimate", "ratio", "10·lg n")
	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{
		{"Q6", graph.Hypercube(6)},
		{"H10_128", h10},
		{"Torus10", graph.Torus(10, 10)},
		{"K24", graph.Complete(24)},
	} {
		kappa := flow.VertexConnectivity(c.g)
		est, _, err := cds.ApproxVertexConnectivity(c.g, cds.Options{Seed: 43})
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		fmt.Printf("%-14s %6d %10.3f %8.2f %10.1f\n",
			c.name, kappa, est, float64(kappa)/est, 10*math.Log2(float64(c.g.N())+2))
	}
	fmt.Println("\nclaim: estimate ∈ [Ω(κ/log n), κ] — the ratio column stays O(log n).")
}

// E8: Corollary A.1 — gossiping rounds.
func e8() {
	fmt.Printf("%-14s %4s %10s %12s %14s\n", "graph", "k", "rounds", "singleTree", "η+(N+n)/k·lg²")
	for _, c := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"Q6", graph.Hypercube(6), 6},
		{"Torus8", graph.Torus(8, 8), 4},
		{"Ham12_128", graph.RandomHamCycles(128, 12, ds.NewRand(3)), 22},
	} {
		p, err := decomp.PackDominatingTrees(c.g, decomp.WithSeed(47))
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		res, err := decomp.Gossip(c.g, p, 53)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		all := make([]int, c.g.N())
		for i := range all {
			all[i] = i
		}
		single, err := decomp.SingleTreeBroadcast(c.g, all, decomp.VCongest, 53)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		n := float64(c.g.N())
		bound := (1 + 2*n/float64(c.k)) * math.Log2(n+2) * math.Log2(n+2)
		fmt.Printf("%-14s %4d %10d %12d %14.0f\n",
			c.name, c.k, res.Rounds, single.Rounds, bound)
	}
	fmt.Println("\nclaim: O~(η + (N+n)/k) rounds; single tree needs Θ(N+D).")
}

// E9: Lemma E.1 — the packing tester.
func e9() {
	g := graph.Hypercube(6)
	p, _ := cds.Pack(g, cds.Options{Seed: 59})
	classOf := make([][]int32, g.N())
	for i, t := range p.Trees {
		for _, v := range t.Tree.Vertices() {
			classOf[v] = append(classOf[v], int32(i))
		}
	}
	res, err := tester.CheckDistributed(g, classOf, len(p.Trees), 61)
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	fmt.Printf("valid packing:    OK=%v rounds=%d (budget O~(min{d',D+√n})=%d)\n",
		res.OK, res.Meter.TotalRounds(), tester.MaxRoundsBudget(g)*len(p.Trees))
	// Sabotage: shrink class 0 to two far-apart vertices — it can no
	// longer be a connected dominating set.
	root := p.Trees[0].Tree.Root()
	dist, _ := graph.BFS(g, root)
	far := root
	for _, v := range p.Trees[0].Tree.Vertices() {
		if dist[v] > dist[far] {
			far = int(v)
		}
	}
	for v := 0; v < g.N(); v++ {
		if v == root || v == far {
			continue
		}
		pruned := classOf[v][:0]
		for _, c := range classOf[v] {
			if c != 0 {
				pruned = append(pruned, c)
			}
		}
		classOf[v] = pruned
	}
	res2, err := tester.CheckDistributed(g, classOf, len(p.Trees), 61)
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	fmt.Printf("sabotaged packing: OK=%v (domFail=%d connFail=%d)\n",
		res2.OK, res2.DominationFailures, res2.ConnectivityFailures)
	fmt.Println("\nclaim: valid packings pass; broken ones are rejected w.h.p.")
}

// E10: Appendix G — the lower-bound construction.
func e10() {
	fmt.Printf("%-22s %6s %6s %10s %10s %6s\n", "instance", "n", "w", "κ (G4)", "κ exact", "diam")
	for _, c := range []struct {
		name string
		x, y []int
		w    int
	}{
		{"X∩Y={2}", []int{0, 2}, []int{1, 2}, 6},
		{"X∩Y=∅", []int{0, 2}, []int{1, 3}, 6},
	} {
		inst, err := lower.Build(lower.Params{H: 4, L: 2, W: c.w}, c.x, c.y)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		predict, _ := inst.MinCutUpper()
		exact := flow.VertexConnectivity(inst.G)
		fmt.Printf("%-22s %6d %6d %10d %10d %6d\n",
			c.name, inst.G.N(), c.w, predict, exact, graph.Diameter(inst.G))
	}
	// Cut-bit metering of a live protocol (the distributed tester's
	// component flood) on an intersecting instance.
	inst, err := lower.Build(lower.Params{H: 6, L: 3, W: 3}, []int{0, 3}, []int{1, 3})
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	procs := make([]sim.Process, inst.G.N())
	for v := range procs {
		procs[v] = &floodProc{}
	}
	bits, meter, err := inst.CutBits(procs, sim.VCongest, 67, 4*inst.G.N())
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	fmt.Printf("\ncut-bit meter (min-id flood): %d bits crossed a↔b in %d rounds "+
		"(Lemma G.6 budget 2BT≈%d); disjointness needs Ω(h)=%d bits\n",
		bits, meter.RawRounds, 2*40*meter.RawRounds, lower.DisjointnessBitsLowerBound(6))
	fmt.Println("\nclaim (Lemma G.4): κ=4 iff |X∩Y|=1, κ>=w if disjoint; diameter<=3.")
}

// floodProc is a min-id flood used as the metered protocol in E10.
type floodProc struct {
	min     int64
	started bool
	dirty   bool
}

func (p *floodProc) Round(ctx *sim.Context, inbox []sim.Delivery) sim.Status {
	if !p.started {
		p.started = true
		p.min = int64(ctx.ID())
		p.dirty = true
	}
	for _, d := range inbox {
		if d.Msg.F[0] < p.min {
			p.min = d.Msg.F[0]
			p.dirty = true
		}
	}
	if p.dirty {
		p.dirty = false
		ctx.Broadcast(sim.Msg(1, p.min))
		return sim.Active
	}
	return sim.Done
}

func ceilHalf(x int) int {
	if x <= 0 {
		return 0
	}
	return (x + 1) / 2
}
