// Command fingerprint prints a deterministic, content-level fingerprint
// of the repo's randomized pipelines (see internal/fingerprint). Two
// builds that print the same fingerprint produce byte-identical
// experiment outcomes, so diffs of this output are the regression gate
// for refactors of the graph core, the simulator engine, and the
// schedulers:
//
//	go run ./cmd/fingerprint > before.txt
//	... refactor ...
//	go run ./cmd/fingerprint | diff before.txt -
//
// The committed FINGERPRINT.txt golden pins the current output; both
// `make ci` and TestFingerprintGolden diff against it.
package main

import (
	"fmt"

	"repro/internal/fingerprint"
)

func main() {
	fmt.Print(fingerprint.Text())
}
