// Command figures regenerates the paper's three schematic figures as
// Graphviz DOT from live data structures:
//
//	Figure 1 — the bridging graph of one recursive-assignment layer,
//	Figure 2 — connector paths of a component (potential connectors),
//	Figure 3 — the lower-bound construction G(X,Y).
//
// Usage: figures -fig 3 > fig3.dot && dot -Tpng fig3.dot -o fig3.png
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cds"
	"repro/internal/graph"
	"repro/internal/lower"
)

func main() {
	fig := flag.Int("fig", 3, "figure number: 1, 2, or 3")
	flag.Parse()
	switch *fig {
	case 1:
		fig1()
	case 2:
		fig2()
	case 3:
		fig3()
	default:
		fmt.Fprintln(os.Stderr, "figure must be 1, 2 or 3")
		os.Exit(2)
	}
}

// fig1 renders a live class assignment: nodes colored by one class's
// membership, visualizing the components the bridging graph would
// connect (Figure 1 shows this schematically).
func fig1() {
	g := graph.Hypercube(4)
	p, err := cds.PackWithGuess(g, 4, cds.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if len(p.Classes) == 0 {
		log.Fatal("no classes")
	}
	colors := []string{"red", "blue", "green", "orange", "purple", "brown"}
	classOfNode := make(map[int]int)
	for c, members := range p.Classes {
		for _, v := range members {
			if _, ok := classOfNode[int(v)]; !ok {
				classOfNode[int(v)] = c
			}
		}
	}
	err = graph.WriteDOT(os.Stdout, g, graph.DOTOptions{
		Name: "bridging_classes",
		NodeAttrs: func(v int) string {
			c := classOfNode[v] % len(colors)
			return fmt.Sprintf("style=filled, fillcolor=%q", colors[c])
		},
	})
	if err != nil {
		log.Fatal(err)
	}
}

// fig2 renders the connector-path situation: one class's members
// highlighted on a cycle-with-chords graph, with non-members (potential
// connector interiors) hollow — the structure of Figure 2.
func fig2() {
	g := graph.Cycle(16)
	// One "class component": vertices 0..3; its connectors run through
	// 4..15 (paths of length <= 3 exist via the chords below).
	b := graph.NewBuilder(16)
	for _, e := range g.Edges() {
		b.AddEdge(int(e.U), int(e.V))
	}
	b.AddEdge(2, 9)
	b.AddEdge(3, 12)
	gg := b.Graph()
	member := map[int]bool{0: true, 1: true, 2: true, 3: true, 9: true, 10: true, 12: true}
	err := graph.WriteDOT(os.Stdout, gg, graph.DOTOptions{
		Name: "connector_paths",
		NodeAttrs: func(v int) string {
			if member[v] {
				return "style=filled, fillcolor=green"
			}
			return "shape=diamond"
		},
	})
	if err != nil {
		log.Fatal(err)
	}
}

// fig3 renders G(X,Y) for h=ℓ=3, w=2 with X={0,2}, Y={1,2} (element 2 in
// the intersection, as in the paper's Figure 3).
func fig3() {
	inst, err := lower.Build(lower.Params{H: 3, L: 3, W: 2}, []int{0, 2}, []int{1, 2})
	if err != nil {
		log.Fatal(err)
	}
	hub := map[int]bool{inst.A: true, inst.B: true}
	gadget := map[int]string{}
	for x, u := range inst.UNodes {
		gadget[u] = fmt.Sprintf("u%d", x)
	}
	for y, v := range inst.VNodes {
		gadget[v] = fmt.Sprintf("v%d", y)
	}
	err = graph.WriteDOT(os.Stdout, inst.G, graph.DOTOptions{
		Name: "lower_bound_GXY",
		Label: func(v int) string {
			if v == inst.A {
				return "a"
			}
			if v == inst.B {
				return "b"
			}
			if l, ok := gadget[v]; ok {
				return l
			}
			return fmt.Sprintf("%d", v)
		},
		NodeAttrs: func(v int) string {
			switch {
			case hub[v]:
				return "style=filled, fillcolor=gray"
			case gadget[v] != "":
				return "style=filled, fillcolor=yellow"
			default:
				return "style=filled, fillcolor=lightblue"
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
}
