package decomp_test

import (
	"math"
	"testing"
	"testing/quick"

	decomp "repro"
)

func TestQuickstartFlow(t *testing.T) {
	g := decomp.Hypercube(5)
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	res, err := decomp.Gossip(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 || res.Throughput <= 0 {
		t.Fatalf("gossip degenerate: %+v", res)
	}
}

func TestApproxVertexConnectivityEndToEnd(t *testing.T) {
	for _, d := range []int{3, 4, 5} {
		g := decomp.Hypercube(d)
		est, p, err := decomp.ApproxVertexConnectivity(g, decomp.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		exact := decomp.VertexConnectivity(g)
		if exact != d {
			t.Fatalf("Q%d: exact κ=%d", d, exact)
		}
		if est > float64(exact)+1e-9 {
			t.Fatalf("Q%d: estimate %.3f exceeds κ=%d", d, est, exact)
		}
		logn := math.Log2(float64(g.N()) + 2)
		if est < float64(exact)/(10*logn) {
			t.Fatalf("Q%d: estimate %.3f below κ/(10 log n)", d, est)
		}
		if err := p.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpanningPackingEndToEnd(t *testing.T) {
	g := decomp.Complete(12) // λ=11, target ⌈10/2⌉=5
	p, err := decomp.PackSpanningTrees(g, decomp.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s := p.Size(); s < 3 || s > 5+1e-9 {
		t.Fatalf("size %.3f outside [3,5]", s)
	}
	res, err := decomp.BroadcastEdges(g, p, decomp.UniformSources(g.N(), 24, 7), 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatalf("broadcast degenerate: %+v", res)
	}
}

func TestDistributedFacades(t *testing.T) {
	g := decomp.Hypercube(4)
	dr, err := decomp.PackDominatingTreesDistributedWithGuess(g, 4, decomp.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.Packing.Validate(g); err != nil {
		t.Fatal(err)
	}
	if dr.Meter.TotalRounds() == 0 {
		t.Fatal("no rounds metered")
	}
	sr, err := decomp.PackSpanningTreesDistributed(g, decomp.WithSeed(11), decomp.WithKnownConnectivity(4), decomp.WithEpsilon(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Packing.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestIntegralAPIs(t *testing.T) {
	g := decomp.Complete(48)
	trees, err := decomp.IntegralSpanningTrees(g, decomp.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) < 2 {
		t.Fatalf("only %d edge-disjoint trees from K48", len(trees))
	}
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	disjoint := decomp.DisjointDominatingTrees(g, p)
	if len(disjoint) == 0 {
		t.Fatal("no vertex-disjoint dominating trees from K48")
	}
}

// TestPackingSizeNeverExceedsConnectivity is the cut-argument invariant
// as a property test over random graphs: any valid fractional
// dominating-tree packing has size at most κ, and any spanning packing
// at most ⌈(λ-1)/2⌉ — checked against exact connectivity.
func TestPackingSizeNeverExceedsConnectivity(t *testing.T) {
	property := func(seed uint64) bool {
		g := decomp.RandomHamCycles(20, 2, seed) // κ≈4
		kappa := decomp.VertexConnectivity(g)
		lambda := decomp.EdgeConnectivity(g)
		dp, err := decomp.PackDominatingTrees(g, decomp.WithSeed(seed))
		if err != nil {
			return kappa == 0 // only disconnected graphs may fail
		}
		if dp.Size() > float64(kappa)+1e-9 {
			return false
		}
		sp, err := decomp.PackSpanningTrees(g, decomp.WithSeed(seed))
		if err != nil {
			return false
		}
		bound := math.Ceil(float64(lambda-1) / 2)
		if bound < 1 {
			bound = 1
		}
		return sp.Size() <= bound+1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastBeatsBaselineAtScale(t *testing.T) {
	g := decomp.Hypercube(6)
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	srcs := decomp.UniformSources(g.N(), 2*g.N(), 19)
	multi, err := decomp.Broadcast(g, p, srcs, 21)
	if err != nil {
		t.Fatal(err)
	}
	single, err := decomp.SingleTreeBroadcast(g, srcs, decomp.VCongest, 21)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Throughput <= single.Throughput {
		t.Fatalf("packing throughput %.3f not above single-tree %.3f",
			multi.Throughput, single.Throughput)
	}
}
