package decomp_test

import (
	"testing"

	decomp "repro"
	"repro/internal/cds"
)

func TestIndependentSpanningTreesEndToEnd(t *testing.T) {
	g := decomp.Complete(32)
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	disjoint := decomp.DisjointDominatingTrees(g, p)
	if len(disjoint) < 2 {
		t.Skipf("only %d disjoint trees", len(disjoint))
	}
	trees, err := decomp.IndependentSpanningTrees(g, disjoint, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := cds.VerifyIndependent(g, trees, 5); err != nil {
		t.Fatal(err)
	}
}

func TestLowConnectivityHighDiameterFamily(t *testing.T) {
	// CliqueChain: κ=2, diameter ~cliques. The packing must stay valid
	// and of size at least 1 (a single CDS), the regime where the
	// theory predicts no parallelism win.
	g := decomp.NewGraph(0, nil)
	_ = g
	chain, err := chainGraph()
	if err != nil {
		t.Fatal(err)
	}
	p, err := decomp.PackDominatingTrees(chain, decomp.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(chain); err != nil {
		t.Fatal(err)
	}
	if p.Size() < 1-1e-9 {
		t.Fatalf("size %.3f below 1", p.Size())
	}
	// Exact κ=2: the packing can never exceed it.
	if p.Size() > 2+1e-9 {
		t.Fatalf("size %.3f exceeds κ=2", p.Size())
	}
}

func chainGraph() (*decomp.Graph, error) {
	// Build a clique chain through the public edge-list constructor.
	const cliques, size, bridge = 5, 6, 2
	var edges [][2]int
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{base + i, base + j})
			}
		}
		if c+1 < cliques {
			for i := 0; i < bridge; i++ {
				edges = append(edges, [2]int{base + i, base + size + i})
			}
		}
	}
	return decomp.NewGraph(cliques*size, edges), nil
}

func TestGossipDeliversOnSparseGraph(t *testing.T) {
	// Torus with κ=4: gossip must terminate and meter sane congestion.
	g := decomp.Torus(6, 6)
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := decomp.Gossip(g, p, 13)
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all of n messages needs at least n-ish transmissions at the
	// busiest node when the packing is a single tree; just sanity-bound.
	if res.Rounds < g.N()/4 {
		t.Fatalf("gossip of %d messages finished suspiciously fast: %d rounds", g.N(), res.Rounds)
	}
	if res.MaxVertexCongestion == 0 || res.MaxEdgeCongestion == 0 {
		t.Fatalf("congestion not metered: %+v", res)
	}
}

func TestEdgeConnectivityFacade(t *testing.T) {
	if got := decomp.EdgeConnectivity(decomp.Hypercube(4)); got != 4 {
		t.Fatalf("λ(Q4) = %d, want 4", got)
	}
	h, err := decomp.Harary(6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := decomp.EdgeConnectivity(h); got != 6 {
		t.Fatalf("λ(H_6,20) = %d, want 6", got)
	}
	if got := decomp.VertexConnectivity(h); got != 6 {
		t.Fatalf("κ(H_6,20) = %d, want 6", got)
	}
}

func TestRandomRegularFacade(t *testing.T) {
	g, err := decomp.RandomRegular(30, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 || g.MinDegree() != 4 {
		t.Fatalf("n=%d minDeg=%d", g.N(), g.MinDegree())
	}
	if _, err := decomp.RandomRegular(5, 3, 3); err == nil {
		t.Fatal("odd n*d accepted")
	}
}

func TestApproxVertexConnectivityDistributed(t *testing.T) {
	g := decomp.Hypercube(4)
	est, res, err := decomp.ApproxVertexConnectivityDistributed(g, decomp.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 || est > 4+1e-9 {
		t.Fatalf("estimate %.3f outside (0, κ=4]", est)
	}
	if res.Meter.TotalRounds() == 0 {
		t.Fatal("no rounds metered")
	}
}

func TestSparseCertificateFacade(t *testing.T) {
	g := decomp.Complete(16)
	cert := decomp.SparseCertificate(g, 3)
	if cert.M() > 3*(g.N()-1) {
		t.Fatalf("certificate too dense: %d edges", cert.M())
	}
	if got := decomp.EdgeConnectivity(cert); got != 3 {
		t.Fatalf("λ(cert) = %d, want 3", got)
	}
}
