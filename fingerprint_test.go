package decomp_test

import (
	"flag"
	"os"
	"testing"

	"repro/internal/fingerprint"
)

var updateGolden = flag.Bool("update", false, "rewrite FINGERPRINT.txt from the current build's output")

// TestFingerprintGolden extends the cmd/fingerprint determinism gate
// into go test: the content-level fingerprint of every pinned workload
// (distributed packings, broadcast/gossip schedulers) must match the
// committed FINGERPRINT.txt byte for byte. A refactor that changes any
// experiment outcome fails here — in CI — rather than only when someone
// remembers to diff two fingerprint runs at bench time.
//
// After an intentional behavior change, regenerate the golden with
//
//	go test -run TestFingerprintGolden -update .
func TestFingerprintGolden(t *testing.T) {
	got := fingerprint.Text()
	if *updateGolden {
		if err := os.WriteFile("FINGERPRINT.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("FINGERPRINT.txt rewritten (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile("FINGERPRINT.txt")
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first diverging line, not the whole multi-KB blob.
	gotLines, wantLines := splitLines(got), splitLines(string(want))
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("fingerprint diverges at line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	t.Fatal("fingerprint differs from golden (trailing content)")
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
