package decomp_test

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	decomp "repro"
	"repro/internal/fingerprint"
)

var updateGolden = flag.Bool("update", false, "rewrite FINGERPRINT.txt from the current build's output")

// TestFingerprintGolden extends the cmd/fingerprint determinism gate
// into go test: the content-level fingerprint of every pinned workload
// (distributed packings, broadcast/gossip schedulers) must match the
// committed FINGERPRINT.txt byte for byte. A refactor that changes any
// experiment outcome fails here — in CI — rather than only when someone
// remembers to diff two fingerprint runs at bench time.
//
// After an intentional behavior change, regenerate the golden with
//
//	go test -run TestFingerprintGolden -update .
func TestFingerprintGolden(t *testing.T) {
	got := fingerprint.Text()
	if *updateGolden {
		if err := os.WriteFile("FINGERPRINT.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("FINGERPRINT.txt rewritten (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile("FINGERPRINT.txt")
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first diverging line, not the whole multi-KB blob.
	gotLines, wantLines := splitLines(got), splitLines(string(want))
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("fingerprint diverges at line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	t.Fatal("fingerprint differs from golden (trailing content)")
}

// TestFingerprintCloneParity extends the determinism gate across the
// Scheduler core/buffers split: the E-CONGEST broadcast line workload is
// replayed through a reusable handle AND through its Clone(), and both
// must reproduce the committed golden's E lines byte for byte. A clone
// that shared mutable state with (or diverged from) its original would
// fail here without touching FINGERPRINT.txt itself.
func TestFingerprintCloneParity(t *testing.T) {
	golden, err := os.ReadFile("FINGERPRINT.txt")
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	var want []string
	for _, line := range splitLines(string(golden)) {
		if strings.HasPrefix(line, "E seed=") {
			want = append(want, line)
		}
	}
	if len(want) == 0 {
		t.Fatal("golden carries no E lines")
	}

	// The same workload broadcastFingerprints pins as the E lines.
	k := decomp.Complete(16)
	sp, err := decomp.PackSpanningTrees(k, decomp.WithSeed(1), decomp.WithKnownConnectivity(15))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := decomp.NewEdgeBroadcastScheduler(k, sp)
	if err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	demand := decomp.Demand{Sources: decomp.UniformSources(k.N(), 4*k.N(), 3)}
	for seed := uint64(0); seed < uint64(len(want)); seed++ {
		ro, err := orig.Run(demand, seed)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := clone.Run(demand, seed)
		if err != nil {
			t.Fatal(err)
		}
		if ro != rc {
			t.Fatalf("seed %d: clone %+v != original handle %+v", seed, rc, ro)
		}
		if got := fmt.Sprintf("E seed=%d multi=%+v", seed, rc); got != want[seed] {
			t.Fatalf("seed %d: clone output diverges from golden:\n  golden: %s\n  got:    %s", seed, want[seed], got)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
