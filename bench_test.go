// Benchmarks regenerating every experiment of DESIGN.md's per-experiment
// index (E1–E10) plus the design-choice ablations (A1–A5). Each bench
// reports the paper's quantity of interest as custom metrics alongside
// ns/op; cmd/experiments prints the same data as claimed-vs-measured
// tables.
package decomp_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/benchmarks"

	decomp "repro"
	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/ds"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/lower"
	"repro/internal/stp"
	"repro/internal/tester"
)

// --- E1: Theorem 1.1 — distributed dominating-tree packing ---------------

func BenchmarkE1DomPackingDistributed(b *testing.B) {
	for _, c := range benchmarks.E1() {
		b.Run(c.Name, c.Bench)
	}
}

// --- E2: Theorem 1.2 — centralized packing, O~(m) scaling ----------------

func BenchmarkE2DomPackingCentralized(b *testing.B) {
	for _, c := range benchmarks.E2() {
		b.Run(c.Name, c.Bench)
	}
}

// --- E3: Theorem 1.3 — spanning-tree packing ------------------------------

func BenchmarkE3SpanPackingCentralized(b *testing.B) {
	for _, c := range benchmarks.E3Cent() {
		b.Run(c.Name, c.Bench)
	}
}

func BenchmarkE3SpanPackingDistributed(b *testing.B) {
	benchmarks.E3Dist().Bench(b)
}

// --- E4/E5: Corollaries 1.4, 1.5 — broadcast throughput -------------------

func BenchmarkE4BroadcastVertex(b *testing.B) {
	benchmarks.E4().Bench(b)
}

func BenchmarkE5BroadcastEdge(b *testing.B) {
	benchmarks.E5().Bench(b)
}

// E5-steady: K repeated demands through one reusable Scheduler handle vs
// K fresh Broadcasts (PR 4's steady-state serving path).
func BenchmarkE5SteadyBroadcastEdge(b *testing.B) {
	for _, c := range benchmarks.E5Steady() {
		b.Run(c.Name, c.Bench)
	}
}

// E6-parallel: K closed-loop workers × M demands through the serving
// layer (singleflight packing cache + pooled Scheduler clones).
func BenchmarkE6ParallelThroughput(b *testing.B) {
	for _, c := range benchmarks.E6Parallel() {
		b.Run(c.Name, c.Bench)
	}
}

// E7-faulted: seeded edge-failure sweep over the E5 decomposition,
// measuring delivered fraction and reroute round overhead from 0 kills
// up past the connectivity bound (PR 6's fault-injection path).
func BenchmarkE7FaultedBroadcast(b *testing.B) {
	for _, c := range benchmarks.E7Faulted() {
		b.Run(c.Name, c.Bench)
	}
}

// E8-open-loop: demands arriving on a deterministic exponential
// schedule through the serving layer, reporting the per-demand latency
// distribution below and above the saturation rate (PR 7's open-loop
// load generator).
func BenchmarkE8OpenLoopLatency(b *testing.B) {
	for _, c := range benchmarks.E8OpenLoop() {
		b.Run(c.Name, c.Bench)
	}
}

// --- E6: Corollary 1.6 — oblivious routing congestion ---------------------

func BenchmarkE6ObliviousCongestion(b *testing.B) {
	g := graph.Hypercube(6)
	const k = 6
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	nMsgs := 6 * g.N()
	var competitiveness float64
	for i := 0; i < b.N; i++ {
		srcs := decomp.UniformSources(g.N(), nMsgs, uint64(i))
		res, err := decomp.Broadcast(g, p, srcs, uint64(i)+99)
		if err != nil {
			b.Fatal(err)
		}
		competitiveness = float64(res.MaxVertexCongestion) / (float64(nMsgs) / k)
	}
	b.ReportMetric(competitiveness, "vertex-congestion-competitiveness")
}

// --- E7: Corollary 1.7 — vertex connectivity approximation ----------------

func BenchmarkE7VertexConnApprox(b *testing.B) {
	h10, err := graph.Harary(10, 128)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"Q6", graph.Hypercube(6)},
		{"H10_128", h10},
	} {
		kappa := flow.VertexConnectivity(tc.g)
		b.Run(tc.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				est, _, err := cds.ApproxVertexConnectivity(tc.g, cds.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(kappa) / est
			}
			b.ReportMetric(ratio, "approx-ratio")
		})
	}
}

func BenchmarkE7VertexConnExactBaseline(b *testing.B) {
	g := graph.Hypercube(6)
	for i := 0; i < b.N; i++ {
		if flow.VertexConnectivity(g) != 6 {
			b.Fatal("wrong κ")
		}
	}
}

// --- E8: Corollary A.1 — gossiping ----------------------------------------

func BenchmarkE8Gossip(b *testing.B) {
	g := graph.RandomHamCycles(128, 12, ds.NewRand(3))
	p, err := decomp.PackDominatingTrees(g, decomp.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	var rounds float64
	for i := 0; i < b.N; i++ {
		res, err := decomp.Gossip(g, p, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(res.Rounds)
	}
	b.ReportMetric(rounds, "rounds")
}

// --- E9: Lemma E.1 — packing tester ----------------------------------------

func BenchmarkE9Tester(b *testing.B) {
	g := graph.Hypercube(6)
	p, err := cds.Pack(g, cds.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	classOf := make([][]int32, g.N())
	for i, t := range p.Trees {
		for _, v := range t.Tree.Vertices() {
			classOf[v] = append(classOf[v], int32(i))
		}
	}
	b.Run("centralized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := tester.CheckCentralized(g, classOf, len(p.Trees))
			if err != nil || !res.OK {
				b.Fatalf("err=%v ok=%v", err, res.OK)
			}
		}
	})
	b.Run("distributed", func(b *testing.B) {
		var rounds float64
		for i := 0; i < b.N; i++ {
			res, err := tester.CheckDistributed(g, classOf, len(p.Trees), uint64(i))
			if err != nil || !res.OK {
				b.Fatalf("err=%v ok=%v", err, res.OK)
			}
			rounds = float64(res.Meter.TotalRounds())
		}
		b.ReportMetric(rounds, "rounds")
	})
}

// --- E10: Appendix G — lower-bound family ----------------------------------

func BenchmarkE10LowerBound(b *testing.B) {
	var kappa4, kappaW float64
	for i := 0; i < b.N; i++ {
		inter, err := lower.Build(lower.Params{H: 4, L: 2, W: 5}, []int{0, 2}, []int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		disj, err := lower.Build(lower.Params{H: 4, L: 2, W: 5}, []int{0, 2}, []int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
		kappa4 = float64(flow.VertexConnectivity(inter.G))
		kappaW = float64(flow.VertexConnectivity(disj.G))
	}
	b.ReportMetric(kappa4, "kappa-intersecting")
	b.ReportMetric(kappaW, "kappa-disjoint")
}

// --- Ablations (DESIGN.md section 4) ----------------------------------------

// A1: matching order in the centralized packer is randomized; compare
// the packing size variance across seeds (Luby-style stages live in the
// distributed path, exercised by E1).
func BenchmarkA1MatchingSeeds(b *testing.B) {
	g := graph.Hypercube(6)
	var minSize, maxSize float64 = math.Inf(1), 0
	for i := 0; i < b.N; i++ {
		p, err := cds.PackWithGuess(g, 24, cds.Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		s := p.Size()
		if s < minSize {
			minSize = s
		}
		if s > maxSize {
			maxSize = s
		}
	}
	b.ReportMetric(minSize, "min-size")
	b.ReportMetric(maxSize, "max-size")
}

// A2: jump-start depth — L/4 vs L/2 vs 3L/4 random layers.
func BenchmarkA2JumpStart(b *testing.B) {
	g := graph.Hypercube(6)
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		b.Run(fmt.Sprintf("frac%.2f", frac), func(b *testing.B) {
			var size, valid float64
			for i := 0; i < b.N; i++ {
				p, err := cds.PackWithGuess(g, 24, cds.Options{Seed: uint64(i), JumpStartFraction: frac})
				if err != nil {
					b.Fatal(err)
				}
				size = p.Size()
				valid = float64(p.Stats.ValidClasses)
			}
			b.ReportMetric(size, "packing-size")
			b.ReportMetric(valid, "valid-classes")
		})
	}
}

// A3: MWU ε — iterations-to-converge and final size.
func BenchmarkA3MWUParams(b *testing.B) {
	g := graph.Complete(16)
	for _, eps := range []float64{0.05, 0.1, 0.3} {
		b.Run(fmt.Sprintf("eps%.2f", eps), func(b *testing.B) {
			var iters, size float64
			for i := 0; i < b.N; i++ {
				p, err := stp.Pack(g, stp.Options{Seed: uint64(i), KnownLambda: 15, Epsilon: eps})
				if err != nil {
					b.Fatal(err)
				}
				iters = float64(p.Stats.Iterations)
				size = p.Size()
			}
			b.ReportMetric(iters, "iterations")
			b.ReportMetric(size, "packing-size")
		})
	}
}

// A4: with vs without Karger edge-sampling at large λ.
func BenchmarkA4Sampling(b *testing.B) {
	g := graph.Complete(32) // λ=31
	for _, tc := range []struct {
		name      string
		threshold float64
	}{
		{"sampled", 0.4},
		{"direct", 1e9},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var size, eta float64
			for i := 0; i < b.N; i++ {
				p, err := stp.Pack(g, stp.Options{
					Seed: uint64(i), KnownLambda: 31, Epsilon: 0.3,
					SampleThreshold: tc.threshold,
				})
				if err != nil {
					b.Fatal(err)
				}
				size = p.Size()
				eta = float64(p.Stats.Subgraphs)
			}
			b.ReportMetric(size, "packing-size")
			b.ReportMetric(eta, "subgraphs")
		})
	}
}

// A5: component identification cost — restricted flooding rounds on
// low- vs high-diameter component structures.
func BenchmarkA5Components(b *testing.B) {
	chain, err := graph.CliqueChain(8, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"expander", graph.RandomHamCycles(64, 3, ds.NewRand(1)), 6},
		{"cliquechain", chain, 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				res, err := cdsdist.PackWithGuess(tc.g, tc.k, cds.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(res.Meter.TotalRounds())
			}
			b.ReportMetric(rounds, "rounds")
		})
	}
}
