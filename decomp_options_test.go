package decomp_test

import (
	"strings"
	"testing"

	decomp "repro"
)

// TestOptionValidation pins that invalid option values error at the
// decomp API boundary — from every entry point that accepts options —
// instead of producing silent misbehavior deep in the packers.
func TestOptionValidation(t *testing.T) {
	g := decomp.Hypercube(3)
	entryPoints := []struct {
		name string
		call func(opts ...decomp.Option) error
	}{
		{"PackDominatingTrees", func(opts ...decomp.Option) error {
			_, err := decomp.PackDominatingTrees(g, opts...)
			return err
		}},
		{"PackDominatingTreesDistributed", func(opts ...decomp.Option) error {
			_, err := decomp.PackDominatingTreesDistributed(g, opts...)
			return err
		}},
		{"PackDominatingTreesDistributedWithGuess", func(opts ...decomp.Option) error {
			_, err := decomp.PackDominatingTreesDistributedWithGuess(g, 3, opts...)
			return err
		}},
		{"PackSpanningTrees", func(opts ...decomp.Option) error {
			_, err := decomp.PackSpanningTrees(g, opts...)
			return err
		}},
		{"PackSpanningTreesDistributed", func(opts ...decomp.Option) error {
			_, err := decomp.PackSpanningTreesDistributed(g, opts...)
			return err
		}},
		{"IntegralSpanningTrees", func(opts ...decomp.Option) error {
			_, err := decomp.IntegralSpanningTrees(g, opts...)
			return err
		}},
		{"ApproxVertexConnectivity", func(opts ...decomp.Option) error {
			_, _, err := decomp.ApproxVertexConnectivity(g, opts...)
			return err
		}},
		{"ApproxVertexConnectivityDistributed", func(opts ...decomp.Option) error {
			_, _, err := decomp.ApproxVertexConnectivityDistributed(g, opts...)
			return err
		}},
	}
	invalid := []struct {
		name string
		opt  decomp.Option
		want string // substring the error must carry
	}{
		{"epsilon zero", decomp.WithEpsilon(0), "WithEpsilon"},
		{"epsilon negative", decomp.WithEpsilon(-0.5), "WithEpsilon"},
		{"epsilon one", decomp.WithEpsilon(1), "WithEpsilon"},
		{"epsilon above one", decomp.WithEpsilon(1.5), "WithEpsilon"},
		{"connectivity zero", decomp.WithKnownConnectivity(0), "WithKnownConnectivity"},
		{"connectivity negative", decomp.WithKnownConnectivity(-4), "WithKnownConnectivity"},
		{"class factor zero", decomp.WithClassFactor(0), "WithClassFactor"},
		{"class factor negative", decomp.WithClassFactor(-1), "WithClassFactor"},
	}
	for _, ep := range entryPoints {
		for _, tc := range invalid {
			err := ep.call(tc.opt)
			if err == nil {
				t.Errorf("%s accepted %s", ep.name, tc.name)
				continue
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s / %s: error %q does not name %s", ep.name, tc.name, err, tc.want)
			}
			// The first invalid option wins even when a valid one follows.
			if err2 := ep.call(tc.opt, decomp.WithSeed(1)); err2 == nil || err2.Error() != err.Error() {
				t.Errorf("%s / %s: error not stable with trailing options: %v vs %v", ep.name, tc.name, err2, err)
			}
		}
	}
	// Valid values still work end to end.
	if _, err := decomp.PackSpanningTrees(g, decomp.WithEpsilon(0.2), decomp.WithKnownConnectivity(3)); err != nil {
		t.Fatalf("valid spanning options rejected: %v", err)
	}
	if _, err := decomp.PackDominatingTrees(g, decomp.WithClassFactor(0.5), decomp.WithSeed(2)); err != nil {
		t.Fatalf("valid dominating options rejected: %v", err)
	}
}
