// Vertex connectivity approximation (Corollary 1.7): the packing size
// is a one-sided estimate of κ — never above it, within O(log n) below
// it — obtained in O~(m) time versus the Ω(n²k)-ish exact algorithms.
package main

import (
	"fmt"
	"log"
	"time"

	decomp "repro"
)

func main() {
	h12, err := decomp.Harary(12, 192)
	if err != nil {
		log.Fatal(err)
	}
	cases := []struct {
		name string
		g    *decomp.Graph
	}{
		{"hypercube Q7", decomp.Hypercube(7)},
		{"Harary H_{12,192}", h12},
		{"expander n=160 c=5", decomp.RandomHamCycles(160, 5, 3)},
		{"torus 12x12", decomp.Torus(12, 12)},
	}
	fmt.Printf("%-20s %8s %10s %10s %10s %12s\n",
		"graph", "exact κ", "estimate", "ratio", "approx(ms)", "exact(ms)")
	for _, c := range cases {
		t0 := time.Now()
		est, _, err := decomp.ApproxVertexConnectivity(c.g, decomp.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		approxMS := time.Since(t0).Seconds() * 1000

		t0 = time.Now()
		exact := decomp.VertexConnectivity(c.g)
		exactMS := time.Since(t0).Seconds() * 1000

		fmt.Printf("%-20s %8d %10.2f %10.2f %10.1f %12.1f\n",
			c.name, exact, est, float64(exact)/est, approxMS, exactMS)
	}
	fmt.Println("\nratio is the approximation factor; the paper guarantees O(log n).")
}
