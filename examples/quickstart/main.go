// Quickstart: decompose a hypercube's vertex connectivity into
// fractionally disjoint dominating trees and inspect the packing.
package main

import (
	"fmt"
	"log"

	decomp "repro"
)

func main() {
	// The 6-dimensional hypercube: n=64 nodes, vertex connectivity k=6.
	g := decomp.Hypercube(6)
	fmt.Printf("graph: n=%d m=%d κ=%d λ=%d\n",
		g.N(), g.M(), decomp.VertexConnectivity(g), decomp.EdgeConnectivity(g))

	// Theorem 1.2: a fractional dominating-tree packing of size
	// Ω(k/log n), built in O~(m) time without knowing k.
	packing, err := decomp.PackDominatingTrees(g, decomp.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	if err := packing.Validate(g); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dominating-tree packing: %d trees, size %.3f\n",
		len(packing.Trees), packing.Size())
	fmt.Printf("  per-node membership bound: %d trees (paper: O(log n))\n",
		packing.MaxTreeCount(g.N()))
	fmt.Printf("  max tree height: %d (paper: tree diameter O~(n/k))\n",
		packing.MaxTreeHeight())
	for i, t := range packing.Trees {
		if i >= 4 {
			fmt.Printf("  ... and %d more\n", len(packing.Trees)-4)
			break
		}
		fmt.Printf("  tree %d: %d vertices, weight %.3f, root %d\n",
			i, t.Tree.Size(), t.Weight, t.Tree.Root())
	}

	// The same decomposition on the edge side (Theorem 1.3): spanning
	// trees of total weight ⌈(λ-1)/2⌉(1-ε).
	span, err := decomp.PackSpanningTrees(g, decomp.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanning-tree packing: %d distinct trees, size %.3f (Tutte/Nash-Williams bound %d)\n",
		len(span.Trees), span.Size(), (decomp.EdgeConnectivity(g)-1+1)/2)
}
