// Broadcast: the paper's headline application (Corollary 1.4). A
// k-vertex-connected network sustains Ω(k/log n) messages per round by
// routing each message along a random dominating tree — versus
// throughput 1 for any single-tree solution.
package main

import (
	"fmt"
	"log"
	"sync"

	decomp "repro"
)

func main() {
	// A 16-connected expander on 256 nodes (union of 8 random
	// Hamiltonian cycles).
	g := decomp.RandomHamCycles(256, 8, 7)
	k := decomp.VertexConnectivity(g)
	fmt.Printf("network: n=%d m=%d κ=%d\n", g.N(), g.M(), k)

	packing, err := decomp.PackDominatingTrees(g, decomp.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packing: %d dominating trees, size %.2f\n",
		len(packing.Trees), packing.Size())

	// Broadcast 4n messages from random sources.
	sources := decomp.UniformSources(g.N(), 4*g.N(), 99)

	multi, err := decomp.Broadcast(g, packing, sources, 3)
	if err != nil {
		log.Fatal(err)
	}
	single, err := decomp.SingleTreeBroadcast(g, sources, decomp.VCongest, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %12s %18s\n", "strategy", "rounds", "msgs/round", "max node congestion")
	fmt.Printf("%-22s %10d %12.2f %18d\n", "tree packing (ours)",
		multi.Rounds, multi.Throughput, multi.MaxVertexCongestion)
	fmt.Printf("%-22s %10d %12.2f %18d\n", "single BFS tree",
		single.Rounds, single.Throughput, single.MaxVertexCongestion)
	fmt.Printf("\nspeedup: %.2fx (information-theoretic limit: %dx)\n",
		float64(single.Rounds)/float64(multi.Rounds), k)

	// Corollary 1.6: the routing is oblivious — each message's path
	// depends only on its coin flips — yet the max vertex congestion is
	// O(log n)-competitive with the N/k optimum.
	opt := float64(len(sources)) / float64(k)
	fmt.Printf("oblivious vertex-congestion competitiveness: %.2f (paper: O(log n))\n",
		float64(multi.MaxVertexCongestion)/opt)

	// Steady-state serving: a reusable Scheduler handle builds the
	// per-tree routing state once; Clone() hands each worker an
	// independent handle over that same immutable core, so demands run
	// in parallel with zero allocations per Run once warm — and results
	// byte-identical to a serial run of the same (demand, seed).
	sched, err := decomp.NewBroadcastScheduler(g, packing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsteady state: one shared core, %d concurrent clones\n", 3)
	var wg sync.WaitGroup
	lines := make([]string, 3)
	for batch := 0; batch < 3; batch++ {
		wg.Add(1)
		go func(batch int, clone *decomp.Scheduler) {
			defer wg.Done()
			srcs := decomp.UniformSources(g.N(), 2*g.N(), uint64(200+batch))
			res, err := clone.Run(decomp.Demand{Sources: srcs}, uint64(batch))
			if err != nil {
				log.Fatal(err)
			}
			lines[batch] = fmt.Sprintf("  demand %d: %d msgs in %d rounds (%.2f msgs/round)",
				batch, len(srcs), res.Rounds, res.Throughput)
		}(batch, sched.Clone())
	}
	wg.Wait()
	for _, l := range lines {
		fmt.Println(l)
	}
}
