// Broadcast: the paper's headline application (Corollary 1.4). A
// k-vertex-connected network sustains Ω(k/log n) messages per round by
// routing each message along a random dominating tree — versus
// throughput 1 for any single-tree solution.
package main

import (
	"fmt"
	"log"

	decomp "repro"
)

func main() {
	// A 16-connected expander on 256 nodes (union of 8 random
	// Hamiltonian cycles).
	g := decomp.RandomHamCycles(256, 8, 7)
	k := decomp.VertexConnectivity(g)
	fmt.Printf("network: n=%d m=%d κ=%d\n", g.N(), g.M(), k)

	packing, err := decomp.PackDominatingTrees(g, decomp.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packing: %d dominating trees, size %.2f\n",
		len(packing.Trees), packing.Size())

	// Broadcast 4n messages from random sources.
	sources := decomp.UniformSources(g.N(), 4*g.N(), 99)

	multi, err := decomp.Broadcast(g, packing, sources, 3)
	if err != nil {
		log.Fatal(err)
	}
	single, err := decomp.SingleTreeBroadcast(g, sources, decomp.VCongest, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %12s %18s\n", "strategy", "rounds", "msgs/round", "max node congestion")
	fmt.Printf("%-22s %10d %12.2f %18d\n", "tree packing (ours)",
		multi.Rounds, multi.Throughput, multi.MaxVertexCongestion)
	fmt.Printf("%-22s %10d %12.2f %18d\n", "single BFS tree",
		single.Rounds, single.Throughput, single.MaxVertexCongestion)
	fmt.Printf("\nspeedup: %.2fx (information-theoretic limit: %dx)\n",
		float64(single.Rounds)/float64(multi.Rounds), k)

	// Corollary 1.6: the routing is oblivious — each message's path
	// depends only on its coin flips — yet the max vertex congestion is
	// O(log n)-competitive with the N/k optimum.
	opt := float64(len(sources)) / float64(k)
	fmt.Printf("oblivious vertex-congestion competitiveness: %.2f (paper: O(log n))\n",
		float64(multi.MaxVertexCongestion)/opt)

	// Steady-state serving: a reusable Scheduler handle builds the
	// per-tree routing state once and then serves any sequence of
	// demands with zero allocations per Run — the trees are the
	// expensive, reusable artifact; the demands are cheap.
	sched, err := decomp.NewBroadcastScheduler(g, packing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsteady state: one handle, repeated demands\n")
	for batch := 0; batch < 3; batch++ {
		srcs := decomp.UniformSources(g.N(), 2*g.N(), uint64(200+batch))
		res, err := sched.Run(decomp.Demand{Sources: srcs}, uint64(batch))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  demand %d: %d msgs in %d rounds (%.2f msgs/round)\n",
			batch, len(srcs), res.Rounds, res.Throughput)
	}
}
