// Gossip: the all-to-all broadcast of Appendix A. Every node starts
// with one message; with a dominating-tree packing the network finishes
// in O~(n/k) rounds instead of the Θ(n) any single-tree schedule needs.
package main

import (
	"fmt"
	"log"

	decomp "repro"
)

func main() {
	for _, cfg := range []struct {
		name string
		g    *decomp.Graph
	}{
		{"torus 8x8 (κ=4)", decomp.Torus(8, 8)},
		{"hypercube Q7 (κ=7)", decomp.Hypercube(7)},
		{"expander n=128 κ≈12", decomp.RandomHamCycles(128, 6, 11)},
	} {
		packing, err := decomp.PackDominatingTrees(cfg.g, decomp.WithSeed(5))
		if err != nil {
			log.Fatal(err)
		}
		multi, err := decomp.Gossip(cfg.g, packing, 13)
		if err != nil {
			log.Fatal(err)
		}
		all := make([]int, cfg.g.N())
		for i := range all {
			all[i] = i
		}
		single, err := decomp.SingleTreeBroadcast(cfg.g, all, decomp.VCongest, 13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s packing: %4d rounds (%.2f msg/round)   single tree: %4d rounds   speedup %.2fx\n",
			cfg.name, multi.Rounds, multi.Throughput, single.Rounds,
			float64(single.Rounds)/float64(multi.Rounds))
	}
}
