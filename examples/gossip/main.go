// Gossip: the all-to-all broadcast of Appendix A. Every node starts
// with one message; with a dominating-tree packing the network finishes
// in O~(n/k) rounds instead of the Θ(n) any single-tree schedule needs.
//
// The gossip demand is served through a reusable Scheduler handle: the
// per-tree routing state is built once per packing, and each seed's run
// reuses the handle's warm buffers instead of paying per-call
// construction (the steady-state serving path of cmd/serve).
package main

import (
	"fmt"
	"log"

	decomp "repro"
)

func main() {
	for _, cfg := range []struct {
		name string
		g    *decomp.Graph
	}{
		{"torus 8x8 (κ=4)", decomp.Torus(8, 8)},
		{"hypercube Q7 (κ=7)", decomp.Hypercube(7)},
		{"expander n=128 κ≈12", decomp.RandomHamCycles(128, 6, 11)},
	} {
		packing, err := decomp.PackDominatingTrees(cfg.g, decomp.WithSeed(5))
		if err != nil {
			log.Fatal(err)
		}
		sched, err := decomp.NewBroadcastScheduler(cfg.g, packing)
		if err != nil {
			log.Fatal(err)
		}
		all := make([]int, cfg.g.N())
		for i := range all {
			all[i] = i
		}
		gossip := decomp.Demand{Sources: all}
		// One handle serves every seed; only the first run grows buffers.
		var rounds, best int
		const seeds = 3
		for seed := uint64(13); seed < 13+seeds; seed++ {
			res, err := sched.Run(gossip, seed)
			if err != nil {
				log.Fatal(err)
			}
			rounds += res.Rounds
			if best == 0 || res.Rounds < best {
				best = res.Rounds
			}
		}
		avg := float64(rounds) / seeds
		single, err := decomp.SingleTreeBroadcast(cfg.g, all, decomp.VCongest, 13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s packing: avg %6.1f rounds over %d seeds (best %4d, %.2f msg/round)   single tree: %4d rounds   speedup %.2fx\n",
			cfg.name, avg, seeds, best, float64(cfg.g.N())/avg, single.Rounds,
			float64(single.Rounds)/avg)
	}
}
