package decomp_test

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"repro/internal/cds"
	"repro/internal/cdsdist"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stp"
	"repro/internal/stpdist"
)

// workloadFingerprint runs the two distributed packings the issue pins
// (dominating trees on Q5, spanning trees on K16) and folds every
// observable output — packing sizes, tree contents, and every meter
// component — into one string, so any divergence fails loudly.
func workloadFingerprint(t *testing.T) string {
	t.Helper()
	h := fnv.New64a()

	q5 := graph.Hypercube(5)
	for seed := uint64(0); seed < 3; seed++ {
		res, err := cdsdist.PackWithGuess(q5, 20, cds.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "cds seed=%d size=%.9f meter=%+v;", seed, res.Packing.Size(), res.Meter)
		for _, tr := range res.Packing.Trees {
			fmt.Fprintf(h, "%d:%v;", tr.Class, tr.Tree.Vertices())
		}
	}

	k16 := graph.Complete(16)
	res, err := stpdist.Pack(k16, stp.Options{Seed: 7, KnownLambda: 15, Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(h, "stp size=%.9f meter=%+v trees=%d;", res.Packing.Size(), res.Meter, len(res.Packing.Trees))
	for _, tr := range res.Packing.Trees {
		fmt.Fprintf(h, "%.12f:%v;", tr.Weight, tr.Tree.Vertices())
	}

	return fmt.Sprintf("%x", h.Sum64())
}

// TestWorkerCountDeterminism is the regression gate for the engine's
// worker-pool and receiver-sharded routing: the same seeds must give
// byte-identical packings and meters whether rounds run on one worker,
// NumCPU workers, or an oversubscribed pool that forces many chunks
// even on 32-node graphs.
func TestWorkerCountDeterminism(t *testing.T) {
	defer sim.SetDefaultWorkers(0)

	counts := []int{1, runtime.NumCPU(), 8}
	prints := make([]string, len(counts))
	for i, w := range counts {
		sim.SetDefaultWorkers(w)
		prints[i] = workloadFingerprint(t)
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Fatalf("workers=%d fingerprint %s differs from workers=%d fingerprint %s",
				counts[i], prints[i], counts[0], prints[0])
		}
	}
}

// TestSeedReproducibility guards the run-to-run contract (identical
// seeds, identical results in one process) that the spanning-tree
// packing's map-ordered tree collection used to violate.
func TestSeedReproducibility(t *testing.T) {
	a := workloadFingerprint(t)
	b := workloadFingerprint(t)
	if a != b {
		t.Fatalf("same seeds, different results: %s vs %s", a, b)
	}
}
